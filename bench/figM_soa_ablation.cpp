// figM: SoA fast-kernel SIMD ablation — three-way A/B/C per workload.
//
//   * Reference — the seed kernel, the bit-identity oracle;
//   * fast, simd=off — SoA lanes, every sweep through the scalar fallback;
//   * fast, simd=auto — the same sweeps under `#pragma omp simd` when the
//     build compiled them (CMake NBUF_SIMD=auto; core/soa_sweeps.hpp).
//
// Workloads are the acceptance shapes of figI: 512-site two-pin chains
// segmented at 500 µm (noise-constrained BuffOpt and delay-only DelayOpt)
// and the netgen 500-net batch at one thread. Every row cross-checks all
// three variants for bit-identical results (slack bits, buffer counts, DP
// counters) — the runtime half of the contract that
// tests/test_soa_kernel's scalar-vs-SIMD self-differential pins per sweep
// — and any mismatch fails the run (exit 1). Lane utilization of the
// simd=auto run (full-vector vs scalar-tail sweep elements) rides along so
// regressions in sweep batching are visible without a profiler.
//
//   figM_soa_ablation [--quick] [--out BENCH_soa.json]
//
// writes {"bench": "figM_soa_ablation", "simd_compiled": ..., "rows":
// [{name, sites, nets, ref_seconds, scalar_seconds, simd_seconds,
// speedup_scalar, speedup_simd, simd_over_scalar, soa_full_lane_elems,
// soa_tail_elems, identical_results}, ...]} plus one stdout line per row.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "batch/batch.hpp"
#include "common/workload.hpp"
#include "core/vanginneken.hpp"
#include "seg/segment.hpp"
#include "steiner/builders.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using Clock = std::chrono::steady_clock;

rct::Driver drv() { return rct::Driver{"d", 150.0, 30 * ps}; }

rct::SinkInfo snk() {
  rct::SinkInfo s;
  s.name = "s";
  s.cap = 15.0 * fF;
  s.noise_margin = 0.8;
  s.required_arrival = 2.0 * ns;
  return s;
}

struct Row {
  std::string name;
  std::size_t sites = 0;  // candidate sites (serial rows)
  std::size_t nets = 0;   // workload size (batch rows)
  double ref_seconds = 0.0;
  double scalar_seconds = 0.0;  // fast kernel, SimdMode::Off
  double simd_seconds = 0.0;    // fast kernel, SimdMode::Auto
  std::size_t full_lane_elems = 0;  // simd=auto run's sweep utilization
  std::size_t tail_elems = 0;
  bool identical = false;  // ref == scalar == simd, bit for bit

  [[nodiscard]] double speedup_scalar() const {
    return scalar_seconds > 0.0 ? ref_seconds / scalar_seconds : 0.0;
  }
  [[nodiscard]] double speedup_simd() const {
    return simd_seconds > 0.0 ? ref_seconds / simd_seconds : 0.0;
  }
  [[nodiscard]] double simd_over_scalar() const {
    return simd_seconds > 0.0 ? scalar_seconds / simd_seconds : 0.0;
  }
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool same_result(const core::VgResult& a, const core::VgResult& b) {
  return a.feasible == b.feasible && a.slack == b.slack &&
         a.buffer_count == b.buffer_count &&
         a.stats.candidates_generated == b.stats.candidates_generated &&
         a.stats.pruned_inferior == b.stats.pruned_inferior &&
         a.stats.pruned_infeasible == b.stats.pruned_infeasible &&
         a.stats.merged == b.stats.merged &&
         a.stats.peak_list_size == b.stats.peak_list_size;
}

// Best-of-`reps` wall time for one (kernel, simd) variant on one segmented
// net; the last run's result feeds the three-way identity cross-check.
double time_serial(const rct::RoutingTree& segmented,
                   const lib::BufferLibrary& library, core::VgOptions opt,
                   core::VgKernel kernel, core::SimdMode simd, int reps,
                   core::VgResult* out) {
  opt.kernel = kernel;
  opt.simd = simd;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    auto res = core::optimize(segmented, library, opt);
    const double dt = seconds_since(t0);
    if (r == 0 || dt < best) best = dt;
    if (out != nullptr) *out = std::move(res);
  }
  return best;
}

Row serial_row(const std::string& name, std::size_t sites,
               const lib::BufferLibrary& library, const core::VgOptions& opt,
               int reps) {
  auto t = steiner::make_two_pin(500.0 * static_cast<double>(sites), drv(),
                                 snk(), lib::default_technology());
  seg::segment(t, {500.0});
  Row row;
  row.name = name;
  row.sites = sites;
  core::VgResult ref, scalar, simd;
  row.ref_seconds = time_serial(t, library, opt, core::VgKernel::Reference,
                                core::SimdMode::Auto, reps, &ref);
  row.scalar_seconds = time_serial(t, library, opt, core::VgKernel::Fast,
                                   core::SimdMode::Off, reps, &scalar);
  row.simd_seconds = time_serial(t, library, opt, core::VgKernel::Fast,
                                 core::SimdMode::Auto, reps, &simd);
  row.full_lane_elems = simd.stats.soa_full_lane_elems;
  row.tail_elems = simd.stats.soa_tail_elems;
  row.identical = same_result(scalar, ref) && same_result(simd, ref);
  return row;
}

double time_batch(const std::vector<batch::BatchNet>& nets,
                  const lib::BufferLibrary& library, core::VgKernel kernel,
                  core::SimdMode simd, batch::BatchSummary* out) {
  batch::BatchOptions opt;
  opt.threads = 1;  // serial: isolate kernel cost from pool scheduling
  opt.tool.vg.kernel = kernel;
  opt.tool.vg.simd = simd;
  const batch::BatchEngine engine(opt);
  const auto res = engine.run(nets, library);
  if (out != nullptr) *out = res.summary;
  return res.summary.wall_seconds;
}

bool same_summary(const batch::BatchSummary& a, const batch::BatchSummary& b) {
  return a.buffers_inserted == b.buffers_inserted &&
         a.feasible == b.feasible &&
         a.stats.candidates_generated == b.stats.candidates_generated &&
         a.stats.pruned_inferior == b.stats.pruned_inferior &&
         a.stats.pruned_infeasible == b.stats.pruned_infeasible &&
         a.stats.merged == b.stats.merged &&
         a.stats.peak_list_size == b.stats.peak_list_size;
}

Row batch_row(const std::vector<batch::BatchNet>& nets,
              const lib::BufferLibrary& library) {
  Row row;
  row.name = "batch_buffopt_t1";
  row.nets = nets.size();
  batch::BatchSummary ref, scalar, simd;
  row.ref_seconds = time_batch(nets, library, core::VgKernel::Reference,
                               core::SimdMode::Auto, &ref);
  row.scalar_seconds = time_batch(nets, library, core::VgKernel::Fast,
                                  core::SimdMode::Off, &scalar);
  row.simd_seconds = time_batch(nets, library, core::VgKernel::Fast,
                                core::SimdMode::Auto, &simd);
  row.full_lane_elems = simd.stats.soa_full_lane_elems;
  row.tail_elems = simd.stats.soa_tail_elems;
  row.identical = same_summary(scalar, ref) && same_summary(simd, ref);
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"figM_soa_ablation\",\n"
               "  \"simd_compiled\": %s,\n  \"rows\": [\n",
               core::simd_compiled() ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"sites\": %zu, \"nets\": %zu, "
        "\"ref_seconds\": %.6f, \"scalar_seconds\": %.6f, "
        "\"simd_seconds\": %.6f, \"speedup_scalar\": %.3f, "
        "\"speedup_simd\": %.3f, \"simd_over_scalar\": %.3f, "
        "\"soa_full_lane_elems\": %zu, \"soa_tail_elems\": %zu, "
        "\"identical_results\": %s}%s\n",
        r.name.c_str(), r.sites, r.nets, r.ref_seconds, r.scalar_seconds,
        r.simd_seconds, r.speedup_scalar(), r.speedup_simd(),
        r.simd_over_scalar(), r.full_lane_elems, r.tail_elems,
        r.identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_soa.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  const auto library = lib::default_library();
  const std::size_t sites = quick ? 128 : 512;
  const int reps = quick ? 1 : 3;
  std::vector<Row> rows;

  {
    core::VgOptions opt;  // BuffOpt shape: noise-constrained
    opt.max_buffers = 24;
    rows.push_back(serial_row("chain_buffopt", sites, library, opt, reps));
  }
  {
    core::VgOptions opt;
    opt.noise_constraints = false;
    opt.max_buffers = 24;
    rows.push_back(serial_row("chain_delayopt", sites, library, opt, reps));
  }
  rows.push_back(batch_row(bench::sized_testbench(library, quick ? 60 : 500),
                           library));

  std::printf("== figM: SoA SIMD ablation (reference / scalar / simd) ==\n");
  std::printf("simd compiled into this build: %s\n",
              core::simd_compiled() ? "yes" : "no (scalar == simd rows)");
  bool all_identical = true;
  for (const Row& r : rows) {
    all_identical = all_identical && r.identical;
    std::printf(
        "%-16s sites=%-4zu nets=%-4zu ref=%.4fs scalar=%.4fs simd=%.4fs  "
        "fast/ref=%.2fx simd/scalar=%.2fx  lanes=%zu/%zu  identical=%s\n",
        r.name.c_str(), r.sites, r.nets, r.ref_seconds, r.scalar_seconds,
        r.simd_seconds, r.speedup_simd(), r.simd_over_scalar(),
        r.full_lane_elems, r.tail_elems, r.identical ? "yes" : "NO");
  }
  write_json(out, rows);
  if (!all_identical) {
    std::printf("FAIL: variants disagree — the SoA/SIMD bit-identity "
                "contract is broken\n");
    return 1;
  }
  return 0;
}
