// Table IV reproduction: average delay reduction from buffer insertion,
// grouped by the number of buffers BuffOpt inserted, comparing BuffOpt with
// DelayOpt at the SAME buffer count (the paper's apples-to-apples setup).
//
// Paper: over the 423 buffered nets the weighted average reduction was
// 301.1 ps (BuffOpt) vs 307.2 ps (DelayOpt) — a 1.99% penalty for also
// guaranteeing noise correctness.
#include <cstdio>
#include <map>

#include "common/workload.hpp"
#include "core/tool.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto library = lib::default_library();
  const auto nets = bench::paper_testbench(library);

  struct Group {
    std::size_t nets = 0;
    double buff_reduction = 0.0;   // seconds, summed
    double delay_reduction = 0.0;  // seconds, summed
  };
  std::map<std::size_t, Group> groups;  // keyed by #buffers inserted
  double buff_total = 0.0, delay_total = 0.0;
  std::size_t total_nets = 0;
  // Subset where the noise constraints actually bind: DelayOpt at the
  // matched count still violates noise, so BuffOpt was forced to deviate
  // from the delay-optimal placement.
  std::size_t binding_nets = 0;
  double binding_buff = 0.0, binding_delay = 0.0;

  for (const auto& net : nets) {
    const auto buff = core::run_buffopt(net.tree, library);
    const std::size_t k = buff.vg.buffer_count;
    if (k == 0) continue;  // paper groups only nets that received buffers
    const auto delay = core::run_delayopt(net.tree, library, k);
    Group& g = groups[k];
    const double br =
        buff.timing_before.max_delay - buff.timing_after.max_delay;
    const double dr =
        delay.timing_before.max_delay - delay.timing_after.max_delay;
    g.nets += 1;
    g.buff_reduction += br;
    g.delay_reduction += dr;
    buff_total += br;
    delay_total += dr;
    ++total_nets;
    if (delay.noise_after.violation_count > 0) {
      ++binding_nets;
      binding_buff += buff.timing_after.max_delay;
      binding_delay += delay.timing_after.max_delay;
    }
  }

  std::printf(
      "== Table IV: average delay reduction (ps) by buffers inserted ==\n\n");
  util::Table t({"buffers", "nets", "BuffOpt avg", "DelayOpt avg",
                 "penalty"});
  for (const auto& [k, g] : groups) {
    const double ba = g.buff_reduction / static_cast<double>(g.nets) / ps;
    const double da = g.delay_reduction / static_cast<double>(g.nets) / ps;
    t.add_row({util::Table::integer(static_cast<long long>(k)),
               util::Table::integer(static_cast<long long>(g.nets)),
               util::Table::num(ba, 1), util::Table::num(da, 1),
               util::Table::num(da - ba, 1) + " ps"});
  }
  std::printf("%s\n", t.render().c_str());

  const double buff_avg = buff_total / static_cast<double>(total_nets) / ps;
  const double delay_avg = delay_total / static_cast<double>(total_nets) / ps;
  const double penalty = (delay_avg - buff_avg) / delay_avg;
  std::printf("weighted average reduction over %zu buffered nets: "
              "BuffOpt %.1f ps, DelayOpt %.1f ps\n",
              total_nets, buff_avg, delay_avg);
  std::printf("average delay penalty for noise avoidance: %.2f%% "
              "(paper: 1.99%%)\n",
              penalty * 100.0);
  if (binding_nets > 0) {
    std::printf("nets where noise binds (DelayOpt at matched count still "
                "violates): %zu; on those, BuffOpt delay is %.2f%% above "
                "the delay-only optimum\n",
                binding_nets,
                (binding_buff / binding_delay - 1.0) * 100.0);
  }
  std::printf("\npaper shape check: penalty < 5%% and DelayOpt >= BuffOpt "
              "-> %s\n",
              (penalty < 0.05 && delay_avg >= buff_avg - 1e-9) ? "HOLDS"
                                                               : "CHECK");
  return 0;
}
