// Figure F-F: robustness of the Devgan bound under realistic aggressor
// models.
//
// The metric assumes the aggressor switches as an ideal ramp directly at
// the coupling capacitance. Here the aggressor is a real RC line driven
// through a finite driver resistance, simulated with full bidirectional
// coupling in the dense MNA engine. The weaker the aggressor driver, the
// slower the waveform that actually reaches the coupling caps, so the bound
// only gains margin — exactly the conservatism direction Section II-B
// argues. Part 2 sweeps the aggressor input rise time: the metric scales
// linearly with slope (eq. 6) and must bound the simulated peak at every
// point.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "noise/devgan.hpp"
#include "sim/dense.hpp"
#include "sim/golden.hpp"
#include "steiner/builders.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

// Two identical coupled lines; victim quiet behind r_victim, aggressor
// driven by a saturated ramp behind r_aggr. Returns peak |v| at the victim
// far end.
double coupled_lines_peak(double length, double r_victim, double r_aggr,
                          double rise, int sections) {
  const auto tech = lib::default_technology();
  const double lam = tech.coupling_ratio;
  sim::DenseCircuit c;
  const auto v0 = c.add_nodes(sections + 1);  // victim chain
  const auto a0 = c.add_nodes(sections + 1);  // aggressor chain
  c.add_resistor(v0, 0, r_victim);
  c.add_driven_node(a0, r_aggr, [rise, &tech](double t) {
    return tech.vdd * std::clamp(t / rise, 0.0, 1.0);
  });
  const double r_sec = tech.wire_res(length) / sections;
  const double c_sec = tech.wire_cap(length) / sections;
  for (int s = 0; s < sections; ++s) {
    c.add_resistor(v0 + s, v0 + s + 1, r_sec);
    c.add_resistor(a0 + s, a0 + s + 1, r_sec);
    for (int e = 0; e <= 1; ++e) {
      const auto vn = v0 + s + e, an = a0 + s + e;
      c.add_capacitor(vn, 0, (1 - lam) * c_sec / 2);
      c.add_capacitor(an, 0, (1 - lam) * c_sec / 2);
      c.add_capacitor(vn, an, lam * c_sec / 2);
    }
  }
  c.add_capacitor(v0 + sections, 0, 15 * fF);  // victim sink pin
  c.add_capacitor(a0 + sections, 0, 15 * fF);
  const double tau =
      (r_victim + tech.wire_res(length)) * (tech.wire_cap(length) + 30 * fF);
  const auto res = c.transient(rise + 10 * tau, rise / 100.0);
  return res.peak_abs[v0 + sections];
}

}  // namespace

int main() {
  const auto tech = lib::default_technology();
  const double length = 3000.0;

  // Devgan metric for the victim (independent of the aggressor's driver).
  auto victim = steiner::make_two_pin(
      length, rct::Driver{"d", 150.0, 30 * ps},
      rct::SinkInfo{"s", 15 * fF, 0.0, 0.8, false, {}}, tech);
  const double metric = noise::analyze_unbuffered(victim).sinks[0].noise;

  std::printf("== Fig F-F.1: aggressor driven through a real RC line "
              "(3 mm coupled pair) ==\n\n");
  util::Table t({"R_aggressor (ohm)", "golden peak (V)", "metric (V)",
                 "bound ratio"});
  bool bound_holds = true;
  double prev_peak = 1e9;
  bool monotone = true;
  for (double r_aggr : {1.0, 25.0, 75.0, 150.0, 400.0, 1000.0}) {
    const double peak = coupled_lines_peak(length, 150.0, r_aggr,
                                           tech.aggressor_rise, 12);
    if (metric < peak) bound_holds = false;
    if (peak > prev_peak + 1e-6) monotone = false;
    prev_peak = peak;
    t.add_row({util::Table::num(r_aggr, 0), util::Table::num(peak, 3),
               util::Table::num(metric, 3),
               util::Table::num(metric / peak, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("bound holds at every aggressor strength -> %s; "
              "weaker aggressor drivers only add margin -> %s\n\n",
              bound_holds ? "HOLDS" : "BROKEN",
              monotone ? "HOLDS" : "CHECK");

  std::printf("== Fig F-F.2: aggressor input rise-time sweep (ideal "
              "coupling, eq. 6 linear-in-slope) ==\n\n");
  util::Table t2({"rise (ps)", "metric (V)", "golden peak (V)", "ratio"});
  bool bound2 = true;
  for (double rise : {100.0 * ps, 250.0 * ps, 500.0 * ps, 1000.0 * ps}) {
    lib::Technology tech2 = tech;
    tech2.aggressor_rise = rise;
    auto v2 = steiner::make_two_pin(
        length, rct::Driver{"d", 150.0, 30 * ps},
        rct::SinkInfo{"s", 15 * fF, 0.0, 0.8, false, {}}, tech2);
    const double m2 = noise::analyze_unbuffered(v2).sinks[0].noise;
    const auto gopt = sim::golden_options_from(tech2);
    const double g2 = sim::golden_analyze_unbuffered(v2, gopt).sinks[0].peak;
    if (m2 < g2) bound2 = false;
    t2.add_row({util::Table::num(rise / ps, 0), util::Table::num(m2, 3),
                util::Table::num(g2, 3), util::Table::num(m2 / g2, 2)});
  }
  std::printf("%s\n", t2.render().c_str());
  std::printf("metric scales ~linearly with slope and bounds simulation at "
              "every rise time -> %s\n",
              bound2 ? "HOLDS" : "BROKEN");
  return bound_holds && bound2 ? 0 : 1;
}
