// Ablation A-5: multi-source repeater insertion (Lillis DAC'97 extension).
//
// A bidirectional line must stay noise-clean no matter which end drives.
// Sweep the line length: repeaters needed for the base direction alone,
// for the reverse direction alone, and for BOTH modes simultaneously. The
// joint requirement is never cheaper than the worse single direction, and
// the iterative all-modes repair converges in a couple of rounds.
#include <cstdio>

#include "core/multisource.hpp"
#include "core/tool.hpp"
#include "rct/reroot.hpp"
#include "steiner/builders.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto library = lib::default_library();
  const auto tech = lib::default_technology();

  std::printf("== Ablation A-5: repeaters for one vs both drive directions "
              "==\n\n");
  util::Table t({"L (um)", "fwd only", "rev only", "both modes", "rounds",
                 "all modes clean"});
  bool joint_ge = true;
  for (double len : {4000.0, 7000.0, 10000.0, 14000.0, 18000.0}) {
    rct::SinkInfo sink;
    sink.name = "far_end";
    sink.cap = 18.0 * fF;
    sink.noise_margin = 0.8;
    sink.required_arrival = 1.0;  // generous: noise-only comparison
    auto net = steiner::make_two_pin(
        len, rct::Driver{"near", 150.0, 30 * ps}, sink, tech);
    const auto terminal = net.sinks().front().node;
    const rct::Driver rev{"far", 250.0, 40 * ps};
    rct::SinkInfo near_pin;
    near_pin.name = "near_pin";
    near_pin.cap = 20.0 * fF;
    near_pin.noise_margin = 0.8;
    near_pin.required_arrival = 1.0;  // noise-only in the reverse view too

    // Single-direction baselines via the noise-min DP on each orientation.
    const auto fwd = core::run_buffopt(net, library);
    const auto rr = rct::reroot(net, terminal, rev, near_pin);
    const auto bwd = core::run_buffopt(rr.tree, library);

    std::vector<core::NetMode> modes = {{rct::NodeId::invalid(), {}},
                                        {terminal, rev}};
    core::MultiSourceOptions opt;
    opt.source_as_sink = near_pin;
    const auto both = core::optimize_multisource(net, library, modes, opt);
    if (both.repeaters.size() + 1 <
        std::max(fwd.vg.buffer_count, bwd.vg.buffer_count))
      joint_ge = false;
    t.add_row(
        {util::Table::num(len, 0),
         util::Table::integer(static_cast<long long>(fwd.vg.buffer_count)),
         util::Table::integer(static_cast<long long>(bwd.vg.buffer_count)),
         util::Table::integer(static_cast<long long>(both.repeaters.size())),
         util::Table::integer(static_cast<long long>(both.rounds + 1)),
         both.feasible ? "yes" : "NO"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape: joint requirement >= each single direction (within "
              "one repeater of the max) -> %s; repair converges in <= 2 "
              "rounds on two-pin lines\n",
              joint_ge ? "HOLDS" : "CHECK");
  return 0;
}
