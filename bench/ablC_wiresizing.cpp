// Ablation A-3: simultaneous wire sizing + buffer insertion vs buffering
// alone (the Lillis et al. extension the paper's Algorithm 3 descends from).
//
// Reports, per net length: delay-optimal slack with buffers only, with
// buffers + 1x/2x/4x wire widths, the improvement, and the number of
// widened wires — plus the noise-mode variant showing sizing also buys
// noise headroom (wider wires are less resistive).
#include <cmath>
#include <cstdio>

#include "core/vanginneken.hpp"
#include "seg/segment.hpp"
#include "steiner/builders.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto library = lib::default_library();
  const auto tech = lib::default_technology();
  const auto widths = lib::default_wire_widths();

  std::printf("== Ablation A-3: buffers only vs buffers + wire sizing "
              "(two-pin, delay mode) ==\n\n");
  util::Table t({"L (um)", "slack buf-only (ps)", "slack buf+size (ps)",
                 "delay gain (ps)", "widened wires"});
  bool monotone_gain = true;
  for (double len : {2000.0, 4000.0, 6000.0, 9000.0, 12000.0, 16000.0}) {
    rct::SinkInfo sink;
    sink.name = "s";
    sink.cap = 15.0 * fF;
    sink.noise_margin = 0.8;
    sink.required_arrival = 2.0 * ns;
    auto net = steiner::make_two_pin(
        len, rct::Driver{"d", 150.0, 30 * ps}, sink, tech);
    seg::segment(net, {500.0});

    core::VgOptions plain;
    plain.noise_constraints = false;
    auto sized = plain;
    sized.wire_widths = widths;
    const auto r0 = core::optimize(net, library, plain);
    const auto r1 = core::optimize(net, library, sized);
    const double gain = (r1.slack - r0.slack) / ps;
    if (gain < -1e-6) monotone_gain = false;
    t.add_row({util::Table::num(len, 0),
               util::Table::num(r0.slack / ps, 1),
               util::Table::num(r1.slack / ps, 1),
               util::Table::num(gain, 1),
               util::Table::integer(
                   static_cast<long long>(r1.wire_widths.size()))});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape check: sizing never hurts (DP superset) -> %s\n\n",
              monotone_gain ? "HOLDS" : "BROKEN");

  std::printf("== noise mode: buffers needed with and without sizing ==\n\n");
  util::Table t2({"L (um)", "buffers (buf-only)", "buffers (buf+size)"});
  for (double len : {4000.0, 8000.0, 12000.0, 16000.0}) {
    rct::SinkInfo sink;
    sink.name = "s";
    sink.cap = 15.0 * fF;
    sink.noise_margin = 0.8;
    sink.required_arrival = 50.0 * ns;  // generous: noise drives the count
    auto net = steiner::make_two_pin(
        len, rct::Driver{"d", 150.0, 30 * ps}, sink, tech);
    seg::segment(net, {500.0});
    core::VgOptions plain;
    plain.noise_constraints = true;
    plain.objective = core::VgObjective::MinBuffersMeetingConstraints;
    auto sized = plain;
    sized.wire_widths = widths;
    const auto r0 = core::optimize(net, library, plain);
    const auto r1 = core::optimize(net, library, sized);
    t2.add_row({util::Table::num(len, 0),
                util::Table::integer(
                    static_cast<long long>(r0.buffer_count)),
                util::Table::integer(
                    static_cast<long long>(r1.buffer_count))});
  }
  std::printf("%s\n", t2.render().c_str());
  std::printf("shape: widening wires lowers their resistance, stretching "
              "the Theorem-1 span, so sizing can substitute for buffers\n");
  return 0;
}
