// Figure F-B: Theorem 2 in practice — delay-optimal buffering cannot
// guarantee noise correctness.
//
// Sweep net length for a two-pin net: at each length, run unconstrained
// DelayOpt and report the worst noise of its solution against the 0.8 V
// margin, alongside BuffOpt's delay at the same buffer count. Shows the
// regime where the delay-optimal solution violates noise while the
// noise-aware one gives it up for < a few percent of delay.
#include <cstdio>

#include "core/tool.hpp"
#include "steiner/builders.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto library = lib::default_library();
  const auto tech = lib::default_technology();

  std::printf("== Fig F-B: noise of delay-optimal vs noise-aware buffering "
              "(two-pin sweep) ==\n\n");
  util::Table t({"L (um)", "DelayOpt buffers", "DelayOpt worst noise (V)",
                 "violates?", "BuffOpt delay penalty"});
  std::size_t violating_lengths = 0;
  for (double len : {2000.0, 3500.0, 5000.0, 6500.0, 8000.0, 9500.0,
                     11000.0, 12500.0, 14000.0}) {
    rct::SinkInfo sink;
    sink.name = "s";
    sink.cap = 15.0 * fF;
    sink.noise_margin = 0.8;
    sink.required_arrival = 0.0;
    auto net = steiner::make_two_pin(len, rct::Driver{"d", 150.0, 30 * ps},
                                     sink, tech);

    // DelayOpt with a small budget (the regime of Table III's DelayOpt(k)).
    const auto d = core::run_delayopt(net, library, 2);
    const double worst_noise = 0.8 - d.noise_after.worst_slack;
    const bool violates = d.noise_after.violation_count > 0;
    violating_lengths += violates;

    // BuffOpt at the same buffer count, for the delay comparison.
    core::ToolOptions bopt;
    bopt.vg.noise_constraints = true;
    bopt.vg.max_buffers = std::max<std::size_t>(d.vg.buffer_count, 1);
    const auto b = core::run(net, library, bopt);
    std::string penalty = "n/a";
    if (b.vg.feasible && b.noise_after.violation_count == 0) {
      penalty = util::Table::percent(
          (b.timing_after.max_delay - d.timing_after.max_delay) /
          d.timing_after.max_delay);
    }
    t.add_row({util::Table::num(len, 0),
               util::Table::integer(
                   static_cast<long long>(d.vg.buffer_count)),
               util::Table::num(worst_noise, 3), violates ? "YES" : "no",
               penalty});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper shape check (Theorem 2): delay-optimal solutions "
              "violate noise beyond some length -> %s\n",
              violating_lengths > 0 ? "HOLDS" : "CHECK");
  return 0;
}
