// Ablation A-4: slew-constrained buffering.
//
// Industrial flows bound the transition time at every gate input; this
// sweep shows how the max-slew limit drives buffer counts and how the slew
// constraint interacts with the paper's noise constraint (both are
// "per-stage reach" limits: noise caps unbuffered current-length, slew caps
// unbuffered RC-length).
#include <cstdio>

#include "core/vanginneken.hpp"
#include "elmore/slew.hpp"
#include "seg/segment.hpp"
#include "steiner/builders.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto library = lib::default_library();
  const auto tech = lib::default_technology();

  std::printf("== Ablation A-4: buffers needed vs max-slew limit "
              "(12 mm two-pin, generous RAT) ==\n\n");
  util::Table t({"max slew (ps)", "buffers (slew only)",
                 "buffers (slew + noise)", "achieved worst slew (ps)"});
  std::size_t prev = 0;
  bool monotone = true;
  for (double limit : {2000.0, 1000.0, 500.0, 300.0, 200.0, 120.0, 80.0}) {
    rct::SinkInfo sink;
    sink.name = "s";
    sink.cap = 15.0 * fF;
    sink.noise_margin = 0.8;
    sink.required_arrival = 50.0 * ns;
    auto net = steiner::make_two_pin(
        12000.0, rct::Driver{"d", 150.0, 30 * ps}, sink, tech);
    seg::segment(net, {400.0});

    core::VgOptions slew_only;
    slew_only.noise_constraints = false;
    slew_only.max_slew = limit * ps;
    slew_only.objective = core::VgObjective::MinBuffersMeetingConstraints;
    auto both = slew_only;
    both.noise_constraints = true;
    const auto r1 = core::optimize(net, library, slew_only);
    const auto r2 = core::optimize(net, library, both);
    const auto achieved = elmore::slews(net, r2.buffers, library);
    t.add_row({util::Table::num(limit, 0),
               r1.feasible ? util::Table::integer(
                                 static_cast<long long>(r1.buffer_count))
                           : "infeasible",
               r2.feasible ? util::Table::integer(
                                 static_cast<long long>(r2.buffer_count))
                           : "infeasible",
               util::Table::num(achieved.max_slew / ps, 1)});
    if (r1.feasible) {
      if (r1.buffer_count < prev) monotone = false;
      prev = r1.buffer_count;
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape checks: tighter slew -> more buffers (monotone) -> "
              "%s; noise adds buffers only when it binds beyond slew\n",
              monotone ? "HOLDS" : "CHECK");
  return 0;
}
