// Figure F-E: the delay-fidelity ladder — Elmore vs moment-based D2M vs
// golden transient 50% delay.
//
// The paper adopts Elmore *because* its additivity makes the DP provably
// optimal, accepting its pessimism (footnote 4 discusses moment-based
// alternatives). This bench quantifies that pessimism on the exact nets the
// optimizer sees: Elmore overestimates the simulated 50% delay by 1.2-2x on
// long resistive nets, D2M tracks simulation closely, yet all three rank
// buffered solutions the same way — which is why Elmore-optimal buffering
// is near-optimal under the accurate models too.
#include <cmath>
#include <cstdio>

#include "core/tool.hpp"
#include "moments/moments.hpp"
#include "sim/delay.hpp"
#include "steiner/builders.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto library = lib::default_library();
  const auto tech = lib::default_technology();

  std::printf("== Fig F-E.1: unbuffered two-pin nets, RC delay only (ps) "
              "==\n\n");
  util::Table t({"L (um)", "Elmore", "D2M", "golden 50%", "Elmore/golden",
                 "D2M/golden"});
  for (double len : {1000.0, 2000.0, 4000.0, 6000.0, 9000.0, 12000.0}) {
    rct::SinkInfo sink;
    sink.name = "s";
    sink.cap = 15.0 * fF;
    sink.noise_margin = 0.8;
    auto net = steiner::make_two_pin(len, rct::Driver{"d", 150.0, 0.0},
                                     sink, tech);
    const auto m =
        moments::analyze(net, rct::BufferAssignment{}, lib::BufferLibrary{});
    sim::StepDelayOptions sopt;
    sopt.driver_rise = 1e-12;
    sopt.steps_per_rise = 2.0;
    const auto s =
        sim::step_delays(net, rct::BufferAssignment{}, lib::BufferLibrary{},
                         sopt);
    const double golden = s.sinks[0].delay;
    t.add_row({util::Table::num(len, 0),
               util::Table::num(m.sinks[0].elmore / ps, 1),
               util::Table::num(m.sinks[0].d2m / ps, 1),
               util::Table::num(golden / ps, 1),
               util::Table::num(m.sinks[0].elmore / golden, 2),
               util::Table::num(m.sinks[0].d2m / golden, 2)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("== Fig F-E.2: do the three models rank buffered solutions "
              "identically? ==\n\n");
  // Take one 10 mm net; evaluate DelayOpt(k) solutions for k = 0..4 under
  // all three models and check the ranking by delay is the same.
  rct::SinkInfo sink;
  sink.name = "s";
  sink.cap = 15.0 * fF;
  sink.noise_margin = 0.8;
  sink.required_arrival = 2.0 * ns;
  auto net = steiner::make_two_pin(10000.0, rct::Driver{"d", 150.0, 30 * ps},
                                   sink, tech);
  core::ToolOptions topt;
  topt.vg.noise_constraints = false;
  topt.vg.max_buffers = 4;
  const auto res = core::run(net, library, topt);

  util::Table t2({"k", "Elmore (ps)", "D2M (ps)", "golden 50% (ps)"});
  std::vector<double> e, d, g;
  for (const auto& cb : res.vg.per_count) {
    const auto a = core::assignment_for(cb.plan);
    const auto m = moments::analyze(res.tree, a, library);
    const auto s = sim::step_delays(res.tree, a, library);
    t2.add_row({util::Table::integer(static_cast<long long>(cb.count)),
                util::Table::num(m.max_elmore / ps, 1),
                util::Table::num(m.max_d2m / ps, 1),
                util::Table::num(s.max_delay / ps, 1)});
    e.push_back(m.max_elmore);
    d.push_back(m.max_d2m);
    g.push_back(s.max_delay);
  }
  std::printf("%s\n", t2.render().c_str());
  bool same_ranking = true;
  for (std::size_t i = 1; i < e.size(); ++i) {
    const bool re = e[i] < e[i - 1];
    const bool rd = d[i] < d[i - 1];
    const bool rg = g[i] < g[i - 1];
    if (re != rd || rd != rg) same_ranking = false;
  }
  std::printf("all three models agree on whether each extra buffer helps "
              "-> %s\n",
              same_ranking ? "HOLDS" : "CHECK");
  return 0;
}
