// figH: batch-engine thread scaling.
//
// Runs the full BuffOpt pipeline over a netgen workload (default 1,000
// nets) at 1/2/4/8 worker threads and reports throughput in nets/sec plus
// speedup versus the single-threaded run. The per-net work is independent
// (no shared mutable state), so on an N-core machine the expected speedup
// at T <= N threads is close to T; the acceptance target is >= 2.5x at 4
// threads on 4+ cores. The run also cross-checks the determinism guarantee:
// aggregate buffer counts and VgStats counters must be identical at every
// thread count.
//
//   figH_batch_scaling [--count N] [--seed S] [--out FILE]
//
// --out writes {"bench", "rows": [...], "deterministic", "phases": {...}}
// where "phases" holds per-span wall-time totals from a trace of the
// 8-thread run (bench/common/workload.hpp phases_json shape).
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch.hpp"
#include "common/workload.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nbuf;

  std::size_t count = 1000;
  std::uint64_t seed = 9851;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--count" && i + 1 < argc) {
      count = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (a == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--count N] [--seed S] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto library = lib::default_library();
  const auto nets = bench::sized_testbench(library, count, seed);
  std::fprintf(stderr, "[workload] %u hardware thread(s).\n",
               std::thread::hardware_concurrency());

  std::printf("== figH: batch thread scaling, %zu-net BuffOpt workload "
              "==\n\n",
              nets.size());
  util::Table table({"threads", "wall (s)", "nets/sec", "speedup",
                     "buffers", "candidates"});
  double base_wall = 0.0;
  std::size_t base_buffers = 0, base_candidates = 0;
  bool deterministic = true;
  struct JsonRow {
    unsigned threads;
    double wall, nps;
    std::size_t buffers;
  };
  std::vector<JsonRow> json_rows;
  obs::TraceData trace;  // from the 8-thread run, for the phases JSON
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    batch::BatchOptions opt;
    opt.threads = threads;
    const batch::BatchEngine engine(opt);
    // Tracing the widest run costs <1% (docs/observability.md) and gives
    // the per-phase breakdown the BENCH JSON reports.
    std::optional<obs::TraceRecording> rec;
    if (threads == 8u && !out.empty()) rec.emplace(obs::TraceLevel::Phase);
    const batch::BatchResult res = engine.run(nets, library);
    if (rec) trace = rec->stop();
    const batch::BatchSummary& s = res.summary;
    json_rows.push_back(
        {threads, s.wall_seconds, s.nets_per_second(), s.buffers_inserted});
    if (threads == 1) {
      base_wall = s.wall_seconds;
      base_buffers = s.buffers_inserted;
      base_candidates = s.stats.candidates_generated;
    } else if (s.buffers_inserted != base_buffers ||
               s.stats.candidates_generated != base_candidates) {
      deterministic = false;
    }
    table.add_row(
        {util::Table::integer(threads), util::Table::num(s.wall_seconds, 3),
         util::Table::num(s.nets_per_second(), 1),
         util::Table::num(base_wall / s.wall_seconds, 2) + "x",
         util::Table::integer(static_cast<long long>(s.buffers_inserted)),
         util::Table::integer(
             static_cast<long long>(s.stats.candidates_generated))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("results identical across thread counts -> %s\n",
              deterministic ? "HOLDS" : "BROKEN");

  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"figH_batch_scaling\",\n"
                    "  \"nets\": %zu,\n  \"rows\": [\n",
                 nets.size());
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const auto& r = json_rows[i];
      std::fprintf(f,
                   "    {\"threads\": %u, \"wall_seconds\": %.6f, "
                   "\"nets_per_second\": %.1f, \"buffers\": %zu}%s\n",
                   r.threads, r.wall, r.nps, r.buffers,
                   i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"deterministic\": %s,\n  \"phases\": %s\n}\n",
                 deterministic ? "true" : "false",
                 bench::phases_json(trace).c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }
  return deterministic ? 0 : 1;
}
