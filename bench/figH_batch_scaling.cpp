// figH: batch-engine thread scaling.
//
// Runs the full BuffOpt pipeline over a netgen workload (default 1,000
// nets) at 1/2/4/8 worker threads and reports throughput in nets/sec plus
// speedup versus the single-threaded run. The per-net work is independent
// (no shared mutable state), so on an N-core machine the expected speedup
// at T <= N threads is close to T; the acceptance target is >= 2.5x at 4
// threads on 4+ cores. The run also cross-checks the determinism guarantee:
// aggregate buffer counts and VgStats counters must be identical at every
// thread count.
//
//   figH_batch_scaling [--count N] [--seed S]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "batch/batch.hpp"
#include "common/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nbuf;

  std::size_t count = 1000;
  std::uint64_t seed = 9851;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--count" && i + 1 < argc) {
      count = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (a == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--count N] [--seed S]\n", argv[0]);
      return 2;
    }
  }

  const auto library = lib::default_library();
  netgen::TestbenchOptions gen = bench::paper_testbench_options();
  gen.net_count = count;
  gen.seed = seed;
  std::fprintf(stderr, "[workload] generating %zu-net testbench...\n",
               count);
  const auto nets =
      batch::from_generated(netgen::generate_testbench(library, gen));
  std::fprintf(stderr, "[workload] done (%u hardware thread(s)).\n",
               std::thread::hardware_concurrency());

  std::printf("== figH: batch thread scaling, %zu-net BuffOpt workload "
              "==\n\n",
              nets.size());
  util::Table table({"threads", "wall (s)", "nets/sec", "speedup",
                     "buffers", "candidates"});
  double base_wall = 0.0;
  std::size_t base_buffers = 0, base_candidates = 0;
  bool deterministic = true;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    batch::BatchOptions opt;
    opt.threads = threads;
    const batch::BatchEngine engine(opt);
    const batch::BatchResult res = engine.run(nets, library);
    const batch::BatchSummary& s = res.summary;
    if (threads == 1) {
      base_wall = s.wall_seconds;
      base_buffers = s.buffers_inserted;
      base_candidates = s.stats.candidates_generated;
    } else if (s.buffers_inserted != base_buffers ||
               s.stats.candidates_generated != base_candidates) {
      deterministic = false;
    }
    table.add_row(
        {util::Table::integer(threads), util::Table::num(s.wall_seconds, 3),
         util::Table::num(s.nets_per_second(), 1),
         util::Table::num(base_wall / s.wall_seconds, 2) + "x",
         util::Table::integer(static_cast<long long>(s.buffers_inserted)),
         util::Table::integer(
             static_cast<long long>(s.stats.candidates_generated))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("results identical across thread counts -> %s\n",
              deterministic ? "HOLDS" : "BROKEN");
  return deterministic ? 0 : 1;
}
