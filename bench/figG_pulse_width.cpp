// Figure F-G: noise pulse width — the dimension the Devgan metric ignores.
//
// Section II-B argues peak amplitude dominates pulse width when judging
// gate failure, and accepts a peak-only metric. This bench quantifies what
// that costs: estimated and simulated pulse widths across a length sweep,
// and how many of the workload's amplitude violations a width-aware margin
// model would forgive (all forgiven nets are extra conservatism, never
// missed failures, because NM_eff >= NM_dc).
#include <cstdio>

#include "common/workload.hpp"
#include "noise/devgan.hpp"
#include "noise/pulse.hpp"
#include "sim/golden.hpp"
#include "steiner/builders.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto tech = lib::default_technology();
  const auto gopt = sim::golden_options_from(tech);
  const double rise = tech.aggressor_rise;

  std::printf("== Fig F-G.1: pulse width at half maximum, two-pin sweep "
              "==\n\n");
  util::Table t({"L (um)", "peak (V)", "width est (ps)",
                 "width golden (ps)", "est/golden"});
  for (double len : {1000.0, 2500.0, 4500.0, 7000.0, 10000.0}) {
    rct::SinkInfo sink;
    sink.name = "s";
    sink.cap = 15.0 * fF;
    sink.noise_margin = 0.8;
    auto net = steiner::make_two_pin(len, rct::Driver{"d", 150.0, 30 * ps},
                                     sink, tech);
    const auto est =
        noise::pulse_widths(net, {}, lib::BufferLibrary{}, rise);
    const auto golden = sim::golden_analyze_unbuffered(net, gopt);
    t.add_row({util::Table::num(len, 0),
               util::Table::num(golden.sinks[0].peak, 3),
               util::Table::num(est.sinks[0].width / ps, 0),
               util::Table::num(golden.sinks[0].width / ps, 0),
               util::Table::num(est.sinks[0].width /
                                    golden.sinks[0].width,
                                2)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("== Fig F-G.2: width-aware margins on the 500-net workload "
              "==\n\n");
  const auto library = lib::default_library();
  const auto nets = bench::paper_testbench(library);
  util::Table t2({"gate tau (ps)", "violating nets", "vs amplitude-only"});
  std::size_t amp_only = 0;
  for (double tau : {0.0, 50.0 * ps, 120.0 * ps, 250.0 * ps}) {
    std::size_t violating = 0;
    for (const auto& net : nets) {
      const auto amp = noise::analyze_unbuffered(net.tree);
      if (amp.violation_count == 0) continue;
      const auto w =
          noise::pulse_widths(net.tree, {}, lib::BufferLibrary{}, rise);
      if (noise::width_aware_violations(amp, w, tau) > 0) ++violating;
    }
    if (tau == 0.0) amp_only = violating;
    t2.add_row({util::Table::num(tau / ps, 0),
                util::Table::integer(static_cast<long long>(violating)),
                tau == 0.0 ? "(baseline)"
                           : util::Table::integer(
                                 static_cast<long long>(violating) -
                                 static_cast<long long>(amp_only))});
  }
  std::printf("%s\n", t2.render().c_str());
  std::printf("shape: width-awareness only FORGIVES marginal amplitude "
              "violations (narrow pulses on fast nets); it never adds any "
              "— the direction of conservatism the paper accepts\n");
  return 0;
}
