// Ablation A-1: candidate pruning on/off in the Van Ginneken DP.
//
// DESIGN.md calls out (load, slack) dominance pruning (paper Step 7,
// Theorem 5) as a key design decision. This ablation measures what pruning
// buys: candidates created, peak list size, and runtime — and confirms the
// returned slack is unchanged (pruning is provably lossless).
#include <cmath>
#include <chrono>
#include <cstdio>

#include "core/vanginneken.hpp"
#include "seg/segment.hpp"
#include "steiner/builders.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto library = lib::default_library();
  const auto tech = lib::default_technology();

  std::printf("== Ablation A-1: dominance pruning on/off (two-pin nets) "
              "==\n\n");
  util::Table t({"L (um)", "pruning", "candidates", "max list", "CPU (ms)",
                 "slack (ps)"});
  bool slack_preserved = true;
  for (double len : {3000.0, 6000.0, 9000.0, 12000.0}) {
    double slack_on = 0.0, slack_off = 0.0;
    for (bool prune : {true, false}) {
      rct::SinkInfo sink;
      sink.name = "s";
      sink.cap = 15.0 * fF;
      sink.noise_margin = 0.8;
      sink.required_arrival = 2.0 * ns;
      auto net = steiner::make_two_pin(
          len, rct::Driver{"d", 150.0, 30 * ps}, sink, tech);
      seg::segment(net, {500.0});
      core::VgOptions opt;
      opt.noise_constraints = true;
      opt.prune_candidates = prune;
      opt.max_buffers = 12;
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = core::optimize(net, library, opt);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      t.add_row({util::Table::num(len, 0), prune ? "on" : "off",
                 util::Table::integer(
                     static_cast<long long>(res.candidates_created)),
                 util::Table::integer(
                     static_cast<long long>(res.max_list_size)),
                 util::Table::num(ms, 2),
                 util::Table::num(res.slack / ps, 2)});
      (prune ? slack_on : slack_off) = res.slack;
    }
    if (std::abs(slack_on - slack_off) > 1e-13) slack_preserved = false;
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("pruning preserves the optimum (Theorem 5) -> %s\n",
              slack_preserved ? "HOLDS" : "CHECK");
  return 0;
}
