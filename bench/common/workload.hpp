// Shared workload configuration for the Section V reproduction benches.
//
// Every table bench runs on the same seed-stable 500-net testbench so rows
// are directly comparable across binaries, exactly as the paper reuses its
// 500 PowerPC nets across Tables I-IV. The sized variant and the phases
// helper serve the timing benches (figH/figI): one workload loader instead
// of per-binary copies, and one JSON shape for per-phase span timings.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "batch/batch.hpp"
#include "lib/buffer.hpp"
#include "netgen/netgen.hpp"
#include "obs/export.hpp"
#include "util/json.hpp"

namespace nbuf::bench {

inline netgen::TestbenchOptions paper_testbench_options() {
  netgen::TestbenchOptions o;  // defaults already mirror Section V
  o.net_count = 500;
  o.seed = 9851;
  return o;
}

inline std::vector<netgen::GeneratedNet> paper_testbench(
    const lib::BufferLibrary& lib) {
  std::fprintf(stderr, "[workload] generating 500-net testbench...\n");
  auto nets = netgen::generate_testbench(lib, paper_testbench_options());
  std::fprintf(stderr, "[workload] done.\n");
  return nets;
}

// Paper-shaped testbench at an arbitrary size, already adapted to batch
// input. Both timing benches (and their --count/--quick modes) load through
// here so the workload is one definition, not one copy per binary.
inline std::vector<batch::BatchNet> sized_testbench(
    const lib::BufferLibrary& lib, std::size_t count,
    std::uint64_t seed = 9851) {
  netgen::TestbenchOptions o = paper_testbench_options();
  o.net_count = count;
  o.seed = seed;
  std::fprintf(stderr, "[workload] generating %zu-net testbench...\n",
               count);
  auto nets = batch::from_generated(netgen::generate_testbench(lib, o));
  std::fprintf(stderr, "[workload] done.\n");
  return nets;
}

// Per-phase span timings as one JSON object, routed through the
// MetricsRegistry ("trace.<name>.count" counters + "trace.<name>.seconds"
// gauges) so the BENCH JSONs and `nbuf_cli --metrics` agree on the data
// path. Renders {"<name>": {"count": N, "seconds": S}, ...}, name-sorted;
// splice into a BENCH document as the value of a "phases" key.
inline std::string phases_json(const obs::TraceData& trace) {
  obs::MetricsRegistry reg;
  obs::record_trace(reg, trace);
  const obs::MetricsSnapshot snap = reg.snapshot();
  util::JsonWriter j;
  j.begin_object();
  for (const obs::MetricsSnapshot::CounterRow& c : snap.counters) {
    constexpr std::string_view prefix = "trace.";
    constexpr std::string_view suffix = ".count";
    if (c.name.size() <= prefix.size() + suffix.size() ||
        c.name.compare(0, prefix.size(), prefix) != 0 ||
        c.name.compare(c.name.size() - suffix.size(), suffix.size(),
                       suffix) != 0)
      continue;
    const std::string name = c.name.substr(
        prefix.size(), c.name.size() - prefix.size() - suffix.size());
    double seconds = 0.0;
    const std::string gauge = std::string(prefix) + name + ".seconds";
    for (const obs::MetricsSnapshot::GaugeRow& g : snap.gauges)
      if (g.name == gauge) {
        seconds = g.value;
        break;
      }
    j.key(name);
    j.begin_object();
    j.field("count", static_cast<std::size_t>(c.value));
    j.field("seconds", seconds);
    j.end_object();
  }
  j.end_object();
  return j.str();
}

}  // namespace nbuf::bench
