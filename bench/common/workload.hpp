// Shared workload configuration for the Section V reproduction benches.
//
// Every table bench runs on the same seed-stable 500-net testbench so rows
// are directly comparable across binaries, exactly as the paper reuses its
// 500 PowerPC nets across Tables I-IV.
#pragma once

#include <cstdio>
#include <vector>

#include "lib/buffer.hpp"
#include "netgen/netgen.hpp"

namespace nbuf::bench {

inline netgen::TestbenchOptions paper_testbench_options() {
  netgen::TestbenchOptions o;  // defaults already mirror Section V
  o.net_count = 500;
  o.seed = 9851;
  return o;
}

inline std::vector<netgen::GeneratedNet> paper_testbench(
    const lib::BufferLibrary& lib) {
  std::fprintf(stderr, "[workload] generating 500-net testbench...\n");
  auto nets = netgen::generate_testbench(lib, paper_testbench_options());
  std::fprintf(stderr, "[workload] done.\n");
  return nets;
}

}  // namespace nbuf::bench
