// Figure F-A: Theorem 1 behaviour — maximum noise-clean wire length as a
// function of driver resistance, coupling ratio, downstream current, and the
// eq. 17 aggressor-separation sweep. (The paper presents these relationships
// analytically in Section III-A; this bench renders them as data series.)
#include <cmath>
#include <cstdio>

#include "core/theory.hpp"
#include "lib/technology.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;
  const auto tech = lib::default_technology();
  const double r = tech.wire_res_per_um;
  const double c = tech.wire_cap_per_um;
  const double mu = tech.aggressor_slope();
  const double i = tech.coupling_current_per_um();

  std::printf("== Fig F-A.1: critical length vs driver resistance "
              "(NS = 0.8 V, I = 0) ==\n\n");
  {
    util::Table t({"R_drv (ohm)", "L_max (um)"});
    for (double rd : {0.0, 25.0, 50.0, 100.0, 150.0, 250.0, 400.0, 800.0,
                      1600.0}) {
      const auto len = core::critical_length(rd, r, i, 0.8, 0.0);
      t.add_row({util::Table::num(rd, 0), util::Table::num(*len, 0)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("shape: monotonically decreasing; L_max(0) = "
                "sqrt(2*NS/(r*i)) = %.0f um\n\n",
                std::sqrt(2.0 * 0.8 / (r * i)));
  }

  std::printf("== Fig F-A.2: critical length vs coupling ratio lambda "
              "(R_drv = 150 ohm) ==\n\n");
  {
    util::Table t({"lambda", "L_max (um)"});
    for (double lam : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
      const auto len =
          core::critical_length_coupling(150.0, r, c, lam, mu, 0.8, 0.0);
      t.add_row({util::Table::num(lam, 1), util::Table::num(*len, 0)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  std::printf("== Fig F-A.3: critical length vs downstream current "
              "(R_drv = 150 ohm) ==\n\n");
  {
    util::Table t({"I_down (mA)", "L_max (um)", "note"});
    for (double id : {0.0, 0.5, 1.0, 2.0, 4.0, 5.0, 5.4}) {
      const auto len = core::critical_length(150.0, r, i, 0.8, id * mA);
      if (len) {
        t.add_row({util::Table::num(id, 1), util::Table::num(*len, 0), ""});
      } else {
        t.add_row({util::Table::num(id, 1), "-",
                   "too late: NS < R_drv*I (Theorem 1 side condition)"});
      }
    }
    std::printf("%s\n", t.render().c_str());
  }

  std::printf("== Fig F-A.4: eq. 17 — required aggressor separation vs wire "
              "length (lambda(d) = K/d, K = 0.42 um) ==\n\n");
  {
    util::Table t({"L (um)", "d_min (um)"});
    for (double len : {500.0, 1000.0, 2000.0, 4000.0, 8000.0}) {
      const auto d = core::required_separation(150.0, r, c, 0.42, mu, 0.8,
                                               0.0, len);
      t.add_row({util::Table::num(len, 0), util::Table::num(*d, 2)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("shape: separation grows ~quadratically with length "
                "(the r*L^2/2 term dominates)\n");
  }
  return 0;
}
