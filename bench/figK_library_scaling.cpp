// figK: multi-library kernel scaling — per-node candidate work vs b.
//
// The naive Van Ginneken inner loop re-evaluates the noise/slew
// predicates for every list entry once per type. The fast kernel's
// grouped best-predecessor structure (src/core/vg_kernel.hpp) hoists
// feasibility into one binary search per candidate and answers each type
// query with a predicate-free scan, so the per-type overhead should stay
// roughly flat in b. This bench measures that
// claim end-to-end: the paper-shaped 500-net batch workload is optimized
// with synthetic strength-ladder libraries of b in {1,2,4,8,16,32,64}
// types (45% inverters, lib::make_ladder_library), fast kernel timed and
// the reference kernel run as oracle on every row.
//
//   figK_library_scaling [--quick] [--out BENCH_library.json]
//
// writes {"bench", "nodes_total", "rows": [{lib_types, nets, fast_seconds,
// ref_seconds, nets_per_second, candidates_generated,
// candidates_per_node, bp_prune_calls, bp_candidates_killed,
// identical_results}, ...]} plus a summary table on stdout. The workload
// itself is generated once with the default library so every row
// optimizes the same nets.
//
// Pass/fail: exit 1 when any row's kernels disagree, or when per-node
// candidate work grows super-linearly in b — checked as per-type
// normalized per-net time, time(64)/64 <= 2.5x time(8)/8. The exact DP's
// state is inherently ~linear in b (every ladder type is Pareto-alive, so
// staircases hold ~b entries and the count in candidates_per_node grows
// ~b — that is the O(bn^2)), so raw wall time also grows ~b;
// what the best-predecessor structure guarantees is that the per-type
// overhead on top of that state stays flat, which is exactly what the
// normalized bound pins.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "common/workload.hpp"
#include "core/tool.hpp"
#include "lib/buffer.hpp"
#include "seg/segment.hpp"

namespace {

using namespace nbuf;

struct Row {
  std::size_t lib_types = 0;
  std::size_t nets = 0;
  double fast_seconds = 0.0;
  double ref_seconds = 0.0;
  double nets_per_second = 0.0;
  std::size_t candidates = 0;
  double candidates_per_node = 0.0;
  std::size_t bp_prune_calls = 0;
  std::size_t bp_candidates_killed = 0;
  bool identical = false;
};

batch::BatchSummary run_batch(const std::vector<batch::BatchNet>& nets,
                              const lib::BufferLibrary& library,
                              core::VgKernel kernel) {
  batch::BatchOptions opt;
  opt.threads = 1;  // single-threaded: per-net times comparable down the b
                    // column without pool scheduling noise on small nets
  opt.tool.vg.kernel = kernel;
  const batch::BatchEngine engine(opt);
  return engine.run(nets, library).summary;
}

bool same_summary(const batch::BatchSummary& a,
                  const batch::BatchSummary& b) {
  return a.buffers_inserted == b.buffers_inserted &&
         a.feasible == b.feasible &&
         a.stats.candidates_generated == b.stats.candidates_generated &&
         a.stats.pruned_inferior == b.stats.pruned_inferior &&
         a.stats.pruned_infeasible == b.stats.pruned_infeasible &&
         a.stats.merged == b.stats.merged &&
         a.stats.peak_list_size == b.stats.peak_list_size;
}

Row scale_row(const std::vector<batch::BatchNet>& nets,
              std::size_t lib_types, std::size_t nodes_total) {
  const lib::BufferLibrary library =
      lib::make_ladder_library(lib_types, 0.45);
  Row row;
  row.lib_types = lib_types;
  row.nets = nets.size();
  const batch::BatchSummary fast =
      run_batch(nets, library, core::VgKernel::Fast);
  const batch::BatchSummary ref =
      run_batch(nets, library, core::VgKernel::Reference);
  row.fast_seconds = fast.wall_seconds;
  row.ref_seconds = ref.wall_seconds;
  row.nets_per_second = fast.nets_per_second();
  row.candidates = fast.stats.candidates_generated;
  row.candidates_per_node =
      nodes_total > 0 ? static_cast<double>(fast.stats.candidates_generated) /
                            static_cast<double>(nodes_total)
                      : 0.0;
  row.bp_prune_calls = fast.stats.bp_prune_calls;
  row.bp_candidates_killed = fast.stats.bp_candidates_killed;
  row.identical = same_summary(fast, ref);
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                std::size_t nodes_total) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"figK_library_scaling\",\n"
                  "  \"nodes_total\": %zu,\n  \"rows\": [\n",
               nodes_total);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"lib_types\": %zu, \"nets\": %zu, \"fast_seconds\": %.6f, "
        "\"ref_seconds\": %.6f, \"nets_per_second\": %.1f, "
        "\"candidates_generated\": %zu, \"candidates_per_node\": %.2f, "
        "\"bp_prune_calls\": %zu, \"bp_candidates_killed\": %zu, "
        "\"identical_results\": %s}%s\n",
        r.lib_types, r.nets, r.fast_seconds, r.ref_seconds,
        r.nets_per_second, r.candidates, r.candidates_per_node,
        r.bp_prune_calls, r.bp_candidates_killed,
        r.identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_library.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  // One workload for every row: the library under test changes, the nets
  // do not, so per-net times are directly comparable down the b column.
  const auto nets =
      bench::sized_testbench(lib::default_library(), quick ? 60 : 500);
  std::size_t nodes_total = 0;
  for (const batch::BatchNet& n : nets) {
    rct::RoutingTree t = n.tree;
    seg::segment(t, core::ToolOptions{}.segmenting);
    nodes_total += t.node_count();
  }

  std::vector<Row> rows;
  for (const std::size_t b : {1, 2, 4, 8, 16, 32, 64})
    rows.push_back(scale_row(nets, b, nodes_total));

  std::printf("== figK: library scaling (fast kernel, reference oracle) ==\n");
  std::printf("%-6s %-6s %-10s %-10s %-10s %-12s %-10s %s\n", "b", "nets",
              "fast s", "ref s", "nets/s", "cands/node", "bp preps",
              "identical");
  bool all_identical = true;
  double per_net_8 = 0.0, per_net_64 = 0.0;
  for (const Row& r : rows) {
    all_identical = all_identical && r.identical;
    if (r.lib_types == 8) per_net_8 = r.fast_seconds;
    if (r.lib_types == 64) per_net_64 = r.fast_seconds;
    std::printf("%-6zu %-6zu %-10.4f %-10.4f %-10.1f %-12.2f %-10zu %s\n",
                r.lib_types, r.nets, r.fast_seconds, r.ref_seconds,
                r.nets_per_second, r.candidates_per_node, r.bp_prune_calls,
                r.identical ? "yes" : "NO");
  }
  write_json(out, rows, nodes_total);

  int rc = 0;
  if (!all_identical) {
    std::printf("FAIL: kernels disagree\n");
    rc = 1;
  }
  if (per_net_8 > 0.0 && per_net_64 > 0.0) {
    const double raw = per_net_64 / per_net_8;
    const double per_type = (per_net_64 / 64.0) / (per_net_8 / 8.0);
    std::printf("64-type / 8-type batch time: %.2fx raw, %.2fx per type "
                "(bound 2.5x per type)\n",
                raw, per_type);
    if (per_type > 2.5) {
      std::printf("FAIL: per-type cost grows %.2fx from 8 to 64 types\n",
                  per_type);
      rc = 1;
    }
  }
  return rc;
}
