// Table III reproduction: noise avoidance of BuffOpt versus DelayOpt(k).
//
// Paper: DelayOpt(k) (delay-optimal with at most k buffers, k = 1..4) leaves
// noise violations on the 500-net suite no matter the k, while inserting
// more buffers than BuffOpt; BuffOpt's CPU time is lower than DelayOpt's
// because noise-dead candidates are pruned. Columns: remaining violating
// nets, total buffers inserted, candidates explored, CPU seconds.
#include <cstdio>

#include "common/workload.hpp"
#include "core/tool.hpp"
#include "util/table.hpp"

int main() {
  using namespace nbuf;

  const auto library = lib::default_library();
  const auto nets = bench::paper_testbench(library);

  struct Row {
    std::string name;
    std::size_t violating_nets = 0;
    std::size_t buffers = 0;
    std::size_t candidates = 0;
    double cpu = 0.0;
    std::size_t max_net_buffers = 0;
  };
  std::vector<Row> rows;

  // BuffOpt (Problem 3 objective) twice: uncapped (our synthetic workload
  // has a longer tail than the paper's PowerPC nets, which never needed
  // more than four buffers), and capped at 4 for the apples-to-apples
  // candidate/CPU comparison against DelayOpt(4).
  for (bool capped : {false, true}) {
    Row r;
    r.name = capped ? "BuffOpt(4)" : "BuffOpt";
    for (const auto& net : nets) {
      core::ToolOptions opt;
      if (capped) opt.vg.max_buffers = 4;
      const auto res = core::run_buffopt(net.tree, library, opt);
      r.violating_nets += res.noise_after.violation_count > 0 ? 1 : 0;
      r.buffers += res.vg.buffer_count;
      r.candidates += res.vg.candidates_created;
      r.cpu += res.optimize_seconds;
      r.max_net_buffers = std::max(r.max_net_buffers, res.vg.buffer_count);
    }
    rows.push_back(r);
  }
  for (std::size_t k = 1; k <= 4; ++k) {
    Row r;
    r.name = "DelayOpt(" + std::to_string(k) + ")";
    for (const auto& net : nets) {
      const auto res = core::run_delayopt(net.tree, library, k);
      r.violating_nets += res.noise_after.violation_count > 0 ? 1 : 0;
      r.buffers += res.vg.buffer_count;
      r.candidates += res.vg.candidates_created;
      r.cpu += res.optimize_seconds;
      r.max_net_buffers = std::max(r.max_net_buffers, res.vg.buffer_count);
    }
    rows.push_back(r);
  }

  std::printf("== Table III: BuffOpt vs DelayOpt(k), 500 nets ==\n\n");
  util::Table t({"algorithm", "violating nets", "buffers inserted",
                 "candidates", "CPU (s)"});
  for (const auto& r : rows)
    t.add_row({r.name,
               util::Table::integer(static_cast<long long>(r.violating_nets)),
               util::Table::integer(static_cast<long long>(r.buffers)),
               util::Table::integer(static_cast<long long>(r.candidates)),
               util::Table::num(r.cpu, 3)});
  std::printf("%s\n", t.render().c_str());

  const Row& buff = rows[0];
  const Row& buff4 = rows[1];
  const Row& d4 = rows.back();
  std::printf("max buffers BuffOpt needed on any net: %zu "
              "(paper's workload: 4)\n",
              buff.max_net_buffers);
  std::printf("\npaper shape checks:\n");
  std::printf("  BuffOpt fixes everything, DelayOpt(4) does not  -> %s\n",
              (buff.violating_nets == 0 && d4.violating_nets > 0) ? "HOLDS"
                                                                   : "CHECK");
  std::printf("  DelayOpt(4) inserts more buffers than BuffOpt   -> %s "
              "(+%lld)\n",
              d4.buffers > buff.buffers ? "HOLDS" : "CHECK",
              static_cast<long long>(d4.buffers) -
                  static_cast<long long>(buff.buffers));
  std::printf("  BuffOpt(4) explores fewer candidates than DelayOpt(4) "
              "-> %s (%zu vs %zu; CPU %.3f vs %.3f s)\n",
              buff4.candidates <= d4.candidates ? "HOLDS" : "CHECK",
              buff4.candidates, d4.candidates, buff4.cpu, d4.cpu);
  return buff.violating_nets == 0 ? 0 : 1;
}
