// Table I reproduction: sink distribution of the 500 test nets.
//
// Paper: the 500 largest-total-capacitance nets of a PowerPC design, bucketed
// by sink count. Ours: the synthetic testbench's distribution in the same
// bucketing, plus the capacitance/wirelength summary that motivated the
// "largest 500" selection.
#include <cstdio>

#include "common/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto lib = lib::default_library();
  const auto nets = bench::paper_testbench(lib);

  std::vector<int> sink_counts;
  std::vector<double> caps, lengths;
  for (const auto& n : nets) {
    sink_counts.push_back(static_cast<int>(n.sink_count));
    caps.push_back(n.total_cap / pF);
    lengths.push_back(n.wirelength / mm);
  }
  const auto hist = util::histogram(sink_counts);

  std::printf("== Table I: sink distribution of the 500 test nets ==\n\n");
  util::Table t({"sinks", "nets", "share"});
  auto bucket = [&](int lo, int hi, const char* label) {
    std::size_t c = 0;
    for (const auto& [k, n] : hist)
      if (k >= lo && k <= hi) c += n;
    t.add_row({label, util::Table::integer(static_cast<long long>(c)),
               util::Table::percent(static_cast<double>(c) / nets.size())});
  };
  bucket(1, 1, "1");
  bucket(2, 2, "2");
  bucket(3, 3, "3");
  bucket(4, 4, "4");
  bucket(5, 5, "5");
  bucket(6, 10, "6-10");
  bucket(11, 20, "11-20");
  std::printf("%s\n", t.render().c_str());

  const auto cap_s = util::summarize(caps);
  const auto len_s = util::summarize(lengths);
  std::printf("total capacitance: mean %.2f pF, min %.2f, max %.2f\n",
              cap_s.mean, cap_s.min, cap_s.max);
  std::printf("wirelength       : mean %.2f mm, min %.2f, max %.2f\n",
              len_s.mean, len_s.min, len_s.max);
  std::printf("\npaper shape check: few-sink nets dominate (as in Table I); "
              "1-2 sinks cover %.0f%% of nets\n",
              100.0 * static_cast<double>(hist.at(1) + hist.at(2)) /
                  nets.size());
  return 0;
}
