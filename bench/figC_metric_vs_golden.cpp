// Figure F-C: conservatism of the Devgan metric vs the golden simulator.
//
// The metric is a provable upper bound on peak coupled noise (Section II-B);
// this bench quantifies the bound's tightness: peak-noise series over a
// two-pin length sweep and the bound ratio distribution over random
// multi-sink nets — the quantitative backdrop for Table II's "423 metric vs
// 386 golden" conservatism gap.
#include <cstdio>

#include "noise/devgan.hpp"
#include "sim/golden.hpp"
#include "steiner/builders.hpp"
#include "steiner/steiner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto tech = lib::default_technology();
  const auto gopt = sim::golden_options_from(tech);

  std::printf("== Fig F-C.1: metric vs simulated peak noise, two-pin sweep "
              "==\n\n");
  {
    util::Table t({"L (um)", "metric (V)", "golden peak (V)", "ratio"});
    for (double len : {500.0, 1000.0, 2000.0, 3000.0, 4500.0, 6000.0,
                       9000.0, 12000.0}) {
      rct::SinkInfo sink;
      sink.name = "s";
      sink.cap = 15.0 * fF;
      sink.noise_margin = 0.8;
      auto net = steiner::make_two_pin(
          len, rct::Driver{"d", 150.0, 30 * ps}, sink, tech);
      const double m = noise::analyze_unbuffered(net).sinks[0].noise;
      const double g =
          sim::golden_analyze_unbuffered(net, gopt).sinks[0].peak;
      t.add_row({util::Table::num(len, 0), util::Table::num(m, 3),
                 util::Table::num(g, 3), util::Table::num(m / g, 2)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("shape: ratio >= 1 everywhere (upper bound); tight for "
                "short nets, increasingly conservative with length (the "
                "metric's steady-state assumption ignores the aggressor's "
                "finite transition time — the caveat Section II-B "
                "discusses)\n\n");
  }

  std::printf("== Fig F-C.2: bound ratio over 40 random multi-sink nets "
              "==\n\n");
  {
    util::Rng rng(2718);
    std::vector<double> ratios;
    std::size_t bound_violations = 0;
    for (int trial = 0; trial < 40; ++trial) {
      const int sinks = rng.uniform_int(2, 10);
      const double span = rng.uniform(2000.0, 9000.0);
      std::vector<steiner::PinSpec> pins;
      for (int i = 0; i < sinks; ++i) {
        steiner::PinSpec p;
        p.at = {rng.uniform(0.2 * span, span), rng.uniform(0.0, span)};
        p.info.name = "s" + std::to_string(i);
        p.info.cap = rng.uniform(5 * fF, 30 * fF);
        p.info.noise_margin = 0.8;
        pins.push_back(p);
      }
      auto net = steiner::build_tree(
          {0, 0}, rct::Driver{"d", rng.uniform(60.0, 350.0), 30 * ps}, pins,
          tech);
      const auto metric = noise::analyze_unbuffered(net);
      const auto golden = sim::golden_analyze_unbuffered(net, gopt);
      for (std::size_t s = 0; s < metric.sinks.size(); ++s) {
        if (golden.sinks[s].peak <= 1e-6) continue;
        const double ratio = metric.sinks[s].noise / golden.sinks[s].peak;
        ratios.push_back(ratio);
        if (ratio < 1.0 - 1e-9) ++bound_violations;
      }
    }
    const auto s = util::summarize(ratios);
    util::Table t({"stat", "metric/golden ratio"});
    t.add_row({"sinks analyzed",
               util::Table::integer(static_cast<long long>(s.count))});
    t.add_row({"min", util::Table::num(s.min, 3)});
    t.add_row({"mean", util::Table::num(s.mean, 3)});
    t.add_row({"p90", util::Table::num(util::percentile(ratios, 0.9), 3)});
    t.add_row({"max", util::Table::num(s.max, 3)});
    std::printf("%s\n", t.render().c_str());
    std::printf("upper-bound property violated at %zu sinks (must be 0) -> "
                "%s\n",
                bound_violations, bound_violations == 0 ? "HOLDS" : "BROKEN");
    return bound_violations == 0 ? 0 : 1;
  }
}
