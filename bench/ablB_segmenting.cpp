// Ablation A-2: wire segmenting granularity vs solution quality and runtime
// — the Alpert-Devgan tradeoff the paper leans on (footnote 3).
//
// Coarse segmenting = few candidate buffer sites = fast but suboptimal;
// fine segmenting approaches the continuous optimum at higher cost. Run on
// a 60-net slice of the standard testbench.
#include <cstdio>

#include "common/workload.hpp"
#include "core/tool.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nbuf;
  using namespace nbuf::units;

  const auto library = lib::default_library();
  auto opts = bench::paper_testbench_options();
  opts.net_count = 60;
  const auto nets = netgen::generate_testbench(library, opts);

  std::printf("== Ablation A-2: segmenting granularity (60 nets) ==\n\n");
  util::Table t({"segment (um)", "buffer sites", "violations left",
                 "mean delay (ps)", "buffers", "CPU (s)"});
  double prev_delay = 0.0;
  bool monotone = true;
  for (double seg_len : {4000.0, 2000.0, 1000.0, 500.0, 250.0, 125.0}) {
    std::size_t sites = 0, violations = 0, buffers = 0;
    double delay_sum = 0.0, cpu = 0.0;
    for (const auto& net : nets) {
      core::ToolOptions opt;
      opt.segmenting.max_segment_length = seg_len;
      const auto res = core::run_buffopt(net.tree, library, opt);
      sites += res.tree.node_count() - net.tree.node_count();
      violations += res.noise_after.violation_count > 0 ? 1 : 0;
      buffers += res.vg.buffer_count;
      delay_sum += res.timing_after.max_delay;
      cpu += res.optimize_seconds;
    }
    const double mean_delay = delay_sum / static_cast<double>(nets.size());
    t.add_row({util::Table::num(seg_len, 0),
               util::Table::integer(static_cast<long long>(sites)),
               util::Table::integer(static_cast<long long>(violations)),
               util::Table::num(mean_delay / ps, 1),
               util::Table::integer(static_cast<long long>(buffers)),
               util::Table::num(cpu, 3)});
    if (prev_delay > 0.0 && mean_delay > prev_delay * 1.02) monotone = false;
    prev_delay = mean_delay;
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper shape check: finer segmenting -> better-or-equal delay "
              "at higher CPU -> %s\n",
              monotone ? "HOLDS" : "CHECK");
  return 0;
}
