// figI: fast Van Ginneken kernel A/B speedup.
//
// Times the reference (seed) kernel against the fast kernel (sort-free
// pruning, lazy wire offsets, read-view insertion, pooled lists) on
//
//   * figD-style serial chains: two-pin nets segmented at 500 µm with 512
//     candidate sites (the acceptance workload, n >= 500), in both the
//     noise-constrained BuffOpt shape and the delay-only shape, plus a
//     wire-sizing variant (the one path where the fast kernel still sorts);
//   * a netgen batch workload through BatchEngine at 1 and 8 threads, both
//     kernels, so the speedup is also reported end-to-end.
//
// Every pairing cross-checks bit-identity (slack bits, buffer counts, DP
// counters) and the JSON carries the verdict. Output is machine-readable:
//
//   figI_kernel_speedup [--quick] [--out BENCH_vg_kernel.json]
//
// writes {"workloads":[{name, sites|nets, threads, ref_seconds,
// fast_seconds, speedup, identical_results}, ...], "phases": {...}} (the
// phases object is a per-span wall-time breakdown of one traced fast-kernel
// batch run — bench/common/workload.hpp phases_json shape) plus a summary
// line per workload on stdout.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "common/workload.hpp"
#include "core/vanginneken.hpp"
#include "obs/trace.hpp"
#include "lib/wire.hpp"
#include "seg/segment.hpp"
#include "steiner/builders.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using Clock = std::chrono::steady_clock;

rct::Driver drv() { return rct::Driver{"d", 150.0, 30 * ps}; }

rct::SinkInfo snk() {
  rct::SinkInfo s;
  s.name = "s";
  s.cap = 15.0 * fF;
  s.noise_margin = 0.8;
  s.required_arrival = 2.0 * ns;
  return s;
}

struct Row {
  std::string name;
  std::size_t sites = 0;    // candidate sites (serial rows)
  std::size_t nets = 0;     // workload size (batch rows)
  unsigned threads = 1;
  double ref_seconds = 0.0;
  double fast_seconds = 0.0;
  bool identical = false;

  [[nodiscard]] double speedup() const {
    return fast_seconds > 0.0 ? ref_seconds / fast_seconds : 0.0;
  }
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Best-of-`reps` wall time for one kernel on one segmented net; also
// returns the result of the last run for the identity cross-check.
double time_serial(const rct::RoutingTree& segmented,
                   const lib::BufferLibrary& library, core::VgOptions opt,
                   core::VgKernel kernel, int reps, core::VgResult* out) {
  opt.kernel = kernel;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    auto res = core::optimize(segmented, library, opt);
    const double dt = seconds_since(t0);
    if (r == 0 || dt < best) best = dt;
    if (out != nullptr) *out = std::move(res);
  }
  return best;
}

bool same_result(const core::VgResult& a, const core::VgResult& b) {
  return a.feasible == b.feasible && a.slack == b.slack &&
         a.buffer_count == b.buffer_count &&
         a.stats.candidates_generated == b.stats.candidates_generated &&
         a.stats.pruned_inferior == b.stats.pruned_inferior &&
         a.stats.pruned_infeasible == b.stats.pruned_infeasible &&
         a.stats.merged == b.stats.merged &&
         a.stats.peak_list_size == b.stats.peak_list_size;
}

Row serial_row(const std::string& name, std::size_t sites,
               const lib::BufferLibrary& library, const core::VgOptions& opt,
               int reps) {
  auto t = steiner::make_two_pin(500.0 * static_cast<double>(sites), drv(),
                                 snk(), lib::default_technology());
  seg::segment(t, {500.0});
  Row row;
  row.name = name;
  row.sites = sites;
  core::VgResult ref, fast;
  row.ref_seconds =
      time_serial(t, library, opt, core::VgKernel::Reference, reps, &ref);
  row.fast_seconds =
      time_serial(t, library, opt, core::VgKernel::Fast, reps, &fast);
  row.identical = same_result(fast, ref);
  return row;
}

double time_batch(const std::vector<batch::BatchNet>& nets,
                  const lib::BufferLibrary& library, unsigned threads,
                  core::VgKernel kernel, batch::BatchSummary* out) {
  batch::BatchOptions opt;
  opt.threads = threads;
  opt.tool.vg.kernel = kernel;
  const batch::BatchEngine engine(opt);
  const auto res = engine.run(nets, library);
  if (out != nullptr) *out = res.summary;
  return res.summary.wall_seconds;
}

Row batch_row(const std::vector<batch::BatchNet>& nets,
              const lib::BufferLibrary& library, unsigned threads) {
  Row row;
  row.name = "batch_buffopt_t" + std::to_string(threads);
  row.nets = nets.size();
  row.threads = threads;
  batch::BatchSummary ref, fast;
  row.ref_seconds =
      time_batch(nets, library, threads, core::VgKernel::Reference, &ref);
  row.fast_seconds =
      time_batch(nets, library, threads, core::VgKernel::Fast, &fast);
  row.identical =
      ref.buffers_inserted == fast.buffers_inserted &&
      ref.feasible == fast.feasible &&
      ref.stats.candidates_generated == fast.stats.candidates_generated &&
      ref.stats.pruned_inferior == fast.stats.pruned_inferior &&
      ref.stats.merged == fast.stats.merged;
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                const std::string& phases) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"figI_kernel_speedup\",\n"
                  "  \"workloads\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"sites\": %zu, \"nets\": %zu, "
        "\"threads\": %u, \"ref_seconds\": %.6f, \"fast_seconds\": %.6f, "
        "\"speedup\": %.3f, \"identical_results\": %s}%s\n",
        r.name.c_str(), r.sites, r.nets, r.threads, r.ref_seconds,
        r.fast_seconds, r.speedup(), r.identical ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"phases\": %s\n}\n", phases.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_vg_kernel.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  const auto library = lib::default_library();
  const std::size_t sites = quick ? 128 : 512;
  const int reps = quick ? 1 : 3;
  std::vector<Row> rows;

  {
    core::VgOptions opt;  // BuffOpt shape: noise-constrained
    opt.max_buffers = 24;
    rows.push_back(serial_row("chain_buffopt", sites, library, opt, reps));
  }
  {
    core::VgOptions opt;
    opt.noise_constraints = false;
    opt.max_buffers = 24;
    rows.push_back(serial_row("chain_delayopt", sites, library, opt, reps));
  }
  {
    core::VgOptions opt;  // wire sizing: the fork path that still sorts
    opt.max_buffers = 24;
    opt.wire_widths = lib::default_wire_widths();
    rows.push_back(serial_row("chain_wiresizing", sites / 4, library, opt,
                              reps));
  }

  const auto nets = bench::sized_testbench(library, quick ? 60 : 500);
  for (const unsigned threads : {1u, 8u})
    rows.push_back(batch_row(nets, library, threads));

  // One traced fast-kernel run for the per-phase breakdown in the JSON
  // (kept out of the timed A/B pairs above so tracing cannot skew them).
  obs::TraceData trace;
  {
    obs::TraceRecording rec(obs::TraceLevel::Phase);
    time_batch(nets, library, 8, core::VgKernel::Fast, nullptr);
    trace = rec.stop();
  }

  std::printf("== figI: fast-kernel speedup (reference vs fast) ==\n");
  bool all_identical = true;
  for (const Row& r : rows) {
    all_identical = all_identical && r.identical;
    std::printf(
        "%-20s  sites=%-4zu nets=%-4zu threads=%u  ref=%.4fs fast=%.4fs  "
        "speedup=%.2fx  identical=%s\n",
        r.name.c_str(), r.sites, r.nets, r.threads, r.ref_seconds,
        r.fast_seconds, r.speedup(), r.identical ? "yes" : "NO");
  }
  write_json(out, rows, bench::phases_json(trace));
  if (!all_identical) {
    std::printf("FAIL: kernels disagree\n");
    return 1;
  }
  return 0;
}
