// figL: optimization-service throughput — cold vs incremental PERTURB.
//
// The point of nbuf_serve (src/serve) is that a persistent session can
// answer a perturb-and-reoptimize request from its per-net subtree cache
// (core::IncrementalContext) instead of re-running the whole Van Ginneken
// DP. This bench measures that end-to-end, sockets included: a real Server
// on an ephemeral loopback port, a client pipelining the 120-case
// perturbation workload (local wire rescales and sink retunes round-robin
// across the loaded nets), once as plain PERTURB (incremental) and once as
// "full 1" PERTURB (the same edits, cache discarded — a from-scratch run),
// at 1/2/4/8 server worker threads.
//
//   figL_serve_throughput [--quick] [--out BENCH_serve.json]
//
// writes {"bench", "nets", "cases", "rows": [{threads, cold_seconds,
// incremental_seconds, cold_rps, incremental_rps, speedup, identical},
// ...]} plus a summary table on stdout.
//
// Pass/fail: exit 1 when any incremental answer differs from its
// from-scratch twin (solution bytes, DP-effort trailer excluded), or when
// the single-thread incremental stream is not >= 3x the cold throughput
// (>= 1.2x under --quick, a loose floor for noisy shared CI runners).
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "io/netfile.hpp"
#include "lib/buffer.hpp"
#include "lib/technology.hpp"
#include "rct/assignment.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "steiner/builders.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using serve::Frame;
using serve::Opcode;

struct Row {
  std::size_t threads = 0;
  double cold_seconds = 0.0;
  double inc_seconds = 0.0;
  double cold_rps = 0.0;
  double inc_rps = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

struct Workload {
  std::vector<std::string> names;
  std::vector<std::string> payloads;      // LOAD_NET texts
  std::vector<std::string> edits;         // one edit line per case
  std::vector<std::size_t> target;        // case -> net index
};

// The solution portion of a PERTURB response: everything except the
// DP-effort trailer, which legitimately differs between an incremental run
// and the cold run it must otherwise match byte-for-byte.
std::string solution_of(const std::string& payload) {
  std::string out;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("reused ", 0) == 0 || line.rfind("recomputed ", 0) == 0)
      continue;
    out += line + "\n";
  }
  return out;
}

// Branchy multi-sink clock/control-style trees (8-32 sinks). Topology is
// the lever that makes incrementality pay: re-optimizing after a local
// edit recomputes only the edit's root spine plus its frontier, so on a
// near-chain two-pin net a uniformly placed edit forces on average half
// the DP over again (speedup structurally capped near 2x), while on a
// balanced tree the spine is one root path and every sibling subtree
// comes from the cache.
Workload make_workload(std::size_t net_count, std::size_t case_count) {
  Workload w;
  const lib::BufferLibrary lib = lib::default_library();
  const lib::Technology tech = lib::default_technology();
  using namespace nbuf::units;
  for (std::size_t i = 0; i < net_count; ++i) {
    const int depth = 3 + static_cast<int>(i % 3);  // 8/16/32 sinks
    const double edge = 400.0 + 150.0 * static_cast<double>(i % 4);
    rct::SinkInfo proto;
    proto.name = "s";
    proto.cap = (8.0 + static_cast<double>(i % 5) * 4.0) * fF;
    proto.required_arrival = 3000.0 * ps;  // loose: feasibility guaranteed
    proto.noise_margin = 0.8;
    const rct::RoutingTree tree = steiner::make_balanced_tree(
        depth, edge, rct::Driver{"drv", 150.0, 30.0 * ps}, proto, tech);
    w.names.push_back("figl" + std::to_string(i));
    std::ostringstream out;
    // Fine-grained segmenting: more buffer sites per net, so the DP term a
    // PERTURB re-answers dominates the fixed protocol/parse overhead.
    out << "segment 150\n";
    io::write_net(out, w.names.back(), tree, rct::BufferAssignment{}, lib);
    w.payloads.push_back(out.str());
  }
  // Deterministic local edits, round-robin across nets so pipelined bursts
  // coalesce onto the worker pool (consecutive requests hit distinct nets).
  // Node/sink indices are resolved per net after LOAD_NET reports shapes.
  for (std::size_t c = 0; c < case_count; ++c)
    w.target.push_back(c % net_count);
  w.edits.resize(case_count);
  return w;
}

// "ok net <name> nodes N sinks M" -> (N, M).
std::pair<std::size_t, std::size_t> shape_of(const std::string& payload) {
  std::size_t nodes = 0;
  std::size_t sinks = 0;
  const std::size_t at = payload.find("nodes ");
  if (at != std::string::npos)
    std::sscanf(payload.c_str() + at, "nodes %zu sinks %zu", &nodes, &sinks);
  return {nodes, sinks};
}

// One timed pass: fresh connection (fresh session), load + cold-optimize
// every net, then pipeline the whole perturbation stream and time it.
struct PassResult {
  double seconds = 0.0;
  std::vector<std::string> solutions;  // per case, trailer stripped
  bool ok = true;
};

PassResult run_pass(std::uint16_t port, Workload& w, bool full) {
  serve::Client client = serve::Client::connect("127.0.0.1", port);
  PassResult res;
  for (std::size_t i = 0; i < w.payloads.size(); ++i) {
    const Frame loaded = client.call(Opcode::LoadNet, w.payloads[i]);
    const auto [nodes, sinks] = shape_of(loaded.payload);
    if (loaded.op == Opcode::Error || nodes < 4 || sinks < 1) {
      std::fprintf(stderr, "LOAD_NET %s failed: %s\n", w.names[i].c_str(),
                   loaded.payload.c_str());
      res.ok = false;
      return res;
    }
    // Resolve this net's edit parameters now that the shape is known.
    for (std::size_t c = 0; c < w.edits.size(); ++c) {
      if (w.target[c] != i) continue;
      char buf[128];
      if (c % 3 == 2) {
        std::snprintf(buf, sizeof(buf), "set_sink %zu %.1f %.1f %.2f",
                      c % sinks, 8.0 + static_cast<double>(c % 24),
                      1200.0 + 10.0 * static_cast<double>(c % 40),
                      0.6 + 0.01 * static_cast<double>(c % 25));
      } else {
        // Never node 0 (the source has no parent wire).
        const std::size_t node = 1 + (c * 7) % (nodes - 1);
        std::snprintf(buf, sizeof(buf), "scale_wire %zu %.2f %.2f %.2f",
                      node, 0.7 + 0.01 * static_cast<double>(c % 120),
                      0.8 + 0.01 * static_cast<double>(c % 80),
                      0.9 + 0.01 * static_cast<double>(c % 40));
      }
      w.edits[c] = buf;
    }
    const Frame opt = client.call(
        Opcode::Optimize, "net " + w.names[i] + "\nmax_buffers 8\n");
    if (opt.op == Opcode::Error) {
      std::fprintf(stderr, "OPTIMIZE %s failed: %s\n", w.names[i].c_str(),
                   opt.payload.c_str());
      res.ok = false;
      return res;
    }
  }

  std::vector<std::pair<Opcode, std::string>> burst;
  burst.reserve(w.edits.size());
  for (std::size_t c = 0; c < w.edits.size(); ++c)
    burst.emplace_back(Opcode::Perturb,
                       "net " + w.names[w.target[c]] + "\n" +
                           (full ? "full 1\n" : "") + w.edits[c] + "\n");

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Frame> responses = client.pipeline(burst);
  const auto t1 = std::chrono::steady_clock::now();
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const Frame& r : responses) {
    if (r.op == Opcode::Error) {
      std::fprintf(stderr, "PERTURB failed: %s\n", r.payload.c_str());
      res.ok = false;
      return res;
    }
    res.solutions.push_back(solution_of(r.payload));
  }
  return res;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                std::size_t nets, std::size_t cases) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"figL_serve_throughput\",\n"
                  "  \"nets\": %zu,\n  \"cases\": %zu,\n  \"rows\": [\n",
               nets, cases);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"cold_seconds\": %.6f, "
                 "\"incremental_seconds\": %.6f, \"cold_rps\": %.1f, "
                 "\"incremental_rps\": %.1f, \"speedup\": %.2f, "
                 "\"identical\": %s}%s\n",
                 r.threads, r.cold_seconds, r.inc_seconds, r.cold_rps,
                 r.inc_rps, r.speedup, r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  const std::size_t nets = quick ? 6 : 12;
  const std::size_t cases = quick ? 36 : 120;
  Workload workload = make_workload(nets, cases);

  std::printf("== figL: serve throughput, cold vs incremental PERTURB "
              "(%zu nets, %zu cases) ==\n",
              nets, cases);
  std::printf("%-8s %-10s %-10s %-10s %-10s %-8s %s\n", "threads", "cold s",
              "inc s", "cold r/s", "inc r/s", "speedup", "identical");

  std::vector<Row> rows;
  bool all_identical = true;
  double speedup_1thread = 0.0;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    serve::ServerOptions sopt;
    sopt.threads = threads;
    serve::Server server(sopt);
    server.start();
    // Cold first, incremental second — separate connections, so separate
    // sessions: the cold pass cannot warm the incremental pass's caches.
    const PassResult cold = run_pass(server.port(), workload, /*full=*/true);
    const PassResult inc = run_pass(server.port(), workload, /*full=*/false);
    server.stop();
    if (!cold.ok || !inc.ok) return 1;

    Row row;
    row.threads = threads;
    row.cold_seconds = cold.seconds;
    row.inc_seconds = inc.seconds;
    row.cold_rps = static_cast<double>(cases) / cold.seconds;
    row.inc_rps = static_cast<double>(cases) / inc.seconds;
    row.speedup = cold.seconds / inc.seconds;
    row.identical = cold.solutions == inc.solutions;
    all_identical = all_identical && row.identical;
    if (threads == 1) speedup_1thread = row.speedup;
    rows.push_back(row);
    std::printf("%-8zu %-10.4f %-10.4f %-10.1f %-10.1f %-8.2f %s\n",
                row.threads, row.cold_seconds, row.inc_seconds, row.cold_rps,
                row.inc_rps, row.speedup, row.identical ? "yes" : "NO");
  }
  write_json(out, rows, nets, cases);

  int rc = 0;
  if (!all_identical) {
    std::printf("FAIL: an incremental answer diverged from its "
                "from-scratch twin\n");
    rc = 1;
  }
  const double floor = quick ? 1.2 : 3.0;
  std::printf("single-thread incremental speedup: %.2fx (floor %.1fx)\n",
              speedup_1thread, floor);
  if (speedup_1thread < floor) {
    std::printf("FAIL: incremental PERTURB only %.2fx faster than cold\n",
                speedup_1thread);
    rc = 1;
  }
  return rc;
}
