// Table II reproduction: noise violations before and after BuffOpt, as seen
// by the Devgan-metric tool (BuffOpt itself) and by the detailed
// simulation-based analyzer (our 3dnoise substitute).
//
// Paper row:        before BuffOpt   after BuffOpt
//   BuffOpt (metric)     423              0
//   3dnoise (golden)     386              0
// and every 3dnoise-flagged net was also metric-flagged (the metric is a
// conservative upper bound).
#include <cstdio>

#include "common/workload.hpp"
#include "core/tool.hpp"
#include "sim/golden.hpp"
#include "util/table.hpp"

int main() {
  using namespace nbuf;

  const auto library = lib::default_library();
  const auto nets = bench::paper_testbench(library);
  const auto gopt = sim::golden_options_from(lib::default_technology());

  std::size_t metric_before = 0, golden_before = 0;
  std::size_t metric_after = 0, golden_after = 0;
  std::size_t golden_not_metric = 0;

  for (const auto& net : nets) {
    const auto res = core::run_buffopt(net.tree, library);
    const bool m_before = res.noise_before.violation_count > 0;
    const bool m_after = res.noise_after.violation_count > 0;
    const bool g_before =
        sim::golden_analyze_unbuffered(res.tree, gopt).violation_count > 0;
    const bool g_after =
        sim::golden_analyze(res.tree, res.vg.buffers, library, gopt)
            .violation_count > 0;
    metric_before += m_before;
    metric_after += m_after;
    golden_before += g_before;
    golden_after += g_after;
    if (g_before && !m_before) ++golden_not_metric;
  }

  std::printf(
      "== Table II: nets with noise violations before/after BuffOpt ==\n\n");
  util::Table t({"analysis", "before BuffOpt", "after BuffOpt"});
  t.add_row({"BuffOpt (Devgan metric)",
             util::Table::integer(static_cast<long long>(metric_before)),
             util::Table::integer(static_cast<long long>(metric_after))});
  t.add_row({"golden simulator (3dnoise stand-in)",
             util::Table::integer(static_cast<long long>(golden_before)),
             util::Table::integer(static_cast<long long>(golden_after))});
  std::printf("%s\n", t.render().c_str());

  std::printf("metric conservatism: %zu nets flagged by metric only "
              "(paper: 423 - 386 = 37); golden-flagged but metric-clean "
              "nets: %zu (must be 0)\n",
              metric_before - golden_before, golden_not_metric);
  std::printf("\npaper shape check: metric >= golden before; both 0 after "
              "-> %s\n",
              (metric_before >= golden_before && metric_after == 0 &&
               golden_after == 0 && golden_not_metric == 0)
                  ? "HOLDS"
                  : "VIOLATED");
  return metric_after == 0 && golden_after == 0 ? 0 : 1;
}
