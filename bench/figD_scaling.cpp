// Figure F-D: runtime scaling of the three algorithms (google-benchmark).
//
// Paper complexity claims: Algorithm 1 is O(n); Algorithms 2 and 3 are
// O(n^2) worst case (Algorithm 2 typically linear since merge forks are
// rare). The series below report wall time against the segmented node
// count; complexity shows as the reported BigO fit.
#include <benchmark/benchmark.h>

#include "core/alg1_single_sink.hpp"
#include "noise/devgan.hpp"
#include "core/alg2_multi_sink.hpp"
#include "core/vanginneken.hpp"
#include "seg/segment.hpp"
#include "steiner/builders.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

rct::Driver drv() { return rct::Driver{"d", 150.0, 30 * ps}; }

rct::SinkInfo snk(const char* name = "s") {
  rct::SinkInfo s;
  s.name = name;
  s.cap = 15.0 * fF;
  s.noise_margin = 0.8;
  s.required_arrival = 2.0 * ns;
  return s;
}

const lib::BufferLibrary& library() {
  static const lib::BufferLibrary l = lib::default_library();
  return l;
}

void BM_Alg1_TwoPin(benchmark::State& state) {
  // Net length scales with n; Algorithm 1 walks wires and places buffers
  // continuously, so work scales with the number of wires after splitting.
  const auto n = static_cast<double>(state.range(0));
  auto t = steiner::make_two_pin(500.0 * n, drv(), snk(),
                                 lib::default_technology());
  seg::segment(t, {500.0});
  for (auto _ : state) {
    auto res = core::avoid_noise_single_sink(t, library());
    benchmark::DoNotOptimize(res.buffer_count);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Alg1_TwoPin)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_Alg2_BalancedTree(benchmark::State& state) {
  const auto depth = static_cast<int>(state.range(0));
  auto t = steiner::make_balanced_tree(depth, 900.0, drv(), snk(),
                                       lib::default_technology());
  for (auto _ : state) {
    auto res = core::avoid_noise_multi_sink(t, library());
    benchmark::DoNotOptimize(res.buffer_count);
  }
  state.SetComplexityN(1 << depth);
}
BENCHMARK(BM_Alg2_BalancedTree)->DenseRange(2, 8)->Complexity();

void BM_Alg3_BuffOpt(benchmark::State& state) {
  const auto n = static_cast<double>(state.range(0));
  auto t = steiner::make_two_pin(500.0 * n, drv(), snk(),
                                 lib::default_technology());
  seg::segment(t, {500.0});
  core::VgOptions opt;
  opt.noise_constraints = true;
  opt.max_buffers = 24;
  for (auto _ : state) {
    auto res = core::optimize(t, library(), opt);
    benchmark::DoNotOptimize(res.slack);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Alg3_BuffOpt)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_Alg3_DelayOpt(benchmark::State& state) {
  const auto n = static_cast<double>(state.range(0));
  auto t = steiner::make_two_pin(500.0 * n, drv(), snk(),
                                 lib::default_technology());
  seg::segment(t, {500.0});
  core::VgOptions opt;
  opt.noise_constraints = false;
  opt.max_buffers = 24;
  for (auto _ : state) {
    auto res = core::optimize(t, library(), opt);
    benchmark::DoNotOptimize(res.slack);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Alg3_DelayOpt)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_DevganMetric(benchmark::State& state) {
  const auto n = static_cast<double>(state.range(0));
  auto t = steiner::make_two_pin(500.0 * n, drv(), snk(),
                                 lib::default_technology());
  seg::segment(t, {500.0});
  for (auto _ : state) {
    auto rep = noise::analyze_unbuffered(t);
    benchmark::DoNotOptimize(rep.worst_slack);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DevganMetric)->RangeMultiplier(2)->Range(8, 256)->Complexity();

}  // namespace

BENCHMARK_MAIN();
