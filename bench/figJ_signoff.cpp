// figJ: signoff throughput and metric pessimism at workload scale.
//
// Optimizes a netgen workload (default the 500-net Section V testbench)
// with BuffOpt, then re-verifies every solution through the signoff
// subsystem (golden transient + Devgan metric + Elmore timing) at 1/2/4/8
// verifier threads. Reports verify throughput in nets/sec, the Theorem-1
// ledger (metric-clean solutions golden must confirm — any shortfall is a
// broken conservatism bound), and the metric/golden pessimism histogram in
// the spirit of the paper's Table III. Verification is embarrassingly
// parallel, so throughput should scale near-linearly to the core count;
// the aggregate report must be bit-identical at every thread count.
//
//   figJ_signoff [--count N] [--seed S] [--quick]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "batch/batch.hpp"
#include "common/workload.hpp"
#include "signoff/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nbuf;

  std::size_t count = 500;
  std::uint64_t seed = 9851;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--count" && i + 1 < argc) {
      count = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (a == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (a == "--quick") {
      count = 60;
    } else {
      std::fprintf(stderr, "usage: %s [--count N] [--seed S] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto library = lib::default_library();
  netgen::TestbenchOptions gen = bench::paper_testbench_options();
  gen.net_count = count;
  gen.seed = seed;
  std::fprintf(stderr, "[workload] generating %zu-net testbench...\n",
               count);
  const auto nets =
      batch::from_generated(netgen::generate_testbench(library, gen));
  std::fprintf(stderr, "[workload] optimizing (%u hardware thread(s))...\n",
               std::thread::hardware_concurrency());
  const batch::BatchResult opt =
      batch::BatchEngine(batch::BatchOptions{}).run(nets, library);
  std::fprintf(stderr, "[workload] done.\n");

  std::printf("== figJ: signoff throughput, %zu-net BuffOpt workload ==\n\n",
              nets.size());

  signoff::WorkloadOptions wopt;
  wopt.signoff.golden = sim::golden_options_from(lib::default_technology());

  util::Table scaling({"threads", "wall (s)", "nets/sec", "speedup"});
  double base_wall = 0.0;
  signoff::WorkloadSignoff last;
  std::string base_fingerprint;
  bool deterministic = true;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    wopt.threads = threads;
    last = signoff::run_workload(nets, opt.results, library, wopt);
    // wall_seconds varies run to run; everything else must not.
    signoff::WorkloadSignoff stamp = last;
    stamp.wall_seconds = 0.0;
    const std::string fingerprint = signoff::to_json(stamp, true);
    if (threads == 1) {
      base_wall = last.wall_seconds;
      base_fingerprint = fingerprint;
    } else if (fingerprint != base_fingerprint) {
      deterministic = false;
    }
    scaling.add_row({util::Table::integer(threads),
                     util::Table::num(last.wall_seconds, 3),
                     util::Table::num(last.nets_per_second(), 1),
                     util::Table::num(base_wall / last.wall_seconds, 2) +
                         "x"});
  }
  std::printf("%s\n", scaling.render().c_str());

  std::printf("verdict:        %s (%zu/%zu nets clean, %zu violation "
              "record(s))\n",
              last.pass() ? "PASS" : "FAIL", last.passed, last.net_count,
              last.violations);
  std::printf("theorem 1:      metric-clean %zu, golden-clean %zu (%s)\n",
              last.feasible, last.feasible_golden_clean,
              last.feasible == last.feasible_golden_clean ? "bound held"
                                                          : "BOUND BROKEN");
  std::printf("deterministic:  %s across 1/2/4/8 verifier threads\n",
              deterministic ? "yes" : "NO");

  const signoff::PessimismStats& p = last.pessimism;
  std::printf("\npessimism (metric/golden over %zu leaves): min %.3f, "
              "mean %.3f, max %.3f\n",
              p.samples, p.min, p.mean(), p.max);
  util::Table hist({"metric/golden", "leaves", "share"});
  for (std::size_t b = 0; b < signoff::PessimismStats::kBinCount; ++b) {
    if (p.bins[b] == 0) continue;
    const double lo =
        1.0 + static_cast<double>(b - 1) * signoff::PessimismStats::kBinWidth;
    std::string range;
    if (b == 0)
      range = "< 1.00 (violation)";
    else if (b + 1 == signoff::PessimismStats::kBinCount)
      range = ">= " + util::Table::num(lo, 2);
    else
      range = util::Table::num(lo, 2) + " - " +
              util::Table::num(lo + signoff::PessimismStats::kBinWidth, 2);
    hist.add_row({range,
                  util::Table::integer(static_cast<long long>(p.bins[b])),
                  util::Table::percent(static_cast<double>(p.bins[b]) /
                                       static_cast<double>(p.samples))});
  }
  std::printf("%s\n", hist.render().c_str());

  const bool ok =
      deterministic && last.feasible == last.feasible_golden_clean;
  if (!ok) std::printf("\nFAILED acceptance checks\n");
  return ok ? 0 : 1;
}
