#include "signoff/workload.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/check.hpp"

namespace nbuf::signoff {

namespace {

void track_min(double& worst, double candidate) {
  if (std::isnan(candidate)) return;
  worst = std::min(worst, candidate);
}

// +inf accumulators render as 0 when nothing contributed (no converged
// leaf at all — e.g. every net infeasible).
double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

WorkloadSignoff run_workload(const std::vector<batch::BatchNet>& nets,
                             const std::vector<core::ToolResult>& results,
                             const lib::BufferLibrary& lib,
                             const WorkloadOptions& options) {
  NBUF_EXPECTS_MSG(nets.size() == results.size(),
                   "signoff workload: nets/results size mismatch");
  WorkloadSignoff out;
  out.net_count = nets.size();
  out.reports.resize(nets.size());

  const auto t0 = std::chrono::steady_clock::now();
  batch::parallel_for_index(nets.size(), options.threads, [&](std::size_t i) {
    NBUF_TRACE_SPAN_TAGGED("signoff.net", i);
    out.reports[i] = verify_result(nets[i].name, results[i], lib,
                                   options.wire_widths, options.signoff);
  });
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();

  // Contract level 2: the reduction below is index-ordered and duplicate-
  // free only because report slot i belongs to input net i — re-prove the
  // slot/input correspondence before folding.
  if (NBUF_STRUCTURAL_CHECKS != 0)
    for (std::size_t i = 0; i < nets.size(); ++i)
      NBUF_INVARIANT_CTX(out.reports[i].net == nets[i].name,
                         util::ctx("i", i, "report", out.reports[i].net,
                                   "net", nets[i].name));

  // Serial reduction in index order: every aggregate is a pure function of
  // the (deterministic) per-net reports, so the summary reproduces
  // bit-identically at any thread count.
  out.worst_golden_slack = std::numeric_limits<double>::infinity();
  out.worst_metric_slack = std::numeric_limits<double>::infinity();
  out.worst_timing_slack = std::numeric_limits<double>::infinity();
  for (const SignoffReport& r : out.reports) {
    out.passed += r.pass() ? 1 : 0;
    out.violations += r.violations.size();
    for (const Violation& v : r.violations) {
      NBUF_ASSERT_CTX(static_cast<std::size_t>(v.kind) < kViolationKinds,
                      util::ctx("kind", static_cast<std::size_t>(v.kind)));
      ++out.by_kind[static_cast<std::size_t>(v.kind)];
    }
    if (r.optimizer_feasible && r.count(ViolationKind::MetricNoise) == 0) {
      ++out.feasible;
      if (r.count(ViolationKind::GoldenNoise) == 0 &&
          r.count(ViolationKind::NotConverged) == 0)
        ++out.feasible_golden_clean;
    }
    track_min(out.worst_golden_slack, r.worst_golden_slack);
    track_min(out.worst_metric_slack, r.worst_metric_slack);
    track_min(out.worst_timing_slack, r.worst_timing_slack);
    out.pessimism.merge(r.pessimism);
  }
  out.worst_golden_slack = finite_or_zero(out.worst_golden_slack);
  out.worst_metric_slack = finite_or_zero(out.worst_metric_slack);
  out.worst_timing_slack = finite_or_zero(out.worst_timing_slack);
  return out;
}

std::string to_json(const WorkloadSignoff& w, bool include_leaves) {
  JsonWriter j;
  j.begin_object();
  j.field("schema", std::string_view("nbuf-signoff-v1"));
  j.field("pass", w.pass());
  j.field("nets", w.net_count);
  j.field("passed", w.passed);
  j.field("violations", w.violations);
  j.key("violations_by_kind");
  j.begin_object();
  for (std::size_t k = 0; k < kViolationKinds; ++k)
    j.field(to_string(static_cast<ViolationKind>(k)), w.by_kind[k]);
  j.end_object();
  j.field("feasible", w.feasible);
  j.field("feasible_golden_clean", w.feasible_golden_clean);
  j.key("worst");
  j.begin_object();
  j.field("golden_slack", w.worst_golden_slack);
  j.field("metric_slack", w.worst_metric_slack);
  j.field("timing_slack", w.worst_timing_slack);
  j.end_object();
  j.key("pessimism");
  j.begin_object();
  j.field("samples", w.pessimism.samples);
  j.field("min", w.pessimism.samples
                     ? w.pessimism.min
                     : std::numeric_limits<double>::quiet_NaN());
  j.field("mean", w.pessimism.samples
                      ? w.pessimism.mean()
                      : std::numeric_limits<double>::quiet_NaN());
  j.field("max", w.pessimism.samples
                     ? w.pessimism.max
                     : std::numeric_limits<double>::quiet_NaN());
  j.field("bin_width", PessimismStats::kBinWidth);
  j.key("bins");
  j.begin_array();
  for (std::size_t b : w.pessimism.bins) j.value(b);
  j.end_array();
  j.end_object();
  j.field("wall_seconds", w.wall_seconds);
  j.key("reports");
  j.begin_array();
  for (const SignoffReport& r : w.reports)
    write_report_json(j, r, include_leaves);
  j.end_array();
  j.end_object();
  return j.str();
}

void record_metrics(obs::MetricsRegistry& reg, const WorkloadSignoff& w) {
  reg.counter("signoff.nets").add(w.net_count);
  reg.counter("signoff.passed").add(w.passed);
  reg.counter("signoff.violations").add(w.violations);
  for (std::size_t k = 0; k < kViolationKinds; ++k) {
    reg.counter(std::string("signoff.violations.") +
                to_string(static_cast<ViolationKind>(k)))
        .add(w.by_kind[k]);
  }
  reg.counter("signoff.feasible").add(w.feasible);
  reg.counter("signoff.feasible_golden_clean").add(w.feasible_golden_clean);
  reg.counter("signoff.pessimism.samples").add(w.pessimism.samples);
  for (std::size_t b = 0; b < PessimismStats::kBinCount; ++b) {
    reg.counter("signoff.pessimism.bin_" + std::string(b < 10 ? "0" : "") +
                std::to_string(b))
        .add(w.pessimism.bins[b]);
  }
  reg.gauge("signoff.worst_golden_slack").set(w.worst_golden_slack);
  reg.gauge("signoff.worst_metric_slack").set(w.worst_metric_slack);
  reg.gauge("signoff.worst_timing_slack").set(w.worst_timing_slack);
  reg.gauge("signoff.pessimism.min").set(w.pessimism.samples ? w.pessimism.min
                                                             : 0.0);
  reg.gauge("signoff.pessimism.mean").set(w.pessimism.mean());
  reg.gauge("signoff.pessimism.max").set(w.pessimism.max);
  reg.gauge("signoff.wall_seconds").set(w.wall_seconds);
  reg.gauge("signoff.nets_per_second").set(w.nets_per_second());
}

}  // namespace nbuf::signoff
