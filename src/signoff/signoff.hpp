// Signoff verification: independent golden-vs-metric re-verification of a
// buffered solution.
//
// The paper validates every BuffOpt/DelayOpt result against IBM's internal
// 3dnoise simulator (TCAD'99 Section VI); this subsystem closes the same
// loop for the repository. Given any buffered tree (e.g. a core::ToolResult
// from the optimizer), verify() re-checks it three independent ways:
//
//   1. golden transient simulation (sim::golden) — the electrical truth,
//   2. the Devgan static metric (noise::analyze) — what the DP optimized,
//   3. Elmore timing (elmore::analyze) — the delay constraint,
//
// joins them per stage leaf, and emits a structured SignoffReport: every
// leaf's metric noise, simulated peak, slacks, the metric-vs-golden
// pessimism ratio, and a typed Violation list judged against configurable
// tolerances. Because the metric is a provable upper bound on the peak
// (Devgan / Theorem 1), a solution the optimizer reports noise-feasible
// must pass golden signoff; a BoundViolation record means the guarantee
// itself broke and is always worth investigating.
//
// Reports serialize to JSON (schema in docs/signoff.md). Whole-workload
// runs live in signoff/workload.hpp.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "core/tool.hpp"
#include "lib/buffer.hpp"
#include "rct/assignment.hpp"
#include "rct/tree.hpp"
#include "sim/golden.hpp"
#include "util/json.hpp"

namespace nbuf::signoff {

// One failed check. `value` is the measured quantity and `limit` what the
// tolerance allowed, so value - limit (or limit - value for slacks) is the
// size of the excursion; both are in the unit of the kind (volt / second).
enum class ViolationKind {
  GoldenNoise,   // simulated peak exceeds the leaf's noise margin
  MetricNoise,   // Devgan bound exceeds the leaf's noise margin
  Timing,        // Elmore slack below zero at a true sink
  BoundBroken,   // simulated peak exceeds the Devgan bound (Theorem 1!)
  Infeasible,    // the optimizer produced no solution to verify
  NotConverged,  // golden simulation failed its step-size sanity check
};
[[nodiscard]] const char* to_string(ViolationKind kind);
inline constexpr std::size_t kViolationKinds = 6;

struct Violation {
  ViolationKind kind = ViolationKind::GoldenNoise;
  rct::NodeId node;               // offending leaf; invalid for Infeasible
  bool is_buffer_input = false;
  rct::SinkId sink;               // valid iff a true sink
  double value = 0.0;
  double limit = 0.0;
};

// Acceptance tolerances. Slack checks fail when slack < -tolerance; the
// bound check fails when golden peak > metric + bound_slop. Defaults are
// exact signoff (no grace) with a tiny numerical slop on the bound.
struct SignoffTolerances {
  double noise_slack = 0.0;   // volt
  double timing_slack = 0.0;  // second
  double bound_slop = 1e-9;   // volt
};

struct SignoffOptions {
  SignoffTolerances tol;
  // Golden-simulation knobs; callers usually start from
  // sim::golden_options_from(technology). check_convergence inside is
  // honored: a ConvergenceError becomes a NotConverged violation rather
  // than an exception, so one bad net cannot abort a workload run.
  sim::GoldenOptions golden;
  // Golden peaks below this floor (volt) are excluded from the pessimism
  // ratio statistics (the ratio metric/golden degenerates as peak -> 0).
  double pessimism_floor = 1e-3;
};

// One stage leaf (true sink or buffer input pin), all three engines joined.
struct LeafSignoff {
  rct::NodeId node;
  bool is_buffer_input = false;
  rct::SinkId sink;            // valid iff !is_buffer_input
  double margin = 0.0;         // volt
  double metric_noise = 0.0;   // volt — Devgan upper bound
  double metric_slack = 0.0;   // volt
  double golden_peak = 0.0;    // volt — simulated
  double golden_slack = 0.0;   // volt
  double golden_width = 0.0;   // second — pulse width at half peak
  double pessimism = 0.0;      // metric_noise / golden_peak; 0 below floor
  double delay = 0.0;          // second — true sinks only
  double timing_slack = 0.0;   // second — true sinks only
  bool pass = true;            // no violation at this leaf
};

// How conservative the metric was versus golden over a set of leaves (the
// spirit of the paper's Table III): summary statistics plus a fixed-width
// histogram of the metric/golden ratio. Bin 0 holds ratios < 1 (bound
// violations); bin i >= 1 holds [1 + (i-1)*kBinWidth, 1 + i*kBinWidth);
// the last bin additionally absorbs everything above the top edge.
struct PessimismStats {
  static constexpr double kBinWidth = 0.25;
  static constexpr std::size_t kBinCount = 18;  // bin 0 + ratios up to 5.25+

  std::size_t samples = 0;  // leaves with golden peak above the floor
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;  // of ratios — mean() derives from it, so merging in a
                     // fixed order reproduces bit-identically
  std::array<std::size_t, kBinCount> bins{};

  [[nodiscard]] double mean() const noexcept {
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
  }
  void add(double ratio);
  void merge(const PessimismStats& o);
  [[nodiscard]] bool operator==(const PessimismStats& o) const = default;
};

struct SignoffReport {
  std::string net;
  std::size_t buffer_count = 0;
  bool optimizer_feasible = true;  // what the DP claimed (Infeasible check)
  std::vector<LeafSignoff> leaves;
  std::vector<Violation> violations;
  double worst_golden_slack = 0.0;  // volt, min over leaves
  double worst_metric_slack = 0.0;  // volt
  double worst_timing_slack = 0.0;  // second, min over true sinks
  PessimismStats pessimism;

  [[nodiscard]] bool pass() const noexcept { return violations.empty(); }
  [[nodiscard]] std::size_t count(ViolationKind kind) const;
};

// Verifies one buffered tree. `buffers` may be empty (signoff of an
// unbuffered net); `name` only labels the report.
[[nodiscard]] SignoffReport verify(const std::string& name,
                                   const rct::RoutingTree& tree,
                                   const rct::BufferAssignment& buffers,
                                   const lib::BufferLibrary& lib,
                                   const SignoffOptions& options);

// Verifies an optimizer result: re-applies any wire-width choices onto a
// copy of the result tree (pass the width library the DP ran with;
// `widths` may be empty when sizing was off), honors vg.feasible (an
// infeasible result yields a single Infeasible violation), then runs the
// three-engine verify above.
[[nodiscard]] SignoffReport verify_result(const std::string& name,
                                          const core::ToolResult& result,
                                          const lib::BufferLibrary& lib,
                                          const lib::WireWidthLibrary& widths,
                                          const SignoffOptions& options);

// JSON rendering of one report (docs/signoff.md documents the schema).
[[nodiscard]] std::string to_json(const SignoffReport& report);

// Appends one report into an in-progress JSON document (the workload
// serializer embeds per-net reports this way); the per-leaf rows are the
// bulky part and can be omitted. The emitter itself lives in util/json.hpp
// (shared with the observability exporters); the alias keeps the historic
// signoff::JsonWriter spelling working.
using JsonWriter = util::JsonWriter;
void write_report_json(JsonWriter& j, const SignoffReport& report,
                       bool include_leaves);

}  // namespace nbuf::signoff
