// Whole-workload signoff: every net of a batch run independently
// re-verified, in parallel, with deterministic aggregates.
//
// Runs on the batch engine's fan-out primitive
// (batch::parallel_for_index): workers claim net indices from a shared
// counter and write each SignoffReport into its input slot, and every
// aggregate below is reduced serially in index order after the pool joins
// — so the whole WorkloadSignoff (including the pessimism histogram that
// quantifies how conservative the Devgan metric is versus golden, the
// spirit of the paper's Table III) is bit-identical for any thread count.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "signoff/signoff.hpp"

namespace nbuf::obs {
class MetricsRegistry;
}

namespace nbuf::signoff {

struct WorkloadOptions {
  std::size_t threads = 0;  // 0 = hardware concurrency
  SignoffOptions signoff;
  // The width library the optimizer ran with (empty when sizing was off);
  // needed to materialize sized results before re-verification.
  lib::WireWidthLibrary wire_widths;
};

struct WorkloadSignoff {
  // reports[i] verifies results[i] / nets[i] — input order, always.
  std::vector<SignoffReport> reports;
  std::size_t net_count = 0;
  std::size_t passed = 0;      // nets with zero violations
  std::size_t violations = 0;  // violation records over all nets
  std::array<std::size_t, kViolationKinds> by_kind{};  // ViolationKind idx
  // The Theorem-1 ledger: solutions the Devgan metric certifies
  // noise-clean (optimizer feasible with zero MetricNoise records), and
  // how many of those golden signoff confirms (no GoldenNoise and no
  // NotConverged record). The metric upper-bounds the golden peak, so
  // these two must be equal on every workload, in every mode — delayopt
  // nets the metric itself flags are excluded from the ledger rather
  // than counted as bound breaks.
  std::size_t feasible = 0;
  std::size_t feasible_golden_clean = 0;
  double worst_golden_slack = 0.0;  // volt, min over converged nets
  double worst_metric_slack = 0.0;  // volt
  double worst_timing_slack = 0.0;  // second
  PessimismStats pessimism;         // merged over all nets, index order
  double wall_seconds = 0.0;        // end-to-end verify wall time

  [[nodiscard]] bool pass() const noexcept { return violations == 0; }
  [[nodiscard]] double nets_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(net_count) / wall_seconds
               : 0.0;
  }
};

// Verifies results[i] against nets[i] for every i. The two vectors must be
// the same length (results as produced by batch::BatchEngine::run on the
// same nets).
[[nodiscard]] WorkloadSignoff run_workload(
    const std::vector<batch::BatchNet>& nets,
    const std::vector<core::ToolResult>& results,
    const lib::BufferLibrary& lib, const WorkloadOptions& options);

// JSON rendering (docs/signoff.md): workload summary + per-net reports.
// Per-leaf rows are included only when `include_leaves` is set — they
// dominate the document size on big workloads.
[[nodiscard]] std::string to_json(const WorkloadSignoff& workload,
                                  bool include_leaves = false);

// Folds the workload aggregates into a MetricsRegistry: pass/violation
// totals and the pessimism histogram bins as "signoff.*" counters
// (schedule-independent), slack extrema and throughput as gauges.
void record_metrics(obs::MetricsRegistry& reg, const WorkloadSignoff& w);

}  // namespace nbuf::signoff
