#include "signoff/signoff.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "elmore/elmore.hpp"
#include "noise/devgan.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/check.hpp"

namespace nbuf::signoff {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::size_t bin_of(double ratio) {
  if (ratio < 1.0) return 0;
  const auto i = static_cast<std::size_t>(
      (ratio - 1.0) / PessimismStats::kBinWidth);
  return std::min(i + 1, PessimismStats::kBinCount - 1);
}

void track_min(double& worst, double candidate) {
  if (std::isnan(candidate)) return;
  worst = std::min(worst, candidate);
}

}  // namespace

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::GoldenNoise: return "golden_noise";
    case ViolationKind::MetricNoise: return "metric_noise";
    case ViolationKind::Timing: return "timing";
    case ViolationKind::BoundBroken: return "bound_broken";
    case ViolationKind::Infeasible: return "infeasible";
    case ViolationKind::NotConverged: return "not_converged";
  }
  return "unknown";
}

void PessimismStats::add(double ratio) {
  ++bins[bin_of(ratio)];
  if (samples == 0) {
    min = max = ratio;
  } else {
    min = std::min(min, ratio);
    max = std::max(max, ratio);
  }
  sum += ratio;
  ++samples;
}

void PessimismStats::merge(const PessimismStats& o) {
  if (o.samples == 0) return;
  if (samples == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  samples += o.samples;
  sum += o.sum;
  for (std::size_t i = 0; i < kBinCount; ++i) bins[i] += o.bins[i];
}

std::size_t SignoffReport::count(ViolationKind kind) const {
  std::size_t n = 0;
  for (const Violation& v : violations)
    if (v.kind == kind) ++n;
  return n;
}

SignoffReport verify(const std::string& name, const rct::RoutingTree& tree,
                     const rct::BufferAssignment& buffers,
                     const lib::BufferLibrary& lib,
                     const SignoffOptions& options) {
  NBUF_TRACE_SPAN_TAGGED("signoff.verify", tree.node_count());
  SignoffReport rep;
  rep.net = name;
  rep.buffer_count = buffers.size();

  const noise::NoiseReport metric = noise::analyze(tree, buffers, lib);
  const elmore::TimingReport timing = elmore::analyze(tree, buffers, lib);

  // The golden engine is the one that can refuse to answer: with the
  // convergence check enabled a too-coarse timestep surfaces as a
  // NotConverged violation, and every golden-derived field becomes NaN
  // (null in JSON) rather than a number nobody should trust.
  sim::GoldenReport golden;
  bool have_golden = true;
  try {
    golden = sim::golden_analyze(tree, buffers, lib, options.golden);
  } catch (const sim::ConvergenceError& e) {
    have_golden = false;
    Violation v;
    v.kind = ViolationKind::NotConverged;
    v.node = e.node;
    v.value = e.coarse_peak;
    v.limit = e.fine_peak;
    rep.violations.push_back(v);
  }

  std::unordered_map<rct::NodeId, const sim::GoldenLeaf*> golden_at;
  if (have_golden) {
    golden_at.reserve(golden.leaves.size());
    for (const sim::GoldenLeaf& g : golden.leaves) golden_at[g.node] = &g;
  }

  const SignoffTolerances& tol = options.tol;
  rep.worst_golden_slack = have_golden
                               ? std::numeric_limits<double>::infinity()
                               : kNaN;
  rep.worst_metric_slack = std::numeric_limits<double>::infinity();
  rep.worst_timing_slack = std::numeric_limits<double>::infinity();

  rep.leaves.reserve(metric.leaves.size());
  for (const noise::LeafNoise& m : metric.leaves) {
    LeafSignoff leaf;
    leaf.node = m.node;
    leaf.is_buffer_input = m.is_buffer_input;
    leaf.sink = m.sink;
    leaf.margin = m.margin;
    leaf.metric_noise = m.noise;
    leaf.metric_slack = m.slack;
    leaf.golden_peak = leaf.golden_slack = leaf.golden_width = kNaN;
    if (have_golden) {
      const sim::GoldenLeaf& g = *golden_at.at(m.node);
      leaf.golden_peak = g.peak;
      leaf.golden_slack = g.slack;
      leaf.golden_width = g.width;
      if (g.peak >= options.pessimism_floor) {
        leaf.pessimism = m.noise / g.peak;
        rep.pessimism.add(leaf.pessimism);
      }
    }
    if (!m.is_buffer_input) {
      const elmore::SinkTiming& t = timing.sinks[m.sink.value()];
      leaf.delay = t.delay;
      leaf.timing_slack = t.slack;
    }

    auto fail = [&](ViolationKind kind, double value, double limit) {
      Violation v;
      v.kind = kind;
      v.node = leaf.node;
      v.is_buffer_input = leaf.is_buffer_input;
      v.sink = leaf.sink;
      v.value = value;
      v.limit = limit;
      rep.violations.push_back(v);
      leaf.pass = false;
    };
    if (have_golden && leaf.golden_slack < -tol.noise_slack)
      fail(ViolationKind::GoldenNoise, leaf.golden_peak,
           leaf.margin + tol.noise_slack);
    if (leaf.metric_slack < -tol.noise_slack)
      fail(ViolationKind::MetricNoise, leaf.metric_noise,
           leaf.margin + tol.noise_slack);
    if (!leaf.is_buffer_input && leaf.timing_slack < -tol.timing_slack)
      fail(ViolationKind::Timing, leaf.delay,
           tree.sink(leaf.sink).required_arrival + tol.timing_slack);
    if (have_golden && leaf.golden_peak > leaf.metric_noise + tol.bound_slop)
      fail(ViolationKind::BoundBroken, leaf.golden_peak,
           leaf.metric_noise + tol.bound_slop);

    track_min(rep.worst_golden_slack, leaf.golden_slack);
    track_min(rep.worst_metric_slack, leaf.metric_slack);
    if (!leaf.is_buffer_input)
      track_min(rep.worst_timing_slack, leaf.timing_slack);
    rep.leaves.push_back(leaf);
  }
  return rep;
}

SignoffReport verify_result(const std::string& name,
                            const core::ToolResult& result,
                            const lib::BufferLibrary& lib,
                            const lib::WireWidthLibrary& widths,
                            const SignoffOptions& options) {
  if (!result.vg.feasible) {
    SignoffReport rep;
    rep.net = name;
    rep.optimizer_feasible = false;
    rep.worst_golden_slack = rep.worst_metric_slack =
        rep.worst_timing_slack = kNaN;
    Violation v;
    v.kind = ViolationKind::Infeasible;
    rep.violations.push_back(v);
    return rep;
  }
  if (result.vg.wire_widths.empty()) {
    return verify(name, result.tree, result.vg.buffers, lib, options);
  }
  NBUF_EXPECTS_MSG(!widths.empty(),
                   "result carries wire widths but no width library given");
  rct::RoutingTree sized = result.tree;
  core::apply_wire_widths(sized, result.vg.wire_widths, widths);
  return verify(name, sized, result.vg.buffers, lib, options);
}

namespace {

void write_report(JsonWriter& j, const SignoffReport& rep,
                  bool include_leaves) {
  j.begin_object();
  j.field("net", std::string_view(rep.net));
  j.field("pass", rep.pass());
  j.field("optimizer_feasible", rep.optimizer_feasible);
  j.field("buffer_count", rep.buffer_count);
  j.key("worst");
  j.begin_object();
  j.field("golden_slack", rep.worst_golden_slack);
  j.field("metric_slack", rep.worst_metric_slack);
  j.field("timing_slack", rep.worst_timing_slack);
  j.end_object();
  j.key("violations");
  j.begin_array();
  for (const Violation& v : rep.violations) {
    j.begin_object();
    j.field("kind", std::string_view(to_string(v.kind)));
    if (v.node.valid())
      j.field("node", static_cast<std::size_t>(v.node.value()));
    if (!v.is_buffer_input && v.sink.valid())
      j.field("sink", static_cast<std::size_t>(v.sink.value()));
    j.field("buffer_input", v.is_buffer_input);
    j.field("value", v.value);
    j.field("limit", v.limit);
    j.end_object();
  }
  j.end_array();
  j.key("pessimism");
  j.begin_object();
  j.field("samples", rep.pessimism.samples);
  j.field("min", rep.pessimism.samples ? rep.pessimism.min : kNaN);
  j.field("mean", rep.pessimism.samples ? rep.pessimism.mean() : kNaN);
  j.field("max", rep.pessimism.samples ? rep.pessimism.max : kNaN);
  j.field("bin_width", PessimismStats::kBinWidth);
  j.key("bins");
  j.begin_array();
  for (std::size_t b : rep.pessimism.bins) j.value(b);
  j.end_array();
  j.end_object();
  if (include_leaves) {
    j.key("leaves");
    j.begin_array();
    for (const LeafSignoff& l : rep.leaves) {
      j.begin_object();
      j.field("node", static_cast<std::size_t>(l.node.value()));
      j.field("buffer_input", l.is_buffer_input);
      if (!l.is_buffer_input)
        j.field("sink", static_cast<std::size_t>(l.sink.value()));
      j.field("pass", l.pass);
      j.field("margin", l.margin);
      j.field("metric_noise", l.metric_noise);
      j.field("metric_slack", l.metric_slack);
      j.field("golden_peak", l.golden_peak);
      j.field("golden_slack", l.golden_slack);
      j.field("golden_width", l.golden_width);
      j.field("pessimism", l.pessimism);
      if (!l.is_buffer_input) {
        j.field("delay", l.delay);
        j.field("timing_slack", l.timing_slack);
      }
      j.end_object();
    }
    j.end_array();
  }
  j.end_object();
}

}  // namespace

std::string to_json(const SignoffReport& report) {
  JsonWriter j;
  write_report(j, report, /*include_leaves=*/true);
  return j.str();
}

void write_report_json(JsonWriter& j, const SignoffReport& report,
                       bool include_leaves) {
  write_report(j, report, include_leaves);
}

}  // namespace nbuf::signoff
