// Parallel batch optimization engine.
//
// The paper's experiments run BuffOpt/DelayOpt over thousands of nets one at
// a time; each net's DP is completely independent of every other's, so the
// workload is embarrassingly parallel across nets. BatchEngine runs the full
// core::run_buffopt / run_delayopt pipeline over a vector of nets on a
// fixed-size worker pool.
//
// Determinism guarantee: workers claim net indices from a shared atomic
// counter and write each result into the slot of its input index. Every
// per-net computation is a pure function of that net (the pipeline copies
// its input tree and shares only immutable state — the buffer library and
// the options), so results[i] is bit-identical for ANY thread count and ANY
// schedule, and the aggregated VgStats counters are schedule-independent
// (they are summed serially, in index order, after the pool joins). Only
// wall-clock fields (ToolResult::optimize_seconds, the VgStats phase times,
// BatchSummary::wall_seconds) vary run to run.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/tool.hpp"
#include "netgen/netgen.hpp"
#include "util/stats.hpp"

namespace nbuf::obs {
class MetricsRegistry;
}

namespace nbuf::batch {

// The engine's fan-out primitive, exposed for other per-net passes (the
// signoff verifier runs on it too): calls fn(i) exactly once for every
// i in [0, count) on up to `threads` workers (0 = hardware concurrency).
// Indices are claimed from a shared atomic counter, so any fn that writes
// only into slot i of a pre-sized output is deterministic for every thread
// count and schedule. The first exception any worker throws is rethrown
// after the pool drains and joins.
void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& fn);

enum class BatchMode {
  BuffOpt,   // Problem 3: fewest buffers meeting noise and timing
  DelayOpt,  // delay-only baseline, capped at `max_buffers`
};

struct BatchOptions {
  std::size_t threads = 0;  // 0 = std::thread::hardware_concurrency()
  BatchMode mode = BatchMode::BuffOpt;
  std::size_t max_buffers = 24;  // DelayOpt cap (also forwarded to the DP)
  core::ToolOptions tool;        // segmenting + Van Ginneken knobs
  bool collect_stats = false;    // per-phase DP wall times (counters are
                                 // always collected)
};

// One unit of work: a named routing tree.
struct BatchNet {
  std::string name;
  rct::RoutingTree tree;
};

// Schedule-independent aggregates over one batch run.
struct BatchSummary {
  std::size_t net_count = 0;
  std::size_t feasible = 0;            // nets whose chosen solution exists
  std::size_t noise_clean_before = 0;  // unbuffered metric already clean
  std::size_t noise_clean_after = 0;
  std::size_t timing_met = 0;
  std::size_t buffers_inserted = 0;  // total over all nets
  util::VgStats stats;               // aggregated DP counters (+ times)
  double wall_seconds = 0.0;         // end-to-end batch wall time
  double dp_seconds = 0.0;           // sum of per-net DP times (CPU-ish)

  [[nodiscard]] double nets_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(net_count) / wall_seconds
               : 0.0;
  }
};

struct BatchResult {
  // results[i] is the pipeline output for nets[i] — same order as the
  // input, independent of thread schedule.
  std::vector<core::ToolResult> results;
  BatchSummary summary;
};

class BatchEngine {
 public:
  explicit BatchEngine(BatchOptions options = {});

  // Runs the configured pipeline over every net. Throws (after draining the
  // pool) the first exception any worker hit, if any.
  [[nodiscard]] BatchResult run(const std::vector<BatchNet>& nets,
                                const lib::BufferLibrary& lib) const;

  // The worker count a run() will actually use.
  [[nodiscard]] std::size_t thread_count() const;

 private:
  BatchOptions opt_;
};

// Folds a batch summary into a MetricsRegistry: net/feasibility totals and
// the aggregated VgStats DP counters as "batch.*" / "vg.*" counters
// (schedule-independent), wall times and throughput as gauges.
void record_metrics(obs::MetricsRegistry& reg, const BatchSummary& summary);

// Adapters for the two workload sources the CLI accepts.
[[nodiscard]] std::vector<BatchNet> from_generated(
    std::vector<netgen::GeneratedNet> nets);
// Loads every "*.net" file of `dir` in lexicographic filename order.
[[nodiscard]] std::vector<BatchNet> load_directory(
    const std::string& dir, const lib::BufferLibrary& lib);

}  // namespace nbuf::batch
