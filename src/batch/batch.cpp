#include "batch/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <thread>

#include "io/netfile.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"

namespace nbuf::batch {

void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  std::atomic<std::size_t> next{0};
  // The one piece of cross-worker mutable state: the first exception any
  // worker hit. Annotated so the thread-safety lane proves every touch is
  // under the lock (the final read below joins first, but still locks —
  // an uncontended acquire is cheaper than an analysis escape hatch).
  struct ErrorSlot {
    util::Mutex mu;
    std::exception_ptr first NBUF_GUARDED_BY(mu);
  } error;
  // Contract level 2: machine-check the exactly-once claim contract that
  // every determinism argument downstream (batch results, signoff reports)
  // rests on. Distinct workers only ever touch distinct elements, and the
  // final read happens after join(), so the bookkeeping itself is race-free.
  std::vector<unsigned char> claimed;
  if (NBUF_STRUCTURAL_CHECKS != 0) claimed.resize(count, 0);
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (NBUF_STRUCTURAL_CHECKS != 0) ++claimed[i];
      try {
        fn(i);
      } catch (...) {
        const util::MutexLock hold(error.mu);
        if (!error.first) error.first = std::current_exception();
        // Keep draining: other workers may be mid-item; claiming the rest
        // of the queue lets everyone finish fast.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };
  const std::size_t workers = std::min(threads, count);
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  std::exception_ptr first_error;
  {
    const util::MutexLock hold(error.mu);
    first_error = error.first;
  }
  if (first_error) std::rethrow_exception(first_error);
  if (NBUF_STRUCTURAL_CHECKS != 0)
    for (std::size_t i = 0; i < count; ++i)
      NBUF_INVARIANT_CTX(claimed[i] == 1,
                         util::ctx("i", i, "claims",
                                   static_cast<int>(claimed[i])));
}

BatchEngine::BatchEngine(BatchOptions options) : opt_(std::move(options)) {}

std::size_t BatchEngine::thread_count() const {
  if (opt_.threads != 0) return opt_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

BatchResult BatchEngine::run(const std::vector<BatchNet>& nets,
                             const lib::BufferLibrary& lib) const {
  NBUF_EXPECTS_MSG(!lib.empty(), "empty buffer library");
  BatchResult out;
  out.results.resize(nets.size());
  out.summary.net_count = nets.size();
  if (nets.empty()) return out;

  core::ToolOptions tool = opt_.tool;
  tool.vg.collect_stats = opt_.collect_stats;
  tool.vg.max_buffers = opt_.max_buffers;

  // Each worker claims the next unprocessed index and writes into that
  // index's result slot; nets are never touched after construction and the
  // pipeline works on its own copy, so no two threads share mutable state.
  const auto t0 = std::chrono::steady_clock::now();
  parallel_for_index(nets.size(), thread_count(), [&](std::size_t i) {
    NBUF_TRACE_SPAN_TAGGED("batch.net", i);
    out.results[i] =
        opt_.mode == BatchMode::BuffOpt
            ? core::run_buffopt(nets[i].tree, lib, tool)
            : core::run_delayopt(nets[i].tree, lib, opt_.max_buffers, tool);
  });
  const auto t1 = std::chrono::steady_clock::now();

  // Serial aggregation in index order: every field below is a pure function
  // of the (deterministic) per-net results, so the summary's counters are
  // schedule-independent too.
  BatchSummary& s = out.summary;
  s.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const core::ToolResult& r : out.results) {
    s.feasible += r.vg.feasible ? 1 : 0;
    s.noise_clean_before += r.noise_before.clean() ? 1 : 0;
    s.noise_clean_after += r.noise_after.clean() ? 1 : 0;
    s.timing_met += r.vg.timing_met ? 1 : 0;
    s.buffers_inserted += r.vg.buffer_count;
    s.stats += r.vg.stats;
    s.dp_seconds += r.optimize_seconds;
  }
  return out;
}

void record_metrics(obs::MetricsRegistry& reg, const BatchSummary& summary) {
  reg.counter("batch.nets").add(summary.net_count);
  reg.counter("batch.feasible").add(summary.feasible);
  reg.counter("batch.noise_clean_before").add(summary.noise_clean_before);
  reg.counter("batch.noise_clean_after").add(summary.noise_clean_after);
  reg.counter("batch.timing_met").add(summary.timing_met);
  reg.counter("batch.buffers_inserted").add(summary.buffers_inserted);
  obs::record_vg_stats(reg, summary.stats);
  reg.gauge("batch.wall_seconds").set(summary.wall_seconds);
  reg.gauge("batch.dp_seconds").set(summary.dp_seconds);
  reg.gauge("batch.nets_per_second").set(summary.nets_per_second());
}

std::vector<BatchNet> from_generated(std::vector<netgen::GeneratedNet> nets) {
  std::vector<BatchNet> out;
  out.reserve(nets.size());
  for (netgen::GeneratedNet& n : nets)
    out.push_back(BatchNet{std::move(n.name), std::move(n.tree)});
  return out;
}

std::vector<BatchNet> load_directory(const std::string& dir,
                                     const lib::BufferLibrary& lib) {
  namespace fs = std::filesystem;
  NBUF_EXPECTS_MSG(fs::is_directory(dir), "batch input is not a directory");
  std::vector<fs::path> files;
  for (const fs::directory_entry& e : fs::directory_iterator(dir))
    if (e.is_regular_file() && e.path().extension() == ".net")
      files.push_back(e.path());
  std::sort(files.begin(), files.end());  // nbuf-lint: allow(sort)
  std::vector<BatchNet> out;
  out.reserve(files.size());
  for (const fs::path& p : files) {
    io::NetFile f = io::read_net_file(p.string(), lib);
    out.push_back(BatchNet{f.name.empty() ? p.filename().string()
                                          : std::move(f.name),
                           std::move(f.tree)});
  }
  return out;
}

}  // namespace nbuf::batch
