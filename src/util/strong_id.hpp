// Strongly-typed integer identifiers.
//
// EDA code juggles many parallel index spaces (nodes, wires, sinks, buffer
// types, candidates). StrongId<Tag> makes mixing them a compile error while
// remaining a trivially-copyable 4-byte value usable as a vector index.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace nbuf::util {

template <class Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type npos =
      std::numeric_limits<underlying_type>::max();

  constexpr StrongId() noexcept : value_(npos) {}
  constexpr explicit StrongId(underlying_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept {
    return value_;
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != npos;
  }
  [[nodiscard]] static constexpr StrongId invalid() noexcept {
    return StrongId{};
  }

  friend constexpr bool operator==(StrongId a, StrongId b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) noexcept {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) noexcept {
    return a.value_ < b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (id.valid()) return os << id.value_;
    return os << "<invalid>";
  }

 private:
  underlying_type value_;
};

}  // namespace nbuf::util

template <class Tag>
struct std::hash<nbuf::util::StrongId<Tag>> {
  std::size_t operator()(nbuf::util::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
