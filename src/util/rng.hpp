// Deterministic random number generation for workload synthesis and tests.
//
// Wraps std::mt19937_64 behind a small surface so every generator in the
// repository is seed-stable and benches reproduce bit-identical workloads.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "util/check.hpp"

namespace nbuf::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    NBUF_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi) {
    NBUF_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Bernoulli trial.
  [[nodiscard]] bool chance(double p) {
    NBUF_EXPECTS(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  // Log-uniform real in [lo, hi): uniform in the exponent, which matches how
  // net lengths and device strengths are distributed in real designs.
  [[nodiscard]] double log_uniform(double lo, double hi);

  // Pick an index in [0, weights.size()) with probability proportional to
  // the weight.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) {
    NBUF_EXPECTS(!weights.empty());
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

inline double Rng::log_uniform(double lo, double hi) {
  NBUF_EXPECTS(lo > 0.0 && lo <= hi);
  const double e = uniform(std::log(lo), std::log(hi));
  return std::exp(e);
}

}  // namespace nbuf::util
