#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace nbuf::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NBUF_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  NBUF_EXPECTS_MSG(cells.size() == headers_.size(),
                   "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (fraction * 100.0)
     << '%';
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 != row.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace nbuf::util
