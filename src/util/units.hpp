// Unit conventions and conversion constants.
//
// The library stores every electrical quantity in SI:
//   resistance  — ohm            capacitance — farad
//   time        — second         current     — ampere
//   voltage     — volt           slope       — volt/second
// Geometry is in micrometers (µm); per-unit wire parasitics are therefore
// ohm/µm and farad/µm. All public APIs document their units in these terms.
#pragma once

namespace nbuf::units {

// Time.
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

// Capacitance.
inline constexpr double F = 1.0;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;

// Resistance.
inline constexpr double ohm = 1.0;
inline constexpr double kohm = 1e3;

// Current.
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;

// Voltage.
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;

// Geometry (library-internal length unit is the micrometer itself, so these
// express other length units *in µm*).
inline constexpr double um = 1.0;
inline constexpr double mm = 1e3;

}  // namespace nbuf::units
