// Clang thread-safety (capability) annotations + the project's lock types.
//
// The repo's central concurrency contract — results bit-identical at any
// thread count — is enforced three ways, strongest first:
//
//   1. statically, by Clang's capability analysis over the annotations in
//      this header (the blocking `thread-safety` CI lane compiles the whole
//      tree with -Werror=thread-safety -Wthread-safety-beta);
//   2. dynamically, by the blocking TSan lane;
//   3. behaviorally, by the 1-vs-8-thread byte-identity tests.
//
// Every mutex-protected structure in the tree uses util::Mutex (an
// annotated wrapper over std::mutex) and util::MutexLock (an annotated
// scoped guard), never raw std::mutex: the analyzer can only prove what it
// can see, and nbuf_lint's `raw-lock` rule keeps bare .lock()/.unlock()
// calls out of src/ so every acquisition is scoped and annotated.
//
// The macros are the standard Clang set (NBUF_-prefixed, no-ops on GCC and
// other non-Clang compilers, where the attributes are unknown):
//
//   NBUF_CAPABILITY(x)      type declares a capability (e.g. "mutex")
//   NBUF_GUARDED_BY(mu)     data member readable/writable only under mu
//   NBUF_PT_GUARDED_BY(mu)  pointee guarded by mu (the pointer itself free)
//   NBUF_REQUIRES(mu)       caller must hold mu across the call
//   NBUF_ACQUIRE(...)       function acquires the capability
//   NBUF_RELEASE(...)       function releases the capability
//   NBUF_TRY_ACQUIRE(b,mu)  acquires mu iff the function returns b
//   NBUF_EXCLUDES(mu)       caller must NOT hold mu (deadlock guard)
//   NBUF_ASSERT_CAPABILITY  runtime-asserted to hold (test helpers)
//   NBUF_RETURN_CAPABILITY  function returns a reference to the capability
//   NBUF_SCOPED_CAPABILITY  RAII type that acquires in ctor, releases in dtor
//   NBUF_NO_THREAD_SAFETY_ANALYSIS  escape hatch — BANNED in src/ (the CI
//                           lane greps for it; docs/quality.md)
//
// Worked example (docs/quality.md has the full walk-through):
//
//   class Registry {
//     util::Mutex mu_;
//     std::vector<Row> rows_ NBUF_GUARDED_BY(mu_);
//    public:
//     void add(Row r) {
//       const util::MutexLock lock(mu_);   // compile error if forgotten
//       rows_.push_back(std::move(r));
//     }
//   };
#pragma once

#include <mutex>

#if defined(__clang__)
#define NBUF_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NBUF_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define NBUF_CAPABILITY(x) NBUF_THREAD_ANNOTATION_(capability(x))
#define NBUF_SCOPED_CAPABILITY NBUF_THREAD_ANNOTATION_(scoped_lockable)
#define NBUF_GUARDED_BY(x) NBUF_THREAD_ANNOTATION_(guarded_by(x))
#define NBUF_PT_GUARDED_BY(x) NBUF_THREAD_ANNOTATION_(pt_guarded_by(x))
#define NBUF_ACQUIRED_BEFORE(...) \
  NBUF_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define NBUF_ACQUIRED_AFTER(...) \
  NBUF_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define NBUF_REQUIRES(...) \
  NBUF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define NBUF_REQUIRES_SHARED(...) \
  NBUF_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define NBUF_ACQUIRE(...) \
  NBUF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define NBUF_ACQUIRE_SHARED(...) \
  NBUF_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define NBUF_RELEASE(...) \
  NBUF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define NBUF_RELEASE_SHARED(...) \
  NBUF_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define NBUF_TRY_ACQUIRE(...) \
  NBUF_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define NBUF_EXCLUDES(...) NBUF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define NBUF_ASSERT_CAPABILITY(x) \
  NBUF_THREAD_ANNOTATION_(assert_capability(x))
#define NBUF_RETURN_CAPABILITY(x) NBUF_THREAD_ANNOTATION_(lock_returned(x))
#define NBUF_NO_THREAD_SAFETY_ANALYSIS \
  NBUF_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace nbuf::util {

// std::mutex with a capability the analyzer can track. libstdc++'s
// std::mutex carries no annotations, so locking it directly is invisible
// to the analysis; this wrapper is the only mutex type src/ uses.
class NBUF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NBUF_ACQUIRE() { impl_.lock(); }
  void unlock() NBUF_RELEASE() { impl_.unlock(); }
  bool try_lock() NBUF_TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  std::mutex impl_;
};

// Scoped guard over util::Mutex — the only way src/ code takes a lock.
class NBUF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NBUF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NBUF_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace nbuf::util
