// Compile-time-leveled contract macros — the single home of every
// precondition and invariant check in the library.
//
// Three macros, by audience and cost:
//
//   NBUF_REQUIRE(cond)    public-API precondition (a CALLER error); throws
//                         std::invalid_argument. O(1).
//   NBUF_ASSERT(cond)     internal invariant (a LIBRARY bug); throws
//                         std::logic_error. O(1).
//   NBUF_INVARIANT(cond)  expensive structural invariant (full O(n) walk of
//                         a data structure); throws std::logic_error.
//
// Each macro has _MSG (fixed message) and _CTX (formatted context values,
// built with nbuf::util::ctx("name", value, ...)) variants.
//
// The compile-time level NBUF_CONTRACTS selects what stays in the binary:
//
//   0  everything compiled out — benchmarking floor only; silent corruption
//      of an optimization result costs far more than the checks.
//   1  REQUIRE + ASSERT on (cheap O(1) checks). The DEFAULT, including for
//      Release builds: measured overhead on bench/figI_kernel_speedup
//      --quick is below the noise floor (<2%, see docs/quality.md).
//   2  additionally NBUF_INVARIANT and the NBUF_STRUCTURAL_CHECKS block
//      helper: full structural re-verification after every mutating step
//      (candidate-list sort/Pareto walks, exactly-once claim tracking).
//      The default for Debug and sanitizer (ASan/UBSan/TSan) builds.
//
// Failure messages are structured: kind, stringified expression, file:line,
// then the formatted context values, e.g.
//
//   contract violated: NBUF_ASSERT(load >= 0.0) at vanginneken.cpp:123
//   [i=4 load=-0.25]
//
// Failures THROW rather than abort so the batch engine can drain its worker
// pool and surface the first error, and so tests can EXPECT_THROW on them.
// In a noexcept context (worker teardown, destructors) a contract failure
// still dies loudly via std::terminate — tests/test_contracts_l*.cpp pins
// both behaviors, the throw and the death.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#ifndef NBUF_CONTRACTS
#define NBUF_CONTRACTS 1
#endif

namespace nbuf::util {

// Formats alternating name/value pairs: ctx("x", 1.5, "n", 3) -> "x=1.5 n=3".
// Values stream via operator<<; keep them cheap — the call only runs on the
// failure path, but the arguments are evaluated to build it.
namespace detail {
inline void ctx_append(std::ostringstream&) {}
template <typename V, typename... Rest>
void ctx_append(std::ostringstream& os, const char* name, const V& value,
                const Rest&... rest) {
  if (os.tellp() > 0) os << ' ';
  os << name << '=' << value;
  ctx_append(os, rest...);
}
}  // namespace detail

template <typename... Args>
std::string ctx(const Args&... args) {
  static_assert(sizeof...(Args) % 2 == 0,
                "ctx() takes alternating name/value pairs");
  std::ostringstream os;
  detail::ctx_append(os, args...);
  return os.str();
}

[[noreturn]] inline void contract_fail_require(const char* cond,
                                               const char* file, int line,
                                               const std::string& context) {
  std::ostringstream os;
  os << "precondition failed: NBUF_REQUIRE(" << cond << ") at " << file << ':'
     << line;
  if (!context.empty()) os << " [" << context << ']';
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void contract_fail_assert(const char* cond,
                                              const char* file, int line,
                                              const std::string& context) {
  std::ostringstream os;
  os << "invariant failed: NBUF_ASSERT(" << cond << ") at " << file << ':'
     << line;
  if (!context.empty()) os << " [" << context << ']';
  throw std::logic_error(os.str());
}

[[noreturn]] inline void contract_fail_invariant(const char* cond,
                                                 const char* file, int line,
                                                 const std::string& context) {
  std::ostringstream os;
  os << "structural invariant failed: NBUF_INVARIANT(" << cond << ") at "
     << file << ':' << line;
  if (!context.empty()) os << " [" << context << ']';
  throw std::logic_error(os.str());
}

}  // namespace nbuf::util

// Disabled checks must neither evaluate the condition nor warn about
// now-unused variables: sizeof keeps every name odr-unused but "used".
#define NBUF_CONTRACT_OFF_(cond) \
  do {                           \
    (void)sizeof(!(cond));       \
  } while (0)

#if NBUF_CONTRACTS >= 1

#define NBUF_REQUIRE(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::nbuf::util::contract_fail_require(#cond, __FILE__, __LINE__, "");    \
  } while (0)
#define NBUF_REQUIRE_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond))                                                             \
      ::nbuf::util::contract_fail_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
#define NBUF_REQUIRE_CTX(cond, context)                                     \
  do {                                                                      \
    if (!(cond))                                                            \
      ::nbuf::util::contract_fail_require(#cond, __FILE__, __LINE__,        \
                                          (context));                       \
  } while (0)

#define NBUF_ASSERT(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::nbuf::util::contract_fail_assert(#cond, __FILE__, __LINE__, "");    \
  } while (0)
#define NBUF_ASSERT_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond))                                                            \
      ::nbuf::util::contract_fail_assert(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
#define NBUF_ASSERT_CTX(cond, context)                               \
  do {                                                               \
    if (!(cond))                                                     \
      ::nbuf::util::contract_fail_assert(#cond, __FILE__, __LINE__,  \
                                         (context));                 \
  } while (0)

#else  // NBUF_CONTRACTS == 0

#define NBUF_REQUIRE(cond) NBUF_CONTRACT_OFF_(cond)
#define NBUF_REQUIRE_MSG(cond, msg) NBUF_CONTRACT_OFF_(cond)
#define NBUF_REQUIRE_CTX(cond, context) NBUF_CONTRACT_OFF_(cond)
#define NBUF_ASSERT(cond) NBUF_CONTRACT_OFF_(cond)
#define NBUF_ASSERT_MSG(cond, msg) NBUF_CONTRACT_OFF_(cond)
#define NBUF_ASSERT_CTX(cond, context) NBUF_CONTRACT_OFF_(cond)

#endif

#if NBUF_CONTRACTS >= 2

// True in contexts where O(n) structural verification should run; usable in
// ordinary `if` conditions to gate whole verification blocks.
#define NBUF_STRUCTURAL_CHECKS 1

#define NBUF_INVARIANT(cond)                                                \
  do {                                                                      \
    if (!(cond))                                                            \
      ::nbuf::util::contract_fail_invariant(#cond, __FILE__, __LINE__, ""); \
  } while (0)
#define NBUF_INVARIANT_MSG(cond, msg)                                \
  do {                                                               \
    if (!(cond))                                                     \
      ::nbuf::util::contract_fail_invariant(#cond, __FILE__,         \
                                            __LINE__, (msg));        \
  } while (0)
#define NBUF_INVARIANT_CTX(cond, context)                            \
  do {                                                               \
    if (!(cond))                                                     \
      ::nbuf::util::contract_fail_invariant(#cond, __FILE__,         \
                                            __LINE__, (context));    \
  } while (0)

#else

#define NBUF_STRUCTURAL_CHECKS 0

#define NBUF_INVARIANT(cond) NBUF_CONTRACT_OFF_(cond)
#define NBUF_INVARIANT_MSG(cond, msg) NBUF_CONTRACT_OFF_(cond)
#define NBUF_INVARIANT_CTX(cond, context) NBUF_CONTRACT_OFF_(cond)

#endif
