// Small descriptive-statistics helpers used by the workload generator and
// the experiment harnesses.
#pragma once

#include <map>
#include <vector>

namespace nbuf::util {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

// Descriptive summary of a sample; empty input yields a zeroed Summary.
[[nodiscard]] Summary summarize(const std::vector<double>& xs);

// p in [0, 1]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

// Bucketed histogram keyed by integer value (e.g. sink counts, buffer
// counts). Returns value -> occurrence count.
[[nodiscard]] std::map<int, std::size_t> histogram(const std::vector<int>& xs);

}  // namespace nbuf::util
