// Small descriptive-statistics helpers used by the workload generator and
// the experiment harnesses, plus the VgStats counter block shared by the
// Van Ginneken DP (core/vanginneken) and the batch engine (batch/batch).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace nbuf::util {

// Counters describing one Van Ginneken-style DP run (Li & Shi's lens on DP
// efficiency: how many candidates exist and how many pruning kills). The
// counters are exact and schedule-independent; the per-phase wall times are
// measured only when core::VgOptions::collect_stats is set (steady_clock
// reads are not free on the hot path) and are, of course, not reproducible.
// Defined here, below core, so batch aggregation and CLI reporting need no
// dependency on the optimizer itself.
struct VgStats {
  std::size_t candidates_generated = 0;  // every candidate materialized
  std::size_t pruned_inferior = 0;       // (load, slack)-dominated (Step 7)
  std::size_t pruned_infeasible = 0;     // dead: noise slack went negative
  std::size_t merged = 0;                // produced by two-child merges
  std::size_t peak_list_size = 0;        // largest single candidate list
  // Kernel-path counters (fast kernel, PR 2). The fast kernel keeps every
  // candidate list sorted by (load asc, slack desc) across wire extension,
  // merge and buffer insertion, so pruning is normally one linear scan;
  // these record how often the sort actually had to run.
  std::size_t prune_calls = 0;          // prune passes over a list
  std::size_t prune_sorts = 0;          // passes that had to std::sort
  std::size_t prune_sorts_skipped = 0;  // served by the sorted fast path
  std::size_t offset_flushes = 0;       // lazy wire offsets materialized
  std::size_t snapshot_cands_avoided = 0;  // candidates NOT deep-copied at
                                           // buffer insertion (read views)
  std::size_t pool_reuses = 0;  // candidate-list buffers recycled
  // Best-predecessor counters (fast kernel, PR 6). With b buffer types the
  // naive insertion step re-evaluates noise/slew feasibility for every
  // candidate once per type; the fast kernel binary-searches each
  // candidate's first feasible type once per bucket and answers all b
  // queries with predicate-free scans of the already-feasible groups.
  // These record how many buckets were prepared and how many candidates
  // were infeasible for every type (never scanned at all).
  std::size_t bp_prune_calls = 0;        // best-predecessor preparations
  std::size_t bp_candidates_killed = 0;  // infeasible for every type
  std::size_t lib_types = 0;             // buffer-library size seen (max)
  // SoA-layout counters (fast kernel, PR 10). Candidate lists live in
  // structure-of-arrays lane blocks (core/soa.hpp) whose hot loops run as
  // vectorizable sweeps (core/soa_sweeps.hpp); these describe how that
  // layout behaved. All are pure functions of the input net and the
  // options — identical at any thread count and in both simd modes (the
  // lane-utilization split counts what a vector unit of kSimdLanes would
  // process in full vectors vs the scalar epilogue, whether or not the
  // sweep actually ran vectorized).
  std::size_t soa_block_reuses = 0;     // SoA lane blocks recycled (pool)
  std::size_t soa_flush_elems = 0;      // candidates updated by wire
                                        // flushes (width = /offset_flushes)
  std::size_t soa_full_lane_elems = 0;  // sweep elements in full vectors
  std::size_t soa_tail_elems = 0;       // sweep elements in scalar tails
  std::size_t soa_prunes_no_move = 0;   // prunes that killed nothing and
                                        // skipped compaction entirely

  // Per-phase wall time (seconds); zero unless timing was requested.
  double wire_seconds = 0.0;    // extend-candidates-through-wire phase
  double buffer_seconds = 0.0;  // buffer-insertion phase
  double merge_seconds = 0.0;   // two-child merge phase

  // Aggregation: counters and times add, the peak takes the max.
  VgStats& operator+=(const VgStats& o) {
    candidates_generated += o.candidates_generated;
    pruned_inferior += o.pruned_inferior;
    pruned_infeasible += o.pruned_infeasible;
    merged += o.merged;
    peak_list_size = peak_list_size < o.peak_list_size ? o.peak_list_size
                                                       : peak_list_size;
    prune_calls += o.prune_calls;
    prune_sorts += o.prune_sorts;
    prune_sorts_skipped += o.prune_sorts_skipped;
    offset_flushes += o.offset_flushes;
    snapshot_cands_avoided += o.snapshot_cands_avoided;
    pool_reuses += o.pool_reuses;
    bp_prune_calls += o.bp_prune_calls;
    bp_candidates_killed += o.bp_candidates_killed;
    lib_types = lib_types < o.lib_types ? o.lib_types : lib_types;
    soa_block_reuses += o.soa_block_reuses;
    soa_flush_elems += o.soa_flush_elems;
    soa_full_lane_elems += o.soa_full_lane_elems;
    soa_tail_elems += o.soa_tail_elems;
    soa_prunes_no_move += o.soa_prunes_no_move;
    wire_seconds += o.wire_seconds;
    buffer_seconds += o.buffer_seconds;
    merge_seconds += o.merge_seconds;
    return *this;
  }

  // Equality of the deterministic part only (wall times never reproduce).
  // Covers the kernel-path counters too: they are pure functions of the
  // input net and the options, so batch runs must reproduce them at any
  // thread count.
  [[nodiscard]] bool same_counters(const VgStats& o) const {
    return candidates_generated == o.candidates_generated &&
           pruned_inferior == o.pruned_inferior &&
           pruned_infeasible == o.pruned_infeasible && merged == o.merged &&
           peak_list_size == o.peak_list_size &&
           prune_calls == o.prune_calls && prune_sorts == o.prune_sorts &&
           prune_sorts_skipped == o.prune_sorts_skipped &&
           offset_flushes == o.offset_flushes &&
           snapshot_cands_avoided == o.snapshot_cands_avoided &&
           pool_reuses == o.pool_reuses &&
           bp_prune_calls == o.bp_prune_calls &&
           bp_candidates_killed == o.bp_candidates_killed &&
           lib_types == o.lib_types &&
           soa_block_reuses == o.soa_block_reuses &&
           soa_flush_elems == o.soa_flush_elems &&
           soa_full_lane_elems == o.soa_full_lane_elems &&
           soa_tail_elems == o.soa_tail_elems &&
           soa_prunes_no_move == o.soa_prunes_no_move;
  }
};

// One-line human-readable rendering of the counters (times appended only
// when any phase was timed).
[[nodiscard]] std::string format(const VgStats& s);

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

// Descriptive summary of a sample; empty input yields a zeroed Summary.
[[nodiscard]] Summary summarize(const std::vector<double>& xs);

// p in [0, 1]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

// Bucketed histogram keyed by integer value (e.g. sink counts, buffer
// counts). Returns value -> occurrence count.
[[nodiscard]] std::map<int, std::size_t> histogram(const std::vector<int>& xs);

}  // namespace nbuf::util
