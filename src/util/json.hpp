// Minimal dependency-free JSON emitter shared by the signoff reports
// (docs/signoff.md) and the observability exporters (docs/observability.md).
//
// Deliberately tiny: objects and arrays are emitted in call order (each
// consumer's documented schema is the contract), numbers print with
// enough digits to round-trip a double exactly, and non-finite doubles
// become null (JSON has no Inf/NaN). Output is deterministic: the same
// report serializes to the same bytes on every run and thread count.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace nbuf::util {

class JsonWriter {
 public:
  // Structure. begin_* inside an object require a preceding key().
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);

  // Scalars.
  void value(double v);
  void value(std::size_t v);
  void value(int v);
  void value(bool v);
  void value(std::string_view v);
  void null();

  // Convenience: key + scalar.
  template <class T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

  // The document built so far (call once, after the last end_*).
  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void comma();
  void escape(std::string_view v);
  std::string out_;
  // true = a value has already been written at this nesting depth.
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

}  // namespace nbuf::util
