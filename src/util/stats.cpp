#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace nbuf::util {

std::string format(const VgStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "generated %zu, pruned inferior %zu, pruned infeasible %zu, "
                "merged %zu, peak list %zu",
                s.candidates_generated, s.pruned_inferior,
                s.pruned_infeasible, s.merged, s.peak_list_size);
  std::string out = buf;
  if (s.prune_calls > 0) {
    std::snprintf(buf, sizeof buf,
                  "; prune calls %zu (sorted scans %zu, sorts %zu), "
                  "offset flushes %zu, snapshot cands avoided %zu, "
                  "pooled reuses %zu",
                  s.prune_calls, s.prune_sorts_skipped, s.prune_sorts,
                  s.offset_flushes, s.snapshot_cands_avoided, s.pool_reuses);
    out += buf;
  }
  if (s.bp_prune_calls > 0) {
    std::snprintf(buf, sizeof buf,
                  "; lib types %zu, best-pred preps %zu, bp killed %zu",
                  s.lib_types, s.bp_prune_calls, s.bp_candidates_killed);
    out += buf;
  }
  if (s.soa_full_lane_elems + s.soa_tail_elems > 0) {
    const std::size_t sweep_elems = s.soa_full_lane_elems + s.soa_tail_elems;
    std::snprintf(buf, sizeof buf,
                  "; soa block reuses %zu, flush elems %zu, lane util "
                  "%zu/%zu, no-move prunes %zu",
                  s.soa_block_reuses, s.soa_flush_elems,
                  s.soa_full_lane_elems, sweep_elems, s.soa_prunes_no_move);
    out += buf;
  }
  const double timed = s.wire_seconds + s.buffer_seconds + s.merge_seconds;
  if (timed > 0.0) {
    std::snprintf(buf, sizeof buf,
                  "; phases wire %.1f ms, buffer %.1f ms, merge %.1f ms",
                  s.wire_seconds * 1e3, s.buffer_seconds * 1e3,
                  s.merge_seconds * 1e3);
    out += buf;
  }
  return out;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs.front();
  s.max = xs.front();
  double sum = 0.0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

double percentile(std::vector<double> xs, double p) {
  NBUF_EXPECTS(!xs.empty());
  NBUF_EXPECTS(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());  // nbuf-lint: allow(sort)
  const double pos = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::map<int, std::size_t> histogram(const std::vector<int>& xs) {
  std::map<int, std::size_t> h;
  for (int x : xs) ++h[x];
  return h;
}

}  // namespace nbuf::util
