#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace nbuf::util {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_.push_back(false);
}

void JsonWriter::end_object() {
  need_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  need_comma_.push_back(false);
}

void JsonWriter::end_array() {
  need_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view k) {
  comma();
  escape(k);
  out_ += ':';
  after_key_ = true;
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

void JsonWriter::value(std::size_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(int v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(std::string_view v) {
  comma();
  escape(v);
}

void JsonWriter::escape(std::string_view v) {
  out_ += '"';
  for (char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::null() {
  comma();
  out_ += "null";
}

}  // namespace nbuf::util
