// ASCII table rendering for bench output.
//
// The bench binaries regenerate the paper's tables; Table renders rows in a
// fixed-width layout close to how the paper prints them, so EXPERIMENTS.md
// can be filled by copy-paste.
#pragma once

#include <string>
#include <vector>

namespace nbuf::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends one row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);
  static std::string integer(long long v);
  static std::string percent(double fraction, int precision = 2);

  // Renders with a rule under the header, columns padded to content width.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nbuf::util
