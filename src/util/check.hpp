// Compatibility shim: the contract macros now live in util/contracts.hpp
// (three compile-time levels, structured failure context). The original
// NBUF_EXPECTS spelling for public-API preconditions maps to NBUF_REQUIRE
// and keeps working everywhere; new code should include util/contracts.hpp
// and use NBUF_REQUIRE / NBUF_ASSERT / NBUF_INVARIANT directly.
#pragma once

#include "util/contracts.hpp"

#define NBUF_EXPECTS(cond) NBUF_REQUIRE(cond)
#define NBUF_EXPECTS_MSG(cond, msg) NBUF_REQUIRE_MSG(cond, msg)
