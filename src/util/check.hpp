// Precondition / invariant checking helpers.
//
// NBUF_EXPECTS is used for public-API preconditions (caller errors) and
// throws std::invalid_argument; NBUF_ASSERT is used for internal invariants
// and throws std::logic_error. Both are always on: this is an EDA research
// library where silent corruption of an optimization result is far more
// expensive than the check.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nbuf::util {

[[noreturn]] inline void fail_expects(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void fail_assert(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace nbuf::util

#define NBUF_EXPECTS(cond)                                              \
  do {                                                                  \
    if (!(cond)) ::nbuf::util::fail_expects(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define NBUF_EXPECTS_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) ::nbuf::util::fail_expects(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define NBUF_ASSERT(cond)                                               \
  do {                                                                  \
    if (!(cond)) ::nbuf::util::fail_assert(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define NBUF_ASSERT_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) ::nbuf::util::fail_assert(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
