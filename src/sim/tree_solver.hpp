// O(n) direct solver for tree-structured conductance systems.
//
// The backward-Euler system matrix of a buffered-net stage is
//   A = L(g) + diag(extra)
// where L(g) is the Laplacian of the stage's resistor tree and `extra`
// collects grounded conductances (the driver) and C/h terms. Eliminating
// leaves toward the root produces no fill-in, so A factors once in O(n) and
// every timestep solves in O(n) — the property that makes the golden
// transient analysis linear-time per stage, mirroring how RICE/AWE-class
// tools exploit RC-tree structure.
#pragma once

#include <cstddef>
#include <vector>

namespace nbuf::sim {

class TreeSolver {
 public:
  // Nodes are 0..n-1 with node 0 the root. parent[i] is i's parent
  // (parent[0] ignored); branch_g[i] > 0 is the conductance from i to its
  // parent (branch_g[0] ignored); extra[i] >= 0 is the grounded diagonal
  // addition. The assembled matrix must be nonsingular (some extra > 0).
  TreeSolver(std::vector<std::size_t> parent, std::vector<double> branch_g,
             std::vector<double> extra);

  // Solves A v = rhs in place. rhs.size() == node count.
  void solve(std::vector<double>& rhs) const;

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<double> branch_g_;
  std::vector<double> diag_;   // eliminated diagonal D_i
  std::vector<std::size_t> order_;  // children-before-parents
};

}  // namespace nbuf::sim
