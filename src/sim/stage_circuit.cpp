#include "sim/stage_circuit.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace nbuf::sim {

StageCircuit build_stage_circuit(const rct::RoutingTree& tree,
                                 const rct::Stage& stage,
                                 double coupling_ratio,
                                 double section_length) {
  NBUF_EXPECTS(coupling_ratio >= 0.0 && coupling_ratio < 1.0);
  NBUF_EXPECTS(section_length > 0.0);
  StageCircuit c;
  auto new_node = [&](std::size_t parent, double g) {
    c.parent.push_back(parent);
    c.branch_g.push_back(g);
    c.cap_ground.push_back(0.0);
    c.cap_couple.push_back(0.0);
    return c.parent.size() - 1;
  };
  new_node(0, 0.0);  // root
  c.sim_node_of[stage.root] = 0;

  const double lam = coupling_ratio;
  for (rct::NodeId id : stage.nodes) {
    if (id == stage.root) continue;
    const rct::Node& n = tree.node(id);
    const rct::Wire& w = n.parent_wire;
    const std::size_t top = c.sim_node_of.at(n.parent);
    if (w.resistance <= 0.0 && w.capacitance <= 0.0) {
      // Binarization dummy: electrically the same point as the parent.
      c.sim_node_of[id] = top;
      continue;
    }
    const auto sections = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(w.length / section_length)));
    const double r_sec =
        std::max(w.resistance / static_cast<double>(sections), 1e-6);
    const double c_sec = w.capacitance / static_cast<double>(sections);
    std::size_t up = top;
    for (std::size_t s = 0; s < sections; ++s) {
      const std::size_t down = new_node(up, 1.0 / r_sec);
      // pi-model: half of the section capacitance at each end; the lambda
      // fraction couples to the aggressor, the rest goes to ground.
      for (std::size_t end : {up, down}) {
        c.cap_ground[end] += (1.0 - lam) * c_sec / 2.0;
        c.cap_couple[end] += lam * c_sec / 2.0;
      }
      up = down;
    }
    c.sim_node_of[id] = up;
  }
  for (const rct::StageSink& s : stage.sinks)
    c.cap_ground[c.sim_node_of.at(s.node)] += s.cap;
  return c;
}

}  // namespace nbuf::sim
