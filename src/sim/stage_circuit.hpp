// Flattened electrical model of one stage (buffer-free sub-net) of a
// routing tree, shared by the golden noise analyzer, the step-delay
// analyzer and the moment engine.
//
// Stage tree nodes plus wire-interior pi-section nodes form a resistor tree
// rooted at the stage's driving gate; every node carries a grounded
// capacitance and (for noise analysis) a capacitance coupled to the
// aggressor waveform. Zero-length binarization dummies collapse onto their
// parent node.
#pragma once

#include <unordered_map>
#include <vector>

#include "rct/stage.hpp"

namespace nbuf::sim {

struct StageCircuit {
  std::vector<std::size_t> parent;   // sim-node tree (0 = stage root)
  std::vector<double> branch_g;      // conductance to parent (index >= 1)
  std::vector<double> cap_ground;    // grounded capacitance per node
  std::vector<double> cap_couple;    // capacitance to the aggressor ramp
  std::unordered_map<rct::NodeId, std::size_t> sim_node_of;  // tree -> sim

  [[nodiscard]] std::size_t size() const noexcept { return parent.size(); }
  // Total capacitance (ground + couple) per node.
  [[nodiscard]] double total_cap(std::size_t i) const {
    return cap_ground[i] + cap_couple[i];
  }
};

// Builds the circuit. Wires are subdivided into pi-sections no longer than
// `section_length` (µm); `coupling_ratio` of every wire capacitance couples
// to the aggressor, the rest is grounded. Leaf pin capacitances (sinks and
// buffer inputs) go to ground.
[[nodiscard]] StageCircuit build_stage_circuit(const rct::RoutingTree& tree,
                                               const rct::Stage& stage,
                                               double coupling_ratio,
                                               double section_length);

}  // namespace nbuf::sim
