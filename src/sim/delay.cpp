#include "sim/delay.hpp"

#include <cmath>
#include <unordered_map>

#include "sim/stage_circuit.hpp"
#include "sim/tree_solver.hpp"
#include "sim/waveform.hpp"
#include "util/check.hpp"

namespace nbuf::sim {

namespace {

// 50% crossing time at every sim node of one stage whose driver ramps
// 0 -> vdd behind `driver_resistance`. Coupled capacitance is grounded
// (quiet neighbors during the timing event).
std::vector<double> stage_crossings(const StageCircuit& c,
                                    double driver_resistance,
                                    const StepDelayOptions& opt) {
  NBUF_EXPECTS(driver_resistance > 0.0);
  const std::size_t n = c.size();
  const double h = opt.driver_rise / opt.steps_per_rise;
  const SaturatedRamp ramp{opt.vdd, opt.driver_rise, 0.0};

  double r_total = driver_resistance;
  double c_total = 0.0;
  for (std::size_t i = 1; i < n; ++i) r_total += 1.0 / c.branch_g[i];
  for (std::size_t i = 0; i < n; ++i) c_total += c.total_cap(i);
  const double t_end =
      opt.driver_rise + opt.settle_time_constants * r_total * c_total;

  std::vector<double> extra(n, 0.0);
  extra[0] = 1.0 / driver_resistance;
  for (std::size_t i = 0; i < n; ++i) extra[i] += c.total_cap(i) / h;
  const TreeSolver solver(c.parent, c.branch_g, extra);

  const double half = opt.vdd / 2.0;
  std::vector<double> v(n, 0.0), prev(n, 0.0), rhs(n);
  std::vector<double> crossing(n, -1.0);
  const auto steps = static_cast<std::size_t>(std::ceil(t_end / h));
  std::size_t found = 0;
  for (std::size_t step = 1; step <= steps && found < n; ++step) {
    const double t = static_cast<double>(step) * h;
    for (std::size_t i = 0; i < n; ++i)
      rhs[i] = c.total_cap(i) / h * v[i];
    // Driver: Norton source g * v_ramp(t) into the root.
    rhs[0] += ramp.at(t) / driver_resistance;
    prev = v;
    solver.solve(rhs);
    v = rhs;
    for (std::size_t i = 0; i < n; ++i) {
      if (crossing[i] >= 0.0 || v[i] < half) continue;
      // Linear interpolation inside the step.
      const double f = (half - prev[i]) / (v[i] - prev[i]);
      crossing[i] = t - h + f * h;
      ++found;
    }
  }
  NBUF_ASSERT_MSG(found == n, "stage did not settle to vdd/2 everywhere");
  return crossing;
}

}  // namespace

StepDelayReport step_delays(const rct::RoutingTree& tree,
                            const rct::BufferAssignment& buffers,
                            const lib::BufferLibrary& lib,
                            const StepDelayOptions& options) {
  const auto stages = rct::decompose(tree, buffers, lib);
  std::unordered_map<rct::NodeId, double> input_arrival;  // at gate inputs

  StepDelayReport report;
  report.sinks.resize(tree.sink_count());
  for (const rct::Stage& st : stages) {
    const StageCircuit c = build_stage_circuit(
        tree, st, options.coupling_ratio, options.section_length);
    const auto crossing =
        stage_crossings(c, st.driver_resistance, options);
    double in_arrival = 0.0;
    if (!st.driven_by_source) {
      auto it = input_arrival.find(st.root);
      NBUF_ASSERT(it != input_arrival.end());
      in_arrival = it->second;
    }
    const double out_base = in_arrival + st.driver_intrinsic_delay;
    for (const rct::StageSink& s : st.sinks) {
      const double t = out_base + crossing[c.sim_node_of.at(s.node)];
      if (s.is_buffer_input) {
        input_arrival[s.node] = t;
      } else {
        report.sinks[s.sink.value()] = {s.sink, t};
        report.max_delay = std::max(report.max_delay, t);
      }
    }
  }
  return report;
}

}  // namespace nbuf::sim
