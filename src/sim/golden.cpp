#include "sim/golden.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "obs/trace.hpp"
#include "sim/stage_circuit.hpp"
#include "sim/tree_solver.hpp"
#include "util/check.hpp"

namespace nbuf::sim {

namespace {

std::string convergence_message(rct::NodeId node, double coarse,
                                double fine) {
  return "golden simulation did not converge at node " +
         std::to_string(node.value()) + ": peak " + std::to_string(coarse) +
         " V at dt vs " + std::to_string(fine) + " V at dt/2";
}

struct SimOut {
  std::vector<double> peak;   // per sim node
  std::vector<double> width;  // per traced node — time above peak/2
};

// Marches the stage circuit under aggressor excitation; records per-node
// peak |v| and, for the nodes listed in `trace_nodes` (the stage leaves —
// the only nodes whose pulse shape is reported), stores the waveform so a
// cheap second pass can measure the pulse width at half the peak. Interior
// pi-section nodes are not traced: a large unbuffered stage can take 1e5+
// timesteps, and full-circuit traces would be hundreds of megabytes.
SimOut simulate(const StageCircuit& c, double driver_resistance,
                const GoldenOptions& opt, double steps_per_rise,
                const std::vector<std::size_t>& trace_nodes) {
  NBUF_EXPECTS(driver_resistance > 0.0);
  const std::size_t n = c.size();
  const double h = opt.aggressor.rise / steps_per_rise;

  // Stage time constant estimate for the settling horizon.
  double r_total = driver_resistance;
  double c_total = 0.0;
  for (std::size_t i = 1; i < n; ++i) r_total += 1.0 / c.branch_g[i];
  for (std::size_t i = 0; i < n; ++i) c_total += c.total_cap(i);
  const double t_end = opt.aggressor.t0 + opt.aggressor.rise +
                       opt.settle_time_constants * r_total * c_total;

  std::vector<double> extra(n, 0.0);
  extra[0] = 1.0 / driver_resistance;  // victim driver holds quiet
  for (std::size_t i = 0; i < n; ++i) extra[i] += c.total_cap(i) / h;
  const TreeSolver solver(c.parent, c.branch_g, extra);

  std::vector<double> v(n, 0.0);
  std::vector<double> rhs(n);
  SimOut out;
  out.peak.assign(n, 0.0);
  out.width.assign(n, 0.0);
  const auto steps = static_cast<std::size_t>(std::ceil(t_end / h));
  std::vector<std::vector<double>> trace(trace_nodes.size());
  for (auto& tr : trace) tr.reserve(steps);
  double va_prev = opt.aggressor.at(0.0);
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * h;
    const double va = opt.aggressor.at(t);
    const double dva = va - va_prev;
    va_prev = va;
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = c.total_cap(i) / h * v[i] + c.cap_couple[i] / h * dva;
    }
    solver.solve(rhs);
    v = rhs;
    for (std::size_t i = 0; i < n; ++i)
      out.peak[i] = std::max(out.peak[i], std::abs(v[i]));
    for (std::size_t k = 0; k < trace_nodes.size(); ++k)
      trace[k].push_back(std::abs(v[trace_nodes[k]]));
  }
  for (std::size_t k = 0; k < trace_nodes.size(); ++k) {
    const std::size_t i = trace_nodes[k];
    const double half = out.peak[i] / 2.0;
    if (half <= 0.0) continue;
    std::size_t above = 0;
    for (double x : trace[k])
      if (x >= half) ++above;
    out.width[i] = static_cast<double>(above) * h;
  }
  return out;
}

// Simulates one stage at the configured timestep; with check_convergence
// set, re-simulates at dt/2 and requires every traced leaf's peak to agree.
SimOut simulate_checked(const StageCircuit& c, double driver_resistance,
                        const GoldenOptions& opt,
                        const std::vector<std::size_t>& trace_nodes) {
  SimOut out = simulate(c, driver_resistance, opt, opt.steps_per_rise,
                        trace_nodes);
  if (opt.check_convergence) {
    NBUF_TRACE_DETAIL_TAGGED("golden.convergence", c.size());
    const SimOut fine = simulate(c, driver_resistance, opt,
                                 opt.steps_per_rise * 2.0, {});
    for (const auto& [id, i] : c.sim_node_of) {
      const double coarse_peak = out.peak[i];
      const double fine_peak = fine.peak[i];
      const double tol = std::max(opt.convergence_atol,
                                  opt.convergence_rtol * fine_peak);
      if (std::abs(coarse_peak - fine_peak) > tol)
        throw ConvergenceError(id, coarse_peak, fine_peak);
    }
  }
  return out;
}

std::vector<std::size_t> leaf_sim_nodes(const StageCircuit& c,
                                        const rct::Stage& stage) {
  std::vector<std::size_t> out;
  out.reserve(stage.sinks.size());
  for (const rct::StageSink& s : stage.sinks)
    out.push_back(c.sim_node_of.at(s.node));
  return out;
}

}  // namespace

ConvergenceError::ConvergenceError(rct::NodeId n, double coarse, double fine)
    : std::runtime_error(convergence_message(n, coarse, fine)),
      node(n),
      coarse_peak(coarse),
      fine_peak(fine) {}

GoldenOptions golden_options_from(const lib::Technology& tech) {
  tech.validate();
  GoldenOptions opt;
  opt.coupling_ratio = tech.coupling_ratio;
  opt.aggressor = SaturatedRamp{tech.vdd, tech.aggressor_rise, 0.0};
  return opt;
}

std::vector<std::pair<rct::NodeId, double>> golden_stage_peaks(
    const rct::RoutingTree& tree, const rct::Stage& stage,
    const GoldenOptions& options) {
  const StageCircuit c = build_stage_circuit(
      tree, stage, options.coupling_ratio, options.section_length);
  const SimOut sim_out = simulate_checked(c, stage.driver_resistance,
                                          options, {});
  std::vector<std::pair<rct::NodeId, double>> out;
  out.reserve(c.sim_node_of.size());
  for (const auto& [id, sim] : c.sim_node_of)
    out.emplace_back(id, sim_out.peak[sim]);
  return out;
}

GoldenReport golden_analyze(const rct::RoutingTree& tree,
                            const rct::BufferAssignment& buffers,
                            const lib::BufferLibrary& lib,
                            const GoldenOptions& options) {
  NBUF_TRACE_SPAN_TAGGED("golden.analyze", tree.node_count());
  const auto stages = rct::decompose(tree, buffers, lib);
  GoldenReport report;
  report.sinks.resize(tree.sink_count());
  report.worst_slack = std::numeric_limits<double>::infinity();
  for (const rct::Stage& st : stages) {
    NBUF_TRACE_DETAIL_TAGGED("golden.stage", st.sinks.size());
    const StageCircuit c = build_stage_circuit(
        tree, st, options.coupling_ratio, options.section_length);
    const SimOut sim_out = simulate_checked(c, st.driver_resistance, options,
                                            leaf_sim_nodes(c, st));
    for (const rct::StageSink& s : st.sinks) {
      GoldenLeaf leaf;
      leaf.node = s.node;
      leaf.is_buffer_input = s.is_buffer_input;
      leaf.sink = s.sink;
      leaf.peak = sim_out.peak[c.sim_node_of.at(s.node)];
      leaf.width = sim_out.width[c.sim_node_of.at(s.node)];
      leaf.margin = s.noise_margin;
      leaf.slack = leaf.margin - leaf.peak;
      report.leaves.push_back(leaf);
      if (!s.is_buffer_input) report.sinks[s.sink.value()] = leaf;
      report.worst_slack = std::min(report.worst_slack, leaf.slack);
      if (leaf.slack < 0.0) ++report.violation_count;
    }
  }
  return report;
}

GoldenReport golden_analyze_unbuffered(const rct::RoutingTree& tree,
                                       const GoldenOptions& options) {
  static const lib::BufferLibrary empty_lib;
  return golden_analyze(tree, rct::BufferAssignment{}, empty_lib, options);
}

}  // namespace nbuf::sim
