#include "sim/golden.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/stage_circuit.hpp"
#include "sim/tree_solver.hpp"
#include "util/check.hpp"

namespace nbuf::sim {

namespace {

struct SimOut {
  std::vector<double> peak;   // per sim node
  std::vector<double> width;  // per sim node — time spent above peak/2
};

// Marches the stage circuit under aggressor excitation; records per-node
// peak |v| and, in a cheap second pass over stored leaf samples, the pulse
// width at half the peak.
SimOut simulate(const StageCircuit& c, double driver_resistance,
                const GoldenOptions& opt) {
  NBUF_EXPECTS(driver_resistance > 0.0);
  const std::size_t n = c.size();
  const double h = opt.aggressor.rise / opt.steps_per_rise;

  // Stage time constant estimate for the settling horizon.
  double r_total = driver_resistance;
  double c_total = 0.0;
  for (std::size_t i = 1; i < n; ++i) r_total += 1.0 / c.branch_g[i];
  for (std::size_t i = 0; i < n; ++i) c_total += c.total_cap(i);
  const double t_end = opt.aggressor.t0 + opt.aggressor.rise +
                       opt.settle_time_constants * r_total * c_total;

  std::vector<double> extra(n, 0.0);
  extra[0] = 1.0 / driver_resistance;  // victim driver holds quiet
  for (std::size_t i = 0; i < n; ++i) extra[i] += c.total_cap(i) / h;
  const TreeSolver solver(c.parent, c.branch_g, extra);

  std::vector<double> v(n, 0.0);
  std::vector<double> rhs(n);
  SimOut out;
  out.peak.assign(n, 0.0);
  out.width.assign(n, 0.0);
  const auto steps = static_cast<std::size_t>(std::ceil(t_end / h));
  // Store full waveforms (n is small per stage) to measure widths after the
  // peak is known.
  std::vector<std::vector<double>> trace(n);
  for (auto& tr : trace) tr.reserve(steps);
  double va_prev = opt.aggressor.at(0.0);
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * h;
    const double va = opt.aggressor.at(t);
    const double dva = va - va_prev;
    va_prev = va;
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = c.total_cap(i) / h * v[i] + c.cap_couple[i] / h * dva;
    }
    solver.solve(rhs);
    v = rhs;
    for (std::size_t i = 0; i < n; ++i) {
      out.peak[i] = std::max(out.peak[i], std::abs(v[i]));
      trace[i].push_back(std::abs(v[i]));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double half = out.peak[i] / 2.0;
    if (half <= 0.0) continue;
    std::size_t above = 0;
    for (double x : trace[i])
      if (x >= half) ++above;
    out.width[i] = static_cast<double>(above) * h;
  }
  return out;
}

}  // namespace

GoldenOptions golden_options_from(const lib::Technology& tech) {
  tech.validate();
  GoldenOptions opt;
  opt.coupling_ratio = tech.coupling_ratio;
  opt.aggressor = SaturatedRamp{tech.vdd, tech.aggressor_rise, 0.0};
  return opt;
}

std::vector<std::pair<rct::NodeId, double>> golden_stage_peaks(
    const rct::RoutingTree& tree, const rct::Stage& stage,
    const GoldenOptions& options) {
  const StageCircuit c = build_stage_circuit(
      tree, stage, options.coupling_ratio, options.section_length);
  const SimOut sim_out = simulate(c, stage.driver_resistance, options);
  std::vector<std::pair<rct::NodeId, double>> out;
  out.reserve(c.sim_node_of.size());
  for (const auto& [id, sim] : c.sim_node_of)
    out.emplace_back(id, sim_out.peak[sim]);
  return out;
}

GoldenReport golden_analyze(const rct::RoutingTree& tree,
                            const rct::BufferAssignment& buffers,
                            const lib::BufferLibrary& lib,
                            const GoldenOptions& options) {
  const auto stages = rct::decompose(tree, buffers, lib);
  GoldenReport report;
  report.sinks.resize(tree.sink_count());
  report.worst_slack = std::numeric_limits<double>::infinity();
  for (const rct::Stage& st : stages) {
    const StageCircuit c = build_stage_circuit(
        tree, st, options.coupling_ratio, options.section_length);
    const SimOut sim_out = simulate(c, st.driver_resistance, options);
    for (const rct::StageSink& s : st.sinks) {
      GoldenLeaf leaf;
      leaf.node = s.node;
      leaf.is_buffer_input = s.is_buffer_input;
      leaf.sink = s.sink;
      leaf.peak = sim_out.peak[c.sim_node_of.at(s.node)];
      leaf.width = sim_out.width[c.sim_node_of.at(s.node)];
      leaf.margin = s.noise_margin;
      leaf.slack = leaf.margin - leaf.peak;
      report.leaves.push_back(leaf);
      if (!s.is_buffer_input) report.sinks[s.sink.value()] = leaf;
      report.worst_slack = std::min(report.worst_slack, leaf.slack);
      if (leaf.slack < 0.0) ++report.violation_count;
    }
  }
  return report;
}

GoldenReport golden_analyze_unbuffered(const rct::RoutingTree& tree,
                                       const GoldenOptions& options) {
  static const lib::BufferLibrary empty_lib;
  return golden_analyze(tree, rct::BufferAssignment{}, empty_lib, options);
}

}  // namespace nbuf::sim
