// Golden noise analysis: detailed transient simulation of every stage of a
// (possibly buffered) net under saturated-ramp aggressor excitation.
//
// This is the repository's stand-in for the paper's 3dnoise tool: an
// electrical analysis independent of the Devgan metric, used to (a) verify
// that nets the metric calls clean are actually clean, and (b) demonstrate
// the metric's conservatism (metric peak >= simulated peak).
//
// Model, matching the metric's estimation-mode assumptions (Section II-B):
// one aggressor fully coupled along every wire with coupling ratio lambda;
// the aggressor switches as an ideal saturated ramp; the victim driver
// holds its output quiet through its linear output resistance; inserted
// buffers are restoring (each stage simulates independently with its buffer
// input pins as capacitive leaves). Victim wires are subdivided into short
// pi-sections, so the distributed RC line is modeled faithfully; the
// resulting tree system is solved by the O(n) TreeSolver per timestep.
#pragma once

#include <stdexcept>
#include <vector>

#include "lib/technology.hpp"
#include "rct/stage.hpp"
#include "sim/waveform.hpp"

namespace nbuf::sim {

struct GoldenOptions {
  double coupling_ratio = 0.0;  // lambda — fraction of wire cap that couples
  SaturatedRamp aggressor;      // the switching neighbor
  double section_length = 100.0;    // µm — pi-section granularity
  double steps_per_rise = 200.0;    // timestep = rise / steps_per_rise
  double settle_time_constants = 8.0;  // simulate rise + k * stage tau
  // Step-size sanity check: every stage is re-simulated with the timestep
  // halved, and each leaf's peak must agree with the coarse run within
  // max(convergence_atol, convergence_rtol * peak). A disagreement means
  // the backward-Euler march has not converged at this dt, i.e. the
  // reported peaks are discretization artifacts — golden_analyze throws
  // ConvergenceError instead of returning untrustworthy numbers. Doubles
  // the simulation cost; meant for signoff runs, off by default.
  bool check_convergence = false;
  double convergence_rtol = 0.02;   // relative peak tolerance
  double convergence_atol = 1e-4;   // volt — floor for near-zero peaks
};

// Estimation-mode options derived from the process technology.
[[nodiscard]] GoldenOptions golden_options_from(const lib::Technology& tech);

// Thrown by golden_analyze when GoldenOptions::check_convergence is set and
// halving the timestep moved some leaf's peak by more than the tolerance.
class ConvergenceError : public std::runtime_error {
 public:
  ConvergenceError(rct::NodeId node, double coarse_peak, double fine_peak);
  rct::NodeId node;          // the leaf whose peak failed to converge
  double coarse_peak = 0.0;  // volt, at the configured dt
  double fine_peak = 0.0;    // volt, at dt / 2
};

struct GoldenLeaf {
  rct::NodeId node;
  bool is_buffer_input = false;
  rct::SinkId sink;      // valid iff !is_buffer_input
  double peak = 0.0;     // volt — simulated peak noise
  double margin = 0.0;   // volt
  double slack = 0.0;    // margin - peak
  double width = 0.0;    // second — pulse width at half the peak
};

struct GoldenReport {
  std::vector<GoldenLeaf> leaves;
  std::vector<GoldenLeaf> sinks;  // true sinks only, indexed by SinkId
  double worst_slack = 0.0;
  std::size_t violation_count = 0;
  [[nodiscard]] bool clean() const noexcept { return violation_count == 0; }
};

// Simulates every stage of tree+buffers and reports per-leaf peak noise.
[[nodiscard]] GoldenReport golden_analyze(const rct::RoutingTree& tree,
                                          const rct::BufferAssignment& buffers,
                                          const lib::BufferLibrary& lib,
                                          const GoldenOptions& options);

[[nodiscard]] GoldenReport golden_analyze_unbuffered(
    const rct::RoutingTree& tree, const GoldenOptions& options);

// Peak simulated noise at every node of a single stage (keyed by tree node;
// wire-interior section nodes are not reported). Exposed for tests that
// cross-check the tree solver against the dense engine.
[[nodiscard]] std::vector<std::pair<rct::NodeId, double>> golden_stage_peaks(
    const rct::RoutingTree& tree, const rct::Stage& stage,
    const GoldenOptions& options);

}  // namespace nbuf::sim
