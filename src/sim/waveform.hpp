// Aggressor excitation waveforms.
#pragma once

#include <algorithm>

#include "util/check.hpp"

namespace nbuf::sim {

// Saturated ramp: 0 until t0, linear rise to vdd over `rise`, then flat —
// the aggressor model underlying both the Devgan metric (slope = vdd/rise)
// and the golden transient analysis.
struct SaturatedRamp {
  double vdd = 0.0;   // volt
  double rise = 0.0;  // second
  double t0 = 0.0;    // second — start of the ramp

  [[nodiscard]] double at(double t) const {
    NBUF_EXPECTS(rise > 0.0);
    return vdd * std::clamp((t - t0) / rise, 0.0, 1.0);
  }
  [[nodiscard]] double slope() const {
    NBUF_EXPECTS(rise > 0.0);
    return vdd / rise;
  }
};

}  // namespace nbuf::sim
