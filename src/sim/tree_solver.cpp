#include "sim/tree_solver.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace nbuf::sim {

TreeSolver::TreeSolver(std::vector<std::size_t> parent,
                       std::vector<double> branch_g,
                       std::vector<double> extra)
    : parent_(std::move(parent)), branch_g_(std::move(branch_g)) {
  const std::size_t n = parent_.size();
  NBUF_EXPECTS(n >= 1);
  NBUF_EXPECTS(branch_g_.size() == n && extra.size() == n);
  for (std::size_t i = 1; i < n; ++i) {
    NBUF_EXPECTS_MSG(parent_[i] < n && parent_[i] != i, "bad parent link");
    NBUF_EXPECTS(branch_g_[i] > 0.0);
    NBUF_EXPECTS(extra[i] >= 0.0);
  }

  // Children-before-parents order via reversed preorder from the root.
  std::vector<std::vector<std::size_t>> kids(n);
  for (std::size_t i = 1; i < n; ++i) kids[parent_[i]].push_back(i);
  order_.reserve(n);
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    order_.push_back(v);
    for (std::size_t k : kids[v]) stack.push_back(k);
  }
  NBUF_EXPECTS_MSG(order_.size() == n, "parent links form a cycle");
  std::reverse(order_.begin(), order_.end());

  // Symbolic+numeric factorization: D_i = extra_i + g_i + sum over children
  // g_c (1 - g_c / D_c); root has no g term.
  diag_ = std::move(extra);
  for (std::size_t i = 1; i < n; ++i) diag_[i] += branch_g_[i];
  for (std::size_t v : order_) {
    if (v == 0) break;  // root is last
    NBUF_EXPECTS_MSG(diag_[v] > 0.0, "singular tree system");
    diag_[parent_[v]] += branch_g_[v] * (1.0 - branch_g_[v] / diag_[v]);
  }
  NBUF_EXPECTS_MSG(diag_[0] > 0.0, "singular tree system (floating root)");
}

void TreeSolver::solve(std::vector<double>& rhs) const {
  const std::size_t n = parent_.size();
  NBUF_EXPECTS(rhs.size() == n);
  // Forward (leaves to root): fold each child's contribution into parent.
  for (std::size_t v : order_) {
    if (v == 0) break;
    rhs[parent_[v]] += branch_g_[v] / diag_[v] * rhs[v];
  }
  // Root solve, then push solutions downward (root to leaves).
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const std::size_t v = *it;
    if (v == 0) {
      rhs[0] /= diag_[0];
    } else {
      rhs[v] = (rhs[v] + branch_g_[v] * rhs[parent_[v]]) / diag_[v];
    }
  }
}

}  // namespace nbuf::sim
