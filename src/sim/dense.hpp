// Dense linear-circuit engine: MNA stamping + LU + backward-Euler /
// trapezoidal transient.
//
// Serves as the reference ("golden of the golden") solver: it handles
// arbitrary RC topologies including full bidirectional victim-aggressor
// coupling, so it cross-checks both the O(n) tree solver and the Devgan
// metric's upper-bound property. Complexity is O(n^3) for the one-time
// factorization and O(n^2) per timestep, which is ample for per-stage
// circuits (tens of nodes).
//
// Node 0 is ground. Voltage sources are expressed as Norton equivalents
// (conductance + time-varying current source), keeping the system matrix
// G + C/h symmetric positive definite and constant over the march.
#pragma once

#include <functional>
#include <vector>

namespace nbuf::sim {

// LU factorization with partial pivoting of a dense square matrix.
class DenseLu {
 public:
  // a is row-major n x n; throws std::invalid_argument on singularity.
  DenseLu(std::vector<double> a, std::size_t n);

  // Solves A x = b in place.
  void solve(std::vector<double>& b) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  std::vector<double> lu_;
  std::vector<std::size_t> perm_;
  std::size_t n_;
};

class DenseCircuit {
 public:
  // Creates `count` circuit nodes (besides ground); returns the index of the
  // first. Node indices are 1-based (0 is ground).
  std::size_t add_nodes(std::size_t count);
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }

  void add_resistor(std::size_t a, std::size_t b, double ohms);
  void add_capacitor(std::size_t a, std::size_t b, double farads);
  // Time-varying current source injecting `amps(t)` INTO node `into`.
  void add_current_source(std::size_t into, std::function<double(double)> amps);
  // Voltage source `volts(t)` behind `ohms` driving `node` (Norton form).
  void add_driven_node(std::size_t node, double ohms,
                       std::function<double(double)> volts);

  struct TransientResult {
    std::vector<double> peak_abs;   // per node (index 0 = ground, always 0)
    std::vector<double> final_v;    // node voltages at t_end
  };

  enum class Method { BackwardEuler, Trapezoidal };

  // Marches 0..t_end with fixed step dt from an all-zero initial state
  // (sources evaluated from t=0). Records per-node peak |v|.
  [[nodiscard]] TransientResult transient(double t_end, double dt,
                                          Method method = Method::BackwardEuler) const;

  // DC operating point for the given time (capacitors open).
  [[nodiscard]] std::vector<double> dc(double t) const;

 private:
  struct Res {
    std::size_t a, b;
    double g;
  };
  struct Cap {
    std::size_t a, b;
    double c;
  };
  struct Src {
    std::size_t into;
    std::function<double(double)> amps;
  };

  [[nodiscard]] std::vector<double> stamp_g() const;
  [[nodiscard]] std::vector<double> stamp_c() const;

  std::size_t nodes_ = 0;  // excludes ground
  std::vector<Res> res_;
  std::vector<Cap> caps_;
  std::vector<Src> srcs_;
};

}  // namespace nbuf::sim
