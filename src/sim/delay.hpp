// Golden step-delay analysis: transient 50% crossing times through a
// buffered tree.
//
// The third tier of the delay-fidelity ladder (Elmore bound -> moment-based
// D2M -> transient simulation), used to quantify how pessimistic the Elmore
// model the paper adopts is (its footnote 4 discusses exactly this
// tradeoff: Elmore's additivity is what makes the DP provably optimal).
//
// Each stage's driving gate is modeled as its intrinsic delay plus a
// saturated-ramp source behind the gate's output resistance; the stage's
// 50%-crossing times at its leaves are measured by backward-Euler transient
// and stage delays compose through buffer input arrival times, mirroring
// elmore::analyze.
#pragma once

#include <vector>

#include "rct/stage.hpp"

namespace nbuf::sim {

struct StepDelayOptions {
  double vdd = 1.8;              // volt — swing of the switching source
  double driver_rise = 20e-12;   // second — ramp at every driving gate
  double coupling_ratio = 0.0;   // victim's coupled cap fraction (grounded
                                 // aggressors during a timing event)
  double section_length = 100.0; // µm
  double steps_per_rise = 50.0;
  double settle_time_constants = 12.0;
};

struct SinkStepDelay {
  rct::SinkId sink;
  double delay = 0.0;  // second — source input to 50% crossing at the sink
};

struct StepDelayReport {
  std::vector<SinkStepDelay> sinks;  // indexed by SinkId
  double max_delay = 0.0;
};

// Simulated 50% delays through every stage of tree+buffers.
[[nodiscard]] StepDelayReport step_delays(const rct::RoutingTree& tree,
                                          const rct::BufferAssignment& buffers,
                                          const lib::BufferLibrary& lib,
                                          const StepDelayOptions& options = {});

}  // namespace nbuf::sim
