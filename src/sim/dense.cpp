#include "sim/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace nbuf::sim {

DenseLu::DenseLu(std::vector<double> a, std::size_t n)
    : lu_(std::move(a)), perm_(n), n_(n) {
  NBUF_EXPECTS(lu_.size() == n * n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t piv = k;
    double best = std::abs(lu_[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_[i * n + k]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) throw std::invalid_argument("singular matrix in LU");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_[k * n + j], lu_[piv * n + j]);
      std::swap(perm_[k], perm_[piv]);
    }
    const double d = lu_[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_[i * n + k] / d;
      lu_[i * n + k] = m;
      for (std::size_t j = k + 1; j < n; ++j)
        lu_[i * n + j] -= m * lu_[k * n + j];
    }
  }
}

void DenseLu::solve(std::vector<double>& b) const {
  NBUF_EXPECTS(b.size() == n_);
  std::vector<double> x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
  // Forward substitution (unit lower factor).
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_[i * n_ + j] * x[j];
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n_; ++j)
      x[ii] -= lu_[ii * n_ + j] * x[j];
    x[ii] /= lu_[ii * n_ + ii];
  }
  b = std::move(x);
}

std::size_t DenseCircuit::add_nodes(std::size_t count) {
  const std::size_t first = nodes_ + 1;
  nodes_ += count;
  return first;
}

void DenseCircuit::add_resistor(std::size_t a, std::size_t b, double ohms) {
  NBUF_EXPECTS(ohms > 0.0);
  NBUF_EXPECTS(a <= nodes_ && b <= nodes_ && a != b);
  res_.push_back({a, b, 1.0 / ohms});
}

void DenseCircuit::add_capacitor(std::size_t a, std::size_t b, double farads) {
  NBUF_EXPECTS(farads >= 0.0);
  NBUF_EXPECTS(a <= nodes_ && b <= nodes_ && a != b);
  if (farads > 0.0) caps_.push_back({a, b, farads});
}

void DenseCircuit::add_current_source(std::size_t into,
                                      std::function<double(double)> amps) {
  NBUF_EXPECTS(into >= 1 && into <= nodes_);
  srcs_.push_back({into, std::move(amps)});
}

void DenseCircuit::add_driven_node(std::size_t node, double ohms,
                                   std::function<double(double)> volts) {
  NBUF_EXPECTS(ohms > 0.0);
  add_resistor(node, 0, ohms);
  const double g = 1.0 / ohms;
  add_current_source(node,
                     [g, v = std::move(volts)](double t) { return g * v(t); });
}

std::vector<double> DenseCircuit::stamp_g() const {
  std::vector<double> g(nodes_ * nodes_, 0.0);
  auto at = [&](std::size_t i, std::size_t j) -> double& {
    return g[(i - 1) * nodes_ + (j - 1)];
  };
  for (const Res& r : res_) {
    if (r.a != 0) at(r.a, r.a) += r.g;
    if (r.b != 0) at(r.b, r.b) += r.g;
    if (r.a != 0 && r.b != 0) {
      at(r.a, r.b) -= r.g;
      at(r.b, r.a) -= r.g;
    }
  }
  return g;
}

std::vector<double> DenseCircuit::stamp_c() const {
  std::vector<double> c(nodes_ * nodes_, 0.0);
  auto at = [&](std::size_t i, std::size_t j) -> double& {
    return c[(i - 1) * nodes_ + (j - 1)];
  };
  for (const Cap& cp : caps_) {
    if (cp.a != 0) at(cp.a, cp.a) += cp.c;
    if (cp.b != 0) at(cp.b, cp.b) += cp.c;
    if (cp.a != 0 && cp.b != 0) {
      at(cp.a, cp.b) -= cp.c;
      at(cp.b, cp.a) -= cp.c;
    }
  }
  return c;
}

DenseCircuit::TransientResult DenseCircuit::transient(double t_end, double dt,
                                                      Method method) const {
  NBUF_EXPECTS(t_end > 0.0 && dt > 0.0 && dt < t_end);
  NBUF_EXPECTS(nodes_ >= 1);
  const std::size_t n = nodes_;
  const auto g = stamp_g();
  const auto c = stamp_c();

  // System matrix: BE -> G + C/h; trapezoidal -> G + 2C/h.
  const double cscale = method == Method::BackwardEuler ? 1.0 / dt : 2.0 / dt;
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n * n; ++i) a[i] = g[i] + cscale * c[i];
  const DenseLu lu(std::move(a), n);

  std::vector<double> v(n, 0.0);
  std::vector<double> i_prev(n, 0.0);  // source vector at previous step
  auto source_vec = [&](double t) {
    std::vector<double> s(n, 0.0);
    for (const Src& src : srcs_) s[src.into - 1] += src.amps(t);
    return s;
  };
  i_prev = source_vec(0.0);

  TransientResult out;
  out.peak_abs.assign(n + 1, 0.0);

  const auto steps = static_cast<std::size_t>(std::ceil(t_end / dt));
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * dt;
    std::vector<double> rhs = source_vec(t);
    if (method == Method::BackwardEuler) {
      // rhs += (C/h) v_prev
      for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) acc += c[i * n + j] * v[j];
        rhs[i] += acc / dt;
      }
    } else {
      // Trapezoidal: (G + 2C/h) v_new = i(t) + i(t_prev) + (2C/h - G) v_prev
      for (std::size_t i = 0; i < n; ++i) {
        double gc = 0.0;
        for (std::size_t j = 0; j < n; ++j)
          gc += (2.0 / dt * c[i * n + j] - g[i * n + j]) * v[j];
        rhs[i] += i_prev[i] + gc;
      }
      i_prev = source_vec(t);
    }
    lu.solve(rhs);
    v = std::move(rhs);
    for (std::size_t i = 0; i < n; ++i)
      out.peak_abs[i + 1] = std::max(out.peak_abs[i + 1], std::abs(v[i]));
  }
  out.final_v.assign(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) out.final_v[i + 1] = v[i];
  return out;
}

std::vector<double> DenseCircuit::dc(double t) const {
  NBUF_EXPECTS(nodes_ >= 1);
  const std::size_t n = nodes_;
  const DenseLu lu(stamp_g(), n);
  std::vector<double> rhs(n, 0.0);
  for (const Src& src : srcs_) rhs[src.into - 1] += src.amps(t);
  lu.solve(rhs);
  std::vector<double> out(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) out[i + 1] = rhs[i];
  return out;
}

}  // namespace nbuf::sim
