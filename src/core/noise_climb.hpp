// Internal: the bottom-up wire climb shared by Algorithms 1 and 2.
//
// Climbing a wire from its bottom node toward its parent, a buffer is
// inserted whenever deferring it past the wire's top would violate noise
// (Algorithm 1, Step 3); each forced buffer goes at its maximal distance up
// the wire (Theorem 1), which is what makes the greedy optimal.
#pragma once

#include <cmath>

#include "core/plan.hpp"
#include "core/theory.hpp"
#include "rct/tree.hpp"
#include "util/check.hpp"

namespace nbuf::core::detail {

// Fraction of a wire's length reserved at its very top so that fork buffers
// ("immediately following v", Algorithm 2 Step 6) always fit strictly above
// any forced Theorem-1 placement on the same wire.
inline constexpr double kTopGapFrac = 1e-6;

// Relative backoff applied to Theorem-1 maximal placements. At the exact
// critical length the noise EQUALS the margin; evaluating the same sums in a
// different order can then round a hair above it. Backing off by one part in
// 10^6 (sub-µV at a 0.8 V margin) keeps every forced placement strictly
// feasible under re-evaluation without affecting buffer counts.
inline constexpr double kPlacementBackoff = 1e-6;

// Bottom-up optimization state at a tree node (below its parent wire).
struct ClimbState {
  double current = 0.0;      // A — downstream current I(v), eq. 7
  double noise_slack = 0.0;  // V — NS(v), eq. 12
  std::size_t buffers = 0;
  const PlanCell* plan = nullptr;
};

// Climbs the parent wire of `below` (electrical values `w`), inserting
// forced buffers of resistance r_b / margin nm_b (library id `bid`) into
// `arena`. Returns the state at the wire's top. The returned state always
// satisfies NS >= r_b * I (a buffer placed right at the top is feasible).
inline ClimbState climb_wire(const rct::Wire& w, rct::NodeId below,
                             ClimbState s, double r_b, double nm_b,
                             lib::BufferId bid, PlanArena& arena) {
  NBUF_ASSERT(s.noise_slack >= r_b * s.current - 1e-18);
  // The Devgan metric is an upper bound only for finite, nonnegative
  // electricals (PAPER.md Thm 2); a NaN here would silently poison every
  // comparison below, so reject non-physical wires loudly.
  NBUF_REQUIRE_CTX(std::isfinite(w.resistance) && w.resistance >= 0.0 &&
                       std::isfinite(w.coupling_current) &&
                       w.coupling_current >= 0.0 && std::isfinite(w.length),
                   util::ctx("node", below.value(), "R", w.resistance, "I",
                             w.coupling_current, "len", w.length));
  if (w.length <= 0.0 || (w.resistance <= 0.0 && w.coupling_current <= 0.0)) {
    return s;  // zero-length binarization dummy: electrically transparent
  }
  const double r_per = w.resistance / w.length;
  const double i_per = w.coupling_current / w.length;
  const double top_gap = kTopGapFrac * w.length;

  double base = 0.0;  // µm of this wire already below us
  while (true) {
    const double remaining = w.length - base;
    // Deferral test (Algorithm 1, Step 3): would a buffer at the wire's top
    // still satisfy noise over everything below it?
    const double top_noise = uniform_wire_noise(r_b, r_per, i_per, remaining,
                                                s.current);
    if (top_noise <= s.noise_slack) {
      s.noise_slack -= r_per * remaining *
                       (i_per * remaining / 2.0 + s.current);
      s.current += i_per * remaining;
      // Climb monotonicity (eq. 12): the wire charge only ever CONSUMES
      // noise slack, and the top state must still admit a buffer.
      NBUF_ASSERT_CTX(s.noise_slack >= r_b * s.current - 1e-18,
                      util::ctx("NS", s.noise_slack, "R_b*I",
                                r_b * s.current));
      return s;
    }
    // Forced insertion at maximal distance above the current bottom
    // (Theorem 1). The climb invariant guarantees the side condition.
    const auto x_opt =
        critical_length(r_b, r_per, i_per, s.noise_slack, s.current);
    NBUF_ASSERT_MSG(x_opt.has_value(), "climb invariant NS >= R_b*I broken");
    // Theorem 1 length bounds: the maximal placement is nonnegative and —
    // since the deferral test above failed — inside the remaining wire (a
    // critical length beyond it would have made the top feasible). The
    // relative slop covers sqrt rounding in the quadratic solve.
    NBUF_ASSERT_CTX(*x_opt >= 0.0 && *x_opt <= remaining * (1.0 + 1e-9),
                    util::ctx("x_opt", *x_opt, "remaining", remaining));
    // Keep the split strictly inside the wire and strictly below the
    // reserved top gap; shrinking x only reduces noise, so feasibility holds.
    double x = std::min(*x_opt * (1.0 - kPlacementBackoff),
                        remaining - 2.0 * top_gap);
    NBUF_ASSERT_MSG(x > -1e-9, "no room left on wire for a forced buffer");
    if (x <= 0.0) {
      // Slack exactly exhausted at the current bottom: the buffer must sit
      // at the bottom node itself (only possible between wires, i.e. at an
      // internal node — base == 0).
      NBUF_ASSERT_MSG(base == 0.0, "back-to-back forced buffers");
      s.plan = arena.buffer(s.plan, PlannedBuffer{below, 0.0, bid});
    } else {
      s.plan = arena.buffer(s.plan, PlannedBuffer{below, base + x, bid});
      base += x;
    }
    ++s.buffers;
    s.current = 0.0;
    s.noise_slack = nm_b;
  }
}

}  // namespace nbuf::core::detail
