// Algorithm 2: optimal noise avoidance for multi-sink trees
// (Section III-C, Fig. 9).
//
// Bottom-up candidate propagation in the spirit of Van Ginneken: a candidate
// at node v is (I, NS, M) — downstream current, noise slack, and the buffer
// placements chosen so far. Wires are climbed exactly as in Algorithm 1
// (forced buffers at Theorem-1 maximal distance). At a two-child merge the
// combined candidate is (I_l + I_r, min(NS_l, NS_r)); when even a buffer
// placed right above the merge could not satisfy that combination
// (R_b (I_l + I_r) > min(NS_l, NS_r), Step 5), the merge forks into two
// candidates — buffer at the top of the left branch, or of the right branch
// — both of which the climb invariant guarantees are feasible. Inferior
// candidates (I no better, NS no better, and — a strengthening over the
// paper that is never less optimal — buffer count no better) are pruned.
//
// Solves Problem 1: minimum buffers such that no noise violation remains.
#pragma once

#include "core/alg1_single_sink.hpp"

namespace nbuf::core {

struct Alg2Stats {
  std::size_t max_list_size = 0;   // largest candidate list at any node
  std::size_t forks = 0;           // merges that required a branch buffer
  std::size_t candidates_created = 0;
};

struct MultiSinkResult {
  rct::RoutingTree tree;
  rct::BufferAssignment buffers;
  std::size_t buffer_count = 0;
  Alg2Stats stats;
};

// Requires a binary tree (call tree.binarize() first if needed).
[[nodiscard]] MultiSinkResult avoid_noise_multi_sink(
    const rct::RoutingTree& input, const lib::BufferLibrary& lib,
    const NoiseAvoidanceOptions& options = {});

}  // namespace nbuf::core
