// Candidate solution bookkeeping shared by Algorithms 2 and 3.
//
// Dynamic-programming candidates must each remember "the current solution
// for the subtree" (the paper's M component) without copying buffer lists on
// every merge. Following the paper's footnote 7, solutions are stored as an
// immutable DAG of arena-allocated cells: a Buffer cell prepends one
// placement, a Merge cell joins the solutions of two branches. The final
// placement list is recovered by one DFS over the chosen candidate's DAG.
//
// A placement is (node, dist_above, type): a buffer `dist_above` µm up the
// parent wire of `node` (0 = at the node itself — the only form Algorithm 3
// emits, since it inserts at existing legal sites).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "lib/buffer.hpp"
#include "rct/assignment.hpp"
#include "rct/tree.hpp"

namespace nbuf::core {

struct PlannedBuffer {
  rct::NodeId node;
  double dist_above = 0.0;  // µm above `node` on its parent wire
  lib::BufferId type;
};

// A wire-width choice (simultaneous wire sizing, Lillis et al. [18]):
// the parent wire of `node` is realized at `width` (an index into a
// WireWidthLibrary).
struct PlannedWire {
  rct::NodeId node;
  std::size_t width = 0;
};

class PlanArena;

// Index-based handle to a PlanCell of one PlanArena: 0 is the empty
// solution, any other value is cell index + 1. Packs a candidate's plan
// into a 4-byte lane of the fast kernel's SoA candidate blocks
// (core/soa.hpp) where a pointer would double the lane width; refs and
// pointers address the same cells, so a ref converts to a pointer (and
// back to the shared plan_compare/collect machinery) via PlanArena::cell.
using PlanRef = std::uint32_t;
inline constexpr PlanRef kNullPlan = 0;

// One immutable cell of a candidate's solution DAG.
struct PlanCell {
  enum class Kind { Buffer, Wire, Merge };
  Kind kind = Kind::Buffer;
  PlannedBuffer placement;       // valid for Buffer cells
  PlannedWire wire;              // valid for Wire cells
  const PlanCell* a = nullptr;   // previous solution / left branch
  const PlanCell* b = nullptr;   // right branch (Merge only)
};

// Owns every PlanCell of one optimization run. Candidates hold raw pointers
// into the arena, which must outlive them.
class PlanArena {
 public:
  // Solution `prev` extended with one placement.
  const PlanCell* buffer(const PlanCell* prev, PlannedBuffer placement);
  // Solution `prev` extended with one wire-width choice.
  const PlanCell* wire(const PlanCell* prev, PlannedWire choice);
  // Union of two branch solutions (either may be null).
  const PlanCell* merge(const PlanCell* left, const PlanCell* right);

  // The PlanRef (index) forms of the three builders, for callers that store
  // plans in 32-bit lanes. merge_ref shares the pointer form's shortcut: a
  // one-sided merge returns the other side's existing ref, allocating
  // nothing.
  PlanRef buffer_ref(PlanRef prev, PlannedBuffer placement);
  PlanRef wire_ref(PlanRef prev, PlannedWire choice);
  PlanRef merge_ref(PlanRef left, PlanRef right);

  // The cell a ref addresses; nullptr for kNullPlan.
  [[nodiscard]] const PlanCell* cell(PlanRef ref) const {
    return ref == kNullPlan ? nullptr : &cells_[ref - 1];
  }

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

 private:
  std::deque<PlanCell> cells_;  // deque: stable addresses across growth
};

// Recycles vector buffers within one optimization run, the same ownership
// shape as PlanArena: the DP creates and drops thousands of short-lived
// candidate lists, and reusing their heap blocks removes the allocator from
// the hot path. acquire() hands back a cleared vector with whatever
// capacity its previous life grew; release() returns a buffer to the pool
// (no-op for buffers that never allocated).
template <class T>
class VectorPool {
 public:
  [[nodiscard]] std::vector<T> acquire() {
    if (free_.empty()) return {};
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    ++reuses_;
    return v;
  }

  void release(std::vector<T>&& v) {
    if (v.capacity() == 0) return;
    free_.push_back(std::move(v));
  }

  // Buffers handed out that carried reusable capacity.
  [[nodiscard]] std::size_t reuses() const noexcept { return reuses_; }

 private:
  std::vector<std::vector<T>> free_;
  std::size_t reuses_ = 0;
};

// All placements reachable from `plan` (null = empty solution).
[[nodiscard]] std::vector<PlannedBuffer> collect(const PlanCell* plan);

// All wire-width choices reachable from `plan`.
[[nodiscard]] std::vector<PlannedWire> collect_wires(const PlanCell* plan);

// Number of placements reachable from `plan`.
[[nodiscard]] std::size_t plan_size(const PlanCell* plan);

// Materializes a plan onto `tree`: splits wires where dist_above > 0
// (grouping multiple buffers per wire) and fills `out` with the final
// node -> buffer assignment. When `allow_any_site` is set (Algorithms 1/2,
// which place buffers at arbitrary positions), target nodes are marked as
// legal buffer sites first; Algorithm 3 leaves it false so that placements
// on illegal sites fail validation.
void apply_plan(rct::RoutingTree& tree, const std::vector<PlannedBuffer>& plan,
                rct::BufferAssignment& out, bool allow_any_site = false);

}  // namespace nbuf::core
