// The fast Van Ginneken kernel (default; see VgKernel::Fast).
//
// Three structural observations make the seed kernel's per-prune std::sort,
// per-candidate wire updates, and per-node deep copies unnecessary:
//
//  1. Sort invariant. Every prune leaves its list sorted by (load asc,
//     slack desc) and — with dominance pruning on — strictly ascending in
//     both load and slack (a Pareto staircase). An unsized wire extension
//     maps every candidate with the same monotone affine update, so the
//     sorted order survives; the Van Ginneken two-list merge emits loads in
//     ascending order by construction; and buffer insertion appends a small
//     sorted tail that one stable merge pass folds back in. Pruning is
//     therefore a single linear scan (dead-candidate removal, dominance
//     filter, and compaction fused); std::sort runs only when the order is
//     genuinely broken — the wire-sizing fork path, where one candidate
//     forks into one variant per width (Li & Shi, PAPERS.md).
//
//  2. Lazy wire offsets. An unsized wire extension is the same affine map
//     for every candidate of every one of the 2*(max_buffers+1) lists of a
//     node. extend_wire records the wire in O(1) per node; the update is
//     materialized ("flushed") fused into the very next prune scan — the
//     same arithmetic expressions in the same order as the eager kernel, so
//     results stay bit-identical, but the separate write pass and the sort
//     disappear.
//
//  3. Read views instead of snapshots. Buffer insertion must read only
//     pre-insertion candidates (one buffer per node). The seed deep-copies
//     all lists; since insertions only ever append, remembering each
//     bucket's pre-insertion size and scanning that prefix is equivalent
//     and copies nothing.
//
// Candidate-list buffers are recycled through a per-run core::VectorPool
// next to the PlanArena, so steady-state DP makes no allocator calls.
//
// Bit-identity with the reference kernel (same pruning decisions, same
// tie-break order, same legacy VgStats counters) is pinned by
// tests/test_vg_kernel.cpp; the speedup is measured by
// bench/figI_kernel_speedup.
#include <algorithm>
#include <iterator>
#include <limits>

#include "core/vg_kernel.hpp"
#include "elmore/slew.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nbuf::core::detail {

namespace {

class FastVgRun {
 public:
  FastVgRun(const rct::RoutingTree& tree, const lib::BufferLibrary& lib,
            const VgOptions& opt)
      : tree_(tree),
        lib_(lib),
        opt_(opt),
        sizing_(!opt.wire_widths.empty()),
        type_order_(TypeOrder::make(lib)) {
    for (auto& sizes : view_sizes_) sizes.resize(opt_.max_buffers + 1, 0);
    min_cost_ = 1;
    if (!opt_.buffer_costs.empty())
      min_cost_ = *std::min_element(opt_.buffer_costs.begin(),
                                    opt_.buffer_costs.end());
    stats_.lib_types = lib_.size();
  }

  VgResult run();

 private:
  // Node state: materialized candidate lists plus the wires whose affine
  // update has been recorded but not yet applied (in root-ward order).
  struct Lists {
    NodeLists node;
    std::vector<const rct::Wire*> pending;
  };

  Lists process(rct::NodeId v);
  void flush(Lists& lists);
  void extend_wire(Lists& lists, rct::NodeId child);
  void insert_buffers(Lists& lists, rct::NodeId v);
  void insert_buffers_naive(Lists& lists, rct::NodeId v);
  void insert_buffers_best_pred(Lists& lists, rct::NodeId v);
  Lists merge(Lists l, Lists r);

  void apply_wire_and_prune(CandList& list, const rct::Wire& w);
  void prune(CandList& list, bool known_sorted);
  void merge_runs(CandList& list);
  void merge_tail_and_prune(CandList& list, std::size_t prefix);
  void release_lists(Lists& lists);

  void note_created(std::size_t n) { stats_.candidates_generated += n; }
  [[nodiscard]] double* timed(double util::VgStats::*field) {
    return opt_.collect_stats ? &(stats_.*field) : nullptr;
  }

  const rct::RoutingTree& tree_;
  const lib::BufferLibrary& lib_;
  const VgOptions& opt_;
  const bool sizing_;
  PlanArena arena_;
  VectorPool<VgCand> pool_;
  CandList scratch_;                      // merge_runs / merge_tail scratch
  std::vector<std::size_t> run_bounds_;   // sorted-run starts in merge()
  // Pre-insertion bucket sizes of the node currently in insert_buffers:
  // the read views that replace the seed kernel's NodeLists deep copy.
  std::array<std::vector<std::size_t>, 2> view_sizes_;
  // Li–Shi best-predecessor machinery: the resistance-descending type walk
  // order, the per-bucket hull structure, and each type's chosen
  // predecessor for the bucket currently being processed.
  TypeOrder type_order_;
  BestPredecessors bp_;
  std::vector<BestPredecessors::Choice> chosen_;
  std::size_t min_cost_ = 1;
  util::VgStats stats_;
};

// Pareto pruning on (load, slack) only — paper Step 7 — with dead-candidate
// removal (NS < 0) fused into the same compaction scan. `known_sorted`
// callers maintained the sort invariant, so no sort runs.
void FastVgRun::prune(CandList& list, bool known_sorted) {
  NBUF_TRACE_DETAIL_TAGGED("vg.prune", list.size());
  ++stats_.prune_calls;
  if (known_sorted) {
    ++stats_.prune_sorts_skipped;
  } else {
    std::sort(list.begin(), list.end(), cand_less);  // nbuf-lint: allow(sort)
    ++stats_.prune_sorts;
  }
  const bool noise = opt_.noise_constraints;
  const bool pareto = opt_.prune_candidates;
  std::size_t out = 0;
  double best_slack = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < list.size(); ++i) {
    const VgCand& c = list[i];
    if (noise && c.noise_slack < 0.0) {
      ++stats_.pruned_infeasible;
      continue;  // dead: no future gate can drive this candidate
    }
    if (pareto) {
      if (c.slack <= best_slack) {
        ++stats_.pruned_inferior;  // inferior: >= load, <= slack
        continue;
      }
      best_slack = c.slack;
    }
    if (out != i) list[out] = c;
    ++out;
  }
  list.resize(out);
  stats_.peak_list_size = std::max(stats_.peak_list_size, list.size());
  if (verify_lists_enabled(opt_)) verify_cand_list(list, opt_);
}

// Collapses a concatenation of sorted runs (starts in run_bounds_) into one
// sorted list by cascaded pairwise merges — O(n log runs), no sort. Ties
// resolve to the earlier run, i.e. the smaller left-bucket index.
void FastVgRun::merge_runs(CandList& list) {
  while (run_bounds_.size() > 1) {
    scratch_.clear();
    scratch_.reserve(list.size());
    std::size_t w = 0;  // rewrite run starts in place for the next sweep
    for (std::size_t r = 0; r < run_bounds_.size(); r += 2) {
      const auto lo = static_cast<std::ptrdiff_t>(run_bounds_[r]);
      const auto mid = static_cast<std::ptrdiff_t>(
          r + 1 < run_bounds_.size() ? run_bounds_[r + 1] : list.size());
      const auto hi = static_cast<std::ptrdiff_t>(
          r + 2 < run_bounds_.size() ? run_bounds_[r + 2] : list.size());
      run_bounds_[w++] = scratch_.size();
      std::merge(list.begin() + lo, list.begin() + mid, list.begin() + mid,
                 list.begin() + hi, std::back_inserter(scratch_), cand_less);
    }
    run_bounds_.resize(w);
    list.swap(scratch_);
  }
}

// Materializes one lazy wire offset: the exact per-candidate expressions of
// the reference kernel, with the sort-invariant check riding along (the map
// preserves load order; a violation is only possible through floating-point
// rounding collisions, and then the prune falls back to sorting).
void FastVgRun::apply_wire_and_prune(CandList& list, const rct::Wire& w) {
  ++stats_.offset_flushes;
  bool sorted = true;
  const VgCand* prev = nullptr;
  for (VgCand& c : list) {
    const double wire_delay = w.resistance * (w.capacitance / 2.0 + c.load);
    c.slack -= wire_delay;
    c.dhat += wire_delay;
    c.load += w.capacitance;
    c.noise_slack -= w.resistance * (w.coupling_current / 2.0 + c.current);
    c.current += w.coupling_current;
    if (prev != nullptr && cand_less(c, *prev)) sorted = false;
    prev = &c;
  }
  prune(list, sorted);
}

// Applies every pending wire, oldest first, pruning after each exactly as
// the reference kernel prunes after each extend_wire (under noise
// constraints the intermediate prunes are semantically load-bearing: a
// dominated candidate may only be discarded while its dominator is alive).
void FastVgRun::flush(Lists& lists) {
  if (lists.pending.empty()) return;
  NBUF_TRACE_DETAIL_TAGGED("vg.wire_offset", lists.pending.size());
  const PhaseTimer timer(timed(&util::VgStats::wire_seconds));
  for (const rct::Wire* w : lists.pending) {
    for (auto& phase_lists : lists.node.by_phase) {
      for (CandList& list : phase_lists) {
        if (list.empty()) continue;
        apply_wire_and_prune(list, *w);
      }
    }
  }
  lists.pending.clear();
}

void FastVgRun::extend_wire(Lists& lists, rct::NodeId child) {
  const rct::Wire& w = tree_.node(child).parent_wire;
  if (w.length <= 0.0 && w.resistance <= 0.0 && w.capacitance <= 0.0)
    return;  // binarization dummy
  if (!sizing_) {
    // Lazy: O(1) per node. Materialized fused with the next prune.
    lists.pending.push_back(&w);
    return;
  }
  // Simultaneous wire sizing: every candidate forks into one variant per
  // width (Lillis). The fork interleaves loads, so this is the one path
  // where the sort invariant genuinely breaks and prune must sort.
  NBUF_ASSERT(lists.pending.empty());
  NBUF_TRACE_DETAIL_TAGGED("vg.wire", lists.node.total_size());
  const PhaseTimer timer(timed(&util::VgStats::wire_seconds));
  for (auto& phase_lists : lists.node.by_phase) {
    for (CandList& list : phase_lists) {
      if (list.empty()) continue;
      CandList expanded = pool_.acquire();
      expanded.reserve(list.size() * opt_.wire_widths.size());
      for (const VgCand& c : list) {
        for (std::size_t wi = 0; wi < opt_.wire_widths.size(); ++wi) {
          const lib::WireWidth& ww = opt_.wire_widths.at(wi);
          const double res = w.resistance * ww.res_scale;
          const double cap = w.capacitance * ww.cap_scale;
          const double cur = w.coupling_current * ww.coupling_scale;
          VgCand v = c;
          const double wire_delay = res * (cap / 2.0 + v.load);
          v.slack -= wire_delay;
          v.dhat += wire_delay;
          v.load += cap;
          v.noise_slack -= res * (cur / 2.0 + v.current);
          v.current += cur;
          if (wi != 0) v.plan = arena_.wire(v.plan, PlannedWire{child, wi});
          expanded.push_back(v);
          note_created(1);
        }
      }
      pool_.release(std::move(list));
      list = std::move(expanded);
      prune(list, /*known_sorted=*/false);
    }
  }
}

// Folds the freshly appended buffer candidates (a small sorted tail) back
// into the sorted prefix with one stable merge — the appended tail is the
// only part that is out of order, so no full sort is needed.
void FastVgRun::merge_tail_and_prune(CandList& list, std::size_t prefix) {
  const auto tail = list.begin() + static_cast<std::ptrdiff_t>(prefix);
  std::sort(tail, list.end(), cand_less);  // nbuf-lint: allow(sort)
  scratch_.clear();
  scratch_.reserve(list.size());
  std::merge(list.begin(), tail, tail, list.end(),
             std::back_inserter(scratch_), cand_less);
  list.swap(scratch_);
  prune(list, /*known_sorted=*/true);
}

void FastVgRun::insert_buffers(Lists& lists, rct::NodeId v) {
  flush(lists);
  // Offset-flush invariant: buffer insertion must read fully materialized
  // candidates — a pending wire here would mean the views below are stale.
  NBUF_ASSERT_MSG(lists.pending.empty(),
                  "lazy wire offsets must be flushed before insert_buffers");
  NBUF_TRACE_DETAIL_TAGGED("vg.buffer", lists.node.total_size());
  const PhaseTimer timer(timed(&util::VgStats::buffer_seconds));
  // Read views: every type considers only unbuffered-at-v candidates,
  // enforcing one buffer per node (Step 5). Appends only ever push beyond
  // each bucket's pre-insertion size, so scanning that prefix reads exactly
  // what the seed kernel's full NodeLists snapshot held — without the copy.
  for (int phase = 0; phase < 2; ++phase) {
    for (std::size_t k = 0; k <= opt_.max_buffers; ++k) {
      const std::size_t n = lists.node.by_phase[phase][k].size();
      view_sizes_[phase][k] = n;
      stats_.snapshot_cands_avoided += n;
    }
  }
  if (opt_.prune_candidates) {
    insert_buffers_best_pred(lists, v);
  } else {
    // Ablation mode: without dominance pruning the lists are not Pareto
    // staircases, so the hull structure does not apply.
    insert_buffers_naive(lists, v);
  }
  const std::size_t bucket_count = opt_.max_buffers + 1;
  for (int phase = 0; phase < 2; ++phase) {
    for (std::size_t k = 0; k < bucket_count; ++k) {
      CandList& list = lists.node.by_phase[phase][k];
      const std::size_t prefix = view_sizes_[phase][k];
      if (list.size() == prefix) continue;  // untouched: still Pareto-sorted
      merge_tail_and_prune(list, prefix);
    }
  }
}

// The seed scan: every type reads every candidate of every bucket, O(b·m)
// per bucket. Kept for the prune_candidates=false ablation only.
void FastVgRun::insert_buffers_naive(Lists& lists, rct::NodeId v) {
  const std::size_t bucket_count = opt_.max_buffers + 1;
  for (lib::BufferId bid : lib_.ids()) {
    const lib::BufferType& b = lib_.at(bid);
    // Cost of inserting this type (Lillis power-function generalization;
    // defaults to 1 = plain counting).
    const std::size_t cost =
        opt_.buffer_costs.empty() ? 1 : opt_.buffer_costs[bid.value()];
    for (int in_phase = 0; in_phase < 2; ++in_phase) {
      const int out_phase = b.inverting ? 1 - in_phase : in_phase;
      const auto& buckets = lists.node.by_phase[in_phase];
      for (std::size_t k = 0; k + cost < bucket_count; ++k) {
        // Best resulting slack over the count-k view (Fig. 11 Step 5).
        const CandList& view = buckets[k];
        const std::size_t view_n = view_sizes_[in_phase][k];
        const VgCand* best = nullptr;
        double best_q = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < view_n; ++i) {
          const VgCand& c = view[i];
          if (opt_.noise_constraints &&
              b.resistance * c.current > c.noise_slack)
            continue;  // would violate noise: never create this candidate
          if (elmore::kSlewFactor * (b.resistance * c.load + c.dhat) >
              opt_.max_slew)
            continue;  // the buffer's stage would see too slow an edge
          const double q =
              c.slack - b.intrinsic_delay - b.resistance * c.load;
          if (q > best_q) {
            best_q = q;
            best = &c;
          }
        }
        if (best == nullptr) continue;
        VgCand nc;
        nc.load = b.input_cap;
        nc.slack = best_q;
        nc.current = 0.0;
        nc.noise_slack = b.noise_margin;
        nc.dhat = 0.0;  // restoring gate: a fresh stage begins
        nc.plan = arena_.buffer(best->plan, PlannedBuffer{v, 0.0, bid});
        lists.node.by_phase[out_phase][k + cost].push_back(nc);
        note_created(1);
      }
    }
  }
}

// Li–Shi insertion (the default): bucket-major so each bucket's hull
// structure is built once and every type's best predecessor comes from a
// monotone walk over it — O(m + b) per bucket instead of the naive O(b·m).
// New candidates are buffered per type and appended in library-id order:
// the reference kernel emits types in that order and the tail sort is not
// stable, so the append order is part of the bit-identity contract.
void FastVgRun::insert_buffers_best_pred(Lists& lists, rct::NodeId v) {
  const std::size_t bucket_count = opt_.max_buffers + 1;
  const std::size_t type_count = lib_.size();
  for (int in_phase = 0; in_phase < 2; ++in_phase) {
    auto& buckets = lists.node.by_phase[in_phase];
    for (std::size_t k = 0; k + min_cost_ < bucket_count; ++k) {
      const std::size_t view_n = view_sizes_[in_phase][k];
      if (view_n == 0) continue;
      bp_.prepare(buckets[k].data(), view_n, opt_, lib_, type_order_);
      ++stats_.bp_prune_calls;
      stats_.bp_candidates_killed += bp_.killed();
      chosen_.assign(type_count, {});
      for (std::size_t pos = 0; pos < type_count; ++pos) {
        const lib::BufferId bid = type_order_.ids[pos];
        const std::size_t cost =
            opt_.buffer_costs.empty() ? 1 : opt_.buffer_costs[bid.value()];
        if (k + cost >= bucket_count) continue;
        chosen_[bid.value()] = bp_.select(lib_.at(bid), pos);
      }
      for (std::size_t t = 0; t < type_count; ++t) {
        const BestPredecessors::Choice& ch = chosen_[t];
        if (ch.cand == nullptr) continue;
        const lib::BufferId bid{
            static_cast<lib::BufferId::underlying_type>(t)};
        const lib::BufferType& b = lib_.at(bid);
        const std::size_t cost =
            opt_.buffer_costs.empty() ? 1 : opt_.buffer_costs[t];
        const int out_phase = b.inverting ? 1 - in_phase : in_phase;
        note_created(1);
        // Dominated at birth: the target bucket's pre-insertion staircase
        // (its read view — exactly what the reference kernel snapshots)
        // guarantees the next merge_tail_and_prune would delete this
        // candidate, so book the generate+prune pair and skip the arena
        // node, the append, and the merge churn. The reference kernel
        // applies the same predicate against the same view, keeping the
        // kernels bit-identical.
        CandList& target = lists.node.by_phase[out_phase][k + cost];
        if (dominated_by_staircase(target.data(),
                                   view_sizes_[out_phase][k + cost],
                                   b.input_cap, ch.q)) {
          ++stats_.pruned_inferior;
          continue;
        }
        VgCand nc;
        nc.load = b.input_cap;
        nc.slack = ch.q;
        nc.current = 0.0;
        nc.noise_slack = b.noise_margin;
        nc.dhat = 0.0;  // restoring gate: a fresh stage begins
        nc.plan = arena_.buffer(ch.cand->plan, PlannedBuffer{v, 0.0, bid});
        target.push_back(nc);
      }
    }
  }
}

void FastVgRun::release_lists(Lists& lists) {
  for (auto& phase_lists : lists.node.by_phase)
    for (CandList& list : phase_lists) pool_.release(std::move(list));
}

FastVgRun::Lists FastVgRun::merge(Lists l, Lists r) {
  flush(l);
  flush(r);
  NBUF_ASSERT_MSG(l.pending.empty() && r.pending.empty(),
                  "lazy wire offsets must be flushed before merge");
  NBUF_TRACE_DETAIL_TAGGED("vg.merge",
                           l.node.total_size() + r.node.total_size());
  const PhaseTimer timer(timed(&util::VgStats::merge_seconds));
  const std::size_t kmax = opt_.max_buffers;
  Lists out;
  for (auto& pl : out.node.by_phase) pl.resize(kmax + 1);
  // Output-bucket-major so all (kl, kr) contributions to one bucket are
  // consecutive: each contribution is one sorted run (the Van Ginneken
  // linear merge emits loads in ascending order), and the runs fold back
  // into one sorted list without a sort.
  for (int phase = 0; phase < 2; ++phase) {
    for (std::size_t ks = 0; ks <= kmax; ++ks) {
      CandList& dst = out.node.by_phase[phase][ks];
      run_bounds_.clear();
      for (std::size_t kl = 0; kl <= ks; ++kl) {
        const CandList& a = l.node.by_phase[phase][kl];
        if (a.empty()) continue;
        const CandList& b = r.node.by_phase[phase][ks - kl];
        if (b.empty()) continue;
        if (dst.capacity() == 0) dst = pool_.acquire();
        run_bounds_.push_back(dst.size());
        // Van Ginneken linear merge: lists are sorted by load and slack
        // ascending; the side whose slack binds advances.
        std::size_t i = 0, j = 0;
        while (i < a.size() && j < b.size()) {
          VgCand m;
          m.load = a[i].load + b[j].load;
          m.slack = std::min(a[i].slack, b[j].slack);
          m.current = a[i].current + b[j].current;
          m.noise_slack = std::min(a[i].noise_slack, b[j].noise_slack);
          m.dhat = std::max(a[i].dhat, b[j].dhat);
          m.plan = arena_.merge(a[i].plan, b[j].plan);
          dst.push_back(m);
          note_created(1);
          ++stats_.merged;
          if (a[i].slack < b[j].slack) {
            ++i;
          } else if (b[j].slack < a[i].slack) {
            ++j;
          } else {
            ++i;
            ++j;
          }
        }
      }
      if (dst.empty()) continue;
      merge_runs(dst);
      // The runs are sorted by construction up to floating-point rounding
      // collisions (an equal-load pair inside a run arrives slack-ascending,
      // the reverse of the prune order); verify instead of assuming so the
      // rare collision falls back to the sorting path bit-identically.
      prune(dst, std::is_sorted(dst.begin(), dst.end(), cand_less));
    }
  }
  release_lists(l);
  release_lists(r);
  return out;
}

FastVgRun::Lists FastVgRun::process(rct::NodeId v) {
  const rct::Node& n = tree_.node(v);

  if (n.kind == rct::NodeKind::Sink) {
    Lists lists;
    for (auto& pl : lists.node.by_phase) pl.resize(opt_.max_buffers + 1);
    const rct::SinkInfo& si = tree_.sink(n.sink);
    VgCand c;
    c.load = si.cap;
    c.slack = si.required_arrival;
    c.current = 0.0;
    c.noise_slack = si.noise_margin;
    CandList& seedlist =
        lists.node.by_phase[si.require_inverted ? 1 : 0][0];
    seedlist = pool_.acquire();
    seedlist.push_back(c);
    note_created(1);
    return lists;
  }

  NBUF_EXPECTS_MSG(n.children.size() <= 2,
                   "Van Ginneken DP needs a binary tree");
  NBUF_EXPECTS_MSG(!n.children.empty(), "internal node without children");
  // Children lists are built recursively and climbed through their wires.
  Lists acc = process(n.children.front());
  extend_wire(acc, n.children.front());
  if (n.children.size() == 2) {
    Lists rightl = process(n.children.back());
    extend_wire(rightl, n.children.back());
    acc = merge(std::move(acc), std::move(rightl));
  }
  if (n.kind == rct::NodeKind::Internal && n.buffer_allowed)
    insert_buffers(acc, v);
  return acc;
}

VgResult FastVgRun::run() {
  Lists at_source = process(tree_.source());
  // The source keeps no pending wires in the reference kernel; flush so the
  // driver fold reads materialized, pruned lists.
  flush(at_source);
  NBUF_ASSERT_MSG(at_source.pending.empty(),
                  "lazy wire offsets must be flushed before the driver fold");
  stats_.pool_reuses = pool_.reuses();
  return finalize(at_source.node, tree_, opt_, stats_);
}

}  // namespace

TypeOrder TypeOrder::make(const lib::BufferLibrary& lib) {
  TypeOrder order;
  order.ids = lib.ids();
  // Resistance descending; stable so equal-R types keep library-id order
  // (their feasibility predicates and hull walks are then interchangeable).
  std::stable_sort(order.ids.begin(), order.ids.end(),
                   [&lib](lib::BufferId a, lib::BufferId b) {
                     return lib.at(a).resistance > lib.at(b).resistance;
                   });
  return order;
}

void BestPredecessors::prepare(const VgCand* cands, std::size_t n,
                               const VgOptions& opt,
                               const lib::BufferLibrary& lib,
                               const TypeOrder& order) {
  cands_ = cands;
  hull_.clear();
  groups_.clear();
  active_ = 0;
  killed_ = 0;
  const std::size_t m = order.ids.size();
  const bool noise = opt.noise_constraints;
  const bool slew = opt.max_slew < std::numeric_limits<double>::infinity();
  // Feasibility of inserting the type at walk position `pos` on top of `c`,
  // with the kernels' exact threshold comparisons (never rearranged: the
  // binary search must agree bit-for-bit with the naive scan's skips).
  const auto feasible = [&](const VgCand& c, std::size_t pos) {
    const double r = lib.at(order.ids[pos]).resistance;
    if (noise && r * c.current > c.noise_slack) return false;
    return !(elmore::kSlewFactor * (r * c.load + c.dhat) > opt.max_slew);
  };
  tmin_.assign(n, 0);
  if (noise || slew) {
    for (std::size_t i = 0; i < n; ++i) {
      const VgCand& c = cands[i];
      if (feasible(c, 0)) continue;  // the common case: tmin stays 0
      // Both thresholds are products monotone in R under IEEE rounding, so
      // along the R-descending walk order the feasible types form a suffix:
      // binary-search its first position (m = feasible for no type).
      std::size_t lo = 1, hi = m;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (feasible(c, mid)) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      tmin_[i] = lo;
    }
  }
  // Counting-bucket the candidates by first feasible type. Each group is a
  // subsequence of the bucket's Pareto staircase — itself a staircase — so
  // iterating candidates in index order fills every group in index order.
  counts_.assign(m + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts_[tmin_[i]];
  std::size_t offset = 0;
  for (std::size_t t = 0; t <= m; ++t) {
    const std::size_t c = counts_[t];
    counts_[t] = offset;
    offset += c;
  }
  sorted_.resize(n);
  for (std::size_t i = 0; i < n; ++i) sorted_[counts_[tmin_[i]]++] = i;
  // counts_[t] now holds the END of group t's slice; group t's candidates
  // sit in sorted_[counts_[t-1], counts_[t]). Upper-hull each nonempty
  // group (t == m means feasible for no type: those candidates are dead).
  std::size_t begin = 0;
  for (std::size_t t = 0; t < m; ++t) {
    const std::size_t end = counts_[t];
    if (end == begin) continue;
    Group grp;
    grp.first_type = t;
    grp.begin = hull_.size();
    stack_.clear();
    for (std::size_t s = begin; s < end; ++s) {
      const std::size_t idx = sorted_[s];
      const VgCand& p = cands[idx];
      // Keep the upper concave chain of the (load, slack) points. Pop only
      // when the middle point is STRICTLY below the new chord: a collinear
      // point can still win an exact-q tie by its smaller index, so it must
      // survive; a strictly-below point loses to a chord endpoint at every
      // R and can never be any type's best predecessor.
      while (stack_.size() >= 2) {
        const VgCand& a = cands[stack_[stack_.size() - 2]];
        const VgCand& b = cands[stack_[stack_.size() - 1]];
        const double cross = (b.load - a.load) * (p.slack - a.slack) -
                             (b.slack - a.slack) * (p.load - a.load);
        if (cross > 0.0) {
          stack_.pop_back();
        } else {
          break;
        }
      }
      stack_.push_back(idx);
    }
    hull_.insert(hull_.end(), stack_.begin(), stack_.end());
    grp.end = hull_.size();
    grp.ptr = grp.begin;
    groups_.push_back(grp);
    begin = end;
  }
  killed_ = n - hull_.size();
}

BestPredecessors::Choice BestPredecessors::select(const lib::BufferType& type,
                                                  std::size_t pos) {
  // Activate the groups whose first feasible type the walk has reached
  // (groups_ ascends by first_type; pos strictly increases between calls).
  while (active_ < groups_.size() && groups_[active_].first_type <= pos)
    ++active_;
  const double r = type.resistance;
  const double d = type.intrinsic_delay;
  Choice best;
  std::size_t best_idx = 0;
  for (std::size_t gi = 0; gi < active_; ++gi) {
    Group& g = groups_[gi];
    const auto q_at = [&](std::size_t h) {
      const VgCand& c = cands_[hull_[h]];
      return c.slack - d - r * c.load;  // the reference's exact expression
    };
    // Monotone walk: as R shrinks the maximizer moves toward larger loads,
    // so the pointer never backs up. Advance only on strictly greater q:
    // the walk then stops on the FIRST point of an equal-q plateau, which
    // is the reference scan's first-wins tie-break.
    while (g.ptr + 1 < g.end && q_at(g.ptr + 1) > q_at(g.ptr)) ++g.ptr;
    const double q = q_at(g.ptr);
    const std::size_t idx = hull_[g.ptr];
    if (best.cand == nullptr || q > best.q ||
        (q == best.q && idx < best_idx)) {
      best.cand = &cands_[idx];
      best.q = q;
      best_idx = idx;
    }
  }
  return best;
}

VgResult run_fast_kernel(const rct::RoutingTree& tree,
                         const lib::BufferLibrary& lib,
                         const VgOptions& opt) {
  FastVgRun run(tree, lib, opt);
  return run.run();
}

}  // namespace nbuf::core::detail
