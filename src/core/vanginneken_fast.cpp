// The fast Van Ginneken kernel (default; see VgKernel::Fast).
//
// Four structural observations make the seed kernel's per-prune std::sort,
// per-candidate wire updates, per-node deep copies, and strided candidate
// traffic unnecessary:
//
//  1. Sort invariant. Every prune leaves its list sorted by (load asc,
//     slack desc) and — with dominance pruning on — strictly ascending in
//     both load and slack (a Pareto staircase). An unsized wire extension
//     maps every candidate with the same monotone affine update, so the
//     sorted order survives; the Van Ginneken two-list merge emits loads in
//     ascending order by construction; and buffer insertion appends a small
//     sorted tail that one stable merge pass folds back in. Pruning is
//     therefore a single linear scan (dead-candidate removal, dominance
//     filter, and compaction fused); a sort runs only when the order is
//     genuinely broken — the wire-sizing fork path, where one candidate
//     forks into one variant per width (Li & Shi, PAPERS.md).
//
//  2. Lazy wire offsets. An unsized wire extension is the same affine map
//     for every candidate of every one of the 2*(max_buffers+1) lists of a
//     node. extend_wire records the wire in O(1) per node; the update is
//     materialized ("flushed") fused into the very next prune scan — the
//     same arithmetic expressions in the same order as the eager kernel, so
//     results stay bit-identical, but the separate write pass and the sort
//     disappear.
//
//  3. Read views instead of snapshots. Buffer insertion must read only
//     pre-insertion candidates (one buffer per node). The seed deep-copies
//     all lists; since insertions only ever append, remembering each
//     bucket's pre-insertion size and scanning that prefix is equivalent
//     and copies nothing.
//
//  4. Structure-of-arrays lanes. Candidate lists live in SoA blocks
//     (core/soa.hpp): one contiguous aligned lane per DP field plus a
//     32-bit plan-ref lane. The hot loops — the fused dead+Pareto prune,
//     the wire-offset flush, and the bucket-major merge — stream one lane
//     at a time as the branch-light sweeps of core/soa_sweeps.hpp,
//     vectorized under `#pragma omp simd` when the build compiled them
//     (NBUF_SIMD=auto) and the run asked for them (VgOptions::simd).
//     Every pragma'd loop is strictly elementwise, so vector and scalar
//     execution are bit-identical. Order-dependent work — Pareto keep
//     decisions, tail sorts, cascaded run merges — runs over 32-bit index
//     permutations with ONE gather per lane at the end instead of
//     repeatedly moving 48-byte structs.
//
// Candidate blocks are recycled whole through a per-run core::SoAPool next
// to the PlanArena, so steady-state DP makes no allocator calls.
//
// Bit-identity with the reference kernel (same pruning decisions, same
// tie-break order, same legacy VgStats counters) is pinned by
// tests/test_vg_kernel.cpp and tests/test_soa_kernel.cpp; the speedup is
// measured by bench/figI_kernel_speedup and bench/figM_soa_ablation.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "core/soa.hpp"
#include "core/soa_sweeps.hpp"
#include "core/vg_kernel.hpp"
#include "elmore/slew.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nbuf::core::detail {

namespace {

// Candidate lists of one node in SoA form: [phase][buffer count], the SoA
// mirror of NodeLists.
struct SoANodeLists {
  std::array<std::vector<SoAList>, 2> by_phase;

  [[nodiscard]] std::size_t total_size() const noexcept {
    std::size_t n = 0;
    for (const auto& phase_lists : by_phase)
      for (const SoAList& list : phase_lists) n += list.size();
    return n;
  }
};

class FastVgRun {
 public:
  FastVgRun(const rct::RoutingTree& tree, const lib::BufferLibrary& lib,
            const VgOptions& opt)
      : tree_(tree),
        lib_(lib),
        opt_(opt),
        sizing_(!opt.wire_widths.empty()),
        simd_(opt.simd == SimdMode::Auto),
        type_order_(TypeOrder::make(lib)) {
    for (auto& sizes : view_sizes_) sizes.resize(opt_.max_buffers + 1, 0);
    min_cost_ = 1;
    if (!opt_.buffer_costs.empty())
      min_cost_ = *std::min_element(opt_.buffer_costs.begin(),
                                    opt_.buffer_costs.end());
    stats_.lib_types = lib_.size();
  }

  VgResult run();

 private:
  // Node state: materialized candidate lists plus the wires whose affine
  // update has been recorded but not yet applied (in root-ward order).
  struct Lists {
    SoANodeLists node;
    std::vector<const rct::Wire*> pending;
  };

  Lists process(rct::NodeId v);
  void flush(Lists& lists);
  void extend_wire(Lists& lists, rct::NodeId child);
  void insert_buffers(Lists& lists, rct::NodeId v);
  void insert_buffers_naive(Lists& lists, rct::NodeId v);
  void insert_buffers_best_pred(Lists& lists, rct::NodeId v);
  Lists merge(Lists l, Lists r);

  void apply_wire_and_prune(SoAList& list, const rct::Wire& w);
  void prune(SoAList& list, bool known_sorted);
  void sort_list(SoAList& list);
  void merge_runs(SoAList& list);
  void merge_tail_and_prune(SoAList& list, std::size_t prefix);
  void release_lists(Lists& lists);

  [[nodiscard]] bool list_is_sorted(const SoAList& list) const {
    const CandSpan s = list.span();
    for (std::size_t i = 1; i < s.n; ++i)
      if (soa_cand_less(s, i, i - 1, arena_)) return false;
    return true;
  }
  void note_created(std::size_t n) { stats_.candidates_generated += n; }
  // Lane-utilization bookkeeping for one simd-eligible sweep of length n:
  // how much of it fills whole vectors vs. the scalar epilogue. A pure
  // function of the sweep lengths, so it reproduces at any thread count
  // and in both simd modes.
  void note_sweep(std::size_t n) {
    const std::size_t tail = n % soa::kSimdLanes;
    stats_.soa_full_lane_elems += n - tail;
    stats_.soa_tail_elems += tail;
  }
  [[nodiscard]] double* timed(double util::VgStats::*field) {
    return opt_.collect_stats ? &(stats_.*field) : nullptr;
  }

  const rct::RoutingTree& tree_;
  const lib::BufferLibrary& lib_;
  const VgOptions& opt_;
  const bool sizing_;
  const bool simd_;
  PlanArena arena_;
  SoAPool pool_;
  SoAList scratch_;                       // gather target, swapped back
  std::vector<unsigned char> keep_;       // prune keep flags
  std::vector<std::uint32_t> perm_;       // index-permutation scratch
  std::vector<std::uint32_t> ia_, jb_;    // merge pair indices
  std::vector<std::size_t> run_bounds_;   // sorted-run starts in merge()
  // Pre-insertion bucket sizes of the node currently in insert_buffers:
  // the read views that replace the seed kernel's NodeLists deep copy.
  std::array<std::vector<std::size_t>, 2> view_sizes_;
  // Best-predecessor machinery: the resistance-descending type walk order,
  // the per-bucket feasibility groups, and each type's chosen predecessor
  // for the bucket currently being processed.
  TypeOrder type_order_;
  BestPredecessors bp_;
  std::vector<BestPredecessors::Choice> selected_;  // by type walk position
  std::vector<BestPredecessors::Choice> chosen_;    // by library id
  std::size_t min_cost_ = 1;
  util::VgStats stats_;
};

// Pareto pruning on (load, slack) only — paper Step 7 — with dead-candidate
// removal (NS < 0) fused into the same lane sweeps (soa::prune_sweep).
// `known_sorted` callers maintained the sort invariant, so no sort runs.
void FastVgRun::prune(SoAList& list, bool known_sorted) {
  NBUF_TRACE_DETAIL_TAGGED("vg.prune", list.size());
  ++stats_.prune_calls;
  if (known_sorted) {
    ++stats_.prune_sorts_skipped;
  } else {
    sort_list(list);
    ++stats_.prune_sorts;
  }
  if (opt_.noise_constraints) note_sweep(list.size());
  const soa::PruneResult pr = soa::prune_sweep(
      list, opt_.noise_constraints, opt_.prune_candidates, simd_, keep_);
  stats_.pruned_infeasible += pr.dead;
  stats_.pruned_inferior += pr.inferior;
  if (!pr.moved) ++stats_.soa_prunes_no_move;
  stats_.peak_list_size = std::max(stats_.peak_list_size, list.size());
  if (verify_lists_enabled(opt_)) verify_cand_list(list.span(), opt_, arena_);
}

// Full re-sort (the wire-sizing fork and the rounding-collision fallback):
// sort an index permutation by the total cand_less order, then gather the
// lanes once. A total order has a unique sorted sequence, so the unstable
// index sort reproduces the value sort bit-for-bit.
void FastVgRun::sort_list(SoAList& list) {
  const std::size_t n = list.size();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), 0u);
  const CandSpan s = list.span();
  std::sort(perm_.begin(), perm_.end(),  // nbuf-lint: allow(sort)
            [&](std::uint32_t x, std::uint32_t y) {
              return soa_cand_less(s, x, y, arena_);
            });
  note_sweep(n);
  soa::gather(list, perm_.data(), n, scratch_, simd_);
  list.swap(scratch_);
}

// Copies all six lane slots of src[i] to dst[o]; the lane-wise form of one
// 48-byte AoS struct move (dst and src may be the same list when o and i
// don't overlap a pending read).
inline void copy_elem(SoAList& dst, std::size_t o, const SoAList& src,
                      std::size_t i) {
  dst.load()[o] = src.load()[i];
  dst.slack()[o] = src.slack()[i];
  dst.current()[o] = src.current()[i];
  dst.noise_slack()[o] = src.noise_slack()[i];
  dst.dhat()[o] = src.dhat()[i];
  dst.plan()[o] = src.plan()[i];
}

// Collapses a concatenation of sorted runs (starts in run_bounds_) into one
// sorted order by cascaded pairwise lane merges, ping-ponging between the
// list and the scratch block — O(n log runs) comparisons, no allocation.
// Ties resolve to the earlier run, exactly std::merge's rule.
void FastVgRun::merge_runs(SoAList& list) {
  if (run_bounds_.size() <= 1) return;
  const std::size_t n = list.size();
  while (run_bounds_.size() > 1) {
    scratch_.clear();
    scratch_.reserve(n);
    scratch_.set_size(n);
    const CandSpan s = list.span();
    std::size_t w = 0;
    std::size_t out = 0;  // rewrite run starts in place for the next level
    for (std::size_t r = 0; r < run_bounds_.size(); r += 2) {
      const std::size_t mid =
          r + 1 < run_bounds_.size() ? run_bounds_[r + 1] : n;
      const std::size_t hi =
          r + 2 < run_bounds_.size() ? run_bounds_[r + 2] : n;
      run_bounds_[out++] = w;
      std::size_t i = run_bounds_[r], j = mid;
      while (i < mid && j < hi) {
        if (soa_cand_less(s, j, s, i, arena_)) {
          copy_elem(scratch_, w++, list, j++);
        } else {
          copy_elem(scratch_, w++, list, i++);
        }
      }
      while (i < mid) copy_elem(scratch_, w++, list, i++);
      while (j < hi) copy_elem(scratch_, w++, list, j++);
    }
    run_bounds_.resize(out);
    list.swap(scratch_);
  }
}

// Materializes one lazy wire offset: the exact per-candidate expressions of
// the reference kernel as one elementwise lane sweep (soa::apply_wire). The
// affine map preserves load order, so sortedness is re-checked afterwards
// over the updated lanes — the same neighbor pairs the AoS kernel compared
// during its scan — and a violation (only possible through floating-point
// rounding collisions) falls back to the sorting prune.
void FastVgRun::apply_wire_and_prune(SoAList& list, const rct::Wire& w) {
  ++stats_.offset_flushes;
  stats_.soa_flush_elems += list.size();
  note_sweep(list.size());
  soa::apply_wire(list, w.resistance, w.capacitance, w.coupling_current,
                  simd_);
  prune(list, list_is_sorted(list));
}

// Applies every pending wire, oldest first, pruning after each exactly as
// the reference kernel prunes after each extend_wire (under noise
// constraints the intermediate prunes are semantically load-bearing: a
// dominated candidate may only be discarded while its dominator is alive).
void FastVgRun::flush(Lists& lists) {
  if (lists.pending.empty()) return;
  NBUF_TRACE_DETAIL_TAGGED("vg.wire_offset", lists.pending.size());
  const PhaseTimer timer(timed(&util::VgStats::wire_seconds));
  for (const rct::Wire* w : lists.pending) {
    for (auto& phase_lists : lists.node.by_phase) {
      for (SoAList& list : phase_lists) {
        if (list.empty()) continue;
        apply_wire_and_prune(list, *w);
      }
    }
  }
  lists.pending.clear();
}

void FastVgRun::extend_wire(Lists& lists, rct::NodeId child) {
  const rct::Wire& w = tree_.node(child).parent_wire;
  if (w.length <= 0.0 && w.resistance <= 0.0 && w.capacitance <= 0.0)
    return;  // binarization dummy
  if (!sizing_) {
    // Lazy: O(1) per node. Materialized fused with the next prune.
    lists.pending.push_back(&w);
    return;
  }
  // Simultaneous wire sizing: every candidate forks into one variant per
  // width (Lillis). The fork interleaves loads, so this is the one path
  // where the sort invariant genuinely breaks and prune must sort.
  NBUF_ASSERT(lists.pending.empty());
  NBUF_TRACE_DETAIL_TAGGED("vg.wire", lists.node.total_size());
  const PhaseTimer timer(timed(&util::VgStats::wire_seconds));
  for (auto& phase_lists : lists.node.by_phase) {
    for (SoAList& list : phase_lists) {
      if (list.empty()) continue;
      SoAList expanded = pool_.acquire();
      const std::size_t widths = opt_.wire_widths.size();
      expanded.reserve(list.size() * widths);
      expanded.set_size(list.size() * widths);
      const CandSpan c = list.span();
      double* eload = expanded.load();
      double* eslack = expanded.slack();
      double* ecurrent = expanded.current();
      double* enoise = expanded.noise_slack();
      double* edhat = expanded.dhat();
      PlanRef* eplan = expanded.plan();
      std::size_t o = 0;
      for (std::size_t ci = 0; ci < c.n; ++ci) {
        for (std::size_t wi = 0; wi < widths; ++wi, ++o) {
          const lib::WireWidth& ww = opt_.wire_widths.at(wi);
          const double res = w.resistance * ww.res_scale;
          const double cap = w.capacitance * ww.cap_scale;
          const double cur = w.coupling_current * ww.coupling_scale;
          const double wire_delay = res * (cap / 2.0 + c.load[ci]);
          eload[o] = c.load[ci] + cap;
          eslack[o] = c.slack[ci] - wire_delay;
          ecurrent[o] = c.current[ci] + cur;
          enoise[o] = c.noise_slack[ci] - res * (cur / 2.0 + c.current[ci]);
          edhat[o] = c.dhat[ci] + wire_delay;
          eplan[o] = wi == 0 ? c.plan[ci]
                             : arena_.wire_ref(c.plan[ci],
                                               PlannedWire{child, wi});
        }
      }
      note_created(o);
      pool_.release(std::move(list));
      list = std::move(expanded);
      prune(list, /*known_sorted=*/false);
    }
  }
}

// Folds the freshly appended buffer candidates (a small sorted-after-sort
// tail — at most one per library type) back into the sorted prefix without
// rewriting the list: the tail is buffered into the scratch block and
// merged backward in place. No full sort, no allocation, and prefix
// elements below the lowest tail element never move.
void FastVgRun::merge_tail_and_prune(SoAList& list, std::size_t prefix) {
  const std::size_t n = list.size();
  const std::size_t t = n - prefix;
  const CandSpan s = list.span();
  perm_.resize(t);
  std::iota(perm_.begin(), perm_.end(), static_cast<std::uint32_t>(prefix));
  std::sort(perm_.begin(), perm_.end(),  // nbuf-lint: allow(sort)
            [&](std::uint32_t x, std::uint32_t y) {
              return soa_cand_less(s, x, y, arena_);
            });
  scratch_.clear();
  scratch_.reserve(t);
  scratch_.set_size(t);
  for (std::size_t o = 0; o < t; ++o) copy_elem(scratch_, o, list, perm_[o]);
  // Backward in-place merge of the sorted prefix with the buffered tail:
  // always emit the largest remaining element at the back. Writes stay
  // strictly above the unread prefix (w = i + j > i), and once the tail is
  // exhausted the remaining prefix is already in place. An exact total-
  // order tie means identical candidate content, so either emission order
  // reproduces the std::merge sequence.
  const CandSpan tail = scratch_.span();
  std::size_t i = prefix, j = t, w = n;
  while (j > 0) {
    if (i > 0 && soa_cand_less(tail, j - 1, s, i - 1, arena_)) {
      --w;
      --i;
      copy_elem(list, w, list, i);
    } else {
      --w;
      --j;
      copy_elem(list, w, scratch_, j);
    }
  }
  prune(list, /*known_sorted=*/true);
}

void FastVgRun::insert_buffers(Lists& lists, rct::NodeId v) {
  flush(lists);
  // Offset-flush invariant: buffer insertion must read fully materialized
  // candidates — a pending wire here would mean the views below are stale.
  NBUF_ASSERT_MSG(lists.pending.empty(),
                  "lazy wire offsets must be flushed before insert_buffers");
  NBUF_TRACE_DETAIL_TAGGED("vg.buffer", lists.node.total_size());
  const PhaseTimer timer(timed(&util::VgStats::buffer_seconds));
  // Read views: every type considers only unbuffered-at-v candidates,
  // enforcing one buffer per node (Step 5). Appends only ever push beyond
  // each bucket's pre-insertion size, so scanning that prefix reads exactly
  // what the seed kernel's full NodeLists snapshot held — without the copy.
  for (int phase = 0; phase < 2; ++phase) {
    for (std::size_t k = 0; k <= opt_.max_buffers; ++k) {
      const std::size_t n = lists.node.by_phase[phase][k].size();
      view_sizes_[phase][k] = n;
      stats_.snapshot_cands_avoided += n;
    }
  }
  if (opt_.prune_candidates) {
    insert_buffers_best_pred(lists, v);
  } else {
    // Ablation mode: without dominance pruning the lists are not Pareto
    // staircases, so the grouped best-predecessor structure does not apply.
    insert_buffers_naive(lists, v);
  }
  const std::size_t bucket_count = opt_.max_buffers + 1;
  for (int phase = 0; phase < 2; ++phase) {
    for (std::size_t k = 0; k < bucket_count; ++k) {
      SoAList& list = lists.node.by_phase[phase][k];
      const std::size_t prefix = view_sizes_[phase][k];
      if (list.size() == prefix) continue;  // untouched: still Pareto-sorted
      merge_tail_and_prune(list, prefix);
    }
  }
}

// The seed scan: every type reads every candidate of every bucket, O(b·m)
// per bucket. Kept for the prune_candidates=false ablation only.
void FastVgRun::insert_buffers_naive(Lists& lists, rct::NodeId v) {
  const std::size_t bucket_count = opt_.max_buffers + 1;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  for (lib::BufferId bid : lib_.ids()) {
    const lib::BufferType& b = lib_.at(bid);
    // Cost of inserting this type (Lillis power-function generalization;
    // defaults to 1 = plain counting).
    const std::size_t cost =
        opt_.buffer_costs.empty() ? 1 : opt_.buffer_costs[bid.value()];
    for (int in_phase = 0; in_phase < 2; ++in_phase) {
      const int out_phase = b.inverting ? 1 - in_phase : in_phase;
      const auto& buckets = lists.node.by_phase[in_phase];
      for (std::size_t k = 0; k + cost < bucket_count; ++k) {
        // Best resulting slack over the count-k view (Fig. 11 Step 5).
        const CandSpan c = buckets[k].span(view_sizes_[in_phase][k]);
        std::size_t best = kNone;
        double best_q = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < c.n; ++i) {
          if (opt_.noise_constraints &&
              b.resistance * c.current[i] > c.noise_slack[i])
            continue;  // would violate noise: never create this candidate
          if (elmore::kSlewFactor * (b.resistance * c.load[i] + c.dhat[i]) >
              opt_.max_slew)
            continue;  // the buffer's stage would see too slow an edge
          const double q =
              c.slack[i] - b.intrinsic_delay - b.resistance * c.load[i];
          if (q > best_q) {
            best_q = q;
            best = i;
          }
        }
        if (best == kNone) continue;
        lists.node.by_phase[out_phase][k + cost].push_back(
            b.input_cap, best_q, 0.0, b.noise_margin, 0.0,
            arena_.buffer_ref(c.plan[best], PlannedBuffer{v, 0.0, bid}));
        note_created(1);
      }
    }
  }
}

// Grouped insertion (the default): bucket-major so each bucket's
// feasibility groups are built once (one binary search per candidate) and
// every type's best predecessor comes out of one predicate-free
// candidate-major pass (select_all). New candidates are buffered per type
// and appended in library-id order:
// the reference kernel emits types in that order and the tail sort is not
// stable, so the append order is part of the bit-identity contract.
void FastVgRun::insert_buffers_best_pred(Lists& lists, rct::NodeId v) {
  const std::size_t bucket_count = opt_.max_buffers + 1;
  const std::size_t type_count = lib_.size();
  for (int in_phase = 0; in_phase < 2; ++in_phase) {
    auto& buckets = lists.node.by_phase[in_phase];
    for (std::size_t k = 0; k + min_cost_ < bucket_count; ++k) {
      const std::size_t view_n = view_sizes_[in_phase][k];
      if (view_n == 0) continue;
      // The view's lanes stay valid through the emit loop: every append
      // lands in bucket k + cost (cost >= 1), never in bucket k itself.
      const CandSpan view = buckets[k].span(view_n);
      bp_.prepare(view, opt_, lib_, type_order_);
      ++stats_.bp_prune_calls;
      stats_.bp_candidates_killed += bp_.killed();
      bp_.select_all(lib_, type_order_, selected_);
      chosen_.assign(type_count, {});
      for (std::size_t pos = 0; pos < type_count; ++pos) {
        const lib::BufferId bid = type_order_.ids[pos];
        const std::size_t cost =
            opt_.buffer_costs.empty() ? 1 : opt_.buffer_costs[bid.value()];
        // A choice whose target bucket overflows the count cap is simply
        // discarded — the reference loop never evaluates those types.
        if (k + cost >= bucket_count) continue;
        chosen_[bid.value()] = selected_[pos];
      }
      for (std::size_t t = 0; t < type_count; ++t) {
        const BestPredecessors::Choice& ch = chosen_[t];
        if (ch.idx == BestPredecessors::Choice::kNone) continue;
        const lib::BufferId bid{
            static_cast<lib::BufferId::underlying_type>(t)};
        const lib::BufferType& b = lib_.at(bid);
        const std::size_t cost =
            opt_.buffer_costs.empty() ? 1 : opt_.buffer_costs[t];
        const int out_phase = b.inverting ? 1 - in_phase : in_phase;
        note_created(1);
        // Dominated at birth: the target bucket's pre-insertion staircase
        // (its read view — exactly what the reference kernel snapshots)
        // guarantees the next merge_tail_and_prune would delete this
        // candidate, so book the generate+prune pair and skip the arena
        // node, the append, and the merge churn. The reference kernel
        // applies the same predicate against the same view, keeping the
        // kernels bit-identical.
        SoAList& target = lists.node.by_phase[out_phase][k + cost];
        if (dominated_by_staircase(target.load(), target.slack(),
                                   view_sizes_[out_phase][k + cost],
                                   b.input_cap, ch.q)) {
          ++stats_.pruned_inferior;
          continue;
        }
        target.push_back(
            b.input_cap, ch.q, 0.0, b.noise_margin, 0.0,
            arena_.buffer_ref(view.plan[ch.idx], PlannedBuffer{v, 0.0, bid}));
      }
    }
  }
}

void FastVgRun::release_lists(Lists& lists) {
  for (auto& phase_lists : lists.node.by_phase)
    for (SoAList& list : phase_lists) pool_.release(std::move(list));
}

FastVgRun::Lists FastVgRun::merge(Lists l, Lists r) {
  flush(l);
  flush(r);
  NBUF_ASSERT_MSG(l.pending.empty() && r.pending.empty(),
                  "lazy wire offsets must be flushed before merge");
  NBUF_TRACE_DETAIL_TAGGED("vg.merge",
                           l.node.total_size() + r.node.total_size());
  const PhaseTimer timer(timed(&util::VgStats::merge_seconds));
  const std::size_t kmax = opt_.max_buffers;
  Lists out;
  for (auto& pl : out.node.by_phase) pl.resize(kmax + 1);
  // Output-bucket-major so all (kl, kr) contributions to one bucket are
  // consecutive: each contribution is one sorted run (the Van Ginneken
  // linear merge emits loads in ascending order), and the runs fold back
  // into one sorted list without a sort.
  for (int phase = 0; phase < 2; ++phase) {
    for (std::size_t ks = 0; ks <= kmax; ++ks) {
      SoAList& dst = out.node.by_phase[phase][ks];
      run_bounds_.clear();
      for (std::size_t kl = 0; kl <= ks; ++kl) {
        const SoAList& a = l.node.by_phase[phase][kl];
        if (a.empty()) continue;
        const SoAList& b = r.node.by_phase[phase][ks - kl];
        if (b.empty()) continue;
        if (dst.capacity() == 0) dst = pool_.acquire();
        run_bounds_.push_back(dst.size());
        // Van Ginneken linear merge, split lane-wise: the sequential
        // advance walk records index pairs, then one gather sweep fills
        // the value lanes and a scalar loop allocates the plan merges.
        const CandSpan sa = a.span();
        const CandSpan sb = b.span();
        const std::size_t m = soa::emit_pairs(sa, sb, ia_, jb_);
        const std::size_t base = dst.size();
        note_sweep(m);
        soa::merge_fill(sa, sb, ia_.data(), jb_.data(), m, dst, simd_);
        PlanRef* dp = dst.plan() + base;
        for (std::size_t o = 0; o < m; ++o)
          dp[o] = arena_.merge_ref(sa.plan[ia_[o]], sb.plan[jb_[o]]);
        note_created(m);
        stats_.merged += m;
      }
      if (dst.empty()) continue;
      merge_runs(dst);
      // The runs are sorted by construction up to floating-point rounding
      // collisions (an equal-load pair inside a run arrives slack-ascending,
      // the reverse of the prune order); verify instead of assuming so the
      // rare collision falls back to the sorting path bit-identically.
      prune(dst, list_is_sorted(dst));
    }
  }
  release_lists(l);
  release_lists(r);
  return out;
}

FastVgRun::Lists FastVgRun::process(rct::NodeId v) {
  const rct::Node& n = tree_.node(v);

  if (n.kind == rct::NodeKind::Sink) {
    Lists lists;
    for (auto& pl : lists.node.by_phase) pl.resize(opt_.max_buffers + 1);
    const rct::SinkInfo& si = tree_.sink(n.sink);
    SoAList& seedlist =
        lists.node.by_phase[si.require_inverted ? 1 : 0][0];
    seedlist = pool_.acquire();
    seedlist.push_back(si.cap, si.required_arrival, 0.0, si.noise_margin,
                       0.0, kNullPlan);
    note_created(1);
    return lists;
  }

  NBUF_EXPECTS_MSG(n.children.size() <= 2,
                   "Van Ginneken DP needs a binary tree");
  NBUF_EXPECTS_MSG(!n.children.empty(), "internal node without children");
  // Children lists are built recursively and climbed through their wires.
  Lists acc = process(n.children.front());
  extend_wire(acc, n.children.front());
  if (n.children.size() == 2) {
    Lists rightl = process(n.children.back());
    extend_wire(rightl, n.children.back());
    acc = merge(std::move(acc), std::move(rightl));
  }
  if (n.kind == rct::NodeKind::Internal && n.buffer_allowed)
    insert_buffers(acc, v);
  return acc;
}

VgResult FastVgRun::run() {
  Lists at_source = process(tree_.source());
  // The source keeps no pending wires in the reference kernel; flush so the
  // driver fold reads materialized, pruned lists.
  flush(at_source);
  NBUF_ASSERT_MSG(at_source.pending.empty(),
                  "lazy wire offsets must be flushed before the driver fold");
  stats_.pool_reuses = pool_.reuses();
  stats_.soa_block_reuses = pool_.reuses();
  // Materialize the source lists as AoS NodeLists for the shared driver
  // fold (finalize is common to both kernels) — a one-time conversion
  // linear in the surviving source candidates.
  NodeLists node;
  for (int phase = 0; phase < 2; ++phase) {
    node.by_phase[phase].resize(opt_.max_buffers + 1);
    for (std::size_t k = 0; k <= opt_.max_buffers; ++k) {
      const CandSpan s = at_source.node.by_phase[phase][k].span();
      CandList& out = node.by_phase[phase][k];
      out.reserve(s.n);
      for (std::size_t i = 0; i < s.n; ++i)
        out.push_back(VgCand{s.load[i], s.slack[i], s.current[i],
                             s.noise_slack[i], s.dhat[i],
                             arena_.cell(s.plan[i])});
    }
  }
  return finalize(node, tree_, opt_, stats_);
}

}  // namespace

TypeOrder TypeOrder::make(const lib::BufferLibrary& lib) {
  TypeOrder order;
  order.ids = lib.ids();
  // Resistance descending; stable so equal-R types keep library-id order
  // (their feasibility predicates are then interchangeable).
  std::stable_sort(order.ids.begin(), order.ids.end(),
                   [&lib](lib::BufferId a, lib::BufferId b) {
                     return lib.at(a).resistance > lib.at(b).resistance;
                   });
  return order;
}

void BestPredecessors::prepare(const CandSpan& view, const VgOptions& opt,
                               const lib::BufferLibrary& lib,
                               const TypeOrder& order) {
  view_ = view;
  groups_.clear();
  killed_ = 0;
  const std::size_t n = view.n;
  const std::size_t m = order.ids.size();
  const bool noise = opt.noise_constraints;
  const bool slew = opt.max_slew < std::numeric_limits<double>::infinity();
  if (!noise && !slew) {
    // Unconstrained bucket: every type is feasible for every candidate
    // (tmin == 0 across the board), so the whole view is one group in
    // index order and the permutation — the identity — is never
    // materialized. select_all detects this shape and reads the lanes
    // directly.
    if (n > 0) groups_.push_back(Group{0, 0, n});
    return;
  }
  // Feasibility of inserting the type at walk position `pos` on top of
  // candidate i, with the kernels' exact threshold comparisons (never
  // rearranged: the binary search must agree bit-for-bit with the naive
  // scan's skips).
  const auto feasible = [&](std::size_t i, std::size_t pos) {
    const double r = lib.at(order.ids[pos]).resistance;
    if (noise && r * view.current[i] > view.noise_slack[i]) return false;
    return !(elmore::kSlewFactor * (r * view.load[i] + view.dhat[i]) >
             opt.max_slew);
  };
  tmin_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (feasible(i, 0)) continue;  // the common case: tmin stays 0
    // Both thresholds are products monotone in R under IEEE rounding, so
    // along the R-descending walk order the feasible types form a suffix:
    // binary-search its first position (m = feasible for no type).
    std::size_t lo = 1, hi = m;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (feasible(i, mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    tmin_[i] = lo;
  }
  // Counting-bucket the candidates by first feasible type. Each group is a
  // subsequence of the bucket's Pareto staircase — itself a staircase — so
  // iterating candidates in index order fills every group in index order.
  counts_.assign(m + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts_[tmin_[i]];
  std::size_t offset = 0;
  for (std::size_t t = 0; t <= m; ++t) {
    const std::size_t c = counts_[t];
    counts_[t] = offset;
    offset += c;
  }
  sorted_.resize(n);
  for (std::size_t i = 0; i < n; ++i) sorted_[counts_[tmin_[i]]++] = i;
  // counts_[t] now holds the END of group t's slice; group t's candidates
  // sit in sorted_[counts_[t-1], counts_[t]), index ascending (the counting
  // sort is stable). Record every nonempty group's slice; t == m means
  // feasible for no type — those candidates are dead and never scanned.
  std::size_t begin = 0;
  for (std::size_t t = 0; t < m; ++t) {
    const std::size_t end = counts_[t];
    if (end == begin) continue;
    groups_.push_back(Group{t, begin, end});
    begin = end;
  }
  killed_ = n - begin;
}

void BestPredecessors::select_all(const lib::BufferLibrary& lib,
                                  const TypeOrder& order,
                                  std::vector<Choice>& out) {
  const std::size_t m = order.ids.size();
  res_.resize(m);
  delay_.resize(m);
  for (std::size_t t = 0; t < m; ++t) {
    const lib::BufferType& b = lib.at(order.ids[t]);
    res_[t] = b.resistance;
    delay_[t] = b.intrinsic_delay;
  }
  // Accumulators mirror the reference scan's start state: q must beat
  // -inf STRICTLY before an index is recorded, so a candidate whose q is
  // -inf (or NaN) never wins — exactly as in the naive loop.
  best_q_.assign(m, -std::numeric_limits<double>::infinity());
  best_i_.assign(m, Choice::kNone);
  // Candidate-major: one pass over the grouped permutation, each
  // candidate's lanes loaded once and folded into the accumulator of
  // every type in its feasible suffix. The update keeps the minimum index
  // among bit-equal q maxima — the reference's first-wins choice restated
  // order-independently — because indices interleave across groups here.
  const auto fold = [this, m](std::size_t idx, std::size_t t0) {
    const double sl = view_.slack[idx];
    const double ld = view_.load[idx];
    for (std::size_t t = t0; t < m; ++t) {
      const double q = sl - delay_[t] - res_[t] * ld;
      if (q > best_q_[t] || (q == best_q_[t] &&
                             best_i_[t] != Choice::kNone &&
                             idx < best_i_[t])) {
        best_q_[t] = q;
        best_i_[t] = idx;
      }
    }
  };
  // One all-feasible group in index order means the permutation is the
  // identity (prepare's unconstrained fast path never even builds it):
  // walk the lanes directly, in hardware-prefetch order.
  if (killed_ == 0 && groups_.size() == 1 && groups_[0].first_type == 0) {
    for (std::size_t idx = groups_[0].begin; idx < groups_[0].end; ++idx)
      fold(idx, 0);
  } else {
    for (const Group& g : groups_)
      for (std::size_t s = g.begin; s < g.end; ++s)
        fold(sorted_[s], g.first_type);
  }
  out.assign(m, Choice{});
  for (std::size_t t = 0; t < m; ++t) {
    if (best_i_[t] == Choice::kNone) continue;
    out[t].idx = best_i_[t];
    out[t].q = best_q_[t];
  }
}

VgResult run_fast_kernel(const rct::RoutingTree& tree,
                         const lib::BufferLibrary& lib,
                         const VgOptions& opt) {
  FastVgRun run(tree, lib, opt);
  return run.run();
}

}  // namespace nbuf::core::detail

namespace nbuf::core {

// Defined in this TU because it is the one compiled with
// -DNBUF_SIMD_ENABLED when NBUF_SIMD resolves to enabled.
bool simd_compiled() noexcept { return detail::soa::kSimdCompiled; }

}  // namespace nbuf::core
