// Incremental re-optimization: the state a long-lived optimization service
// keeps per net so a perturbed tree re-answers in far less than a cold run.
//
// The Van Ginneken DP is bottom-up: the candidate lists of a node are a
// pure function of its subtree (tests/test_vg_kernel proves both kernels
// agree on them bit-for-bit). So after one full run we can memoize every
// node's post-insertion NodeLists (detail::SubtreeCache) and, when a
// perturbation touches node v, invalidate only v's root spine: the next
// run recomputes the dirty spine and serves every clean sibling subtree
// from the cache. The answer is bit-identical to a cold run on the
// perturbed tree by construction — cached lists hold exactly the values a
// cold run would rebuild, and candidate-order ties resolve by plan CONTENT
// (detail::cand_less), never by arena pointer.
//
// This is the first-class home of the machinery that used to live inside
// tests/test_incremental's 120-case differential harness; the harness now
// drives this API (and src/serve's PERTURB opcode is a thin wrapper over
// it). Perturbation is the shared edit vocabulary: the harness generates
// random edits with random_perturbation(), applies them through
// IncrementalContext::apply(), and cross-checks against a cold
// core::optimize on the same tree.
//
// Memory: the context owns one PlanArena for its whole lifetime (cached
// candidates point into it), so arena cells accumulate across
// re-optimizations; Stats::plan_cells tracks the growth.
#pragma once

#include <cstddef>

#include "core/vanginneken.hpp"
#include "core/vg_kernel.hpp"
#include "lib/buffer.hpp"
#include "rct/tree.hpp"
#include "util/rng.hpp"

namespace nbuf::core {

// One tree edit, the vocabulary of iterative physical design this library
// serves: a router rescales a wire (detour / sink move), retunes a sink
// (cell swap), splits a wire (new buffer site), tightens every noise
// margin (spec change), or rescales all coupling currents (aggressor-slope
// change). The first three are local — their DP impact is one root spine;
// the last two are global and legitimately invalidate everything.
struct Perturbation {
  enum class Kind {
    WireScale,       // parent wire of `node`: R/C/I scaled by the factors
    SinkSet,         // sink `sink` replaced by `sink_info`
    WireSplit,       // parent wire of `node` split `fraction` up its length
    TightenMargins,  // every sink: noise_margin -= delta
    ScaleCoupling,   // every wire: coupling_current *= factor
  };
  Kind kind = Kind::WireScale;
  rct::NodeId node;          // WireScale / WireSplit target (non-source)
  rct::SinkId sink;          // SinkSet target
  double res_factor = 1.0;   // WireScale
  double cap_factor = 1.0;   // WireScale
  double cur_factor = 1.0;   // WireScale
  double fraction = 0.5;     // WireSplit: dist_above = fraction * length
  rct::SinkInfo sink_info;   // SinkSet replacement (node field ignored)
  double delta = 0.0;        // TightenMargins (volt)
  double factor = 1.0;       // ScaleCoupling
};

// Applies `p` to `tree` directly (no dirty tracking — for harnesses that
// re-analyze from scratch). Returns the new node for WireSplit, an invalid
// id otherwise.
rct::NodeId apply_perturbation(rct::RoutingTree& tree, const Perturbation& p);

// A random local edit (WireScale / SinkSet / WireSplit with the 120-case
// harness's historic distributions): rescale factors in [0.4, 2.5], sink
// cap x[0.5, 2.0] with a fresh margin in [0.3, 1.2] V, splits at
// [0.25, 0.75] of wires longer than 1 µm (shorter wires degrade to a
// WireScale so every draw yields a usable edit).
[[nodiscard]] Perturbation random_perturbation(util::Rng& rng,
                                               const rct::RoutingTree& tree);

class IncrementalContext {
 public:
  // `tree` must be binary with buffer sites already created (callers run
  // tree.binarize() + seg::segment first — the service does this once per
  // LOAD, which is the point). The DP always runs the reference engine
  // (the only memoizable one); `opt.kernel` is ignored.
  IncrementalContext(rct::RoutingTree tree, const lib::BufferLibrary& lib,
                     VgOptions opt);

  [[nodiscard]] const rct::RoutingTree& tree() const noexcept {
    return tree_;
  }
  [[nodiscard]] const lib::BufferLibrary& library() const noexcept {
    return lib_;
  }
  [[nodiscard]] const VgOptions& options() const noexcept { return opt_; }

  // --- perturbations: mutate the held tree and mark the dirty spine ------
  void scale_wire(rct::NodeId v, double res_factor, double cap_factor,
                  double cur_factor);
  void set_sink(rct::SinkId s, rct::SinkInfo info);
  rct::NodeId split_wire(rct::NodeId v, double dist_above);
  void tighten_margins(double delta);
  void scale_coupling(double factor);
  // Dispatch on p.kind; returns the new node for WireSplit.
  rct::NodeId apply(const Perturbation& p);

  // Drops every cached subtree, so the next optimize() is a full cold run
  // on the current tree (the service's cold-vs-incremental A/B lever).
  void invalidate_all();

  // Runs the DP, recomputing only invalidated subtrees (the first call is
  // always a full run). The returned reference stays valid until the next
  // optimize() call.
  const VgResult& optimize();

  // Last optimize() result; null before the first run.
  [[nodiscard]] const VgResult* result() const noexcept {
    return have_result_ ? &result_ : nullptr;
  }

  struct Stats {
    std::size_t runs = 0;             // optimize() calls
    std::size_t last_reused = 0;      // subtrees served from cache last run
    std::size_t last_recomputed = 0;  // subtrees recomputed last run
    std::size_t plan_cells = 0;       // arena size (monotone growth)
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void dirty_up(rct::NodeId v);

  rct::RoutingTree tree_;
  lib::BufferLibrary lib_;  // copy: the context outlives caller reloads
  VgOptions opt_;
  PlanArena arena_;
  detail::SubtreeCache cache_;
  VgResult result_;
  bool have_result_ = false;
  Stats stats_;
};

// Solution-content equality of two VgResults: chosen plan, slacks, and the
// full per-count table. DP-effort statistics are deliberately excluded —
// an incremental run legitimately generates/prunes fewer candidates than
// the cold run it must otherwise match bit-for-bit.
[[nodiscard]] bool same_solution(const VgResult& a, const VgResult& b);

}  // namespace nbuf::core
