#include "core/vanginneken.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "core/vg_kernel.hpp"
#include "elmore/slew.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nbuf::core {

namespace detail {

// The reference (seed) kernel — see the ReferenceDp declaration in
// vg_kernel.hpp: re-sorts every candidate list on every prune and snapshots
// the full NodeLists at each buffer-insertion node. Kept as the
// bit-identity oracle for the fast kernel (tests/test_vg_kernel), as the
// A/B baseline of bench/figI_kernel_speedup, and — with a SubtreeCache —
// as the engine of core::IncrementalContext.

// Pareto pruning on (load, slack) only — paper Step 7; with noise enabled,
// dead candidates (NS < 0: no future gate can drive them) are removed first.
void ReferenceDp::prune(CandList& list) {
  NBUF_TRACE_DETAIL_TAGGED("vg.prune", list.size());
  ++stats_.prune_calls;
  ++stats_.prune_sorts;  // this kernel always sorts
  if (opt_.noise_constraints) {
    const std::size_t before = list.size();
    std::erase_if(list, [](const VgCand& c) { return c.noise_slack < 0.0; });
    stats_.pruned_infeasible += before - list.size();
  }
  std::sort(list.begin(), list.end(), detail::cand_less);
  if (opt_.prune_candidates) {
    CandList kept;
    double best_slack = -std::numeric_limits<double>::infinity();
    for (const VgCand& c : list) {
      if (c.slack <= best_slack) continue;  // inferior: >= load, <= slack
      kept.push_back(c);
      best_slack = c.slack;
    }
    stats_.pruned_inferior += list.size() - kept.size();
    list = std::move(kept);
  }
  stats_.peak_list_size = std::max(stats_.peak_list_size, list.size());
  if (detail::verify_lists_enabled(opt_)) detail::verify_cand_list(list, opt_);
}

void ReferenceDp::extend_wire(NodeLists& lists, rct::NodeId child) {
  NBUF_TRACE_DETAIL_TAGGED("vg.wire", lists.total_size());
  const PhaseTimer timer(timed(&util::VgStats::wire_seconds));
  const rct::Wire& w = tree_.node(child).parent_wire;
  if (w.length <= 0.0 && w.resistance <= 0.0 && w.capacitance <= 0.0)
    return;  // binarization dummy
  const bool sizing = !opt_.wire_widths.empty();
  for (auto& phase_lists : lists.by_phase) {
    for (CandList& list : phase_lists) {
      if (!sizing) {
        for (VgCand& c : list) {
          const double wire_delay =
              w.resistance * (w.capacitance / 2.0 + c.load);
          c.slack -= wire_delay;
          c.dhat += wire_delay;
          c.load += w.capacitance;
          c.noise_slack -=
              w.resistance * (w.coupling_current / 2.0 + c.current);
          c.current += w.coupling_current;
        }
      } else {
        // Simultaneous wire sizing: every candidate forks into one variant
        // per width (Lillis). Width 0 is the base wire and needs no plan
        // record.
        CandList expanded;
        expanded.reserve(list.size() * opt_.wire_widths.size());
        for (const VgCand& c : list) {
          for (std::size_t wi = 0; wi < opt_.wire_widths.size(); ++wi) {
            const lib::WireWidth& ww = opt_.wire_widths.at(wi);
            const double res = w.resistance * ww.res_scale;
            const double cap = w.capacitance * ww.cap_scale;
            const double cur = w.coupling_current * ww.coupling_scale;
            VgCand v = c;
            const double wire_delay = res * (cap / 2.0 + v.load);
            v.slack -= wire_delay;
            v.dhat += wire_delay;
            v.load += cap;
            v.noise_slack -= res * (cur / 2.0 + v.current);
            v.current += cur;
            if (wi != 0)
              v.plan = arena_.wire(v.plan, PlannedWire{child, wi});
            expanded.push_back(v);
            note_created(1);
          }
        }
        list = std::move(expanded);
      }
      prune(list);
    }
  }
}

void ReferenceDp::insert_buffers(NodeLists& lists, rct::NodeId v) {
  NBUF_TRACE_DETAIL_TAGGED("vg.buffer", lists.total_size());
  const PhaseTimer timer(timed(&util::VgStats::buffer_seconds));
  // Snapshot the pre-insertion lists: every type considers only unbuffered-
  // at-v candidates, enforcing one buffer per node (Step 5). Reading
  // `lists` directly would let a later type stack on top of an earlier
  // type's fresh insertion at this same node.
  const NodeLists before = lists;
  for (lib::BufferId bid : lib_.ids()) {
    const lib::BufferType& b = lib_.at(bid);
    // Cost of inserting this type (Lillis power-function generalization;
    // defaults to 1 = plain counting).
    const std::size_t cost = opt_.buffer_costs.empty()
                                 ? 1
                                 : opt_.buffer_costs[bid.value()];
    // New candidates bucketed by (result phase, count+cost).
    for (int in_phase = 0; in_phase < 2; ++in_phase) {
      const int out_phase = b.inverting ? 1 - in_phase : in_phase;
      const auto& buckets = before.by_phase[in_phase];
      std::vector<VgCand> additions(buckets.size());
      std::vector<bool> has(buckets.size(), false);
      for (std::size_t k = 0; k + cost < buckets.size(); ++k) {
        // Best resulting slack over the count-k list (Fig. 11 Step 5).
        const VgCand* best = nullptr;
        double best_q = -std::numeric_limits<double>::infinity();
        for (const VgCand& c : buckets[k]) {
          if (opt_.noise_constraints &&
              b.resistance * c.current > c.noise_slack)
            continue;  // would violate noise: never create this candidate
          if (elmore::kSlewFactor * (b.resistance * c.load + c.dhat) >
              opt_.max_slew)
            continue;  // the buffer's stage would see too slow an edge
          const double q = c.slack - b.intrinsic_delay -
                           b.resistance * c.load;
          if (q > best_q) {
            best_q = q;
            best = &c;
          }
        }
        if (best == nullptr) continue;
        note_created(1);
        // Dominated at birth: the pre-insertion staircase of the target
        // bucket already holds a candidate at most as loaded and at least
        // as slack-rich, so the post-insertion prune below would delete
        // this one unconditionally. Book the generate+prune pair without
        // materializing a plan node.
        const CandList& target = before.by_phase[out_phase][k + cost];
        if (opt_.prune_candidates &&
            detail::dominated_by_staircase(target.data(), target.size(),
                                           b.input_cap, best_q)) {
          ++stats_.pruned_inferior;
          continue;
        }
        VgCand nc;
        nc.load = b.input_cap;
        nc.slack = best_q;
        nc.current = 0.0;
        nc.noise_slack = b.noise_margin;
        nc.dhat = 0.0;  // restoring gate: a fresh stage begins
        nc.plan = arena_.buffer(best->plan, PlannedBuffer{v, 0.0, bid});
        additions[k + cost] = nc;
        has[k + cost] = true;
      }
      for (std::size_t k = 0; k < additions.size(); ++k) {
        if (!has[k]) continue;
        lists.by_phase[out_phase][k].push_back(additions[k]);
      }
    }
  }
  for (auto& phase_lists : lists.by_phase)
    for (CandList& list : phase_lists) prune(list);
}

NodeLists ReferenceDp::merge(const NodeLists& l, const NodeLists& r) {
  NBUF_TRACE_DETAIL_TAGGED("vg.merge", l.total_size() + r.total_size());
  const PhaseTimer timer(timed(&util::VgStats::merge_seconds));
  const std::size_t kmax = opt_.max_buffers;
  NodeLists out;
  for (auto& pl : out.by_phase) pl.resize(kmax + 1);
  for (int phase = 0; phase < 2; ++phase) {
    for (std::size_t kl = 0; kl <= kmax; ++kl) {
      const CandList& a = l.by_phase[phase][kl];
      if (a.empty()) continue;
      for (std::size_t kr = 0; kl + kr <= kmax; ++kr) {
        const CandList& b = r.by_phase[phase][kr];
        if (b.empty()) continue;
        CandList& dst = out.by_phase[phase][kl + kr];
        // Van Ginneken linear merge: lists are sorted by load and slack
        // ascending; the side whose slack binds advances.
        std::size_t i = 0, j = 0;
        while (i < a.size() && j < b.size()) {
          VgCand m;
          m.load = a[i].load + b[j].load;
          m.slack = std::min(a[i].slack, b[j].slack);
          m.current = a[i].current + b[j].current;
          m.noise_slack = std::min(a[i].noise_slack, b[j].noise_slack);
          m.dhat = std::max(a[i].dhat, b[j].dhat);
          m.plan = arena_.merge(a[i].plan, b[j].plan);
          dst.push_back(m);
          note_created(1);
          ++stats_.merged;
          if (a[i].slack < b[j].slack) {
            ++i;
          } else if (b[j].slack < a[i].slack) {
            ++j;
          } else {
            ++i;
            ++j;
          }
        }
      }
    }
  }
  for (auto& phase_lists : out.by_phase)
    for (CandList& list : phase_lists) prune(list);
  return out;
}

NodeLists ReferenceDp::process(rct::NodeId v) {
  if (cache_ == nullptr) return compute(v);
  if (cache_->valid[v.value()]) {
    ++cache_->reused;
    return cache_->lists[v.value()];  // copy: callers mutate their lists
  }
  NodeLists lists = compute(v);
  cache_->lists[v.value()] = lists;
  cache_->valid[v.value()] = 1;
  ++cache_->recomputed;
  return lists;
}

NodeLists ReferenceDp::compute(rct::NodeId v) {
  const rct::Node& n = tree_.node(v);
  NodeLists lists;
  for (auto& pl : lists.by_phase) pl.resize(opt_.max_buffers + 1);

  if (n.kind == rct::NodeKind::Sink) {
    const rct::SinkInfo& si = tree_.sink(n.sink);
    VgCand c;
    c.load = si.cap;
    c.slack = si.required_arrival;
    c.current = 0.0;
    c.noise_slack = si.noise_margin;
    lists.by_phase[si.require_inverted ? 1 : 0][0].push_back(c);
    note_created(1);
  } else {
    NBUF_EXPECTS_MSG(n.children.size() <= 2,
                     "Van Ginneken DP needs a binary tree");
    NBUF_EXPECTS_MSG(!n.children.empty(), "internal node without children");
    // Children lists are built recursively and climbed through their wires.
    NodeLists acc = process(n.children.front());
    extend_wire(acc, n.children.front());
    if (n.children.size() == 2) {
      NodeLists rightl = process(n.children.back());
      extend_wire(rightl, n.children.back());
      acc = merge(acc, rightl);
    }
    lists = std::move(acc);
    if (n.kind == rct::NodeKind::Internal && n.buffer_allowed)
      insert_buffers(lists, v);
  }
  return lists;
}

VgResult ReferenceDp::run() {
  if (cache_ != nullptr) {
    cache_->ensure_size(tree_.node_count());
    cache_->reused = 0;
    cache_->recomputed = 0;
  }
  const NodeLists at_source = process(tree_.source());
  return detail::finalize(at_source, tree_, opt_, stats_);
}

void verify_cand_list(const CandList& list, const VgOptions& opt) {
  NBUF_ASSERT_MSG(std::is_sorted(list.begin(), list.end(), cand_less),
                  "candidate list lost the (load asc, slack desc) order");
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (opt.noise_constraints)
      NBUF_ASSERT_CTX(
          list[i].noise_slack >= 0.0,
          util::ctx("i", i, "noise_slack", list[i].noise_slack));
    if (opt.prune_candidates && i > 0) {
      NBUF_ASSERT_CTX(list[i - 1].load < list[i].load,
                      util::ctx("i", i, "load[i-1]", list[i - 1].load,
                                "load[i]", list[i].load));
      NBUF_ASSERT_CTX(list[i - 1].slack < list[i].slack,
                      util::ctx("i", i, "slack[i-1]", list[i - 1].slack,
                                "slack[i]", list[i].slack));
    }
  }
}

void verify_cand_list(const CandSpan& view, const VgOptions& opt,
                      const PlanArena& arena) {
  for (std::size_t i = 0; i < view.n; ++i) {
    if (i > 0)
      NBUF_ASSERT_MSG(!soa_cand_less(view, i, i - 1, arena),
                      "candidate list lost the (load asc, slack desc) order");
    if (opt.noise_constraints)
      NBUF_ASSERT_CTX(view.noise_slack[i] >= 0.0,
                      util::ctx("i", i, "noise_slack", view.noise_slack[i]));
    if (opt.prune_candidates && i > 0) {
      NBUF_ASSERT_CTX(view.load[i - 1] < view.load[i],
                      util::ctx("i", i, "load[i-1]", view.load[i - 1],
                                "load[i]", view.load[i]));
      NBUF_ASSERT_CTX(view.slack[i - 1] < view.slack[i],
                      util::ctx("i", i, "slack[i-1]", view.slack[i - 1],
                                "slack[i]", view.slack[i]));
    }
  }
}

VgResult finalize(const NodeLists& at_source, const rct::RoutingTree& tree,
                  const VgOptions& opt, const util::VgStats& stats) {
  const rct::Driver& drv = tree.driver();
  VgResult result;

  // Fold in the driver (Fig. 10 Steps 2-4); only source-polarity candidates
  // are electrically valid solutions.
  for (std::size_t k = 0; k <= opt.max_buffers; ++k) {
    const CandList& list = at_source.by_phase[0][k];
    if (list.empty()) continue;
    CountBest best;
    best.count = k;
    bool found = false;
    for (const VgCand& c : list) {
      const double q =
          c.slack - drv.intrinsic_delay - drv.resistance * c.load;
      const double driver_noise = drv.resistance * c.current;
      const bool noise_ok =
          !opt.noise_constraints || driver_noise <= c.noise_slack;
      if (opt.noise_constraints && !noise_ok) continue;
      if (elmore::kSlewFactor * (drv.resistance * c.load + c.dhat) >
          opt.max_slew)
        continue;  // driver's stage violates the slew limit
      if (!found || q > best.slack) {
        best.slack = q;
        best.noise_slack = c.noise_slack - driver_noise;
        best.noise_ok = noise_ok;
        best.plan = collect(c.plan);
        best.wires = collect_wires(c.plan);
        found = true;
      }
    }
    if (found) result.per_count.push_back(std::move(best));
  }

  result.stats = stats;
  result.candidates_created = stats.candidates_generated;
  result.max_list_size = stats.peak_list_size;
  result.candidates_noise_pruned = stats.pruned_infeasible;

  if (result.per_count.empty()) {
    // No candidate satisfies the noise constraints at any count (possible
    // when buffer sites are too sparse): report infeasible with the
    // zero-buffer solution.
    result.feasible = false;
    result.timing_met = false;
    return result;
  }

  const CountBest* chosen = nullptr;
  if (opt.objective == VgObjective::MinBuffersMeetingConstraints) {
    for (const CountBest& cb : result.per_count) {
      if (cb.slack >= 0.0) {
        chosen = &cb;
        break;  // per_count ascends by count
      }
    }
  }
  if (chosen == nullptr) {
    // MaxSlack, or no count meets timing: take the best slack overall.
    for (const CountBest& cb : result.per_count)
      if (chosen == nullptr || cb.slack > chosen->slack) chosen = &cb;
  }

  result.feasible = true;  // noise-clean by construction in noise mode
  result.timing_met = chosen->slack >= 0.0;
  result.slack = chosen->slack;
  result.buffers = assignment_for(chosen->plan);
  // With per-type costs the bucket index is total cost; report the true
  // buffer count either way.
  result.buffer_count = result.buffers.size();
  result.wire_widths = chosen->wires;
  return result;
}

}  // namespace detail

VgResult optimize(const rct::RoutingTree& tree, const lib::BufferLibrary& lib,
                  const VgOptions& options) {
  NBUF_TRACE_SPAN_TAGGED("vg.optimize", tree.node_count());
  NBUF_TRACE_DETAIL_TAGGED("vg.lib_types", lib.size());
  NBUF_EXPECTS_MSG(tree.is_binary(), "call tree.binarize() first");
  NBUF_EXPECTS_MSG(!lib.empty(), "empty buffer library");
  NBUF_EXPECTS(options.max_buffers >= 1);
  if (!options.buffer_costs.empty()) {
    NBUF_REQUIRE_CTX(options.buffer_costs.size() == lib.size(),
                     util::ctx("buffer_costs", options.buffer_costs.size(),
                               "library types", lib.size()));
    for (std::size_t c : options.buffer_costs) NBUF_EXPECTS(c >= 1);
  }
  if (options.kernel == VgKernel::Reference) {
    PlanArena arena;
    detail::ReferenceDp run(tree, lib, options, arena);
    return run.run();
  }
  return detail::run_fast_kernel(tree, lib, options);
}

rct::BufferAssignment assignment_for(const std::vector<PlannedBuffer>& plan) {
  rct::BufferAssignment out;
  for (const PlannedBuffer& p : plan) {
    NBUF_ASSERT_MSG(p.dist_above == 0.0,
                    "Van Ginneken plans place at existing nodes only");
    out.place(p.node, p.type);
  }
  return out;
}

void apply_wire_widths(rct::RoutingTree& tree,
                       const std::vector<PlannedWire>& choices,
                       const lib::WireWidthLibrary& widths) {
  for (const PlannedWire& c : choices) {
    const lib::WireWidth& w = widths.at(c.width);
    rct::Wire wire = tree.node(c.node).parent_wire;
    wire.resistance *= w.res_scale;
    wire.capacitance *= w.cap_scale;
    wire.coupling_current *= w.coupling_scale;
    tree.set_parent_wire(c.node, wire);
  }
}

}  // namespace nbuf::core
