#include "core/theory.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace nbuf::core {

double uniform_wire_noise(double r_drv, double r_per_um, double i_per_um,
                          double length, double i_downstream) {
  NBUF_EXPECTS(length >= 0.0);
  return r_drv * (i_per_um * length + i_downstream) +
         r_per_um * length * (i_per_um * length / 2.0 + i_downstream);
}

std::optional<double> critical_length(double r_drv, double r_per_um,
                                      double i_per_um, double noise_slack,
                                      double i_downstream) {
  NBUF_EXPECTS(r_drv >= 0.0);
  NBUF_EXPECTS(r_per_um >= 0.0);
  NBUF_EXPECTS(i_per_um >= 0.0);
  NBUF_EXPECTS(i_downstream >= 0.0);
  const double budget = noise_slack - r_drv * i_downstream;
  if (budget < 0.0) return std::nullopt;  // Theorem 1's side condition

  // noise(L) = (r*i/2) L^2 + (R*i + r*I) L + R*I <= NS.
  const double a = r_per_um * i_per_um / 2.0;
  const double b = r_drv * i_per_um + r_per_um * i_downstream;
  if (a <= 0.0) {
    if (b <= 0.0) return std::numeric_limits<double>::infinity();
    return budget / b;  // linear case (e.g. zero wire resistance or current)
  }
  // Positive root of a L^2 + b L - budget = 0.
  return (-b + std::sqrt(b * b + 4.0 * a * budget)) / (2.0 * a);
}

std::optional<double> critical_length_coupling(double r_drv, double r_per_um,
                                               double c_per_um, double lambda,
                                               double mu, double noise_slack,
                                               double i_downstream) {
  NBUF_EXPECTS(c_per_um >= 0.0);
  NBUF_EXPECTS(lambda >= 0.0);
  NBUF_EXPECTS(mu >= 0.0);
  return critical_length(r_drv, r_per_um, lambda * c_per_um * mu,
                         noise_slack, i_downstream);
}

std::optional<double> required_separation(double r_drv, double r_per_um,
                                          double c_per_um, double coupling_k,
                                          double mu, double noise_slack,
                                          double i_downstream, double length) {
  NBUF_EXPECTS(coupling_k > 0.0);
  NBUF_EXPECTS(length > 0.0);
  // With lambda(d) = K/d:
  //   noise = (K/d)*c*mu*(R*L + r*L^2/2) + (R + r*L)*I <= NS
  const double resistive = (r_drv + r_per_um * length) * i_downstream;
  const double margin = noise_slack - resistive;
  if (margin <= 0.0) return std::nullopt;
  const double coupled =
      c_per_um * mu * (r_drv * length + r_per_um * length * length / 2.0);
  return coupling_k * coupled / margin;
}

}  // namespace nbuf::core
