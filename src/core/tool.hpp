// End-to-end drivers: what Section V actually ran per net.
//
// BuffOpt = segment wires -> Algorithm 3 (noise-constrained Van Ginneken,
// count-indexed) -> evaluate noise and timing on the result.
// DelayOpt = the same pipeline with noise checks disabled (the paper's
// delay-only baseline [1],[18]); DelayOpt(k) caps the buffer count at k.
#pragma once

#include "core/vanginneken.hpp"
#include "elmore/elmore.hpp"
#include "noise/devgan.hpp"
#include "seg/segment.hpp"

namespace nbuf::core {

struct ToolOptions {
  seg::Options segmenting{/*max_segment_length=*/500.0};  // µm
  VgOptions vg;
};

struct ToolResult {
  rct::RoutingTree tree;  // segmented working copy the assignment refers to
  VgResult vg;
  noise::NoiseReport noise_before;
  noise::NoiseReport noise_after;
  elmore::TimingReport timing_before;
  elmore::TimingReport timing_after;
  double optimize_seconds = 0.0;  // DP time only (segmenting excluded)
};

// Runs the configured Van Ginneken variant on a segmented copy of `input`.
[[nodiscard]] ToolResult run(const rct::RoutingTree& input,
                             const lib::BufferLibrary& lib,
                             const ToolOptions& options);

// BuffOpt with the paper's Problem-3 objective: fewest buffers meeting both
// noise and timing, best slack as tiebreak.
[[nodiscard]] ToolResult run_buffopt(const rct::RoutingTree& input,
                                     const lib::BufferLibrary& lib,
                                     ToolOptions options = {});

// DelayOpt(k): delay-only optimization with at most `max_buffers` buffers.
[[nodiscard]] ToolResult run_delayopt(const rct::RoutingTree& input,
                                      const lib::BufferLibrary& lib,
                                      std::size_t max_buffers,
                                      ToolOptions options = {});

}  // namespace nbuf::core
