// The branch-light lane sweeps of the fast Van Ginneken kernel's three hot
// loops (fused dead+Pareto prune, lazy wire-offset flush, bucket-major
// merge), factored out of vanginneken_fast.cpp so tests/test_soa_kernel can
// drive them directly over the tail-loop regression corpus.
//
// Vectorization policy (docs/perf.md): a sweep body may carry
// `#pragma omp simd` ONLY when it is strictly elementwise — iteration i
// reads and writes lane slot i and nothing else — because then vector and
// scalar execution perform the exact same IEEE operations per element and
// the results are bit-identical (both kernel TUs additionally pin
// -ffp-contract=off so no codegen path fuses a multiply-add the other
// doesn't). Anything order-dependent — the running-best-slack Pareto
// decision, stream compaction, reductions — stays in plain loops here.
// The pragma text is only emitted when the TU is compiled with
// NBUF_SIMD_ENABLED=1 (the CMake NBUF_SIMD=auto path adds -fopenmp-simd
// and the define to the kernel TU); every sweep also takes a runtime
// `simd` flag (VgOptions::simd) so one binary can A/B vector vs scalar —
// the self-differential of tests/test_soa_kernel. The `unchecked-simd`
// lint rule keeps `#pragma omp simd` out of every other file under src/.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/soa.hpp"

namespace nbuf::core::detail::soa {

#if defined(NBUF_SIMD_ENABLED) && NBUF_SIMD_ENABLED
#define NBUF_SIMD_PRAGMA _Pragma("omp simd")
inline constexpr bool kSimdCompiled = true;
#else
#define NBUF_SIMD_PRAGMA
inline constexpr bool kSimdCompiled = false;
#endif

// Double lanes of the widest vector unit this build targets; feeds the
// soa_full_lane_elems / soa_tail_elems utilization counters (a pure
// function of sweep lengths — identical at any thread count and in both
// simd modes).
inline constexpr std::size_t kSimdLanes =
#if defined(__AVX512F__)
    8;
#elif defined(__AVX__)
    4;
#elif defined(__SSE2__) || defined(__aarch64__) || defined(__ARM_NEON)
    2;
#else
    1;
#endif

// Runs f(0), ..., f(n-1): under the omp-simd pragma when the build compiled
// it AND the run asked for it, as a plain loop otherwise. f must be
// elementwise (see the header comment) — the pragma asserts independence.
template <class F>
inline void sweep(bool simd, std::size_t n, F&& f) {
  if (kSimdCompiled && simd) {
    NBUF_SIMD_PRAGMA
    for (std::size_t i = 0; i < n; ++i) f(i);
  } else {
    for (std::size_t i = 0; i < n; ++i) f(i);
  }
}

// One lazy wire offset materialized over a whole list: the reference
// kernel's exact per-candidate expressions (vanginneken.cpp extend_wire),
// elementwise over the lanes — the flagship SIMD sweep.
inline void apply_wire(SoAList& l, const double res, const double cap,
                       const double coupling, bool simd) {
  double* load = l.load();
  double* slack = l.slack();
  double* current = l.current();
  double* noise_slack = l.noise_slack();
  double* dhat = l.dhat();
  sweep(simd, l.size(), [=](std::size_t i) {
    const double wire_delay = res * (cap / 2.0 + load[i]);
    slack[i] -= wire_delay;
    dhat[i] += wire_delay;
    load[i] += cap;
    noise_slack[i] -= res * (coupling / 2.0 + current[i]);
    current[i] += coupling;
  });
}

struct PruneResult {
  std::size_t dead = 0;      // noise-dead candidates removed (NS < 0)
  std::size_t inferior = 0;  // (load, slack)-dominated candidates removed
  bool moved = false;        // whether any compaction ran
};

// The fused dead + Pareto prune over a cand_less-sorted list, the kernels'
// exact decision order per element — dead first, then the running-best-
// slack dominance test. Under noise constraints the alive mask comes from
// one elementwise (vectorizable) sweep over the noise_slack lane; the
// inherently sequential Pareto decision and the survivor compaction then
// run as ONE fused in-place scan — a survivor's six lane slots move
// together, and nothing moves at all until the first kill (the common case
// on converged lists — soa_prunes_no_move). `keep` is caller-owned scratch.
inline PruneResult prune_sweep(SoAList& l, bool noise, bool pareto,
                               bool simd, std::vector<unsigned char>& keep) {
  const std::size_t n = l.size();
  PruneResult r;
  if (n == 0 || (!noise && !pareto)) return r;
  const unsigned char* k = nullptr;
  if (noise) {
    keep.resize(n);
    unsigned char* kw = keep.data();
    const double* ns = l.noise_slack();
    sweep(simd, n, [=](std::size_t i) {
      kw[i] = ns[i] >= 0.0 ? 1 : 0;
    });
    k = kw;
  }
  double* load = l.load();
  double* slack = l.slack();
  double* current = l.current();
  double* noise_slack = l.noise_slack();
  double* dhat = l.dhat();
  PlanRef* plan = l.plan();
  double best = -std::numeric_limits<double>::infinity();
  std::size_t o = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (k != nullptr && k[i] == 0) {
      ++r.dead;
      continue;
    }
    if (pareto) {
      if (slack[i] <= best) {
        ++r.inferior;
        continue;
      }
      best = slack[i];
    }
    if (o != i) {
      load[o] = load[i];
      slack[o] = slack[i];
      current[o] = current[i];
      noise_slack[o] = noise_slack[i];
      dhat[o] = dhat[i];
      plan[o] = plan[i];
    }
    ++o;
  }
  if (o != n) {
    r.moved = true;
    l.set_size(o);
  }
  return r;
}

// Sequential skeleton of the Van Ginneken two-list merge: walks the two
// slack lanes with the reference kernel's exact advance rule (the side
// whose slack binds advances; both on an exact tie) and records the index
// pairs. The lane arithmetic is done afterwards by merge_fill.
inline std::size_t emit_pairs(const CandSpan& a, const CandSpan& b,
                              std::vector<std::uint32_t>& ia,
                              std::vector<std::uint32_t>& jb) {
  ia.clear();
  jb.clear();
  std::size_t i = 0, j = 0;
  while (i < a.n && j < b.n) {
    ia.push_back(static_cast<std::uint32_t>(i));
    jb.push_back(static_cast<std::uint32_t>(j));
    if (a.slack[i] < b.slack[j]) {
      ++i;
    } else if (b.slack[j] < a.slack[i]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return ia.size();
}

// Elementwise body of the merge: appends the m paired combinations to dst's
// value lanes as one gather sweep (sum / min / min / max — the reference
// kernel's exact expressions). The plan lane of the appended range is NOT
// filled here — arena allocation is sequential and stays with the caller.
inline void merge_fill(const CandSpan& a, const CandSpan& b,
                       const std::uint32_t* ia, const std::uint32_t* jb,
                       std::size_t m, SoAList& dst, bool simd) {
  const std::size_t base = dst.size();
  dst.reserve(base + m);
  dst.set_size(base + m);
  double* load = dst.load() + base;
  double* slack = dst.slack() + base;
  double* current = dst.current() + base;
  double* noise_slack = dst.noise_slack() + base;
  double* dhat = dst.dhat() + base;
  sweep(simd, m, [=](std::size_t o) {
    const std::uint32_t i = ia[o];
    const std::uint32_t j = jb[o];
    load[o] = a.load[i] + b.load[j];
    slack[o] = std::min(a.slack[i], b.slack[j]);
    current[o] = a.current[i] + b.current[j];
    noise_slack[o] = std::min(a.noise_slack[i], b.noise_slack[j]);
    dhat[o] = std::max(a.dhat[i], b.dhat[j]);
  });
}

// Reorders src by the index permutation `perm` into dst (cleared first) —
// one gather sweep per lane. The permutation machinery (sorts, cascaded
// run merges, tail merges) works on indices and pays this single gather
// instead of repeatedly moving 48-byte structs.
inline void gather(const SoAList& src, const std::uint32_t* perm,
                   std::size_t n, SoAList& dst, bool simd) {
  dst.clear();
  dst.reserve(n);
  dst.set_size(n);
  {
    const double* in = src.load();
    double* out = dst.load();
    sweep(simd, n, [=](std::size_t o) { out[o] = in[perm[o]]; });
  }
  {
    const double* in = src.slack();
    double* out = dst.slack();
    sweep(simd, n, [=](std::size_t o) { out[o] = in[perm[o]]; });
  }
  {
    const double* in = src.current();
    double* out = dst.current();
    sweep(simd, n, [=](std::size_t o) { out[o] = in[perm[o]]; });
  }
  {
    const double* in = src.noise_slack();
    double* out = dst.noise_slack();
    sweep(simd, n, [=](std::size_t o) { out[o] = in[perm[o]]; });
  }
  {
    const double* in = src.dhat();
    double* out = dst.dhat();
    sweep(simd, n, [=](std::size_t o) { out[o] = in[perm[o]]; });
  }
  {
    const PlanRef* in = src.plan();
    PlanRef* out = dst.plan();
    sweep(simd, n, [=](std::size_t o) { out[o] = in[perm[o]]; });
  }
}

}  // namespace nbuf::core::detail::soa
