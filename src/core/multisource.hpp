// Repeater insertion for multi-source nets (the Lillis, DAC 1997 extension
// the paper cites).
//
// A multi-source net (bidirectional bus, multi-driver control line)
// operates in modes: in each mode one terminal drives and all others
// receive. Repeaters are modeled as bidirectional (orientation-free): a
// placed repeater restores the signal travelling in whichever direction the
// active mode sends it, which is how such nets are buffered in practice
// (back-to-back tristate pairs).
//
// The optimizer guarantees noise correctness in EVERY mode by iterative
// per-mode repair on a segmented tree:
//   repeat until clean or round limit:
//     for each mode: re-root the tree at the mode's driver (rct::reroot),
//     decompose into stages under the current repeater set, and for each
//     stage with a noise violation run the noise-constrained Van Ginneken
//     DP on the extracted stage, merging the new repeaters back.
// Adding a restoring repeater only ever shortens stages in every
// orientation, so (with the strongest library type, as in Algorithms 1-2)
// progress is monotone and the loop terminates.
#pragma once

#include <optional>
#include <vector>

#include "core/vanginneken.hpp"
#include "noise/devgan.hpp"
#include "seg/segment.hpp"

namespace nbuf::core {

// One operating mode: `terminal` drives through `driver`. An invalid
// terminal id denotes the base mode (the tree's own source drives).
struct NetMode {
  rct::NodeId terminal;
  rct::Driver driver;
};

struct MultiSourceOptions {
  // Pin seen at the original source terminal when some other mode drives.
  rct::SinkInfo source_as_sink;
  // Repeater type; defaults to the smallest-resistance non-inverting type.
  std::optional<lib::BufferId> repeater;
  double segment_length = 500.0;  // µm
  std::size_t max_rounds = 8;
};

struct MultiSourceResult {
  rct::RoutingTree tree;  // segmented base-orientation tree
  rct::BufferAssignment repeaters;  // on `tree`
  bool feasible = false;            // all modes noise-clean
  std::size_t rounds = 0;
  std::vector<double> mode_worst_slack;  // final, per mode (volt)
};

// Per-mode noise analysis of a given repeater set (exposed for tests and
// reporting). Mode order matches `modes`.
[[nodiscard]] std::vector<noise::NoiseReport> analyze_modes(
    const rct::RoutingTree& tree, const rct::BufferAssignment& repeaters,
    const lib::BufferLibrary& lib, const std::vector<NetMode>& modes,
    const rct::SinkInfo& source_as_sink);

// Finds a repeater set that is noise-clean in every mode. `modes` must
// include the base mode (invalid terminal) if the original source can
// drive.
[[nodiscard]] MultiSourceResult optimize_multisource(
    const rct::RoutingTree& input, const lib::BufferLibrary& lib,
    const std::vector<NetMode>& modes, const MultiSourceOptions& options);

}  // namespace nbuf::core
