// Analytic results of Section III-A: Theorem 1 (maximum unbuffered wire
// length), its per-unit-capacitance form (eq. 16), and the required
// aggressor separation distance (eq. 17).
#pragma once

#include <optional>

namespace nbuf::core {

// Devgan noise at the bottom of a uniform wire of length L (µm) with
// per-unit resistance r (ohm/µm) and per-unit injected current i (A/µm),
// driven by a gate of resistance R_drv (ohm), above a subtree carrying
// downstream current I (A):
//   noise(L) = R_drv*(i*L + I) + r*L*(i*L/2 + I)
[[nodiscard]] double uniform_wire_noise(double r_drv, double r_per_um,
                                        double i_per_um, double length,
                                        double i_downstream);

// Theorem 1: the longest wire the buffer can drive without the noise at the
// wire's bottom exceeding the noise slack NS (volt) there. Returns nullopt
// when NS < R_drv * I (too late: a buffer was needed strictly below), and
// +infinity when nothing limits the length (zero injected current and zero
// downstream current).
[[nodiscard]] std::optional<double> critical_length(double r_drv,
                                                    double r_per_um,
                                                    double i_per_um,
                                                    double noise_slack,
                                                    double i_downstream);

// Eq. 16 form: injected current expressed through the coupling ratio,
// i = lambda * c * mu with c in F/µm and mu in V/s.
[[nodiscard]] std::optional<double> critical_length_coupling(
    double r_drv, double r_per_um, double c_per_um, double lambda, double mu,
    double noise_slack, double i_downstream);

// Eq. 17: minimum aggressor separation distance for a wire of length L to
// be noise-clean, under the geometric coupling model lambda(d) = K / d.
// Returns nullopt when the resistive terms alone already violate the slack
// (no separation can help).
[[nodiscard]] std::optional<double> required_separation(
    double r_drv, double r_per_um, double c_per_um, double coupling_k,
    double mu, double noise_slack, double i_downstream, double length);

}  // namespace nbuf::core
