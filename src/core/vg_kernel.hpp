// Internal pieces shared by the two Van Ginneken DP kernels
// (core/vanginneken.cpp holds the reference kernel and the common driver
// fold; core/vanginneken_fast.cpp holds the default fast kernel). Not part
// of the public API — include core/vanginneken.hpp instead.
#pragma once

#include <array>
#include <chrono>
#include <vector>

#include "core/plan.hpp"
#include "core/vanginneken.hpp"
#include "lib/buffer.hpp"
#include "rct/tree.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace nbuf::core::detail {

// Accumulates wall time into `*sink` on destruction; no-op when `sink` is
// null (stats collection off), so the default path never reads the clock.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink) : sink_(sink) {
    if (sink_) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (sink_)
      *sink_ += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

struct VgCand {
  double load = 0.0;         // C — downstream capacitance
  double slack = 0.0;        // q — timing slack
  double current = 0.0;      // I — downstream coupling current
  double noise_slack = 0.0;  // NS
  double dhat = 0.0;         // max wire Elmore delay from here to any leaf
                             // of the current stage (for slew checks)
  const PlanCell* plan = nullptr;
};

using CandList = std::vector<VgCand>;

// Candidate lists of one node: [phase][buffer count]. phase 0 = signal at
// this node must be in the source's polarity, phase 1 = inverted.
struct NodeLists {
  std::array<std::vector<CandList>, 2> by_phase;

  // Candidate count across all buckets (trace-span tags).
  [[nodiscard]] std::size_t total_size() const noexcept {
    std::size_t n = 0;
    for (const auto& phase_lists : by_phase)
      for (const CandList& list : phase_lists) n += list.size();
    return n;
  }
};

// The prune order of both kernels: load ascending, slack descending on
// ties, so the first candidate of an equal-load run carries the best slack.
inline bool cand_less(const VgCand& a, const VgCand& b) {
  if (a.load != b.load) return a.load < b.load;
  return a.slack > b.slack;
}

// Full structural verification of one post-prune candidate list — the
// checks that used to live only in tests/test_vg_kernel, promoted into the
// library so every build at contract level 2 (and every caller that sets
// VgOptions::check_invariants) re-proves them after each DP step:
//   * sorted by cand_less — (load asc, slack desc) — the invariant both
//     Algorithm 2's pruning and the fast kernel's sort-free scans rest on;
//   * a strict Pareto staircase (loads AND slacks strictly ascend) when
//     dominance pruning is on;
//   * no dead candidate (noise slack < 0) when noise constraints are on.
// O(n) per call; throws std::logic_error (NBUF_ASSERT) on violation.
void verify_cand_list(const CandList& list, const VgOptions& opt);

// True when the kernels should call verify_cand_list after each step:
// requested explicitly, or the build carries full structural checks
// (NBUF_CONTRACTS=2 — the default for Debug and sanitizer builds).
inline bool verify_lists_enabled(const VgOptions& opt) {
  return NBUF_STRUCTURAL_CHECKS != 0 || opt.check_invariants;
}

// Driver fold (Fig. 10 Steps 2-4) and objective selection, shared verbatim
// by both kernels so a kernel difference can only come from the DP itself.
VgResult finalize(const NodeLists& at_source, const rct::RoutingTree& tree,
                  const VgOptions& opt, const util::VgStats& stats);

// Entry point of the fast kernel (vanginneken_fast.cpp); preconditions are
// checked by core::optimize.
VgResult run_fast_kernel(const rct::RoutingTree& tree,
                         const lib::BufferLibrary& lib, const VgOptions& opt);

}  // namespace nbuf::core::detail
