// Internal pieces shared by the two Van Ginneken DP kernels
// (core/vanginneken.cpp holds the reference kernel and the common driver
// fold; core/vanginneken_fast.cpp holds the default fast kernel). Not part
// of the public API — include core/vanginneken.hpp instead.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <vector>

#include "core/plan.hpp"
#include "core/soa.hpp"
#include "core/vanginneken.hpp"
#include "lib/buffer.hpp"
#include "rct/tree.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace nbuf::core::detail {

// Accumulates wall time into `*sink` on destruction; no-op when `sink` is
// null (stats collection off), so the default path never reads the clock.
// The clock reads feed VgStats phase timers only — stats output, never a
// DP decision (docs/quality.md "wallclock-in-core" policy).
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink) : sink_(sink) {
    if (sink_) start_ = std::chrono::steady_clock::now();  // nbuf-lint: allow(wallclock-in-core)
  }
  ~PhaseTimer() {
    if (sink_)
      *sink_ += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)  // nbuf-lint: allow(wallclock-in-core)
                    .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

struct VgCand {
  double load = 0.0;         // C — downstream capacitance
  double slack = 0.0;        // q — timing slack
  double current = 0.0;      // I — downstream coupling current
  double noise_slack = 0.0;  // NS
  double dhat = 0.0;         // max wire Elmore delay from here to any leaf
                             // of the current stage (for slew checks)
  const PlanCell* plan = nullptr;
};

using CandList = std::vector<VgCand>;

// Candidate lists of one node: [phase][buffer count]. phase 0 = signal at
// this node must be in the source's polarity, phase 1 = inverted.
struct NodeLists {
  std::array<std::vector<CandList>, 2> by_phase;

  // Candidate count across all buckets (trace-span tags).
  [[nodiscard]] std::size_t total_size() const noexcept {
    std::size_t n = 0;
    for (const auto& phase_lists : by_phase)
      for (const CandList& list : phase_lists) n += list.size();
    return n;
  }
};

// Content comparison of two solution DAGs, three-way (-1/0/+1). Pointer
// equality short-circuits shared structure (candidates in one list mostly
// share deep prefixes); otherwise cells compare by kind, payload, then
// predecessors. Used only to break exact (load, slack) ties in cand_less,
// so the traversal almost never runs and never runs deep.
inline int plan_compare(const PlanCell* a, const PlanCell* b) {
  if (a == b) return 0;  // same arena cell: identical content
  if (a == nullptr) return -1;
  if (b == nullptr) return 1;
  if (a->kind != b->kind) return a->kind < b->kind ? -1 : 1;
  switch (a->kind) {
    case PlanCell::Kind::Buffer: {
      const PlannedBuffer& pa = a->placement;
      const PlannedBuffer& pb = b->placement;
      if (pa.node != pb.node) return pa.node < pb.node ? -1 : 1;
      if (pa.dist_above != pb.dist_above)
        return pa.dist_above < pb.dist_above ? -1 : 1;
      if (pa.type != pb.type) return pa.type < pb.type ? -1 : 1;
      break;
    }
    case PlanCell::Kind::Wire: {
      if (a->wire.node != b->wire.node)
        return a->wire.node < b->wire.node ? -1 : 1;
      if (a->wire.width != b->wire.width)
        return a->wire.width < b->wire.width ? -1 : 1;
      break;
    }
    case PlanCell::Kind::Merge: {
      const int right = plan_compare(a->b, b->b);
      if (right != 0) return right;
      break;
    }
  }
  return plan_compare(a->a, b->a);
}

// The prune order of both kernels: load ascending, slack descending on
// ties. The remaining fields make the order TOTAL: exact (load, slack)
// ties genuinely occur (uniform 500 µm segmentation gives symmetric
// placements bit-identical keys), and with only a partial order each
// kernel's unstable sort could keep a different survivor of the tied run —
// breaking Fast-vs-Reference bit-identity of the reported plans. Ties
// prefer the more robust candidate (higher noise slack, lower coupling
// current, lower stage delay) and fall back to plan content, which two
// distinct candidates cannot share.
inline bool cand_less(const VgCand& a, const VgCand& b) {
  if (a.load != b.load) return a.load < b.load;
  if (a.slack != b.slack) return a.slack > b.slack;
  if (a.noise_slack != b.noise_slack) return a.noise_slack > b.noise_slack;
  if (a.current != b.current) return a.current < b.current;
  if (a.dhat != b.dhat) return a.dhat < b.dhat;
  return plan_compare(a.plan, b.plan) < 0;
}

// cand_less over SoA lanes (fast kernel): the same total order, reading one
// field lane at a time; plan ties resolve by content through the arena's
// cells, exactly as the AoS form. The two-span form compares element i of
// span `a` with element j of span `b` (the in-place tail merge reads the
// buffered tail and the prefix from different storage).
inline bool soa_cand_less(const CandSpan& a, std::size_t i, const CandSpan& b,
                          std::size_t j, const PlanArena& arena) {
  if (a.load[i] != b.load[j]) return a.load[i] < b.load[j];
  if (a.slack[i] != b.slack[j]) return a.slack[i] > b.slack[j];
  if (a.noise_slack[i] != b.noise_slack[j])
    return a.noise_slack[i] > b.noise_slack[j];
  if (a.current[i] != b.current[j]) return a.current[i] < b.current[j];
  if (a.dhat[i] != b.dhat[j]) return a.dhat[i] < b.dhat[j];
  return plan_compare(arena.cell(a.plan[i]), arena.cell(b.plan[j])) < 0;
}

inline bool soa_cand_less(const CandSpan& s, std::size_t i, std::size_t j,
                          const PlanArena& arena) {
  return soa_cand_less(s, i, s, j, arena);
}

// True when a would-be candidate (load, slack) is dominated by a pruned
// staircase view: some view entry has load <= `load` and slack >= `slack`.
// Such a candidate is removed as inferior by the very next prune no matter
// what else reaches that bucket (its dominator — or whatever pruned the
// dominator — keeps the running best slack at or above `slack` when the
// scan arrives), so both kernels skip materializing it and book it as
// generated-then-pruned directly. A staircase has strictly increasing
// loads AND slacks, so the only possible dominator is the last entry with
// load <= `load`; one binary search decides. Only valid under
// VgOptions::prune_candidates — without dominance pruning nothing may be
// dropped.
[[nodiscard]] inline bool dominated_by_staircase(const VgCand* view,
                                                 std::size_t n, double load,
                                                 double slack) {
  std::size_t lo = 0, hi = n;  // lower_bound: first entry with load > `load`
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (view[mid].load <= load) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo > 0 && view[lo - 1].slack >= slack;
}

// Lane form of the same dominance test, for the fast kernel's SoA lists:
// the staircase view is the first `n` entries of the load and slack lanes.
[[nodiscard]] inline bool dominated_by_staircase(const double* loads,
                                                 const double* slacks,
                                                 std::size_t n, double load,
                                                 double slack) {
  std::size_t lo = 0, hi = n;  // lower_bound: first entry with load > `load`
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (loads[mid] <= load) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo > 0 && slacks[lo - 1] >= slack;
}

// Full structural verification of one post-prune candidate list — the
// checks that used to live only in tests/test_vg_kernel, promoted into the
// library so every build at contract level 2 (and every caller that sets
// VgOptions::check_invariants) re-proves them after each DP step:
//   * sorted by cand_less — (load asc, slack desc) — the invariant both
//     Algorithm 2's pruning and the fast kernel's sort-free scans rest on;
//   * a strict Pareto staircase (loads AND slacks strictly ascend) when
//     dominance pruning is on;
//   * no dead candidate (noise slack < 0) when noise constraints are on.
// O(n) per call; throws std::logic_error (NBUF_ASSERT) on violation.
void verify_cand_list(const CandList& list, const VgOptions& opt);

// The same verification over an SoA view (fast kernel): sorted by
// soa_cand_less, strict Pareto staircase under dominance pruning, no dead
// candidate under noise constraints. The arena resolves plan ties.
void verify_cand_list(const CandSpan& view, const VgOptions& opt,
                      const PlanArena& arena);

// True when the kernels should call verify_cand_list after each step:
// requested explicitly, or the build carries full structural checks
// (NBUF_CONTRACTS=2 — the default for Debug and sanitizer builds).
inline bool verify_lists_enabled(const VgOptions& opt) {
  return NBUF_STRUCTURAL_CHECKS != 0 || opt.check_invariants;
}

// Buffer-type walk order of the best-predecessor structure: type positions
// sorted by output resistance descending (ties keep id order). Built once
// per DP run; BestPredecessors::select must be queried in this order so
// each candidate's feasible types form a suffix of the walk and group
// activation only ever grows.
struct TypeOrder {
  std::vector<lib::BufferId> ids;  // position -> library id

  [[nodiscard]] static TypeOrder make(const lib::BufferLibrary& lib);
};

// Best-predecessor selection of the multi-type insertion step. For buffer
// type t with output resistance R the best predecessor in a bucket
// maximizes q = s − D_t − R·C over the bucket's candidates, first index
// wins exact ties — the reference kernel's naive scan. prepare() hoists
// everything about that scan that is bit-exactly precomputable: with
// noise/slew constraints on, each candidate's feasible types form a SUFFIX
// of the R-descending walk order (both thresholds are products monotone in
// R under IEEE rounding), so one binary search per candidate finds its
// first feasible position and a counting sort groups candidates by it.
// Candidates feasible for no type are dropped outright (killed()).
// select_all() then answers EVERY type's query in one candidate-major
// pass: each candidate's lanes are read once and update one accumulator
// per type in its feasible suffix — no per-candidate predicate ever runs
// again, no per-type re-walk of the staircase, and the accumulator update
// is branch-light (the running best changes only O(log m) times per type
// on typical staircases).
//
// An earlier version of this structure also kept, per group, the upper
// convex hull of the (load, slack) points and answered queries by a
// monotone pointer walk — O(m + b) per bucket instead of the scan's
// O(b·m). In exact arithmetic the argmax always lies on that hull and the
// walk's first-of-plateau stop reproduces the scan's first-wins tie-break.
// Under IEEE rounding it does not: two predecessors' q values can round to
// the SAME bits while only one of them sits on the hull (or while the
// pointer already passed the earlier one), and the scan then keeps a
// candidate the walk cannot see — a real plan divergence found by the
// tests/test_soa_kernel.cpp differential fuzz (DelayOpt, 64-type library:
// bit-equal q, different predecessor, different final plan). The walk was
// therefore retired: select_all() evaluates the reference's exact q
// expression for every feasible (candidate, type) pair and keeps, per
// type, the minimum index among bit-equal maxima. That is the reference's
// first-wins result restated order-independently — so the candidate-major
// visit order (groups back to back, indices interleaving across groups)
// cannot change any choice — and it costs the same O(b·m) element visits
// as the reference scan, just arranged so each candidate's lanes are
// loaded once instead of once per type.
class BestPredecessors {
 public:
  // Builds the structure over the candidates of `view` (an SoA lane view,
  // SoAList::span), which must form a pruned Pareto staircase in cand_less
  // order. The view's lanes must stay valid until the next prepare().
  void prepare(const CandSpan& view, const VgOptions& opt,
               const lib::BufferLibrary& lib, const TypeOrder& order);

  struct Choice {
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::size_t idx = kNone;  // best predecessor's index into the prepared
                              // view; kNone if none is feasible
    double q = 0.0;           // its resulting slack for this type
  };
  // Fills `out[pos]` with the candidate the naive scan would pick for the
  // type at walk position `pos`, for every position at once (one
  // candidate-major pass; out is sized to the walk length).
  void select_all(const lib::BufferLibrary& lib, const TypeOrder& order,
                  std::vector<Choice>& out);

  // Candidates of the last prepare() that can never be any type's best
  // predecessor: infeasible (noise/slew) for every type in the library.
  [[nodiscard]] std::size_t killed() const noexcept { return killed_; }

 private:
  struct Group {
    std::size_t first_type = 0;  // t_min shared by the group's candidates
    std::size_t begin = 0;       // [begin, end) into sorted_
    std::size_t end = 0;
  };

  CandSpan view_;               // lanes of the last prepare()
  std::vector<Group> groups_;   // ascending first_type
  std::size_t killed_ = 0;
  std::vector<std::size_t> tmin_;    // scratch: per-candidate first type
  std::vector<std::size_t> counts_;  // scratch: counting-sort offsets
  std::vector<std::size_t> sorted_;  // candidates grouped by tmin, index
                                     // ascending within each group
  std::vector<double> res_;          // per-walk-pos output resistance
  std::vector<double> delay_;        // per-walk-pos intrinsic delay
  std::vector<double> best_q_;       // select_all accumulators
  std::vector<std::size_t> best_i_;  // (running q max / its min index)
};

// Per-node memo of the reference DP: lists[v] caches the NodeLists that
// process(v) returned (post insert_buffers — the exact value a cold run
// computes), valid[v] says whether the cache may be served. Because the DP
// state of a subtree is a pure function of that subtree, serving a cached
// list is bit-identical to recomputing it as long as the subtree is
// untouched — the foundation of core::IncrementalContext. Plans inside
// cached candidates point into the arena the caching run used, so that
// arena must outlive the cache.
struct SubtreeCache {
  std::vector<NodeLists> lists;  // by node id
  std::vector<char> valid;       // by node id
  // Per-run tallies (reset by ReferenceDp::run): subtrees served from the
  // cache vs recomputed. Deterministic — a pure function of the dirty set.
  std::size_t reused = 0;
  std::size_t recomputed = 0;

  void ensure_size(std::size_t n) {
    if (lists.size() < n) lists.resize(n);
    if (valid.size() < n) valid.resize(n, 0);
  }
  void invalidate(rct::NodeId v) {
    if (v.value() < valid.size()) valid[v.value()] = 0;
  }
  void invalidate_all() { std::fill(valid.begin(), valid.end(), 0); }
};

// The reference (seed) DP, promoted out of vanginneken.cpp's anonymous
// namespace so it can run in two modes:
//   * one-shot (cache == nullptr, own arena) — the VgKernel::Reference
//     oracle path of core::optimize, exactly the historic VgRun;
//   * memoized (external cache + arena) — core::IncrementalContext re-runs
//     it after perturbations and only the invalidated spine recomputes.
// Results are bit-identical between the modes (and to the fast kernel,
// per the PR2/PR6 contract): cached lists hold the same candidate values a
// cold run would build, cand_less ties resolve by plan CONTENT (not
// pointer), and finalize() reads only the source lists.
class ReferenceDp {
 public:
  ReferenceDp(const rct::RoutingTree& tree, const lib::BufferLibrary& lib,
              const VgOptions& opt, PlanArena& arena,
              SubtreeCache* cache = nullptr)
      : tree_(tree), lib_(lib), opt_(opt), arena_(arena), cache_(cache) {
    stats_.lib_types = lib_.size();
  }

  VgResult run();

 private:
  NodeLists process(rct::NodeId v);
  NodeLists compute(rct::NodeId v);
  void prune(CandList& list);
  void extend_wire(NodeLists& lists, rct::NodeId child);
  void insert_buffers(NodeLists& lists, rct::NodeId v);
  NodeLists merge(const NodeLists& l, const NodeLists& r);
  void note_created(std::size_t n) { stats_.candidates_generated += n; }
  [[nodiscard]] double* timed(double util::VgStats::*field) {
    return opt_.collect_stats ? &(stats_.*field) : nullptr;
  }

  const rct::RoutingTree& tree_;
  const lib::BufferLibrary& lib_;
  const VgOptions& opt_;
  PlanArena& arena_;
  SubtreeCache* cache_;
  util::VgStats stats_;
};

// Driver fold (Fig. 10 Steps 2-4) and objective selection, shared verbatim
// by both kernels so a kernel difference can only come from the DP itself.
VgResult finalize(const NodeLists& at_source, const rct::RoutingTree& tree,
                  const VgOptions& opt, const util::VgStats& stats);

// Entry point of the fast kernel (vanginneken_fast.cpp); preconditions are
// checked by core::optimize.
VgResult run_fast_kernel(const rct::RoutingTree& tree,
                         const lib::BufferLibrary& lib, const VgOptions& opt);

}  // namespace nbuf::core::detail
