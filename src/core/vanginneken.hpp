// Van Ginneken dynamic programming with the paper's extensions:
//
//  * multi-type buffer libraries with inverting + non-inverting buffers and
//    signal-polarity tracking (Lillis/Cheng/Lin);
//  * candidate lists indexed by the number of inserted buffers (Lillis),
//    giving the delay-optimal solution for EVERY buffer count k — this is
//    what lets the paper run DelayOpt(k) and solve Problem 3;
//  * noise avoidance (Algorithm 3 / BuffOpt, Figs. 10-11): candidates carry
//    (I, NS) alongside (C, q); a buffer or the driver is never committed
//    onto a candidate whose noise R_g * I exceeds its noise slack NS, and
//    candidates whose NS went negative are dead (no future gate can accept
//    them) and are pruned — the reason BuffOpt explores FEWER candidates
//    than DelayOpt.
//
// With noise_constraints = false this is exactly the DelayOpt baseline of
// Section V. Pruning is by (load, slack) only, as in the paper (Step 7);
// Theorem 5 shows this never discards the optimum for a single-type
// library.
#pragma once

#include <limits>
#include <vector>

#include "core/plan.hpp"
#include "lib/buffer.hpp"
#include "lib/wire.hpp"
#include "rct/assignment.hpp"
#include "rct/tree.hpp"
#include "util/stats.hpp"

namespace nbuf::core {

enum class VgObjective {
  // Problem 2: maximize the slack q(so) subject to noise feasibility.
  MaxSlack,
  // Problem 3: fewest buffers such that noise is clean and timing is met
  // (slack >= 0); secondarily maximize slack.
  MinBuffersMeetingConstraints,
};

// Which DP inner-loop implementation runs. Both produce bit-identical
// VgResults (same pruning semantics, same tie-break order); the fast kernel
// is the default and the reference kernel is retained as the differential-
// test oracle (tests/test_vg_kernel) and for A/B timing (bench/figI).
enum class VgKernel {
  // Li & Shi-style kernel: candidate lists keep the (load asc, slack desc)
  // sort invariant across wire extension, merge, and buffer insertion, so
  // pruning is one linear scan (std::sort only runs when the invariant is
  // genuinely broken, i.e. the wire-sizing fork path); unsized wire
  // extension is recorded as a per-node lazy offset and materialized fused
  // with the next prune; buffer insertion reads per-bucket views instead of
  // deep-copying the lists; candidate-list buffers are pooled per run.
  Fast,
  // The original seed implementation: re-sorts every list on every prune
  // and snapshots all lists at each buffer-insertion node.
  Reference,
};

// Runtime dispatch of the fast kernel's vectorized SoA sweeps
// (core/soa_sweeps.hpp). Auto runs the `#pragma omp simd` sweep bodies when
// the build compiled them (CMake NBUF_SIMD=auto with a compiler supporting
// -fopenmp-simd); Off forces the scalar fallback. Results are bit-identical
// either way — every pragma'd loop is strictly elementwise and the kernel
// TUs pin -ffp-contract=off — pinned by tests/test_soa_kernel's
// scalar-vs-SIMD self-differential, so this is a measurement/ablation knob
// (bench/figM_soa_ablation), not a semantics switch.
enum class SimdMode {
  Auto,
  Off,
};

// Whether this build compiled the vector sweep bodies (NBUF_SIMD resolved
// to enabled). When false, SimdMode::Auto and SimdMode::Off run the same
// scalar code — benches report it so an ablation row of 1.0x is readable.
[[nodiscard]] bool simd_compiled() noexcept;

struct VgOptions {
  bool noise_constraints = true;   // true = BuffOpt, false = DelayOpt
  std::size_t max_buffers = 24;    // k cap for the count-indexed lists
  VgObjective objective = VgObjective::MaxSlack;
  // Ablation knob: disable (load, slack) dominance pruning (Step 7). The
  // result is unchanged — pruning is provably safe — but candidate lists
  // grow; bench/ablA_pruning measures by how much.
  bool prune_candidates = true;
  // Simultaneous wire sizing (Lillis et al.): when non-empty, every wire is
  // additionally assigned one of these widths during the same DP. Width 0
  // must be the base wire; leave empty to disable.
  lib::WireWidthLibrary wire_widths;
  // Maximum allowed 10-90% transition time at any gate input (second), per
  // the single-pole estimate of elmore/slew.hpp. Buffers and the driver are
  // never committed onto a candidate whose worst downstream leaf would see
  // a slower edge; infinity disables the constraint. Like the paper's noise
  // extension, (load, slack) pruning is kept unchanged, so with multiple
  // buffer types the result is guaranteed feasible but only near-optimal.
  double max_slew = std::numeric_limits<double>::infinity();
  // The Lillis "power function" generalization: candidate lists are indexed
  // by total inserted COST rather than count. When non-empty it must have
  // one positive integer entry per library type (e.g. gate area in unit
  // cells); empty means every buffer costs 1, i.e. plain buffer counting.
  // MinBuffersMeetingConstraints then minimizes total cost, and
  // `max_buffers` caps total cost.
  std::vector<std::size_t> buffer_costs;
  // Additionally measure per-phase wall time into VgResult::stats (the
  // counters in there are always exact; only the clock reads are opt-in).
  bool collect_stats = false;
  // DP inner-loop implementation; results are identical either way.
  VgKernel kernel = VgKernel::Fast;
  // Vector-vs-scalar dispatch of the fast kernel's SoA sweeps; results are
  // identical either way (see the SimdMode comment). Ignored by the
  // reference kernel.
  SimdMode simd = SimdMode::Auto;
  // Both kernels re-verify the sort/Pareto/no-dead-candidate invariants of
  // every candidate list after each DP step (detail::verify_cand_list) and
  // throw on violation. O(k) per step. Runs when this is set OR when the
  // build carries full structural contracts (NBUF_CONTRACTS=2, the default
  // for Debug and sanitizer builds — see docs/quality.md).
  bool check_invariants = false;
};

// The best solution of exactly this total cost (= buffer count when no
// buffer_costs are configured).
struct CountBest {
  std::size_t count = 0;
  double slack = 0.0;       // q at the source output
  double noise_slack = 0.0; // NS at the source minus driver noise
  bool noise_ok = false;    // driver noise check passed
  std::vector<PlannedBuffer> plan;
  std::vector<PlannedWire> wires;  // non-base width choices (sizing mode)
};

struct VgResult {
  // True when the chosen solution satisfies every noise constraint (always
  // reported true in DelayOpt mode, where noise is not checked).
  bool feasible = false;
  // True when additionally slack >= 0 (timing met) — relevant to Problem 3.
  bool timing_met = false;
  rct::BufferAssignment buffers;
  std::size_t buffer_count = 0;
  // Chosen non-base wire widths (empty unless sizing was enabled).
  std::vector<PlannedWire> wire_widths;
  double slack = 0.0;
  std::vector<CountBest> per_count;  // ascending by count; only counts that
                                     // produced any candidate appear
  // Ablation counters (legacy aliases of the fields in `stats`, kept for
  // the existing benches: created = stats.candidates_generated, max list =
  // stats.peak_list_size, noise pruned = stats.pruned_infeasible).
  std::size_t candidates_created = 0;
  std::size_t max_list_size = 0;
  std::size_t candidates_noise_pruned = 0;
  // Full DP-efficiency counter block (Li & Shi lens); wall times are filled
  // only when VgOptions::collect_stats is set.
  util::VgStats stats;
};

// Runs the DP on `tree` (must be binary; run seg::segment first to create
// buffer sites). The returned assignment places buffers on existing
// buffer-allowed internal nodes only.
[[nodiscard]] VgResult optimize(const rct::RoutingTree& tree,
                                const lib::BufferLibrary& lib,
                                const VgOptions& options = {});

// Applies the chosen solution of `result` onto a copy of `tree`.
[[nodiscard]] rct::BufferAssignment assignment_for(
    const std::vector<PlannedBuffer>& plan);

// Rewrites the electrical values of the chosen wires in `tree` per the
// width library (length is preserved; R, C and coupling current scale).
void apply_wire_widths(rct::RoutingTree& tree,
                       const std::vector<PlannedWire>& choices,
                       const lib::WireWidthLibrary& widths);

}  // namespace nbuf::core
