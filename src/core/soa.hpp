// Structure-of-arrays candidate storage for the fast Van Ginneken kernel.
//
// The fast kernel's hot loops — the fused dead+Pareto prune, the lazy
// wire-offset flush, and the bucket-major merge — each stream over ONE
// field of every candidate at a time. The pooled AoS lists
// (std::vector<VgCand>, 48-byte elements) made every such sweep strided;
// an SoAList stores each DP field in its own contiguous lane inside one
// 64-byte-aligned heap block:
//
//   [ load | slack | current | noise_slack | dhat | plan(PlanRef, u32) ]
//
// with every lane start rounded up to the 64-byte alignment, so the sweeps
// of core/soa_sweeps.hpp are unit-stride, branch-light, and vectorizable.
// Blocks are recycled whole through SoAPool — the SoA replacement of the
// per-candidate-list VectorPool — so steady-state DP makes no allocator
// calls. CandSpan is the read view the best-predecessor structure and the
// structural verifiers consume.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>  // nbuf-lint: allow(naked-new)
#include <utility>
#include <vector>

#include "core/plan.hpp"
#include "util/contracts.hpp"

namespace nbuf::core {

// Read-only lane view over the first `n` candidates of an SoAList (or any
// equivalent lane layout). Plain pointers, no ownership.
struct CandSpan {
  const double* load = nullptr;
  const double* slack = nullptr;
  const double* current = nullptr;
  const double* noise_slack = nullptr;
  const double* dhat = nullptr;
  const PlanRef* plan = nullptr;
  std::size_t n = 0;
};

class SoAList {
 public:
  static constexpr std::size_t kAlign = 64;  // cache line / widest vector

  SoAList() = default;
  SoAList(SoAList&& o) noexcept { swap(o); }
  SoAList& operator=(SoAList&& o) noexcept {
    if (this != &o) {
      destroy();
      swap(o);
    }
    return *this;
  }
  SoAList(const SoAList&) = delete;
  SoAList& operator=(const SoAList&) = delete;
  ~SoAList() { destroy(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  void clear() noexcept { size_ = 0; }

  [[nodiscard]] double* load() noexcept { return load_; }
  [[nodiscard]] double* slack() noexcept { return slack_; }
  [[nodiscard]] double* current() noexcept { return current_; }
  [[nodiscard]] double* noise_slack() noexcept { return noise_slack_; }
  [[nodiscard]] double* dhat() noexcept { return dhat_; }
  [[nodiscard]] PlanRef* plan() noexcept { return plan_; }
  [[nodiscard]] const double* load() const noexcept { return load_; }
  [[nodiscard]] const double* slack() const noexcept { return slack_; }
  [[nodiscard]] const double* current() const noexcept { return current_; }
  [[nodiscard]] const double* noise_slack() const noexcept {
    return noise_slack_;
  }
  [[nodiscard]] const double* dhat() const noexcept { return dhat_; }
  [[nodiscard]] const PlanRef* plan() const noexcept { return plan_; }

  [[nodiscard]] CandSpan span() const noexcept { return span(size_); }
  // The prefix view of the first n candidates (buffer insertion's read
  // views: appends only ever push beyond a remembered prefix size).
  [[nodiscard]] CandSpan span(std::size_t n) const noexcept {
    NBUF_ASSERT(n <= size_);
    return CandSpan{load_, slack_, current_, noise_slack_, dhat_, plan_, n};
  }

  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }

  // Sets the size directly after filling lanes through the raw pointers
  // (merge/gather sweeps write whole ranges at once); never grows.
  void set_size(std::size_t n) noexcept {
    NBUF_ASSERT(n <= capacity_);
    size_ = n;
  }

  void push_back(double load, double slack, double current,
                 double noise_slack, double dhat, PlanRef plan) {
    if (size_ == capacity_) grow(capacity_ < 4 ? 8 : capacity_ * 2);
    load_[size_] = load;
    slack_[size_] = slack;
    current_[size_] = current;
    noise_slack_[size_] = noise_slack;
    dhat_[size_] = dhat;
    plan_[size_] = plan;
    ++size_;
  }

  void swap(SoAList& o) noexcept {
    std::swap(block_, o.block_);
    std::swap(load_, o.load_);
    std::swap(slack_, o.slack_);
    std::swap(current_, o.current_);
    std::swap(noise_slack_, o.noise_slack_);
    std::swap(dhat_, o.dhat_);
    std::swap(plan_, o.plan_);
    std::swap(size_, o.size_);
    std::swap(capacity_, o.capacity_);
  }

 private:
  static std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + kAlign - 1) / kAlign * kAlign;
  }
  // One block, six lanes; each lane stride is a multiple of kAlign so
  // every lane starts on an aligned boundary.
  static std::size_t block_bytes(std::size_t cap) noexcept {
    return 5 * round_up(cap * sizeof(double)) +
           round_up(cap * sizeof(PlanRef));
  }

  void grow(std::size_t cap) {
    // SoAList IS the owning RAII wrapper: no std container hands out one
    // 64-byte-aligned block carved into typed lanes.
    auto* block = static_cast<unsigned char*>(::operator new(  // nbuf-lint: allow(naked-new)
        block_bytes(cap), std::align_val_t{kAlign}));
    const std::size_t stride = round_up(cap * sizeof(double));
    auto* load = reinterpret_cast<double*>(block);
    auto* slack = reinterpret_cast<double*>(block + stride);
    auto* current = reinterpret_cast<double*>(block + 2 * stride);
    auto* noise_slack = reinterpret_cast<double*>(block + 3 * stride);
    auto* dhat = reinterpret_cast<double*>(block + 4 * stride);
    auto* plan = reinterpret_cast<PlanRef*>(block + 5 * stride);
    if (size_ > 0) {
      std::memcpy(load, load_, size_ * sizeof(double));
      std::memcpy(slack, slack_, size_ * sizeof(double));
      std::memcpy(current, current_, size_ * sizeof(double));
      std::memcpy(noise_slack, noise_slack_, size_ * sizeof(double));
      std::memcpy(dhat, dhat_, size_ * sizeof(double));
      std::memcpy(plan, plan_, size_ * sizeof(PlanRef));
    }
    destroy_block();
    block_ = block;
    load_ = load;
    slack_ = slack;
    current_ = current;
    noise_slack_ = noise_slack;
    dhat_ = dhat;
    plan_ = plan;
    capacity_ = cap;
  }

  void destroy_block() noexcept {
    if (block_ != nullptr)
      ::operator delete(block_, std::align_val_t{kAlign});  // nbuf-lint: allow(naked-new)
  }
  void destroy() noexcept {
    destroy_block();
    block_ = nullptr;
    load_ = slack_ = current_ = noise_slack_ = dhat_ = nullptr;
    plan_ = nullptr;
    size_ = capacity_ = 0;
  }

  unsigned char* block_ = nullptr;
  double* load_ = nullptr;
  double* slack_ = nullptr;
  double* current_ = nullptr;
  double* noise_slack_ = nullptr;
  double* dhat_ = nullptr;
  PlanRef* plan_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

// Recycles SoA blocks within one optimization run — the same ownership
// shape and counter semantics as VectorPool (plan.hpp), but whole aligned
// lane blocks instead of per-candidate vector buffers. acquire() hands back
// a cleared list keeping whatever capacity its previous life grew;
// release() returns a list to the pool (no-op for lists that never
// allocated).
class SoAPool {
 public:
  [[nodiscard]] SoAList acquire() {
    if (free_.empty()) return {};
    SoAList l = std::move(free_.back());
    free_.pop_back();
    l.clear();
    ++reuses_;
    return l;
  }

  void release(SoAList&& l) {
    if (l.capacity() == 0) return;
    free_.push_back(std::move(l));
  }

  // Blocks handed out that carried reusable capacity.
  [[nodiscard]] std::size_t reuses() const noexcept { return reuses_; }

 private:
  std::vector<SoAList> free_;
  std::size_t reuses_ = 0;
};

}  // namespace nbuf::core
