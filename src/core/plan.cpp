#include "core/plan.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace nbuf::core {

const PlanCell* PlanArena::buffer(const PlanCell* prev,
                                  PlannedBuffer placement) {
  NBUF_EXPECTS(placement.node.valid());
  NBUF_EXPECTS(placement.type.valid());
  NBUF_EXPECTS(placement.dist_above >= 0.0);
  PlanCell c;
  c.kind = PlanCell::Kind::Buffer;
  c.placement = placement;
  c.a = prev;
  cells_.push_back(c);
  return &cells_.back();
}

const PlanCell* PlanArena::wire(const PlanCell* prev, PlannedWire choice) {
  NBUF_EXPECTS(choice.node.valid());
  PlanCell c;
  c.kind = PlanCell::Kind::Wire;
  c.wire = choice;
  c.a = prev;
  cells_.push_back(c);
  return &cells_.back();
}

const PlanCell* PlanArena::merge(const PlanCell* left, const PlanCell* right) {
  if (left == nullptr) return right;
  if (right == nullptr) return left;
  PlanCell c;
  c.kind = PlanCell::Kind::Merge;
  c.a = left;
  c.b = right;
  cells_.push_back(c);
  return &cells_.back();
}

// The ref builders delegate to the pointer builders (one code path for the
// cell payload checks) and hand back the index of the appended cell. A
// PlanRef is 32-bit; one DP run materializing 2^32 cells would long since
// have exhausted memory, but the contract makes the limit explicit.
PlanRef PlanArena::buffer_ref(PlanRef prev, PlannedBuffer placement) {
  buffer(cell(prev), placement);
  NBUF_ASSERT(cells_.size() < UINT32_MAX);
  return static_cast<PlanRef>(cells_.size());
}

PlanRef PlanArena::wire_ref(PlanRef prev, PlannedWire choice) {
  wire(cell(prev), choice);
  NBUF_ASSERT(cells_.size() < UINT32_MAX);
  return static_cast<PlanRef>(cells_.size());
}

PlanRef PlanArena::merge_ref(PlanRef left, PlanRef right) {
  if (left == kNullPlan) return right;
  if (right == kNullPlan) return left;
  merge(cell(left), cell(right));
  NBUF_ASSERT(cells_.size() < UINT32_MAX);
  return static_cast<PlanRef>(cells_.size());
}

std::vector<PlannedBuffer> collect(const PlanCell* plan) {
  std::vector<PlannedBuffer> out;
  std::vector<const PlanCell*> stack;
  if (plan != nullptr) stack.push_back(plan);
  while (!stack.empty()) {
    const PlanCell* c = stack.back();
    stack.pop_back();
    if (c->kind == PlanCell::Kind::Buffer) out.push_back(c->placement);
    if (c->a != nullptr) stack.push_back(c->a);
    if (c->b != nullptr) stack.push_back(c->b);
  }
  return out;
}

std::vector<PlannedWire> collect_wires(const PlanCell* plan) {
  std::vector<PlannedWire> out;
  std::vector<const PlanCell*> stack;
  if (plan != nullptr) stack.push_back(plan);
  while (!stack.empty()) {
    const PlanCell* c = stack.back();
    stack.pop_back();
    if (c->kind == PlanCell::Kind::Wire) out.push_back(c->wire);
    if (c->a != nullptr) stack.push_back(c->a);
    if (c->b != nullptr) stack.push_back(c->b);
  }
  return out;
}

std::size_t plan_size(const PlanCell* plan) {
  std::size_t n = 0;
  std::vector<const PlanCell*> stack;
  if (plan != nullptr) stack.push_back(plan);
  while (!stack.empty()) {
    const PlanCell* c = stack.back();
    stack.pop_back();
    if (c->kind == PlanCell::Kind::Buffer) ++n;
    if (c->a != nullptr) stack.push_back(c->a);
    if (c->b != nullptr) stack.push_back(c->b);
  }
  return n;
}

void apply_plan(rct::RoutingTree& tree,
                const std::vector<PlannedBuffer>& plan,
                rct::BufferAssignment& out, bool allow_any_site) {
  // Group interior placements per wire (keyed by the wire's bottom node).
  std::map<rct::NodeId, std::vector<PlannedBuffer>> per_wire;
  for (const PlannedBuffer& p : plan) {
    if (p.dist_above <= 0.0) {
      if (allow_any_site) tree.set_buffer_allowed(p.node, true);
      out.place(p.node, p.type);
    } else {
      per_wire[p.node].push_back(p);
    }
  }
  for (auto& [below, group] : per_wire) {
    std::sort(group.begin(), group.end(),  // nbuf-lint: allow(sort)
              [](const PlannedBuffer& x, const PlannedBuffer& y) {
                return x.dist_above < y.dist_above;
              });
    // Split bottom-up; after each split the remaining upper part hangs off
    // the newly created node, so distances re-base onto it.
    rct::NodeId bottom = below;
    double consumed = 0.0;
    for (const PlannedBuffer& p : group) {
      const double d = p.dist_above - consumed;
      NBUF_ASSERT_MSG(d > 0.0, "duplicate buffer position on one wire");
      const rct::NodeId site = tree.split_wire(bottom, d, "buf_site");
      out.place(site, p.type);
      bottom = site;
      consumed = p.dist_above;
    }
  }
}

}  // namespace nbuf::core
