#include "core/tool.hpp"

#include <chrono>

#include "obs/trace.hpp"

namespace nbuf::core {

ToolResult run(const rct::RoutingTree& input, const lib::BufferLibrary& lib,
               const ToolOptions& options) {
  ToolResult r{input, {}, {}, {}, {}, {}, 0.0};
  r.tree.binarize();
  seg::segment(r.tree, options.segmenting);

  {
    NBUF_TRACE_SPAN("tool.analyze_before");
    r.noise_before = noise::analyze_unbuffered(r.tree);
    r.timing_before = elmore::analyze_unbuffered(r.tree);
  }

  // Wall-time measurement only: optimize_seconds is reported, never fed
  // back into any decision (docs/quality.md "wallclock-in-core" policy).
  const auto t0 = std::chrono::steady_clock::now();  // nbuf-lint: allow(wallclock-in-core)
  r.vg = optimize(r.tree, lib, options.vg);
  const auto t1 = std::chrono::steady_clock::now();  // nbuf-lint: allow(wallclock-in-core)
  r.optimize_seconds = std::chrono::duration<double>(t1 - t0).count();

  NBUF_TRACE_SPAN("tool.analyze_after");
  r.noise_after = noise::analyze(r.tree, r.vg.buffers, lib);
  r.timing_after = elmore::analyze(r.tree, r.vg.buffers, lib);
  return r;
}

ToolResult run_buffopt(const rct::RoutingTree& input,
                       const lib::BufferLibrary& lib, ToolOptions options) {
  options.vg.noise_constraints = true;
  options.vg.objective = VgObjective::MinBuffersMeetingConstraints;
  return run(input, lib, options);
}

ToolResult run_delayopt(const rct::RoutingTree& input,
                        const lib::BufferLibrary& lib,
                        std::size_t max_buffers, ToolOptions options) {
  options.vg.noise_constraints = false;
  options.vg.objective = VgObjective::MaxSlack;
  options.vg.max_buffers = max_buffers;
  return run(input, lib, options);
}

}  // namespace nbuf::core
