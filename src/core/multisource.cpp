#include "core/multisource.hpp"

#include <algorithm>
#include <limits>

#include "core/alg1_single_sink.hpp"
#include "rct/extract.hpp"
#include "rct/reroot.hpp"
#include "util/check.hpp"


namespace nbuf::core {

namespace {

// The base tree, the current repeater set, and one mode, seen from the
// mode's driver: (rerooted tree, mapped assignment, old->new node map).
struct ModeView {
  rct::RerootResult rr;
  rct::BufferAssignment buffers;
};

ModeView mode_view(const rct::RoutingTree& tree,
                   const rct::BufferAssignment& repeaters,
                   const NetMode& mode,
                   const rct::SinkInfo& source_as_sink) {
  ModeView mv;
  if (!mode.terminal.valid()) {
    // Base mode: identity view.
    mv.rr.tree = tree;
    mv.rr.new_id_of.resize(tree.node_count());
    for (std::size_t i = 0; i < tree.node_count(); ++i)
      mv.rr.new_id_of[i] = rct::NodeId{static_cast<unsigned>(i)};
    mv.buffers = repeaters;
    if (mode.driver.resistance > 0.0) mv.rr.tree.set_driver(mode.driver);
    return mv;
  }
  mv.rr = rct::reroot(tree, mode.terminal, mode.driver, source_as_sink);
  mv.buffers = rct::map_assignment(repeaters, mv.rr);
  return mv;
}

}  // namespace

std::vector<noise::NoiseReport> analyze_modes(
    const rct::RoutingTree& tree, const rct::BufferAssignment& repeaters,
    const lib::BufferLibrary& lib, const std::vector<NetMode>& modes,
    const rct::SinkInfo& source_as_sink) {
  std::vector<noise::NoiseReport> out;
  out.reserve(modes.size());
  for (const NetMode& m : modes) {
    const ModeView mv = mode_view(tree, repeaters, m, source_as_sink);
    out.push_back(noise::analyze(mv.rr.tree, mv.buffers, lib));
  }
  return out;
}

MultiSourceResult optimize_multisource(const rct::RoutingTree& input,
                                       const lib::BufferLibrary& lib,
                                       const std::vector<NetMode>& modes,
                                       const MultiSourceOptions& options) {
  NBUF_EXPECTS_MSG(!modes.empty(), "a net needs at least one mode");
  NBUF_EXPECTS(options.source_as_sink.noise_margin > 0.0 ||
               std::all_of(modes.begin(), modes.end(), [](const NetMode& m) {
                 return !m.terminal.valid();
               }));
  const lib::BufferId rep =
      options.repeater ? *options.repeater : noise_buffer_choice(lib);

  MultiSourceResult result;
  result.tree = input;
  result.tree.binarize();
  seg::segment(result.tree, {options.segment_length});

  // Inverse of new_id_of per mode view is rebuilt each round; repeaters
  // live on base-tree ids.
  for (result.rounds = 0; result.rounds < options.max_rounds;
       ++result.rounds) {
    bool all_clean = true;
    for (const NetMode& mode : modes) {
      const ModeView mv = mode_view(result.tree, result.repeaters, mode,
                                    options.source_as_sink);
      // new -> old map for placing repairs back on the base tree.
      std::vector<rct::NodeId> old_of(mv.rr.tree.node_count());
      for (std::size_t oldv = 0; oldv < mv.rr.new_id_of.size(); ++oldv)
        if (mv.rr.new_id_of[oldv].valid())
          old_of[mv.rr.new_id_of[oldv].value()] =
              rct::NodeId{static_cast<unsigned>(oldv)};

      const auto stages =
          rct::decompose(mv.rr.tree, mv.buffers, lib);
      for (const rct::Stage& st : stages) {
        // Quick check: does this stage violate?
        const auto nz = noise::stage_noise(mv.rr.tree, st);
        bool bad = false;
        for (const rct::StageSink& s : st.sinks)
          if (nz.at(s.node) > s.noise_margin) bad = true;
        if (!bad) continue;
        all_clean = false;

        // Repair the stage in isolation with the noise-constrained DP
        // (generous RAT: only noise matters here), then merge the new
        // repeaters back onto the base tree.
        const auto extracted =
            rct::extract_stage(mv.rr.tree, st, /*default_rat=*/1.0);
        VgOptions vopt;
        vopt.noise_constraints = true;
        vopt.objective = VgObjective::MinBuffersMeetingConstraints;
        const auto fix = optimize(extracted.tree, lib, vopt);
        NBUF_ASSERT_MSG(fix.feasible,
                        "stage repair must succeed on a segmented stage");
        for (const auto& [node, type] : fix.buffers.entries()) {
          (void)type;
          NBUF_ASSERT_MSG(node.value() < extracted.orig_of.size(),
                          "repair landed on a binarization dummy");
          const rct::NodeId in_mode = extracted.orig_of[node.value()];
          const rct::NodeId in_base = old_of[in_mode.value()];
          NBUF_ASSERT_MSG(in_base.valid(),
                          "repair landed on a synthetic node");
          // Always insert the chosen bidirectional repeater type: its
          // minimal resistance keeps progress monotone across modes.
          result.repeaters.place(in_base, rep);
        }
      }
    }
    if (all_clean) break;
  }

  // Final verdict.
  const auto reports = analyze_modes(result.tree, result.repeaters, lib,
                                     modes, options.source_as_sink);
  result.feasible = true;
  result.mode_worst_slack.reserve(reports.size());
  for (const auto& r : reports) {
    result.mode_worst_slack.push_back(r.worst_slack);
    if (!r.clean()) result.feasible = false;
  }
  return result;
}

}  // namespace nbuf::core
