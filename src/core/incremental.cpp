#include "core/incremental.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nbuf::core {

namespace {

// The sorts below canonicalize small result sets for order-independent
// equality checks (validation, not candidate-DP hot paths).

bool same_plan(const std::vector<PlannedBuffer>& a,
               const std::vector<PlannedBuffer>& b) {
  if (a.size() != b.size()) return false;
  auto key = [](const PlannedBuffer& p) {
    return std::tuple(p.node.value(), p.dist_above, p.type.value());
  };
  std::vector<std::tuple<std::uint32_t, double, std::uint32_t>> ka, kb;
  ka.reserve(a.size());
  kb.reserve(b.size());
  for (const PlannedBuffer& p : a) ka.push_back(key(p));
  for (const PlannedBuffer& p : b) kb.push_back(key(p));
  std::sort(ka.begin(), ka.end());  // nbuf-lint: allow(sort)
  std::sort(kb.begin(), kb.end());  // nbuf-lint: allow(sort)
  return ka == kb;
}

bool same_wires(const std::vector<PlannedWire>& a,
                const std::vector<PlannedWire>& b) {
  if (a.size() != b.size()) return false;
  auto key = [](const PlannedWire& w) {
    return std::pair(w.node.value(), w.width);
  };
  std::vector<std::pair<std::uint32_t, std::size_t>> ka, kb;
  ka.reserve(a.size());
  kb.reserve(b.size());
  for (const PlannedWire& w : a) ka.push_back(key(w));
  for (const PlannedWire& w : b) kb.push_back(key(w));
  std::sort(ka.begin(), ka.end());  // nbuf-lint: allow(sort)
  std::sort(kb.begin(), kb.end());  // nbuf-lint: allow(sort)
  return ka == kb;
}

}  // namespace

rct::NodeId apply_perturbation(rct::RoutingTree& tree,
                               const Perturbation& p) {
  switch (p.kind) {
    case Perturbation::Kind::WireScale: {
      rct::Wire w = tree.node(p.node).parent_wire;
      w.resistance *= p.res_factor;
      w.capacitance *= p.cap_factor;
      w.coupling_current *= p.cur_factor;
      tree.set_parent_wire(p.node, w);
      return rct::NodeId{};
    }
    case Perturbation::Kind::SinkSet: {
      rct::SinkInfo info = p.sink_info;
      // The structural fields stay the sink's own: only electrical /
      // constraint values are perturbable through this vocabulary.
      info.node = tree.sink(p.sink).node;
      info.name = tree.sink(p.sink).name;
      tree.set_sink_info(p.sink, info);
      return rct::NodeId{};
    }
    case Perturbation::Kind::WireSplit:
      return tree.split_wire(
          p.node, p.fraction * tree.node(p.node).parent_wire.length);
    case Perturbation::Kind::TightenMargins: {
      for (std::size_t i = 0; i < tree.sink_count(); ++i) {
        const auto sid = rct::SinkId{static_cast<std::uint32_t>(i)};
        rct::SinkInfo info = tree.sink(sid);
        info.noise_margin -= p.delta;
        tree.set_sink_info(sid, info);
      }
      return rct::NodeId{};
    }
    case Perturbation::Kind::ScaleCoupling: {
      for (rct::NodeId v : tree.preorder()) {
        if (v == tree.source()) continue;
        rct::Wire w = tree.node(v).parent_wire;
        w.coupling_current *= p.factor;
        tree.set_parent_wire(v, w);
      }
      return rct::NodeId{};
    }
  }
  NBUF_EXPECTS_MSG(false, "unknown perturbation kind");
  return rct::NodeId{};
}

Perturbation random_perturbation(util::Rng& rng,
                                 const rct::RoutingTree& tree) {
  Perturbation p;
  const auto order = tree.preorder();
  const auto pick_non_source = [&] {
    return order[static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<int>(order.size()) - 1))];
  };
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      p.kind = Perturbation::Kind::WireScale;
      p.node = pick_non_source();
      p.res_factor = rng.uniform(0.4, 2.5);
      p.cap_factor = rng.uniform(0.4, 2.5);
      p.cur_factor = rng.uniform(0.4, 2.5);
      break;
    }
    case 1: {
      p.kind = Perturbation::Kind::SinkSet;
      p.sink = rct::SinkId{static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<int>(tree.sink_count()) - 1))};
      p.sink_info = tree.sink(p.sink);
      p.sink_info.cap *= rng.uniform(0.5, 2.0);
      p.sink_info.noise_margin = rng.uniform(0.3, 1.2);
      break;
    }
    default: {
      const rct::NodeId v = pick_non_source();
      const double frac = rng.uniform(0.25, 0.75);
      if (tree.node(v).parent_wire.length > 1.0) {
        p.kind = Perturbation::Kind::WireSplit;
        p.node = v;
        p.fraction = frac;
      } else {
        // Too short to split: degrade to a rescale so every draw edits.
        p.kind = Perturbation::Kind::WireScale;
        p.node = v;
        p.res_factor = p.cap_factor = p.cur_factor = 1.0 + frac;
      }
      break;
    }
  }
  return p;
}

IncrementalContext::IncrementalContext(rct::RoutingTree tree,
                                       const lib::BufferLibrary& lib,
                                       VgOptions opt)
    : tree_(std::move(tree)), lib_(lib), opt_(std::move(opt)) {
  NBUF_EXPECTS_MSG(tree_.is_binary(), "call tree.binarize() first");
  NBUF_EXPECTS_MSG(!lib_.empty(), "empty buffer library");
  NBUF_EXPECTS(opt_.max_buffers >= 1);
  cache_.ensure_size(tree_.node_count());
}

void IncrementalContext::dirty_up(rct::NodeId v) {
  for (rct::NodeId c = v; c.valid(); c = tree_.node(c).parent)
    cache_.invalidate(c);
}

void IncrementalContext::scale_wire(rct::NodeId v, double res_factor,
                                    double cap_factor, double cur_factor) {
  NBUF_EXPECTS_MSG(v != tree_.source(), "the source has no parent wire");
  Perturbation p;
  p.kind = Perturbation::Kind::WireScale;
  p.node = v;
  p.res_factor = res_factor;
  p.cap_factor = cap_factor;
  p.cur_factor = cur_factor;
  apply_perturbation(tree_, p);
  // The wire above v enters the DP while v's PARENT processes; v's own
  // subtree lists are untouched.
  dirty_up(tree_.node(v).parent);
}

void IncrementalContext::set_sink(rct::SinkId s, rct::SinkInfo info) {
  Perturbation p;
  p.kind = Perturbation::Kind::SinkSet;
  p.sink = s;
  p.sink_info = std::move(info);
  apply_perturbation(tree_, p);
  dirty_up(tree_.sink(s).node);
}

rct::NodeId IncrementalContext::split_wire(rct::NodeId v, double dist_above) {
  NBUF_EXPECTS_MSG(v != tree_.source(), "the source has no parent wire");
  const rct::NodeId n = tree_.split_wire(v, dist_above);
  cache_.ensure_size(tree_.node_count());
  // v's subtree is intact (its shortened parent wire belongs to n's DP
  // step); everything from the new node upward changed shape.
  dirty_up(n);
  return n;
}

void IncrementalContext::tighten_margins(double delta) {
  Perturbation p;
  p.kind = Perturbation::Kind::TightenMargins;
  p.delta = delta;
  apply_perturbation(tree_, p);
  cache_.invalidate_all();
}

void IncrementalContext::scale_coupling(double factor) {
  Perturbation p;
  p.kind = Perturbation::Kind::ScaleCoupling;
  p.factor = factor;
  apply_perturbation(tree_, p);
  cache_.invalidate_all();
}

rct::NodeId IncrementalContext::apply(const Perturbation& p) {
  switch (p.kind) {
    case Perturbation::Kind::WireScale:
      scale_wire(p.node, p.res_factor, p.cap_factor, p.cur_factor);
      return rct::NodeId{};
    case Perturbation::Kind::SinkSet:
      set_sink(p.sink, p.sink_info);
      return rct::NodeId{};
    case Perturbation::Kind::WireSplit:
      return split_wire(p.node,
                        p.fraction * tree_.node(p.node).parent_wire.length);
    case Perturbation::Kind::TightenMargins:
      tighten_margins(p.delta);
      return rct::NodeId{};
    case Perturbation::Kind::ScaleCoupling:
      scale_coupling(p.factor);
      return rct::NodeId{};
  }
  NBUF_EXPECTS_MSG(false, "unknown perturbation kind");
  return rct::NodeId{};
}

void IncrementalContext::invalidate_all() { cache_.invalidate_all(); }

const VgResult& IncrementalContext::optimize() {
  NBUF_TRACE_SPAN_TAGGED("incremental.optimize", tree_.node_count());
  detail::ReferenceDp dp(tree_, lib_, opt_, arena_, &cache_);
  result_ = dp.run();
  have_result_ = true;
  ++stats_.runs;
  stats_.last_reused = cache_.reused;
  stats_.last_recomputed = cache_.recomputed;
  stats_.plan_cells = arena_.cell_count();
  return result_;
}

bool same_solution(const VgResult& a, const VgResult& b) {
  if (a.feasible != b.feasible || a.timing_met != b.timing_met ||
      a.buffer_count != b.buffer_count || a.slack != b.slack)
    return false;
  // entries() is sorted by node id, so direct comparison is order-safe.
  if (a.buffers.entries() != b.buffers.entries()) return false;
  if (!same_wires(a.wire_widths, b.wire_widths)) return false;
  if (a.per_count.size() != b.per_count.size()) return false;
  for (std::size_t i = 0; i < a.per_count.size(); ++i) {
    const CountBest& x = a.per_count[i];
    const CountBest& y = b.per_count[i];
    if (x.count != y.count || x.slack != y.slack ||
        x.noise_slack != y.noise_slack || x.noise_ok != y.noise_ok)
      return false;
    if (!same_plan(x.plan, y.plan) || !same_wires(x.wires, y.wires))
      return false;
  }
  return true;
}

}  // namespace nbuf::core
