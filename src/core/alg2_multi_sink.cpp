#include "core/alg2_multi_sink.hpp"

#include <algorithm>
#include <limits>

#include "core/noise_climb.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nbuf::core {

namespace {

using detail::ClimbState;
using detail::kTopGapFrac;

// Removes candidates dominated in all of (I, NS, count). Small lists in
// practice (forks are rare), so pairwise comparison is fine; sorting keeps
// the output ordered by current for the linear merge.
void prune(std::vector<ClimbState>& cands) {
  const auto less = [](const ClimbState& a, const ClimbState& b) {
    if (a.current != b.current) return a.current < b.current;
    if (a.noise_slack != b.noise_slack)
      return a.noise_slack > b.noise_slack;
    return a.buffers < b.buffers;
  };
  // Climbing a wire preserves the current order (the same charge is added
  // to every candidate), so lists usually arrive sorted; checking first
  // turns the common case into a linear scan (same trick as the Van
  // Ginneken fast kernel).
  if (!std::is_sorted(cands.begin(), cands.end(), less))
    std::sort(cands.begin(), cands.end(), less);  // nbuf-lint: allow(sort)
  std::vector<ClimbState> kept;
  for (const ClimbState& c : cands) {
    const bool dominated = std::any_of(
        kept.begin(), kept.end(), [&](const ClimbState& k) {
          return k.current <= c.current && k.noise_slack >= c.noise_slack &&
                 k.buffers <= c.buffers;
        });
    if (!dominated) kept.push_back(c);
  }
  cands = std::move(kept);
  // Structural re-verification (contract level 2 / sanitizer builds): the
  // linear source-ward merge is only correct while climb lists stay sorted
  // by current ascending with no pair in a dominance relation. O(n²), but
  // fork lists are tiny in practice.
  if (NBUF_STRUCTURAL_CHECKS != 0) {
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (i > 0)
        NBUF_INVARIANT_CTX(cands[i - 1].current <= cands[i].current,
                           util::ctx("i", i, "current[i-1]",
                                     cands[i - 1].current, "current[i]",
                                     cands[i].current));
      for (std::size_t j = i + 1; j < cands.size(); ++j)
        NBUF_INVARIANT_CTX(!(cands[i].current <= cands[j].current &&
                             cands[i].noise_slack >= cands[j].noise_slack &&
                             cands[i].buffers <= cands[j].buffers),
                           util::ctx("i", i, "j", j));
    }
  }
}

class Alg2Run {
 public:
  Alg2Run(const rct::RoutingTree& tree, const lib::BufferType& buf,
          lib::BufferId bid)
      : tree_(tree), buf_(buf), bid_(bid) {}

  // Candidates at `v` (below its parent wire), Fig. 9 Steps 1-7.
  std::vector<ClimbState> candidates_at(rct::NodeId v);

  // Climbs every candidate of `child` through its parent wire up to the
  // parent node; pruned, sorted by current ascending.
  std::vector<ClimbState> climbed(rct::NodeId child);

  // Fork helper (Step 6): a buffer at the very top of `child`'s parent wire
  // decouples that branch. Returns the branch's residual state above the
  // buffer: the stub current and the noise slack toward the buffer's input
  // pin. For zero-length branch wires the buffer sits at `child` itself.
  ClimbState decouple(rct::NodeId child, const ClimbState& branch);

  // Joins two branch plans (used by the caller's source handling).
  const PlanCell* merge_plans(const PlanCell* a, const PlanCell* b) {
    return arena_.merge(a, b);
  }

  Alg2Stats stats;

 private:
  const rct::RoutingTree& tree_;
  const lib::BufferType& buf_;
  lib::BufferId bid_;
  PlanArena arena_;
};

std::vector<ClimbState> Alg2Run::climbed(rct::NodeId child) {
  std::vector<ClimbState> cands = candidates_at(child);
  for (ClimbState& c : cands)
    c = detail::climb_wire(tree_.node(child).parent_wire, child, c,
                           buf_.resistance, buf_.noise_margin, bid_, arena_);
  prune(cands);
  return cands;
}

ClimbState Alg2Run::decouple(rct::NodeId child, const ClimbState& branch) {
  // The climb invariant guarantees the buffer can drive the branch:
  // R_b * I <= NS.
  NBUF_ASSERT(buf_.resistance * branch.current <=
              branch.noise_slack + 1e-15);
  const rct::Wire& w = tree_.node(child).parent_wire;
  ClimbState d;
  d.buffers = branch.buffers + 1;
  if (w.length <= 0.0) {
    NBUF_EXPECTS_MSG(tree_.node(child).kind == rct::NodeKind::Internal,
                     "cannot decouple a zero-length wire to a sink");
    d.plan = arena_.buffer(branch.plan, PlannedBuffer{child, 0.0, bid_});
    d.current = 0.0;
    d.noise_slack = buf_.noise_margin;
    return d;
  }
  const double stub = w.length * kTopGapFrac;  // wire left above the buffer
  const double r_per = w.resistance / w.length;
  const double i_per = w.coupling_current / w.length;
  d.plan = arena_.buffer(branch.plan,
                         PlannedBuffer{child, w.length - stub, bid_});
  d.current = i_per * stub;
  d.noise_slack = buf_.noise_margin - r_per * stub * (i_per * stub / 2.0);
  return d;
}

std::vector<ClimbState> Alg2Run::candidates_at(rct::NodeId v) {
  const rct::Node& n = tree_.node(v);

  // Step 1: sinks seed (I = 0, NS = NM).
  if (n.kind == rct::NodeKind::Sink) {
    ClimbState s;
    s.noise_slack = tree_.sink(n.sink).noise_margin;
    stats.candidates_created++;
    return {s};
  }

  NBUF_EXPECTS_MSG(!n.children.empty(), "internal node without children");
  NBUF_EXPECTS_MSG(n.children.size() <= 2,
                   "Algorithm 2 needs a binary tree (call binarize())");

  // Step 2: single child — just the climbed list.
  if (n.children.size() == 1) {
    auto cands = climbed(n.children.front());
    stats.max_list_size = std::max(stats.max_list_size, cands.size());
    return cands;
  }

  // Steps 3-7: two children. Both climbed lists are sorted by current
  // ascending (and slack ascending after pruning); walk them linearly.
  const rct::NodeId lc = n.children[0];
  const rct::NodeId rc = n.children[1];
  const auto left = climbed(lc);
  const auto right = climbed(rc);
  NBUF_ASSERT(!left.empty() && !right.empty());

  NBUF_TRACE_DETAIL_TAGGED("alg2.merge", left.size() + right.size());
  std::vector<ClimbState> merged;
  std::size_t i = 0, j = 0;
  while (i < left.size() && j < right.size()) {
    const ClimbState& a = left[i];
    const ClimbState& b = right[j];
    const double sum_i = a.current + b.current;
    const double min_ns = std::min(a.noise_slack, b.noise_slack);
    if (buf_.resistance * sum_i <= min_ns) {
      // Step 7: merge without a buffer.
      ClimbState m;
      m.current = sum_i;
      m.noise_slack = min_ns;
      m.buffers = a.buffers + b.buffers;
      m.plan = arena_.merge(a.plan, b.plan);
      merged.push_back(m);
      stats.candidates_created++;
    } else {
      // Step 6: even a buffer right above v cannot fix this combination;
      // fork — buffer at the top of the left or of the right branch.
      stats.forks++;
      for (const auto& [dec, other] :
           {std::pair{decouple(lc, a), &b}, std::pair{decouple(rc, b), &a}}) {
        ClimbState m;
        m.current = dec.current + other->current;
        m.noise_slack = std::min(dec.noise_slack, other->noise_slack);
        m.buffers = dec.buffers + other->buffers;
        m.plan = arena_.merge(dec.plan, other->plan);
        merged.push_back(m);
        stats.candidates_created++;
      }
    }
    // Advance the list whose slack binds; its next candidate can only
    // improve the min.
    if (a.noise_slack < b.noise_slack) {
      ++i;
    } else if (b.noise_slack < a.noise_slack) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  prune(merged);
  stats.max_list_size = std::max(stats.max_list_size, merged.size());
  return merged;
}

}  // namespace

MultiSinkResult avoid_noise_multi_sink(const rct::RoutingTree& input,
                                       const lib::BufferLibrary& lib,
                                       const NoiseAvoidanceOptions& options) {
  NBUF_TRACE_SPAN_TAGGED("alg2.run", input.node_count());
  NBUF_EXPECTS_MSG(input.is_binary(),
                   "Algorithm 2 needs a binary tree (call binarize())");
  const lib::BufferId bid =
      options.buffer_type ? *options.buffer_type : noise_buffer_choice(lib);
  const lib::BufferType& buf = lib.at(bid);

  MultiSinkResult result{input, {}, 0, {}};
  rct::RoutingTree& tree = result.tree;
  const rct::Node& src = tree.node(tree.source());
  NBUF_EXPECTS_MSG(!src.children.empty(), "net has no sinks");

  Alg2Run run(tree, buf, bid);

  // Source handling (Algorithm 1 Step 5 generalized): build the candidate
  // set at the source including driver-guard variants — a buffer just below
  // the source on a branch whenever the driver alone cannot hold the noise
  // (possible only when R_so > R_b) — then take the feasible candidate with
  // the fewest buffers.
  std::vector<ClimbState> final_cands;
  if (src.children.size() == 1) {
    const rct::NodeId c = src.children.front();
    for (const ClimbState& s : run.climbed(c)) {
      final_cands.push_back(s);
      final_cands.push_back(run.decouple(c, s));
    }
  } else {
    const rct::NodeId lc = src.children[0];
    const rct::NodeId rc = src.children[1];
    const auto left = run.climbed(lc);
    const auto right = run.climbed(rc);
    for (const ClimbState& a : left) {
      for (const ClimbState& b : right) {
        for (const ClimbState& la : {a, run.decouple(lc, a)}) {
          for (const ClimbState& rb : {b, run.decouple(rc, b)}) {
            ClimbState m;
            m.current = la.current + rb.current;
            m.noise_slack = std::min(la.noise_slack, rb.noise_slack);
            m.buffers = la.buffers + rb.buffers;
            m.plan = run.merge_plans(la.plan, rb.plan);
            final_cands.push_back(m);
          }
        }
      }
    }
  }

  const double r_so = tree.driver().resistance;
  const ClimbState* best = nullptr;
  for (const ClimbState& c : final_cands) {
    if (r_so * c.current > c.noise_slack) continue;
    if (best == nullptr || c.buffers < best->buffers ||
        (c.buffers == best->buffers &&
         c.noise_slack - r_so * c.current >
             best->noise_slack - r_so * best->current)) {
      best = &c;
    }
  }
  NBUF_ASSERT_MSG(best != nullptr,
                  "noise avoidance is always feasible with source guards");

  apply_plan(tree, collect(best->plan), result.buffers,
             /*allow_any_site=*/true);
  result.buffer_count = best->buffers;
  result.stats = run.stats;
  NBUF_ASSERT(result.buffers.size() == best->buffers);
  tree.validate();
  return result;
}

}  // namespace nbuf::core
