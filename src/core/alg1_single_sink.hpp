// Algorithm 1: optimal noise avoidance for single-sink trees
// (Section III-B, Fig. 8).
//
// Climbs from the sink to the source, maintaining the downstream current and
// noise slack. Whenever deferring a buffer past the current wire would
// violate noise, a buffer is inserted at its maximal distance up the wire
// (Theorem 1); at the source, a guard buffer is inserted just below the
// driver if the driver's own resistance would break the constraint (only
// possible when R_source > R_buffer). Linear time, and optimal in the
// number of inserted buffers (Theorem 3).
//
// With a multi-buffer library the smallest-resistance type alone achieves
// optimality (remark after Theorem 3); inverting types are excluded by
// default because the algorithm does not track signal polarity.
#pragma once

#include <optional>

#include "core/plan.hpp"
#include "lib/buffer.hpp"
#include "rct/assignment.hpp"
#include "rct/tree.hpp"

namespace nbuf::core {

struct NoiseAvoidanceOptions {
  // Buffer type to insert; defaults to the smallest-resistance
  // non-inverting type (or smallest-resistance overall if the library has
  // no non-inverting member). Exact resistance ties break on the type
  // name, so the default choice is the same for any permutation of the
  // same library.
  std::optional<lib::BufferId> buffer_type;
};

struct NoiseAvoidanceResult {
  rct::RoutingTree tree;  // input copy, possibly with added buffer sites
  rct::BufferAssignment buffers;
  std::size_t buffer_count = 0;
};

// Picks the insertion type per the rule above.
[[nodiscard]] lib::BufferId noise_buffer_choice(const lib::BufferLibrary& lib);

// Solves Problem 1 on a single-sink (path) tree: the minimum number of
// buffers such that no noise constraint is violated. Requires every node of
// `input` to have at most one child.
[[nodiscard]] NoiseAvoidanceResult avoid_noise_single_sink(
    const rct::RoutingTree& input, const lib::BufferLibrary& lib,
    const NoiseAvoidanceOptions& options = {});

}  // namespace nbuf::core
