#include "core/alg1_single_sink.hpp"

#include "core/noise_climb.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nbuf::core {

lib::BufferId noise_buffer_choice(const lib::BufferLibrary& lib) {
  NBUF_EXPECTS_MSG(!lib.empty(), "empty buffer library");
  lib::BufferId best;
  for (lib::BufferId id : lib.ids()) {
    const lib::BufferType& t = lib.at(id);
    if (t.inverting) continue;
    // Smallest resistance; exact ties break on name so the same library
    // presented in any insertion order picks the same type (ids are
    // permutation-dependent, names are unique).
    if (!best.valid() || t.resistance < lib.at(best).resistance ||
        (t.resistance == lib.at(best).resistance &&
         t.name < lib.at(best).name))
      best = id;
  }
  if (best.valid()) return best;
  return lib.strongest();  // inverting-only library: caller's responsibility
}

NoiseAvoidanceResult avoid_noise_single_sink(
    const rct::RoutingTree& input, const lib::BufferLibrary& lib,
    const NoiseAvoidanceOptions& options) {
  NBUF_TRACE_SPAN_TAGGED("alg1.run", input.node_count());
  NBUF_EXPECTS_MSG(input.sink_count() == 1, "Algorithm 1 needs one sink");
  for (rct::NodeId id : input.preorder())
    NBUF_EXPECTS_MSG(input.node(id).children.size() <= 1,
                     "Algorithm 1 needs a path topology");

  const lib::BufferId bid =
      options.buffer_type ? *options.buffer_type : noise_buffer_choice(lib);
  const lib::BufferType& b = lib.at(bid);

  NoiseAvoidanceResult result{input, {}, 0};
  rct::RoutingTree& tree = result.tree;
  PlanArena arena;

  // Step 1: initialize at the sink.
  const rct::SinkInfo& sink = tree.sinks().front();
  detail::ClimbState state;
  state.current = 0.0;
  state.noise_slack = sink.noise_margin;

  // Steps 2-4: climb every wire toward the source.
  rct::NodeId cur = sink.node;
  while (cur != tree.source()) {
    const rct::Node& n = tree.node(cur);
    state = detail::climb_wire(n.parent_wire, cur, state, b.resistance,
                               b.noise_margin, bid, arena);
    cur = n.parent;
  }

  // Step 5: driver check; guard buffer right below the source if needed
  // (only possible when the driver is weaker than the buffer).
  if (tree.driver().resistance * state.current > state.noise_slack) {
    const rct::Node& src = tree.node(tree.source());
    NBUF_ASSERT_MSG(src.children.size() == 1, "path topology");
    const rct::NodeId top = src.children.front();
    const double len = tree.node(top).parent_wire.length;
    NBUF_ASSERT_MSG(len > 0.0, "cannot guard a zero-length root wire");
    state.plan = arena.buffer(
        state.plan,
        PlannedBuffer{top, len * (1.0 - detail::kTopGapFrac), bid});
    ++state.buffers;
  }

  apply_plan(tree, collect(state.plan), result.buffers,
             /*allow_any_site=*/true);
  result.buffer_count = state.buffers;
  NBUF_ASSERT(result.buffers.size() == state.buffers);
  tree.validate();
  return result;
}

}  // namespace nbuf::core
