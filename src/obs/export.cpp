#include "obs/export.hpp"

#include "util/json.hpp"

namespace nbuf::obs {

std::string chrome_trace_json(const TraceData& data) {
  util::JsonWriter j;
  j.begin_object();
  j.field("displayTimeUnit", std::string_view("ms"));
  j.key("traceEvents");
  j.begin_array();
  for (const ThreadTrace& t : data.threads) {
    j.begin_object();
    j.field("ph", std::string_view("M"));
    j.field("pid", 1);
    j.field("tid", t.tid);
    j.field("name", std::string_view("thread_name"));
    j.key("args");
    j.begin_object();
    j.field("name", std::string_view(("worker-" + std::to_string(t.tid))));
    j.end_object();
    j.end_object();
    for (const TraceEvent& e : t.events) {
      if (!e.closed()) continue;
      j.begin_object();
      j.field("ph", std::string_view("X"));
      j.field("pid", 1);
      j.field("tid", t.tid);
      j.field("name", std::string_view(e.name));
      j.field("ts", static_cast<double>(e.t0_ns) * 1e-3);
      j.field("dur", static_cast<double>(e.dur_ns) * 1e-3);
      if (e.tag != kNoTag) {
        j.key("args");
        j.begin_object();
        j.field("tag", static_cast<double>(e.tag));
        j.end_object();
      }
      j.end_object();
    }
  }
  j.end_array();
  j.end_object();
  return j.str();
}

std::string metrics_json(const MetricsSnapshot& snap) {
  util::JsonWriter j;
  j.begin_object();
  j.field("schema", std::string_view("nbuf-metrics-v1"));
  j.key("counters");
  j.begin_object();
  for (const auto& row : snap.counters)
    j.field(row.name, static_cast<std::size_t>(row.value));
  j.end_object();
  j.key("histograms");
  j.begin_object();
  for (const auto& row : snap.histograms) {
    j.key(row.name);
    j.begin_object();
    j.field("count", static_cast<std::size_t>(row.count));
    j.field("sum", static_cast<std::size_t>(row.sum));
    j.field("min", static_cast<std::size_t>(row.min));
    j.field("max", static_cast<std::size_t>(row.max));
    j.key("buckets");
    j.begin_object();
    for (std::size_t i = 0; i < row.buckets.size(); ++i) {
      if (row.buckets[i] == 0) continue;
      j.field(std::to_string(i), static_cast<std::size_t>(row.buckets[i]));
    }
    j.end_object();
    j.end_object();
  }
  j.end_object();
  j.key("gauges");
  j.begin_object();
  for (const auto& row : snap.gauges) j.field(row.name, row.value);
  j.end_object();
  j.end_object();
  return j.str();
}

}  // namespace nbuf::obs
