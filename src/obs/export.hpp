// Exporters: trace data to Chrome Trace Event Format JSON (loadable in
// Perfetto / chrome://tracing) and metrics snapshots to the flat
// nbuf-metrics-v1 schema. Both schemas are documented in
// docs/observability.md; output is byte-deterministic for identical
// inputs (util::JsonWriter discipline).
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nbuf::obs {

// Chrome Trace Event Format: one "X" (complete) event per closed span
// with ph/ts/dur/pid/tid/name (+ args.tag for tagged spans), plus one
// thread_name metadata event per thread. Events stay in span-open order,
// so ts is monotone nondecreasing within each tid.
[[nodiscard]] std::string chrome_trace_json(const TraceData& data);

// nbuf-metrics-v1: {"schema", "counters": {name: u64}, "histograms":
// {name: {count,sum,min,max,buckets:{bit_width: u64}}}, "gauges":
// {name: double}}. Counters and histograms are the deterministic part;
// gauges carry timings.
[[nodiscard]] std::string metrics_json(const MetricsSnapshot& snap);

}  // namespace nbuf::obs
