// Minimal dependency-free JSON reader — the counterpart of
// util::JsonWriter. Exists so tests can parse what the exporters emit
// (trace-schema validation) without pulling a JSON library into the
// toolchain. Deliberately small: numbers are doubles, object keys keep
// insertion order, input must be a single JSON value with nothing but
// whitespace after it.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nbuf::obs {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::Null; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::String;
  }

  [[nodiscard]] bool has(std::string_view key) const noexcept {
    for (const auto& [k, v] : object)
      if (k == key) return true;
    return false;
  }

  // First value under `key`; throws std::out_of_range when absent or when
  // this value is not an object.
  [[nodiscard]] const JsonValue& at(std::string_view key) const {
    for (const auto& [k, v] : object)
      if (k == key) return v;
    throw std::out_of_range("json: no key '" + std::string(key) + "'");
  }
};

// Parses one JSON document; throws std::runtime_error with the byte
// offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace nbuf::obs
