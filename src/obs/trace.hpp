// Span-based tracing: where does the time go inside one net's optimization?
//
// The API is three layers, cheapest first:
//
//   1. NBUF_TRACE_SPAN("vg.optimize") / NBUF_TRACE_SPAN_TAGGED(name, tag)
//      — an RAII span covering the enclosing scope. When NBUF_TRACING=0
//      the macros expand to nothing (the benchmark floor, same discipline
//      as NBUF_CONTRACTS=0). When NBUF_TRACING=1 and no recording is
//      active, a span costs one relaxed atomic load and a branch.
//   2. NBUF_TRACE_DETAIL / NBUF_TRACE_DETAIL_TAGGED — per-node/per-list
//      spans inside the DP kernels. Recorded only when the active
//      recording was opened at TraceLevel::Detail; a Phase-level
//      recording of a 500-net batch stays small (~10 events/net) while a
//      Detail recording of a single net captures every prune/merge.
//   3. TraceRecording — installs itself as the process-wide active
//      recording; each worker thread lazily registers a private
//      TraceBuffer (no locks or shared writes on the span path), and
//      stop() collects the per-thread buffers into a TraceData.
//
// Threading contract: spans may open/close concurrently on any number of
// threads, but TraceRecording construction and stop() must not race with
// in-flight spans — start the recording before spawning workers and stop
// it after they joined (BatchEngine::run and signoff::run_workload join
// internally, so wrapping a call to either is safe). One recording at a
// time; constructing a second while one is active throws.
//
// Determinism: span *structure* — names, nesting, counts, tags — is a
// pure function of the work performed, so under a fixed seed the multiset
// of per-net span trees is identical at any thread count and run-to-run;
// structure_signature() canonicalizes exactly that (timings excluded).
// Span names must be string literals (or otherwise outlive the
// recording): buffers store the pointer, not a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/thread_annotations.hpp"

namespace nbuf::obs {

enum class TraceLevel : std::uint8_t {
  Phase = 0,   // per-net / per-phase spans only
  Detail = 1,  // additionally per-node kernel spans
};

// Tag value meaning "no tag" (kept out of exports and signatures).
inline constexpr std::int64_t kNoTag = INT64_MIN;

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;   // offset from the recording epoch
  std::uint64_t dur_ns = 0;  // kUnclosed until the span closes
  std::uint32_t depth = 0;   // nesting depth within the owning thread
  std::int64_t tag = kNoTag;

  static constexpr std::uint64_t kUnclosed = UINT64_MAX;
  [[nodiscard]] bool closed() const noexcept { return dur_ns != kUnclosed; }
};

// Per-thread event buffer. Owned by the recording; each worker thread
// writes only its own buffer, so the span path takes no locks.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::chrono::steady_clock::time_point epoch)
      : epoch_(epoch) {}

  std::size_t open(const char* name, std::int64_t tag) {
    events_.push_back(TraceEvent{name, now_ns(), TraceEvent::kUnclosed,
                                 depth_, tag});
    ++depth_;
    return events_.size() - 1;
  }

  void close(std::size_t index) {
    NBUF_ASSERT(depth_ > 0);
    --depth_;
    TraceEvent& e = events_[index];
    NBUF_ASSERT(!e.closed());
    NBUF_ASSERT(e.depth == depth_);
    e.dur_ns = now_ns() - e.t0_ns;
  }

 private:
  friend class TraceRecording;

  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::uint32_t depth_ = 0;
};

// Everything one recording captured: one event list per participating
// thread, each in span-open order (so t0 is monotone within a thread).
struct ThreadTrace {
  std::size_t tid = 0;  // 1-based registration order, not an OS id
  std::vector<TraceEvent> events;
};

struct TraceData {
  std::vector<ThreadTrace> threads;

  [[nodiscard]] std::size_t event_count() const noexcept {
    std::size_t n = 0;
    for (const ThreadTrace& t : threads) n += t.events.size();
    return n;
  }
};

namespace detail {
// The span fast path: null when no recording is active or the recording's
// level excludes `level`; otherwise this thread's buffer (registering it
// on first use).
[[nodiscard]] TraceBuffer* active_buffer(TraceLevel level);
}  // namespace detail

class TraceRecording {
 public:
  explicit TraceRecording(TraceLevel level = TraceLevel::Phase);
  ~TraceRecording();
  TraceRecording(const TraceRecording&) = delete;
  TraceRecording& operator=(const TraceRecording&) = delete;

  // Uninstalls the recording and hands over the per-thread buffers.
  // Callable once; requires all spans closed (workers joined).
  [[nodiscard]] TraceData stop();

  [[nodiscard]] TraceLevel level() const noexcept { return level_; }
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

 private:
  friend TraceBuffer* detail::active_buffer(TraceLevel);
  TraceBuffer* register_thread();

  TraceLevel level_;
  std::uint64_t generation_;
  std::chrono::steady_clock::time_point epoch_;
  bool stopped_ = false;
  // Buffers are appended under the mutex (once per thread per recording)
  // and never reallocated out from under a writer (unique_ptr gives
  // stable addresses). Only the vector is guarded: each TraceBuffer is
  // written solely by its registering thread until stop() joins them.
  util::Mutex mu_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_ NBUF_GUARDED_BY(mu_);
};

// RAII span. Prefer the macros; the constructor resolves the active
// buffer, so a span constructed while no recording runs is a no-op — the
// tagged macros pass the tag as a lambda, so a possibly-costly tag
// expression (e.g. a candidate-list size sum) is evaluated only when a
// recording is actually capturing this span.
class TraceSpan {
 public:
  TraceSpan(const char* name, TraceLevel level, std::int64_t tag)
      : buf_(detail::active_buffer(level)) {
    if (buf_ != nullptr) index_ = buf_->open(name, tag);
  }

  template <class TagFn>
    requires std::invocable<TagFn&>
  TraceSpan(const char* name, TraceLevel level, TagFn&& tag_fn)
      : buf_(detail::active_buffer(level)) {
    if (buf_ != nullptr)
      index_ = buf_->open(name, static_cast<std::int64_t>(tag_fn()));
  }
  ~TraceSpan() {
    if (buf_ != nullptr) buf_->close(index_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buf_;
  std::size_t index_ = 0;
};

// Canonical rendering of span structure only (names, nesting, counts,
// tags — no timings, no thread assignment): the multiset of root span
// subtrees across all threads, each rendered depth-first, sorted.
// Identical inputs ⇒ identical string at any thread count.
[[nodiscard]] std::string structure_signature(const TraceData& data);

// Inclusive per-name totals (a parent's time includes its children's),
// sorted by name. Unclosed spans are skipped.
struct PhaseRow {
  std::string name;
  std::uint64_t count = 0;
  double seconds = 0.0;
};
[[nodiscard]] std::vector<PhaseRow> phase_breakdown(const TraceData& data);

}  // namespace nbuf::obs

#ifndef NBUF_TRACING
#define NBUF_TRACING 1
#endif

#define NBUF_OBS_CAT2_(a, b) a##b
#define NBUF_OBS_CAT_(a, b) NBUF_OBS_CAT2_(a, b)

#if NBUF_TRACING

#define NBUF_TRACE_SPAN(name_lit)                                       \
  const ::nbuf::obs::TraceSpan NBUF_OBS_CAT_(nbuf_trace_span_,          \
                                             __LINE__)(                 \
      (name_lit), ::nbuf::obs::TraceLevel::Phase, ::nbuf::obs::kNoTag)
#define NBUF_TRACE_SPAN_TAGGED(name_lit, tag)                           \
  const ::nbuf::obs::TraceSpan NBUF_OBS_CAT_(nbuf_trace_span_,          \
                                             __LINE__)(                 \
      (name_lit), ::nbuf::obs::TraceLevel::Phase,                       \
      [&]() noexcept { return static_cast<std::int64_t>(tag); })
#define NBUF_TRACE_DETAIL(name_lit)                                     \
  const ::nbuf::obs::TraceSpan NBUF_OBS_CAT_(nbuf_trace_span_,          \
                                             __LINE__)(                 \
      (name_lit), ::nbuf::obs::TraceLevel::Detail, ::nbuf::obs::kNoTag)
#define NBUF_TRACE_DETAIL_TAGGED(name_lit, tag)                         \
  const ::nbuf::obs::TraceSpan NBUF_OBS_CAT_(nbuf_trace_span_,          \
                                             __LINE__)(                 \
      (name_lit), ::nbuf::obs::TraceLevel::Detail,                      \
      [&]() noexcept { return static_cast<std::int64_t>(tag); })

#else  // NBUF_TRACING == 0: spans vanish; sizeof keeps args type-checked
       // and referenced without evaluating them.

#define NBUF_TRACE_SPAN(name_lit) static_cast<void>(sizeof(name_lit))
#define NBUF_TRACE_SPAN_TAGGED(name_lit, tag) \
  static_cast<void>(sizeof(name_lit) + sizeof(tag))
#define NBUF_TRACE_DETAIL(name_lit) static_cast<void>(sizeof(name_lit))
#define NBUF_TRACE_DETAIL_TAGGED(name_lit, tag) \
  static_cast<void>(sizeof(name_lit) + sizeof(tag))

#endif  // NBUF_TRACING
