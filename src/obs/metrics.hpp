// MetricsRegistry: every subsystem reports through one door.
//
// Three instrument kinds, split by determinism guarantee:
//
//   Counter   — u64, relaxed atomic adds. Integer addition commutes, so a
//               counter's final value is a pure function of the work done:
//               bit-identical at 1 and 8 threads (the PR1-PR3 contract).
//   Histogram — u64 observations in power-of-two buckets plus count/sum/
//               min/max; all-integer, so schedule-independent like
//               counters.
//   Gauge     — double accumulator for wall-times and other measured
//               quantities. Floating-point accumulation does not commute
//               bit-exactly and timings vary run-to-run, so gauges are
//               explicitly OUTSIDE the determinism contract;
//               MetricsSnapshot::deterministic_equal ignores them.
//
// Lookup by name takes a mutex; the returned reference is stable for the
// registry's lifetime and updates on it are lock-free. Resolve names once
// outside hot loops.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace nbuf::util {
struct VgStats;
}

namespace nbuf::obs {

struct TraceData;

class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Histogram {
 public:
  // Bucket index = bit_width(v): bucket 0 holds only 0, bucket b holds
  // [2^(b-1), 2^b). 65 buckets cover the whole u64 range.
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  // min()/max() are meaningful only when count() > 0.
  [[nodiscard]] std::uint64_t min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

class Gauge {
 public:
  void add(double delta) noexcept;
  void set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

// A point-in-time copy of the registry, rows sorted by name (map order),
// so serializations are byte-deterministic.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const CounterRow&) const = default;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  // 0 when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    bool operator==(const HistogramRow&) const = default;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };

  std::vector<CounterRow> counters;
  std::vector<HistogramRow> histograms;
  std::vector<GaugeRow> gauges;

  // The determinism contract: counters and histograms equal; gauges
  // (timings) deliberately excluded.
  [[nodiscard]] bool deterministic_equal(const MetricsSnapshot& o) const {
    return counters == o.counters && histograms == o.histograms;
  }
};

class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) NBUF_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) NBUF_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) NBUF_EXCLUDES(mu_);

  [[nodiscard]] MetricsSnapshot snapshot() const NBUF_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  // unique_ptr for stable addresses across rehash-free map growth; the
  // instruments themselves are atomic, so only the maps are guarded.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      NBUF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      NBUF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      NBUF_GUARDED_BY(mu_);
};

// Adapters: fold existing stat blocks into a registry under stable names.
//
// VgStats DP counters land as "vg.<field>" counters and the opt-in phase
// timers as "vg.<phase>_seconds" gauges.
void record_vg_stats(MetricsRegistry& reg, const util::VgStats& stats);

// Trace-derived aggregates: per span name, "trace.<name>.count" counter,
// "trace.<name>.seconds" gauge (inclusive), and — for tagged spans — a
// "trace.<name>.tag" histogram of the nonnegative tag values (e.g. the
// candidate-list size distribution from the kernel detail spans).
void record_trace(MetricsRegistry& reg, const TraceData& data);

}  // namespace nbuf::obs
