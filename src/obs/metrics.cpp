#include "obs/metrics.hpp"

#include <bit>

#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace nbuf::obs {

void Histogram::observe(std::uint64_t v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Gauge::add(double delta) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

namespace {

// The caller holds the registry mutex (the analyzer checks this at every
// call site — the map references below are all NBUF_GUARDED_BY(mu_)).
template <class Instrument, class Map>
Instrument& get_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<Instrument>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const util::MutexLock lock(mu_);
  return get_or_create<Counter>(counters_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const util::MutexLock lock(mu_);
  return get_or_create<Histogram>(histograms_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const util::MutexLock lock(mu_);
  return get_or_create<Gauge>(gauges_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const util::MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.min = row.count > 0 ? h->min() : 0;
    row.max = h->max();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
      row.buckets[i] = h->bucket(i);
    snap.histograms.push_back(std::move(row));
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  return snap;
}

void record_vg_stats(MetricsRegistry& reg, const util::VgStats& stats) {
  reg.counter("vg.candidates_generated").add(stats.candidates_generated);
  reg.counter("vg.pruned_inferior").add(stats.pruned_inferior);
  reg.counter("vg.pruned_infeasible").add(stats.pruned_infeasible);
  reg.counter("vg.merged").add(stats.merged);
  reg.counter("vg.prune_calls").add(stats.prune_calls);
  reg.counter("vg.prune_sorts").add(stats.prune_sorts);
  reg.counter("vg.prune_sorts_skipped").add(stats.prune_sorts_skipped);
  reg.counter("vg.offset_flushes").add(stats.offset_flushes);
  reg.counter("vg.snapshot_cands_avoided").add(stats.snapshot_cands_avoided);
  reg.counter("vg.pool_reuses").add(stats.pool_reuses);
  reg.counter("vg.bp_prune_calls").add(stats.bp_prune_calls);
  reg.counter("vg.bp_candidates_killed").add(stats.bp_candidates_killed);
  reg.counter("vg.soa_block_reuses").add(stats.soa_block_reuses);
  reg.counter("vg.soa_flush_elems").add(stats.soa_flush_elems);
  reg.counter("vg.soa_full_lane_elems").add(stats.soa_full_lane_elems);
  reg.counter("vg.soa_tail_elems").add(stats.soa_tail_elems);
  reg.counter("vg.soa_prunes_no_move").add(stats.soa_prunes_no_move);
  reg.gauge("lib.types").set(static_cast<double>(stats.lib_types));
  reg.histogram("vg.peak_list_size").observe(stats.peak_list_size);
  reg.gauge("vg.wire_seconds").add(stats.wire_seconds);
  reg.gauge("vg.buffer_seconds").add(stats.buffer_seconds);
  reg.gauge("vg.merge_seconds").add(stats.merge_seconds);
}

void record_trace(MetricsRegistry& reg, const TraceData& data) {
  for (const PhaseRow& row : phase_breakdown(data)) {
    reg.counter("trace." + row.name + ".count").add(row.count);
    reg.gauge("trace." + row.name + ".seconds").add(row.seconds);
  }
  for (const ThreadTrace& t : data.threads) {
    for (const TraceEvent& e : t.events) {
      if (e.tag == kNoTag || e.tag < 0) continue;
      reg.histogram("trace." + std::string(e.name) + ".tag")
          .observe(static_cast<std::uint64_t>(e.tag));
    }
  }
}

}  // namespace nbuf::obs
