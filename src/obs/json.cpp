#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace nbuf::obs {

namespace {

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  // Deep enough for any schema this repo emits, shallow enough that
  // hostile input cannot overflow the parser's own stack.
  static constexpr std::size_t kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::Bool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind = JsonValue::Kind::Null;
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(std::size_t depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("bad escape");
      }
    }
  }

  // BMP-only \uXXXX, encoded back to UTF-8 (the writer never emits
  // surrogate pairs; only control characters are escaped this way).
  std::string parse_unicode_escape() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9')
        code += static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        code += static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F')
        code += static_cast<unsigned>(c - 'A') + 10;
      else
        fail("bad \\u escape");
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Reader(text).parse_document();
}

}  // namespace nbuf::obs
