#include "obs/trace.hpp"

#include <algorithm>
#include <map>

namespace nbuf::obs {

namespace {

// The single active recording. Install/uninstall happens only in
// TraceRecording's constructor and stop(), which the threading contract
// (trace.hpp) forbids racing with spans; the span fast path reads it with
// one acquire load.
// Process-wide by design: the span macros must find the recording without
// threading a context parameter through every DP call (docs/quality.md
// "mutable-global" policy).
std::atomic<TraceRecording*> g_active{nullptr};  // nbuf-lint: allow(mutable-global)

// Monotone recording id: lets a thread's cached buffer pointer from a
// previous recording be told apart from the current one without any
// per-recording thread bookkeeping.
std::atomic<std::uint64_t> g_next_generation{0};  // nbuf-lint: allow(mutable-global)

struct ThreadSlot {
  std::uint64_t generation = 0;  // 0 is never a real generation
  TraceBuffer* buffer = nullptr;
};

}  // namespace

namespace detail {

TraceBuffer* active_buffer(TraceLevel level) {
  TraceRecording* rec = g_active.load(std::memory_order_acquire);
  if (rec == nullptr) return nullptr;
  if (level == TraceLevel::Detail && rec->level() != TraceLevel::Detail)
    return nullptr;
  thread_local ThreadSlot slot;
  if (slot.generation != rec->generation()) {
    slot.buffer = rec->register_thread();
    slot.generation = rec->generation();
  }
  return slot.buffer;
}

}  // namespace detail

TraceRecording::TraceRecording(TraceLevel level)
    : level_(level),
      generation_(1 + g_next_generation.fetch_add(1,
                                                  std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {
  TraceRecording* expected = nullptr;
  NBUF_REQUIRE_MSG(
      g_active.compare_exchange_strong(expected, this,
                                       std::memory_order_release,
                                       std::memory_order_relaxed),
      "a TraceRecording is already active (one at a time)");
}

TraceRecording::~TraceRecording() {
  if (!stopped_) static_cast<void>(stop());
}

TraceBuffer* TraceRecording::register_thread() {
  const util::MutexLock lock(mu_);
  buffers_.push_back(std::make_unique<TraceBuffer>(epoch_));
  return buffers_.back().get();
}

TraceData TraceRecording::stop() {
  NBUF_REQUIRE_MSG(!stopped_, "TraceRecording::stop() called twice");
  stopped_ = true;
  g_active.store(nullptr, std::memory_order_release);
  const util::MutexLock lock(mu_);
  TraceData data;
  data.threads.reserve(buffers_.size());
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    TraceBuffer& buf = *buffers_[i];
    // All spans must have closed before stop() (workers joined).
    NBUF_ASSERT_MSG(buf.depth_ == 0, "unclosed span at TraceRecording::stop");
    data.threads.push_back(ThreadTrace{i + 1, std::move(buf.events_)});
  }
  buffers_.clear();
  return data;
}

namespace {

// Renders one root span subtree (events[i] at depth d and everything
// after it until depth returns to d) as "depth name [tag]" lines.
std::size_t render_subtree(const std::vector<TraceEvent>& events,
                           std::size_t i, std::string& out) {
  const std::uint32_t root_depth = events[i].depth;
  do {
    const TraceEvent& e = events[i];
    out += std::to_string(e.depth - root_depth);
    out += ' ';
    out += e.name;
    if (e.tag != kNoTag) {
      out += ' ';
      out += std::to_string(e.tag);
    }
    out += '\n';
    ++i;
  } while (i < events.size() && events[i].depth > root_depth);
  return i;
}

}  // namespace

std::string structure_signature(const TraceData& data) {
  // Which worker ran which net — and in which order — is schedule
  // noise; the multiset of root subtrees is not. Canonical form: every
  // root subtree rendered separately, sorted, concatenated.
  std::vector<std::string> roots;
  for (const ThreadTrace& t : data.threads) {
    std::size_t i = 0;
    while (i < t.events.size()) {
      std::string r;
      i = render_subtree(t.events, i, r);
      roots.push_back(std::move(r));
    }
  }
  std::sort(roots.begin(), roots.end());  // nbuf-lint: allow(sort)
  std::string sig;
  for (const std::string& r : roots) {
    sig += r;
    sig += "--\n";
  }
  return sig;
}

std::vector<PhaseRow> phase_breakdown(const TraceData& data) {
  std::map<std::string, PhaseRow> rows;
  for (const ThreadTrace& t : data.threads) {
    for (const TraceEvent& e : t.events) {
      if (!e.closed()) continue;
      PhaseRow& row = rows[e.name];
      row.count += 1;
      row.seconds += static_cast<double>(e.dur_ns) * 1e-9;
    }
  }
  std::vector<PhaseRow> out;
  out.reserve(rows.size());
  for (auto& [name, row] : rows) {
    row.name = name;
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace nbuf::obs
