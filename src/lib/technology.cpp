#include "lib/technology.hpp"

#include "util/units.hpp"

namespace nbuf::lib {

Technology default_technology() {
  using namespace nbuf::units;
  Technology t;
  t.wire_res_per_um = 0.073 * ohm;
  t.wire_cap_per_um = 0.21 * fF;
  t.vdd = 1.8 * V;
  t.aggressor_rise = 0.25 * ns;
  t.coupling_ratio = 0.7;
  t.validate();
  return t;
}

}  // namespace nbuf::lib
