// Process technology parameters: per-unit wire parasitics and the coupling
// "estimation mode" of the paper's Section II-B.
//
// When buffer insertion runs before detailed routing, neighboring aggressors
// are unknown; the paper's estimation mode assumes a single aggressor fully
// coupled to every wire with a fixed coupling-to-total-capacitance ratio
// lambda and a fixed aggressor slope mu = Vdd / rise_time. The injected
// current per wire is then  i_w = lambda * C_w * mu  (eq. 6).
#pragma once

#include "util/check.hpp"

namespace nbuf::lib {

struct Technology {
  // Wire parasitics per micrometer of routed length.
  double wire_res_per_um = 0.0;  // ohm/µm
  double wire_cap_per_um = 0.0;  // farad/µm (total, including coupling part)

  // Supply and estimation-mode coupling assumptions.
  double vdd = 0.0;              // volt
  double aggressor_rise = 0.0;   // second — aggressor input rise time
  double coupling_ratio = 0.0;   // lambda in [0,1): coupling cap / total cap

  // Aggressor slope mu = Vdd / rise_time (V/s).
  [[nodiscard]] double aggressor_slope() const {
    NBUF_EXPECTS(aggressor_rise > 0.0);
    return vdd / aggressor_rise;
  }

  // Estimation-mode injected current per µm of victim wire (A/µm):
  // i = lambda * c * mu.
  [[nodiscard]] double coupling_current_per_um() const {
    return coupling_ratio * wire_cap_per_um * aggressor_slope();
  }

  // Electrical values of a wire of the given length (µm).
  [[nodiscard]] double wire_res(double length_um) const {
    return wire_res_per_um * length_um;
  }
  [[nodiscard]] double wire_cap(double length_um) const {
    return wire_cap_per_um * length_um;
  }
  [[nodiscard]] double wire_coupling_current(double length_um) const {
    return coupling_current_per_um() * length_um;
  }

  void validate() const {
    NBUF_EXPECTS(wire_res_per_um > 0.0);
    NBUF_EXPECTS(wire_cap_per_um > 0.0);
    NBUF_EXPECTS(vdd > 0.0);
    NBUF_EXPECTS(aggressor_rise > 0.0);
    NBUF_EXPECTS(coupling_ratio >= 0.0 && coupling_ratio < 1.0);
  }
};

// The 0.25 µm-class technology used throughout Section V's reproduction:
// r = 0.073 ohm/µm, c = 0.21 fF/µm, Vdd = 1.8 V, aggressor rise 0.25 ns
// (slope 7.2 V/ns), lambda = 0.7.
[[nodiscard]] Technology default_technology();

}  // namespace nbuf::lib
