// Buffer library: the set of restoring gates available for insertion.
//
// The paper's experiments use a precharacterized library of 11 buffers
// (5 inverting + 6 non-inverting) of varying power levels with a linear gate
// delay model (Section II-A):
//
//   delay(g, load) = intrinsic_delay(g) + resistance(g) * load
//
// and a single shared noise margin of 0.8 V (Section V). default_library()
// reproduces that shape for a 0.25 µm-class process.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/strong_id.hpp"

namespace nbuf::lib {

struct BufferTag {};
// Index of a buffer type within a BufferLibrary.
using BufferId = util::StrongId<BufferTag>;

// One restoring gate (buffer or inverter) of the insertion library.
struct BufferType {
  std::string name;
  double resistance = 0.0;       // ohm — intrinsic output resistance R_b
  double input_cap = 0.0;        // farad — input pin capacitance C_b
  double intrinsic_delay = 0.0;  // second — intrinsic delay D_b
  double noise_margin = 0.0;     // volt — tolerable peak noise at the input
  bool inverting = false;        // flips signal polarity when true
};

class BufferLibrary {
 public:
  BufferLibrary() = default;
  explicit BufferLibrary(std::vector<BufferType> types);

  // Appends a type and returns its id. Name must be unique and parameters
  // strictly positive (noise margin may be +inf to model "noise-immune").
  BufferId add(BufferType type);

  [[nodiscard]] const BufferType& at(BufferId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return types_.size(); }
  [[nodiscard]] bool empty() const noexcept { return types_.empty(); }
  [[nodiscard]] const std::vector<BufferType>& types() const noexcept {
    return types_;
  }

  // Every id, in insertion order.
  [[nodiscard]] std::vector<BufferId> ids() const;

  // Id of the type with the given name, if any.
  [[nodiscard]] std::optional<BufferId> find(std::string_view name) const;

  [[nodiscard]] std::size_t inverting_count() const;

  // The buffer with smallest output resistance (exact resistance ties
  // resolve to the lexicographically smallest name, so the choice is
  // independent of the library's insertion order). Theorem 1's observation:
  // for pure noise avoidance the smallest-resistance buffer always yields
  // the maximum buffer spacing, so Algorithms 1 and 2 reduce a multi-buffer
  // library to this single type.
  [[nodiscard]] BufferId strongest() const;

  // Smallest input capacitance over the library (used by Theorem 5's
  // feasibility assumptions and by tests).
  [[nodiscard]] double min_input_cap() const;

  // Restrict to non-inverting types only (Algorithms 1/2 insert repeaters,
  // not inverters, because they do not track polarity).
  [[nodiscard]] BufferLibrary non_inverting() const;

 private:
  std::vector<BufferType> types_;
};

// The 11-buffer library used by all experiments: x1..x16 inverters and
// x1..x24 non-inverting buffers, NM = 0.8 V, geometric strength ladder.
[[nodiscard]] BufferLibrary default_library();

// A single mid-strength non-inverting buffer; the configuration under which
// the paper proves optimality of all three algorithms.
[[nodiscard]] BufferLibrary single_buffer_library();

// A synthetic geometric strength ladder of `types` gates for library-size
// sweeps (the nbuf_cli --lib-size flag and bench/figK_library_scaling):
// resistances interpolate log-uniformly from ~1.2 kΩ down to ~45 Ω, input
// caps rise inversely, and the first round(types * inverting_fraction)
// rungs (spread across the ladder) are inverters. `types` must be >= 1;
// inverting_fraction in [0, 1) — at least one rung stays non-inverting.
// Every resistance and input cap is strictly distinct, so candidate
// tie-break order never depends on the kernel's unstable sorts.
[[nodiscard]] BufferLibrary make_ladder_library(std::size_t types,
                                                double inverting_fraction);

}  // namespace nbuf::lib
