#include "lib/buffer.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/units.hpp"

namespace nbuf::lib {

BufferLibrary::BufferLibrary(std::vector<BufferType> types) {
  for (auto& t : types) add(std::move(t));
}

BufferId BufferLibrary::add(BufferType type) {
  NBUF_EXPECTS_MSG(!type.name.empty(), "buffer type needs a name");
  NBUF_EXPECTS(type.resistance > 0.0);
  NBUF_EXPECTS(type.input_cap > 0.0);
  NBUF_EXPECTS(type.intrinsic_delay >= 0.0);
  NBUF_EXPECTS(type.noise_margin > 0.0);
  for (const auto& existing : types_)
    NBUF_EXPECTS_MSG(existing.name != type.name, "duplicate buffer name");
  types_.push_back(std::move(type));
  return BufferId{static_cast<BufferId::underlying_type>(types_.size() - 1)};
}

const BufferType& BufferLibrary::at(BufferId id) const {
  NBUF_EXPECTS(id.valid() && id.value() < types_.size());
  return types_[id.value()];
}

std::vector<BufferId> BufferLibrary::ids() const {
  std::vector<BufferId> out;
  out.reserve(types_.size());
  for (std::size_t i = 0; i < types_.size(); ++i)
    out.emplace_back(static_cast<BufferId::underlying_type>(i));
  return out;
}

BufferId BufferLibrary::strongest() const {
  NBUF_EXPECTS_MSG(!types_.empty(), "empty buffer library");
  std::size_t best = 0;
  for (std::size_t i = 1; i < types_.size(); ++i)
    if (types_[i].resistance < types_[best].resistance) best = i;
  return BufferId{static_cast<BufferId::underlying_type>(best)};
}

double BufferLibrary::min_input_cap() const {
  NBUF_EXPECTS(!types_.empty());
  double m = std::numeric_limits<double>::infinity();
  for (const auto& t : types_) m = std::min(m, t.input_cap);
  return m;
}

BufferLibrary BufferLibrary::non_inverting() const {
  BufferLibrary out;
  for (const auto& t : types_)
    if (!t.inverting) out.add(t);
  return out;
}

BufferLibrary default_library() {
  using namespace nbuf::units;
  // Geometric x1..x16 inverter ladder and x1..x24 buffer ladder. A buffer is
  // two cascaded inverters, so at equal drive strength it has slightly lower
  // output resistance seen as a stage but more intrinsic delay and input cap;
  // the numbers below follow that shape for a 0.25 µm-class, 1.8 V process.
  BufferLibrary lib;
  lib.add({"inv_x1", 1200.0 * ohm, 3.0 * fF, 18.0 * ps, 0.8 * V, true});
  lib.add({"inv_x2", 600.0 * ohm, 6.0 * fF, 16.0 * ps, 0.8 * V, true});
  lib.add({"inv_x4", 300.0 * ohm, 12.0 * fF, 15.0 * ps, 0.8 * V, true});
  lib.add({"inv_x8", 150.0 * ohm, 24.0 * fF, 14.0 * ps, 0.8 * V, true});
  lib.add({"inv_x16", 75.0 * ohm, 48.0 * fF, 13.0 * ps, 0.8 * V, true});
  lib.add({"buf_x1", 1100.0 * ohm, 3.5 * fF, 35.0 * ps, 0.8 * V, false});
  lib.add({"buf_x2", 550.0 * ohm, 7.0 * fF, 32.0 * ps, 0.8 * V, false});
  lib.add({"buf_x4", 280.0 * ohm, 14.0 * fF, 30.0 * ps, 0.8 * V, false});
  lib.add({"buf_x8", 140.0 * ohm, 28.0 * fF, 28.0 * ps, 0.8 * V, false});
  lib.add({"buf_x16", 70.0 * ohm, 56.0 * fF, 26.0 * ps, 0.8 * V, false});
  lib.add({"buf_x24", 45.0 * ohm, 84.0 * fF, 25.0 * ps, 0.8 * V, false});
  return lib;
}

BufferLibrary single_buffer_library() {
  using namespace nbuf::units;
  BufferLibrary lib;
  lib.add({"buf_x8", 140.0 * ohm, 28.0 * fF, 28.0 * ps, 0.8 * V, false});
  return lib;
}

}  // namespace nbuf::lib
