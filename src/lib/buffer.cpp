#include "lib/buffer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/units.hpp"

namespace nbuf::lib {

BufferLibrary::BufferLibrary(std::vector<BufferType> types) {
  for (auto& t : types) add(std::move(t));
}

BufferId BufferLibrary::add(BufferType type) {
  NBUF_EXPECTS_MSG(!type.name.empty(), "buffer type needs a name");
  NBUF_EXPECTS(type.resistance > 0.0);
  NBUF_EXPECTS(type.input_cap > 0.0);
  NBUF_EXPECTS(type.intrinsic_delay >= 0.0);
  NBUF_EXPECTS(type.noise_margin > 0.0);
  for (const auto& existing : types_)
    NBUF_EXPECTS_MSG(existing.name != type.name, "duplicate buffer name");
  types_.push_back(std::move(type));
  return BufferId{static_cast<BufferId::underlying_type>(types_.size() - 1)};
}

const BufferType& BufferLibrary::at(BufferId id) const {
  NBUF_EXPECTS(id.valid() && id.value() < types_.size());
  return types_[id.value()];
}

std::vector<BufferId> BufferLibrary::ids() const {
  std::vector<BufferId> out;
  out.reserve(types_.size());
  for (std::size_t i = 0; i < types_.size(); ++i)
    out.emplace_back(static_cast<BufferId::underlying_type>(i));
  return out;
}

std::optional<BufferId> BufferLibrary::find(std::string_view name) const {
  for (std::size_t i = 0; i < types_.size(); ++i)
    if (types_[i].name == name)
      return BufferId{static_cast<BufferId::underlying_type>(i)};
  return std::nullopt;
}

std::size_t BufferLibrary::inverting_count() const {
  std::size_t n = 0;
  for (const auto& t : types_)
    if (t.inverting) ++n;
  return n;
}

BufferId BufferLibrary::strongest() const {
  NBUF_EXPECTS_MSG(!types_.empty(), "empty buffer library");
  std::size_t best = 0;
  for (std::size_t i = 1; i < types_.size(); ++i) {
    // Resistance ties break on name so the choice survives any permutation
    // of the library (names are unique; ids are insertion-order dependent).
    if (types_[i].resistance < types_[best].resistance ||
        (types_[i].resistance == types_[best].resistance &&
         types_[i].name < types_[best].name))
      best = i;
  }
  return BufferId{static_cast<BufferId::underlying_type>(best)};
}

double BufferLibrary::min_input_cap() const {
  NBUF_EXPECTS(!types_.empty());
  double m = std::numeric_limits<double>::infinity();
  for (const auto& t : types_) m = std::min(m, t.input_cap);
  return m;
}

BufferLibrary BufferLibrary::non_inverting() const {
  BufferLibrary out;
  for (const auto& t : types_)
    if (!t.inverting) out.add(t);
  return out;
}

BufferLibrary default_library() {
  using namespace nbuf::units;
  // Geometric x1..x16 inverter ladder and x1..x24 buffer ladder. A buffer is
  // two cascaded inverters, so at equal drive strength it has slightly lower
  // output resistance seen as a stage but more intrinsic delay and input cap;
  // the numbers below follow that shape for a 0.25 µm-class, 1.8 V process.
  BufferLibrary lib;
  lib.add({"inv_x1", 1200.0 * ohm, 3.0 * fF, 18.0 * ps, 0.8 * V, true});
  lib.add({"inv_x2", 600.0 * ohm, 6.0 * fF, 16.0 * ps, 0.8 * V, true});
  lib.add({"inv_x4", 300.0 * ohm, 12.0 * fF, 15.0 * ps, 0.8 * V, true});
  lib.add({"inv_x8", 150.0 * ohm, 24.0 * fF, 14.0 * ps, 0.8 * V, true});
  lib.add({"inv_x16", 75.0 * ohm, 48.0 * fF, 13.0 * ps, 0.8 * V, true});
  lib.add({"buf_x1", 1100.0 * ohm, 3.5 * fF, 35.0 * ps, 0.8 * V, false});
  lib.add({"buf_x2", 550.0 * ohm, 7.0 * fF, 32.0 * ps, 0.8 * V, false});
  lib.add({"buf_x4", 280.0 * ohm, 14.0 * fF, 30.0 * ps, 0.8 * V, false});
  lib.add({"buf_x8", 140.0 * ohm, 28.0 * fF, 28.0 * ps, 0.8 * V, false});
  lib.add({"buf_x16", 70.0 * ohm, 56.0 * fF, 26.0 * ps, 0.8 * V, false});
  lib.add({"buf_x24", 45.0 * ohm, 84.0 * fF, 25.0 * ps, 0.8 * V, false});
  return lib;
}

BufferLibrary single_buffer_library() {
  using namespace nbuf::units;
  BufferLibrary lib;
  lib.add({"buf_x8", 140.0 * ohm, 28.0 * fF, 28.0 * ps, 0.8 * V, false});
  return lib;
}

BufferLibrary make_ladder_library(std::size_t types,
                                  double inverting_fraction) {
  using namespace nbuf::units;
  NBUF_EXPECTS(types >= 1);
  NBUF_EXPECTS(inverting_fraction >= 0.0 && inverting_fraction < 1.0);
  // Log-uniform interpolation between the default library's extremes, so a
  // 1-type ladder is a mid-strength gate and a 64-type ladder brackets the
  // paper's 11-type library with finer granularity.
  const double r_hi = 1200.0 * ohm, r_lo = 45.0 * ohm;
  const double c_lo = 3.0 * fF, c_hi = 84.0 * fF;
  const std::size_t n_inv = std::min(
      types - 1, static_cast<std::size_t>(
                     std::llround(inverting_fraction *
                                  static_cast<double>(types))));
  BufferLibrary out;
  for (std::size_t i = 0; i < types; ++i) {
    const double f = types == 1 ? 0.5
                                : static_cast<double>(i) /
                                      static_cast<double>(types - 1);
    // Bresenham spread: rung i is an inverter when the running quota
    // (i+1)*n_inv/types ticks over, so inverters interleave the ladder
    // instead of clustering at one end.
    const bool inverting =
        ((i + 1) * n_inv) / types > (i * n_inv) / types;
    BufferType t;
    t.resistance = r_hi * std::pow(r_lo / r_hi, f);
    t.input_cap = c_lo * std::pow(c_hi / c_lo, f);
    // Inverters are single stages: lower intrinsic delay than the two-stage
    // buffers of equal drive, both mildly improving with strength.
    t.intrinsic_delay =
        inverting ? (18.0 - 5.0 * f) * ps : (35.0 - 10.0 * f) * ps;
    t.noise_margin = 0.8 * V;
    t.inverting = inverting;
    t.name = (inverting ? "inv_g" : "buf_g") + std::to_string(i + 1);
    out.add(std::move(t));
  }
  return out;
}

}  // namespace nbuf::lib
