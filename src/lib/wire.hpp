// Discrete wire-width library for simultaneous wire sizing (Lillis, Cheng,
// Lin, JSSC 1996 — the extension family the paper's Algorithm 3 builds on).
//
// Each width is expressed as scale factors on the base (1x) wire's
// electrical values: widening divides resistance, grows total capacitance
// sublinearly (area grows, fringe roughly constant), and reduces the
// injected coupling current (sidewall coupling capacitance stays roughly
// constant while the victim gets less resistive, so the coupled fraction of
// total capacitance drops).
#pragma once

#include <string>
#include <vector>

#include "util/check.hpp"

namespace nbuf::lib {

struct WireWidth {
  std::string name;
  double res_scale = 1.0;       // multiplies wire resistance
  double cap_scale = 1.0;       // multiplies wire capacitance
  double coupling_scale = 1.0;  // multiplies injected coupling current
};

class WireWidthLibrary {
 public:
  WireWidthLibrary() = default;
  explicit WireWidthLibrary(std::vector<WireWidth> widths);

  std::size_t add(WireWidth w);
  [[nodiscard]] const WireWidth& at(std::size_t i) const;
  [[nodiscard]] std::size_t size() const noexcept { return widths_.size(); }
  [[nodiscard]] bool empty() const noexcept { return widths_.empty(); }
  [[nodiscard]] const std::vector<WireWidth>& widths() const noexcept {
    return widths_;
  }

 private:
  std::vector<WireWidth> widths_;
};

// 1x / 2x / 4x ladder; index 0 is always the base width (scales = 1).
[[nodiscard]] WireWidthLibrary default_wire_widths();

}  // namespace nbuf::lib
