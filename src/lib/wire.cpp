#include "lib/wire.hpp"

namespace nbuf::lib {

WireWidthLibrary::WireWidthLibrary(std::vector<WireWidth> widths) {
  for (auto& w : widths) add(std::move(w));
}

std::size_t WireWidthLibrary::add(WireWidth w) {
  NBUF_EXPECTS(!w.name.empty());
  NBUF_EXPECTS(w.res_scale > 0.0);
  NBUF_EXPECTS(w.cap_scale > 0.0);
  NBUF_EXPECTS(w.coupling_scale >= 0.0);
  if (widths_.empty()) {
    NBUF_EXPECTS_MSG(w.res_scale == 1.0 && w.cap_scale == 1.0 &&
                         w.coupling_scale == 1.0,
                     "width 0 must be the base (1x) wire");
  }
  widths_.push_back(std::move(w));
  return widths_.size() - 1;
}

const WireWidth& WireWidthLibrary::at(std::size_t i) const {
  NBUF_EXPECTS(i < widths_.size());
  return widths_[i];
}

WireWidthLibrary default_wire_widths() {
  WireWidthLibrary l;
  l.add({"w1x", 1.0, 1.0, 1.0});
  l.add({"w2x", 0.5, 1.45, 0.80});
  l.add({"w4x", 0.25, 2.35, 0.65});
  return l;
}

}  // namespace nbuf::lib
