// Synthetic microprocessor-net testbench.
//
// The paper evaluates on the 500 largest-total-capacitance nets of a
// PowerPC design — proprietary data we substitute with a seed-stable
// synthetic workload of the same shape: mostly-few-sink global nets,
// millimeter-scale spans routed through the Steiner generator, 0.25 µm-class
// parasitics, estimation-mode coupling (lambda = 0.7, 7.2 V/ns aggressor),
// a 0.8 V noise margin everywhere, and per-sink required arrival times set
// with a fixed headroom above each net's delay-optimal buffered delay (so
// that "meet timing with the fewest buffers" — Problem 3 — is well-posed,
// as in the paper's BuffOpt tool).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lib/buffer.hpp"
#include "lib/technology.hpp"
#include "rct/tree.hpp"
#include "util/rng.hpp"

namespace nbuf::netgen {

struct TestbenchOptions {
  std::uint64_t seed = 9851;
  std::size_t net_count = 500;
  lib::Technology tech = lib::default_technology();
  // RAT(si) = headroom * delay-optimal arrival of si.
  double rat_headroom = 1.10;
  // Net spatial extent (µm): log-uniform span of the sink bounding box.
  double min_span = 2000.0;
  double max_span = 12000.0;
  // Driver strength range (ohm, log-uniform) and intrinsic delay (s).
  double min_driver_res = 40.0;
  double max_driver_res = 400.0;
  // Sink pin capacitance range (farad, uniform).
  double min_sink_cap = 4e-15;
  double max_sink_cap = 40e-15;
  double noise_margin = 0.8;  // volt, all sinks (paper Section V)
  // Wire segmenting used when deriving delay-optimal RATs.
  double rat_segment_length = 500.0;  // µm
};

struct GeneratedNet {
  std::string name;
  rct::RoutingTree tree;  // binarized, estimation-mode coupling annotated
  std::size_t sink_count = 0;
  double total_cap = 0.0;    // farad
  double wirelength = 0.0;   // µm
};

// Sink-count distribution of the testbench (Table I shape): heavily skewed
// toward few sinks, with a tail to ~20.
[[nodiscard]] std::size_t sample_sink_count(util::Rng& rng);

// Generates the testbench. `lib` is needed to derive delay-optimal RATs.
[[nodiscard]] std::vector<GeneratedNet> generate_testbench(
    const lib::BufferLibrary& lib, const TestbenchOptions& options = {});

// Generates one net (exposed for tests and examples).
[[nodiscard]] GeneratedNet generate_net(util::Rng& rng,
                                        const lib::BufferLibrary& lib,
                                        const TestbenchOptions& options,
                                        std::size_t index);

}  // namespace nbuf::netgen
