#include "netgen/netgen.hpp"

#include <cmath>

#include "core/tool.hpp"
#include "steiner/steiner.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace nbuf::netgen {

std::size_t sample_sink_count(util::Rng& rng) {
  // Bucketed Table-I-style distribution: global nets are dominated by one-
  // and two-sink topologies with a small high-fanout tail.
  static const std::vector<double> weights = {
      59.0,  // 1 sink
      18.5,  // 2 sinks
      8.0,   // 3
      5.0,   // 4
      3.5,   // 5
      4.5,   // 6-10 (uniform within)
      1.5,   // 11-20 (uniform within)
  };
  const std::size_t bucket = rng.weighted_index(weights);
  switch (bucket) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 3;
    case 3: return 4;
    case 4: return 5;
    case 5: return static_cast<std::size_t>(rng.uniform_int(6, 10));
    default: return static_cast<std::size_t>(rng.uniform_int(11, 20));
  }
}

GeneratedNet generate_net(util::Rng& rng, const lib::BufferLibrary& lib,
                          const TestbenchOptions& options, std::size_t index) {
  using namespace nbuf::units;
  options.tech.validate();

  const std::size_t sinks = sample_sink_count(rng);
  const double span = rng.log_uniform(options.min_span, options.max_span);
  const double aspect = rng.uniform(0.25, 1.0);

  rct::Driver driver;
  driver.name = "drv" + std::to_string(index);
  driver.resistance =
      rng.log_uniform(options.min_driver_res, options.max_driver_res);
  driver.intrinsic_delay = rng.uniform(20.0 * ps, 80.0 * ps);

  std::vector<steiner::PinSpec> pins;
  pins.reserve(sinks);
  for (std::size_t s = 0; s < sinks; ++s) {
    steiner::PinSpec pin;
    // Keep sinks away from the source corner so nets really span `span`.
    pin.at.x = rng.uniform(0.3 * span, span);
    pin.at.y = rng.uniform(0.0, span * aspect);
    pin.info.name = "net" + std::to_string(index) + "_s" + std::to_string(s);
    pin.info.cap = rng.uniform(options.min_sink_cap, options.max_sink_cap);
    pin.info.noise_margin = options.noise_margin;
    pin.info.required_arrival = 0.0;  // set below from delay-optimal timing
    pins.push_back(pin);
  }

  GeneratedNet net;
  net.name = "net" + std::to_string(index);
  net.tree =
      steiner::build_tree(steiner::Point{0.0, 0.0}, driver, pins, options.tech);
  net.sink_count = sinks;
  net.wirelength = net.tree.total_wirelength();
  net.total_cap = net.tree.total_cap();

  // Derive per-sink RATs: a fixed headroom above the net's delay-optimal
  // buffered arrival times, making Problem 3 well-posed on every net.
  core::ToolOptions topt;
  topt.segmenting.max_segment_length = options.rat_segment_length;
  const core::ToolResult delay_opt =
      core::run_delayopt(net.tree, lib, /*max_buffers=*/16, topt);
  for (const auto& st : delay_opt.timing_after.sinks) {
    const rct::SinkId sid = st.sink;
    rct::SinkInfo info = net.tree.sink(sid);
    info.required_arrival = options.rat_headroom * st.delay;
    net.tree.set_sink_info(sid, info);
  }
  return net;
}

std::vector<GeneratedNet> generate_testbench(const lib::BufferLibrary& lib,
                                             const TestbenchOptions& options) {
  util::Rng rng(options.seed);
  std::vector<GeneratedNet> nets;
  nets.reserve(options.net_count);
  for (std::size_t i = 0; i < options.net_count; ++i)
    nets.push_back(generate_net(rng, lib, options, i));
  return nets;
}

}  // namespace nbuf::netgen
