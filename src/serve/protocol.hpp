// nbuf-rpc-v1: the length-framed binary protocol of the optimization
// service (docs/serving.md).
//
// Every message — request or response — is one frame: a fixed 20-byte
// little-endian header followed by `payload_len` bytes of payload.
//
//   offset  size  field
//        0     4  magic        0x4E425546 ("NBUF" as a u32)
//        4     2  version      1
//        6     2  opcode       Opcode below
//        8     8  request_id   echoed verbatim in the response
//       16     4  payload_len  <= kMaxPayload (64 MiB)
//
// Payloads are line-oriented text reusing the `.net` / `.lib` interchange
// formats and their EDA units (µm / ohm / fF / ps / V); responses render
// doubles with 17 significant digits, so identical request streams produce
// bit-identical response bytes — the determinism contract test_serve
// enforces at 1 vs 8 worker threads.
//
// Error handling is two-tier. A header-level fault (bad magic, unsupported
// version, oversized payload) means framing is lost: the server replies one
// typed Error frame and closes the connection. A valid header with a bad
// opcode or payload is a request-level fault: the server replies Error and
// keeps serving the session.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace nbuf::serve {

inline constexpr std::uint32_t kMagic = 0x4E425546;  // "NBUF"
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;
inline constexpr std::uint32_t kMaxPayload = 64u << 20;  // 64 MiB

enum class Opcode : std::uint16_t {
  Error = 0,     // response-only: payload is "error <category>: <message>"
  LoadNet = 1,   // payload: optional "segment <um>" line + .net text
  LoadLib = 2,   // payload: .lib text; replaces the session library
  Optimize = 3,  // payload: "net <name>" + option lines; full (cold) run
  Perturb = 4,   // payload: "net <name>" + edit lines; incremental re-run
  Signoff = 5,   // payload: "net <name>"; golden/metric/timing verify
  Stats = 6,     // payload empty; session-local counters
  Shutdown = 7,  // payload empty; server stops accepting after the reply
};

[[nodiscard]] const char* to_string(Opcode op);
[[nodiscard]] bool is_request_opcode(std::uint16_t raw);

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kVersion;
  std::uint16_t opcode = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

// Why a frame's header (not its payload) was rejected.
enum class HeaderError {
  None,
  BadMagic,
  BadVersion,
  Oversized,
  Truncated,  // peer closed mid-frame
};
[[nodiscard]] const char* to_string(HeaderError err);

void encode_header(const FrameHeader& h, unsigned char out[kHeaderSize]);
[[nodiscard]] FrameHeader decode_header(const unsigned char in[kHeaderSize]);
// Magic/version/size checks only; opcode validity is a request-level issue.
[[nodiscard]] HeaderError validate_header(const FrameHeader& h);

struct Frame {
  Opcode op = Opcode::Error;
  std::uint64_t request_id = 0;
  std::string payload;
};

// Header + payload as one wire-ready byte string.
[[nodiscard]] std::string encode_frame(const Frame& f);

// Request-level failure categories (the first token after "error " in an
// Error payload, so clients can dispatch without parsing prose).
enum class ErrorCode {
  BadOpcode,   // header carried an opcode the server does not know
  BadRequest,  // payload failed to parse (options, edits, net/lib text)
  BadState,    // request is valid but the session lacks the prerequisite
               // (unknown net name, signoff before optimize, ...)
  Internal,    // unexpected exception inside a handler
};
[[nodiscard]] const char* to_string(ErrorCode code);

// Thrown by session handlers; the server turns it into an Error frame.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

// The Error-frame payload for a failed request: "error <category>: <msg>".
[[nodiscard]] std::string error_payload(ErrorCode code,
                                        const std::string& message);
[[nodiscard]] std::string error_payload(HeaderError err);

// --- blocking frame I/O over a connected socket ---------------------------

// Reads one full frame. Returns HeaderError::None on success; Truncated on
// clean EOF before any header byte (out.payload empty) or mid-frame; any
// other value means the header failed validation and the byte stream is no
// longer framed (the caller must close). `clean_eof` distinguishes "peer
// finished" from "peer died mid-frame".
HeaderError read_frame(int fd, Frame& out, bool& clean_eof);

// Writes header + payload; returns false when the peer is gone.
bool write_frame(int fd, const Frame& f);

}  // namespace nbuf::serve
