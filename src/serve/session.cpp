#include "serve/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "batch/batch.hpp"
#include "io/libfile.hpp"
#include "io/netfile.hpp"
#include "obs/trace.hpp"
#include "seg/segment.hpp"
#include "sim/golden.hpp"
#include "signoff/signoff.hpp"
#include "util/units.hpp"

namespace nbuf::serve {

namespace {

using namespace nbuf::units;

// %.17g — enough digits that the text round-trips the double exactly, so
// response bytes are a pure function of the solution.
std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> t;
  std::string w;
  while (in >> w) t.push_back(w);
  return t;
}

std::size_t parse_index(const std::string& v, const char* what) {
  std::size_t pos = 0;
  unsigned long long n = 0;
  try {
    n = std::stoull(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos == 0 || pos != v.size())
    throw ProtocolError(ErrorCode::BadRequest,
                        std::string(what) + " needs a nonnegative integer, "
                                            "got '" +
                            v + "'");
  return static_cast<std::size_t>(n);
}

double parse_double(const std::string& v, const char* what) {
  std::size_t pos = 0;
  double d = 0.0;
  try {
    d = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos == 0 || pos != v.size() || !std::isfinite(d))
    throw ProtocolError(ErrorCode::BadRequest,
                        std::string(what) + " needs a finite number, got '" +
                            v + "'");
  return d;
}

// First line must be "net <name>" for the compute opcodes; empty string
// when the payload is not in that shape (the handler reports the error).
std::string peek_net_name(const std::string& payload) {
  const std::size_t eol = payload.find('\n');
  const std::string first =
      eol == std::string::npos ? payload : payload.substr(0, eol);
  const auto t = tokens_of(first);
  if (t.size() == 2 && t[0] == "net") return t[1];
  return {};
}

}  // namespace

struct Session::Impl {
  explicit Impl(SessionOptions o) : opt(std::move(o)) {
    if (opt.threads == 0) opt.threads = 1;
  }

  struct NetEntry {
    rct::RoutingTree base;  // binarized + segmented at LOAD_NET
    std::optional<lib::Technology> tech;
    std::unique_ptr<core::IncrementalContext> ctx;
    core::VgOptions ctx_opts;  // options the context was built with
  };

  // Per-request counter movement, folded serially in request order so
  // parallel handlers never touch shared counters.
  struct Delta {
    std::uint64_t errors = 0;
    std::uint64_t nets_loaded = 0;
    std::uint64_t libs_loaded = 0;
    std::uint64_t optimizes = 0;
    std::uint64_t perturbs = 0;
    std::uint64_t signoffs = 0;
    std::uint64_t reused = 0;
    std::uint64_t recomputed = 0;
  };

  SessionOptions opt;
  lib::BufferLibrary library = lib::default_library();
  std::map<std::string, NetEntry> nets;
  Counters counters;
  bool shutdown = false;

  NetEntry& entry_of(const std::string& name) {
    const auto it = nets.find(name);
    if (it == nets.end())
      throw ProtocolError(ErrorCode::BadState, "unknown net '" + name +
                                                   "' (LOAD_NET it first)");
    return it->second;
  }

  // "net <name>" + option lines -> (entry, effective VgOptions).
  static core::VgOptions options_from(
      const std::vector<std::string>& lines, std::size_t first) {
    core::VgOptions vg;
    vg.objective = core::VgObjective::MinBuffersMeetingConstraints;
    for (std::size_t i = first; i < lines.size(); ++i) {
      const auto t = tokens_of(lines[i]);
      if (t.empty()) continue;
      if (t[0] == "max_buffers" && t.size() == 2) {
        vg.max_buffers = parse_index(t[1], "max_buffers");
        if (vg.max_buffers == 0)
          throw ProtocolError(ErrorCode::BadRequest,
                              "max_buffers must be >= 1");
      } else if (t[0] == "noise" && t.size() == 2) {
        vg.noise_constraints = parse_index(t[1], "noise") != 0;
      } else if (t[0] == "objective" && t.size() == 2) {
        if (t[1] == "slack")
          vg.objective = core::VgObjective::MaxSlack;
        else if (t[1] == "min_buffers")
          vg.objective = core::VgObjective::MinBuffersMeetingConstraints;
        else
          throw ProtocolError(ErrorCode::BadRequest,
                              "objective must be slack|min_buffers");
      } else {
        throw ProtocolError(ErrorCode::BadRequest,
                            "unknown option line '" + lines[i] + "'");
      }
    }
    return vg;
  }

  static bool same_options(const core::VgOptions& a,
                           const core::VgOptions& b) {
    return a.max_buffers == b.max_buffers &&
           a.noise_constraints == b.noise_constraints &&
           a.objective == b.objective;
  }

  core::IncrementalContext& context_of(NetEntry& e,
                                       const core::VgOptions& vg) {
    if (e.ctx == nullptr) {
      e.ctx = std::make_unique<core::IncrementalContext>(e.base, library, vg);
      e.ctx_opts = vg;
    } else if (!same_options(e.ctx_opts, vg)) {
      throw ProtocolError(ErrorCode::BadState,
                          "net already optimized with different options; "
                          "LOAD_NET again to change them");
    }
    return *e.ctx;
  }

  // The shared solution rendering of OPTIMIZE and PERTURB responses.
  static std::string render_solution(const std::string& name,
                                     const core::IncrementalContext& ctx) {
    const core::VgResult& r = *ctx.result();
    std::string out = "ok net " + name + "\n";
    out += "feasible " + std::string(r.feasible ? "1" : "0") + "\n";
    out += "timing_met " + std::string(r.timing_met ? "1" : "0") + "\n";
    out += "buffer_count " + std::to_string(r.buffer_count) + "\n";
    out += "slack " + fmt_g(r.slack) + "\n";
    // entries() is sorted by node id, which is exactly the node-ordered
    // buffer-line promise of the wire format.
    const auto entries = r.buffers.entries();
    for (const auto& [node, type] : entries)
      out += "buffer " + std::to_string(node.value()) + " " +
             ctx.library().at(type).name + "\n";
    for (const core::CountBest& c : r.per_count)
      out += "count " + std::to_string(c.count) + " " + fmt_g(c.slack) +
             " " + fmt_g(c.noise_slack) + " " + (c.noise_ok ? "1" : "0") +
             "\n";
    out += "reused " + std::to_string(ctx.stats().last_reused) + "\n";
    out += "recomputed " + std::to_string(ctx.stats().last_recomputed) +
           "\n";
    return out;
  }

  std::string do_load_net(const std::string& payload, Delta& d) {
    auto text = payload;
    double segment_um = opt.segment_um;
    // An optional leading "segment <um>" line overrides the granularity.
    const std::size_t eol = text.find('\n');
    const std::string first =
        eol == std::string::npos ? text : text.substr(0, eol);
    const auto t = tokens_of(first);
    if (t.size() == 2 && t[0] == "segment") {
      segment_um = parse_double(t[1], "segment");
      if (segment_um <= 0.0)
        throw ProtocolError(ErrorCode::BadRequest, "segment must be > 0");
      text = eol == std::string::npos ? std::string{} : text.substr(eol + 1);
    }
    io::NetFile net;
    try {
      std::istringstream in(text);
      net = io::read_net(in, library);
    } catch (const io::ParseError& e) {
      throw ProtocolError(ErrorCode::BadRequest,
                          std::string("net parse failed: ") + e.what());
    }
    if (net.name.empty())
      throw ProtocolError(ErrorCode::BadRequest,
                          "net file needs a 'name <net-name>' line");
    NetEntry e;
    net.tree.binarize();
    (void)seg::segment(net.tree, {segment_um});
    e.base = std::move(net.tree);
    e.tech = net.tech;
    // A PERTURB before any OPTIMIZE builds its context with the same
    // defaults an option-less OPTIMIZE would use.
    e.ctx_opts = options_from({}, 0);
    const std::size_t nodes = e.base.node_count();
    const std::size_t sinks = e.base.sink_count();
    nets.insert_or_assign(net.name, std::move(e));
    ++d.nets_loaded;
    return "ok net " + net.name + " nodes " + std::to_string(nodes) +
           " sinks " + std::to_string(sinks) + "\n";
  }

  std::string do_load_lib(const std::string& payload, Delta& d) {
    io::LibFile f;
    try {
      std::istringstream in(payload);
      f = io::read_library(in);
    } catch (const io::ParseError& e) {
      throw ProtocolError(ErrorCode::BadRequest,
                          std::string("library parse failed: ") + e.what());
    }
    // Existing contexts keep the library they were built with; reload nets
    // to re-optimize under the new one.
    library = std::move(f.library);
    ++d.libs_loaded;
    return "ok lib types " + std::to_string(library.size()) + "\n";
  }

  std::string do_optimize(const std::string& payload, Delta& d) {
    const auto lines = split_lines(payload);
    const std::string name = peek_net_name(payload);
    if (name.empty())
      throw ProtocolError(ErrorCode::BadRequest,
                          "OPTIMIZE payload must start with 'net <name>'");
    NetEntry& e = entry_of(name);
    const core::VgOptions vg = options_from(lines, 1);
    core::IncrementalContext& ctx = context_of(e, vg);
    NBUF_TRACE_SPAN_TAGGED("serve.optimize", ctx.tree().node_count());
    ctx.invalidate_all();  // OPTIMIZE is by definition a cold full run
    (void)ctx.optimize();
    ++d.optimizes;
    d.reused += ctx.stats().last_reused;
    d.recomputed += ctx.stats().last_recomputed;
    return render_solution(name, ctx);
  }

  // One edit line of a PERTURB payload, applied through the incremental
  // API's dirty-marking entry points.
  void apply_edit(core::IncrementalContext& ctx,
                  const std::vector<std::string>& t,
                  const std::string& line) {
    const rct::RoutingTree& tree = ctx.tree();
    const auto node_arg = [&](const std::string& v) {
      const std::size_t idx = parse_index(v, "node");
      if (idx >= tree.node_count())
        throw ProtocolError(ErrorCode::BadRequest,
                            "node " + v + " out of range (tree has " +
                                std::to_string(tree.node_count()) +
                                " nodes)");
      const auto id = rct::NodeId{static_cast<std::uint32_t>(idx)};
      if (id == tree.source())
        throw ProtocolError(ErrorCode::BadRequest,
                            "the source node has no parent wire");
      return id;
    };
    if (t[0] == "scale_wire" && t.size() == 5) {
      ctx.scale_wire(node_arg(t[1]), parse_double(t[2], "res_factor"),
                     parse_double(t[3], "cap_factor"),
                     parse_double(t[4], "cur_factor"));
    } else if (t[0] == "set_sink" && t.size() == 5) {
      const std::size_t idx = parse_index(t[1], "sink");
      if (idx >= tree.sink_count())
        throw ProtocolError(ErrorCode::BadRequest,
                            "sink " + t[1] + " out of range (net has " +
                                std::to_string(tree.sink_count()) +
                                " sinks)");
      const auto sid = rct::SinkId{static_cast<std::uint32_t>(idx)};
      rct::SinkInfo info = tree.sink(sid);
      info.cap = parse_double(t[2], "cap_ff") * fF;
      info.required_arrival = parse_double(t[3], "rat_ps") * ps;
      info.noise_margin = parse_double(t[4], "nm_v");
      ctx.set_sink(sid, info);
    } else if (t[0] == "split_wire" && t.size() == 3) {
      const rct::NodeId v = node_arg(t[1]);
      const double dist = parse_double(t[2], "dist_um");
      const double len = tree.node(v).parent_wire.length;
      if (!(dist > 0.0 && dist < len))
        throw ProtocolError(ErrorCode::BadRequest,
                            "split distance " + t[2] +
                                " outside (0, wire length " + fmt_g(len) +
                                ")");
      (void)ctx.split_wire(v, dist);
    } else if (t[0] == "tighten_margins" && t.size() == 2) {
      ctx.tighten_margins(parse_double(t[1], "delta_v"));
    } else if (t[0] == "scale_coupling" && t.size() == 2) {
      ctx.scale_coupling(parse_double(t[1], "factor"));
    } else {
      throw ProtocolError(ErrorCode::BadRequest,
                          "unknown edit line '" + line + "'");
    }
  }

  std::string do_perturb(const std::string& payload, Delta& d) {
    const auto lines = split_lines(payload);
    const std::string name = peek_net_name(payload);
    if (name.empty())
      throw ProtocolError(ErrorCode::BadRequest,
                          "PERTURB payload must start with 'net <name>'");
    NetEntry& e = entry_of(name);
    core::IncrementalContext& ctx = context_of(e, e.ctx_opts);
    NBUF_TRACE_SPAN_TAGGED("serve.perturb", ctx.tree().node_count());
    bool full = false;
    std::size_t edits = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const auto t = tokens_of(lines[i]);
      if (t.empty()) continue;
      if (t[0] == "full" && t.size() == 2) {
        full = parse_index(t[1], "full") != 0;
        continue;
      }
      apply_edit(ctx, t, lines[i]);
      ++edits;
    }
    if (edits == 0)
      throw ProtocolError(ErrorCode::BadRequest,
                          "PERTURB needs at least one edit line");
    // "full 1" discards the cache after the edits: a from-scratch run on
    // the perturbed tree, the A/B lever the bit-identity tests and the
    // cold-vs-incremental bench pull.
    if (full) ctx.invalidate_all();
    (void)ctx.optimize();
    ++d.perturbs;
    d.reused += ctx.stats().last_reused;
    d.recomputed += ctx.stats().last_recomputed;
    return render_solution(name, ctx);
  }

  std::string do_signoff(const std::string& payload, Delta& d) {
    const std::string name = peek_net_name(payload);
    if (name.empty())
      throw ProtocolError(ErrorCode::BadRequest,
                          "SIGNOFF payload must start with 'net <name>'");
    NetEntry& e = entry_of(name);
    if (e.ctx == nullptr || e.ctx->result() == nullptr)
      throw ProtocolError(ErrorCode::BadState,
                          "net '" + name + "' has no solution to sign off "
                                           "(OPTIMIZE it first)");
    NBUF_TRACE_SPAN_TAGGED("serve.signoff", e.ctx->tree().node_count());
    signoff::SignoffOptions so;
    so.golden = sim::golden_options_from(
        e.tech.has_value() ? *e.tech : lib::default_technology());
    const signoff::SignoffReport rep =
        signoff::verify(name, e.ctx->tree(), e.ctx->result()->buffers,
                        e.ctx->library(), so);
    ++d.signoffs;
    std::string out = "ok net " + name + "\n";
    out += "pass " + std::string(rep.pass() ? "1" : "0") + "\n";
    out += "violations " + std::to_string(rep.violations.size()) + "\n";
    out += "worst_golden_slack " + fmt_g(rep.worst_golden_slack) + "\n";
    out += "worst_metric_slack " + fmt_g(rep.worst_metric_slack) + "\n";
    out += "worst_timing_slack " + fmt_g(rep.worst_timing_slack) + "\n";
    return out;
  }

  std::string do_stats() const {
    std::string out = "ok stats\n";
    out += "requests " + std::to_string(counters.requests) + "\n";
    out += "errors " + std::to_string(counters.errors) + "\n";
    out += "nets " + std::to_string(nets.size()) + "\n";
    out += "nets_loaded " + std::to_string(counters.nets_loaded) + "\n";
    out += "libs_loaded " + std::to_string(counters.libs_loaded) + "\n";
    out += "optimizes " + std::to_string(counters.optimizes) + "\n";
    out += "perturbs " + std::to_string(counters.perturbs) + "\n";
    out += "signoffs " + std::to_string(counters.signoffs) + "\n";
    out += "subtrees_reused " + std::to_string(counters.subtrees_reused) +
           "\n";
    out += "subtrees_recomputed " +
           std::to_string(counters.subtrees_recomputed) + "\n";
    return out;
  }

  // Dispatches one request into (response payload, delta); never throws.
  Frame dispatch(const Frame& req, Delta& d) {
    Frame resp;
    resp.request_id = req.request_id;
    try {
      switch (req.op) {
        case Opcode::LoadNet:
          resp.payload = do_load_net(req.payload, d);
          break;
        case Opcode::LoadLib:
          resp.payload = do_load_lib(req.payload, d);
          break;
        case Opcode::Optimize:
          resp.payload = do_optimize(req.payload, d);
          break;
        case Opcode::Perturb:
          resp.payload = do_perturb(req.payload, d);
          break;
        case Opcode::Signoff:
          resp.payload = do_signoff(req.payload, d);
          break;
        case Opcode::Stats:
          resp.payload = do_stats();
          break;
        case Opcode::Shutdown:
          shutdown = true;
          resp.payload = "ok shutdown\n";
          break;
        default:
          throw ProtocolError(
              ErrorCode::BadOpcode,
              "unknown opcode " +
                  std::to_string(static_cast<std::uint16_t>(req.op)));
      }
      resp.op = req.op;
    } catch (const ProtocolError& e) {
      resp.op = Opcode::Error;
      resp.payload = error_payload(e.code(), e.what());
      ++d.errors;
    } catch (const std::exception& e) {
      resp.op = Opcode::Error;
      resp.payload = error_payload(ErrorCode::Internal, e.what());
      ++d.errors;
    }
    return resp;
  }

  void fold(const Delta& d) {
    counters.errors += d.errors;
    counters.nets_loaded += d.nets_loaded;
    counters.libs_loaded += d.libs_loaded;
    counters.optimizes += d.optimizes;
    counters.perturbs += d.perturbs;
    counters.signoffs += d.signoffs;
    counters.subtrees_reused += d.reused;
    counters.subtrees_recomputed += d.recomputed;
  }

  // True when the request may run concurrently with other compute requests
  // of the same batch (its handler touches only its own net's entry).
  static bool parallel_safe(const Frame& f) {
    return f.op == Opcode::Optimize || f.op == Opcode::Perturb ||
           f.op == Opcode::Signoff;
  }

  std::vector<Frame> handle_batch(const std::vector<Frame>& requests) {
    std::vector<Frame> responses(requests.size());
    std::size_t i = 0;
    while (i < requests.size()) {
      // Grow a maximal run of compute requests on pairwise-distinct nets.
      std::size_t j = i;
      std::set<std::string> run_nets;
      while (j < requests.size() && parallel_safe(requests[j])) {
        const std::string name = peek_net_name(requests[j].payload);
        // An unparsable name is handled serially so its error response
        // keeps its place in the stream.
        if (name.empty() || !run_nets.insert(name).second) break;
        ++j;
      }
      if (j - i > 1) {
        const std::size_t base = i;
        const std::size_t n = j - i;
        counters.requests += n;  // before STATS later in the batch
        std::vector<Delta> deltas(n);
        batch::parallel_for_index(n, opt.threads, [&](std::size_t k) {
          responses[base + k] =
              dispatch(requests[base + k], deltas[k]);
        });
        for (const Delta& d : deltas) fold(d);  // serial, index order
        i = j;
        continue;
      }
      ++counters.requests;
      Delta d;
      responses[i] = dispatch(requests[i], d);
      fold(d);
      ++i;
    }
    return responses;
  }
};

Session::Session(SessionOptions opt)
    : impl_(std::make_unique<Impl>(std::move(opt))) {}
Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

Frame Session::handle(const Frame& request) {
  return impl_->handle_batch({request}).front();
}

std::vector<Frame> Session::handle_batch(
    const std::vector<Frame>& requests) {
  return impl_->handle_batch(requests);
}

bool Session::shutdown_requested() const noexcept {
  return impl_->shutdown;
}

const Session::Counters& Session::counters() const noexcept {
  return impl_->counters;
}

}  // namespace nbuf::serve
