#include "serve/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nbuf::serve {

namespace {

void put_u16(unsigned char* out, std::uint16_t v) {
  out[0] = static_cast<unsigned char>(v & 0xFF);
  out[1] = static_cast<unsigned char>(v >> 8);
}

void put_u32(unsigned char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

void put_u64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

std::uint16_t get_u16(const unsigned char* in) {
  return static_cast<std::uint16_t>(in[0] |
                                    (static_cast<std::uint16_t>(in[1]) << 8));
}

std::uint32_t get_u32(const unsigned char* in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

// Retries on EINTR; false on EOF or error. `got_any` reports whether at
// least one byte arrived (to tell clean EOF from a truncated frame).
bool read_exact(int fd, void* buf, std::size_t n, bool& got_any) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      got_any = true;
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::write(fd, p + done, n - done);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::Error: return "ERROR";
    case Opcode::LoadNet: return "LOAD_NET";
    case Opcode::LoadLib: return "LOAD_LIB";
    case Opcode::Optimize: return "OPTIMIZE";
    case Opcode::Perturb: return "PERTURB";
    case Opcode::Signoff: return "SIGNOFF";
    case Opcode::Stats: return "STATS";
    case Opcode::Shutdown: return "SHUTDOWN";
  }
  return "UNKNOWN";
}

bool is_request_opcode(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(Opcode::LoadNet) &&
         raw <= static_cast<std::uint16_t>(Opcode::Shutdown);
}

const char* to_string(HeaderError err) {
  switch (err) {
    case HeaderError::None: return "none";
    case HeaderError::BadMagic: return "bad_magic";
    case HeaderError::BadVersion: return "bad_version";
    case HeaderError::Oversized: return "oversized";
    case HeaderError::Truncated: return "truncated";
  }
  return "unknown";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadOpcode: return "bad_opcode";
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::BadState: return "bad_state";
    case ErrorCode::Internal: return "internal";
  }
  return "unknown";
}

void encode_header(const FrameHeader& h, unsigned char out[kHeaderSize]) {
  put_u32(out, h.magic);
  put_u16(out + 4, h.version);
  put_u16(out + 6, h.opcode);
  put_u64(out + 8, h.request_id);
  put_u32(out + 16, h.payload_len);
}

FrameHeader decode_header(const unsigned char in[kHeaderSize]) {
  FrameHeader h;
  h.magic = get_u32(in);
  h.version = get_u16(in + 4);
  h.opcode = get_u16(in + 6);
  h.request_id = get_u64(in + 8);
  h.payload_len = get_u32(in + 16);
  return h;
}

HeaderError validate_header(const FrameHeader& h) {
  if (h.magic != kMagic) return HeaderError::BadMagic;
  if (h.version != kVersion) return HeaderError::BadVersion;
  if (h.payload_len > kMaxPayload) return HeaderError::Oversized;
  return HeaderError::None;
}

std::string encode_frame(const Frame& f) {
  FrameHeader h;
  h.opcode = static_cast<std::uint16_t>(f.op);
  h.request_id = f.request_id;
  h.payload_len = static_cast<std::uint32_t>(f.payload.size());
  unsigned char head[kHeaderSize];
  encode_header(h, head);
  std::string bytes(reinterpret_cast<const char*>(head), kHeaderSize);
  bytes += f.payload;
  return bytes;
}

std::string error_payload(ErrorCode code, const std::string& message) {
  return std::string("error ") + to_string(code) + ": " + message;
}

std::string error_payload(HeaderError err) {
  return std::string("error ") + to_string(err) +
         ": unrecoverable framing fault, closing connection";
}

HeaderError read_frame(int fd, Frame& out, bool& clean_eof) {
  unsigned char head[kHeaderSize];
  bool got_any = false;
  clean_eof = false;
  if (!read_exact(fd, head, kHeaderSize, got_any)) {
    clean_eof = !got_any;
    return HeaderError::Truncated;
  }
  const FrameHeader h = decode_header(head);
  const HeaderError err = validate_header(h);
  if (err != HeaderError::None) return err;
  out.op = static_cast<Opcode>(h.opcode);  // may be unknown; caller checks
  out.request_id = h.request_id;
  out.payload.resize(h.payload_len);
  if (h.payload_len > 0 &&
      !read_exact(fd, out.payload.data(), h.payload_len, got_any))
    return HeaderError::Truncated;
  return HeaderError::None;
}

bool write_frame(int fd, const Frame& f) {
  const std::string bytes = encode_frame(f);
  return write_all(fd, bytes.data(), bytes.size());
}

}  // namespace nbuf::serve
