#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace nbuf::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  // Frames are small request/response pairs; Nagle only adds latency.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Fd::~Fd() { reset(); }

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Fd, std::uint16_t> listen_tcp(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    fail("bind");
  if (::listen(fd.get(), 64) < 0) fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0)
    fail("getsockname");
  return {std::move(fd), ntohs(bound.sin_port)};
}

Fd listen_unix(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  (void)::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    fail("bind " + path);
  if (::listen(fd.get(), 64) < 0) fail("listen " + path);
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("bad IPv4 address: " + host);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0)
    fail("connect " + host);
  set_nodelay(fd.get());
  return fd;
}

Fd connect_unix(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0)
    fail("connect " + path);
  return fd;
}

Fd accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    return Fd{};
  }
}

bool readable_now(int fd) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  for (;;) {
    const int r = ::poll(&p, 1, 0);
    if (r >= 0) return r > 0 && (p.revents & (POLLIN | POLLHUP)) != 0;
    if (errno == EINTR) continue;
    return false;
  }
}

}  // namespace nbuf::serve
