// Minimal RAII socket layer for the optimization service: TCP on loopback
// and Unix-domain stream sockets, blocking I/O, no external dependencies.
// The server listens on one or the other; test_serve uses ephemeral TCP
// ports (bind to port 0, read the chosen port back).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace nbuf::serve {

// Owning file descriptor; closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd();
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void reset();
  [[nodiscard]] int release() noexcept {
    return std::exchange(fd_, -1);
  }

 private:
  int fd_ = -1;
};

// All throw std::runtime_error with errno context on failure.

// Listening TCP socket bound to 127.0.0.1:`port` (0 = ephemeral); returns
// the socket and the actual bound port.
[[nodiscard]] std::pair<Fd, std::uint16_t> listen_tcp(std::uint16_t port);
// Listening Unix-domain socket at `path` (unlinked first if stale).
[[nodiscard]] Fd listen_unix(const std::string& path);

[[nodiscard]] Fd connect_tcp(const std::string& host, std::uint16_t port);
[[nodiscard]] Fd connect_unix(const std::string& path);

// accept(2) with EINTR retry; invalid Fd when the listener was closed.
[[nodiscard]] Fd accept_connection(int listen_fd);

// True when at least one byte is readable right now (poll with 0 timeout) —
// the request-coalescing probe: the connection loop drains every complete
// frame the client pipelined before dispatching the batch.
[[nodiscard]] bool readable_now(int fd);

}  // namespace nbuf::serve
