// nbuf_serve daemon core: accepts connections, frames requests, and drives
// one Session per connection (docs/serving.md).
//
// Threading model: one accept thread plus one thread per live connection.
// Connection threads block reading one frame, then drain every complete
// frame the client already pipelined (request coalescing) and hand the
// batch to Session::handle_batch, which fans independent compute requests
// across a batch::parallel_for_index worker pool. Responses are written
// back in request order, so a client sees exactly the serial semantics.
//
// Server-wide observability lands in a MetricsRegistry under "serve.*"
// (request/error/byte counters — commutative, so deterministic for any
// schedule; batch-size histogram). Session-local STATS counters are the
// deterministic per-client view.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/session.hpp"

namespace nbuf::obs {
class MetricsRegistry;
}

namespace nbuf::serve {

struct ServerOptions {
  // TCP listen port on 127.0.0.1 (0 = ephemeral, read back via port()).
  // Ignored when unix_path is set.
  std::uint16_t port = 0;
  // When non-empty, listen on this Unix-domain socket path instead of TCP.
  std::string unix_path;
  // Per-session worker threads for coalesced compute batches.
  std::size_t threads = 1;
  // LOAD_NET segmenting granularity (µm) unless the request overrides it.
  double segment_um = 500.0;
  // Maximum coalesced batch size per dispatch.
  std::size_t max_batch = 64;
};

class Server {
 public:
  explicit Server(ServerOptions opt = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds and starts the accept thread. Throws on bind/listen failure.
  void start();

  // The bound TCP port (valid after start(); 0 in Unix-socket mode).
  [[nodiscard]] std::uint16_t port() const noexcept;

  // Blocks until the server stops: a SHUTDOWN request or stop().
  void wait();

  // Stops accepting, unblocks every connection, joins all threads.
  // Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nbuf::serve
