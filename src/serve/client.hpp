// nbuf-rpc-v1 client library: typed calls plus the raw/pipelined access the
// robustness corpus and the determinism tests need (docs/serving.md shows a
// full session).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace nbuf::serve {

class Client {
 public:
  [[nodiscard]] static Client connect(const std::string& host,
                                      std::uint16_t port);
  [[nodiscard]] static Client connect_unix_socket(const std::string& path);

  // One request/response round trip. Throws std::runtime_error when the
  // connection drops; an Error response comes back as a normal Frame with
  // op == Opcode::Error (the caller inspects it).
  Frame call(Opcode op, std::string payload);

  // Pipelining: enqueue without waiting. Returns the request id.
  std::uint64_t send(Opcode op, std::string payload);
  // Reads one response frame; false on EOF.
  bool receive(Frame& out);
  // Sends every request back-to-back in one write (a coalescable burst),
  // then collects exactly one response per request, in order.
  [[nodiscard]] std::vector<Frame> pipeline(
      const std::vector<std::pair<Opcode, std::string>>& requests);

  // Writes arbitrary bytes — the corrupt-corpus injector.
  void send_raw(const std::string& bytes);

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

 private:
  explicit Client(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
  std::uint64_t next_id_ = 1;
};

}  // namespace nbuf::serve
