// Per-connection session state of the optimization service.
//
// A Session owns everything one client connection accumulates: the active
// buffer library (the paper's 11-type default until LOAD_LIB replaces it),
// a map of loaded nets, and — the point of the service — one
// core::IncrementalContext per optimized net, so a PERTURB request
// re-optimizes only the dirty spine of the edit instead of re-running the
// whole DP (docs/serving.md).
//
// Sessions share nothing with each other, so interleaved sessions cannot
// perturb each other's responses, and STATS reports session-local counters
// only — both halves of the determinism contract.
//
// Request coalescing: when a client pipelines several frames, the server
// hands the whole batch to handle_batch(), which fans maximal runs of
// consecutive compute requests (OPTIMIZE / PERTURB / SIGNOFF) on DISTINCT
// nets across batch::parallel_for_index workers. Each handler touches only
// its own net's entry and writes its response into its request's slot, and
// session counters are folded serially in request order afterward — so the
// response byte stream is identical at any worker-thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "lib/buffer.hpp"
#include "lib/technology.hpp"
#include "serve/protocol.hpp"

namespace nbuf::serve {

struct SessionOptions {
  std::size_t threads = 1;    // workers for coalesced compute batches
  double segment_um = 500.0;  // LOAD_NET wire-segmenting granularity
};

class Session {
 public:
  explicit Session(SessionOptions opt = {});
  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;

  // Handles one request frame and returns its response frame (success
  // payload or a typed Error). Never throws for request-level faults.
  [[nodiscard]] Frame handle(const Frame& request);

  // Handles a pipelined batch: responses come back in request order, with
  // runs of consecutive compute requests on distinct nets fanned out over
  // the worker pool. Equivalent to calling handle() in order.
  [[nodiscard]] std::vector<Frame> handle_batch(
      const std::vector<Frame>& requests);

  // True once a SHUTDOWN request was handled.
  [[nodiscard]] bool shutdown_requested() const noexcept;

  // Session-local request counters (the STATS payload renders these).
  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t nets_loaded = 0;
    std::uint64_t libs_loaded = 0;
    std::uint64_t optimizes = 0;
    std::uint64_t perturbs = 0;
    std::uint64_t signoffs = 0;
    std::uint64_t subtrees_reused = 0;
    std::uint64_t subtrees_recomputed = 0;
  };
  [[nodiscard]] const Counters& counters() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nbuf::serve
