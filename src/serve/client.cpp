#include "serve/client.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace nbuf::serve {

Client Client::connect(const std::string& host, std::uint16_t port) {
  return Client(connect_tcp(host, port));
}

Client Client::connect_unix_socket(const std::string& path) {
  return Client(serve::connect_unix(path));
}

Frame Client::call(Opcode op, std::string payload) {
  (void)send(op, std::move(payload));
  Frame resp;
  if (!receive(resp))
    throw std::runtime_error("server closed the connection mid-call");
  return resp;
}

std::uint64_t Client::send(Opcode op, std::string payload) {
  Frame f;
  f.op = op;
  f.request_id = next_id_++;
  f.payload = std::move(payload);
  if (!write_frame(fd_.get(), f))
    throw std::runtime_error("send failed: " +
                             std::string(std::strerror(errno)));
  return f.request_id;
}

bool Client::receive(Frame& out) {
  bool clean_eof = false;
  const HeaderError err = read_frame(fd_.get(), out, clean_eof);
  if (err == HeaderError::None) return true;
  if (clean_eof) return false;
  if (err == HeaderError::Truncated) return false;
  throw std::runtime_error(std::string("response framing fault: ") +
                           to_string(err));
}

std::vector<Frame> Client::pipeline(
    const std::vector<std::pair<Opcode, std::string>>& requests) {
  std::string burst;
  for (const auto& [op, payload] : requests) {
    Frame f;
    f.op = op;
    f.request_id = next_id_++;
    f.payload = payload;
    burst += encode_frame(f);
  }
  send_raw(burst);
  std::vector<Frame> responses;
  responses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Frame r;
    if (!receive(r))
      throw std::runtime_error("server closed mid-pipeline");
    responses.push_back(std::move(r));
  }
  return responses;
}

void Client::send_raw(const std::string& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t r =
        ::write(fd_.get(), bytes.data() + done, bytes.size() - done);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    throw std::runtime_error("send_raw failed: " +
                             std::string(std::strerror(errno)));
  }
}

}  // namespace nbuf::serve
