#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"
#include "util/thread_annotations.hpp"

namespace nbuf::serve {

struct Server::Impl {
  explicit Impl(ServerOptions o) : opt(std::move(o)) {}

  ServerOptions opt;
  Fd listener;
  std::uint16_t bound_port = 0;
  obs::MetricsRegistry registry;

  std::thread accept_thread;
  util::Mutex mu;       // guards conn_threads + live_fds
  util::Mutex join_mu;  // serializes wait()/stop() joins
  std::vector<std::thread> conn_threads NBUF_GUARDED_BY(mu);
  std::vector<int> live_fds NBUF_GUARDED_BY(mu);
  std::atomic<bool> stopping{false};

  void track_fd(int fd) NBUF_EXCLUDES(mu) {
    const util::MutexLock lock(mu);
    live_fds.push_back(fd);
  }

  void untrack_fd(int fd) NBUF_EXCLUDES(mu) {
    const util::MutexLock lock(mu);
    for (auto it = live_fds.begin(); it != live_fds.end(); ++it)
      if (*it == fd) {
        live_fds.erase(it);
        break;
      }
  }

  // Half-closes every live connection so blocked reads return. Split out
  // so the analyzer can check the lock discipline: the caller holds `mu`.
  void shutdown_live_fds() NBUF_REQUIRES(mu) {
    for (const int fd : live_fds) (void)::shutdown(fd, SHUT_RDWR);
  }

  // Initiates shutdown without joining (safe from connection threads):
  // unblocks the accept thread and half-closes every live connection so
  // blocked reads return. The listener fd itself stays open until Impl is
  // destroyed — close(2) does not wake a thread blocked in accept(2), and
  // closing an fd another thread is using invites reuse races.
  void request_stop() NBUF_EXCLUDES(mu) {
    if (stopping.exchange(true)) return;
    (void)::shutdown(listener.get(), SHUT_RDWR);
    // shutdown() on a listening socket is not guaranteed to wake a blocked
    // accept() on every socket family; a throwaway self-connection is.
    try {
      if (!opt.unix_path.empty())
        (void)connect_unix(opt.unix_path);
      else if (bound_port != 0)
        (void)connect_tcp("127.0.0.1", bound_port);
    } catch (const std::exception&) {
      // Listener already unreachable — accept() has returned or will.
    }
    const util::MutexLock lock(mu);
    shutdown_live_fds();
  }

  void connection_loop(Fd fd) {
    Session session(SessionOptions{opt.threads, opt.segment_um});
    registry.counter("serve.sessions").increment();
    obs::Counter& c_requests = registry.counter("serve.requests");
    obs::Counter& c_responses = registry.counter("serve.responses");
    obs::Counter& c_errors = registry.counter("serve.errors");
    obs::Counter& c_bytes_in = registry.counter("serve.bytes_in");
    obs::Counter& c_bytes_out = registry.counter("serve.bytes_out");
    obs::Histogram& h_batch = registry.histogram("serve.batch_size");

    for (;;) {
      std::vector<Frame> batch;
      bool framing_lost = false;
      // Block for the first frame, then drain whatever the client already
      // pipelined — the coalescing window handle_batch parallelizes over.
      do {
        Frame f;
        bool clean_eof = false;
        const HeaderError err = read_frame(fd.get(), f, clean_eof);
        if (err == HeaderError::Truncated) {
          framing_lost = true;
          if (!clean_eof && !stopping.load()) {
            Frame resp;
            resp.op = Opcode::Error;
            resp.payload = error_payload(HeaderError::Truncated);
            (void)write_frame(fd.get(), resp);
            c_errors.increment();
          }
          break;
        }
        if (err != HeaderError::None) {
          // Framing is lost: reply the typed fault and close.
          Frame resp;
          resp.op = Opcode::Error;
          resp.request_id = f.request_id;
          resp.payload = error_payload(err);
          (void)write_frame(fd.get(), resp);
          c_errors.increment();
          framing_lost = true;
          break;
        }
        c_bytes_in.add(kHeaderSize + f.payload.size());
        batch.push_back(std::move(f));
      } while (batch.size() < opt.max_batch &&
               readable_now(fd.get()));

      if (!batch.empty()) {
        h_batch.observe(batch.size());
        c_requests.add(batch.size());
        const std::vector<Frame> responses = session.handle_batch(batch);
        bool peer_gone = false;
        for (const Frame& r : responses) {
          if (r.op == Opcode::Error) c_errors.increment();
          c_bytes_out.add(kHeaderSize + r.payload.size());
          c_responses.increment();
          if (!write_frame(fd.get(), r)) {
            peer_gone = true;
            break;
          }
        }
        if (session.shutdown_requested()) {
          request_stop();
          break;
        }
        if (peer_gone) break;
      }
      if (framing_lost || stopping.load()) break;
    }
    untrack_fd(fd.get());
  }

  void accept_loop() {
    for (;;) {
      Fd conn = accept_connection(listener.get());
      if (!conn.valid()) break;  // listener closed by request_stop()
      if (stopping.load()) break;
      track_fd(conn.get());
      const util::MutexLock lock(mu);
      conn_threads.emplace_back(
          [this, c = std::move(conn)]() mutable {
            connection_loop(std::move(c));
          });
    }
  }
};

Server::Server(ServerOptions opt)
    : impl_(std::make_unique<Impl>(std::move(opt))) {}

Server::~Server() { stop(); }

void Server::start() {
  if (!impl_->opt.unix_path.empty()) {
    impl_->listener = listen_unix(impl_->opt.unix_path);
  } else {
    auto [fd, port] = listen_tcp(impl_->opt.port);
    impl_->listener = std::move(fd);
    impl_->bound_port = port;
  }
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
}

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

void Server::wait() {
  const util::MutexLock join_lock(impl_->join_mu);
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  // Joining the accept thread means no new connections; drain the rest.
  std::vector<std::thread> threads;
  {
    const util::MutexLock lock(impl_->mu);
    threads.swap(impl_->conn_threads);
  }
  for (std::thread& t : threads) t.join();
}

void Server::stop() {
  impl_->request_stop();
  wait();
}

obs::MetricsRegistry& Server::metrics() noexcept { return impl_->registry; }

}  // namespace nbuf::serve
