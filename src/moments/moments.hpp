// Moment computation on RC trees (the RICE/AWE family the paper cites as
// the accurate-but-costly alternative to closed-form metrics), and the
// moment-based D2M delay metric.
//
// For a stage driven through resistance R_drv, the k-th voltage moment at
// node v obeys the classic RC-tree recurrence (one postorder + one preorder
// sweep per order, O(n) each):
//   m_0(v) = 1
//   S_k(v) = sum over subtree(v) of C_u * m_{k-1}(u)
//   m_k(root) = -R_drv * S_k(root)
//   m_k(v)    = m_k(parent) - R_branch(v) * S_k(v)
// m_1(v) is the negated Elmore delay; D2M = ln 2 * m1^2 / sqrt(m2) is a
// far less pessimistic 50%-delay estimate at two moments' cost (Alpert,
// Devgan, Kashyap). The fidelity ladder Elmore -> D2M -> transient is
// quantified by bench/figE_delay_fidelity.
#pragma once

#include <vector>

#include "lib/buffer.hpp"
#include "rct/stage.hpp"
#include "sim/stage_circuit.hpp"

namespace nbuf::moments {

// m[k][sim_node] for k = 0..order. Coupled capacitance is treated as
// grounded (quiet neighbors during a timing event).
[[nodiscard]] std::vector<std::vector<double>> stage_moments(
    const sim::StageCircuit& circuit, double driver_resistance, int order);

// D2M 50%-delay estimate from the first two moments (m1 < 0, m2 > 0).
[[nodiscard]] double d2m_delay(double m1, double m2);

struct SinkDelayEstimate {
  rct::SinkId sink;
  double elmore = 0.0;  // second — -m1 plus gate delays (matches
                        // elmore::analyze up to wire discretization)
  double d2m = 0.0;     // second — D2M per stage plus gate delays
};

struct MomentReport {
  std::vector<SinkDelayEstimate> sinks;  // indexed by SinkId
  double max_elmore = 0.0;
  double max_d2m = 0.0;
};

struct MomentOptions {
  double section_length = 100.0;  // µm — pi-section granularity
};

// Moment-based delay estimates through a buffered tree; stage results
// compose through buffer input arrivals exactly as in elmore::analyze.
[[nodiscard]] MomentReport analyze(const rct::RoutingTree& tree,
                                   const rct::BufferAssignment& buffers,
                                   const lib::BufferLibrary& lib,
                                   const MomentOptions& options = {});

}  // namespace nbuf::moments
