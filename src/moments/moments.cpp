#include "moments/moments.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.hpp"

namespace nbuf::moments {

std::vector<std::vector<double>> stage_moments(
    const sim::StageCircuit& circuit, double driver_resistance, int order) {
  NBUF_EXPECTS(order >= 1);
  NBUF_EXPECTS(driver_resistance > 0.0);
  const std::size_t n = circuit.size();

  // Children-before-parents order (reversed preorder from the root).
  std::vector<std::vector<std::size_t>> kids(n);
  for (std::size_t i = 1; i < n; ++i) kids[circuit.parent[i]].push_back(i);
  std::vector<std::size_t> pre;
  pre.reserve(n);
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    pre.push_back(v);
    for (std::size_t k : kids[v]) stack.push_back(k);
  }
  NBUF_ASSERT(pre.size() == n);

  std::vector<std::vector<double>> m(static_cast<std::size_t>(order) + 1,
                                     std::vector<double>(n, 0.0));
  std::fill(m[0].begin(), m[0].end(), 1.0);

  std::vector<double> subtree(n);
  for (int k = 1; k <= order; ++k) {
    // Postorder: S_k(v) = C_v * m_{k-1}(v) + sum over children.
    for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
      const std::size_t v = *it;
      double s = circuit.total_cap(v) * m[k - 1][v];
      for (std::size_t child : kids[v]) s += subtree[child];
      subtree[v] = s;
    }
    // Preorder: m_k(v) = m_k(parent) - R_branch * S_k(v).
    for (std::size_t v : pre) {
      if (v == 0) {
        m[k][0] = -driver_resistance * subtree[0];
      } else {
        m[k][v] = m[k][circuit.parent[v]] -
                  subtree[v] / circuit.branch_g[v];
      }
    }
  }
  return m;
}

double d2m_delay(double m1, double m2) {
  NBUF_EXPECTS_MSG(m1 < 0.0 && m2 > 0.0, "RC-tree moments alternate sign");
  return std::log(2.0) * m1 * m1 / std::sqrt(m2);
}

MomentReport analyze(const rct::RoutingTree& tree,
                     const rct::BufferAssignment& buffers,
                     const lib::BufferLibrary& lib,
                     const MomentOptions& options) {
  const auto stages = rct::decompose(tree, buffers, lib);
  // Per-stage arrivals at buffer inputs, separately for each estimate.
  std::unordered_map<rct::NodeId, double> arrival_elmore, arrival_d2m;

  MomentReport report;
  report.sinks.resize(tree.sink_count());
  for (const rct::Stage& st : stages) {
    const sim::StageCircuit c = sim::build_stage_circuit(
        tree, st, /*coupling_ratio=*/0.0, options.section_length);
    const auto m = stage_moments(c, st.driver_resistance, 2);

    double in_elmore = 0.0, in_d2m = 0.0;
    if (!st.driven_by_source) {
      in_elmore = arrival_elmore.at(st.root);
      in_d2m = arrival_d2m.at(st.root);
    }
    for (const rct::StageSink& s : st.sinks) {
      const std::size_t sim_node = c.sim_node_of.at(s.node);
      const double m1 = m[1][sim_node];
      const double m2 = m[2][sim_node];
      const double t_elmore =
          in_elmore + st.driver_intrinsic_delay - m1;
      const double t_d2m =
          in_d2m + st.driver_intrinsic_delay + d2m_delay(m1, m2);
      if (s.is_buffer_input) {
        arrival_elmore[s.node] = t_elmore;
        arrival_d2m[s.node] = t_d2m;
      } else {
        report.sinks[s.sink.value()] = {s.sink, t_elmore, t_d2m};
        report.max_elmore = std::max(report.max_elmore, t_elmore);
        report.max_d2m = std::max(report.max_d2m, t_d2m);
      }
    }
  }
  return report;
}

}  // namespace nbuf::moments
