// Re-rooting a routing tree at a different terminal.
//
// Multi-source nets (bidirectional busses, multi-driver control lines —
// Lillis, DAC 1997, the extension the paper cites for Algorithm 3's
// lineage) operate in modes: in each mode one terminal drives and every
// other terminal receives. Electrically the tree is the same graph; only
// the orientation of the wires flips along the path from the old source to
// the new one. reroot() produces the mode's view: the chosen sink terminal
// becomes the source (with the mode's driver parameters) and the old source
// becomes a sink.
#pragma once

#include "rct/assignment.hpp"
#include "rct/tree.hpp"

namespace nbuf::rct {

// The result of re-rooting: the re-oriented tree plus the node-id mapping
// (old id -> new id), needed to carry buffer assignments across.
struct RerootResult {
  RoutingTree tree;
  std::vector<NodeId> new_id_of;  // indexed by old NodeId value
};

// Builds the tree as seen when `new_source_sink` (a sink of `tree`) drives
// with `driver`, and the old driver terminal becomes a sink described by
// `old_source_as_sink` (its `node` field is ignored). Wire electricals are
// preserved; only parent/child orientation changes. Buffer-allowed flags
// carry over.
[[nodiscard]] RerootResult reroot(const RoutingTree& tree,
                                  NodeId new_source_sink, Driver driver,
                                  SinkInfo old_source_as_sink);

// Maps a buffer assignment through a reroot.
[[nodiscard]] BufferAssignment map_assignment(const BufferAssignment& buffers,
                                              const RerootResult& rr);

}  // namespace nbuf::rct
