#include "rct/assignment.hpp"

#include "util/check.hpp"

namespace nbuf::rct {

void BufferAssignment::place(NodeId node, lib::BufferId type) {
  NBUF_EXPECTS(node.valid());
  NBUF_EXPECTS(type.valid());
  placed_[node] = type;
}

void BufferAssignment::remove(NodeId node) { placed_.erase(node); }

bool BufferAssignment::has_buffer(NodeId node) const {
  return placed_.count(node) != 0;
}

lib::BufferId BufferAssignment::at(NodeId node) const {
  auto it = placed_.find(node);
  NBUF_EXPECTS_MSG(it != placed_.end(), "no buffer at node");
  return it->second;
}

std::vector<std::pair<NodeId, lib::BufferId>> BufferAssignment::entries()
    const {
  // placed_ is an ordered map, so this is already sorted by node id.
  std::vector<std::pair<NodeId, lib::BufferId>> out(placed_.begin(),
                                                    placed_.end());
  return out;
}

void BufferAssignment::validate(const RoutingTree& tree,
                                const lib::BufferLibrary& lib) const {
  for (const auto& [node, type] : placed_) {
    const Node& n = tree.node(node);
    NBUF_EXPECTS_MSG(n.kind == NodeKind::Internal,
                     "buffers go on internal nodes only");
    NBUF_EXPECTS_MSG(n.buffer_allowed, "node is not a legal buffer site");
    NBUF_EXPECTS(type.value() < lib.size());
  }
}

bool BufferAssignment::inverted_at(const RoutingTree& tree,
                                   const lib::BufferLibrary& lib,
                                   NodeId node) const {
  bool inv = false;
  NodeId cur = node;
  while (cur.valid()) {
    auto it = placed_.find(cur);
    if (it != placed_.end() && lib.at(it->second).inverting) inv = !inv;
    cur = tree.node(cur).parent;
  }
  return inv;
}

}  // namespace nbuf::rct
