// Buffer insertion solutions.
//
// A BufferAssignment is the paper's mapping M : internal nodes -> B ∪ {b̄}
// (Section II): each internal node either hosts a buffer from the library or
// none. |M| is the number of inserted buffers.
#pragma once

#include <map>
#include <vector>

#include "lib/buffer.hpp"
#include "rct/tree.hpp"

namespace nbuf::rct {

class BufferAssignment {
 public:
  // Places buffer `type` at `node` (replacing any previous choice there).
  void place(NodeId node, lib::BufferId type);
  void remove(NodeId node);
  void clear() { placed_.clear(); }

  [[nodiscard]] bool has_buffer(NodeId node) const;
  // Buffer at `node`; throws if none.
  [[nodiscard]] lib::BufferId at(NodeId node) const;
  // Number of inserted buffers |M|.
  [[nodiscard]] std::size_t size() const noexcept { return placed_.size(); }
  [[nodiscard]] bool empty() const noexcept { return placed_.empty(); }

  // (node, buffer) pairs sorted by node id — deterministic, so callers
  // may iterate without re-sorting (byte-identical output contract).
  [[nodiscard]] std::vector<std::pair<NodeId, lib::BufferId>> entries() const;

  // Checks every placement names an internal, buffer-allowed node of `tree`
  // and a valid library id.
  void validate(const RoutingTree& tree, const lib::BufferLibrary& lib) const;

  // Parity of inverting buffers on the path source -> node (inclusive of a
  // buffer at `node` itself). true = signal is inverted at that point.
  [[nodiscard]] bool inverted_at(const RoutingTree& tree,
                                 const lib::BufferLibrary& lib,
                                 NodeId node) const;

 private:
  // Ordered map, deliberately: every iteration (entries(), validate()) is
  // then deterministic by construction. Assignments hold at most a few
  // dozen buffers and are never touched in the DP inner loops, so the
  // O(log n) lookup is noise — and no call site needs a recovery sort.
  std::map<NodeId, lib::BufferId> placed_;
};

}  // namespace nbuf::rct
