#include "rct/tree.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace nbuf::rct {

Wire Wire::scaled(double fraction) const {
  NBUF_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  Wire w;
  w.length = length * fraction;
  w.resistance = resistance * fraction;
  w.capacitance = capacitance * fraction;
  w.coupling_current = coupling_current * fraction;
  return w;
}

NodeId RoutingTree::make_source(Driver driver, std::string name) {
  NBUF_EXPECTS_MSG(nodes_.empty(), "source must be the first node");
  NBUF_EXPECTS(driver.resistance > 0.0);
  driver_ = std::move(driver);
  Node n;
  n.kind = NodeKind::Source;
  n.name = std::move(name);
  n.buffer_allowed = false;
  source_ = add_node(std::move(n));
  return source_;
}

NodeId RoutingTree::add_internal(NodeId parent, Wire wire, std::string name,
                                 bool buffer_allowed) {
  NBUF_EXPECTS(parent.valid() && parent.value() < nodes_.size());
  NBUF_EXPECTS_MSG(nodes_[parent.value()].kind != NodeKind::Sink,
                   "sinks are leaves");
  Node n;
  n.kind = NodeKind::Internal;
  n.name = std::move(name);
  n.parent = parent;
  n.parent_wire = wire;
  n.buffer_allowed = buffer_allowed;
  const NodeId id = add_node(std::move(n));
  nodes_[parent.value()].children.push_back(id);
  return id;
}

NodeId RoutingTree::add_sink(NodeId parent, Wire wire, SinkInfo sink) {
  NBUF_EXPECTS(parent.valid() && parent.value() < nodes_.size());
  NBUF_EXPECTS_MSG(nodes_[parent.value()].kind != NodeKind::Sink,
                   "sinks are leaves");
  NBUF_EXPECTS(sink.cap >= 0.0);
  NBUF_EXPECTS(sink.noise_margin > 0.0);
  Node n;
  n.kind = NodeKind::Sink;
  n.name = sink.name;
  n.parent = parent;
  n.parent_wire = wire;
  n.buffer_allowed = false;
  n.sink = SinkId{static_cast<SinkId::underlying_type>(sinks_.size())};
  const NodeId id = add_node(std::move(n));
  sink.node = id;
  sinks_.push_back(std::move(sink));
  nodes_[parent.value()].children.push_back(id);
  return id;
}

NodeId RoutingTree::split_wire(NodeId child, double dist_above,
                               std::string name, bool buffer_allowed) {
  NBUF_EXPECTS(child.valid() && child.value() < nodes_.size());
  Node& c = nodes_[child.value()];
  NBUF_EXPECTS_MSG(c.kind != NodeKind::Source, "source has no parent wire");
  const Wire whole = c.parent_wire;
  NBUF_EXPECTS_MSG(whole.length > 0.0, "cannot split a zero-length wire");
  NBUF_EXPECTS_MSG(dist_above > 0.0 && dist_above < whole.length,
                   "split point must be strictly inside the wire");
  const double f = dist_above / whole.length;

  Node mid;
  mid.kind = NodeKind::Internal;
  mid.name = std::move(name);
  mid.parent = c.parent;
  mid.parent_wire = whole.scaled(1.0 - f);  // upper part
  mid.buffer_allowed = buffer_allowed;
  mid.children.push_back(child);
  const NodeId mid_id = add_node(std::move(mid));

  // Re-acquire: add_node may have reallocated nodes_.
  Node& child_node = nodes_[child.value()];
  Node& parent_node = nodes_[child_node.parent.value()];
  auto it = std::find(parent_node.children.begin(),
                      parent_node.children.end(), child);
  NBUF_ASSERT(it != parent_node.children.end());
  *it = mid_id;
  child_node.parent = mid_id;
  child_node.parent_wire = whole.scaled(f);  // lower part
  return mid_id;
}

void RoutingTree::binarize() {
  // Iterate by index; new dummies are appended and themselves revisited,
  // so arbitrarily high degrees reduce to 2.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    while (nodes_[i].children.size() > 2) {
      // Move the last two children under a zero-length dummy (footnote 1:
      // which pair is chosen does not affect any algorithm's result).
      const NodeId a = nodes_[i].children[nodes_[i].children.size() - 2];
      const NodeId b = nodes_[i].children[nodes_[i].children.size() - 1];
      Node dummy;
      dummy.kind = NodeKind::Internal;
      dummy.name = nodes_[i].name + "/bin";
      dummy.parent = NodeId{static_cast<NodeId::underlying_type>(i)};
      dummy.parent_wire = Wire{};  // zero length, zero parasitics
      dummy.buffer_allowed = false;
      dummy.children = {a, b};
      const NodeId dummy_id = add_node(std::move(dummy));
      nodes_[a.value()].parent = dummy_id;
      nodes_[b.value()].parent = dummy_id;
      auto& ch = nodes_[i].children;
      ch.pop_back();
      ch.pop_back();
      ch.push_back(dummy_id);
    }
  }
}

const Node& RoutingTree::node(NodeId id) const {
  NBUF_EXPECTS(id.valid() && id.value() < nodes_.size());
  return nodes_[id.value()];
}

Node& RoutingTree::node_mut(NodeId id) {
  NBUF_EXPECTS(id.valid() && id.value() < nodes_.size());
  return nodes_[id.value()];
}

NodeId RoutingTree::source() const {
  NBUF_EXPECTS_MSG(source_.valid(), "tree has no source yet");
  return source_;
}

const Driver& RoutingTree::driver() const { return driver_; }

const SinkInfo& RoutingTree::sink(SinkId id) const {
  NBUF_EXPECTS(id.valid() && id.value() < sinks_.size());
  return sinks_[id.value()];
}

const SinkInfo& RoutingTree::sink_at(NodeId id) const {
  const Node& n = node(id);
  NBUF_EXPECTS_MSG(n.kind == NodeKind::Sink, "node is not a sink");
  return sink(n.sink);
}

bool RoutingTree::is_binary() const {
  return std::all_of(nodes_.begin(), nodes_.end(), [](const Node& n) {
    return n.children.size() <= 2;
  });
}

std::vector<NodeId> RoutingTree::preorder() const {
  return subtree_preorder(source());
}

std::vector<NodeId> RoutingTree::subtree_preorder(NodeId root) const {
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    const Node& n = node(id);
    // Push right-to-left so children come out left-to-right.
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it)
      stack.push_back(*it);
  }
  return order;
}

std::vector<NodeId> RoutingTree::postorder() const {
  std::vector<NodeId> order = preorder();
  std::reverse(order.begin(), order.end());
  // Reversed preorder visits every node after all of its descendants (it is
  // a valid postorder, though not the mirror-image one).
  return order;
}

std::vector<NodeId> RoutingTree::path(NodeId from, NodeId to) const {
  std::vector<NodeId> rev;
  NodeId cur = to;
  while (cur.valid()) {
    rev.push_back(cur);
    if (cur == from) break;
    cur = node(cur).parent;
  }
  NBUF_EXPECTS_MSG(!rev.empty() && rev.back() == from,
                   "`from` is not an ancestor of `to`");
  std::reverse(rev.begin(), rev.end());
  return rev;
}

double RoutingTree::total_cap() const {
  double c = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind != NodeKind::Source) c += n.parent_wire.capacitance;
    if (n.kind == NodeKind::Sink) c += sinks_[n.sink.value()].cap;
  }
  return c;
}

double RoutingTree::total_wirelength() const {
  double l = 0.0;
  for (const Node& n : nodes_)
    if (n.kind != NodeKind::Source) l += n.parent_wire.length;
  return l;
}

double RoutingTree::total_coupling_current() const {
  double i = 0.0;
  for (const Node& n : nodes_)
    if (n.kind != NodeKind::Source) i += n.parent_wire.coupling_current;
  return i;
}

void RoutingTree::validate() const {
  NBUF_EXPECTS_MSG(source_.valid(), "no source");
  NBUF_EXPECTS(nodes_[source_.value()].kind == NodeKind::Source);
  NBUF_EXPECTS(!nodes_[source_.value()].parent.valid());
  NBUF_EXPECTS(driver_.resistance > 0.0);

  std::size_t sinks_seen = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const NodeId id{static_cast<NodeId::underlying_type>(i)};
    if (n.kind == NodeKind::Source) {
      NBUF_ASSERT_MSG(id == source_, "multiple sources");
    } else {
      NBUF_ASSERT(n.parent.valid());
      const Node& p = node(n.parent);
      NBUF_ASSERT_MSG(
          std::find(p.children.begin(), p.children.end(), id) !=
              p.children.end(),
          "parent/child links disagree");
      NBUF_ASSERT(n.parent_wire.resistance >= 0.0);
      NBUF_ASSERT(n.parent_wire.capacitance >= 0.0);
      NBUF_ASSERT(n.parent_wire.coupling_current >= 0.0);
      NBUF_ASSERT(n.parent_wire.length >= 0.0);
    }
    if (n.kind == NodeKind::Sink) {
      NBUF_ASSERT_MSG(n.children.empty(), "sinks must be leaves");
      NBUF_ASSERT(n.sink.valid() && n.sink.value() < sinks_.size());
      NBUF_ASSERT(sinks_[n.sink.value()].node == id);
      ++sinks_seen;
    }
  }
  NBUF_ASSERT(sinks_seen == sinks_.size());

  // Reachability: every node is visited exactly once from the source.
  const auto order = preorder();
  NBUF_ASSERT_MSG(order.size() == nodes_.size(),
                  "tree is disconnected or cyclic");
  std::unordered_set<NodeId::underlying_type> seen;
  for (NodeId v : order) NBUF_ASSERT(seen.insert(v.value()).second);
}

void RoutingTree::set_buffer_allowed(NodeId id, bool allowed) {
  Node& n = node_mut(id);
  NBUF_EXPECTS_MSG(n.kind == NodeKind::Internal || !allowed,
                   "only internal nodes can host buffers");
  n.buffer_allowed = allowed;
}

void RoutingTree::set_parent_wire(NodeId id, Wire wire) {
  Node& n = node_mut(id);
  NBUF_EXPECTS_MSG(n.kind != NodeKind::Source, "source has no parent wire");
  n.parent_wire = wire;
}

void RoutingTree::set_sink_info(SinkId id, SinkInfo info) {
  NBUF_EXPECTS(id.valid() && id.value() < sinks_.size());
  NBUF_EXPECTS_MSG(info.node == sinks_[id.value()].node,
                   "sink info must keep its node binding");
  sinks_[id.value()] = std::move(info);
}

NodeId RoutingTree::add_node(Node n) {
  nodes_.push_back(std::move(n));
  return NodeId{static_cast<NodeId::underlying_type>(nodes_.size() - 1)};
}

}  // namespace nbuf::rct
