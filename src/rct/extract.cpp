#include "rct/extract.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace nbuf::rct {

ExtractedStage extract_stage(const RoutingTree& tree, const Stage& stage,
                             double default_rat) {
  ExtractedStage out;

  Driver driver;
  driver.name = stage.driven_by_source ? tree.driver().name : "stage_buf";
  driver.resistance = stage.driver_resistance;
  driver.intrinsic_delay = stage.driver_intrinsic_delay;

  std::unordered_map<NodeId, NodeId> made;  // original -> extracted
  auto record = [&](NodeId extracted, NodeId original) {
    if (out.orig_of.size() <= extracted.value())
      out.orig_of.resize(extracted.value() + 1, NodeId::invalid());
    out.orig_of[extracted.value()] = original;
    made.emplace(original, extracted);
  };
  record(out.tree.make_source(driver, tree.node(stage.root).name),
         stage.root);

  auto leaf_of = [&](NodeId id) -> const StageSink* {
    for (const StageSink& s : stage.sinks)
      if (s.node == id) return &s;
    return nullptr;
  };

  // stage.nodes is preorder, so parents are always made first.
  for (NodeId id : stage.nodes) {
    if (id == stage.root) continue;
    const Node& n = tree.node(id);
    const NodeId parent = made.at(n.parent);
    const StageSink* leaf = leaf_of(id);
    if (leaf != nullptr) {
      SinkInfo s;
      s.name = n.name.empty() ? "leaf" : n.name;
      s.cap = leaf->cap;
      s.noise_margin = leaf->noise_margin;
      s.required_arrival = default_rat;
      record(out.tree.add_sink(parent, n.parent_wire, std::move(s)), id);
    } else {
      record(out.tree.add_internal(parent, n.parent_wire, n.name,
                                   n.buffer_allowed),
             id);
    }
  }
  out.tree.binarize();
  out.tree.validate();
  return out;
}

}  // namespace nbuf::rct
