// RC routing tree: the structure every algorithm in the paper operates on.
//
// A RoutingTree is a rooted tree with a unique source node (driven by a
// gate), sink nodes (gate input pins with load capacitance, required arrival
// time and noise margin), and internal nodes (Steiner points and candidate
// buffer sites). Every non-source node owns its unique parent wire
// (Section II: "each node has a unique parent wire").
//
// Wires carry lumped electrical values: resistance, capacitance, and the
// total coupling-injected noise current of the Devgan metric (eq. 6). The
// helpers in lib::Technology derive these from geometric length.
//
// The paper assumes binary trees; binarize() converts higher-degree Steiner
// points by inserting zero-length infeasible dummy nodes (footnote 1).
#pragma once

#include <string>
#include <vector>

#include "lib/buffer.hpp"
#include "util/strong_id.hpp"

namespace nbuf::rct {

struct NodeTag {};
using NodeId = util::StrongId<NodeTag>;
struct SinkTag {};
using SinkId = util::StrongId<SinkTag>;

enum class NodeKind { Source, Internal, Sink };

// Electrical values of one wire (the edge from a node to its parent).
struct Wire {
  double length = 0.0;            // µm (0 for binarization dummies)
  double resistance = 0.0;        // ohm
  double capacitance = 0.0;       // farad
  double coupling_current = 0.0;  // ampere — total injected current i_w

  // Proportional sub-wire covering `fraction` of this wire.
  [[nodiscard]] Wire scaled(double fraction) const;
};

// Sink pin data (Section II-A / II-B).
struct SinkInfo {
  std::string name;
  double cap = 0.0;              // farad — input pin capacitance
  double required_arrival = 0.0; // second — RAT(s)
  double noise_margin = 0.0;     // volt — NM(s)
  bool require_inverted = false; // polarity the sink expects vs. the source
  NodeId node;                   // filled in by RoutingTree::add_sink
};

// The gate driving the net at the source.
struct Driver {
  std::string name = "driver";
  double resistance = 0.0;       // ohm
  double intrinsic_delay = 0.0;  // second
};

struct Node {
  NodeKind kind = NodeKind::Internal;
  std::string name;
  NodeId parent;                   // invalid for the source
  Wire parent_wire;                // meaningless for the source
  std::vector<NodeId> children;    // at most 2 once binarized
  SinkId sink;                     // valid iff kind == Sink
  bool buffer_allowed = true;      // legal buffer site (internal nodes only)
};

class RoutingTree {
 public:
  // --- construction -------------------------------------------------------
  // Creates the unique source; must be called exactly once, first.
  NodeId make_source(Driver driver, std::string name = "source");

  // Adds an internal node under `parent` connected by `wire`.
  NodeId add_internal(NodeId parent, Wire wire, std::string name = "",
                      bool buffer_allowed = true);

  // Adds a sink under `parent` connected by `wire`.
  NodeId add_sink(NodeId parent, Wire wire, SinkInfo sink);

  // Splits the parent wire of `node`, inserting a new internal node at
  // `dist_above` µm above `node` (0 < dist_above < wire length). Electrical
  // values split proportionally. Returns the new node.
  NodeId split_wire(NodeId node, double dist_above,
                    std::string name = "", bool buffer_allowed = true);

  // Converts nodes with >2 children to binary via zero-length infeasible
  // dummies. Idempotent.
  void binarize();

  // --- access --------------------------------------------------------------
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] NodeId source() const;
  [[nodiscard]] const Driver& driver() const;
  [[nodiscard]] const SinkInfo& sink(SinkId id) const;
  [[nodiscard]] const SinkInfo& sink_at(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t sink_count() const noexcept {
    return sinks_.size();
  }
  [[nodiscard]] const std::vector<SinkInfo>& sinks() const noexcept {
    return sinks_;
  }
  [[nodiscard]] bool is_binary() const;

  // All node ids in preorder (source first) / postorder (source last).
  [[nodiscard]] std::vector<NodeId> preorder() const;
  [[nodiscard]] std::vector<NodeId> postorder() const;
  // Nodes of the subtree rooted at `root`, preorder.
  [[nodiscard]] std::vector<NodeId> subtree_preorder(NodeId root) const;

  // Path from ancestor `from` down to `to` (inclusive of both endpoints).
  // Throws if `from` is not an ancestor of `to`.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId to) const;

  // --- aggregates ----------------------------------------------------------
  // Total wire capacitance + sink pin capacitance (no buffers).
  [[nodiscard]] double total_cap() const;
  [[nodiscard]] double total_wirelength() const;
  [[nodiscard]] double total_coupling_current() const;

  // Structural sanity: unique source, acyclic parent links, children/parent
  // agreement, sinks are leaves, non-negative electrical values.
  void validate() const;

  void set_driver(Driver d) { driver_ = std::move(d); }
  // Marks/unmarks a node as a legal buffer site.
  void set_buffer_allowed(NodeId id, bool allowed);
  // Overwrites the parent wire of `node` (used by segmenting and tests).
  void set_parent_wire(NodeId id, Wire wire);
  // Overwrites sink data (used by experiment drivers to set RATs/margins).
  void set_sink_info(SinkId id, SinkInfo info);

 private:
  Node& node_mut(NodeId id);
  NodeId add_node(Node n);

  std::vector<Node> nodes_;
  std::vector<SinkInfo> sinks_;
  Driver driver_;
  NodeId source_;
};

// Convenience builder for two-pin nets: a single wire of the given length
// (µm) from source to one sink, with electrical values from `tech`.
struct TwoPinSpec {
  double length = 0.0;  // µm
  Driver driver;
  SinkInfo sink;
};

}  // namespace nbuf::rct
