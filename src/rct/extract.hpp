// Extracting one stage of a buffered tree as a standalone net.
//
// A stage (see stage.hpp) is itself a complete net: driven by a gate,
// loaded by pins. extract_stage materializes it as an independent
// RoutingTree so any single-net algorithm (analysis, repair, optimization)
// can run on it; node_of maps extracted ids back to the original tree.
#pragma once

#include <vector>

#include "rct/stage.hpp"

namespace nbuf::rct {

struct ExtractedStage {
  RoutingTree tree;
  std::vector<NodeId> orig_of;  // indexed by extracted NodeId value
};

// `default_rat` is assigned to every extracted sink (stage-local repair
// usually cares about noise, not arrival times). Buffer-input leaves become
// sinks with the buffer's input cap and noise margin.
[[nodiscard]] ExtractedStage extract_stage(const RoutingTree& tree,
                                           const Stage& stage,
                                           double default_rat);

}  // namespace nbuf::rct
