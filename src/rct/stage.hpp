// Stage decomposition of a buffered routing tree.
//
// Assigning buffers to a tree T induces |M|+1 sub-nets ("stages" — the
// paper's T(M, v) subtrees): each stage is the maximal subtree below a
// restoring gate (the net's driver or an inserted buffer) containing no
// further internal buffers. Delay composes across stages through the linear
// gate delay model; noise does NOT propagate across stages because buffers
// are restoring (Section II-B).
//
// The Elmore engine, the Devgan noise engine, and the golden transient
// simulator all consume stages, so buffered-tree evaluation is written once.
#pragma once

#include <vector>

#include "rct/assignment.hpp"
#include "rct/tree.hpp"

namespace nbuf::rct {

// A leaf of a stage: either a true sink of the net, or the input pin of a
// downstream inserted buffer.
struct StageSink {
  NodeId node;
  double cap = 0.0;           // farad
  double noise_margin = 0.0;  // volt
  bool is_buffer_input = false;
  lib::BufferId buffer;       // valid iff is_buffer_input
  SinkId sink;                // valid iff !is_buffer_input
};

// One buffer-free sub-net of a buffered tree.
struct Stage {
  NodeId root;                 // net source or a buffered node
  bool driven_by_source = false;
  lib::BufferId driver_buffer; // valid iff !driven_by_source

  // Driver electrical values (net driver or the inserted buffer).
  double driver_resistance = 0.0;
  double driver_intrinsic_delay = 0.0;

  // Stage nodes in preorder starting at root. Boundary buffer nodes appear
  // as stage leaves (their subtree belongs to the next stage).
  std::vector<NodeId> nodes;
  std::vector<StageSink> sinks;
};

// Decomposes tree+assignment into stages, root stage first, in preorder of
// stage roots. The driver of stage k+1 is always a StageSink of some earlier
// stage (or the net source).
[[nodiscard]] std::vector<Stage> decompose(const RoutingTree& tree,
                                           const BufferAssignment& buffers,
                                           const lib::BufferLibrary& lib);

}  // namespace nbuf::rct
