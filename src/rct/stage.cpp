#include "rct/stage.hpp"

#include "util/check.hpp"

namespace nbuf::rct {

namespace {

// Builds the stage rooted at `root` and appends roots of downstream stages
// (buffered nodes) to `next_roots`.
Stage build_stage(const RoutingTree& tree, const BufferAssignment& buffers,
                  const lib::BufferLibrary& lib, NodeId root,
                  std::vector<NodeId>& next_roots) {
  Stage st;
  st.root = root;
  if (root == tree.source()) {
    st.driven_by_source = true;
    st.driver_resistance = tree.driver().resistance;
    st.driver_intrinsic_delay = tree.driver().intrinsic_delay;
  } else {
    NBUF_ASSERT(buffers.has_buffer(root));
    st.driver_buffer = buffers.at(root);
    const lib::BufferType& b = lib.at(st.driver_buffer);
    st.driver_resistance = b.resistance;
    st.driver_intrinsic_delay = b.intrinsic_delay;
  }

  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    st.nodes.push_back(id);
    const Node& n = tree.node(id);

    if (id != root && buffers.has_buffer(id)) {
      // Boundary: this node's buffer input is a leaf of the current stage;
      // its subtree starts the next stage.
      StageSink leaf;
      leaf.node = id;
      leaf.is_buffer_input = true;
      leaf.buffer = buffers.at(id);
      leaf.cap = lib.at(leaf.buffer).input_cap;
      leaf.noise_margin = lib.at(leaf.buffer).noise_margin;
      st.sinks.push_back(leaf);
      next_roots.push_back(id);
      continue;
    }
    if (n.kind == NodeKind::Sink) {
      const SinkInfo& si = tree.sink(n.sink);
      StageSink leaf;
      leaf.node = id;
      leaf.is_buffer_input = false;
      leaf.sink = n.sink;
      leaf.cap = si.cap;
      leaf.noise_margin = si.noise_margin;
      st.sinks.push_back(leaf);
      continue;
    }
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it)
      stack.push_back(*it);
  }
  return st;
}

}  // namespace

std::vector<Stage> decompose(const RoutingTree& tree,
                             const BufferAssignment& buffers,
                             const lib::BufferLibrary& lib) {
  buffers.validate(tree, lib);
  std::vector<Stage> stages;
  std::vector<NodeId> roots{tree.source()};
  for (std::size_t i = 0; i < roots.size(); ++i)
    stages.push_back(build_stage(tree, buffers, lib, roots[i], roots));
  NBUF_ASSERT(stages.size() == buffers.size() + 1);
  return stages;
}

}  // namespace nbuf::rct
