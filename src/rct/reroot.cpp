#include "rct/reroot.hpp"

#include <vector>

#include "util/check.hpp"

namespace nbuf::rct {

RerootResult reroot(const RoutingTree& tree, NodeId new_source_sink,
                    Driver driver, SinkInfo old_source_as_sink) {
  const Node& terminal = tree.node(new_source_sink);
  NBUF_EXPECTS_MSG(terminal.kind == NodeKind::Sink,
                   "the new source must be a sink terminal of the tree");

  // Undirected adjacency; each edge remembers the wire (stored on the
  // original child side).
  struct Edge {
    NodeId other;
    Wire wire;
  };
  std::vector<std::vector<Edge>> adj(tree.node_count());
  for (NodeId id : tree.preorder()) {
    const Node& n = tree.node(id);
    if (id == tree.source()) continue;
    adj[id.value()].push_back({n.parent, n.parent_wire});
    adj[n.parent.value()].push_back({id, n.parent_wire});
  }

  RerootResult rr;
  rr.new_id_of.assign(tree.node_count(), NodeId::invalid());

  // BFS from the new root; the pin capacitance of the driving terminal is
  // dropped (its pin is now the driver's output, not a load).
  rr.new_id_of[new_source_sink.value()] =
      rr.tree.make_source(std::move(driver), terminal.name);

  std::vector<NodeId> queue{new_source_sink};
  std::vector<bool> seen(tree.node_count(), false);
  seen[new_source_sink.value()] = true;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const NodeId cur = queue[qi];
    const NodeId new_parent = rr.new_id_of[cur.value()];
    for (const Edge& e : adj[cur.value()]) {
      if (seen[e.other.value()]) continue;
      seen[e.other.value()] = true;
      const Node& n = tree.node(e.other);
      // Nodes that keep further branches in the new orientation must stay
      // internal; terminal pins then hang off a zero-length stub (sinks are
      // always leaves).
      const bool has_more_branches = adj[e.other.value()].size() > 1;
      NodeId made;
      if (n.kind == NodeKind::Sink) {
        made = rr.tree.add_sink(new_parent, e.wire, tree.sink(n.sink));
      } else if (e.other == tree.source()) {
        SinkInfo s = old_source_as_sink;
        if (s.name.empty()) s.name = n.name;
        if (has_more_branches) {
          made = rr.tree.add_internal(new_parent, e.wire, n.name,
                                      /*buffer_allowed=*/false);
          rr.tree.add_sink(made, Wire{}, std::move(s));
        } else {
          made = rr.tree.add_sink(new_parent, e.wire, std::move(s));
        }
      } else {
        made = rr.tree.add_internal(new_parent, e.wire, n.name,
                                    n.buffer_allowed);
      }
      rr.new_id_of[e.other.value()] = made;
      queue.push_back(e.other);
    }
  }
  rr.tree.binarize();
  rr.tree.validate();
  return rr;
}

BufferAssignment map_assignment(const BufferAssignment& buffers,
                                const RerootResult& rr) {
  BufferAssignment out;
  for (const auto& [node, type] : buffers.entries()) {
    const NodeId mapped = rr.new_id_of[node.value()];
    NBUF_EXPECTS_MSG(mapped.valid(), "assignment references unmapped node");
    out.place(mapped, type);
  }
  return out;
}

}  // namespace nbuf::rct
