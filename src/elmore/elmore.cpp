#include "elmore/elmore.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace nbuf::elmore {

namespace {

// True if `id` is a leaf of this stage (buffer input boundary); such nodes'
// tree children belong to the next stage.
bool is_stage_boundary(const rct::Stage& stage, rct::NodeId id) {
  return std::any_of(stage.sinks.begin(), stage.sinks.end(),
                     [&](const rct::StageSink& s) {
                       return s.node == id && s.is_buffer_input;
                     });
}

}  // namespace

std::unordered_map<rct::NodeId, double> stage_loads(
    const rct::RoutingTree& tree, const rct::Stage& stage) {
  std::unordered_map<rct::NodeId, double> load;
  load.reserve(stage.nodes.size());
  // Pin caps at stage leaves.
  for (const rct::StageSink& s : stage.sinks) load[s.node] = s.cap;
  // stage.nodes is preorder; walk it in reverse for a postorder sweep.
  for (auto it = stage.nodes.rbegin(); it != stage.nodes.rend(); ++it) {
    const rct::NodeId id = *it;
    if (load.count(id) && is_stage_boundary(stage, id)) continue;
    double c = load.count(id) ? load[id] : 0.0;
    if (!is_stage_boundary(stage, id)) {
      for (rct::NodeId child : tree.node(id).children) {
        auto lc = load.find(child);
        if (lc == load.end()) continue;  // child outside the stage
        c += lc->second + tree.node(child).parent_wire.capacitance;
      }
    }
    load[id] = c;
  }
  return load;
}

std::unordered_map<rct::NodeId, double> stage_wire_delays(
    const rct::RoutingTree& tree, const rct::Stage& stage) {
  const auto load = stage_loads(tree, stage);
  std::unordered_map<rct::NodeId, double> delay;
  delay.reserve(stage.nodes.size());
  delay[stage.root] = 0.0;
  // Preorder guarantees the parent's delay is known first.
  for (rct::NodeId id : stage.nodes) {
    if (id == stage.root) continue;
    const rct::Node& n = tree.node(id);
    const rct::Wire& w = n.parent_wire;
    // Elmore delay is a provable upper bound only for nonnegative RC; a
    // negative or non-finite value here would silently invert slacks.
    NBUF_REQUIRE_CTX(std::isfinite(w.resistance) && w.resistance >= 0.0 &&
                         std::isfinite(w.capacitance) &&
                         w.capacitance >= 0.0,
                     util::ctx("node", id.value(), "R", w.resistance, "C",
                               w.capacitance));
    auto pd = delay.find(n.parent);
    NBUF_ASSERT_MSG(pd != delay.end(), "stage nodes must be preorder");
    delay[id] =
        pd->second + w.resistance * (w.capacitance / 2.0 + load.at(id));
  }
  return delay;
}

TimingReport analyze(const rct::RoutingTree& tree,
                     const rct::BufferAssignment& buffers,
                     const lib::BufferLibrary& lib) {
  const auto stages = rct::decompose(tree, buffers, lib);

  // Arrival time at each stage root's gate *output*.
  std::unordered_map<rct::NodeId, double> root_arrival;

  TimingReport report;
  report.sinks.resize(tree.sink_count());
  report.max_delay = 0.0;
  report.worst_slack = std::numeric_limits<double>::infinity();

  for (const rct::Stage& st : stages) {
    const auto load = stage_loads(tree, st);
    const auto wire_delay = stage_wire_delays(tree, st);

    double in_arrival = 0.0;  // arrival at the driving gate's input
    if (!st.driven_by_source) {
      auto it = root_arrival.find(st.root);
      NBUF_ASSERT_MSG(it != root_arrival.end(),
                      "stages must come root-first");
      in_arrival = it->second;
    }
    const double out_arrival = in_arrival + st.driver_intrinsic_delay +
                               st.driver_resistance * load.at(st.root);

    for (const rct::StageSink& s : st.sinks) {
      const double t = out_arrival + wire_delay.at(s.node);
      if (s.is_buffer_input) {
        root_arrival[s.node] = t;
      } else {
        const rct::SinkInfo& si = tree.sink(s.sink);
        SinkTiming st_out;
        st_out.sink = s.sink;
        st_out.delay = t;
        st_out.slack = si.required_arrival - t;
        report.sinks[s.sink.value()] = st_out;
        report.max_delay = std::max(report.max_delay, t);
        report.worst_slack = std::min(report.worst_slack, st_out.slack);
      }
    }
  }
  NBUF_ASSERT(!report.sinks.empty());
  return report;
}

TimingReport analyze_unbuffered(const rct::RoutingTree& tree) {
  static const lib::BufferLibrary empty_lib;
  return analyze(tree, rct::BufferAssignment{}, empty_lib);
}

}  // namespace nbuf::elmore
