// Elmore delay engine (Section II-A).
//
// Interconnect delay uses the Elmore model: a wire w = (u,v) contributes
//   Delay(w) = R_w * (C_w / 2 + C(v))                              (eq. 2)
// where C(v) is the lumped downstream capacitance (eq. 1); a gate g driving
// load C uses the linear model
//   Delay(g) = D_g + R_g * C                                       (eq. 3)
// and the source-to-sink delay is the sum over the path of gate and wire
// delays (eq. 4). Buffers cut the tree into stages (rct::decompose); the
// load seen by a stage's driver stops at downstream buffer inputs.
#pragma once

#include <unordered_map>
#include <vector>

#include "rct/stage.hpp"

namespace nbuf::elmore {

struct SinkTiming {
  rct::SinkId sink;
  double delay = 0.0;  // second — Delay(so -> si) including all gate delays
  double slack = 0.0;  // second — RAT(si) - delay
};

struct TimingReport {
  std::vector<SinkTiming> sinks;  // indexed by SinkId value
  double max_delay = 0.0;
  double worst_slack = 0.0;  // q(so): min over sinks of RAT - delay
};

// Stage-local downstream capacitance for every node of `stage` (eq. 1 with
// buffers cutting the subtree). Keyed by node id.
[[nodiscard]] std::unordered_map<rct::NodeId, double> stage_loads(
    const rct::RoutingTree& tree, const rct::Stage& stage);

// Wire-only Elmore delay from the stage root to each node of the stage
// (excludes the driver's gate delay). Keyed by node id.
[[nodiscard]] std::unordered_map<rct::NodeId, double> stage_wire_delays(
    const rct::RoutingTree& tree, const rct::Stage& stage);

// Full timing of a buffered tree: per-sink Elmore delay through all stages,
// slacks against the sinks' required arrival times.
[[nodiscard]] TimingReport analyze(const rct::RoutingTree& tree,
                                   const rct::BufferAssignment& buffers,
                                   const lib::BufferLibrary& lib);

// Convenience: timing of the unbuffered tree.
[[nodiscard]] TimingReport analyze_unbuffered(const rct::RoutingTree& tree);

}  // namespace nbuf::elmore
