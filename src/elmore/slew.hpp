// Transition-time (slew) estimation on buffered trees.
//
// Model: within one stage, the 10-90% transition at a leaf is approximated
// by the saturated-ramp response of the dominant pole,
//   slew(leaf) = ln 9 * ( R_gate * C_stage + Elmore(root -> leaf) )
// i.e. the same additive quantities the delay engine uses, scaled by
// ln 9 ≈ 2.197. Buffers restore edges, so slew never propagates across a
// stage boundary (matching how the noise metric treats restoring gates).
// This is the classic single-pole/PERI-style estimate: simple, additive,
// conservative for far leaves — the properties the Van Ginneken DP needs to
// enforce max-slew constraints bottom-up (see VgOptions::max_slew).
#pragma once

#include <vector>

#include "rct/stage.hpp"

namespace nbuf::elmore {

inline constexpr double kSlewFactor = 2.1972245773362196;  // ln 9

struct LeafSlew {
  rct::NodeId node;
  bool is_buffer_input = false;
  rct::SinkId sink;    // valid iff !is_buffer_input
  double slew = 0.0;   // second — 10-90% transition estimate at the leaf
};

struct SlewReport {
  std::vector<LeafSlew> leaves;  // every stage leaf
  std::vector<LeafSlew> sinks;   // true sinks, indexed by SinkId
  double max_slew = 0.0;         // worst leaf anywhere
};

// Per-leaf slew estimates for every stage of tree+buffers.
[[nodiscard]] SlewReport slews(const rct::RoutingTree& tree,
                               const rct::BufferAssignment& buffers,
                               const lib::BufferLibrary& lib);

}  // namespace nbuf::elmore
