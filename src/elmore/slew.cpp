#include "elmore/slew.hpp"

#include <algorithm>

#include "elmore/elmore.hpp"

namespace nbuf::elmore {

SlewReport slews(const rct::RoutingTree& tree,
                 const rct::BufferAssignment& buffers,
                 const lib::BufferLibrary& lib) {
  const auto stages = rct::decompose(tree, buffers, lib);
  SlewReport report;
  report.sinks.resize(tree.sink_count());
  for (const rct::Stage& st : stages) {
    const auto load = stage_loads(tree, st);
    const auto wire_delay = stage_wire_delays(tree, st);
    const double gate_term = st.driver_resistance * load.at(st.root);
    for (const rct::StageSink& s : st.sinks) {
      LeafSlew ls;
      ls.node = s.node;
      ls.is_buffer_input = s.is_buffer_input;
      ls.sink = s.sink;
      ls.slew = kSlewFactor * (gate_term + wire_delay.at(s.node));
      report.leaves.push_back(ls);
      if (!s.is_buffer_input) report.sinks[s.sink.value()] = ls;
      report.max_slew = std::max(report.max_slew, ls.slew);
    }
  }
  return report;
}

}  // namespace nbuf::elmore
