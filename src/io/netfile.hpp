// Plain-text net description files (".net") — the interchange format of the
// nbuf_cli tool.
//
// Line-oriented, '#' starts a comment, blank lines ignored. Units inside
// files are the conventional EDA ones (converted to SI on load):
//   length µm · resistance ohm · capacitance fF · time ps · voltage V ·
//   current µA
//
//   name    <net-name>                         (optional, once)
//   tech    <r_ohm_per_um> <c_ff_per_um> <vdd_v> <agg_rise_ps> <lambda>
//   driver  <name> <res_ohm> <intrinsic_ps>    (required, once, first)
//   node    <name> <parent> <len_um> [<res_ohm> <cap_ff> <i_ua>]
//   sink    <name> <parent> <len_um> <cap_ff> <rat_ps> <nm_v> [inverted]
//   buffer  <node-name> <buffer-type-name>     (a placed solution)
//
// `parent` is "source" or a previously declared node name. When a node/sink
// omits explicit electricals, they derive from the `tech` line (which must
// then appear earlier); estimation-mode coupling current is applied.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "lib/buffer.hpp"
#include "lib/technology.hpp"
#include "rct/assignment.hpp"
#include "rct/tree.hpp"

namespace nbuf::io {

// Thrown on malformed input; what() carries the 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message);
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

struct NetFile {
  std::string name;
  rct::RoutingTree tree;
  std::optional<lib::Technology> tech;
  // Buffer placements named in the file; resolved against the library given
  // to read_net (placements naming unknown buffer types throw).
  rct::BufferAssignment buffers;
};

// Parses a net description. `library` resolves `buffer` lines (pass an
// empty library if the file has none).
[[nodiscard]] NetFile read_net(std::istream& in,
                               const lib::BufferLibrary& library);
[[nodiscard]] NetFile read_net_file(const std::string& path,
                                    const lib::BufferLibrary& library);

// Serializes tree (+ solution) in the same format; read_net(write_net(x))
// reproduces the electrical tree exactly. Nodes with empty names get
// generated ones.
void write_net(std::ostream& out, const std::string& name,
               const rct::RoutingTree& tree,
               const rct::BufferAssignment& buffers,
               const lib::BufferLibrary& library);
void write_net_file(const std::string& path, const std::string& name,
                    const rct::RoutingTree& tree,
                    const rct::BufferAssignment& buffers,
                    const lib::BufferLibrary& library);

}  // namespace nbuf::io
