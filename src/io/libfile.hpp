// Plain-text buffer-library files (".lib") — the nbuf_cli --library format.
//
// Line-oriented, '#' starts a comment, blank lines ignored. Units are the
// conventional EDA ones (converted to SI on load):
//   resistance ohm · capacitance fF · time ps · voltage V
//
//   library <name>                                        (optional, once)
//   buffer <name> <r_ohm> <cin_ff> <delay_ps> <nm_v> [inverting]
//
// Validation (docs/library.md): every numeric field finite and in range,
// R/C/NM strictly positive, delay non-negative, names unique, at least one
// type, and at least one non-inverting type — Algorithms 1/2 insert
// polarity-preserving repeaters, so an inverting-only file cannot serve
// the tool pipeline. Violations throw ParseError with the 1-based line
// number. write_library uses 17 significant digits, so
// write(read(write(x))) is byte-identical to write(x).
#pragma once

#include <iosfwd>
#include <string>

#include "io/netfile.hpp"  // ParseError
#include "lib/buffer.hpp"

namespace nbuf::io {

struct LibFile {
  std::string name;  // from the `library` line; may be empty
  lib::BufferLibrary library;
};

[[nodiscard]] LibFile read_library(std::istream& in);
[[nodiscard]] LibFile read_library_file(const std::string& path);

void write_library(std::ostream& out, const std::string& name,
                   const lib::BufferLibrary& library);
void write_library_file(const std::string& path, const std::string& name,
                        const lib::BufferLibrary& library);

}  // namespace nbuf::io
