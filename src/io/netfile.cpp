#include "io/netfile.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/units.hpp"

namespace nbuf::io {

using namespace nbuf::units;

ParseError::ParseError(std::size_t line, const std::string& message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      line_(line) {}

namespace {

struct Parser {
  const lib::BufferLibrary& library;
  NetFile out;
  std::map<std::string, rct::NodeId> nodes_by_name;
  std::map<std::string, lib::BufferId> buffers_by_name;
  bool have_driver = false;
  std::size_t lineno = 0;

  explicit Parser(const lib::BufferLibrary& l) : library(l) {
    for (lib::BufferId id : l.ids())
      buffers_by_name.emplace(l.at(id).name, id);
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(lineno, msg);
  }

  // Parse bound: every numeric field must be finite and of sane magnitude.
  // operator>> happily reads "inf"/"nan", and one NaN wire would defeat the
  // finiteness contracts the noise/elmore engines rely on (Thm 2's upper
  // bound holds only for finite nonnegative electricals), so the parser is
  // the right place to reject non-physical values with a line number.
  static constexpr double kMaxMagnitude = 1e12;

  double num(std::istringstream& ss, const char* what) {
    double v = 0.0;
    if (!(ss >> v)) fail(std::string("expected number for ") + what);
    if (!std::isfinite(v) || v < -kMaxMagnitude || v > kMaxMagnitude)
      fail(std::string("non-finite or out-of-range value for ") + what);
    return v;
  }

  std::string word(std::istringstream& ss, const char* what) {
    std::string w;
    if (!(ss >> w)) fail(std::string("expected ") + what);
    return w;
  }

  rct::NodeId parent_of(const std::string& name) {
    if (name == "source") return out.tree.source();
    auto it = nodes_by_name.find(name);
    if (it == nodes_by_name.end()) fail("unknown parent '" + name + "'");
    return it->second;
  }

  void check_fresh_name(const std::string& name) {
    if (name == "source" || nodes_by_name.count(name))
      fail("duplicate node name '" + name + "'");
  }

  rct::Wire wire_from(std::istringstream& ss, double len) {
    rct::Wire w;
    w.length = len;
    double r = 0.0;
    if (ss >> r) {
      // Explicit electricals.
      w.resistance = r;
      w.capacitance = num(ss, "wire capacitance (fF)") * fF;
      w.coupling_current = num(ss, "coupling current (uA)") * uA;
    } else {
      if (!out.tech) fail("no `tech` line before implicit wire electricals");
      w.resistance = out.tech->wire_res(len);
      w.capacitance = out.tech->wire_cap(len);
      w.coupling_current = out.tech->wire_coupling_current(len);
    }
    if (w.resistance < 0.0 || w.capacitance < 0.0 ||
        w.coupling_current < 0.0 || w.length < 0.0)
      fail("negative wire electricals");
    return w;
  }

  void line_tech(std::istringstream& ss) {
    lib::Technology t;
    t.wire_res_per_um = num(ss, "r (ohm/um)");
    t.wire_cap_per_um = num(ss, "c (fF/um)") * fF;
    t.vdd = num(ss, "vdd (V)");
    t.aggressor_rise = num(ss, "aggressor rise (ps)") * ps;
    t.coupling_ratio = num(ss, "lambda");
    try {
      t.validate();
    } catch (const std::invalid_argument& e) {
      fail(std::string("bad tech line: ") + e.what());
    }
    out.tech = t;
  }

  void line_driver(std::istringstream& ss) {
    if (have_driver) fail("duplicate driver line");
    rct::Driver d;
    d.name = word(ss, "driver name");
    d.resistance = num(ss, "driver resistance (ohm)");
    d.intrinsic_delay = num(ss, "driver intrinsic delay (ps)") * ps;
    if (d.resistance <= 0.0) fail("driver resistance must be positive");
    out.tree.make_source(d, "source");
    have_driver = true;
  }

  void require_driver() {
    if (!have_driver) fail("driver line must precede nodes and sinks");
  }

  void line_node(std::istringstream& ss) {
    require_driver();
    const std::string name = word(ss, "node name");
    check_fresh_name(name);
    const rct::NodeId parent = parent_of(word(ss, "parent name"));
    const double len = num(ss, "length (um)");
    const rct::Wire w = wire_from(ss, len);
    nodes_by_name[name] = out.tree.add_internal(parent, w, name);
  }

  void line_sink(std::istringstream& ss) {
    require_driver();
    const std::string name = word(ss, "sink name");
    check_fresh_name(name);
    const rct::NodeId parent = parent_of(word(ss, "parent name"));
    const double len = num(ss, "length (um)");
    rct::SinkInfo s;
    s.name = name;
    s.cap = num(ss, "sink capacitance (fF)") * fF;
    s.required_arrival = num(ss, "RAT (ps)") * ps;
    s.noise_margin = num(ss, "noise margin (V)");
    // Optional trailing: explicit wire electricals (3 numbers) and/or the
    // `inverted` flag, in any order.
    std::vector<double> extra;
    bool inverted = false;
    std::string tok;
    while (ss >> tok) {
      if (tok == "inverted") {
        inverted = true;
        continue;
      }
      try {
        std::size_t used = 0;
        const double v = std::stod(tok, &used);
        if (used != tok.size()) fail("bad trailing token '" + tok + "'");
        if (!std::isfinite(v) || v < -kMaxMagnitude || v > kMaxMagnitude)
          fail("non-finite or out-of-range trailing value '" + tok + "'");
        extra.push_back(v);
      } catch (const std::invalid_argument&) {
        fail("unexpected trailing token '" + tok + "'");
      }
    }
    s.require_inverted = inverted;
    rct::Wire w;
    w.length = len;
    if (extra.size() == 3) {
      w.resistance = extra[0];
      w.capacitance = extra[1] * fF;
      w.coupling_current = extra[2] * uA;
    } else if (extra.empty()) {
      if (!out.tech) fail("no `tech` line before a sink");
      w.resistance = out.tech->wire_res(len);
      w.capacitance = out.tech->wire_cap(len);
      w.coupling_current = out.tech->wire_coupling_current(len);
    } else {
      fail("sink wire electricals need exactly 3 numbers (ohm, fF, uA)");
    }
    if (w.resistance < 0.0 || w.capacitance < 0.0 ||
        w.coupling_current < 0.0)
      fail("negative wire electricals");
    if (s.cap < 0.0) fail("negative sink capacitance");
    if (s.noise_margin <= 0.0) fail("noise margin must be positive");
    nodes_by_name[name] = out.tree.add_sink(parent, w, s);
  }

  void line_buffer(std::istringstream& ss) {
    require_driver();
    const std::string node = word(ss, "node name");
    const std::string type = word(ss, "buffer type name");
    auto nit = nodes_by_name.find(node);
    if (nit == nodes_by_name.end()) fail("unknown node '" + node + "'");
    auto bit = buffers_by_name.find(type);
    if (bit == buffers_by_name.end())
      fail("unknown buffer type '" + type + "'");
    out.buffers.place(nit->second, bit->second);
  }

  void line_name(std::istringstream& ss) {
    out.name = word(ss, "net name");
  }
};

}  // namespace

NetFile read_net(std::istream& in, const lib::BufferLibrary& library) {
  Parser p(library);
  std::string raw;
  while (std::getline(in, raw)) {
    ++p.lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ss(raw);
    std::string keyword;
    if (!(ss >> keyword)) continue;  // blank / comment-only
    if (keyword == "name") {
      p.line_name(ss);
    } else if (keyword == "tech") {
      p.line_tech(ss);
    } else if (keyword == "driver") {
      p.line_driver(ss);
    } else if (keyword == "node") {
      p.line_node(ss);
    } else if (keyword == "sink") {
      p.line_sink(ss);
    } else if (keyword == "buffer") {
      p.line_buffer(ss);
    } else {
      p.fail("unknown keyword '" + keyword + "'");
    }
  }
  if (!p.have_driver) throw ParseError(p.lineno, "file has no driver line");
  if (p.out.tree.sink_count() == 0)
    throw ParseError(p.lineno, "net has no sinks");
  p.out.tree.validate();
  p.out.buffers.validate(p.out.tree, library);
  return std::move(p.out);
}

NetFile read_net_file(const std::string& path,
                      const lib::BufferLibrary& library) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return read_net(in, library);
}

void write_net(std::ostream& out, const std::string& name,
               const rct::RoutingTree& tree,
               const rct::BufferAssignment& buffers,
               const lib::BufferLibrary& library) {
  out << std::setprecision(17);  // exact double round-trip
  out << "# nbuf net description (units: um, ohm, fF, ps, V, uA)\n";
  if (!name.empty()) out << "name " << name << '\n';
  const rct::Driver& d = tree.driver();
  out << "driver " << (d.name.empty() ? "drv" : d.name) << ' '
      << d.resistance << ' ' << d.intrinsic_delay / ps << '\n';

  // Stable generated names for anonymous nodes.
  std::map<rct::NodeId, std::string> names;
  names[tree.source()] = "source";
  std::size_t counter = 0;
  auto name_of = [&](rct::NodeId id) -> const std::string& {
    auto it = names.find(id);
    if (it != names.end()) return it->second;
    const rct::Node& n = tree.node(id);
    std::string candidate = n.name;
    if (candidate.empty() || candidate == "source")
      candidate = "n" + std::to_string(counter);
    while (true) {
      bool clash = false;
      for (const auto& [nid, nm] : names)
        if (nm == candidate) clash = true;
      if (!clash) break;
      candidate = "n" + std::to_string(counter++) + "_" + candidate;
    }
    ++counter;
    return names.emplace(id, std::move(candidate)).first->second;
  };

  std::map<rct::NodeId, std::size_t> preorder_pos;
  for (rct::NodeId id : tree.preorder()) {
    preorder_pos.emplace(id, preorder_pos.size());
    if (id == tree.source()) continue;
    const rct::Node& n = tree.node(id);
    const rct::Wire& w = n.parent_wire;
    const std::string& nm = name_of(id);
    const std::string& pn = name_of(n.parent);
    if (n.kind == rct::NodeKind::Sink) {
      const rct::SinkInfo& s = tree.sink(n.sink);
      out << "sink " << nm << ' ' << pn << ' ' << w.length << ' '
          << s.cap / fF << ' ' << s.required_arrival / ps << ' '
          << s.noise_margin << ' ' << w.resistance << ' '
          << w.capacitance / fF << ' ' << w.coupling_current / uA;
      if (s.require_inverted) out << " inverted";
      out << '\n';
    } else {
      out << "node " << nm << ' ' << pn << ' ' << w.length << ' '
          << w.resistance << ' ' << w.capacitance / fF << ' '
          << w.coupling_current / uA << '\n';
    }
  }
  // entries() is node-id-sorted, but this writer orders buffer lines by
  // the node's preorder position. Preorder — not raw node id — because
  // reading the file back renumbers ids in file order, and
  // write -> read -> write must be the identity.
  auto entries = buffers.entries();
  std::sort(entries.begin(), entries.end(),  // nbuf-lint: allow(sort)
            [&](const auto& a, const auto& b) {
              return preorder_pos.at(a.first) < preorder_pos.at(b.first);
            });
  for (const auto& [node, type] : entries)
    out << "buffer " << name_of(node) << ' ' << library.at(type).name
        << '\n';
}

void write_net_file(const std::string& path, const std::string& name,
                    const rct::RoutingTree& tree,
                    const rct::BufferAssignment& buffers,
                    const lib::BufferLibrary& library) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for write");
  write_net(out, name, tree, buffers, library);
}

}  // namespace nbuf::io
