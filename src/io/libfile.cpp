#include "io/libfile.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/units.hpp"

namespace nbuf::io {

using namespace nbuf::units;

namespace {

// Same parse bound as the .net parser: reject non-finite and absurd values
// at the boundary, with a line number, before they can defeat the
// finiteness contracts of the DP.
constexpr double kMaxMagnitude = 1e12;

struct Parser {
  LibFile out;
  bool have_name = false;
  std::size_t lineno = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(lineno, msg);
  }

  double num(std::istringstream& ss, const char* what) {
    double v = 0.0;
    if (!(ss >> v)) fail(std::string("expected number for ") + what);
    if (!std::isfinite(v) || v < -kMaxMagnitude || v > kMaxMagnitude)
      fail(std::string("non-finite or out-of-range value for ") + what);
    return v;
  }

  std::string word(std::istringstream& ss, const char* what) {
    std::string w;
    if (!(ss >> w)) fail(std::string("expected ") + what);
    return w;
  }

  void line_library(std::istringstream& ss) {
    if (have_name) fail("duplicate library line");
    out.name = word(ss, "library name");
    have_name = true;
  }

  void line_buffer(std::istringstream& ss) {
    lib::BufferType t;
    t.name = word(ss, "buffer name");
    t.resistance = num(ss, "resistance (ohm)");
    t.input_cap = num(ss, "input capacitance (fF)") * fF;
    t.intrinsic_delay = num(ss, "intrinsic delay (ps)") * ps;
    t.noise_margin = num(ss, "noise margin (V)");
    std::string tok;
    if (ss >> tok) {
      if (tok != "inverting") fail("unexpected trailing token '" + tok + "'");
      t.inverting = true;
    }
    if (t.resistance <= 0.0) fail("resistance must be positive");
    if (t.input_cap <= 0.0) fail("input capacitance must be positive");
    if (t.intrinsic_delay < 0.0) fail("intrinsic delay must be >= 0");
    if (t.noise_margin <= 0.0) fail("noise margin must be positive");
    if (out.library.find(t.name))
      fail("duplicate buffer name '" + t.name + "'");
    out.library.add(std::move(t));
  }
};

}  // namespace

LibFile read_library(std::istream& in) {
  Parser p;
  std::string raw;
  while (std::getline(in, raw)) {
    ++p.lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ss(raw);
    std::string keyword;
    if (!(ss >> keyword)) continue;  // blank / comment-only
    if (keyword == "library") {
      p.line_library(ss);
    } else if (keyword == "buffer") {
      p.line_buffer(ss);
    } else {
      p.fail("unknown keyword '" + keyword + "'");
    }
  }
  if (p.out.library.empty())
    throw ParseError(p.lineno, "library has no buffer types");
  if (p.out.library.inverting_count() == p.out.library.size())
    throw ParseError(p.lineno,
                     "library needs at least one non-inverting type");
  return std::move(p.out);
}

LibFile read_library_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return read_library(in);
}

void write_library(std::ostream& out, const std::string& name,
                   const lib::BufferLibrary& library) {
  out << std::setprecision(17);  // exact double round-trip
  out << "# nbuf buffer library (units: ohm, fF, ps, V)\n";
  if (!name.empty()) out << "library " << name << '\n';
  for (const lib::BufferType& t : library.types()) {
    out << "buffer " << t.name << ' ' << t.resistance << ' '
        << t.input_cap / fF << ' ' << t.intrinsic_delay / ps << ' '
        << t.noise_margin;
    if (t.inverting) out << " inverting";
    out << '\n';
  }
}

void write_library_file(const std::string& path, const std::string& name,
                        const lib::BufferLibrary& library) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for write");
  write_library(out, name, library);
}

}  // namespace nbuf::io
