// Wire segmenting preprocessing (Alpert & Devgan, DAC 1997).
//
// Van Ginneken-style algorithms insert at most one buffer per wire, so long
// wires must first be divided into shorter segments whose endpoints become
// candidate buffer sites. Granularity trades solution quality for runtime
// (the paper's footnote 3); ablation bench ablB_segmenting measures the
// tradeoff.
#pragma once

#include <cstddef>

#include "rct/tree.hpp"

namespace nbuf::seg {

struct Options {
  // Wires longer than this are split into equal pieces no longer than it.
  double max_segment_length = 500.0;  // µm
};

// Splits every over-long wire of `tree` into equal segments, creating
// buffer-allowed internal nodes. Preserves total R, C, coupling current and
// length exactly. Returns the number of nodes added.
std::size_t segment(rct::RoutingTree& tree, const Options& options);

}  // namespace nbuf::seg
