#include "seg/segment.hpp"

#include <cmath>
#include <vector>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace nbuf::seg {

std::size_t segment(rct::RoutingTree& tree, const Options& options) {
  NBUF_EXPECTS(options.max_segment_length > 0.0);
  NBUF_TRACE_SPAN_TAGGED("seg.segment", tree.node_count());
  // Snapshot ids first: splits append nodes whose parent wires are already
  // short enough by construction.
  std::vector<rct::NodeId> ids = tree.preorder();
  std::size_t added = 0;
  for (rct::NodeId id : ids) {
    const rct::Node& n = tree.node(id);
    if (n.kind == rct::NodeKind::Source) continue;
    const double len = n.parent_wire.length;
    if (len <= options.max_segment_length) continue;
    const auto pieces =
        static_cast<std::size_t>(std::ceil(len / options.max_segment_length));
    const double piece_len = len / static_cast<double>(pieces);
    // Peel the upper part off repeatedly; cut positions measured from the
    // upstream end ascend, so each cut stays interior to the lower piece.
    for (std::size_t k = 1; k < pieces; ++k) {
      const double cut_from_top = static_cast<double>(k) * piece_len;
      tree.split_wire(id, len - cut_from_top, "", /*buffer_allowed=*/true);
      ++added;
    }
  }
  return added;
}

}  // namespace nbuf::seg
