// Incremental Devgan noise queries.
//
// Section II-B notes that the metric's "computational complexity, structure,
// and incremental nature is the same as the famous Elmore delay metric".
// This module realizes that: after an O(n log n) precomputation on the
// unbuffered tree, it answers in O(1)
//   * I(v), Noise(v), NS(v), and the upstream resistance R(path so->v),
//   * the noise anywhere outside a subtree after that subtree is decoupled
//     by a buffer:  Noise'(a) = Noise(a) - R_common(a, v) * I(v)
// where R_common is the driver resistance plus the shared path resistance
// (computed via binary-lifting LCA). A global what-if — "would one buffer
// at v fix every violation?" — is answered in O(#sinks).
//
// These queries are what per-buffer iterative improvement loops (Kannan et
// al., Lin/Marek-Sadowska — the paper's related work) need in their inner
// loop; tests validate every answer against full re-analysis.
#pragma once

#include <vector>

#include "lib/buffer.hpp"
#include "rct/tree.hpp"

namespace nbuf::noise {

class IncrementalNoise {
 public:
  explicit IncrementalNoise(const rct::RoutingTree& tree);

  // Total downstream current I(v), eq. 7.
  [[nodiscard]] double current(rct::NodeId v) const;
  // Devgan noise at v in the unbuffered tree (driver term included).
  [[nodiscard]] double noise(rct::NodeId v) const;
  // Noise slack NS(v), eq. 12.
  [[nodiscard]] double noise_slack(rct::NodeId v) const;
  // Driver resistance plus wire resistance along source -> v.
  [[nodiscard]] double upstream_resistance(rct::NodeId v) const;

  // Lowest common ancestor of a and b.
  [[nodiscard]] rct::NodeId lca(rct::NodeId a, rct::NodeId b) const;
  // Shared electrical resistance of the paths source->a and source->b
  // (driver resistance included — all current returns through it).
  [[nodiscard]] double common_resistance(rct::NodeId a, rct::NodeId b) const;

  // Noise at `at` once a buffer input pin replaces the subtree of `v`
  // (buffer input draws no current). `at` must not lie strictly inside
  // subtree(v); `at == v` gives the noise at the new buffer's input pin.
  [[nodiscard]] double noise_with_subtree_decoupled(rct::NodeId at,
                                                    rct::NodeId v) const;

  // True iff inserting one buffer (resistance r_b, input margin nm_b) at
  // internal node v leaves no violation anywhere: the buffer can drive its
  // subtree (r_b * I(v) <= NS(v)), its own input is within nm_b, and every
  // sink outside the subtree is within its margin. O(#sinks).
  [[nodiscard]] bool single_buffer_fixes(rct::NodeId v, double r_b,
                                         double nm_b) const;

 private:
  [[nodiscard]] bool is_ancestor(rct::NodeId anc, rct::NodeId v) const;

  const rct::RoutingTree& tree_;
  std::vector<double> current_;      // by node id
  std::vector<double> noise_;        // by node id
  std::vector<double> slack_;        // NS by node id
  std::vector<double> up_res_;       // driver R + path wire R
  std::vector<int> depth_;
  std::vector<std::size_t> tin_, tout_;  // Euler intervals for ancestry
  std::vector<std::vector<rct::NodeId>> up_;  // binary lifting table
};

}  // namespace nbuf::noise
