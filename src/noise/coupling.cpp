#include "noise/coupling.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace nbuf::noise {

std::vector<rct::NodeId> apply_coupling(
    rct::RoutingTree& tree, rct::NodeId node,
    const std::vector<Aggressor>& aggs,
    const std::vector<CouplingSpan>& spans) {
  const rct::Wire whole = tree.node(node).parent_wire;
  NBUF_EXPECTS_MSG(whole.length > 0.0, "cannot couple a zero-length wire");
  for (const CouplingSpan& s : spans) {
    NBUF_EXPECTS(s.aggressor < aggs.size());
    NBUF_EXPECTS(s.from >= 0.0 && s.from < s.to && s.to <= whole.length);
    NBUF_EXPECTS(aggs[s.aggressor].slope > 0.0);
    NBUF_EXPECTS(aggs[s.aggressor].coupling_ratio >= 0.0);
  }

  // Cut positions measured from the upstream end, interior only.
  std::vector<double> cuts;
  for (const CouplingSpan& s : spans) {
    cuts.push_back(s.from);
    cuts.push_back(s.to);
  }
  std::sort(cuts.begin(), cuts.end());  // nbuf-lint: allow(sort)
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [](double a, double b) {
                           return std::abs(a - b) < 1e-9;
                         }),
             cuts.end());
  std::erase_if(cuts, [&](double c) {
    return c < 1e-9 || c > whole.length - 1e-9;
  });

  // Split bottom wire repeatedly; cuts ascend so each stays interior to the
  // remaining lower piece. Every split peels off the upper part.
  std::vector<rct::NodeId> segment_owners;
  for (double c : cuts)
    segment_owners.push_back(
        tree.split_wire(node, whole.length - c, "", /*buffer_allowed=*/true));
  segment_owners.push_back(node);

  // Assign eq. 6 currents per segment (covering aggressors at the segment
  // midpoint; spans were snapped onto segment boundaries above).
  double seg_start = 0.0;
  for (rct::NodeId owner : segment_owners) {
    rct::Wire w = tree.node(owner).parent_wire;
    const double mid = seg_start + w.length / 2.0;
    double per_cap_rate = 0.0;  // sum lambda_j * mu_j over covering spans
    for (const CouplingSpan& s : spans)
      if (s.from <= mid && mid <= s.to)
        per_cap_rate +=
            aggs[s.aggressor].coupling_ratio * aggs[s.aggressor].slope;
    w.coupling_current = per_cap_rate * w.capacitance;
    tree.set_parent_wire(owner, w);
    seg_start += w.length;
  }
  NBUF_ASSERT(std::abs(seg_start - whole.length) < 1e-6 * whole.length);
  return segment_owners;
}

}  // namespace nbuf::noise
