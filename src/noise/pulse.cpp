#include "noise/pulse.hpp"

#include <cmath>

#include "elmore/elmore.hpp"
#include "util/check.hpp"

namespace nbuf::noise {

PulseWidthReport pulse_widths(const rct::RoutingTree& tree,
                              const rct::BufferAssignment& buffers,
                              const lib::BufferLibrary& lib,
                              double aggressor_rise) {
  NBUF_EXPECTS(aggressor_rise > 0.0);
  const auto stages = rct::decompose(tree, buffers, lib);
  PulseWidthReport report;
  report.sinks.resize(tree.sink_count());
  for (const rct::Stage& st : stages) {
    const auto load = elmore::stage_loads(tree, st);
    const auto wire_delay = elmore::stage_wire_delays(tree, st);
    const double gate_tau = st.driver_resistance * load.at(st.root);
    for (const rct::StageSink& s : st.sinks) {
      LeafWidth lw;
      lw.node = s.node;
      lw.is_buffer_input = s.is_buffer_input;
      lw.sink = s.sink;
      const double tau = gate_tau + wire_delay.at(s.node);
      lw.width = aggressor_rise + std::log(2.0) * tau;
      report.leaves.push_back(lw);
      if (!s.is_buffer_input) report.sinks[s.sink.value()] = lw;
    }
  }
  return report;
}

double effective_margin(double nm_dc, double tau_gate, double width) {
  NBUF_EXPECTS(nm_dc > 0.0);
  NBUF_EXPECTS(tau_gate >= 0.0);
  NBUF_EXPECTS(width > 0.0);
  return nm_dc * (1.0 + tau_gate / width);
}

std::size_t width_aware_violations(const NoiseReport& amplitude,
                                   const PulseWidthReport& widths,
                                   double tau_gate) {
  NBUF_EXPECTS_MSG(amplitude.leaves.size() == widths.leaves.size(),
                   "reports must come from the same tree and assignment");
  std::size_t violations = 0;
  for (std::size_t i = 0; i < amplitude.leaves.size(); ++i) {
    const auto& a = amplitude.leaves[i];
    const auto& w = widths.leaves[i];
    NBUF_EXPECTS_MSG(a.node == w.node, "leaf order mismatch");
    if (a.noise > effective_margin(a.margin, tau_gate, w.width))
      ++violations;
  }
  return violations;
}

}  // namespace nbuf::noise
