#include "noise/incremental.hpp"

#include <algorithm>
#include <limits>

#include "noise/devgan.hpp"
#include "util/check.hpp"

namespace nbuf::noise {

IncrementalNoise::IncrementalNoise(const rct::RoutingTree& tree)
    : tree_(tree) {
  const std::size_t n = tree.node_count();
  current_.assign(n, 0.0);
  noise_.assign(n, 0.0);
  slack_.assign(n, 0.0);
  up_res_.assign(n, 0.0);
  depth_.assign(n, 0);
  tin_.assign(n, 0);
  tout_.assign(n, 0);

  // Bottom-up: currents (eq. 7) and noise slacks (eq. 12).
  const auto post = tree.postorder();
  for (rct::NodeId id : post) {
    const rct::Node& nd = tree.node(id);
    double i = 0.0;
    for (rct::NodeId c : nd.children)
      i += current_[c.value()] + tree.node(c).parent_wire.coupling_current;
    current_[id.value()] = i;
    if (nd.kind == rct::NodeKind::Sink) {
      slack_[id.value()] = tree.sink(nd.sink).noise_margin;
    } else {
      double best = std::numeric_limits<double>::infinity();
      for (rct::NodeId c : nd.children) {
        const rct::Wire& w = tree.node(c).parent_wire;
        best = std::min(best, slack_[c.value()] -
                                  w.resistance *
                                      (w.coupling_current / 2.0 +
                                       current_[c.value()]));
      }
      slack_[id.value()] = best;
    }
  }

  // Top-down: noise prefix, upstream resistance, depths, Euler intervals.
  const auto pre = tree.preorder();
  const double r_drv = tree.driver().resistance;
  std::size_t timer = 0;
  for (rct::NodeId id : pre) {
    const rct::Node& nd = tree.node(id);
    tin_[id.value()] = timer++;
    if (id == tree.source()) {
      noise_[id.value()] = r_drv * current_[id.value()];
      up_res_[id.value()] = r_drv;
      depth_[id.value()] = 0;
      continue;
    }
    const rct::Wire& w = nd.parent_wire;
    const std::size_t p = nd.parent.value();
    noise_[id.value()] =
        noise_[p] +
        w.resistance * (w.coupling_current / 2.0 + current_[id.value()]);
    up_res_[id.value()] = up_res_[p] + w.resistance;
    depth_[id.value()] = depth_[p] + 1;
  }
  // Subtree intervals: tout(v) = max preorder index within subtree(v), so
  // anc is an ancestor of v iff tin(anc) <= tin(v) <= tout(anc).
  for (rct::NodeId id : post) {
    std::size_t hi = tin_[id.value()];
    for (rct::NodeId c : tree.node(id).children)
      hi = std::max(hi, tout_[c.value()]);
    tout_[id.value()] = hi;
  }

  // Binary lifting for LCA.
  int levels = 1;
  while ((1u << levels) < n) ++levels;
  up_.assign(levels + 1, std::vector<rct::NodeId>(n));
  for (rct::NodeId id : pre)
    up_[0][id.value()] =
        id == tree.source() ? tree.source() : tree.node(id).parent;
  for (int k = 1; k <= levels; ++k)
    for (std::size_t v = 0; v < n; ++v)
      up_[k][v] = up_[k - 1][up_[k - 1][v].value()];
}

double IncrementalNoise::current(rct::NodeId v) const {
  return current_[v.value()];
}
double IncrementalNoise::noise(rct::NodeId v) const {
  return noise_[v.value()];
}
double IncrementalNoise::noise_slack(rct::NodeId v) const {
  return slack_[v.value()];
}
double IncrementalNoise::upstream_resistance(rct::NodeId v) const {
  return up_res_[v.value()];
}

bool IncrementalNoise::is_ancestor(rct::NodeId anc, rct::NodeId v) const {
  // Inclusive: a node is its own ancestor.
  return tin_[anc.value()] <= tin_[v.value()] &&
         tin_[v.value()] <= tout_[anc.value()];
}

rct::NodeId IncrementalNoise::lca(rct::NodeId a, rct::NodeId b) const {
  if (is_ancestor(a, b)) return a;
  if (is_ancestor(b, a)) return b;
  rct::NodeId cur = a;
  for (int k = static_cast<int>(up_.size()) - 1; k >= 0; --k) {
    const rct::NodeId cand = up_[static_cast<std::size_t>(k)][cur.value()];
    if (!is_ancestor(cand, b)) cur = cand;
  }
  return up_[0][cur.value()];
}

double IncrementalNoise::common_resistance(rct::NodeId a,
                                           rct::NodeId b) const {
  return up_res_[lca(a, b).value()];
}

double IncrementalNoise::noise_with_subtree_decoupled(rct::NodeId at,
                                                      rct::NodeId v) const {
  NBUF_EXPECTS_MSG(at == v || !is_ancestor(v, at),
                   "`at` must not lie inside the decoupled subtree");
  // The subtree's current I(v) no longer flows through the shared part of
  // the two paths (for `at == v`, the whole path to v).
  const double shared = at == v ? up_res_[v.value()] : common_resistance(at, v);
  return noise_[at.value()] - shared * current_[v.value()];
}

bool IncrementalNoise::single_buffer_fixes(rct::NodeId v, double r_b,
                                           double nm_b) const {
  const rct::Node& nd = tree_.node(v);
  NBUF_EXPECTS_MSG(nd.kind == rct::NodeKind::Internal,
                   "buffers go on internal nodes");
  // Downstream: the buffer drives subtree(v).
  if (r_b * current_[v.value()] > slack_[v.value()]) return false;
  // The buffer's own input pin.
  if (noise_with_subtree_decoupled(v, v) > nm_b) return false;
  // Every sink outside the subtree.
  for (const rct::SinkInfo& s : tree_.sinks()) {
    if (is_ancestor(v, s.node)) continue;  // inside: covered by NS(v)
    if (noise_with_subtree_decoupled(s.node, v) > s.noise_margin)
      return false;
  }
  return true;
}

}  // namespace nbuf::noise
