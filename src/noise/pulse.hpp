// Noise pulse-width estimation and width-aware noise margins.
//
// Section II-B concedes two simplifications of the Devgan metric: it bounds
// only the PEAK amplitude and "does not consider the duration of the noise
// pulse", arguing peak dominates gate failure. This module supplies the
// missing half so the tradeoff can be quantified:
//
//  * pulse_width_estimate — a closed-form companion to the metric: the
//    injected current flows for the aggressor's transition time and the
//    victim then discharges with its own RC time constant, so the width at
//    half maximum is estimated as
//        W ~= t_rise + ln 2 * tau(victim stage)
//    with tau = R_drv * C_stage + Elmore(root -> leaf) (the dominant-pole
//    time constant seen from the leaf).
//
//  * effective_margin — a first-order gate rejection model: a latching gate
//    ignores pulses much shorter than its own switching delay tau_gate,
//        NM_eff(W) = NM_dc * (1 + tau_gate / W)
//    (DC margin recovered for wide pulses, margin inflated for narrow
//    ones). Scoring amplitude against NM_eff never flags MORE nets than the
//    paper's peak-vs-DC-margin rule — quantified by bench/figG_pulse_width.
#pragma once

#include <vector>

#include "noise/devgan.hpp"
#include "rct/stage.hpp"

namespace nbuf::noise {

// Width-at-half-maximum estimate for the noise pulse at every stage leaf.
struct LeafWidth {
  rct::NodeId node;
  bool is_buffer_input = false;
  rct::SinkId sink;
  double width = 0.0;  // second
};

struct PulseWidthReport {
  std::vector<LeafWidth> leaves;
  std::vector<LeafWidth> sinks;  // indexed by SinkId
};

// `aggressor_rise` is the aggressor transition time (t_rise of eq. 6's
// slope mu = vdd / t_rise).
[[nodiscard]] PulseWidthReport pulse_widths(
    const rct::RoutingTree& tree, const rct::BufferAssignment& buffers,
    const lib::BufferLibrary& lib, double aggressor_rise);

// First-order width-aware margin (see header comment). tau_gate is the
// receiving gate's characteristic switching time.
[[nodiscard]] double effective_margin(double nm_dc, double tau_gate,
                                      double width);

// Re-scores a Devgan amplitude report against width-aware margins:
// violation iff  noise > effective_margin(NM, tau_gate, width).
// Returns the number of violating leaves (always <= the amplitude-only
// count).
[[nodiscard]] std::size_t width_aware_violations(
    const NoiseReport& amplitude, const PulseWidthReport& widths,
    double tau_gate);

}  // namespace nbuf::noise
