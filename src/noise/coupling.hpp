// Explicit multi-aggressor coupling (Section II-B, Fig. 2).
//
// When neighboring aggressors are known (post-routing), each victim wire is
// segmented so every resulting segment is completely coupled to a fixed set
// of aggressors; each segment then carries the injected current
//   i_seg = sum_{aggressors j covering it} lambda_j * mu_j * C_seg   (eq. 6)
// This module performs the Fig. 2 segmentation on a RoutingTree.
#pragma once

#include <string>
#include <vector>

#include "rct/tree.hpp"

namespace nbuf::noise {

// One simultaneously-switching aggressor net.
struct Aggressor {
  std::string name;
  double slope = 0.0;           // V/s — Vdd / input rise time (mu_j)
  double coupling_ratio = 0.0;  // lambda_j: coupling / victim wire cap
};

// The stretch of one victim wire over which an aggressor runs parallel.
// Positions are µm measured from the wire's UPSTREAM (parent) end.
struct CouplingSpan {
  std::size_t aggressor = 0;  // index into the aggressor list
  double from = 0.0;
  double to = 0.0;
};

// Segments the parent wire of `node` at every span boundary and sets each
// segment's coupling_current per eq. 6 (uncovered stretches get zero).
// Spans may overlap (two aggressors flanking the victim). Returns the nodes
// owning the resulting segments, upstream-most first; the last is `node`.
std::vector<rct::NodeId> apply_coupling(rct::RoutingTree& tree,
                                        rct::NodeId node,
                                        const std::vector<Aggressor>& aggs,
                                        const std::vector<CouplingSpan>& spans);

}  // namespace nbuf::noise
