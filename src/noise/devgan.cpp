#include "noise/devgan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace nbuf::noise {

namespace {

bool is_stage_boundary(const rct::Stage& stage, rct::NodeId id) {
  return std::any_of(stage.sinks.begin(), stage.sinks.end(),
                     [&](const rct::StageSink& s) {
                       return s.node == id && s.is_buffer_input;
                     });
}

}  // namespace

std::unordered_map<rct::NodeId, double> stage_currents(
    const rct::RoutingTree& tree, const rct::Stage& stage) {
  std::unordered_map<rct::NodeId, double> cur;
  cur.reserve(stage.nodes.size());
  for (auto it = stage.nodes.rbegin(); it != stage.nodes.rend(); ++it) {
    const rct::NodeId id = *it;
    double i = 0.0;
    if (!is_stage_boundary(stage, id)) {
      for (rct::NodeId child : tree.node(id).children) {
        auto ic = cur.find(child);
        if (ic == cur.end()) continue;  // child outside the stage
        i += ic->second + tree.node(child).parent_wire.coupling_current;
      }
    }
    cur[id] = i;
  }
  return cur;
}

std::unordered_map<rct::NodeId, double> stage_noise(
    const rct::RoutingTree& tree, const rct::Stage& stage) {
  const auto cur = stage_currents(tree, stage);
  std::unordered_map<rct::NodeId, double> nz;
  nz.reserve(stage.nodes.size());
  // Driver term of eq. 9: all downstream current returns through the gate.
  const double root_current =
      cur.at(stage.root);  // currents *below* root, within the stage
  nz[stage.root] = stage.driver_resistance * root_current;
  for (rct::NodeId id : stage.nodes) {
    if (id == stage.root) continue;
    const rct::Node& n = tree.node(id);
    const rct::Wire& w = n.parent_wire;
    // Theorem 2's upper-bound property needs finite, nonnegative R and I —
    // a negative coupling current would let noise "cancel" and a NaN would
    // propagate into every slack downstream of this wire.
    NBUF_REQUIRE_CTX(std::isfinite(w.resistance) && w.resistance >= 0.0 &&
                         std::isfinite(w.coupling_current) &&
                         w.coupling_current >= 0.0,
                     util::ctx("node", id.value(), "R", w.resistance, "I",
                               w.coupling_current));
    auto pn = nz.find(n.parent);
    NBUF_ASSERT_MSG(pn != nz.end(), "stage nodes must be preorder");
    nz[id] = pn->second +
             w.resistance * (w.coupling_current / 2.0 + cur.at(id));
  }
  return nz;
}

NoiseReport analyze(const rct::RoutingTree& tree,
                    const rct::BufferAssignment& buffers,
                    const lib::BufferLibrary& lib) {
  const auto stages = rct::decompose(tree, buffers, lib);
  NoiseReport report;
  report.sinks.resize(tree.sink_count());
  report.worst_slack = std::numeric_limits<double>::infinity();
  for (const rct::Stage& st : stages) {
    NBUF_REQUIRE_CTX(std::isfinite(st.driver_resistance) &&
                         st.driver_resistance >= 0.0,
                     util::ctx("R_drv", st.driver_resistance));
    const auto nz = stage_noise(tree, st);
    for (const rct::StageSink& s : st.sinks) {
      LeafNoise ln;
      ln.node = s.node;
      ln.is_buffer_input = s.is_buffer_input;
      ln.sink = s.sink;
      ln.noise = nz.at(s.node);
      ln.margin = s.noise_margin;
      ln.slack = ln.margin - ln.noise;
      report.leaves.push_back(ln);
      if (!s.is_buffer_input) report.sinks[s.sink.value()] = ln;
      report.worst_slack = std::min(report.worst_slack, ln.slack);
      if (ln.slack < 0.0) ++report.violation_count;
    }
  }
  return report;
}

NoiseReport analyze_unbuffered(const rct::RoutingTree& tree) {
  static const lib::BufferLibrary empty_lib;
  return analyze(tree, rct::BufferAssignment{}, empty_lib);
}

std::unordered_map<rct::NodeId, double> noise_slacks(
    const rct::RoutingTree& tree) {
  const auto order = tree.postorder();
  // Downstream current I(v) for every node (eq. 7), one postorder sweep.
  std::unordered_map<rct::NodeId, double> cur;
  cur.reserve(order.size());
  for (rct::NodeId id : order) {
    double i = 0.0;
    for (rct::NodeId child : tree.node(id).children)
      i += cur.at(child) + tree.node(child).parent_wire.coupling_current;
    cur[id] = i;
  }
  std::unordered_map<rct::NodeId, double> ns;
  ns.reserve(order.size());
  for (rct::NodeId id : order) {
    const rct::Node& n = tree.node(id);
    if (n.kind == rct::NodeKind::Sink) {
      ns[id] = tree.sink(n.sink).noise_margin;
      continue;
    }
    double best = std::numeric_limits<double>::infinity();
    for (rct::NodeId child : n.children) {
      const rct::Wire& w = tree.node(child).parent_wire;
      const double wire_noise =
          w.resistance * (w.coupling_current / 2.0 + cur.at(child));
      best = std::min(best, ns.at(child) - wire_noise);
    }
    ns[id] = best;
  }
  return ns;
}

}  // namespace nbuf::noise
