// Devgan coupled-noise metric (Section II-B; Devgan, ICCAD 1997).
//
// Aggressor nets inject current into the victim through coupling
// capacitance: a wire w coupled to aggressors with slopes mu_j and
// coupling-to-wire-capacitance ratios lambda_j carries
//   i_w = sum_j lambda_j * mu_j * C_w                              (eq. 6)
// (stored in rct::Wire::coupling_current). With
//   I(v)      = total downstream current at v                      (eq. 7)
//   Noise(w)  = R_w * (i_w / 2 + I(v)),  w = (u, v)                (eq. 8)
// (the pi-model places half of w's own current at its far end), the peak
// noise bound at a sink s whose nearest upstream restoring gate is g:
//   Noise(g->s) = R_g * I(g) + sum_{w in path(g,s)} Noise(w)       (eq. 9)
// Buffers are restoring, so noise never crosses a stage boundary. The
// metric mirrors Elmore delay exactly: current <-> capacitance,
// noise <-> delay, noise margin <-> RAT, noise slack <-> slack.
#pragma once

#include <unordered_map>
#include <vector>

#include "rct/stage.hpp"

namespace nbuf::noise {

// Noise at one stage leaf (a true sink or a buffer input pin).
struct LeafNoise {
  rct::NodeId node;
  bool is_buffer_input = false;
  rct::SinkId sink;          // valid iff !is_buffer_input
  double noise = 0.0;        // volt — Devgan bound at the leaf
  double margin = 0.0;       // volt — NM of the pin
  double slack = 0.0;        // volt — margin - noise
};

struct NoiseReport {
  std::vector<LeafNoise> leaves;   // every stage leaf, all stages
  std::vector<LeafNoise> sinks;    // true sinks only, indexed by SinkId
  double worst_slack = 0.0;        // min over all leaves
  std::size_t violation_count = 0; // leaves with slack < 0
  [[nodiscard]] bool clean() const noexcept { return violation_count == 0; }
};

// Total stage-local downstream current I(v) (eq. 7) for every node of the
// stage. Buffer-input leaves contribute zero current (their subtree belongs
// to the next stage).
[[nodiscard]] std::unordered_map<rct::NodeId, double> stage_currents(
    const rct::RoutingTree& tree, const rct::Stage& stage);

// Devgan noise from the stage's driving gate to every node of the stage
// (eq. 9): R_drv * I(root) plus the per-wire terms of eq. 8 down the path.
[[nodiscard]] std::unordered_map<rct::NodeId, double> stage_noise(
    const rct::RoutingTree& tree, const rct::Stage& stage);

// Full noise analysis of a buffered tree: every stage independently.
[[nodiscard]] NoiseReport analyze(const rct::RoutingTree& tree,
                                  const rct::BufferAssignment& buffers,
                                  const lib::BufferLibrary& lib);

// Convenience: the unbuffered tree (single stage).
[[nodiscard]] NoiseReport analyze_unbuffered(const rct::RoutingTree& tree);

// Noise slack NS(v) (eq. 12) of every node of the *unbuffered* tree:
// NS(sink) = NM(sink); upstream,
//   NS(u) = min over children v of ( NS(v) - Noise((u,v)) ).
// The downstream noise constraints hold iff R_g * I(g) <= NS(g) at the
// driving gate g. Used by Algorithms 1/2 and exposed for tests.
[[nodiscard]] std::unordered_map<rct::NodeId, double> noise_slacks(
    const rct::RoutingTree& tree);

}  // namespace nbuf::noise
