#include "steiner/builders.hpp"

#include <string>

#include "util/check.hpp"

namespace nbuf::steiner {

namespace {

rct::Wire wire_of(double length, const lib::Technology& tech) {
  rct::Wire w;
  w.length = length;
  w.resistance = tech.wire_res(length);
  w.capacitance = tech.wire_cap(length);
  w.coupling_current = tech.wire_coupling_current(length);
  return w;
}

}  // namespace

rct::RoutingTree make_two_pin(double length, rct::Driver driver,
                              rct::SinkInfo sink,
                              const lib::Technology& tech) {
  NBUF_EXPECTS(length > 0.0);
  tech.validate();
  rct::RoutingTree tree;
  const rct::NodeId so = tree.make_source(std::move(driver));
  tree.add_sink(so, wire_of(length, tech), std::move(sink));
  tree.validate();
  return tree;
}

rct::RoutingTree make_balanced_tree(int depth, double edge_length,
                                    rct::Driver driver, rct::SinkInfo proto,
                                    const lib::Technology& tech) {
  NBUF_EXPECTS(depth >= 0);
  NBUF_EXPECTS(edge_length > 0.0);
  tech.validate();
  rct::RoutingTree tree;
  const rct::NodeId so = tree.make_source(std::move(driver));

  // Levels 1..depth-1 are internal branch points; level `depth` holds the
  // 2^depth sinks (depth == 0 degenerates to a two-pin net).
  std::vector<rct::NodeId> frontier{so};
  for (int level = 1; level < depth; ++level) {
    std::vector<rct::NodeId> next;
    next.reserve(frontier.size() * 2);
    for (rct::NodeId parent : frontier) {
      next.push_back(
          tree.add_internal(parent, wire_of(edge_length, tech), "t"));
      next.push_back(
          tree.add_internal(parent, wire_of(edge_length, tech), "t"));
    }
    frontier = std::move(next);
  }
  int idx = 0;
  const int sinks_per_frontier_node = depth == 0 ? 1 : 2;
  for (rct::NodeId parent : frontier) {
    for (int k = 0; k < sinks_per_frontier_node; ++k) {
      rct::SinkInfo s = proto;
      s.name = proto.name + "_" + std::to_string(idx++);
      tree.add_sink(parent, wire_of(edge_length, tech), std::move(s));
    }
  }
  tree.validate();
  return tree;
}

}  // namespace nbuf::steiner
