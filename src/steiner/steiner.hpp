// Rectilinear Steiner topology generation.
//
// The paper assumes "the input routing tree topology is fixed or that a
// Steiner estimation has been computed for the given net" (Section II).
// This module supplies that estimation: a greedy closest-attachment
// rectilinear Steiner heuristic. Pins join the growing tree at their nearest
// point on any already-routed edge (each edge is embedded as an L-shape,
// horizontal first); interior attachments create Steiner points. The result
// is annotated with per-unit parasitics and estimation-mode coupling
// currents from lib::Technology to produce an rct::RoutingTree.
#pragma once

#include <vector>

#include "lib/technology.hpp"
#include "rct/tree.hpp"

namespace nbuf::steiner {

struct Point {
  double x = 0.0;  // µm
  double y = 0.0;  // µm
};

[[nodiscard]] double manhattan(Point a, Point b);

// A sink pin to route to.
struct PinSpec {
  Point at;
  rct::SinkInfo info;
};

struct Options {
  // Estimation-mode coupling: when true every wire gets
  // coupling_current = tech.coupling_current_per_um() * length; when false
  // wires start with zero coupling current (caller applies noise::coupling).
  bool estimation_mode_coupling = true;
};

// Routes `pins` from the source, returning an electrically annotated
// routing tree (already binarized). Steiner points and L-bends become
// buffer-allowed internal nodes.
[[nodiscard]] rct::RoutingTree build_tree(Point source_at, rct::Driver driver,
                                          const std::vector<PinSpec>& pins,
                                          const lib::Technology& tech,
                                          const Options& options = {});

// Total routed wirelength of the Steiner tree over `pins` without building
// the electrical tree (used by the workload generator for sizing).
[[nodiscard]] double estimate_wirelength(Point source_at,
                                         const std::vector<PinSpec>& pins);

}  // namespace nbuf::steiner
