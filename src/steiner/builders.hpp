// Convenience builders for common net shapes used by tests, examples and
// benches: straight two-pin nets and balanced binary test trees.
#pragma once

#include "lib/technology.hpp"
#include "rct/tree.hpp"

namespace nbuf::steiner {

// A straight two-pin net of the given routed length (µm), annotated from
// `tech` with estimation-mode coupling current.
[[nodiscard]] rct::RoutingTree make_two_pin(double length,
                                            rct::Driver driver,
                                            rct::SinkInfo sink,
                                            const lib::Technology& tech);

// A balanced binary tree with 2^depth sinks; every edge has length
// `edge_length` (µm). All sinks share `proto` (names are suffixed).
[[nodiscard]] rct::RoutingTree make_balanced_tree(int depth,
                                                  double edge_length,
                                                  rct::Driver driver,
                                                  rct::SinkInfo proto,
                                                  const lib::Technology& tech);

}  // namespace nbuf::steiner
