#include "steiner/steiner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace nbuf::steiner {

namespace {

constexpr double kEps = 1e-9;

// Geometric tree under construction. Each edge parent->child is embedded as
// an L: horizontal from the parent to (child.x, parent.y), then vertical.
struct GNode {
  Point p;
  int parent = -1;
  int pin = -1;  // index into the pins vector, -1 for source/Steiner nodes
};

struct Attachment {
  double dist = std::numeric_limits<double>::infinity();
  int edge_child = -1;  // edge identified by its child node
  Point at;             // closest point on that edge's L
  bool at_child = false;
  bool at_parent = false;
};

// Closest point on the horizontal segment y=y0, x in [xa,xb] (unordered).
Point clamp_h(Point q, double xa, double xb, double y0) {
  const double lo = std::min(xa, xb), hi = std::max(xa, xb);
  return {std::clamp(q.x, lo, hi), y0};
}
Point clamp_v(Point q, double ya, double yb, double x0) {
  const double lo = std::min(ya, yb), hi = std::max(ya, yb);
  return {x0, std::clamp(q.y, lo, hi)};
}

Attachment closest_on_edge(const std::vector<GNode>& nodes, int child,
                           Point q) {
  const GNode& c = nodes[child];
  const GNode& par = nodes[c.parent];
  const Point bend{c.p.x, par.p.y};
  Attachment best;
  for (Point cand : {clamp_h(q, par.p.x, bend.x, par.p.y),
                     clamp_v(q, bend.y, c.p.y, bend.x)}) {
    const double d = manhattan(q, cand);
    if (d < best.dist) {
      best.dist = d;
      best.at = cand;
    }
  }
  best.edge_child = child;
  best.at_child = manhattan(best.at, c.p) < kEps;
  best.at_parent = manhattan(best.at, par.p) < kEps;
  return best;
}

struct GeomTree {
  std::vector<GNode> nodes;  // nodes[0] is the source

  // Distance from `at` to `child` along the edge's L (used to verify the
  // attachment point lies on the staircase; both sub-edges stay monotone).
  int attach(Point q, int pin) {
    Attachment best;
    for (int i = 1; i < static_cast<int>(nodes.size()); ++i) {
      const Attachment a = closest_on_edge(nodes, i, q);
      if (a.dist < best.dist) best = a;
    }
    int hook;  // node the new pin hangs from
    if (nodes.size() == 1) {
      hook = 0;  // only the source exists
    } else if (best.at_parent) {
      hook = nodes[best.edge_child].parent;
    } else if (best.at_child) {
      hook = best.edge_child;
    } else {
      // Interior attachment: split the edge with a Steiner node. Splitting
      // an L at a point on it keeps both halves monotone, so manhattan
      // lengths remain exact.
      GNode steiner;
      steiner.p = best.at;
      steiner.parent = nodes[best.edge_child].parent;
      nodes.push_back(steiner);
      hook = static_cast<int>(nodes.size()) - 1;
      nodes[best.edge_child].parent = hook;
    }
    GNode leaf;
    leaf.p = q;
    leaf.parent = hook;
    leaf.pin = pin;
    nodes.push_back(leaf);
    return static_cast<int>(nodes.size()) - 1;
  }
};

GeomTree route(Point source_at, const std::vector<PinSpec>& pins) {
  GeomTree g;
  g.nodes.push_back(GNode{source_at, -1, -1});
  // Prim-style: repeatedly attach the pin currently closest to the tree.
  std::vector<bool> done(pins.size(), false);
  for (std::size_t round = 0; round < pins.size(); ++round) {
    int best_pin = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (done[i]) continue;
      double d = manhattan(pins[i].at, g.nodes[0].p);
      for (int e = 1; e < static_cast<int>(g.nodes.size()); ++e)
        d = std::min(d, closest_on_edge(g.nodes, e, pins[i].at).dist);
      if (d < best_dist) {
        best_dist = d;
        best_pin = static_cast<int>(i);
      }
    }
    NBUF_ASSERT(best_pin >= 0);
    done[best_pin] = true;
    g.attach(pins[best_pin].at, best_pin);
  }
  return g;
}

}  // namespace

double manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

rct::RoutingTree build_tree(Point source_at, rct::Driver driver,
                            const std::vector<PinSpec>& pins,
                            const lib::Technology& tech,
                            const Options& options) {
  NBUF_EXPECTS_MSG(!pins.empty(), "a net needs at least one sink");
  tech.validate();
  const GeomTree g = route(source_at, pins);

  auto make_wire = [&](double length) {
    rct::Wire w;
    w.length = length;
    w.resistance = tech.wire_res(length);
    w.capacitance = tech.wire_cap(length);
    w.coupling_current =
        options.estimation_mode_coupling ? tech.wire_coupling_current(length)
                                         : 0.0;
    return w;
  };

  rct::RoutingTree tree;
  std::vector<rct::NodeId> made(g.nodes.size());
  made[0] = tree.make_source(std::move(driver));

  // Children must be created after parents; geometric nodes reference
  // earlier parents except pins re-parented onto later Steiner nodes, so
  // process in dependency order.
  std::vector<int> order;
  order.reserve(g.nodes.size());
  std::vector<std::vector<int>> kids(g.nodes.size());
  for (int i = 1; i < static_cast<int>(g.nodes.size()); ++i)
    kids[g.nodes[i].parent].push_back(i);
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (v != 0) order.push_back(v);
    for (int k : kids[v]) stack.push_back(k);
  }
  NBUF_ASSERT(order.size() + 1 == g.nodes.size());

  for (int v : order) {
    const GNode& n = g.nodes[v];
    const double len = manhattan(n.p, g.nodes[n.parent].p);
    const rct::Wire wire = make_wire(len);
    if (n.pin < 0) {
      made[v] = tree.add_internal(made[n.parent], wire, "steiner");
    } else if (kids[v].empty()) {
      made[v] = tree.add_sink(made[n.parent], wire,
                              pins[static_cast<std::size_t>(n.pin)].info);
    } else {
      // A later pin attached at this pin's location: sinks must stay
      // leaves, so the junction becomes an internal node and the sink pin
      // hangs off it through a zero-length stub.
      made[v] = tree.add_internal(made[n.parent], wire, "pin_junction");
      tree.add_sink(made[v], rct::Wire{},
                    pins[static_cast<std::size_t>(n.pin)].info);
    }
  }
  tree.binarize();
  tree.validate();
  return tree;
}

double estimate_wirelength(Point source_at, const std::vector<PinSpec>& pins) {
  if (pins.empty()) return 0.0;
  const GeomTree g = route(source_at, pins);
  double total = 0.0;
  for (int i = 1; i < static_cast<int>(g.nodes.size()); ++i)
    total += manhattan(g.nodes[i].p, g.nodes[g.nodes[i].parent].p);
  return total;
}

}  // namespace nbuf::steiner
