// Observability subsystem: metrics instruments, trace spans, the JSON
// reader, and both exporters.
//
// The property tests at the bottom re-use the batch engine's fan-out
// primitive (batch::parallel_for_index) to hammer the span and counter
// paths from many threads at once — the same pattern test_batch uses —
// and then assert the subsystem's two determinism contracts directly:
// counters/histograms bit-identical at 1 vs 8 threads, and the span
// structure signature identical across thread counts. The whole binary
// runs in the TSan CI lane, so the lock-free claims are machine-checked.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace nbuf;

// --- metrics instruments --------------------------------------------------------

TEST(Metrics, CounterAddsAndIncrements) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("a");
  c.add(40);
  c.increment();
  c.increment();
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("a"), &c);
}

TEST(Metrics, HistogramPowerOfTwoBuckets) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h");
  h.observe(0);     // bucket 0 (bit_width(0) == 0)
  h.observe(1);     // bucket 1
  h.observe(2);     // bucket 2: [2, 4)
  h.observe(3);     // bucket 2
  h.observe(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(h.bucket(12), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("g");
  g.set(1.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.75);
}

TEST(Metrics, SnapshotRowsAreNameSorted) {
  obs::MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.counter("mid").add(3);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zeta");
}

TEST(Metrics, DeterministicEqualIgnoresGauges) {
  obs::MetricsRegistry a, b;
  a.counter("n").add(7);
  b.counter("n").add(7);
  a.histogram("h").observe(3);
  b.histogram("h").observe(3);
  a.gauge("wall").set(0.123);
  b.gauge("wall").set(9.876);  // timings differ run-to-run — excluded
  EXPECT_TRUE(a.snapshot().deterministic_equal(b.snapshot()));
  b.counter("n").increment();
  EXPECT_FALSE(a.snapshot().deterministic_equal(b.snapshot()));
}

TEST(Metrics, ConcurrentCounterLosesNothing) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("total");
  constexpr std::size_t kItems = 4096;
  batch::parallel_for_index(kItems, 8,
                            [&](std::size_t i) { c.add(i % 7 + 1); });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kItems; ++i) expected += i % 7 + 1;
  EXPECT_EQ(c.value(), expected);
}

// --- trace spans ----------------------------------------------------------------

TEST(Trace, SpanWithoutRecordingIsNoop) {
  // Nothing active: spans must neither crash nor leak state into a
  // recording opened afterwards.
  { NBUF_TRACE_SPAN("orphan"); }
  obs::TraceRecording rec;
  const obs::TraceData data = rec.stop();
  EXPECT_EQ(data.event_count(), 0u);
}

#if NBUF_TRACING
TEST(Trace, TagExpressionLazyWhenNotRecording) {
  int evaluations = 0;
  { NBUF_TRACE_SPAN_TAGGED("lazy", ++evaluations); }
  EXPECT_EQ(evaluations, 0) << "tag expr must not run without a recording";
  obs::TraceRecording rec;
  { NBUF_TRACE_SPAN_TAGGED("lazy", ++evaluations); }
  EXPECT_EQ(evaluations, 1);
  const obs::TraceData data = rec.stop();
  ASSERT_EQ(data.event_count(), 1u);
  EXPECT_EQ(data.threads[0].events[0].tag, 1);
}
#endif

#if NBUF_TRACING
TEST(Trace, RecordingCapturesNestingDepthAndTags) {
  obs::TraceRecording rec;
  {
    NBUF_TRACE_SPAN("outer");
    {
      NBUF_TRACE_SPAN_TAGGED("inner", 17);
    }
    {
      NBUF_TRACE_SPAN("inner2");
    }
  }
  const obs::TraceData data = rec.stop();
  ASSERT_EQ(data.threads.size(), 1u);
  const std::vector<obs::TraceEvent>& ev = data.threads[0].events;
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_STREQ(ev[0].name, "outer");
  EXPECT_EQ(ev[0].depth, 0u);
  EXPECT_EQ(ev[0].tag, obs::kNoTag);
  EXPECT_STREQ(ev[1].name, "inner");
  EXPECT_EQ(ev[1].depth, 1u);
  EXPECT_EQ(ev[1].tag, 17);
  EXPECT_STREQ(ev[2].name, "inner2");
  EXPECT_EQ(ev[2].depth, 1u);
  for (const obs::TraceEvent& e : ev) EXPECT_TRUE(e.closed());
  // Events are in open order: t0 monotone within the thread.
  EXPECT_LE(ev[0].t0_ns, ev[1].t0_ns);
  EXPECT_LE(ev[1].t0_ns, ev[2].t0_ns);
  // Inclusive timing: outer covers both inner spans.
  EXPECT_GE(ev[0].dur_ns, ev[1].dur_ns + ev[2].dur_ns);
}

TEST(Trace, PhaseRecordingDropsDetailSpans) {
  obs::TraceRecording rec(obs::TraceLevel::Phase);
  {
    NBUF_TRACE_SPAN("phase");
    NBUF_TRACE_DETAIL("detail");
  }
  const obs::TraceData data = rec.stop();
  ASSERT_EQ(data.event_count(), 1u);
  EXPECT_STREQ(data.threads[0].events[0].name, "phase");
}

TEST(Trace, DetailRecordingKeepsBothLevels) {
  obs::TraceRecording rec(obs::TraceLevel::Detail);
  {
    NBUF_TRACE_SPAN("phase");
    NBUF_TRACE_DETAIL("detail");
  }
  const obs::TraceData data = rec.stop();
  EXPECT_EQ(data.event_count(), 2u);
}
#endif

TEST(Trace, SecondConcurrentRecordingThrows) {
  obs::TraceRecording rec;
  EXPECT_THROW(obs::TraceRecording second, std::invalid_argument);
  (void)rec.stop();
  // After stop a fresh recording is fine again.
  obs::TraceRecording third;
  (void)third.stop();
}

#if NBUF_TRACING
TEST(Trace, PhaseBreakdownCountsPerName) {
  obs::TraceRecording rec;
  for (int i = 0; i < 3; ++i) {
    NBUF_TRACE_SPAN("b.outer");
    NBUF_TRACE_SPAN("a.inner");
  }
  const obs::TraceData data = rec.stop();
  const std::vector<obs::PhaseRow> rows = obs::phase_breakdown(data);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "a.inner");  // name-sorted
  EXPECT_EQ(rows[0].count, 3u);
  EXPECT_EQ(rows[1].name, "b.outer");
  EXPECT_EQ(rows[1].count, 3u);
  EXPECT_GE(rows[1].seconds, rows[0].seconds);  // inclusive parent time
}
#endif

// --- randomized multithreaded span/counter stress -------------------------------

// splitmix64: per-index seed -> deterministic pseudo-random work shape,
// independent of which worker claims the index.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void nest(int depth, std::uint64_t state, obs::Counter& work,
          obs::Histogram& sizes) {
  NBUF_TRACE_DETAIL_TAGGED("stress.nest", depth);
  work.add(static_cast<std::uint64_t>(depth));
  sizes.observe(state % 1000);
  if (depth > 1) nest(depth - 1, mix(state), work, sizes);
}

struct StressRun {
  obs::MetricsSnapshot snapshot;
  std::string signature;
  std::size_t events = 0;
};

StressRun run_stress(std::size_t threads) {
  constexpr std::size_t kItems = 512;
  obs::MetricsRegistry reg;
  obs::Counter& work = reg.counter("stress.work");
  obs::Histogram& sizes = reg.histogram("stress.sizes");
  obs::TraceRecording rec(obs::TraceLevel::Detail);
  batch::parallel_for_index(kItems, threads, [&](std::size_t i) {
    NBUF_TRACE_SPAN_TAGGED("stress.item", i);
    const std::uint64_t seed = mix(i);
    nest(1 + static_cast<int>(seed % 4), seed, work, sizes);
  });
  StressRun out;
  const obs::TraceData data = rec.stop();
  // Balanced nesting: stop() itself asserts depth 0 per buffer; double-
  // check every event closed and depths consistent with open order.
  for (const obs::ThreadTrace& t : data.threads) {
    std::uint32_t depth = 0;
    std::uint64_t last_t0 = 0;
    for (const obs::TraceEvent& e : t.events) {
      EXPECT_TRUE(e.closed());
      EXPECT_LE(e.depth, depth) << "depth can grow by at most 1";
      depth = e.depth + 1;
      EXPECT_GE(e.t0_ns, last_t0) << "t0 must be monotone per thread";
      last_t0 = e.t0_ns;
    }
  }
  out.events = data.event_count();
  out.signature = obs::structure_signature(data);
  obs::record_trace(reg, data);
  out.snapshot = reg.snapshot();
  return out;
}

TEST(TraceStress, CountersAndStructureIdenticalAcrossThreadCounts) {
  const StressRun one = run_stress(1);
  const StressRun eight = run_stress(8);

  // No lost counter updates: replay the pure per-index function serially.
  std::uint64_t expected_work = 0;
  for (std::size_t i = 0; i < 512; ++i) {
    const std::uint64_t seed = mix(i);
    for (int d = 1 + static_cast<int>(seed % 4); d > 0; --d)
      expected_work += static_cast<std::uint64_t>(d);
  }
  std::uint64_t got = 0;
  for (const auto& c : one.snapshot.counters)
    if (c.name == "stress.work") got = c.value;
  EXPECT_EQ(got, expected_work);

#if NBUF_TRACING
  EXPECT_GT(one.events, 512u);
#endif
  EXPECT_EQ(one.events, eight.events);
  // The two determinism contracts (docs/observability.md).
  EXPECT_TRUE(one.snapshot.deterministic_equal(eight.snapshot));
  EXPECT_EQ(one.signature, eight.signature);
}

// --- JSON reader ----------------------------------------------------------------

TEST(JsonReader, ParsesScalarsNestingAndEscapes) {
  const obs::JsonValue v = obs::parse_json(
      R"({"a": [1, -2.5, 3e2], "b": {"c": true, "d": null}, "s": "x\nA"})");
  ASSERT_TRUE(v.is_object());
  const obs::JsonValue& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.array.size(), 3u);
  EXPECT_DOUBLE_EQ(a.array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a.array[1].number, -2.5);
  EXPECT_DOUBLE_EQ(a.array[2].number, 300.0);
  EXPECT_TRUE(v.at("b").at("c").boolean);
  EXPECT_TRUE(v.at("b").at("d").is_null());
  EXPECT_EQ(v.at("s").string, "x\nA");
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("zz"));
  // Object keys keep insertion order.
  EXPECT_EQ(v.object[0].first, "a");
  EXPECT_EQ(v.object[2].first, "s");
}

TEST(JsonReader, AtThrowsOnMissingKey) {
  const obs::JsonValue v = obs::parse_json("{\"k\": 1}");
  EXPECT_THROW((void)v.at("missing"), std::out_of_range);
  EXPECT_THROW((void)v.at("k").at("x"), std::out_of_range);  // not an object
}

TEST(JsonReader, RejectsMalformedInput) {
  const char* bad[] = {
      "",                 // empty
      "{",                // truncated object
      "[1, 2",            // truncated array
      "[1,]",             // trailing comma
      "{\"a\":}",         // missing value
      "{\"a\" 1}",        // missing colon
      "tru",              // cut-off literal
      "\"unterminated",   // unterminated string
      "\"bad\\q\"",       // unknown escape
      "1e999",            // overflows to infinity
      "{\"a\":1} tail",   // trailing content
      "\"ctl\x01char\"",  // raw control character
      "nan",              // not JSON
  };
  for (const char* text : bad)
    EXPECT_THROW((void)obs::parse_json(text), std::runtime_error)
        << "accepted: " << text;
  // Nesting depth is bounded (stack safety).
  EXPECT_THROW((void)obs::parse_json(std::string(400, '[')),
               std::runtime_error);
}

// --- exporters ------------------------------------------------------------------

obs::TraceData two_thread_trace() {
  obs::TraceRecording rec;
  batch::parallel_for_index(64, 2, [&](std::size_t i) {
    NBUF_TRACE_SPAN_TAGGED("export.item", i);
    NBUF_TRACE_SPAN("export.child");
  });
  return rec.stop();
}

TEST(Exporters, ChromeTraceSchemaIsValid) {
  const obs::TraceData data = two_thread_trace();
  const obs::JsonValue doc = obs::parse_json(obs::chrome_trace_json(data));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const obs::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
#if NBUF_TRACING
  // One metadata event per participating thread (fast workers may claim
  // the whole queue, so 1 or 2 threads register) + all 128 spans.
  ASSERT_EQ(events.array.size(), data.threads.size() + 128u);
#endif
  std::vector<double> last_ts(data.threads.size() + 1, 0.0);
  std::size_t metadata = 0, complete = 0, tagged = 0;
  for (const obs::JsonValue& e : events.array) {
    const std::string& ph = e.at("ph").string;
    ASSERT_TRUE(e.has("pid") && e.has("tid") && e.has("name"));
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.at("name").string, "thread_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    ASSERT_TRUE(e.at("ts").is_number());
    ASSERT_TRUE(e.at("dur").is_number());
    EXPECT_GE(e.at("dur").number, 0.0);
    const auto tid = static_cast<std::size_t>(e.at("tid").number);
    ASSERT_GE(tid, 1u);
    ASSERT_LT(tid, last_ts.size());
    EXPECT_GE(e.at("ts").number, last_ts[tid]) << "ts monotone per tid";
    last_ts[tid] = e.at("ts").number;
    if (e.has("args") && e.at("args").has("tag")) ++tagged;
  }
  EXPECT_EQ(metadata, data.threads.size());
#if NBUF_TRACING
  EXPECT_EQ(complete, 128u);
  EXPECT_EQ(tagged, 64u);  // only export.item carries a tag
#endif
}

TEST(Exporters, MetricsJsonSchemaIsValid) {
  obs::MetricsRegistry reg;
  reg.counter("c.one").add(11);
  reg.histogram("h.sizes").observe(6);
  reg.histogram("h.sizes").observe(100);
  reg.gauge("g.wall").set(0.5);
  const obs::JsonValue doc =
      obs::parse_json(obs::metrics_json(reg.snapshot()));
  EXPECT_EQ(doc.at("schema").string, "nbuf-metrics-v1");
  EXPECT_DOUBLE_EQ(doc.at("counters").at("c.one").number, 11.0);
  const obs::JsonValue& h = doc.at("histograms").at("h.sizes");
  EXPECT_DOUBLE_EQ(h.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(h.at("sum").number, 106.0);
  EXPECT_DOUBLE_EQ(h.at("min").number, 6.0);
  EXPECT_DOUBLE_EQ(h.at("max").number, 100.0);
  // Power-of-two buckets keyed by bit_width: 6 -> 3, 100 -> 7.
  EXPECT_DOUBLE_EQ(h.at("buckets").at("3").number, 1.0);
  EXPECT_DOUBLE_EQ(h.at("buckets").at("7").number, 1.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("g.wall").number, 0.5);
}

TEST(Exporters, RecordTraceFoldsCountsAndTags) {
  const obs::TraceData data = two_thread_trace();
  obs::MetricsRegistry reg;
  obs::record_trace(reg, data);
#if NBUF_TRACING
  EXPECT_EQ(reg.counter("trace.export.item.count").value(), 64u);
  EXPECT_EQ(reg.counter("trace.export.child.count").value(), 64u);
  // Tags 0..63 all nonnegative -> all observed.
  EXPECT_EQ(reg.histogram("trace.export.item.tag").count(), 64u);
  EXPECT_EQ(reg.histogram("trace.export.item.tag").sum(), 64u * 63u / 2);
#endif
}

}  // namespace
