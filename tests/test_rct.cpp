#include <gtest/gtest.h>

#include <algorithm>

#include "common/test_nets.hpp"
#include "rct/assignment.hpp"
#include "rct/stage.hpp"
#include "rct/tree.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

rct::Wire wire(double len, double r, double c, double i = 0.0) {
  return rct::Wire{len, r, c, i};
}

// --- construction ------------------------------------------------------------

TEST(Tree, SourceMustBeFirstAndUnique) {
  rct::RoutingTree t;
  t.make_source(default_driver());
  EXPECT_THROW(t.make_source(default_driver()), std::invalid_argument);
}

TEST(Tree, QueriesBeforeSourceThrow) {
  rct::RoutingTree t;
  EXPECT_THROW((void)t.source(), std::invalid_argument);
}

TEST(Tree, AddSinkRecordsInfo) {
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver());
  const auto s = t.add_sink(so, wire(100, 10, 1 * fF), default_sink(5 * fF));
  EXPECT_EQ(t.sink_count(), 1u);
  EXPECT_EQ(t.sink_at(s).cap, 5 * fF);
  EXPECT_EQ(t.sink_at(s).node, s);
}

TEST(Tree, SinksAreLeaves) {
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver());
  const auto s = t.add_sink(so, wire(100, 10, 1 * fF), default_sink());
  EXPECT_THROW(t.add_internal(s, wire(1, 1, 1)), std::invalid_argument);
  EXPECT_THROW(t.add_sink(s, wire(1, 1, 1), default_sink()),
               std::invalid_argument);
}

TEST(Tree, ParentChildLinksAgree) {
  const auto f = test::fig3_net();
  f.tree.validate();
  const auto& n = f.tree.node(f.n);
  EXPECT_EQ(n.children.size(), 2u);
  EXPECT_EQ(f.tree.node(f.s1).parent, f.n);
  EXPECT_EQ(f.tree.node(f.s2).parent, f.n);
}

TEST(Tree, AggregatesSumWiresAndPins) {
  const auto f = test::fig3_net();
  EXPECT_NEAR(f.tree.total_cap(), (200 + 160 + 120 + 10 + 12) * fF, 1e-20);
  EXPECT_NEAR(f.tree.total_wirelength(), 1000 + 800 + 600, 1e-9);
  EXPECT_NEAR(f.tree.total_coupling_current(), 90 * uA, 1e-12);
}

// --- traversal ----------------------------------------------------------------

TEST(Tree, PreorderStartsAtSourceAndCoversAll) {
  const auto f = test::fig3_net();
  const auto order = f.tree.preorder();
  EXPECT_EQ(order.size(), f.tree.node_count());
  EXPECT_EQ(order.front(), f.tree.source());
}

TEST(Tree, PostorderVisitsChildrenFirst) {
  const auto f = test::fig3_net();
  const auto order = f.tree.postorder();
  auto pos = [&](rct::NodeId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(f.s1), pos(f.n));
  EXPECT_LT(pos(f.s2), pos(f.n));
  EXPECT_EQ(order.back(), f.tree.source());
}

TEST(Tree, PathFromAncestor) {
  const auto f = test::fig3_net();
  const auto p = f.tree.path(f.tree.source(), f.s1);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], f.tree.source());
  EXPECT_EQ(p[1], f.n);
  EXPECT_EQ(p[2], f.s1);
}

TEST(Tree, PathRejectsNonAncestor) {
  const auto f = test::fig3_net();
  EXPECT_THROW((void)f.tree.path(f.s1, f.s2), std::invalid_argument);
}

// --- split_wire ----------------------------------------------------------------

TEST(Tree, SplitWirePreservesElectricalTotals) {
  auto f = test::fig3_net();
  const rct::Wire before = f.tree.node(f.s1).parent_wire;
  const auto mid = f.tree.split_wire(f.s1, 300.0);
  f.tree.validate();
  const rct::Wire lower = f.tree.node(f.s1).parent_wire;
  const rct::Wire upper = f.tree.node(mid).parent_wire;
  EXPECT_NEAR(lower.length + upper.length, before.length, 1e-9);
  EXPECT_NEAR(lower.resistance + upper.resistance, before.resistance, 1e-9);
  EXPECT_NEAR(lower.capacitance + upper.capacitance, before.capacitance,
              1e-24);
  EXPECT_NEAR(lower.coupling_current + upper.coupling_current,
              before.coupling_current, 1e-15);
  // Proportionality.
  EXPECT_NEAR(lower.length, 300.0, 1e-9);
}

TEST(Tree, SplitWireRewiresLinks) {
  auto f = test::fig3_net();
  const auto mid = f.tree.split_wire(f.s1, 300.0);
  EXPECT_EQ(f.tree.node(f.s1).parent, mid);
  EXPECT_EQ(f.tree.node(mid).parent, f.n);
  const auto& kids = f.tree.node(f.n).children;
  EXPECT_NE(std::find(kids.begin(), kids.end(), mid), kids.end());
  EXPECT_EQ(std::find(kids.begin(), kids.end(), f.s1), kids.end());
}

TEST(Tree, SplitWireRejectsBoundaryAndZeroLength) {
  auto f = test::fig3_net();
  EXPECT_THROW((void)f.tree.split_wire(f.s1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)f.tree.split_wire(f.s1, 800.0), std::invalid_argument);
  EXPECT_THROW((void)f.tree.split_wire(f.tree.source(), 1.0),
               std::invalid_argument);
}

TEST(Tree, RepeatedSplitsKeepTotals) {
  auto t = test::long_two_pin(1000.0);
  const double r0 = 0.073 * 1000.0;
  auto sink = t.sinks().front().node;
  (void)t.split_wire(sink, 100.0);
  (void)t.split_wire(sink, 50.0);
  t.validate();
  double total_r = 0.0;
  for (auto id : t.preorder())
    if (id != t.source()) total_r += t.node(id).parent_wire.resistance;
  EXPECT_NEAR(total_r, r0, 1e-9);
}

// --- binarize -------------------------------------------------------------------

TEST(Tree, BinarizeReducesHighDegree) {
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver());
  const auto hub = t.add_internal(so, wire(100, 10, 20 * fF));
  for (int i = 0; i < 4; ++i)
    t.add_sink(hub, wire(50, 5, 10 * fF),
               default_sink(5 * fF, 0.0, 0.8, ("s" + std::to_string(i)).c_str()));
  EXPECT_FALSE(t.is_binary());
  t.binarize();
  EXPECT_TRUE(t.is_binary());
  t.validate();
}

TEST(Tree, BinarizePreservesElectricals) {
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver());
  const auto hub = t.add_internal(so, wire(100, 10, 20 * fF));
  for (int i = 0; i < 5; ++i)
    t.add_sink(hub, wire(50, 5, 10 * fF),
               default_sink(5 * fF, 0.0, 0.8, ("s" + std::to_string(i)).c_str()));
  const double cap = t.total_cap();
  const double wl = t.total_wirelength();
  t.binarize();
  EXPECT_DOUBLE_EQ(t.total_cap(), cap);
  EXPECT_DOUBLE_EQ(t.total_wirelength(), wl);
  EXPECT_EQ(t.sink_count(), 5u);
}

TEST(Tree, BinarizeIsIdempotent) {
  auto f = test::fig3_net();
  f.tree.binarize();
  const auto n = f.tree.node_count();
  f.tree.binarize();
  EXPECT_EQ(f.tree.node_count(), n);
}

// --- assignment ------------------------------------------------------------------

TEST(Assignment, PlaceAndQuery) {
  rct::BufferAssignment a;
  EXPECT_TRUE(a.empty());
  a.place(rct::NodeId{3}, lib::BufferId{1});
  EXPECT_TRUE(a.has_buffer(rct::NodeId{3}));
  EXPECT_EQ(a.at(rct::NodeId{3}), lib::BufferId{1});
  EXPECT_EQ(a.size(), 1u);
  a.remove(rct::NodeId{3});
  EXPECT_TRUE(a.empty());
}

TEST(Assignment, AtThrowsWhenMissing) {
  rct::BufferAssignment a;
  EXPECT_THROW((void)a.at(rct::NodeId{1}), std::invalid_argument);
}

TEST(Assignment, ValidateRejectsSinkPlacement) {
  auto f = test::fig3_net();
  rct::BufferAssignment a;
  a.place(f.s1, lib::BufferId{0});
  EXPECT_THROW(a.validate(f.tree, lib::default_library()),
               std::invalid_argument);
}

TEST(Assignment, ValidateAcceptsInternalPlacement) {
  auto f = test::fig3_net();
  rct::BufferAssignment a;
  a.place(f.n, lib::BufferId{0});
  EXPECT_NO_THROW(a.validate(f.tree, lib::default_library()));
}

TEST(Assignment, InvertedAtTracksParity) {
  auto f = test::fig3_net();
  const auto l = lib::default_library();  // id 0 = inv_x1 (inverting)
  rct::BufferAssignment a;
  EXPECT_FALSE(a.inverted_at(f.tree, l, f.s1));
  a.place(f.n, lib::BufferId{0});
  EXPECT_TRUE(a.inverted_at(f.tree, l, f.s1));
  EXPECT_TRUE(a.inverted_at(f.tree, l, f.s2));
  EXPECT_FALSE(a.inverted_at(f.tree, l, f.tree.source()));
}

// --- stage decomposition ------------------------------------------------------------

TEST(Stage, UnbufferedIsSingleStage) {
  const auto f = test::fig3_net();
  const auto stages =
      rct::decompose(f.tree, rct::BufferAssignment{}, lib::BufferLibrary{});
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_TRUE(stages.front().driven_by_source);
  EXPECT_EQ(stages.front().sinks.size(), 2u);
  EXPECT_EQ(stages.front().nodes.size(), f.tree.node_count());
}

TEST(Stage, BufferSplitsIntoTwoStages) {
  auto f = test::fig3_net();
  const auto l = lib::default_library();
  rct::BufferAssignment a;
  a.place(f.n, lib::BufferId{5});  // buf_x1
  const auto stages = rct::decompose(f.tree, a, l);
  ASSERT_EQ(stages.size(), 2u);
  // Root stage: source -> buffer input at n.
  EXPECT_TRUE(stages[0].driven_by_source);
  ASSERT_EQ(stages[0].sinks.size(), 1u);
  EXPECT_TRUE(stages[0].sinks[0].is_buffer_input);
  EXPECT_EQ(stages[0].sinks[0].node, f.n);
  EXPECT_DOUBLE_EQ(stages[0].sinks[0].cap, l.at(lib::BufferId{5}).input_cap);
  // Second stage: buffer at n drives s1 and s2.
  EXPECT_FALSE(stages[1].driven_by_source);
  EXPECT_EQ(stages[1].root, f.n);
  EXPECT_EQ(stages[1].sinks.size(), 2u);
  EXPECT_DOUBLE_EQ(stages[1].driver_resistance,
                   l.at(lib::BufferId{5}).resistance);
}

TEST(Stage, EveryTrueSinkAppearsExactlyOnce) {
  auto t = test::long_two_pin(4000.0);
  auto mid1 = t.split_wire(t.sinks().front().node, 1000.0);
  auto mid2 = t.split_wire(mid1, 1000.0);
  const auto l = lib::default_library();
  rct::BufferAssignment a;
  a.place(mid1, lib::BufferId{7});
  a.place(mid2, lib::BufferId{7});
  const auto stages = rct::decompose(t, a, l);
  EXPECT_EQ(stages.size(), 3u);
  std::size_t true_sinks = 0;
  for (const auto& st : stages)
    for (const auto& s : st.sinks)
      if (!s.is_buffer_input) ++true_sinks;
  EXPECT_EQ(true_sinks, 1u);
}

TEST(Stage, StageCapsSumToTotalPlusBufferPins) {
  auto f = test::fig3_net();
  const auto l = lib::default_library();
  rct::BufferAssignment a;
  a.place(f.n, lib::BufferId{6});
  const auto stages = rct::decompose(f.tree, a, l);
  double wire_cap = 0.0;
  for (const auto& st : stages)
    for (auto id : st.nodes)
      if (id != st.root || st.driven_by_source)
        if (id != f.tree.source()) {
          // count each wire once: wires belong to the stage of their bottom
          // node unless the bottom node is the stage root
          (void)id;
        }
  // Simpler: both stages' sink pin caps = buffer pin + two sink pins.
  double pins = 0.0;
  for (const auto& st : stages)
    for (const auto& s : st.sinks) pins += s.cap;
  EXPECT_NEAR(pins,
              l.at(lib::BufferId{6}).input_cap + (10 + 12) * fF, 1e-21);
  (void)wire_cap;
}

}  // namespace
