// Re-rooting, stage extraction, and multi-source repeater insertion.
#include <gtest/gtest.h>

#include "common/test_nets.hpp"
#include "core/multisource.hpp"
#include "core/tool.hpp"
#include "rct/extract.hpp"
#include "rct/reroot.hpp"
#include "sim/golden.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();

rct::SinkInfo source_pin() {
  return default_sink(20 * fF, 0.0, 0.8, "old_src");
}

// --- reroot ---------------------------------------------------------------------

TEST(Reroot, PreservesWireTotals) {
  auto f = test::fig3_net();
  const auto rr = rct::reroot(f.tree, f.s1, default_driver(), source_pin());
  EXPECT_NEAR(rr.tree.total_wirelength(), f.tree.total_wirelength(), 1e-9);
  EXPECT_NEAR(rr.tree.total_coupling_current(),
              f.tree.total_coupling_current(), 1e-15);
  rr.tree.validate();
}

TEST(Reroot, TerminalRolesSwap) {
  auto f = test::fig3_net();
  const auto rr = rct::reroot(f.tree, f.s1, default_driver(), source_pin());
  // New tree: source at s1's position, sinks = {s2, old source}.
  EXPECT_EQ(rr.tree.sink_count(), 2u);
  bool saw_old_source = false;
  for (const auto& s : rr.tree.sinks())
    if (s.name == "old_src") saw_old_source = true;
  EXPECT_TRUE(saw_old_source);
}

TEST(Reroot, RejectsNonSinkTerminal) {
  auto f = test::fig3_net();
  EXPECT_THROW(
      (void)rct::reroot(f.tree, f.n, default_driver(), source_pin()),
      std::invalid_argument);
}

TEST(Reroot, SymmetricTwoPinIsNoiseSymmetric) {
  // Same driver both ways on a symmetric wire: identical sink noise.
  auto t = test::long_two_pin(6000.0, 150.0);
  const auto fwd = noise::analyze_unbuffered(t);
  const auto rr = rct::reroot(t, t.sinks().front().node,
                              default_driver(150.0), source_pin());
  const auto rev = noise::analyze_unbuffered(rr.tree);
  EXPECT_NEAR(fwd.sinks[0].noise, rev.sinks[0].noise, 1e-9);
}

TEST(Reroot, MapsAssignments) {
  auto t = test::long_two_pin(8000.0);
  const auto mid = t.split_wire(t.sinks().front().node, 4000.0);
  rct::BufferAssignment a;
  a.place(mid, lib::BufferId{8});
  const auto rr = rct::reroot(t, t.sinks().front().node,
                              default_driver(150.0), source_pin());
  const auto mapped = rct::map_assignment(a, rr);
  EXPECT_EQ(mapped.size(), 1u);
  EXPECT_NO_THROW(mapped.validate(rr.tree, kLib));
  // The repeater still splits the net into two stages in the new view.
  EXPECT_EQ(rct::decompose(rr.tree, mapped, kLib).size(), 2u);
}

TEST(Reroot, OldSourceWithBranchesBecomesJunction) {
  // Source with two children: in the reversed view it must stay internal
  // with the old driver pin on a stub.
  const auto tech = lib::default_technology();
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver(), "so");
  auto wire_of = [&](double len) {
    return rct::Wire{len, tech.wire_res(len), tech.wire_cap(len),
                     tech.wire_coupling_current(len)};
  };
  const auto a = t.add_sink(so, wire_of(1500.0), default_sink(10 * fF));
  t.add_sink(so, wire_of(2000.0),
             default_sink(12 * fF, 0.0, 0.8, "s_b"));
  const auto rr = rct::reroot(t, a, default_driver(), source_pin());
  rr.tree.validate();
  EXPECT_EQ(rr.tree.sink_count(), 2u);
  EXPECT_NEAR(rr.tree.total_wirelength(), t.total_wirelength(), 1e-9);
}

// --- extract_stage ------------------------------------------------------------------

TEST(ExtractStage, StandaloneAnalysisMatchesStageLocal) {
  auto t = test::long_two_pin(8000.0);
  const auto mid = t.split_wire(t.sinks().front().node, 4000.0);
  rct::BufferAssignment a;
  a.place(mid, lib::BufferId{8});
  const auto stages = rct::decompose(t, a, kLib);
  for (const auto& st : stages) {
    const auto nz = noise::stage_noise(t, st);
    const auto ex = rct::extract_stage(t, st, 1.0);
    const auto rep = noise::analyze_unbuffered(ex.tree);
    for (const auto& leaf : rep.sinks) {
      const rct::NodeId orig = ex.orig_of[leaf.node.value()];
      EXPECT_NEAR(leaf.noise, nz.at(orig), 1e-12);
    }
  }
}

TEST(ExtractStage, MapsBackToOriginalIds) {
  auto f = test::fig3_net();
  const auto stages =
      rct::decompose(f.tree, rct::BufferAssignment{}, lib::BufferLibrary{});
  const auto ex = rct::extract_stage(f.tree, stages[0], 1.0);
  EXPECT_EQ(ex.tree.sink_count(), 2u);
  for (std::size_t i = 0; i < ex.orig_of.size(); ++i)
    EXPECT_TRUE(ex.orig_of[i].valid());
}

// --- multi-source optimization --------------------------------------------------------

TEST(MultiSource, BidirectionalBusCleanInBothModes) {
  auto t = test::long_two_pin(10000.0, 150.0);
  const auto terminal = t.sinks().front().node;
  std::vector<core::NetMode> modes = {
      {rct::NodeId::invalid(), {}},                     // base: left drives
      {terminal, rct::Driver{"rev", 180.0, 35 * ps}},   // reverse mode
  };
  core::MultiSourceOptions opt;
  opt.source_as_sink = source_pin();
  const auto res = core::optimize_multisource(t, kLib, modes, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_GT(res.repeaters.size(), 0u);
  const auto reports = core::analyze_modes(res.tree, res.repeaters, kLib,
                                           modes, opt.source_as_sink);
  for (const auto& r : reports) EXPECT_EQ(r.violation_count, 0u);
}

TEST(MultiSource, GoldenConfirmsBothModes) {
  auto t = test::long_two_pin(9000.0, 150.0);
  const auto terminal = t.sinks().front().node;
  std::vector<core::NetMode> modes = {
      {rct::NodeId::invalid(), {}},
      {terminal, rct::Driver{"rev", 120.0, 35 * ps}},
  };
  core::MultiSourceOptions opt;
  opt.source_as_sink = source_pin();
  const auto res = core::optimize_multisource(t, kLib, modes, opt);
  ASSERT_TRUE(res.feasible);
  const auto gopt = sim::golden_options_from(lib::default_technology());
  // Base mode.
  EXPECT_EQ(
      sim::golden_analyze(res.tree, res.repeaters, kLib, gopt)
          .violation_count,
      0u);
  // Reverse mode.
  const auto rr = rct::reroot(res.tree, terminal,
                              rct::Driver{"rev", 120.0, 35 * ps},
                              opt.source_as_sink);
  const auto mapped = rct::map_assignment(res.repeaters, rr);
  EXPECT_EQ(sim::golden_analyze(rr.tree, mapped, kLib, gopt).violation_count,
            0u);
}

TEST(MultiSource, MultiDropBusThreeModes) {
  // A 3-sink net where the source and two of the sinks can drive.
  const auto tech = lib::default_technology();
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver(200.0), "cpu");
  auto wire_of = [&](double len) {
    return rct::Wire{len, tech.wire_res(len), tech.wire_cap(len),
                     tech.wire_coupling_current(len)};
  };
  const auto hub = t.add_internal(so, wire_of(3000.0), "hub");
  const auto dma = t.add_sink(hub, wire_of(3500.0),
                              default_sink(18 * fF, 0.0, 0.8, "dma"));
  const auto io = t.add_sink(hub, wire_of(2500.0),
                             default_sink(15 * fF, 0.0, 0.8, "io"));
  t.add_sink(hub, wire_of(1500.0), default_sink(10 * fF, 0.0, 0.8, "mem"));
  std::vector<core::NetMode> modes = {
      {rct::NodeId::invalid(), {}},
      {dma, rct::Driver{"dma_drv", 250.0, 40 * ps}},
      {io, rct::Driver{"io_drv", 150.0, 40 * ps}},
  };
  core::MultiSourceOptions opt;
  opt.source_as_sink = source_pin();
  const auto res = core::optimize_multisource(t, kLib, modes, opt);
  ASSERT_TRUE(res.feasible);
  const auto reports = core::analyze_modes(res.tree, res.repeaters, kLib,
                                           modes, opt.source_as_sink);
  for (std::size_t m = 0; m < reports.size(); ++m) {
    EXPECT_EQ(reports[m].violation_count, 0u) << "mode " << m;
    EXPECT_GT(res.mode_worst_slack[m], 0.0) << "mode " << m;
  }
}

TEST(MultiSource, NeedsMoreRepeatersThanSingleMode) {
  // Covering both orientations can only require >= the single-mode count.
  auto t = test::long_two_pin(12000.0, 150.0);
  {
    // Generous RAT so the single-mode baseline is noise-minimal too.
    auto info = t.sinks().front();
    info.required_arrival = 1.0;
    t.set_sink_info(rct::SinkId{0}, info);
  }
  const auto single = core::run_buffopt(t, kLib);
  const auto terminal = t.sinks().front().node;
  std::vector<core::NetMode> modes = {
      {rct::NodeId::invalid(), {}},
      {terminal, rct::Driver{"rev", 400.0, 35 * ps}},  // weak reverse driver
  };
  core::MultiSourceOptions opt;
  opt.source_as_sink = source_pin();
  const auto res = core::optimize_multisource(t, kLib, modes, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_GE(res.repeaters.size(), single.vg.buffer_count);
}

TEST(MultiSource, CleanNetNeedsNothing) {
  auto t = test::long_two_pin(1200.0, 100.0);
  const auto terminal = t.sinks().front().node;
  std::vector<core::NetMode> modes = {
      {rct::NodeId::invalid(), {}},
      {terminal, rct::Driver{"rev", 100.0, 35 * ps}},
  };
  core::MultiSourceOptions opt;
  opt.source_as_sink = source_pin();
  const auto res = core::optimize_multisource(t, kLib, modes, opt);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.repeaters.size(), 0u);
  EXPECT_EQ(res.rounds, 0u);
}

}  // namespace
