// Moment engine (RICE/AWE-lite), the D2M metric, and the golden step-delay
// analyzer: the delay-fidelity ladder.
#include <gtest/gtest.h>

#include "common/test_nets.hpp"
#include "elmore/elmore.hpp"
#include "moments/moments.hpp"
#include "seg/segment.hpp"
#include "sim/delay.hpp"
#include "util/rng.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();

sim::StageCircuit single_stage(const rct::RoutingTree& t,
                               double section = 100.0) {
  const auto stages =
      rct::decompose(t, rct::BufferAssignment{}, lib::BufferLibrary{});
  return sim::build_stage_circuit(t, stages[0], 0.0, section);
}

// --- moment recurrence ---------------------------------------------------------

TEST(Moments, SingleRcLumpExact) {
  // One cap C behind driver R: m1 = -RC, m2 = (RC)^2.
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver(1000.0));
  t.add_sink(so, rct::Wire{1.0, 1e-6, 0.0, 0.0}, default_sink(1 * pF));
  const auto c = single_stage(t);
  const auto m = moments::stage_moments(c, 1000.0, 3);
  const double rc = 1000.0 * 1e-12;
  const std::size_t sink = c.sim_node_of.at(t.sinks().front().node);
  EXPECT_NEAR(m[1][sink], -rc, rc * 1e-6);
  EXPECT_NEAR(m[2][sink], rc * rc, rc * rc * 1e-6);
  EXPECT_NEAR(m[3][sink], -rc * rc * rc, rc * rc * rc * 1e-6);
}

TEST(Moments, FirstMomentIsNegatedElmore) {
  // -m1 must equal the Elmore engine's wire delay + driver term on the same
  // discretization (exact for distributed wires as sections shrink).
  auto t = test::long_two_pin(4000.0);
  const auto rep = elmore::analyze_unbuffered(t);
  const auto c = single_stage(t, 25.0);
  const auto m = moments::stage_moments(c, 150.0, 1);
  const std::size_t sink = c.sim_node_of.at(t.sinks().front().node);
  // Subtract the driver's intrinsic delay (not part of the RC moments).
  const double elmore_rc = rep.sinks[0].delay - 30.0 * ps;
  EXPECT_NEAR(-m[1][sink], elmore_rc, elmore_rc * 2e-3);
}

TEST(Moments, SignAlternation) {
  auto t = steiner::make_balanced_tree(3, 700.0, default_driver(),
                                       default_sink(),
                                       lib::default_technology());
  const auto c = single_stage(t);
  const auto m = moments::stage_moments(c, 150.0, 4);
  for (std::size_t v = 0; v < c.size(); ++v) {
    EXPECT_LT(m[1][v], 0.0);
    EXPECT_GT(m[2][v], 0.0);
    EXPECT_LT(m[3][v], 0.0);
    EXPECT_GT(m[4][v], 0.0);
  }
}

TEST(Moments, DownstreamNodesHaveLargerMagnitude) {
  auto t = test::long_two_pin(3000.0);
  const auto c = single_stage(t);
  const auto m = moments::stage_moments(c, 150.0, 2);
  for (std::size_t v = 1; v < c.size(); ++v) {
    EXPECT_LE(m[1][v], m[1][c.parent[v]] + 1e-18);
    EXPECT_GE(m[2][v], m[2][c.parent[v]] - 1e-30);
  }
}

// --- D2M ------------------------------------------------------------------------

TEST(D2M, SinglePoleGivesLogTwoTau) {
  // For a single pole, m1 = -tau, m2 = tau^2 -> D2M = ln2 * tau, the exact
  // 50% delay.
  const double tau = 3e-10;
  EXPECT_NEAR(moments::d2m_delay(-tau, tau * tau), std::log(2.0) * tau,
              1e-18);
}

TEST(D2M, NeverExceedsElmore) {
  // D2M = ln2 * m1^2/sqrt(m2) and m2 >= m1^2 on RC trees, so D2M <= ln2*|m1|
  // <= |m1| = Elmore.
  util::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    auto t = test::long_two_pin(rng.uniform(1000.0, 12000.0),
                                rng.uniform(50.0, 400.0));
    const auto c = single_stage(t);
    const auto m = moments::stage_moments(
        c, t.driver().resistance, 2);
    const std::size_t sink = c.sim_node_of.at(t.sinks().front().node);
    EXPECT_LE(moments::d2m_delay(m[1][sink], m[2][sink]),
              -m[1][sink] + 1e-18);
  }
}

TEST(D2M, RejectsWrongSigns) {
  EXPECT_THROW((void)moments::d2m_delay(1e-10, 1e-20),
               std::invalid_argument);
  EXPECT_THROW((void)moments::d2m_delay(-1e-10, -1e-20),
               std::invalid_argument);
}

// --- full-tree analysis -----------------------------------------------------------

TEST(MomentAnalyze, ElmoreColumnMatchesElmoreEngine) {
  auto t = test::long_two_pin(8000.0);
  const auto mid = t.split_wire(t.sinks().front().node, 4000.0);
  rct::BufferAssignment a;
  a.place(mid, lib::BufferId{8});
  const auto ref = elmore::analyze(t, a, kLib);
  moments::MomentOptions opt;
  opt.section_length = 20.0;
  const auto rep = moments::analyze(t, a, kLib, opt);
  EXPECT_NEAR(rep.max_elmore, ref.max_delay, ref.max_delay * 2e-3);
}

TEST(MomentAnalyze, D2mBelowElmorePerSink) {
  auto t = steiner::make_balanced_tree(3, 1000.0, default_driver(),
                                       default_sink(),
                                       lib::default_technology());
  const auto rep = moments::analyze(t, rct::BufferAssignment{},
                                    lib::BufferLibrary{});
  for (const auto& s : rep.sinks) EXPECT_LE(s.d2m, s.elmore + 1e-18);
}

// --- golden step delay --------------------------------------------------------------

TEST(StepDelay, SinglePoleMatchesAnalytic) {
  // Lumped RC driven by a fast ramp: 50% delay ~= ln2 * RC (+ rise/2).
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver(1000.0, 0.0));
  t.add_sink(so, rct::Wire{1.0, 1e-6, 0.0, 0.0}, default_sink(1 * pF));
  sim::StepDelayOptions opt;
  opt.driver_rise = 1e-12;  // near-step
  opt.steps_per_rise = 4.0;
  const auto rep = sim::step_delays(t, {}, lib::BufferLibrary{}, opt);
  const double expect = std::log(2.0) * 1000.0 * 1e-12;
  EXPECT_NEAR(rep.sinks[0].delay, expect, expect * 0.03);
}

TEST(StepDelay, ElmoreUpperBoundsSimulated50Percent) {
  // Elmore is a provable upper bound on RC-tree 50% delay (Gupta et al.);
  // our simulator must respect it.
  util::Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    auto t = test::long_two_pin(rng.uniform(2000.0, 10000.0),
                                rng.uniform(80.0, 300.0));
    const auto elm = elmore::analyze_unbuffered(t);
    sim::StepDelayOptions opt;
    const auto simrep = sim::step_delays(t, {}, lib::BufferLibrary{}, opt);
    // Compare RC parts (subtract the driver's intrinsic delay from Elmore,
    // and note the ramp adds ~rise/2 to the simulated time).
    EXPECT_LE(simrep.sinks[0].delay - opt.driver_rise / 2.0,
              elm.sinks[0].delay - 30.0 * ps + 1e-12);
  }
}

TEST(StepDelay, D2mIsCloserToSimulationThanElmore) {
  // The point of the fidelity ladder: |D2M - sim| < |Elmore - sim| for
  // resistively-shielded far sinks.
  auto t = test::long_two_pin(8000.0, 80.0);
  const auto mrep =
      moments::analyze(t, rct::BufferAssignment{}, lib::BufferLibrary{});
  sim::StepDelayOptions opt;
  opt.driver_rise = 1e-12;
  opt.steps_per_rise = 2.0;
  const auto srep = sim::step_delays(t, {}, lib::BufferLibrary{}, opt);
  const double sim50 = srep.sinks[0].delay;
  const double e_err = std::abs(mrep.sinks[0].elmore - 30.0 * ps - sim50);
  const double d_err = std::abs(mrep.sinks[0].d2m - 30.0 * ps - sim50);
  EXPECT_LT(d_err, e_err);
}

TEST(StepDelay, BufferedTreeComposesStages) {
  auto t = test::long_two_pin(8000.0);
  const auto mid = t.split_wire(t.sinks().front().node, 4000.0);
  rct::BufferAssignment a;
  a.place(mid, lib::BufferId{8});
  const auto unbuf = sim::step_delays(t, {}, lib::BufferLibrary{});
  const auto buf = sim::step_delays(t, a, kLib);
  // 8 mm unbuffered is quadratic-dominated; one buffer must help even in
  // the simulated (non-Elmore) world.
  EXPECT_LT(buf.max_delay, unbuf.max_delay);
}

}  // namespace
