// The optimization service (src/serve): protocol framing, session
// semantics, the PERTURB-vs-cold bit-identity contract, the corrupt-frame
// robustness corpus (tests/data/corrupt/rpc_*), and the end-to-end
// determinism contract — identical request streams produce bit-identical
// response bytes at any worker-thread count and across interleaved
// concurrent sessions. Runs in the blocking TSan CI lane.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdint>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/netfile.hpp"
#include "lib/buffer.hpp"
#include "netgen/netgen.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/rng.hpp"

namespace {

using namespace nbuf;
using serve::ErrorCode;
using serve::Frame;
using serve::FrameHeader;
using serve::HeaderError;
using serve::Opcode;

// --- fixtures -------------------------------------------------------------

// A seed-stable netgen net serialized to LOAD_NET payload text. The server
// re-reads, binarizes, and segments it, so node indices inside the session
// are deterministic too.
std::string net_payload(std::uint64_t seed, const std::string& name) {
  util::Rng rng(seed);
  const lib::BufferLibrary lib = lib::default_library();
  netgen::TestbenchOptions opt;
  opt.min_span = 2500.0;
  opt.max_span = 6000.0;
  netgen::GeneratedNet g = netgen::generate_net(rng, lib, opt, 0);
  std::ostringstream out;
  io::write_net(out, name, g.tree, rct::BufferAssignment{}, lib);
  return out.str();
}

Frame req(Opcode op, std::string payload, std::uint64_t id = 1) {
  Frame f;
  f.op = op;
  f.request_id = id;
  f.payload = std::move(payload);
  return f;
}

bool is_ok(const Frame& f) {
  return f.op != Opcode::Error && f.payload.rfind("ok ", 0) == 0;
}

// The solution portion of an OPTIMIZE/PERTURB response: everything except
// the trailing DP-effort lines ("reused N" / "recomputed N"), which
// legitimately differ between an incremental run and the cold run it must
// otherwise match byte-for-byte.
std::string solution_of(const std::string& payload) {
  std::string out;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("reused ", 0) == 0 || line.rfind("recomputed ", 0) == 0)
      continue;
    out += line + "\n";
  }
  return out;
}

// The value after `key` on the first line starting with it, or "" if absent.
std::string field_of(const std::string& payload, const std::string& key) {
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(key + " ", 0) == 0) return line.substr(key.size() + 1);
  return {};
}

// --- protocol framing -----------------------------------------------------

TEST(ServeProtocol, HeaderEncodeDecodeRoundTrip) {
  FrameHeader h;
  h.opcode = static_cast<std::uint16_t>(Opcode::Perturb);
  h.request_id = 0x0123456789ABCDEFull;
  h.payload_len = 4096;
  unsigned char bytes[serve::kHeaderSize];
  serve::encode_header(h, bytes);
  // Little-endian magic: "FUBN" on the wire read low byte first.
  EXPECT_EQ(bytes[0], 0x46);  // 'F'
  EXPECT_EQ(bytes[3], 0x4E);  // 'N'
  const FrameHeader back = serve::decode_header(bytes);
  EXPECT_EQ(back.magic, serve::kMagic);
  EXPECT_EQ(back.version, serve::kVersion);
  EXPECT_EQ(back.opcode, h.opcode);
  EXPECT_EQ(back.request_id, h.request_id);
  EXPECT_EQ(back.payload_len, h.payload_len);
  EXPECT_EQ(serve::validate_header(back), HeaderError::None);
}

TEST(ServeProtocol, ValidateHeaderCatchesEachFault) {
  FrameHeader h;
  h.magic = 0xDEADBEEF;
  EXPECT_EQ(serve::validate_header(h), HeaderError::BadMagic);
  h = FrameHeader{};
  h.version = 2;
  EXPECT_EQ(serve::validate_header(h), HeaderError::BadVersion);
  h = FrameHeader{};
  h.payload_len = serve::kMaxPayload + 1;
  EXPECT_EQ(serve::validate_header(h), HeaderError::Oversized);
}

TEST(ServeProtocol, EncodeFrameIsHeaderPlusPayload) {
  const Frame f = req(Opcode::Stats, "abc", 42);
  const std::string bytes = serve::encode_frame(f);
  ASSERT_EQ(bytes.size(), serve::kHeaderSize + 3);
  const FrameHeader h = serve::decode_header(
      reinterpret_cast<const unsigned char*>(bytes.data()));
  EXPECT_EQ(h.opcode, static_cast<std::uint16_t>(Opcode::Stats));
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_EQ(h.payload_len, 3u);
  EXPECT_EQ(bytes.substr(serve::kHeaderSize), "abc");
}

TEST(ServeProtocol, ErrorPayloadsAreTyped) {
  EXPECT_EQ(serve::error_payload(ErrorCode::BadRequest, "nope"),
            "error bad_request: nope");
  EXPECT_EQ(serve::error_payload(ErrorCode::BadState, "x"),
            "error bad_state: x");
  const std::string framing = serve::error_payload(HeaderError::BadMagic);
  EXPECT_EQ(framing.rfind("error bad_magic:", 0), 0u) << framing;
}

// --- session semantics (no sockets) ---------------------------------------

TEST(ServeSession, LoadOptimizeSignoffStatsLifecycle) {
  serve::Session session;
  const Frame loaded =
      session.handle(req(Opcode::LoadNet, net_payload(31, "alpha"), 1));
  ASSERT_TRUE(is_ok(loaded)) << loaded.payload;
  EXPECT_EQ(loaded.request_id, 1u);
  // One-line shape report: "ok net alpha nodes N sinks M".
  const std::size_t nodes_at = loaded.payload.find("nodes ");
  ASSERT_NE(nodes_at, std::string::npos) << loaded.payload;
  EXPECT_NE(loaded.payload.find("net alpha"), std::string::npos);
  EXPECT_GT(std::stoul(loaded.payload.substr(nodes_at + 6)), 0u);

  const Frame opt =
      session.handle(req(Opcode::Optimize, "net alpha\n", 2));
  ASSERT_TRUE(is_ok(opt)) << opt.payload;
  EXPECT_EQ(field_of(opt.payload, "feasible"), "1");
  EXPECT_NE(field_of(opt.payload, "slack"), "");
  // A cold run serves nothing from cache.
  EXPECT_EQ(field_of(opt.payload, "reused"), "0");

  const Frame so = session.handle(req(Opcode::Signoff, "net alpha\n", 3));
  ASSERT_TRUE(is_ok(so)) << so.payload;
  EXPECT_EQ(field_of(so.payload, "pass"), "1") << so.payload;

  const Frame st = session.handle(req(Opcode::Stats, "", 4));
  ASSERT_TRUE(is_ok(st)) << st.payload;
  EXPECT_EQ(field_of(st.payload, "requests"), "4");
  EXPECT_EQ(field_of(st.payload, "nets_loaded"), "1");
  EXPECT_EQ(field_of(st.payload, "optimizes"), "1");
  EXPECT_EQ(field_of(st.payload, "signoffs"), "1");
  EXPECT_EQ(field_of(st.payload, "errors"), "0");
  EXPECT_FALSE(session.shutdown_requested());
}

TEST(ServeSession, RequestFaultsAreTypedAndCounted) {
  serve::Session session;
  // Unknown net: valid request, missing prerequisite -> bad_state.
  Frame r = session.handle(req(Opcode::Optimize, "net ghost\n"));
  EXPECT_EQ(r.op, Opcode::Error);
  EXPECT_EQ(r.payload.rfind("error bad_state:", 0), 0u) << r.payload;
  // Unknown opcode survives dispatch as bad_opcode.
  r = session.handle(req(static_cast<Opcode>(999), ""));
  EXPECT_EQ(r.op, Opcode::Error);
  EXPECT_EQ(r.payload.rfind("error bad_opcode:", 0), 0u) << r.payload;
  // Unparsable net text -> bad_request.
  r = session.handle(req(Opcode::LoadNet, "driver zz nope\n"));
  EXPECT_EQ(r.op, Opcode::Error);
  EXPECT_EQ(r.payload.rfind("error bad_request:", 0), 0u) << r.payload;
  // PERTURB needs at least one edit line.
  ASSERT_TRUE(is_ok(session.handle(
      req(Opcode::LoadNet, net_payload(32, "beta")))));
  r = session.handle(req(Opcode::Perturb, "net beta\n"));
  EXPECT_EQ(r.op, Opcode::Error);
  EXPECT_EQ(r.payload.rfind("error bad_request:", 0), 0u) << r.payload;
  // Out-of-range indices are pre-validated, not contract crashes.
  r = session.handle(
      req(Opcode::Perturb, "net beta\nscale_wire 999999 1.1 1.1 1.1\n"));
  EXPECT_EQ(r.op, Opcode::Error);
  EXPECT_EQ(r.payload.rfind("error bad_request:", 0), 0u) << r.payload;
  const Frame st = session.handle(req(Opcode::Stats, ""));
  EXPECT_EQ(field_of(st.payload, "errors"), "5") << st.payload;
}

TEST(ServeSession, ConflictingOptimizeOptionsAreBadState) {
  serve::Session session;
  ASSERT_TRUE(is_ok(session.handle(
      req(Opcode::LoadNet, net_payload(33, "gamma")))));
  ASSERT_TRUE(is_ok(session.handle(
      req(Opcode::Optimize, "net gamma\nmax_buffers 4\n"))));
  const Frame r = session.handle(
      req(Opcode::Optimize, "net gamma\nmax_buffers 6\n"));
  EXPECT_EQ(r.op, Opcode::Error);
  EXPECT_EQ(r.payload.rfind("error bad_state:", 0), 0u) << r.payload;
  // Reloading the net resets the context, so new options work.
  ASSERT_TRUE(is_ok(session.handle(
      req(Opcode::LoadNet, net_payload(33, "gamma")))));
  EXPECT_TRUE(is_ok(session.handle(
      req(Opcode::Optimize, "net gamma\nmax_buffers 6\n"))));
}

// The heart of the service: an incremental PERTURB answer must be
// bit-identical (modulo the DP-effort trailer) to "apply the same edits,
// discard the cache, re-run cold" — across a chain of successive edits.
TEST(ServeSession, PerturbMatchesFullColdRerunAcrossEditChain) {
  const std::vector<std::string> edits = {
      "scale_wire 2 1.6 1.3 0.8\n",
      "set_sink 0 22 1450 0.75\n",
      "scale_wire 4 0.7 0.9 1.4\n",
      "tighten_margins 0.02\n",
      "scale_wire 1 1.2 1.2 1.2\n",
  };
  serve::Session inc;   // incremental PERTURB
  serve::Session cold;  // same edits + "full 1" (cache discarded)
  for (serve::Session* s : {&inc, &cold}) {
    ASSERT_TRUE(is_ok(s->handle(
        req(Opcode::LoadNet, net_payload(34, "delta")))));
    ASSERT_TRUE(is_ok(s->handle(req(Opcode::Optimize, "net delta\n"))));
  }
  bool reused_any = false;
  for (const std::string& edit : edits) {
    const Frame a = inc.handle(req(Opcode::Perturb, "net delta\n" + edit));
    const Frame b = cold.handle(
        req(Opcode::Perturb, "net delta\nfull 1\n" + edit));
    ASSERT_TRUE(is_ok(a)) << a.payload;
    ASSERT_TRUE(is_ok(b)) << b.payload;
    EXPECT_EQ(solution_of(a.payload), solution_of(b.payload))
        << "incremental diverged from cold on edit: " << edit;
    EXPECT_EQ(field_of(b.payload, "reused"), "0");
    if (field_of(a.payload, "reused") != "0") reused_any = true;
  }
  // The local edits above must actually exercise the cache.
  EXPECT_TRUE(reused_any);
}

TEST(ServeSession, PerturbBeforeOptimizeUsesDefaultOptions) {
  serve::Session a;
  serve::Session b;
  const std::string edit = "net eps\nscale_wire 3 1.5 1.5 1.0\n";
  ASSERT_TRUE(is_ok(a.handle(req(Opcode::LoadNet, net_payload(35, "eps")))));
  ASSERT_TRUE(is_ok(b.handle(req(Opcode::LoadNet, net_payload(35, "eps")))));
  const Frame direct = a.handle(req(Opcode::Perturb, edit));
  ASSERT_TRUE(is_ok(direct)) << direct.payload;
  // Same edit after an option-less OPTIMIZE must pick the same options and
  // land on the same solution.
  ASSERT_TRUE(is_ok(b.handle(req(Opcode::Optimize, "net eps\n"))));
  const Frame after = b.handle(req(Opcode::Perturb, edit));
  ASSERT_TRUE(is_ok(after)) << after.payload;
  EXPECT_EQ(solution_of(direct.payload), solution_of(after.payload));
}

// Coalesced batches must be indistinguishable from serial handling: same
// response bytes in request order, at any worker-thread count.
TEST(ServeSession, BatchCoalescingMatchesSerialAtAnyThreadCount) {
  const std::vector<std::string> names = {"b0", "b1", "b2", "b3"};
  auto script = [&]() {
    std::vector<Frame> frames;
    std::uint64_t id = 1;
    for (std::size_t i = 0; i < names.size(); ++i)
      frames.push_back(req(Opcode::LoadNet,
                           net_payload(40 + i, names[i]), id++));
    for (const std::string& n : names)
      frames.push_back(req(Opcode::Optimize, "net " + n + "\n", id++));
    for (const std::string& n : names)
      frames.push_back(req(Opcode::Perturb,
                           "net " + n + "\nscale_wire 2 1.3 1.1 0.9\n",
                           id++));
    frames.push_back(req(Opcode::Stats, "", id++));
    return frames;
  }();

  serve::Session serial({/*threads=*/1, /*segment_um=*/500.0});
  std::vector<Frame> expected;
  for (const Frame& f : script) expected.push_back(serial.handle(f));

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    serve::Session pooled({threads, 500.0});
    const std::vector<Frame> got = pooled.handle_batch(script);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].op, expected[i].op) << "frame " << i;
      EXPECT_EQ(got[i].request_id, expected[i].request_id);
      EXPECT_EQ(got[i].payload, expected[i].payload)
          << "frame " << i << " diverged at " << threads << " threads";
    }
  }
}

// --- end-to-end over sockets ----------------------------------------------

TEST(ServeEndToEnd, TcpSessionLifecycleWithShutdown) {
  serve::ServerOptions opt;
  opt.threads = 2;
  serve::Server server(opt);
  server.start();
  ASSERT_NE(server.port(), 0);

  serve::Client client = serve::Client::connect("127.0.0.1", server.port());
  const std::vector<std::pair<Opcode, std::string>> script = {
      {Opcode::LoadNet, net_payload(50, "wire9")},
      {Opcode::Optimize, "net wire9\n"},
      {Opcode::Perturb, "net wire9\nset_sink 0 18 1500 0.7\n"},
      {Opcode::Signoff, "net wire9\n"},
      {Opcode::Stats, ""},
  };
  const std::vector<Frame> responses = client.pipeline(script);
  ASSERT_EQ(responses.size(), script.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(is_ok(responses[i])) << i << ": " << responses[i].payload;
    EXPECT_EQ(responses[i].request_id, i + 1);
  }
  const Frame bye = client.call(Opcode::Shutdown, "");
  EXPECT_TRUE(is_ok(bye)) << bye.payload;
  server.wait();  // SHUTDOWN must actually stop the server
}

TEST(ServeEndToEnd, UnixSocketSession) {
  serve::ServerOptions opt;
  opt.unix_path = testing::TempDir() + "nbuf_serve_test.sock";
  serve::Server server(opt);
  server.start();
  serve::Client client = serve::Client::connect_unix_socket(opt.unix_path);
  ASSERT_TRUE(is_ok(client.call(Opcode::LoadNet, net_payload(51, "ux"))));
  const Frame r = client.call(Opcode::Optimize, "net ux\n");
  EXPECT_TRUE(is_ok(r)) << r.payload;
  server.stop();
}

// Every file of the rpc_* corpus: inject the raw bytes, assert the server
// answers with nothing but typed Error frames (a header fault additionally
// costs the connection), and — the point — keeps serving fresh sessions.
TEST(ServeEndToEnd, CorruptFrameCorpusNeverKillsTheServer) {
  std::vector<std::string> corpus;
  {
    DIR* dir = opendir(NBUF_CORRUPT_DIR);
    ASSERT_NE(dir, nullptr) << NBUF_CORRUPT_DIR;
    while (dirent* e = readdir(dir)) {
      const std::string name = e->d_name;
      if (name.rfind("rpc_", 0) == 0)
        corpus.push_back(std::string(NBUF_CORRUPT_DIR) + "/" + name);
    }
    closedir(dir);
  }
  ASSERT_GE(corpus.size(), 7u);

  serve::Server server;
  server.start();
  for (const std::string& path : corpus) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream bytes;
    bytes << in.rdbuf();

    serve::Client client =
        serve::Client::connect("127.0.0.1", server.port());
    client.send_raw(bytes.str());
    // Half-close so the server sees EOF once it has consumed the garbage
    // (may fail with ENOTCONN when the server already reset us — fine).
    (void)::shutdown(client.fd(), SHUT_WR);
    Frame resp;
    bool clean_eof = false;
    std::size_t frames = 0;
    while (serve::read_frame(client.fd(), resp, clean_eof) ==
           HeaderError::None) {
      EXPECT_EQ(resp.op, Opcode::Error) << path << ": " << resp.payload;
      EXPECT_EQ(resp.payload.rfind("error ", 0), 0u) << resp.payload;
      ++frames;
    }
    EXPECT_LE(frames, 2u) << path;

    // The server survives: a fresh session still round-trips.
    serve::Client probe =
        serve::Client::connect("127.0.0.1", server.port());
    const Frame st = probe.call(Opcode::Stats, "");
    EXPECT_TRUE(is_ok(st)) << path << " wedged the server: " << st.payload;
  }
  server.stop();
}

TEST(ServeEndToEnd, RequestFaultKeepsTheConnectionAlive) {
  serve::Server server;
  server.start();
  serve::Client client = serve::Client::connect("127.0.0.1", server.port());
  const Frame bad = client.call(Opcode::Optimize, "net ghost\n");
  EXPECT_EQ(bad.op, Opcode::Error);
  // Same connection, next request succeeds.
  const Frame st = client.call(Opcode::Stats, "");
  ASSERT_TRUE(is_ok(st)) << st.payload;
  EXPECT_EQ(field_of(st.payload, "errors"), "1");
  server.stop();
}

// The determinism contract, interleaving half: N concurrent client threads
// each run their own script; every byte each client sees must equal a
// serial replay of the same script. Runs under TSan in CI.
TEST(ServeEndToEnd, ConcurrentSessionsMatchSerialReplay) {
  constexpr std::size_t kClients = 6;
  std::vector<std::vector<std::pair<Opcode, std::string>>> scripts;
  for (std::size_t i = 0; i < kClients; ++i) {
    const std::string name = "cc" + std::to_string(i);
    scripts.push_back({
        {Opcode::LoadNet, net_payload(60 + i, name)},
        {Opcode::Optimize, "net " + name + "\n"},
        {Opcode::Perturb,
         "net " + name + "\nscale_wire 3 1.4 1.2 0.9\n"},
        {Opcode::Perturb, "net " + name + "\nset_sink 0 25 1600 0.72\n"},
        {Opcode::Stats, ""},
    });
  }
  auto flatten = [](const std::vector<Frame>& frames) {
    std::string all;
    for (const Frame& f : frames) all += serve::encode_frame(f);
    return all;
  };

  serve::ServerOptions opt;
  opt.threads = 4;
  serve::Server server(opt);
  server.start();

  // Serial replay first...
  std::vector<std::string> expected(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    serve::Client c = serve::Client::connect("127.0.0.1", server.port());
    expected[i] = flatten(c.pipeline(scripts[i]));
    ASSERT_FALSE(expected[i].empty());
  }
  // ...then all clients at once against the same server.
  std::vector<std::string> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i)
    clients.emplace_back([&, i] {
      serve::Client c = serve::Client::connect("127.0.0.1", server.port());
      got[i] = flatten(c.pipeline(scripts[i]));
    });
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 0; i < kClients; ++i)
    EXPECT_EQ(got[i], expected[i]) << "client " << i;
  server.stop();
}

// The determinism contract, worker-pool half: the same pipelined burst
// against a 1-thread and an 8-thread server must produce bit-identical
// response byte streams.
TEST(ServeEndToEnd, ResponsesBitIdenticalAtOneVsEightWorkers) {
  std::vector<std::pair<Opcode, std::string>> script;
  for (std::size_t i = 0; i < 8; ++i)
    script.emplace_back(Opcode::LoadNet,
                        net_payload(70 + i, "w" + std::to_string(i)));
  for (std::size_t i = 0; i < 8; ++i)
    script.emplace_back(Opcode::Optimize,
                        "net w" + std::to_string(i) + "\n");
  for (std::size_t i = 0; i < 8; ++i)
    script.emplace_back(
        Opcode::Perturb,
        "net w" + std::to_string(i) + "\nscale_wire 2 1.7 1.4 0.8\n");
  script.emplace_back(Opcode::Stats, "");

  std::vector<std::string> streams;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    serve::ServerOptions opt;
    opt.threads = threads;
    serve::Server server(opt);
    server.start();
    serve::Client client =
        serve::Client::connect("127.0.0.1", server.port());
    std::string all;
    for (const Frame& f : client.pipeline(script))
      all += serve::encode_frame(f);
    streams.push_back(std::move(all));
    server.stop();
  }
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0], streams[1])
      << "worker-thread count leaked into response bytes";
}

}  // namespace
