#include <gtest/gtest.h>

#include <functional>

#include "common/test_nets.hpp"
#include "core/tool.hpp"
#include "core/vanginneken.hpp"
#include "elmore/elmore.hpp"
#include "noise/devgan.hpp"
#include "seg/segment.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();
const lib::BufferLibrary kOne = lib::single_buffer_library();

// Exhaustive optimum: tries every assignment of {none} ∪ lib over the
// buffer-allowed internal nodes and returns the best worst-slack (with or
// without requiring metric-clean noise).
double brute_force_best_slack(const rct::RoutingTree& tree,
                              const lib::BufferLibrary& l,
                              bool require_noise_clean) {
  std::vector<rct::NodeId> sites;
  for (auto id : tree.preorder()) {
    const auto& n = tree.node(id);
    if (n.kind == rct::NodeKind::Internal && n.buffer_allowed)
      sites.push_back(id);
  }
  double best = -std::numeric_limits<double>::infinity();
  rct::BufferAssignment a;
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == sites.size()) {
      if (require_noise_clean && !noise::analyze(tree, a, l).clean()) return;
      best = std::max(best, elmore::analyze(tree, a, l).worst_slack);
      return;
    }
    rec(i + 1);
    for (auto bid : l.ids()) {
      if (l.at(bid).inverting) continue;  // keep polarity trivially legal
      a.place(sites[i], bid);
      rec(i + 1);
      a.remove(sites[i]);
    }
  };
  rec(0);
  return best;
}

rct::RoutingTree segmented_two_pin(double len, double seg_len,
                                   double rat = 2 * ns) {
  auto t = steiner::make_two_pin(len, default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, rat),
                                 lib::default_technology());
  seg::segment(t, {seg_len});
  return t;
}

// --- optimality against brute force -------------------------------------------

TEST(VanGinneken, DelayOptMatchesBruteForceSingleType) {
  for (double len : {2000.0, 4000.0, 6000.0}) {
    auto t = segmented_two_pin(len, len / 6.0);  // 5 interior sites
    core::VgOptions opt;
    opt.noise_constraints = false;
    opt.max_buffers = 8;
    const auto res = core::optimize(t, kOne, opt);
    const double brute = brute_force_best_slack(t, kOne, false);
    EXPECT_NEAR(res.slack, brute, std::abs(brute) * 1e-9) << len;
  }
}

TEST(VanGinneken, DelayOptMatchesBruteForceTwoTypes) {
  lib::BufferLibrary two;
  two.add({"weak", 550.0, 7 * fF, 32 * ps, 0.8, false});
  two.add({"strong", 140.0, 28 * fF, 28 * ps, 0.8, false});
  auto t = segmented_two_pin(5000.0, 1250.0);  // 3 interior sites
  core::VgOptions opt;
  opt.noise_constraints = false;
  const auto res = core::optimize(t, two, opt);
  const double brute = brute_force_best_slack(t, two, false);
  EXPECT_NEAR(res.slack, brute, std::abs(brute) * 1e-9);
}

TEST(VanGinneken, BuffOptMatchesNoiseConstrainedBruteForce) {
  auto t = segmented_two_pin(5000.0, 1000.0);  // violates noise unbuffered
  core::VgOptions opt;
  opt.noise_constraints = true;
  const auto res = core::optimize(t, kOne, opt);
  const double brute = brute_force_best_slack(t, kOne, true);
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.slack, brute, std::abs(brute) * 1e-9);
}

TEST(VanGinneken, BruteForceOnMultiSinkTree) {
  auto t = steiner::make_balanced_tree(2, 1200.0, default_driver(),
                                       default_sink(15 * fF, 2 * ns),
                                       lib::default_technology());
  seg::segment(t, {600.0});
  core::VgOptions opt;
  opt.noise_constraints = false;
  const auto res = core::optimize(t, kOne, opt);
  const double brute = brute_force_best_slack(t, kOne, false);
  EXPECT_NEAR(res.slack, brute, std::abs(brute) * 1e-9);
}

// --- self-consistency -----------------------------------------------------------

TEST(VanGinneken, PredictedSlackMatchesElmoreEvaluation) {
  for (double len : {3000.0, 8000.0, 12000.0}) {
    auto t = segmented_two_pin(len, 500.0);
    for (bool noise_mode : {false, true}) {
      core::VgOptions opt;
      opt.noise_constraints = noise_mode;
      const auto res = core::optimize(t, kLib, opt);
      const auto timing = elmore::analyze(t, res.buffers, kLib);
      EXPECT_NEAR(res.slack, timing.worst_slack,
                  1e-13)
          << len << " noise=" << noise_mode;
    }
  }
}

TEST(VanGinneken, PerCountPlansAreConsistent) {
  auto t = segmented_two_pin(9000.0, 500.0);
  core::VgOptions opt;
  opt.noise_constraints = false;
  opt.max_buffers = 6;
  const auto res = core::optimize(t, kLib, opt);
  ASSERT_GE(res.per_count.size(), 3u);
  for (const auto& cb : res.per_count) {
    const auto a = core::assignment_for(cb.plan);
    EXPECT_EQ(a.size(), cb.count);
    const auto timing = elmore::analyze(t, a, kLib);
    EXPECT_NEAR(cb.slack, timing.worst_slack,
                1e-13);
  }
}

TEST(VanGinneken, NoiseSlackPredictionMatchesAnalyzer) {
  auto t = segmented_two_pin(6000.0, 500.0);
  core::VgOptions opt;
  opt.noise_constraints = true;
  const auto res = core::optimize(t, kLib, opt);
  ASSERT_TRUE(res.feasible);
  const auto rep = noise::analyze(t, res.buffers, kLib);
  EXPECT_EQ(rep.violation_count, 0u);
}

// --- noise behaviour -------------------------------------------------------------

TEST(VanGinneken, BuffOptNeverViolatesNoise) {
  for (double len : {4000.0, 8000.0, 12000.0, 16000.0}) {
    auto t = segmented_two_pin(len, 500.0);
    core::VgOptions opt;
    opt.noise_constraints = true;
    const auto res = core::optimize(t, kLib, opt);
    ASSERT_TRUE(res.feasible) << len;
    EXPECT_TRUE(noise::analyze(t, res.buffers, kLib).clean()) << len;
  }
}

TEST(VanGinneken, DelayOptCanViolateNoiseWhereBuffOptDoesNot) {
  // Theorem 2 in practice: delay-optimal buffering of a long net with a
  // strong driver leaves long unshielded stretches.
  auto t = segmented_two_pin(9000.0, 750.0);
  core::VgOptions delay, noise_opt;
  delay.noise_constraints = false;
  delay.max_buffers = 1;  // DelayOpt(1)
  noise_opt.noise_constraints = true;
  const auto rd = core::optimize(t, kLib, delay);
  const auto rn = core::optimize(t, kLib, noise_opt);
  EXPECT_FALSE(noise::analyze(t, rd.buffers, kLib).clean());
  EXPECT_TRUE(noise::analyze(t, rn.buffers, kLib).clean());
}

TEST(VanGinneken, NoisePenaltyIsSmall) {
  // Slack given noise constraints is within a few percent of unconstrained
  // slack (the paper's <2% claim, loosely checked per net).
  auto t = segmented_two_pin(10000.0, 400.0);
  core::VgOptions delay, noise_opt;
  delay.noise_constraints = false;
  noise_opt.noise_constraints = true;
  const auto rd = core::optimize(t, kLib, delay);
  const auto rn = core::optimize(t, kLib, noise_opt);
  const auto td = elmore::analyze(t, rd.buffers, kLib);
  const auto tn = elmore::analyze(t, rn.buffers, kLib);
  // Compare total delays: penalty below 10% on any single net.
  EXPECT_LT(tn.max_delay, td.max_delay * 1.10);
}

TEST(VanGinneken, NoisePruningShrinksSearch) {
  auto t = segmented_two_pin(12000.0, 400.0);
  core::VgOptions delay, noise_opt;
  delay.noise_constraints = false;
  noise_opt.noise_constraints = true;
  const auto rd = core::optimize(t, kLib, delay);
  const auto rn = core::optimize(t, kLib, noise_opt);
  EXPECT_GT(rn.candidates_noise_pruned, 0u);
  EXPECT_LE(rn.candidates_created, rd.candidates_created);
}

// --- buffer-count extension (Lillis / Problem 3) -----------------------------------

TEST(VanGinneken, MaxBuffersCapIsRespected) {
  for (std::size_t cap : {1u, 2u, 3u}) {
    auto t = segmented_two_pin(10000.0, 500.0);
    core::VgOptions opt;
    opt.noise_constraints = false;
    opt.max_buffers = cap;
    const auto res = core::optimize(t, kLib, opt);
    EXPECT_LE(res.buffer_count, cap);
    for (const auto& cb : res.per_count) EXPECT_LE(cb.count, cap);
  }
}

TEST(VanGinneken, MoreBuffersAllowedNeverHurts) {
  auto t = segmented_two_pin(12000.0, 500.0);
  double prev = -std::numeric_limits<double>::infinity();
  for (std::size_t cap : {1u, 2u, 4u, 8u}) {
    core::VgOptions opt;
    opt.noise_constraints = false;
    opt.max_buffers = cap;
    const auto res = core::optimize(t, kLib, opt);
    EXPECT_GE(res.slack, prev - 1e-15);
    prev = res.slack;
  }
}

TEST(VanGinneken, MinBuffersObjectivePicksFewest) {
  // Generous RAT: zero buffers already meet timing on a short net, but the
  // net violates noise, so the minimum noise-fixing count is chosen.
  auto t = segmented_two_pin(5000.0, 250.0, /*rat=*/50 * ns);
  core::VgOptions opt;
  opt.noise_constraints = true;
  opt.objective = core::VgObjective::MinBuffersMeetingConstraints;
  const auto res = core::optimize(t, kLib, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.timing_met);
  // A 5 mm net needs exactly one buffer for noise in this technology.
  EXPECT_EQ(res.buffer_count, 1u);
  // MaxSlack on the same net uses at least as many buffers.
  opt.objective = core::VgObjective::MaxSlack;
  const auto res2 = core::optimize(t, kLib, opt);
  EXPECT_GE(res2.buffer_count, res.buffer_count);
}

// --- polarity --------------------------------------------------------------------

TEST(VanGinneken, InvertedSinkGetsOddInverterChain) {
  auto t = steiner::make_two_pin(8000.0, default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, 2 * ns),
                                 lib::default_technology());
  {
    auto info = t.sinks().front();
    info.require_inverted = true;
    t.set_sink_info(rct::SinkId{0}, info);
  }
  seg::segment(t, {500.0});
  core::VgOptions opt;
  opt.noise_constraints = true;
  const auto res = core::optimize(t, kLib, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(
      res.buffers.inverted_at(t, kLib, t.sinks().front().node));
}

TEST(VanGinneken, PositiveSinkKeepsEvenInverterChain) {
  auto t = segmented_two_pin(8000.0, 500.0);
  core::VgOptions opt;
  const auto res = core::optimize(t, kLib, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_FALSE(
      res.buffers.inverted_at(t, kLib, t.sinks().front().node));
}

TEST(VanGinneken, InvertedSinkInfeasibleWithoutInverters) {
  auto t = steiner::make_two_pin(3000.0, default_driver(),
                                 default_sink(15 * fF, 2 * ns),
                                 lib::default_technology());
  {
    auto info = t.sinks().front();
    info.require_inverted = true;
    t.set_sink_info(rct::SinkId{0}, info);
  }
  seg::segment(t, {500.0});
  const auto res = core::optimize(t, kOne, core::VgOptions{});
  EXPECT_FALSE(res.feasible);
}

TEST(VanGinneken, MixedPolaritySinks) {
  const auto tech = lib::default_technology();
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver(150.0, 30 * ps));
  auto wire_of = [&](double len) {
    return rct::Wire{len, tech.wire_res(len), tech.wire_cap(len),
                     tech.wire_coupling_current(len)};
  };
  const auto mid = t.add_internal(so, wire_of(1500.0), "stem");
  auto pos = default_sink(10 * fF, 2 * ns, 0.8, "pos");
  auto neg = default_sink(10 * fF, 2 * ns, 0.8, "neg");
  neg.require_inverted = true;
  t.add_sink(mid, wire_of(2000.0), pos);
  t.add_sink(mid, wire_of(2000.0), neg);
  seg::segment(t, {500.0});
  const auto res = core::optimize(t, kLib, core::VgOptions{});
  ASSERT_TRUE(res.feasible);
  EXPECT_FALSE(res.buffers.inverted_at(t, kLib, t.sinks()[0].node));
  EXPECT_TRUE(res.buffers.inverted_at(t, kLib, t.sinks()[1].node));
}

// --- polarity-aware optimality ------------------------------------------------------

TEST(VanGinneken, PolarityBruteForceWithInverters) {
  // Exhaustive optimum over {none, inv, buf} per site with the polarity
  // legality rule (every sink's path parity must match its requirement).
  lib::BufferLibrary two;
  two.add({"inv", 300.0, 12 * fF, 15 * ps, 0.8, true});
  two.add({"buf", 280.0, 14 * fF, 30 * ps, 0.8, false});
  auto t = steiner::make_two_pin(5000.0, default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, 2 * ns),
                                 lib::default_technology());
  {
    auto info = t.sinks().front();
    info.require_inverted = true;
    t.set_sink_info(rct::SinkId{0}, info);
  }
  seg::segment(t, {1250.0});  // 3 interior sites
  std::vector<rct::NodeId> sites;
  for (auto id : t.preorder())
    if (t.node(id).kind == rct::NodeKind::Internal &&
        t.node(id).buffer_allowed)
      sites.push_back(id);
  double best = -std::numeric_limits<double>::infinity();
  rct::BufferAssignment a;
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == sites.size()) {
      if (a.inverted_at(t, two, t.sinks().front().node) !=
          t.sinks().front().require_inverted)
        return;  // polarity-illegal
      best = std::max(best, elmore::analyze(t, a, two).worst_slack);
      return;
    }
    rec(i + 1);
    for (auto bid : two.ids()) {
      a.place(sites[i], bid);
      rec(i + 1);
      a.remove(sites[i]);
    }
  };
  rec(0);
  ASSERT_GT(best, -std::numeric_limits<double>::infinity());

  core::VgOptions opt;
  opt.noise_constraints = false;
  const auto res = core::optimize(t, two, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.slack, best, std::abs(best) * 1e-9);
  EXPECT_TRUE(res.buffers.inverted_at(t, two, t.sinks().front().node));
}

// --- buffer-cost generalization (Lillis power function) ---------------------------

TEST(VanGinnekenCost, UnitCostsMatchDefault) {
  auto t = segmented_two_pin(9000.0, 500.0);
  core::VgOptions plain, unit;
  plain.noise_constraints = true;
  unit.noise_constraints = true;
  unit.buffer_costs.assign(kLib.size(), 1);
  const auto a = core::optimize(t, kLib, plain);
  const auto b = core::optimize(t, kLib, unit);
  EXPECT_DOUBLE_EQ(a.slack, b.slack);
  EXPECT_EQ(a.buffer_count, b.buffer_count);
}

TEST(VanGinnekenCost, MinCostPrefersCheapTypes) {
  // Two types both able to fix the noise; the strong one costs 6x. The
  // min-cost objective under a generous RAT must pick the cheap one.
  lib::BufferLibrary two;
  two.add({"cheap", 140.0, 28 * fF, 28 * ps, 0.8, false});
  two.add({"posh", 45.0, 84 * fF, 25 * ps, 0.8, false});
  auto t = segmented_two_pin(5000.0, 250.0, /*rat=*/50 * ns);
  core::VgOptions opt;
  opt.noise_constraints = true;
  opt.objective = core::VgObjective::MinBuffersMeetingConstraints;
  opt.buffer_costs = {1, 6};
  const auto res = core::optimize(t, two, opt);
  ASSERT_TRUE(res.feasible);
  for (const auto& [node, type] : res.buffers.entries())
    EXPECT_EQ(two.at(type).name, "cheap");
}

TEST(VanGinnekenCost, CostCapLimitsExpensiveTypes) {
  lib::BufferLibrary two;
  two.add({"cheap", 600.0, 6 * fF, 16 * ps, 0.8, false});
  two.add({"posh", 45.0, 84 * fF, 25 * ps, 0.8, false});
  auto t = segmented_two_pin(8000.0, 500.0);
  core::VgOptions opt;
  opt.noise_constraints = false;
  opt.buffer_costs = {1, 4};
  opt.max_buffers = 4;  // total cost budget: one posh OR four cheap
  const auto res = core::optimize(t, two, opt);
  std::size_t cost = 0;
  for (const auto& [node, type] : res.buffers.entries())
    cost += two.at(type).name == "posh" ? 4 : 1;
  EXPECT_LE(cost, 4u);
}

TEST(VanGinnekenCost, MatchesCostBruteForce) {
  // Exhaustive min-cost meeting noise+timing on a small net.
  lib::BufferLibrary two;
  two.add({"cheap", 280.0, 14 * fF, 30 * ps, 0.8, false});
  two.add({"posh", 45.0, 84 * fF, 25 * ps, 0.8, false});
  const std::vector<std::size_t> costs = {1, 3};
  auto t = segmented_two_pin(5000.0, 1250.0, /*rat=*/50 * ns);
  std::vector<rct::NodeId> sites;
  for (auto id : t.preorder())
    if (t.node(id).kind == rct::NodeKind::Internal &&
        t.node(id).buffer_allowed)
      sites.push_back(id);
  std::size_t best_cost = SIZE_MAX;
  rct::BufferAssignment a;
  std::function<void(std::size_t, std::size_t)> rec =
      [&](std::size_t i, std::size_t cost) {
        if (i == sites.size()) {
          if (!noise::analyze(t, a, two).clean()) return;
          if (elmore::analyze(t, a, two).worst_slack < 0.0) return;
          best_cost = std::min(best_cost, cost);
          return;
        }
        rec(i + 1, cost);
        for (std::size_t b = 0; b < two.size(); ++b) {
          a.place(sites[i], lib::BufferId{static_cast<unsigned>(b)});
          rec(i + 1, cost + costs[b]);
          a.remove(sites[i]);
        }
      };
  rec(0, 0);
  ASSERT_NE(best_cost, SIZE_MAX);

  core::VgOptions opt;
  opt.noise_constraints = true;
  opt.objective = core::VgObjective::MinBuffersMeetingConstraints;
  opt.buffer_costs = costs;
  const auto res = core::optimize(t, two, opt);
  ASSERT_TRUE(res.feasible && res.timing_met);
  std::size_t got = 0;
  for (const auto& [node, type] : res.buffers.entries())
    got += costs[type.value()];
  EXPECT_EQ(got, best_cost);
}

TEST(VanGinnekenCost, RejectsBadCostVector) {
  auto t = segmented_two_pin(2000.0, 500.0);
  core::VgOptions opt;
  opt.buffer_costs = {1, 2};  // wrong arity for the 11-type library
  EXPECT_THROW((void)core::optimize(t, kLib, opt), std::invalid_argument);
  opt.buffer_costs.assign(kLib.size(), 1);
  opt.buffer_costs[3] = 0;
  EXPECT_THROW((void)core::optimize(t, kLib, opt), std::invalid_argument);
}

// --- guards ---------------------------------------------------------------------

TEST(VanGinneken, RejectsNonBinaryTree) {
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver());
  const auto hub = t.add_internal(so, rct::Wire{100, 10, 1 * fF, 0});
  for (int i = 0; i < 3; ++i)
    t.add_sink(hub, rct::Wire{50, 5, 1 * fF, 0},
               default_sink(5 * fF, 0, 0.8, ("s" + std::to_string(i)).c_str()));
  EXPECT_THROW((void)core::optimize(t, kLib, {}), std::invalid_argument);
}

TEST(VanGinneken, RejectsEmptyLibrary) {
  auto t = segmented_two_pin(1000.0, 500.0);
  EXPECT_THROW((void)core::optimize(t, lib::BufferLibrary{}, {}),
               std::invalid_argument);
}

// --- tool drivers ----------------------------------------------------------------

TEST(Tool, BuffOptEndToEnd) {
  auto t = steiner::make_two_pin(9000.0, default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, 2 * ns),
                                 lib::default_technology());
  const auto res = core::run_buffopt(t, kLib);
  EXPECT_GT(res.noise_before.violation_count, 0u);
  EXPECT_EQ(res.noise_after.violation_count, 0u);
  EXPECT_TRUE(res.vg.feasible);
  EXPECT_LT(res.timing_after.max_delay, res.timing_before.max_delay);
  EXPECT_GE(res.optimize_seconds, 0.0);
}

TEST(Tool, DelayOptRespectsCap) {
  auto t = steiner::make_two_pin(12000.0, default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, 2 * ns),
                                 lib::default_technology());
  const auto res = core::run_delayopt(t, kLib, 2);
  EXPECT_LE(res.vg.buffer_count, 2u);
  EXPECT_LT(res.timing_after.max_delay, res.timing_before.max_delay);
}

}  // namespace
