// Batch engine: determinism across thread counts, index-keyed ordering,
// schedule-independent VgStats aggregates, and error propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "batch/batch.hpp"
#include "netgen/netgen.hpp"

namespace {

using namespace nbuf;

const lib::BufferLibrary kLib = lib::default_library();

std::vector<batch::BatchNet> testbench(std::size_t count,
                                       std::uint64_t seed) {
  netgen::TestbenchOptions o;
  o.net_count = count;
  o.seed = seed;
  return batch::from_generated(netgen::generate_testbench(kLib, o));
}

// Canonical, order-independent view of one solution.
std::vector<std::pair<unsigned, unsigned>> sorted_buffers(
    const core::ToolResult& r) {
  std::vector<std::pair<unsigned, unsigned>> out;
  for (const auto& [node, type] : r.vg.buffers.entries())
    out.emplace_back(node.value(), type.value());
  std::sort(out.begin(), out.end());
  return out;
}

// Every deterministic field of two per-net results must agree exactly —
// bit-identical, not approximately (only wall times may differ).
void expect_identical(const core::ToolResult& a, const core::ToolResult& b,
                      std::size_t net_index) {
  SCOPED_TRACE("net " + std::to_string(net_index));
  EXPECT_EQ(sorted_buffers(a), sorted_buffers(b));
  EXPECT_EQ(a.vg.feasible, b.vg.feasible);
  EXPECT_EQ(a.vg.timing_met, b.vg.timing_met);
  EXPECT_EQ(a.vg.buffer_count, b.vg.buffer_count);
  EXPECT_EQ(a.vg.slack, b.vg.slack);  // exact, not EXPECT_DOUBLE_EQ
  EXPECT_EQ(a.noise_after.worst_slack, b.noise_after.worst_slack);
  EXPECT_EQ(a.noise_after.violation_count, b.noise_after.violation_count);
  EXPECT_EQ(a.timing_after.worst_slack, b.timing_after.worst_slack);
  EXPECT_EQ(a.timing_after.max_delay, b.timing_after.max_delay);
  EXPECT_TRUE(a.vg.stats.same_counters(b.vg.stats));
}

TEST(Batch, EightThreadsBitIdenticalToSerial) {
  const auto nets = testbench(200, 2026);

  batch::BatchOptions serial;
  serial.threads = 1;
  batch::BatchOptions parallel = serial;
  parallel.threads = 8;

  const auto rs = batch::BatchEngine(serial).run(nets, kLib);
  const auto rp = batch::BatchEngine(parallel).run(nets, kLib);

  ASSERT_EQ(rs.results.size(), nets.size());
  ASSERT_EQ(rp.results.size(), nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i)
    expect_identical(rs.results[i], rp.results[i], i);

  // Aggregates are schedule-independent: identical counters and counts.
  EXPECT_TRUE(rs.summary.stats.same_counters(rp.summary.stats));
  EXPECT_EQ(rs.summary.feasible, rp.summary.feasible);
  EXPECT_EQ(rs.summary.noise_clean_after, rp.summary.noise_clean_after);
  EXPECT_EQ(rs.summary.timing_met, rp.summary.timing_met);
  EXPECT_EQ(rs.summary.buffers_inserted, rp.summary.buffers_inserted);
  EXPECT_EQ(rs.summary.net_count, rp.summary.net_count);
}

TEST(Batch, ResultsAreKeyedByInputIndex) {
  // results[i] must equal running the pipeline on nets[i] alone, proving
  // output order is the input order regardless of which worker ran what.
  const auto nets = testbench(40, 7);
  batch::BatchOptions opt;
  opt.threads = 5;  // deliberately not a divisor of the net count
  const auto res = batch::BatchEngine(opt).run(nets, kLib);
  ASSERT_EQ(res.results.size(), nets.size());
  core::ToolOptions tool;
  tool.vg.max_buffers = opt.max_buffers;
  for (const std::size_t i : {std::size_t{0}, std::size_t{17},
                              std::size_t{39}}) {
    const auto solo = core::run_buffopt(nets[i].tree, kLib, tool);
    expect_identical(solo, res.results[i], i);
  }
}

TEST(Batch, DelayOptModeMatchesSerialTool) {
  const auto nets = testbench(12, 99);
  batch::BatchOptions opt;
  opt.threads = 4;
  opt.mode = batch::BatchMode::DelayOpt;
  opt.max_buffers = 8;
  const auto res = batch::BatchEngine(opt).run(nets, kLib);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const auto solo = core::run_delayopt(nets[i].tree, kLib, 8);
    expect_identical(solo, res.results[i], i);
  }
}

TEST(Batch, SummaryCountsAreConsistent) {
  const auto nets = testbench(30, 31);
  const auto res = batch::BatchEngine(batch::BatchOptions{}).run(nets, kLib);
  const batch::BatchSummary& s = res.summary;
  EXPECT_EQ(s.net_count, nets.size());
  // The netgen workload is constructed so BuffOpt always succeeds.
  EXPECT_EQ(s.feasible, nets.size());
  EXPECT_EQ(s.noise_clean_after, nets.size());
  std::size_t buffers = 0;
  util::VgStats agg;
  for (const auto& r : res.results) {
    buffers += r.vg.buffer_count;
    agg += r.vg.stats;
  }
  EXPECT_EQ(s.buffers_inserted, buffers);
  EXPECT_TRUE(s.stats.same_counters(agg));
  EXPECT_GT(s.stats.candidates_generated, 0u);
  EXPECT_GE(s.stats.candidates_generated,
            s.stats.pruned_inferior + s.stats.pruned_infeasible);
  EXPECT_GT(s.wall_seconds, 0.0);
  EXPECT_GT(s.nets_per_second(), 0.0);
}

TEST(Batch, OptInPhaseTimersOnlyWhenRequested) {
  const auto nets = testbench(3, 5);
  batch::BatchOptions off;
  const auto plain = batch::BatchEngine(off).run(nets, kLib);
  EXPECT_EQ(plain.summary.stats.wire_seconds, 0.0);
  EXPECT_EQ(plain.summary.stats.buffer_seconds, 0.0);
  EXPECT_EQ(plain.summary.stats.merge_seconds, 0.0);

  batch::BatchOptions on;
  on.collect_stats = true;
  const auto timed = batch::BatchEngine(on).run(nets, kLib);
  // Same counters either way; only the clocks are opt-in.
  EXPECT_TRUE(plain.summary.stats.same_counters(timed.summary.stats));
  EXPECT_GT(timed.summary.stats.wire_seconds +
                timed.summary.stats.buffer_seconds +
                timed.summary.stats.merge_seconds,
            0.0);
}

TEST(Batch, WorkerExceptionPropagates) {
  auto nets = testbench(6, 13);
  batch::BatchOptions opt;
  opt.threads = 3;
  opt.max_buffers = 0;  // rejected by the DP's precondition check
  EXPECT_THROW((void)batch::BatchEngine(opt).run(nets, kLib),
               std::invalid_argument);
}

TEST(Batch, EmptyInputAndMoreThreadsThanNets) {
  const auto none = batch::BatchEngine(batch::BatchOptions{})
                        .run(std::vector<batch::BatchNet>{}, kLib);
  EXPECT_TRUE(none.results.empty());
  EXPECT_EQ(none.summary.net_count, 0u);

  const auto nets = testbench(2, 3);
  batch::BatchOptions opt;
  opt.threads = 16;
  const auto res = batch::BatchEngine(opt).run(nets, kLib);
  ASSERT_EQ(res.results.size(), 2u);
  EXPECT_EQ(res.summary.feasible, 2u);
}

TEST(Batch, ParallelForIndexStressUnderUnevenLoad) {
  // TSan-targeted stress (the CI thread-sanitizer lane runs this binary):
  // task sizes vary by two orders of magnitude so fast workers lap slow
  // ones and index claims interleave heavily; the shared atomic counter
  // exercises the reduction pattern and the per-index slots pin the
  // exactly-once claim contract.
  constexpr std::size_t kCount = 400;
  const auto task = [](std::size_t i) {
    std::uint32_t acc = 1;
    const std::size_t spin = (i % 17) * (i % 17) * 50 + 1;
    for (std::size_t k = 0; k < spin; ++k)
      acc = acc * 1664525u + static_cast<std::uint32_t>(i);
    return acc;
  };
  std::vector<std::uint32_t> slot(kCount, 0);
  std::atomic<std::size_t> done{0};
  batch::parallel_for_index(kCount, 8, [&](std::size_t i) {
    slot[i] = task(i);
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), kCount);
  for (std::size_t i = 0; i < kCount; ++i)
    ASSERT_EQ(slot[i], task(i)) << "slot " << i;
}

// Negative control for the TSan lane: building this file with
// -DNBUF_TSAN_RACE_DEMO plants a deliberately unsynchronized increment that
// a -fsanitize=thread build must report as a data race (manual check; see
// docs/quality.md). Compiled out of normal builds so the suite stays green.
#ifdef NBUF_TSAN_RACE_DEMO
TEST(Batch, ParallelForIndexRaceDemo) {
  std::size_t racy = 0;
  batch::parallel_for_index(4096, 8, [&](std::size_t) { ++racy; });
  EXPECT_GT(racy, 0u);
}
#endif

}  // namespace
