#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <vector>

#include "common/random_library.hpp"
#include "io/libfile.hpp"
#include "lib/buffer.hpp"
#include "lib/technology.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

lib::BufferType make_type(const char* name, double r, bool inv = false) {
  return lib::BufferType{name, r, 10.0 * fF, 20.0 * ps, 0.8, inv};
}

TEST(BufferLibrary, AddAndAccess) {
  lib::BufferLibrary l;
  const auto id = l.add(make_type("b1", 100.0));
  EXPECT_EQ(l.size(), 1u);
  EXPECT_EQ(l.at(id).name, "b1");
  EXPECT_DOUBLE_EQ(l.at(id).resistance, 100.0);
}

TEST(BufferLibrary, RejectsDuplicateNames) {
  lib::BufferLibrary l;
  l.add(make_type("b", 100.0));
  EXPECT_THROW(l.add(make_type("b", 200.0)), std::invalid_argument);
}

TEST(BufferLibrary, RejectsNonPositiveParameters) {
  lib::BufferLibrary l;
  auto bad = make_type("x", 0.0);
  EXPECT_THROW(l.add(bad), std::invalid_argument);
  bad = make_type("x", 100.0);
  bad.input_cap = 0.0;
  EXPECT_THROW(l.add(bad), std::invalid_argument);
  bad = make_type("x", 100.0);
  bad.noise_margin = 0.0;
  EXPECT_THROW(l.add(bad), std::invalid_argument);
}

TEST(BufferLibrary, StrongestIsSmallestResistance) {
  lib::BufferLibrary l;
  l.add(make_type("weak", 900.0));
  const auto strong = l.add(make_type("strong", 50.0));
  l.add(make_type("mid", 300.0));
  EXPECT_EQ(l.strongest(), strong);
}

TEST(BufferLibrary, MinInputCap) {
  lib::BufferLibrary l;
  auto a = make_type("a", 100.0);
  a.input_cap = 3.0 * fF;
  auto b = make_type("b", 200.0);
  b.input_cap = 7.0 * fF;
  l.add(a);
  l.add(b);
  EXPECT_DOUBLE_EQ(l.min_input_cap(), 3.0 * fF);
}

TEST(BufferLibrary, NonInvertingFilter) {
  lib::BufferLibrary l;
  l.add(make_type("inv", 100.0, true));
  l.add(make_type("buf", 200.0, false));
  const auto filtered = l.non_inverting();
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered.types().front().name, "buf");
}

TEST(BufferLibrary, IdsEnumerateInOrder) {
  lib::BufferLibrary l;
  l.add(make_type("a", 1.0));
  l.add(make_type("b", 2.0));
  const auto ids = l.ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(l.at(ids[0]).name, "a");
  EXPECT_EQ(l.at(ids[1]).name, "b");
}

TEST(BufferLibrary, EmptyLibraryThrowsOnQueries) {
  lib::BufferLibrary l;
  EXPECT_TRUE(l.empty());
  EXPECT_THROW((void)l.strongest(), std::invalid_argument);
  EXPECT_THROW((void)l.min_input_cap(), std::invalid_argument);
}

TEST(DefaultLibrary, HasPaperShape) {
  const auto l = lib::default_library();
  EXPECT_EQ(l.size(), 11u);  // Section V: 5 inverting + 6 non-inverting
  std::size_t inverting = 0;
  for (const auto& t : l.types()) {
    if (t.inverting) ++inverting;
    EXPECT_DOUBLE_EQ(t.noise_margin, 0.8);  // NM = 0.8 V for every gate
    EXPECT_GT(t.resistance, 0.0);
    EXPECT_GT(t.input_cap, 0.0);
  }
  EXPECT_EQ(inverting, 5u);
}

TEST(DefaultLibrary, StrengthLadderIsMonotone) {
  // Within each family, stronger buffers have lower R and higher C_in.
  const auto l = lib::default_library();
  double prev_r = 1e9, prev_c = 0.0;
  for (const auto& t : l.types()) {
    if (t.inverting) {
      EXPECT_LT(t.resistance, prev_r);
      EXPECT_GT(t.input_cap, prev_c);
      prev_r = t.resistance;
      prev_c = t.input_cap;
    }
  }
}

TEST(SingleBufferLibrary, HasOneNonInvertingType) {
  const auto l = lib::single_buffer_library();
  ASSERT_EQ(l.size(), 1u);
  EXPECT_FALSE(l.types().front().inverting);
}

TEST(Technology, DefaultValidates) {
  const auto t = lib::default_technology();
  EXPECT_NO_THROW(t.validate());
  EXPECT_DOUBLE_EQ(t.coupling_ratio, 0.7);
  EXPECT_DOUBLE_EQ(t.vdd, 1.8);
}

TEST(Technology, AggressorSlopeIsPaperValue) {
  // 1.8 V / 0.25 ns = 7.2 V/ns.
  const auto t = lib::default_technology();
  EXPECT_NEAR(t.aggressor_slope(), 7.2e9, 1e3);
}

TEST(Technology, WireHelpersScaleLinearly) {
  const auto t = lib::default_technology();
  EXPECT_DOUBLE_EQ(t.wire_res(2000.0), 2.0 * t.wire_res(1000.0));
  EXPECT_DOUBLE_EQ(t.wire_cap(2000.0), 2.0 * t.wire_cap(1000.0));
  EXPECT_DOUBLE_EQ(t.wire_coupling_current(2000.0),
                   2.0 * t.wire_coupling_current(1000.0));
}

TEST(Technology, CouplingCurrentMatchesEq6) {
  // i = lambda * c * mu per unit length (eq. 6).
  const auto t = lib::default_technology();
  const double expected =
      t.coupling_ratio * t.wire_cap_per_um * t.aggressor_slope();
  EXPECT_DOUBLE_EQ(t.coupling_current_per_um(), expected);
}

TEST(Technology, ValidateRejectsBadRatio) {
  auto t = lib::default_technology();
  t.coupling_ratio = 1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

// --- synthetic ladder libraries (PR 6) --------------------------------------

TEST(LadderLibrary, StrengthLadderIsStrictlyMonotone) {
  for (const std::size_t b : {1u, 2u, 8u, 64u}) {
    const auto ladder = lib::make_ladder_library(b, 0.45);
    ASSERT_EQ(ladder.size(), b);
    EXPECT_GE(ladder.size() - ladder.inverting_count(), 1u);
    for (std::size_t i = 1; i < b; ++i) {
      const auto& prev = ladder.at(lib::BufferId{
          static_cast<lib::BufferId::underlying_type>(i - 1)});
      const auto& cur = ladder.at(
          lib::BufferId{static_cast<lib::BufferId::underlying_type>(i)});
      EXPECT_LT(cur.resistance, prev.resistance) << "i=" << i;
      EXPECT_GT(cur.input_cap, prev.input_cap) << "i=" << i;
    }
  }
}

TEST(LadderLibrary, FindLocatesEveryTypeByName) {
  const auto ladder = lib::make_ladder_library(16, 0.5);
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const lib::BufferId id{static_cast<lib::BufferId::underlying_type>(i)};
    const auto found = ladder.find(ladder.at(id).name);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, id);
  }
  EXPECT_FALSE(ladder.find("no-such-type").has_value());
}

TEST(LadderLibrary, InvertingFractionIsHonored) {
  const auto half = lib::make_ladder_library(32, 0.5);
  EXPECT_EQ(half.inverting_count(), 16u);
  const auto none = lib::make_ladder_library(32, 0.0);
  EXPECT_EQ(none.inverting_count(), 0u);
}

// --- .lib file round-trip and corpus (PR 6) ---------------------------------

TEST(LibFile, ReadParsesUnitsAndPolarity) {
  std::istringstream in(
      "# comment\n"
      "library demo\n"
      "buffer b1 600 12 25 0.8\n"
      "buffer i1 300 24.5 30 0.75 inverting  # trailing comment\n");
  const io::LibFile f = io::read_library(in);
  EXPECT_EQ(f.name, "demo");
  ASSERT_EQ(f.library.size(), 2u);
  const auto& b1 = f.library.at(lib::BufferId{0});
  EXPECT_DOUBLE_EQ(b1.resistance, 600.0);
  EXPECT_DOUBLE_EQ(b1.input_cap, 12.0 * fF);
  EXPECT_DOUBLE_EQ(b1.intrinsic_delay, 25.0 * ps);
  EXPECT_DOUBLE_EQ(b1.noise_margin, 0.8);
  EXPECT_FALSE(b1.inverting);
  EXPECT_TRUE(f.library.at(lib::BufferId{1}).inverting);
}

TEST(LibFile, WriteReadWriteIsByteIdentical) {
  // 17-digit output: write(read(write(x))) == write(x) byte for byte, for
  // randomized real-valued libraries.
  const auto original = nbuf::test::random_library(0x11B, 13, 0.4);
  std::ostringstream first;
  io::write_library(first, "rt", original);
  std::istringstream back(first.str());
  const io::LibFile reread = io::read_library(back);
  EXPECT_EQ(reread.name, "rt");
  std::ostringstream second;
  io::write_library(second, reread.name, reread.library);
  EXPECT_EQ(second.str(), first.str());
}

TEST(LibFileCorpus, EveryCorruptFileThrowsParseError) {
  // Mirrors NetFileCorpus (test_io): every malformed .lib must be rejected
  // with a structured ParseError carrying a usable line number — never a
  // crash, hang, or silent accept.
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const fs::directory_entry& e : fs::directory_iterator(NBUF_CORRUPT_DIR))
    if (e.is_regular_file() && e.path().extension() == ".lib")
      files.push_back(e.path());
  ASSERT_GE(files.size(), 8u) << "corrupt .lib corpus went missing";
  for (const fs::path& p : files) {
    try {
      (void)io::read_library_file(p.string());
      FAIL() << p.filename() << ": parser accepted a corrupt library";
    } catch (const io::ParseError& e) {
      EXPECT_GE(e.line(), 1u) << p.filename();
      EXPECT_STRNE(e.what(), "") << p.filename();
    } catch (const std::exception& e) {
      FAIL() << p.filename() << ": wrong exception type: " << e.what();
    }
  }
}

}  // namespace
