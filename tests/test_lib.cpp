#include <gtest/gtest.h>

#include "lib/buffer.hpp"
#include "lib/technology.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

lib::BufferType make_type(const char* name, double r, bool inv = false) {
  return lib::BufferType{name, r, 10.0 * fF, 20.0 * ps, 0.8, inv};
}

TEST(BufferLibrary, AddAndAccess) {
  lib::BufferLibrary l;
  const auto id = l.add(make_type("b1", 100.0));
  EXPECT_EQ(l.size(), 1u);
  EXPECT_EQ(l.at(id).name, "b1");
  EXPECT_DOUBLE_EQ(l.at(id).resistance, 100.0);
}

TEST(BufferLibrary, RejectsDuplicateNames) {
  lib::BufferLibrary l;
  l.add(make_type("b", 100.0));
  EXPECT_THROW(l.add(make_type("b", 200.0)), std::invalid_argument);
}

TEST(BufferLibrary, RejectsNonPositiveParameters) {
  lib::BufferLibrary l;
  auto bad = make_type("x", 0.0);
  EXPECT_THROW(l.add(bad), std::invalid_argument);
  bad = make_type("x", 100.0);
  bad.input_cap = 0.0;
  EXPECT_THROW(l.add(bad), std::invalid_argument);
  bad = make_type("x", 100.0);
  bad.noise_margin = 0.0;
  EXPECT_THROW(l.add(bad), std::invalid_argument);
}

TEST(BufferLibrary, StrongestIsSmallestResistance) {
  lib::BufferLibrary l;
  l.add(make_type("weak", 900.0));
  const auto strong = l.add(make_type("strong", 50.0));
  l.add(make_type("mid", 300.0));
  EXPECT_EQ(l.strongest(), strong);
}

TEST(BufferLibrary, MinInputCap) {
  lib::BufferLibrary l;
  auto a = make_type("a", 100.0);
  a.input_cap = 3.0 * fF;
  auto b = make_type("b", 200.0);
  b.input_cap = 7.0 * fF;
  l.add(a);
  l.add(b);
  EXPECT_DOUBLE_EQ(l.min_input_cap(), 3.0 * fF);
}

TEST(BufferLibrary, NonInvertingFilter) {
  lib::BufferLibrary l;
  l.add(make_type("inv", 100.0, true));
  l.add(make_type("buf", 200.0, false));
  const auto filtered = l.non_inverting();
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered.types().front().name, "buf");
}

TEST(BufferLibrary, IdsEnumerateInOrder) {
  lib::BufferLibrary l;
  l.add(make_type("a", 1.0));
  l.add(make_type("b", 2.0));
  const auto ids = l.ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(l.at(ids[0]).name, "a");
  EXPECT_EQ(l.at(ids[1]).name, "b");
}

TEST(BufferLibrary, EmptyLibraryThrowsOnQueries) {
  lib::BufferLibrary l;
  EXPECT_TRUE(l.empty());
  EXPECT_THROW((void)l.strongest(), std::invalid_argument);
  EXPECT_THROW((void)l.min_input_cap(), std::invalid_argument);
}

TEST(DefaultLibrary, HasPaperShape) {
  const auto l = lib::default_library();
  EXPECT_EQ(l.size(), 11u);  // Section V: 5 inverting + 6 non-inverting
  std::size_t inverting = 0;
  for (const auto& t : l.types()) {
    if (t.inverting) ++inverting;
    EXPECT_DOUBLE_EQ(t.noise_margin, 0.8);  // NM = 0.8 V for every gate
    EXPECT_GT(t.resistance, 0.0);
    EXPECT_GT(t.input_cap, 0.0);
  }
  EXPECT_EQ(inverting, 5u);
}

TEST(DefaultLibrary, StrengthLadderIsMonotone) {
  // Within each family, stronger buffers have lower R and higher C_in.
  const auto l = lib::default_library();
  double prev_r = 1e9, prev_c = 0.0;
  for (const auto& t : l.types()) {
    if (t.inverting) {
      EXPECT_LT(t.resistance, prev_r);
      EXPECT_GT(t.input_cap, prev_c);
      prev_r = t.resistance;
      prev_c = t.input_cap;
    }
  }
}

TEST(SingleBufferLibrary, HasOneNonInvertingType) {
  const auto l = lib::single_buffer_library();
  ASSERT_EQ(l.size(), 1u);
  EXPECT_FALSE(l.types().front().inverting);
}

TEST(Technology, DefaultValidates) {
  const auto t = lib::default_technology();
  EXPECT_NO_THROW(t.validate());
  EXPECT_DOUBLE_EQ(t.coupling_ratio, 0.7);
  EXPECT_DOUBLE_EQ(t.vdd, 1.8);
}

TEST(Technology, AggressorSlopeIsPaperValue) {
  // 1.8 V / 0.25 ns = 7.2 V/ns.
  const auto t = lib::default_technology();
  EXPECT_NEAR(t.aggressor_slope(), 7.2e9, 1e3);
}

TEST(Technology, WireHelpersScaleLinearly) {
  const auto t = lib::default_technology();
  EXPECT_DOUBLE_EQ(t.wire_res(2000.0), 2.0 * t.wire_res(1000.0));
  EXPECT_DOUBLE_EQ(t.wire_cap(2000.0), 2.0 * t.wire_cap(1000.0));
  EXPECT_DOUBLE_EQ(t.wire_coupling_current(2000.0),
                   2.0 * t.wire_coupling_current(1000.0));
}

TEST(Technology, CouplingCurrentMatchesEq6) {
  // i = lambda * c * mu per unit length (eq. 6).
  const auto t = lib::default_technology();
  const double expected =
      t.coupling_ratio * t.wire_cap_per_um * t.aggressor_slope();
  EXPECT_DOUBLE_EQ(t.coupling_current_per_um(), expected);
}

TEST(Technology, ValidateRejectsBadRatio) {
  auto t = lib::default_technology();
  t.coupling_ratio = 1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

}  // namespace
