// Incremental Devgan noise queries vs full re-analysis.
#include <gtest/gtest.h>

#include "common/test_nets.hpp"
#include "noise/devgan.hpp"
#include "noise/incremental.hpp"
#include "seg/segment.hpp"
#include "steiner/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();

rct::RoutingTree random_net(util::Rng& rng, int sinks = 0,
                            double max_span = 9000.0) {
  if (sinks == 0) sinks = rng.uniform_int(2, 10);
  const double span = rng.uniform(max_span / 3.0, max_span);
  std::vector<steiner::PinSpec> pins;
  for (int i = 0; i < sinks; ++i) {
    steiner::PinSpec p;
    p.at = {rng.uniform(0.2 * span, span), rng.uniform(0.0, span)};
    p.info = default_sink(rng.uniform(5 * fF, 30 * fF), 0.0, 0.8,
                          ("s" + std::to_string(i)).c_str());
    pins.push_back(p);
  }
  return steiner::build_tree({0, 0}, default_driver(rng.uniform(60, 350)),
                             pins, lib::default_technology());
}

// Naive LCA through parent chains.
rct::NodeId naive_lca(const rct::RoutingTree& t, rct::NodeId a,
                      rct::NodeId b) {
  std::vector<rct::NodeId> pa;
  for (rct::NodeId c = a; c.valid(); c = t.node(c).parent) pa.push_back(c);
  for (rct::NodeId c = b; c.valid(); c = t.node(c).parent)
    for (rct::NodeId x : pa)
      if (x == c) return c;
  return t.source();
}

TEST(Incremental, MatchesDevganOnFig3) {
  const auto f = test::fig3_net(100.0);
  const noise::IncrementalNoise inc(f.tree);
  EXPECT_NEAR(inc.current(f.n), 50 * uA, 1e-12);
  EXPECT_NEAR(inc.noise(f.s1), 19.0 * mV, 1e-9);
  EXPECT_NEAR(inc.noise(f.s2), 17.5 * mV, 1e-9);
  EXPECT_NEAR(inc.noise_slack(f.n), 0.8 - 3.0 * mV, 1e-9);
  EXPECT_NEAR(inc.upstream_resistance(f.s1), 100.0 + 100.0 + 200.0, 1e-9);
}

TEST(Incremental, MatchesDevganEverywhereOnRandomNets) {
  util::Rng rng(909);
  for (int trial = 0; trial < 8; ++trial) {
    auto t = random_net(rng);
    const noise::IncrementalNoise inc(t);
    const auto slacks = noise::noise_slacks(t);
    const auto stages =
        rct::decompose(t, rct::BufferAssignment{}, lib::BufferLibrary{});
    const auto nz = noise::stage_noise(t, stages[0]);
    const auto cur = noise::stage_currents(t, stages[0]);
    for (auto id : t.preorder()) {
      EXPECT_NEAR(inc.noise(id), nz.at(id), 1e-12) << trial;
      EXPECT_NEAR(inc.current(id), cur.at(id), 1e-15) << trial;
      EXPECT_NEAR(inc.noise_slack(id), slacks.at(id), 1e-12) << trial;
    }
  }
}

TEST(Incremental, LcaMatchesNaive) {
  util::Rng rng(911);
  for (int trial = 0; trial < 6; ++trial) {
    auto t = random_net(rng);
    const noise::IncrementalNoise inc(t);
    const auto nodes = t.preorder();
    for (int q = 0; q < 60; ++q) {
      const auto a = nodes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(nodes.size()) - 1))];
      const auto b = nodes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(nodes.size()) - 1))];
      EXPECT_EQ(inc.lca(a, b), naive_lca(t, a, b));
    }
  }
}

TEST(Incremental, CommonResistanceMatchesPathWalk) {
  util::Rng rng(912);
  auto t = random_net(rng, 6);
  const noise::IncrementalNoise inc(t);
  for (const auto& sa : t.sinks()) {
    for (const auto& sb : t.sinks()) {
      const auto l = naive_lca(t, sa.node, sb.node);
      double r = t.driver().resistance;
      for (rct::NodeId c = l; c != t.source(); c = t.node(c).parent)
        r += t.node(c).parent_wire.resistance;
      EXPECT_NEAR(inc.common_resistance(sa.node, sb.node), r, 1e-9);
    }
  }
}

TEST(Incremental, DecoupledNoiseMatchesActualBufferPlacement) {
  // Physically place a buffer at v and fully re-analyze: the O(1) formula
  // must agree at the buffer input and at every outside sink. (Buffer input
  // pins inject no current, so the metric sees exactly the decoupling.)
  util::Rng rng(913);
  for (int trial = 0; trial < 6; ++trial) {
    auto t = random_net(rng);
    const noise::IncrementalNoise inc(t);
    for (auto v : t.preorder()) {
      const auto& nd = t.node(v);
      if (nd.kind != rct::NodeKind::Internal || !nd.buffer_allowed) continue;
      rct::BufferAssignment a;
      a.place(v, lib::BufferId{8});  // buf_x8
      const auto rep = noise::analyze(t, a, kLib);
      // Buffer input leaf.
      for (const auto& leaf : rep.leaves)
        if (leaf.is_buffer_input && leaf.node == v) {
          EXPECT_NEAR(inc.noise_with_subtree_decoupled(v, v), leaf.noise,
                      1e-12);
        }
      // Outside sinks keep the driver as their restoring gate.
      for (const auto& s : t.sinks()) {
        bool inside = false;
        for (rct::NodeId c = s.node; c.valid(); c = t.node(c).parent)
          if (c == v) inside = true;
        if (inside) continue;
        EXPECT_NEAR(inc.noise_with_subtree_decoupled(s.node, v),
                    rep.sinks[t.node(s.node).sink.value()].noise, 1e-12);
      }
    }
  }
}

TEST(Incremental, DecoupledQueryRejectsInsideNodes) {
  const auto f = test::fig3_net();
  const noise::IncrementalNoise inc(f.tree);
  EXPECT_THROW((void)inc.noise_with_subtree_decoupled(f.s1, f.n),
               std::invalid_argument);
}

TEST(Incremental, SingleBufferFixesMatchesNaive) {
  util::Rng rng(914);
  int fixable_nets = 0;
  for (int trial = 0; trial < 10; ++trial) {
    // Small spans: a mix of clean, one-buffer-fixable and unfixable nets.
    auto t = random_net(rng, rng.uniform_int(2, 4), 5000.0);
    seg::segment(t, {500.0});  // mid-wire sites, so one buffer can suffice
    const noise::IncrementalNoise inc(t);
    const auto& b = kLib.at(lib::BufferId{10});  // buf_x24
    bool any = false;
    for (auto v : t.preorder()) {
      const auto& nd = t.node(v);
      if (nd.kind != rct::NodeKind::Internal || !nd.buffer_allowed) continue;
      rct::BufferAssignment a;
      a.place(v, lib::BufferId{10});
      const bool naive = noise::analyze(t, a, kLib).clean();
      EXPECT_EQ(inc.single_buffer_fixes(v, b.resistance, b.noise_margin),
                naive)
          << "trial " << trial << " node " << v;
      any |= naive;
    }
    fixable_nets += any ? 1 : 0;
  }
  // The check must be exercised in both directions across the workload.
  EXPECT_GT(fixable_nets, 0);
  EXPECT_LT(fixable_nets, 10);
}

// Differential stress: the incremental structure is rebuilt after random
// structural and electrical edits and must agree with full re-analysis at
// every node, on 100+ distinct perturbed trees. Guards against any cached
// quantity (currents, prefix resistances, Euler intervals, lifting tables)
// silently assuming the generator's pristine output.
TEST(Incremental, DifferentialAgainstFullRecomputeOnPerturbedTrees) {
  util::Rng rng(20260807);
  for (int trial = 0; trial < 120; ++trial) {
    auto t = random_net(rng, 0, 7000.0);
    const int edits = rng.uniform_int(1, 4);
    for (int e = 0; e < edits; ++e) {
      switch (rng.uniform_int(0, 2)) {
        case 0: {  // rescale a random wire's electricals
          const auto order = t.preorder();
          const rct::NodeId id =
              order[static_cast<std::size_t>(rng.uniform_int(
                  1, static_cast<int>(order.size()) - 1))];
          rct::Wire w = t.node(id).parent_wire;
          w.resistance *= rng.uniform(0.4, 2.5);
          w.capacitance *= rng.uniform(0.4, 2.5);
          w.coupling_current *= rng.uniform(0.4, 2.5);
          t.set_parent_wire(id, w);
          break;
        }
        case 1: {  // retune a random sink's pin cap and margin
          const auto sid = rct::SinkId{static_cast<std::uint32_t>(
              rng.uniform_int(0, static_cast<int>(t.sink_count()) - 1))};
          rct::SinkInfo s = t.sink(sid);
          s.cap *= rng.uniform(0.5, 2.0);
          s.noise_margin = rng.uniform(0.3, 1.2);
          t.set_sink_info(sid, s);
          break;
        }
        default: {  // split a random wire, changing the topology
          const auto order = t.preorder();
          const rct::NodeId id =
              order[static_cast<std::size_t>(rng.uniform_int(
                  1, static_cast<int>(order.size()) - 1))];
          const double len = t.node(id).parent_wire.length;
          if (len > 1.0)
            (void)t.split_wire(id, rng.uniform(0.25, 0.75) * len);
          break;
        }
      }
    }
    t.validate();

    const noise::IncrementalNoise inc(t);
    const auto slacks = noise::noise_slacks(t);
    const auto stages =
        rct::decompose(t, rct::BufferAssignment{}, lib::BufferLibrary{});
    ASSERT_EQ(stages.size(), 1u);
    const auto nz = noise::stage_noise(t, stages[0]);
    const auto cur = noise::stage_currents(t, stages[0]);
    for (auto id : t.preorder()) {
      ASSERT_NEAR(inc.noise(id), nz.at(id), 1e-12) << "trial " << trial;
      ASSERT_NEAR(inc.current(id), cur.at(id), 1e-15) << "trial " << trial;
      ASSERT_NEAR(inc.noise_slack(id), slacks.at(id), 1e-12)
          << "trial " << trial;
      // Upstream resistance against a naive parent-chain walk.
      double r = t.driver().resistance;
      for (rct::NodeId c = id; c != t.source(); c = t.node(c).parent)
        r += t.node(c).parent_wire.resistance;
      ASSERT_NEAR(inc.upstream_resistance(id), r, 1e-9)
          << "trial " << trial;
    }
    // Spot-check the LCA-based shared resistance on a random node pair.
    const auto order = t.preorder();
    const auto pick = [&] {
      return order[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(order.size()) - 1))];
    };
    const rct::NodeId a = pick(), b = pick();
    const rct::NodeId l = naive_lca(t, a, b);
    EXPECT_EQ(inc.lca(a, b), l) << "trial " << trial;
    double rc = t.driver().resistance;
    for (rct::NodeId c = l; c != t.source(); c = t.node(c).parent)
      rc += t.node(c).parent_wire.resistance;
    EXPECT_NEAR(inc.common_resistance(a, b), rc, 1e-9) << "trial " << trial;
  }
}

TEST(Incremental, DecouplingNeverIncreasesNoise) {
  util::Rng rng(915);
  auto t = random_net(rng);
  const noise::IncrementalNoise inc(t);
  for (auto v : t.preorder()) {
    if (t.node(v).kind != rct::NodeKind::Internal) continue;
    for (const auto& s : t.sinks()) {
      bool inside = false;
      for (rct::NodeId c = s.node; c.valid(); c = t.node(c).parent)
        if (c == v) inside = true;
      if (inside) continue;
      EXPECT_LE(inc.noise_with_subtree_decoupled(s.node, v),
                inc.noise(s.node) + 1e-15);
    }
  }
}

}  // namespace
