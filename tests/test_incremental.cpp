// Incremental Devgan noise queries vs full re-analysis, and the
// core::IncrementalContext re-optimization cache vs cold full DP runs.
#include <gtest/gtest.h>

#include "common/test_nets.hpp"
#include "core/incremental.hpp"
#include "core/vanginneken.hpp"
#include "noise/devgan.hpp"
#include "noise/incremental.hpp"
#include "seg/segment.hpp"
#include "steiner/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();

rct::RoutingTree random_net(util::Rng& rng, int sinks = 0,
                            double max_span = 9000.0) {
  if (sinks == 0) sinks = rng.uniform_int(2, 10);
  const double span = rng.uniform(max_span / 3.0, max_span);
  std::vector<steiner::PinSpec> pins;
  for (int i = 0; i < sinks; ++i) {
    steiner::PinSpec p;
    p.at = {rng.uniform(0.2 * span, span), rng.uniform(0.0, span)};
    p.info = default_sink(rng.uniform(5 * fF, 30 * fF), 0.0, 0.8,
                          ("s" + std::to_string(i)).c_str());
    pins.push_back(p);
  }
  return steiner::build_tree({0, 0}, default_driver(rng.uniform(60, 350)),
                             pins, lib::default_technology());
}

// Naive LCA through parent chains.
rct::NodeId naive_lca(const rct::RoutingTree& t, rct::NodeId a,
                      rct::NodeId b) {
  std::vector<rct::NodeId> pa;
  for (rct::NodeId c = a; c.valid(); c = t.node(c).parent) pa.push_back(c);
  for (rct::NodeId c = b; c.valid(); c = t.node(c).parent)
    for (rct::NodeId x : pa)
      if (x == c) return c;
  return t.source();
}

TEST(Incremental, MatchesDevganOnFig3) {
  const auto f = test::fig3_net(100.0);
  const noise::IncrementalNoise inc(f.tree);
  EXPECT_NEAR(inc.current(f.n), 50 * uA, 1e-12);
  EXPECT_NEAR(inc.noise(f.s1), 19.0 * mV, 1e-9);
  EXPECT_NEAR(inc.noise(f.s2), 17.5 * mV, 1e-9);
  EXPECT_NEAR(inc.noise_slack(f.n), 0.8 - 3.0 * mV, 1e-9);
  EXPECT_NEAR(inc.upstream_resistance(f.s1), 100.0 + 100.0 + 200.0, 1e-9);
}

TEST(Incremental, MatchesDevganEverywhereOnRandomNets) {
  util::Rng rng(909);
  for (int trial = 0; trial < 8; ++trial) {
    auto t = random_net(rng);
    const noise::IncrementalNoise inc(t);
    const auto slacks = noise::noise_slacks(t);
    const auto stages =
        rct::decompose(t, rct::BufferAssignment{}, lib::BufferLibrary{});
    const auto nz = noise::stage_noise(t, stages[0]);
    const auto cur = noise::stage_currents(t, stages[0]);
    for (auto id : t.preorder()) {
      EXPECT_NEAR(inc.noise(id), nz.at(id), 1e-12) << trial;
      EXPECT_NEAR(inc.current(id), cur.at(id), 1e-15) << trial;
      EXPECT_NEAR(inc.noise_slack(id), slacks.at(id), 1e-12) << trial;
    }
  }
}

TEST(Incremental, LcaMatchesNaive) {
  util::Rng rng(911);
  for (int trial = 0; trial < 6; ++trial) {
    auto t = random_net(rng);
    const noise::IncrementalNoise inc(t);
    const auto nodes = t.preorder();
    for (int q = 0; q < 60; ++q) {
      const auto a = nodes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(nodes.size()) - 1))];
      const auto b = nodes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(nodes.size()) - 1))];
      EXPECT_EQ(inc.lca(a, b), naive_lca(t, a, b));
    }
  }
}

TEST(Incremental, CommonResistanceMatchesPathWalk) {
  util::Rng rng(912);
  auto t = random_net(rng, 6);
  const noise::IncrementalNoise inc(t);
  for (const auto& sa : t.sinks()) {
    for (const auto& sb : t.sinks()) {
      const auto l = naive_lca(t, sa.node, sb.node);
      double r = t.driver().resistance;
      for (rct::NodeId c = l; c != t.source(); c = t.node(c).parent)
        r += t.node(c).parent_wire.resistance;
      EXPECT_NEAR(inc.common_resistance(sa.node, sb.node), r, 1e-9);
    }
  }
}

TEST(Incremental, DecoupledNoiseMatchesActualBufferPlacement) {
  // Physically place a buffer at v and fully re-analyze: the O(1) formula
  // must agree at the buffer input and at every outside sink. (Buffer input
  // pins inject no current, so the metric sees exactly the decoupling.)
  util::Rng rng(913);
  for (int trial = 0; trial < 6; ++trial) {
    auto t = random_net(rng);
    const noise::IncrementalNoise inc(t);
    for (auto v : t.preorder()) {
      const auto& nd = t.node(v);
      if (nd.kind != rct::NodeKind::Internal || !nd.buffer_allowed) continue;
      rct::BufferAssignment a;
      a.place(v, lib::BufferId{8});  // buf_x8
      const auto rep = noise::analyze(t, a, kLib);
      // Buffer input leaf.
      for (const auto& leaf : rep.leaves)
        if (leaf.is_buffer_input && leaf.node == v) {
          EXPECT_NEAR(inc.noise_with_subtree_decoupled(v, v), leaf.noise,
                      1e-12);
        }
      // Outside sinks keep the driver as their restoring gate.
      for (const auto& s : t.sinks()) {
        bool inside = false;
        for (rct::NodeId c = s.node; c.valid(); c = t.node(c).parent)
          if (c == v) inside = true;
        if (inside) continue;
        EXPECT_NEAR(inc.noise_with_subtree_decoupled(s.node, v),
                    rep.sinks[t.node(s.node).sink.value()].noise, 1e-12);
      }
    }
  }
}

TEST(Incremental, DecoupledQueryRejectsInsideNodes) {
  const auto f = test::fig3_net();
  const noise::IncrementalNoise inc(f.tree);
  EXPECT_THROW((void)inc.noise_with_subtree_decoupled(f.s1, f.n),
               std::invalid_argument);
}

TEST(Incremental, SingleBufferFixesMatchesNaive) {
  util::Rng rng(914);
  int fixable_nets = 0;
  for (int trial = 0; trial < 10; ++trial) {
    // Small spans: a mix of clean, one-buffer-fixable and unfixable nets.
    auto t = random_net(rng, rng.uniform_int(2, 4), 5000.0);
    seg::segment(t, {500.0});  // mid-wire sites, so one buffer can suffice
    const noise::IncrementalNoise inc(t);
    const auto& b = kLib.at(lib::BufferId{10});  // buf_x24
    bool any = false;
    for (auto v : t.preorder()) {
      const auto& nd = t.node(v);
      if (nd.kind != rct::NodeKind::Internal || !nd.buffer_allowed) continue;
      rct::BufferAssignment a;
      a.place(v, lib::BufferId{10});
      const bool naive = noise::analyze(t, a, kLib).clean();
      EXPECT_EQ(inc.single_buffer_fixes(v, b.resistance, b.noise_margin),
                naive)
          << "trial " << trial << " node " << v;
      any |= naive;
    }
    fixable_nets += any ? 1 : 0;
  }
  // The check must be exercised in both directions across the workload.
  EXPECT_GT(fixable_nets, 0);
  EXPECT_LT(fixable_nets, 10);
}

// Differential stress: the incremental structure is rebuilt after random
// structural and electrical edits and must agree with full re-analysis at
// every node, on 100+ distinct perturbed trees. Guards against any cached
// quantity (currents, prefix resistances, Euler intervals, lifting tables)
// silently assuming the generator's pristine output.
TEST(Incremental, DifferentialAgainstFullRecomputeOnPerturbedTrees) {
  util::Rng rng(20260807);
  for (int trial = 0; trial < 120; ++trial) {
    auto t = random_net(rng, 0, 7000.0);
    const int edits = rng.uniform_int(1, 4);
    for (int e = 0; e < edits; ++e)
      (void)core::apply_perturbation(t, core::random_perturbation(rng, t));
    t.validate();

    const noise::IncrementalNoise inc(t);
    const auto slacks = noise::noise_slacks(t);
    const auto stages =
        rct::decompose(t, rct::BufferAssignment{}, lib::BufferLibrary{});
    ASSERT_EQ(stages.size(), 1u);
    const auto nz = noise::stage_noise(t, stages[0]);
    const auto cur = noise::stage_currents(t, stages[0]);
    for (auto id : t.preorder()) {
      ASSERT_NEAR(inc.noise(id), nz.at(id), 1e-12) << "trial " << trial;
      ASSERT_NEAR(inc.current(id), cur.at(id), 1e-15) << "trial " << trial;
      ASSERT_NEAR(inc.noise_slack(id), slacks.at(id), 1e-12)
          << "trial " << trial;
      // Upstream resistance against a naive parent-chain walk.
      double r = t.driver().resistance;
      for (rct::NodeId c = id; c != t.source(); c = t.node(c).parent)
        r += t.node(c).parent_wire.resistance;
      ASSERT_NEAR(inc.upstream_resistance(id), r, 1e-9)
          << "trial " << trial;
    }
    // Spot-check the LCA-based shared resistance on a random node pair.
    const auto order = t.preorder();
    const auto pick = [&] {
      return order[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(order.size()) - 1))];
    };
    const rct::NodeId a = pick(), b = pick();
    const rct::NodeId l = naive_lca(t, a, b);
    EXPECT_EQ(inc.lca(a, b), l) << "trial " << trial;
    double rc = t.driver().resistance;
    for (rct::NodeId c = l; c != t.source(); c = t.node(c).parent)
      rc += t.node(c).parent_wire.resistance;
    EXPECT_NEAR(inc.common_resistance(a, b), rc, 1e-9) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// core::IncrementalContext: the subtree-memoized DP must answer perturbed
// trees bit-identically to a cold full run on the same tree.

core::VgOptions inc_options() {
  core::VgOptions opt;
  opt.kernel = core::VgKernel::Reference;
  opt.max_buffers = 8;
  return opt;
}

rct::RoutingTree random_dp_net(util::Rng& rng) {
  auto t = random_net(rng, 0, 7000.0);
  t.binarize();
  seg::segment(t, {900.0});
  return t;
}

TEST(IncrementalContext, FirstRunMatchesPlainOptimize) {
  util::Rng rng(20260811);
  for (int trial = 0; trial < 6; ++trial) {
    auto t = random_dp_net(rng);
    core::IncrementalContext ctx(t, kLib, inc_options());
    const auto& got = ctx.optimize();
    const auto want = core::optimize(t, kLib, inc_options());
    ASSERT_TRUE(core::same_solution(got, want)) << "trial " << trial;
    EXPECT_EQ(ctx.stats().last_reused, 0u);
    EXPECT_EQ(ctx.stats().last_recomputed, t.node_count());
    ASSERT_NE(ctx.result(), nullptr);
    EXPECT_TRUE(core::same_solution(*ctx.result(), want));
  }
}

// The extraction guard: the 120-case differential, re-pointed at the
// library API. Random local edits flow through IncrementalContext::apply
// and the memoized re-run must equal a from-scratch core::optimize on the
// perturbed tree — the exact contract the serve layer's PERTURB relies on.
TEST(IncrementalContext, DifferentialAgainstColdRunOnPerturbedTrees) {
  util::Rng rng(20260807);
  std::size_t reused_total = 0;
  for (int trial = 0; trial < 120; ++trial) {
    auto t = random_dp_net(rng);
    core::IncrementalContext ctx(std::move(t), kLib, inc_options());
    (void)ctx.optimize();
    const int edits = rng.uniform_int(1, 4);
    for (int e = 0; e < edits; ++e)
      (void)ctx.apply(core::random_perturbation(rng, ctx.tree()));
    const auto& fast = ctx.optimize();
    reused_total += ctx.stats().last_reused;
    const auto cold = core::optimize(ctx.tree(), kLib, inc_options());
    ASSERT_TRUE(core::same_solution(fast, cold)) << "trial " << trial;
  }
  // Local edits must actually exercise the cache, not recompute the world.
  EXPECT_GT(reused_total, 0u);
}

TEST(IncrementalContext, LocalEditReusesSiblingSubtrees) {
  util::Rng rng(20260812);
  auto t = random_dp_net(rng);
  core::IncrementalContext ctx(std::move(t), kLib, inc_options());
  (void)ctx.optimize();
  // Retune one sink: only its root spine should recompute.
  rct::SinkInfo s = ctx.tree().sink(rct::SinkId{0});
  s.cap *= 1.5;
  ctx.set_sink(rct::SinkId{0}, s);
  (void)ctx.optimize();
  EXPECT_GT(ctx.stats().last_reused, 0u);
  // A cache hit stops recursion, so the run touches only the dirty spine
  // plus its clean-frontier children — far fewer visits than nodes.
  EXPECT_LT(ctx.stats().last_reused + ctx.stats().last_recomputed,
            ctx.tree().node_count());
}

TEST(IncrementalContext, GlobalEditsInvalidateEverything) {
  util::Rng rng(20260813);
  auto t = random_dp_net(rng);
  core::IncrementalContext ctx(std::move(t), kLib, inc_options());
  (void)ctx.optimize();
  ctx.tighten_margins(0.05);
  const auto& got = ctx.optimize();
  EXPECT_EQ(ctx.stats().last_reused, 0u);
  const auto cold = core::optimize(ctx.tree(), kLib, inc_options());
  EXPECT_TRUE(core::same_solution(got, cold));
  ctx.scale_coupling(1.3);
  (void)ctx.optimize();
  EXPECT_EQ(ctx.stats().last_reused, 0u);
}

TEST(IncrementalContext, SplitWireGrowsTreeAndStaysConsistent) {
  util::Rng rng(20260814);
  auto t = random_dp_net(rng);
  core::IncrementalContext ctx(std::move(t), kLib, inc_options());
  (void)ctx.optimize();
  // Find a splittable wire.
  rct::NodeId target;
  for (auto v : ctx.tree().preorder()) {
    if (v == ctx.tree().source()) continue;
    if (ctx.tree().node(v).parent_wire.length > 1.0) {
      target = v;
      break;
    }
  }
  ASSERT_TRUE(target.valid());
  const double len = ctx.tree().node(target).parent_wire.length;
  const std::size_t before = ctx.tree().node_count();
  const rct::NodeId n = ctx.split_wire(target, 0.5 * len);
  ASSERT_TRUE(n.valid());
  EXPECT_EQ(ctx.tree().node_count(), before + 1);
  const auto& got = ctx.optimize();
  const auto cold = core::optimize(ctx.tree(), kLib, inc_options());
  EXPECT_TRUE(core::same_solution(got, cold));
}

TEST(IncrementalContext, InvalidateAllForcesColdRun) {
  util::Rng rng(20260815);
  auto t = random_dp_net(rng);
  core::IncrementalContext ctx(std::move(t), kLib, inc_options());
  const auto first = ctx.optimize();
  ctx.invalidate_all();
  const auto& again = ctx.optimize();
  EXPECT_EQ(ctx.stats().last_reused, 0u);
  EXPECT_EQ(ctx.stats().last_recomputed, ctx.tree().node_count());
  EXPECT_TRUE(core::same_solution(first, again));
  EXPECT_EQ(ctx.stats().runs, 2u);
}

TEST(Incremental, DecouplingNeverIncreasesNoise) {
  util::Rng rng(915);
  auto t = random_net(rng);
  const noise::IncrementalNoise inc(t);
  for (auto v : t.preorder()) {
    if (t.node(v).kind != rct::NodeKind::Internal) continue;
    for (const auto& s : t.sinks()) {
      bool inside = false;
      for (rct::NodeId c = s.node; c.valid(); c = t.node(c).parent)
        if (c == v) inside = true;
      if (inside) continue;
      EXPECT_LE(inc.noise_with_subtree_decoupled(s.node, v),
                inc.noise(s.node) + 1e-15);
    }
  }
}

}  // namespace
