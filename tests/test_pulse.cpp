// Noise pulse-width estimation and width-aware margins.
#include <gtest/gtest.h>

#include "common/test_nets.hpp"
#include "noise/devgan.hpp"
#include "noise/pulse.hpp"
#include "sim/golden.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

const lib::BufferLibrary kLib = lib::default_library();
constexpr double kRise = 0.25 * ns;

TEST(PulseWidth, GrowsWithWireLength) {
  const auto a = noise::pulse_widths(test::long_two_pin(2000.0), {},
                                     lib::BufferLibrary{}, kRise);
  const auto b = noise::pulse_widths(test::long_two_pin(8000.0), {},
                                     lib::BufferLibrary{}, kRise);
  EXPECT_GT(b.sinks[0].width, a.sinks[0].width);
}

TEST(PulseWidth, AtLeastTheAggressorTransition) {
  const auto rep = noise::pulse_widths(test::long_two_pin(500.0), {},
                                       lib::BufferLibrary{}, kRise);
  EXPECT_GE(rep.sinks[0].width, kRise);
}

TEST(PulseWidth, TracksGoldenMeasurementWithinFactorTwo) {
  const auto gopt = sim::golden_options_from(lib::default_technology());
  for (double len : {1500.0, 3000.0, 6000.0, 10000.0}) {
    auto t = test::long_two_pin(len);
    const auto est = noise::pulse_widths(t, {}, lib::BufferLibrary{}, kRise);
    const auto golden = sim::golden_analyze_unbuffered(t, gopt);
    ASSERT_GT(golden.sinks[0].width, 0.0);
    const double ratio = est.sinks[0].width / golden.sinks[0].width;
    EXPECT_GT(ratio, 0.5) << len;
    EXPECT_LT(ratio, 2.5) << len;
  }
}

TEST(PulseWidth, BuffersNarrowThePulse) {
  auto t = test::long_two_pin(8000.0);
  const auto mid = t.split_wire(t.sinks().front().node, 4000.0);
  rct::BufferAssignment a;
  a.place(mid, lib::BufferId{9});
  const auto unbuf = noise::pulse_widths(t, {}, kLib, kRise);
  const auto buf = noise::pulse_widths(t, a, kLib, kRise);
  EXPECT_LT(buf.sinks[0].width, unbuf.sinks[0].width);
}

TEST(PulseWidth, RejectsBadRise) {
  EXPECT_THROW((void)noise::pulse_widths(test::long_two_pin(1000.0), {},
                                         lib::BufferLibrary{}, 0.0),
               std::invalid_argument);
}

TEST(EffectiveMargin, RecoversDcForWidePulses) {
  EXPECT_NEAR(noise::effective_margin(0.8, 50 * ps, 1.0), 0.8, 1e-9);
}

TEST(EffectiveMargin, InflatesForNarrowPulses) {
  const double nm = noise::effective_margin(0.8, 100 * ps, 100 * ps);
  EXPECT_NEAR(nm, 1.6, 1e-12);
  EXPECT_GT(noise::effective_margin(0.8, 100 * ps, 50 * ps), nm);
}

TEST(EffectiveMargin, MonotoneInWidth) {
  double prev = 1e9;
  for (double w : {50 * ps, 100 * ps, 300 * ps, 1000 * ps}) {
    const double nm = noise::effective_margin(0.8, 80 * ps, w);
    EXPECT_LT(nm, prev);
    prev = nm;
  }
}

TEST(WidthAware, NeverMoreViolationsThanAmplitudeOnly) {
  for (double len : {3000.0, 5000.0, 8000.0, 12000.0}) {
    auto t = test::long_two_pin(len);
    const auto amp = noise::analyze_unbuffered(t);
    const auto w = noise::pulse_widths(t, {}, lib::BufferLibrary{}, kRise);
    const auto strict = noise::width_aware_violations(amp, w, 0.0);
    const auto relaxed = noise::width_aware_violations(amp, w, 120 * ps);
    EXPECT_EQ(strict, amp.violation_count) << len;  // tau=0: same rule
    EXPECT_LE(relaxed, strict) << len;
  }
}

TEST(WidthAware, MarginalAmplitudeViolationForgivenWhenNarrow) {
  // Find a length whose amplitude barely exceeds 0.8 V; a realistic gate
  // time constant then forgives it.
  auto t = test::long_two_pin(3100.0);  // just past the ~2.94 mm threshold
  const auto amp = noise::analyze_unbuffered(t);
  ASSERT_GT(amp.violation_count, 0u);
  ASSERT_LT(amp.sinks[0].noise, 1.1);
  const auto w = noise::pulse_widths(t, {}, lib::BufferLibrary{}, kRise);
  EXPECT_EQ(noise::width_aware_violations(amp, w, 200 * ps), 0u);
}

TEST(WidthAware, RejectsMismatchedReports) {
  auto t1 = test::long_two_pin(2000.0);
  auto t2 = test::fig3_net().tree;
  const auto amp = noise::analyze_unbuffered(t1);
  const auto w = noise::pulse_widths(t2, {}, lib::BufferLibrary{}, kRise);
  EXPECT_THROW((void)noise::width_aware_violations(amp, w, 0.0),
               std::invalid_argument);
}

TEST(GoldenWidth, MeasuredWidthPositiveAndSane) {
  const auto gopt = sim::golden_options_from(lib::default_technology());
  auto t = test::long_two_pin(5000.0);
  const auto rep = sim::golden_analyze_unbuffered(t, gopt);
  EXPECT_GT(rep.sinks[0].width, 0.1 * kRise);
  EXPECT_LT(rep.sinks[0].width, 100 * kRise);
}

}  // namespace
