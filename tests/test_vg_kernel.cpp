// Fast-kernel pinning tests (PR 2).
//
//  * Differential: the fast kernel (sort-free pruning, lazy wire offsets,
//    read views, pooled lists) must produce bit-identical VgResults to the
//    reference (seed) kernel — same slack bits, same buffer placements,
//    same wire widths, same per_count table, same legacy DP counters —
//    across generated single- and multi-sink nets, with and without noise
//    constraints, wire sizing, buffer costs, and slew limits. The default
//    library mixes inverting and non-inverting types, so polarity buckets
//    are always exercised.
//  * Property: with VgOptions::check_invariants the fast kernel re-verifies
//    after every DP step that each candidate list is sorted by (load asc,
//    slack desc), forms a strict Pareto staircase, and carries no dead
//    candidate; any violation throws and fails the test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/test_nets.hpp"
#include "common/vg_compare.hpp"
#include "core/vanginneken.hpp"
#include "core/vg_kernel.hpp"
#include "lib/wire.hpp"
#include "netgen/netgen.hpp"
#include "seg/segment.hpp"
#include "steiner/builders.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

const lib::BufferLibrary kLib = lib::default_library();

core::VgResult run_kernel(const rct::RoutingTree& segmented,
                          core::VgOptions opt, core::VgKernel kernel) {
  opt.kernel = kernel;
  return core::optimize(segmented, kLib, opt);
}

// Bit-identity comparison (sorted_entries/expect_identical) lives in
// common/vg_compare.hpp, shared with test_library_kernel.
using test::expect_identical;

// The six option variants cycled over the workload. Every variant keeps
// check_invariants on for the fast run, so the differential sweep doubles
// as the largest property-test corpus.
core::VgOptions variant(std::size_t which) {
  core::VgOptions opt;
  opt.check_invariants = true;
  switch (which % 6) {
    case 0:  // BuffOpt shape: noise-constrained, best slack
      break;
    case 1:  // DelayOpt baseline
      opt.noise_constraints = false;
      break;
    case 2:  // Problem 3 objective
      opt.objective = core::VgObjective::MinBuffersMeetingConstraints;
      break;
    case 3:  // simultaneous wire sizing (the sorting fork path)
      opt.wire_widths = lib::default_wire_widths();
      break;
    case 4:  // Lillis buffer costs: bucket index = total cost
      opt.buffer_costs.assign(kLib.size(), 1);
      for (std::size_t i = 0; i < opt.buffer_costs.size(); i += 2)
        opt.buffer_costs[i] = 2;
      break;
    case 5:  // slew-limited, delay-only
      opt.noise_constraints = false;
      opt.max_slew = 150.0 * ps;
      break;
  }
  return opt;
}

void check_net(const rct::RoutingTree& net, const core::VgOptions& opt) {
  rct::RoutingTree segmented = net;
  seg::segment(segmented, {500.0});
  const auto fast = run_kernel(segmented, opt, core::VgKernel::Fast);
  const auto ref = run_kernel(segmented, opt, core::VgKernel::Reference);
  expect_identical(fast, ref);
}

TEST(VgKernel, DifferentialBitIdenticalOnGeneratedMultiSinkNets) {
  // >= 200 generated nets through the full option cycle. The testbench
  // mirrors the paper's workload: mostly few-sink nets with a tail to ~20
  // sinks, millimeter spans, noise margins on every pin.
  netgen::TestbenchOptions gen;
  gen.net_count = 204;
  gen.seed = 77031;
  const auto nets = netgen::generate_testbench(kLib, gen);
  ASSERT_EQ(nets.size(), 204u);
  std::size_t multi = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    SCOPED_TRACE(nets[i].name + " variant " + std::to_string(i % 6));
    if (nets[i].sink_count > 1) ++multi;
    check_net(nets[i].tree, variant(i));
  }
  EXPECT_GT(multi, 50u);  // the workload genuinely exercises merges
}

TEST(VgKernel, DifferentialBitIdenticalOnSingleSinkChains) {
  // Long two-pin chains are the deepest lazy-offset/insertion pipelines:
  // one candidate-list flush per 500 µm site.
  util::Rng rng(90210);
  for (int trial = 0; trial < 24; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto net = test::long_two_pin(rng.uniform(3000.0, 20000.0),
                                        rng.uniform(60.0, 380.0));
    check_net(net, variant(static_cast<std::size_t>(trial)));
  }
}

TEST(VgKernel, InvariantCheckedOnPaperExample) {
  // The worked Fig. 3 net with invariant checking on; also pins the known
  // qualitative outcome so the assertions run on a meaningful DP.
  auto net = test::fig3_net().tree;
  core::VgOptions opt;
  opt.check_invariants = true;
  rct::RoutingTree segmented = net;
  seg::segment(segmented, {500.0});
  const auto fast = run_kernel(segmented, opt, core::VgKernel::Fast);
  const auto ref = run_kernel(segmented, opt, core::VgKernel::Reference);
  expect_identical(fast, ref);
  EXPECT_TRUE(fast.feasible);
}

TEST(VgKernel, FastKernelCountersReportSortFreeOperation) {
  const auto net = test::long_two_pin(12000.0);
  rct::RoutingTree segmented = net;
  seg::segment(segmented, {500.0});

  core::VgOptions opt;  // unsized: no sort should ever run
  const auto fast = run_kernel(segmented, opt, core::VgKernel::Fast);
  EXPECT_GT(fast.stats.prune_calls, 0u);
  EXPECT_EQ(fast.stats.prune_sorts, 0u);
  EXPECT_EQ(fast.stats.prune_sorts_skipped, fast.stats.prune_calls);
  EXPECT_GT(fast.stats.offset_flushes, 0u);
  EXPECT_GT(fast.stats.snapshot_cands_avoided, 0u);

  const auto ref = run_kernel(segmented, opt, core::VgKernel::Reference);
  EXPECT_GT(ref.stats.prune_calls, 0u);
  EXPECT_EQ(ref.stats.prune_sorts, ref.stats.prune_calls);
  EXPECT_EQ(ref.stats.prune_sorts_skipped, 0u);
  EXPECT_EQ(ref.stats.offset_flushes, 0u);
  EXPECT_EQ(ref.stats.snapshot_cands_avoided, 0u);

  // Wire sizing is the one path where the fast kernel still sorts.
  core::VgOptions sizing;
  sizing.wire_widths = lib::default_wire_widths();
  const auto sized = run_kernel(segmented, sizing, core::VgKernel::Fast);
  EXPECT_GT(sized.stats.prune_sorts, 0u);

  // Merge-heavy trees recycle candidate-list buffers through the pool (a
  // pure chain never returns a buffer, so this needs real branching), and
  // the cascaded run merge keeps even those nets sort-free.
  auto branchy = steiner::make_balanced_tree(4, 900.0, test::default_driver(),
                                             test::default_sink(),
                                             lib::default_technology());
  seg::segment(branchy, {500.0});
  const auto merged = run_kernel(branchy, opt, core::VgKernel::Fast);
  EXPECT_GT(merged.stats.merged, 0u);
  EXPECT_GT(merged.stats.pool_reuses, 0u);
  EXPECT_EQ(merged.stats.prune_sorts, 0u);
}

TEST(VgKernel, CorruptedCandidateListIsCaughtByPromotedChecks) {
  // detail::verify_cand_list is the structural check both kernels run after
  // each DP step (at contract level 2 or with check_invariants); feed it
  // deliberately corrupted lists and expect each corruption to be named.
  core::VgOptions opt;  // noise constraints and pruning default on

  core::detail::CandList good;
  good.push_back({1.0, 2.0, 0.0, 0.5, 0.0, nullptr});
  good.push_back({2.0, 3.0, 0.0, 0.6, 0.0, nullptr});
  EXPECT_NO_THROW(core::detail::verify_cand_list(good, opt));

  // Lost (load asc, slack desc) sort order.
  core::detail::CandList unsorted = good;
  std::swap(unsorted[0], unsorted[1]);
  EXPECT_THROW(core::detail::verify_cand_list(unsorted, opt),
               std::logic_error);

  // Sorted, but a dominated survivor: load rises while slack falls, so the
  // strict Pareto staircase is broken.
  core::detail::CandList dominated = good;
  dominated[1].slack = 1.0;
  EXPECT_THROW(core::detail::verify_cand_list(dominated, opt),
               std::logic_error);
  // ...unless dominance pruning was disabled (ablation mode).
  core::VgOptions unpruned = opt;
  unpruned.prune_candidates = false;
  EXPECT_NO_THROW(core::detail::verify_cand_list(dominated, unpruned));

  // A dead candidate (negative noise slack) under noise constraints.
  core::detail::CandList dead = good;
  dead[1].noise_slack = -0.1;
  EXPECT_THROW(core::detail::verify_cand_list(dead, opt), std::logic_error);
  // ...which is legal in DelayOpt mode (noise ignored).
  core::VgOptions delayopt = opt;
  delayopt.noise_constraints = false;
  EXPECT_NO_THROW(core::detail::verify_cand_list(dead, delayopt));
}

}  // namespace
