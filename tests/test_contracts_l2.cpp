// Contract macros at level 2 (the Debug/sanitizer default): everything
// level 1 provides plus NBUF_INVARIANT and the NBUF_STRUCTURAL_CHECKS
// block gate. The level is forced per-TU below; see test_contracts_l1.cpp
// for why that is safe.
#undef NBUF_CONTRACTS
#define NBUF_CONTRACTS 2
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace {

using nbuf::util::ctx;

static_assert(NBUF_STRUCTURAL_CHECKS == 1,
              "level 2 must enable structural-check blocks");

TEST(ContractsL2, InvariantThrowsLogicErrorWithLocation) {
  EXPECT_THROW(NBUF_INVARIANT(false), std::logic_error);
  try {
    NBUF_INVARIANT_CTX(2 + 2 == 5, ctx("i", 4, "claims", 2));
    FAIL() << "expected a contract violation";
  } catch (const std::logic_error& e) {
    const std::string w = e.what();
    EXPECT_NE(
        w.find("structural invariant failed: NBUF_INVARIANT(2 + 2 == 5"),
        std::string::npos)
        << w;
    EXPECT_NE(w.find("test_contracts_l2.cpp:"), std::string::npos) << w;
    EXPECT_NE(w.find("[i=4 claims=2]"), std::string::npos) << w;
  }
  EXPECT_THROW(NBUF_INVARIANT_MSG(false, "staircase broken"),
               std::logic_error);
  NBUF_INVARIANT(true);  // passing invariant is silent
}

TEST(ContractsL2, RequireAndAssertStayLive) {
  EXPECT_THROW(NBUF_REQUIRE(false), std::invalid_argument);
  EXPECT_THROW(NBUF_ASSERT(false), std::logic_error);
}

TEST(ContractsL2, StructuralBlockRunsAtLevelTwo) {
  int runs = 0;
  if (NBUF_STRUCTURAL_CHECKS != 0) ++runs;
  EXPECT_EQ(runs, 1);
}

using ContractsL2Death = testing::Test;

TEST(ContractsL2Death, RequireAcrossNoexceptTerminates) {
  EXPECT_DEATH(
      []() noexcept { NBUF_REQUIRE_MSG(false, "l2-require-dies"); }(),
      "l2-require-dies");
}

TEST(ContractsL2Death, AssertAcrossNoexceptTerminates) {
  EXPECT_DEATH([]() noexcept { NBUF_ASSERT_MSG(false, "l2-assert-dies"); }(),
               "l2-assert-dies");
}

TEST(ContractsL2Death, InvariantAcrossNoexceptTerminates) {
  EXPECT_DEATH(
      []() noexcept { NBUF_INVARIANT_MSG(false, "l2-invariant-dies"); }(),
      "l2-invariant-dies");
}

}  // namespace
