// The linter lints itself — unit tests for tools/lint/ (the shared lexer
// and the token-sequence rule engine behind nbuf_lint).
//
// The fixture corpus in tests/data/lint/ carries one seeded violation and
// one clean (or suppressed) file per rule; each seeded finding is asserted
// at its exact file:line. Two fixtures pin the v1 regressions that
// motivated the lexer: raw-string blindness (raw_string_regression.cpp)
// and suppression markers honored inside string literals
// (suppression_in_string.cpp). Fixtures are linted, never compiled, so
// they may reference headers that do not exist.
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace {

using nbuf::lint::FileInput;
using nbuf::lint::Finding;
using nbuf::lint::lex;
using nbuf::lint::lint_file;
using nbuf::lint::Tok;
using nbuf::lint::Token;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(NBUF_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Lints one fixture as if it lived at `rel_path` inside the repo (the
// rule engine gates on the repo-relative path, exactly like the driver).
std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& rel_path) {
  FileInput in;
  in.rel_path = rel_path;
  in.content = read_fixture(name);
  return lint_file(in);
}

// Every expected (line, rule) pair must be reported, in order, and
// nothing else — fixture findings are exact, not a subset.
void expect_findings(
    const std::vector<Finding>& got,
    const std::vector<std::pair<std::size_t, std::string>>& want) {
  ASSERT_EQ(got.size(), want.size()) << [&] {
    std::ostringstream ss;
    for (const Finding& f : got)
      ss << "  " << f.file << ":" << f.line << ": " << f.rule << "\n";
    return ss.str();
  }();
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].line, want[i].first) << "finding " << i;
    EXPECT_EQ(got[i].rule, want[i].second) << "finding " << i;
  }
}

// ---- lexer ---------------------------------------------------------------

std::vector<Token> tokens_of_kind(const std::vector<Token>& ts, Tok kind) {
  std::vector<Token> out;
  for (const Token& t : ts)
    if (t.kind == kind) out.push_back(t);
  return out;
}

TEST(LintLexer, RawStringIsOneTokenAndLinesAdvance) {
  const auto ts = lex("auto s = R\"x(line one\nline two)x\";\nint y;\n");
  const auto strings = tokens_of_kind(ts, Tok::String);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "R\"x(line one\nline two)x\"");
  EXPECT_EQ(strings[0].line, 1u);
  // The newline inside the raw string still counts: `int` is on line 3.
  bool saw_int = false;
  for (const Token& t : ts)
    if (t.kind == Tok::Identifier && t.text == "int") {
      saw_int = true;
      EXPECT_EQ(t.line, 3u);
    }
  EXPECT_TRUE(saw_int);
}

TEST(LintLexer, RawStringPrefixesFoldIntoTheToken) {
  const auto ts = lex("const char* p = u8R\"(a)\";");
  const auto strings = tokens_of_kind(ts, Tok::String);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "u8R\"(a)\"");
}

TEST(LintLexer, EscapedQuoteDoesNotEndTheString) {
  const auto ts = lex("const char* p = \"a\\\"b\"; int q;");
  const auto strings = tokens_of_kind(ts, Tok::String);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "\"a\\\"b\"");
  bool saw_q = false;
  for (const Token& t : ts)
    if (t.kind == Tok::Identifier && t.text == "q") saw_q = true;
  EXPECT_TRUE(saw_q);
}

TEST(LintLexer, UnterminatedStringEndsAtNewline) {
  const auto ts = lex("\"abc\nint x;");
  const auto strings = tokens_of_kind(ts, Tok::String);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "\"abc");
  bool saw_int = false;
  for (const Token& t : ts)
    if (t.kind == Tok::Identifier && t.text == "int") {
      saw_int = true;
      EXPECT_EQ(t.line, 2u);
    }
  EXPECT_TRUE(saw_int);
}

TEST(LintLexer, BlockCommentSpansLinesKeepsStartLine) {
  const auto ts = lex("/* a\nb\nc */ int x;");
  const auto comments = tokens_of_kind(ts, Tok::Comment);
  ASSERT_EQ(comments.size(), 1u);
  EXPECT_EQ(comments[0].line, 1u);
  for (const Token& t : ts)
    if (t.kind == Tok::Identifier && t.text == "int") {
      EXPECT_EQ(t.line, 3u);
    }
}

TEST(LintLexer, DigitSeparatorsStayInOneNumber) {
  const auto ts = lex("long x = 1'000'000;");
  const auto numbers = tokens_of_kind(ts, Tok::Number);
  ASSERT_EQ(numbers.size(), 1u);
  EXPECT_EQ(numbers[0].text, "1'000'000");
}

TEST(LintLexer, ScopeAndArrowAreSingleTokens) {
  const auto ts = lex("a::b->c >> d");
  std::vector<std::string> puncts;
  for (const Token& t : ts)
    if (t.kind == Tok::Punct) puncts.push_back(std::string(t.text));
  // '>' stays single so template-angle depth counting is uniform.
  const std::vector<std::string> want = {"::", "->", ">", ">"};
  EXPECT_EQ(puncts, want);
}

TEST(LintLexer, DirectiveFlagCoversContinuationLines) {
  const auto ts = lex("#define M(a) \\\n  (a + 1)\nint y;");
  for (const Token& t : ts) {
    // The backslash continuation keeps line 2 inside the directive;
    // line 3 is ordinary code again.
    if (t.line <= 2)
      EXPECT_TRUE(t.in_directive) << "token '" << t.text << "'";
    else
      EXPECT_FALSE(t.in_directive) << "token '" << t.text << "'";
  }
}

TEST(LintLexer, CharLiteralsWithEscapes) {
  const auto ts = lex("char c = 'x'; char n = '\\n';");
  const auto chars = tokens_of_kind(ts, Tok::CharLit);
  ASSERT_EQ(chars.size(), 2u);
  EXPECT_EQ(chars[0].text, "'x'");
  EXPECT_EQ(chars[1].text, "'\\n'");
}

// ---- rule fixtures: one seeded + one clean per rule ----------------------

TEST(LintRules, SortSeeded) {
  expect_findings(lint_fixture("sort_bad.cpp", "src/io/fixture.cpp"),
                  {{5, "sort"}});
}
TEST(LintRules, SortSuppressed) {
  expect_findings(lint_fixture("sort_clean.cpp", "src/io/fixture.cpp"), {});
}
TEST(LintRules, SortWhitelistedKernelFile) {
  // The reference kernel keeps its textbook std::sort without a marker.
  expect_findings(lint_fixture("sort_bad.cpp", "src/core/vanginneken.cpp"),
                  {});
}

TEST(LintRules, NakedNewSeeded) {
  expect_findings(lint_fixture("naked_new_bad.cpp", "src/io/fixture.cpp"),
                  {{3, "naked-new"}, {4, "naked-new"}, {5, "naked-new"}});
}
TEST(LintRules, NakedNewCleanDeletedMembers) {
  expect_findings(lint_fixture("naked_new_clean.cpp", "src/io/fixture.cpp"),
                  {});
}

TEST(LintRules, IostreamSeeded) {
  expect_findings(lint_fixture("iostream_bad.cpp", "src/io/fixture.cpp"),
                  {{1, "iostream"}});
}
TEST(LintRules, IostreamCleanInCommentAndString) {
  expect_findings(lint_fixture("iostream_clean.cpp", "src/io/fixture.cpp"),
                  {});
}
TEST(LintRules, IostreamAllowedOutsideSrc) {
  expect_findings(lint_fixture("iostream_bad.cpp", "tools/fixture.cpp"), {});
}

TEST(LintRules, PragmaOnceSeeded) {
  expect_findings(lint_fixture("pragma_once_bad.hpp", "src/util/fixture.hpp"),
                  {{1, "pragma-once"}});
}
TEST(LintRules, PragmaOnceClean) {
  expect_findings(
      lint_fixture("pragma_once_clean.hpp", "src/util/fixture.hpp"), {});
}

TEST(LintRules, NoFloatSeeded) {
  expect_findings(lint_fixture("no_float_bad.cpp", "src/noise/fixture.cpp"),
                  {{2, "no-float"}, {2, "no-float"}});
}
TEST(LintRules, NoFloatCleanInCommentAndString) {
  expect_findings(lint_fixture("no_float_clean.cpp", "src/noise/fixture.cpp"),
                  {});
}
TEST(LintRules, NoFloatOnlyGatesNumericDirs) {
  expect_findings(lint_fixture("no_float_bad.cpp", "src/io/fixture.cpp"), {});
}

TEST(LintRules, UnorderedIterSeeded) {
  expect_findings(
      lint_fixture("unordered_iter_bad.cpp", "src/rct/fixture.cpp"),
      {{9, "unordered-iter"}, {10, "unordered-iter"}});
}
TEST(LintRules, UnorderedIterCleanLookupsAndOrderedMap) {
  expect_findings(
      lint_fixture("unordered_iter_clean.cpp", "src/rct/fixture.cpp"), {});
}
TEST(LintRules, UnorderedIterSeesSiblingHeaderMembers) {
  FileInput in;
  in.rel_path = "src/x/registry.cpp";
  in.header_content =
      "#pragma once\n#include <unordered_map>\n"
      "struct Registry { std::unordered_map<int, int> members; };\n";
  in.content =
      "#include \"registry.hpp\"\n"
      "int sum(const Registry& r) {\n"
      "  int s = 0;\n"
      "  for (const auto& kv : r.members) s += kv.second;\n"
      "  return s;\n"
      "}\n";
  expect_findings(lint_file(in), {{4, "unordered-iter"}});
}

TEST(LintRules, RawLockSeeded) {
  expect_findings(
      lint_fixture("raw_lock_bad.cpp", "src/serve/fixture.cpp"),
      {{4, "raw-lock"}, {6, "raw-lock"}, {9, "raw-lock"}, {11, "raw-lock"}});
}
TEST(LintRules, RawLockCleanScopedGuard) {
  expect_findings(lint_fixture("raw_lock_clean.cpp", "src/serve/fixture.cpp"),
                  {});
}
TEST(LintRules, RawLockExemptsTheAnnotationHeader) {
  // util::Mutex itself wraps std::mutex; the wrapper is the one place
  // allowed to touch the raw primitive.
  expect_findings(
      lint_fixture("raw_lock_bad.cpp", "src/util/thread_annotations.hpp"),
      {{1, "pragma-once"}});  // .hpp fixture reuse; only the header rule
}

TEST(LintRules, WallclockSeeded) {
  expect_findings(
      lint_fixture("wallclock_bad.cpp", "src/core/fixture.cpp"),
      {{5, "wallclock-in-core"}, {7, "wallclock-in-core"}});
}
TEST(LintRules, WallclockSuppressedAndMemberCallsIgnored) {
  expect_findings(lint_fixture("wallclock_clean.cpp", "src/core/fixture.cpp"),
                  {});
}
TEST(LintRules, WallclockOnlyGatesTheNumericCore) {
  expect_findings(lint_fixture("wallclock_bad.cpp", "src/obs/fixture.cpp"),
                  {});
}

TEST(LintRules, UncheckedSimdSeeded) {
  // Both spellings: the #pragma directive (with and without clauses) and
  // the _Pragma operator form a wrapper macro expands to.
  expect_findings(lint_fixture("unchecked_simd_bad.cpp", "src/obs/fixture.cpp"),
                  {{3, "unchecked-simd"},
                   {7, "unchecked-simd"},
                   {11, "unchecked-simd"}});
}
TEST(LintRules, UncheckedSimdCleanCommentsStringsAndSuppression) {
  expect_findings(
      lint_fixture("unchecked_simd_clean.cpp", "src/obs/fixture.cpp"), {});
}
TEST(LintRules, UncheckedSimdExemptsTheSweepHome) {
  // src/core/soa_sweeps.hpp is where the audited sweeps live; the same
  // pragmas are fine there (and outside src/ entirely).
  expect_findings(
      lint_fixture("unchecked_simd_bad.cpp", "src/core/soa_sweeps.hpp"),
      {{1, "pragma-once"}});  // .cpp fixture at a .hpp path; header rule only
  expect_findings(
      lint_fixture("unchecked_simd_bad.cpp", "bench/fixture.cpp"), {});
}

TEST(LintRules, MutableGlobalSeeded) {
  expect_findings(
      lint_fixture("mutable_global_bad.cpp", "src/obs/fixture.cpp"),
      {{3, "mutable-global"}, {5, "mutable-global"}});
}
TEST(LintRules, MutableGlobalCleanConstantsTypesFunctions) {
  expect_findings(
      lint_fixture("mutable_global_clean.cpp", "src/obs/fixture.cpp"), {});
}

// ---- v1 regressions ------------------------------------------------------

TEST(LintRegression, RawStringContentIsNotCode) {
  // The std::sort inside the raw string must not be flagged; the marker
  // inside it must not suppress; the real call after it is at line 12.
  expect_findings(
      lint_fixture("raw_string_regression.cpp", "src/io/fixture.cpp"),
      {{12, "sort"}});
}

TEST(LintRegression, AllowMarkerInStringLiteralDoesNotSuppress) {
  // Line 8 carries the marker in a string literal — still flagged.
  // Line 9 carries it in a trailing comment — suppressed.
  expect_findings(
      lint_fixture("suppression_in_string.cpp", "src/io/fixture.cpp"),
      {{8, "sort"}});
}

}  // namespace
