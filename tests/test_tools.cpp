// First test coverage for the nbuf_cli entry points (tools/cli_app.cpp):
// runs the real argv-driven pipelines in-process on examples/nets/*.net and
// on netgen batches, asserting exit status and parseable output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_app.hpp"

namespace {

std::string example(const char* name) {
  return std::string(NBUF_EXAMPLES_DIR) + "/" + name;
}

struct CliRun {
  int exit_code = 0;
  std::string out;  // captured stdout (stderr is left alone)
};

CliRun run_cli(std::vector<std::string> args) {
  args.insert(args.begin(), "nbuf_cli");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  testing::internal::CaptureStdout();
  CliRun r;
  r.exit_code =
      nbuf::cli::cli_main(static_cast<int>(argv.size()), argv.data());
  r.out = testing::internal::GetCapturedStdout();
  return r;
}

// The numeric value following `prefix` on the first line containing it;
// fails the test when absent.
double number_after(const std::string& out, const std::string& prefix) {
  const auto pos = out.find(prefix);
  EXPECT_NE(pos, std::string::npos) << "missing '" << prefix << "' in:\n"
                                    << out;
  if (pos == std::string::npos) return 0.0;
  return std::stod(out.substr(pos + prefix.size()));
}

TEST(Cli, BuffOptCleansLongTwoPin) {
  const CliRun r = run_cli({example("long_two_pin.net")});
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("buffopt: inserted"), std::string::npos) << r.out;
  EXPECT_GE(number_after(r.out, "buffopt: inserted"), 1.0);
  // "noise after:" reports zero violations for a clean result.
  EXPECT_EQ(number_after(r.out, "noise after:"), 0.0);
}

TEST(Cli, AnalyzeReportsBothEngines) {
  const CliRun r =
      run_cli({example("explicit_wires.net"), "--mode", "analyze"});
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("devgan metric:"), std::string::npos);
  EXPECT_NE(r.out.find("elmore timing:"), std::string::npos);
  EXPECT_EQ(number_after(r.out, "devgan metric:"), 0.0);
}

TEST(Cli, AnalyzeFlagsUnbufferedViolations) {
  // The same net that buffopt fixes must report violations untreated.
  const CliRun r =
      run_cli({example("long_two_pin.net"), "--mode", "analyze"});
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_GE(number_after(r.out, "devgan metric:"), 1.0);
}

TEST(Cli, NoiseModeRunsAlgorithm2) {
  const CliRun r = run_cli({example("control_tree.net"), "--mode", "noise"});
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("algorithm 2: inserted"), std::string::npos);
}

TEST(Cli, DelayOptWithSizingReportsWidenedWires) {
  const CliRun r = run_cli({example("long_two_pin.net"), "--mode",
                            "delayopt", "--max-buffers", "3",
                            "--wire-sizing"});
  EXPECT_NE(r.out.find("delayopt: inserted"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("timing after:"), std::string::npos);
}

TEST(Cli, WritesReadableOutputFile) {
  const std::string out_file = testing::TempDir() + "test_tools_out.net";
  const CliRun w = run_cli({example("long_two_pin.net"), "-o", out_file});
  EXPECT_EQ(w.exit_code, 0) << w.out;
  EXPECT_NE(w.out.find("wrote " + out_file), std::string::npos);
  const CliRun r = run_cli({out_file, "--mode", "analyze"});
  EXPECT_EQ(r.exit_code, 0) << r.out;  // buffered net analyzes clean
  std::remove(out_file.c_str());
}

TEST(Cli, UsageAndInputErrorsExitTwo) {
  EXPECT_EQ(run_cli({}).exit_code, 2);
  EXPECT_EQ(run_cli({example("long_two_pin.net"), "--mode", "bogus"})
                .exit_code,
            2);
  EXPECT_EQ(run_cli({example("long_two_pin.net"), "--frobnicate"})
                .exit_code,
            2);
  EXPECT_EQ(run_cli({"/nonexistent/definitely_missing.net"}).exit_code, 2);
}

TEST(Cli, MalformedNumericOptionsExitTwo) {
  // std::stoul would wrap "-5" to a huge count and std::stod would throw
  // out of main on "abc"; both must instead be usage errors (exit 2).
  const std::string net = example("long_two_pin.net");
  EXPECT_EQ(run_cli({net, "--max-buffers", "-5"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--max-buffers", "abc"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--max-buffers", "3x"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--max-buffers", "0"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--segment", "abc"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--segment", "nan"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--segment", "-100"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--segment", "0"}).exit_code,
            nbuf::cli::kExitUsage);
}

TEST(Cli, BatchNetgenReportsThroughputAndStats) {
  const CliRun r = run_cli({"batch", "--netgen", "5", "--seed", "21",
                            "--threads", "2", "--stats"});
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("batch: 5 nets, 2 thread(s), mode buffopt"),
            std::string::npos)
      << r.out;
  EXPECT_GT(number_after(r.out, "throughput: "), 0.0);
  EXPECT_NE(r.out.find("noise after:"), std::string::npos);
  EXPECT_NE(r.out.find("timing after:"), std::string::npos);
  EXPECT_NE(r.out.find("vgstats: generated "), std::string::npos);
}

TEST(Cli, BatchDelayOptMode) {
  const CliRun r = run_cli({"batch", "--netgen", "3", "--seed", "2",
                            "--mode", "delayopt", "--max-buffers", "6"});
  // DelayOpt ignores noise, so the exit code may be 0 or 1; the run itself
  // must complete and report.
  EXPECT_LE(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("mode delayopt"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("solutions:"), std::string::npos);
}

TEST(Cli, BatchUsageErrors) {
  // No workload source.
  EXPECT_EQ(run_cli({"batch"}).exit_code, 2);
  // Both sources at once.
  EXPECT_EQ(run_cli({"batch", "--netgen", "3", "--dir", "/tmp"}).exit_code,
            2);
  // Directory that does not exist.
  EXPECT_EQ(run_cli({"batch", "--dir", "/nonexistent/nets"}).exit_code, 2);
  // Unknown mode.
  EXPECT_EQ(
      run_cli({"batch", "--netgen", "3", "--mode", "bogus"}).exit_code, 2);
  // Negative or non-numeric counts must not wrap via stoul.
  EXPECT_EQ(run_cli({"batch", "--netgen", "-5"}).exit_code, 2);
  EXPECT_EQ(run_cli({"batch", "--netgen", "abc"}).exit_code, 2);
  EXPECT_EQ(run_cli({"batch", "--netgen", "3", "--seed", "-1"}).exit_code,
            2);
  EXPECT_EQ(
      run_cli({"batch", "--netgen", "3", "--threads", "-2"}).exit_code, 2);
  EXPECT_EQ(
      run_cli({"batch", "--netgen", "3", "--max-buffers", "-1"}).exit_code,
      2);
  EXPECT_EQ(run_cli({"batch", "--netgen", "3", "--segment", "-10"})
                .exit_code,
            2);
}

TEST(Cli, SignoffCleanWorkloadExitsZero) {
  const CliRun r = run_cli({"signoff", "--netgen", "6", "--seed", "7",
                            "--threads", "2"});
  EXPECT_EQ(r.exit_code, nbuf::cli::kExitClean) << r.out;
  EXPECT_NE(r.out.find("signoff: 6 nets"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verdict: PASS"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("(bound held)"), std::string::npos) << r.out;
  EXPECT_GT(number_after(r.out, "pessimism ratio:"), 0.0);
}

TEST(Cli, SignoffViolationsExitOneNotTwo) {
  // One buffer in delayopt mode leaves noise violations on long nets; the
  // tool must report them via exit 1 — distinct from usage errors (2).
  const CliRun r = run_cli({"signoff", "--netgen", "10", "--seed", "3",
                            "--mode", "delayopt", "--max-buffers", "1"});
  EXPECT_EQ(r.exit_code, nbuf::cli::kExitViolations) << r.out;
  EXPECT_NE(r.out.find("verdict: FAIL"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("golden_noise"), std::string::npos) << r.out;
}

TEST(Cli, SignoffToleranceFlagsRelabelViolations) {
  // A noise grace voltage big enough to absorb every excursion flips the
  // FAIL run above to PASS without touching the measurements.
  const CliRun r = run_cli({"signoff", "--netgen", "10", "--seed", "3",
                            "--mode", "delayopt", "--max-buffers", "1",
                            "--tol-noise", "1800", "--tol-timing", "1e9"});
  EXPECT_EQ(r.exit_code, nbuf::cli::kExitClean) << r.out;
  EXPECT_NE(r.out.find("verdict: PASS"), std::string::npos) << r.out;
}

TEST(Cli, SignoffWritesJsonReport) {
  const std::string json_file = testing::TempDir() + "test_tools_signoff.json";
  const CliRun r = run_cli({"signoff", "--netgen", "4", "--seed", "7",
                            "--json", json_file});
  EXPECT_EQ(r.exit_code, nbuf::cli::kExitClean) << r.out;
  EXPECT_NE(r.out.find("wrote " + json_file), std::string::npos) << r.out;
  std::string json;
  {
    std::ifstream in(json_file);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    json = ss.str();
  }
  EXPECT_NE(json.find("\"schema\":\"nbuf-signoff-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"nets\":4"), std::string::npos);
  EXPECT_NE(json.find("\"pass\":true"), std::string::npos);
  std::remove(json_file.c_str());
}

TEST(Cli, SignoffUsageErrorsExitTwo) {
  // No workload source.
  EXPECT_EQ(run_cli({"signoff"}).exit_code, nbuf::cli::kExitUsage);
  // Unknown option.
  EXPECT_EQ(run_cli({"signoff", "--netgen", "3", "--frobnicate"}).exit_code,
            nbuf::cli::kExitUsage);
  // Signoff-only flags are rejected by plain batch.
  EXPECT_EQ(run_cli({"batch", "--netgen", "3", "--tol-noise", "5"})
                .exit_code,
            nbuf::cli::kExitUsage);
  // Unwritable JSON path.
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--json",
                     "/nonexistent/dir/report.json"})
                .exit_code,
            nbuf::cli::kExitUsage);
  // Out-of-range or malformed tolerances.
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--tol-noise", "-1"})
                .exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--tol-timing", "-0.5"})
                .exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--tol-bound", "-1e-3"})
                .exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--tol-noise", "abc"})
                .exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--tol-noise", "inf"})
                .exit_code,
            nbuf::cli::kExitUsage);
}

}  // namespace
