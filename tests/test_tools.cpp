// First test coverage for the nbuf_cli entry points (tools/cli_app.cpp):
// runs the real argv-driven pipelines in-process on examples/nets/*.net and
// on netgen batches, asserting exit status and parseable output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_app.hpp"
#include "serve/server.hpp"
#include "serve_app.hpp"

namespace {

std::string example(const char* name) {
  return std::string(NBUF_EXAMPLES_DIR) + "/" + name;
}

struct CliRun {
  int exit_code = 0;
  std::string out;  // captured stdout (stderr is left alone)
};

CliRun run_cli(std::vector<std::string> args) {
  args.insert(args.begin(), "nbuf_cli");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  testing::internal::CaptureStdout();
  CliRun r;
  r.exit_code =
      nbuf::cli::cli_main(static_cast<int>(argv.size()), argv.data());
  r.out = testing::internal::GetCapturedStdout();
  return r;
}

// The numeric value following `prefix` on the first line containing it;
// fails the test when absent.
double number_after(const std::string& out, const std::string& prefix) {
  const auto pos = out.find(prefix);
  EXPECT_NE(pos, std::string::npos) << "missing '" << prefix << "' in:\n"
                                    << out;
  if (pos == std::string::npos) return 0.0;
  return std::stod(out.substr(pos + prefix.size()));
}

TEST(Cli, BuffOptCleansLongTwoPin) {
  const CliRun r = run_cli({example("long_two_pin.net")});
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("buffopt: inserted"), std::string::npos) << r.out;
  EXPECT_GE(number_after(r.out, "buffopt: inserted"), 1.0);
  // "noise after:" reports zero violations for a clean result.
  EXPECT_EQ(number_after(r.out, "noise after:"), 0.0);
}

TEST(Cli, AnalyzeReportsBothEngines) {
  const CliRun r =
      run_cli({example("explicit_wires.net"), "--mode", "analyze"});
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("devgan metric:"), std::string::npos);
  EXPECT_NE(r.out.find("elmore timing:"), std::string::npos);
  EXPECT_EQ(number_after(r.out, "devgan metric:"), 0.0);
}

TEST(Cli, AnalyzeFlagsUnbufferedViolations) {
  // The same net that buffopt fixes must report violations untreated.
  const CliRun r =
      run_cli({example("long_two_pin.net"), "--mode", "analyze"});
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_GE(number_after(r.out, "devgan metric:"), 1.0);
}

TEST(Cli, NoiseModeRunsAlgorithm2) {
  const CliRun r = run_cli({example("control_tree.net"), "--mode", "noise"});
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("algorithm 2: inserted"), std::string::npos);
}

TEST(Cli, DelayOptWithSizingReportsWidenedWires) {
  const CliRun r = run_cli({example("long_two_pin.net"), "--mode",
                            "delayopt", "--max-buffers", "3",
                            "--wire-sizing"});
  EXPECT_NE(r.out.find("delayopt: inserted"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("timing after:"), std::string::npos);
}

TEST(Cli, WritesReadableOutputFile) {
  const std::string out_file = testing::TempDir() + "test_tools_out.net";
  const CliRun w = run_cli({example("long_two_pin.net"), "-o", out_file});
  EXPECT_EQ(w.exit_code, 0) << w.out;
  EXPECT_NE(w.out.find("wrote " + out_file), std::string::npos);
  const CliRun r = run_cli({out_file, "--mode", "analyze"});
  EXPECT_EQ(r.exit_code, 0) << r.out;  // buffered net analyzes clean
  std::remove(out_file.c_str());
}

TEST(Cli, UsageAndInputErrorsExitTwo) {
  EXPECT_EQ(run_cli({}).exit_code, 2);
  EXPECT_EQ(run_cli({example("long_two_pin.net"), "--mode", "bogus"})
                .exit_code,
            2);
  EXPECT_EQ(run_cli({example("long_two_pin.net"), "--frobnicate"})
                .exit_code,
            2);
  EXPECT_EQ(run_cli({"/nonexistent/definitely_missing.net"}).exit_code, 2);
}

TEST(Cli, MalformedNumericOptionsExitTwo) {
  // std::stoul would wrap "-5" to a huge count and std::stod would throw
  // out of main on "abc"; both must instead be usage errors (exit 2).
  const std::string net = example("long_two_pin.net");
  EXPECT_EQ(run_cli({net, "--max-buffers", "-5"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--max-buffers", "abc"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--max-buffers", "3x"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--max-buffers", "0"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--segment", "abc"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--segment", "nan"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--segment", "-100"}).exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({net, "--segment", "0"}).exit_code,
            nbuf::cli::kExitUsage);
}

TEST(Cli, BatchNetgenReportsThroughputAndStats) {
  const CliRun r = run_cli({"batch", "--netgen", "5", "--seed", "21",
                            "--threads", "2", "--stats"});
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("batch: 5 nets, 2 thread(s), mode buffopt"),
            std::string::npos)
      << r.out;
  EXPECT_GT(number_after(r.out, "throughput: "), 0.0);
  EXPECT_NE(r.out.find("noise after:"), std::string::npos);
  EXPECT_NE(r.out.find("timing after:"), std::string::npos);
  EXPECT_NE(r.out.find("vgstats: generated "), std::string::npos);
}

TEST(Cli, BatchDelayOptMode) {
  const CliRun r = run_cli({"batch", "--netgen", "3", "--seed", "2",
                            "--mode", "delayopt", "--max-buffers", "6"});
  // DelayOpt ignores noise, so the exit code may be 0 or 1; the run itself
  // must complete and report.
  EXPECT_LE(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("mode delayopt"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("solutions:"), std::string::npos);
}

TEST(Cli, BatchUsageErrors) {
  // No workload source.
  EXPECT_EQ(run_cli({"batch"}).exit_code, 2);
  // Both sources at once.
  EXPECT_EQ(run_cli({"batch", "--netgen", "3", "--dir", "/tmp"}).exit_code,
            2);
  // Directory that does not exist.
  EXPECT_EQ(run_cli({"batch", "--dir", "/nonexistent/nets"}).exit_code, 2);
  // Unknown mode.
  EXPECT_EQ(
      run_cli({"batch", "--netgen", "3", "--mode", "bogus"}).exit_code, 2);
  // Negative or non-numeric counts must not wrap via stoul.
  EXPECT_EQ(run_cli({"batch", "--netgen", "-5"}).exit_code, 2);
  EXPECT_EQ(run_cli({"batch", "--netgen", "abc"}).exit_code, 2);
  EXPECT_EQ(run_cli({"batch", "--netgen", "3", "--seed", "-1"}).exit_code,
            2);
  EXPECT_EQ(
      run_cli({"batch", "--netgen", "3", "--threads", "-2"}).exit_code, 2);
  EXPECT_EQ(
      run_cli({"batch", "--netgen", "3", "--max-buffers", "-1"}).exit_code,
      2);
  EXPECT_EQ(run_cli({"batch", "--netgen", "3", "--segment", "-10"})
                .exit_code,
            2);
}

// The nbuf_serve daemon's own argv parsing (tools/serve_app.cpp), driven
// through the same opt_parse.hpp helpers nbuf_cli uses.
int run_serve_main(std::vector<std::string> args) {
  args.insert(args.begin(), "nbuf_serve");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return nbuf::cli::serve_main(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ServeDaemonUsageErrorsExitTwo) {
  using nbuf::cli::kExitUsage;
  EXPECT_EQ(run_serve_main({"--port", "abc"}), kExitUsage);
  EXPECT_EQ(run_serve_main({"--port", "70000"}), kExitUsage);
  EXPECT_EQ(run_serve_main({"--port", "-1"}), kExitUsage);
  EXPECT_EQ(run_serve_main({"--port"}), kExitUsage);  // missing value
  EXPECT_EQ(run_serve_main({"--threads", "x"}), kExitUsage);
  EXPECT_EQ(run_serve_main({"--segment", "0"}), kExitUsage);
  EXPECT_EQ(run_serve_main({"--segment", "-5"}), kExitUsage);
  EXPECT_EQ(run_serve_main({"--segment", "nan"}), kExitUsage);
  EXPECT_EQ(run_serve_main({"--frobnicate"}), kExitUsage);
}

TEST(Cli, ServeClientUsageErrorsExitTwo) {
  using nbuf::cli::kExitUsage;
  // Exactly one of --port / --unix is required.
  EXPECT_EQ(run_cli({"serve-client"}).exit_code, kExitUsage);
  EXPECT_EQ(run_cli({"serve-client", "--port", "9", "--unix", "/tmp/x"})
                .exit_code,
            kExitUsage);
  // Port 0, malformed, or out-of-range ports are usage errors, not wraps.
  EXPECT_EQ(run_cli({"serve-client", "--port", "0"}).exit_code, kExitUsage);
  EXPECT_EQ(run_cli({"serve-client", "--port", "abc"}).exit_code,
            kExitUsage);
  EXPECT_EQ(run_cli({"serve-client", "--port", "70000"}).exit_code,
            kExitUsage);
  EXPECT_EQ(run_cli({"serve-client", "--port", "-1"}).exit_code,
            kExitUsage);
  EXPECT_EQ(run_cli({"serve-client", "--port", "9", "--frobnicate"})
                .exit_code,
            kExitUsage);
  // Unreadable script file (checked before connecting).
  EXPECT_EQ(run_cli({"serve-client", "--port", "9", "--script",
                     "/nonexistent/script.txt"})
                .exit_code,
            kExitUsage);
  // Connect failure with a well-formed command line.
  const std::string empty_script = testing::TempDir() + "serve_empty.txt";
  std::ofstream(empty_script).close();
  EXPECT_EQ(run_cli({"serve-client", "--unix", "/nonexistent/nbuf.sock",
                     "--script", empty_script})
                .exit_code,
            kExitUsage);
  std::remove(empty_script.c_str());
}

TEST(Cli, ServeClientDrivesFullSessionAgainstLiveServer) {
  nbuf::serve::Server server;  // ephemeral port, defaults otherwise
  server.start();
  const std::string script_file = testing::TempDir() + "serve_script.txt";
  {
    std::ofstream s(script_file);
    s << "# exercised by test_tools against an in-process server\n"
      << "load_net " << example("long_two_pin.net") << " 400\n"
      << "optimize long_two_pin max_buffers 4\n"
      << "perturb long_two_pin scale_wire 2 1.3 1.1 0.9\n"
      << "perturb_full long_two_pin scale_wire 2 1.1 1.0 1.0\n"
      << "signoff long_two_pin\n"
      << "stats\n";
  }
  const CliRun r = run_cli({"serve-client", "--port",
                            std::to_string(server.port()), "--script",
                            script_file});
  EXPECT_EQ(r.exit_code, nbuf::cli::kExitClean) << r.out;
  EXPECT_NE(r.out.find("LOAD_NET id=1"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("ok net long_two_pin"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("OPTIMIZE id=2"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("PERTURB id=3"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("SIGNOFF id=5"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("requests 6"), std::string::npos) << r.out;
  std::remove(script_file.c_str());
  server.stop();
}

TEST(Cli, ServeClientErrorFrameExitsOne) {
  nbuf::serve::Server server;
  server.start();
  const std::string script_file = testing::TempDir() + "serve_ghost.txt";
  {
    std::ofstream s(script_file);
    s << "optimize ghost\n";
  }
  const CliRun r = run_cli({"serve-client", "--port",
                            std::to_string(server.port()), "--script",
                            script_file});
  EXPECT_EQ(r.exit_code, nbuf::cli::kExitViolations) << r.out;
  EXPECT_NE(r.out.find("ERROR id=1"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("error bad_state:"), std::string::npos) << r.out;
  std::remove(script_file.c_str());
  server.stop();
}

TEST(Cli, SignoffCleanWorkloadExitsZero) {
  const CliRun r = run_cli({"signoff", "--netgen", "6", "--seed", "7",
                            "--threads", "2"});
  EXPECT_EQ(r.exit_code, nbuf::cli::kExitClean) << r.out;
  EXPECT_NE(r.out.find("signoff: 6 nets"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verdict: PASS"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("(bound held)"), std::string::npos) << r.out;
  EXPECT_GT(number_after(r.out, "pessimism ratio:"), 0.0);
}

TEST(Cli, SignoffViolationsExitOneNotTwo) {
  // One buffer in delayopt mode leaves noise violations on long nets; the
  // tool must report them via exit 1 — distinct from usage errors (2).
  const CliRun r = run_cli({"signoff", "--netgen", "10", "--seed", "3",
                            "--mode", "delayopt", "--max-buffers", "1"});
  EXPECT_EQ(r.exit_code, nbuf::cli::kExitViolations) << r.out;
  EXPECT_NE(r.out.find("verdict: FAIL"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("golden_noise"), std::string::npos) << r.out;
}

TEST(Cli, SignoffToleranceFlagsRelabelViolations) {
  // A noise grace voltage big enough to absorb every excursion flips the
  // FAIL run above to PASS without touching the measurements.
  const CliRun r = run_cli({"signoff", "--netgen", "10", "--seed", "3",
                            "--mode", "delayopt", "--max-buffers", "1",
                            "--tol-noise", "1800", "--tol-timing", "1e9"});
  EXPECT_EQ(r.exit_code, nbuf::cli::kExitClean) << r.out;
  EXPECT_NE(r.out.find("verdict: PASS"), std::string::npos) << r.out;
}

TEST(Cli, SignoffWritesJsonReport) {
  const std::string json_file = testing::TempDir() + "test_tools_signoff.json";
  const CliRun r = run_cli({"signoff", "--netgen", "4", "--seed", "7",
                            "--json", json_file});
  EXPECT_EQ(r.exit_code, nbuf::cli::kExitClean) << r.out;
  EXPECT_NE(r.out.find("wrote " + json_file), std::string::npos) << r.out;
  std::string json;
  {
    std::ifstream in(json_file);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    json = ss.str();
  }
  EXPECT_NE(json.find("\"schema\":\"nbuf-signoff-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"nets\":4"), std::string::npos);
  EXPECT_NE(json.find("\"pass\":true"), std::string::npos);
  std::remove(json_file.c_str());
}

TEST(Cli, SignoffUsageErrorsExitTwo) {
  // No workload source.
  EXPECT_EQ(run_cli({"signoff"}).exit_code, nbuf::cli::kExitUsage);
  // Unknown option.
  EXPECT_EQ(run_cli({"signoff", "--netgen", "3", "--frobnicate"}).exit_code,
            nbuf::cli::kExitUsage);
  // Signoff-only flags are rejected by plain batch.
  EXPECT_EQ(run_cli({"batch", "--netgen", "3", "--tol-noise", "5"})
                .exit_code,
            nbuf::cli::kExitUsage);
  // Unwritable JSON path.
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--json",
                     "/nonexistent/dir/report.json"})
                .exit_code,
            nbuf::cli::kExitUsage);
  // Out-of-range or malformed tolerances.
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--tol-noise", "-1"})
                .exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--tol-timing", "-0.5"})
                .exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--tol-bound", "-1e-3"})
                .exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--tol-noise", "abc"})
                .exit_code,
            nbuf::cli::kExitUsage);
  EXPECT_EQ(run_cli({"signoff", "--netgen", "2", "--tol-noise", "inf"})
                .exit_code,
            nbuf::cli::kExitUsage);
}

}  // namespace
