#include <gtest/gtest.h>

#include "common/test_nets.hpp"
#include "noise/coupling.hpp"
#include "noise/devgan.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

// --- the Fig. 3 worked example ------------------------------------------------

TEST(Devgan, Fig3CurrentsByHand) {
  const auto f = test::fig3_net(100.0);
  const auto stages =
      rct::decompose(f.tree, rct::BufferAssignment{}, lib::BufferLibrary{});
  const auto cur = noise::stage_currents(f.tree, stages[0]);
  EXPECT_NEAR(cur.at(f.s1), 0.0, 1e-15);
  EXPECT_NEAR(cur.at(f.s2), 0.0, 1e-15);
  EXPECT_NEAR(cur.at(f.n), 50 * uA, 1e-12);
  EXPECT_NEAR(cur.at(f.tree.source()), 90 * uA, 1e-12);
}

TEST(Devgan, Fig3NoiseByHand) {
  const auto f = test::fig3_net(100.0);
  const auto rep = noise::analyze_unbuffered(f.tree);
  // Driver term 100*90µ = 9 mV; Noise(so->n) = 100*(20+50)µ = 7 mV;
  // Noise(n->s1) = 200*15µ = 3 mV; Noise(n->s2) = 150*10µ = 1.5 mV.
  EXPECT_NEAR(rep.sinks[0].noise, 19.0 * mV, 1e-9);
  EXPECT_NEAR(rep.sinks[1].noise, 17.5 * mV, 1e-9);
  EXPECT_EQ(rep.violation_count, 0u);
  EXPECT_NEAR(rep.worst_slack, 0.8 - 19.0 * mV, 1e-9);
}

TEST(Devgan, Fig3NoiseSlacksByHand) {
  const auto f = test::fig3_net(100.0);
  const auto ns = noise::noise_slacks(f.tree);
  EXPECT_NEAR(ns.at(f.s1), 0.8, 1e-12);
  EXPECT_NEAR(ns.at(f.n), 0.8 - 3.0 * mV, 1e-9);
  EXPECT_NEAR(ns.at(f.tree.source()), 0.8 - 3.0 * mV - 7.0 * mV, 1e-9);
}

TEST(Devgan, NoiseSlackFeasibilityMatchesDirectAnalysis) {
  // R_drv * I(so) <= NS(so) iff no sink violates (Section II-B).
  for (double margin : {0.005, 0.012, 0.02, 0.05}) {
    auto f = test::fig3_net(100.0);
    for (const auto& s : f.tree.sinks()) {
      auto info = s;
      info.noise_margin = margin;
      f.tree.set_sink_info(f.tree.node(s.node).sink, info);
    }
    const auto ns = noise::noise_slacks(f.tree);
    const auto rep = noise::analyze_unbuffered(f.tree);
    const bool slack_ok = 100.0 * 90e-6 <= ns.at(f.tree.source());
    EXPECT_EQ(slack_ok, rep.violation_count == 0) << "margin " << margin;
  }
}

// --- structural properties ------------------------------------------------------

TEST(Devgan, LongerWireMoreNoise) {
  const auto a = noise::analyze_unbuffered(test::long_two_pin(2000.0));
  const auto b = noise::analyze_unbuffered(test::long_two_pin(4000.0));
  EXPECT_GT(b.sinks[0].noise, a.sinks[0].noise);
}

TEST(Devgan, NoiseGrowsQuadraticallyWithLength) {
  // With distributed current, noise ~ R_drv*i*L + r*i*L^2/2.
  const auto a = noise::analyze_unbuffered(test::long_two_pin(2000.0));
  const auto b = noise::analyze_unbuffered(test::long_two_pin(4000.0));
  EXPECT_GT(b.sinks[0].noise, 2.0 * a.sinks[0].noise);
}

TEST(Devgan, LongNetViolatesPaperMargin) {
  const auto rep = noise::analyze_unbuffered(test::long_two_pin(8000.0));
  EXPECT_GT(rep.sinks[0].noise, 0.8);
  EXPECT_EQ(rep.violation_count, 1u);
  EXPECT_FALSE(rep.clean());
}

TEST(Devgan, BufferRestoresSignal) {
  // A buffer in the middle of a violating net splits the noise; both stages
  // can pass where the whole net failed.
  auto t = test::long_two_pin(5000.0);
  const auto l = lib::default_library();
  EXPECT_EQ(noise::analyze_unbuffered(t).violation_count, 1u);
  const auto mid = t.split_wire(t.sinks().front().node, 2500.0);
  rct::BufferAssignment a;
  a.place(mid, lib::BufferId{9});  // buf_x16, R = 70
  const auto rep = noise::analyze(t, a, l);
  EXPECT_EQ(rep.violation_count, 0u);
  // Both the buffer input leaf and the true sink are reported.
  EXPECT_EQ(rep.leaves.size(), 2u);
}

TEST(Devgan, BufferInputLeafIsChecked) {
  // Buffer too far from the source: its own input sees a violation.
  auto t = test::long_two_pin(12000.0);
  const auto l = lib::default_library();
  const auto mid = t.split_wire(t.sinks().front().node, 1000.0);
  rct::BufferAssignment a;
  a.place(mid, lib::BufferId{9});
  const auto rep = noise::analyze(t, a, l);
  bool buffer_leaf_violates = false;
  for (const auto& leaf : rep.leaves)
    if (leaf.is_buffer_input && leaf.slack < 0) buffer_leaf_violates = true;
  EXPECT_TRUE(buffer_leaf_violates);
}

TEST(Devgan, AnalyzeUnbufferedEqualsEmptyAssignment) {
  const auto f = test::fig3_net();
  const auto a = noise::analyze_unbuffered(f.tree);
  const auto b =
      noise::analyze(f.tree, rct::BufferAssignment{}, lib::default_library());
  ASSERT_EQ(a.sinks.size(), b.sinks.size());
  for (std::size_t i = 0; i < a.sinks.size(); ++i)
    EXPECT_DOUBLE_EQ(a.sinks[i].noise, b.sinks[i].noise);
}

TEST(Devgan, DriverResistanceAddsNoise) {
  const auto weak = noise::analyze_unbuffered(test::long_two_pin(3000, 400));
  const auto strong = noise::analyze_unbuffered(test::long_two_pin(3000, 50));
  EXPECT_GT(weak.sinks[0].noise, strong.sinks[0].noise);
}

TEST(Devgan, SplittingWireDoesNotChangeNoise) {
  // The metric is additive: subdividing a wire must leave sink noise
  // unchanged (same property Elmore has for delay).
  auto t1 = test::long_two_pin(5000.0);
  auto t2 = test::long_two_pin(5000.0);
  auto m = t2.split_wire(t2.sinks().front().node, 1700.0);
  (void)t2.split_wire(m, 900.0);
  const auto r1 = noise::analyze_unbuffered(t1);
  const auto r2 = noise::analyze_unbuffered(t2);
  EXPECT_NEAR(r1.sinks[0].noise, r2.sinks[0].noise,
              1e-12 * r1.sinks[0].noise);
}

// --- explicit aggressor coupling (Fig. 2) ------------------------------------------

TEST(Coupling, SingleSpanSetsEq6Current) {
  auto t = test::long_two_pin(1000.0);
  // Clear estimation-mode current first.
  auto sink = t.sinks().front().node;
  rct::Wire w = t.node(sink).parent_wire;
  w.coupling_current = 0.0;
  t.set_parent_wire(sink, w);

  const std::vector<noise::Aggressor> aggs = {{"a0", 7.2e9, 0.7}};
  const auto owners = noise::apply_coupling(
      t, sink, aggs, {{0, 200.0, 700.0}});
  ASSERT_EQ(owners.size(), 3u);  // [0,200) uncoupled, [200,700), [700,1000]
  const double c_per = lib::default_technology().wire_cap_per_um;
  const double expect = 0.7 * 7.2e9 * c_per * 500.0;
  double total = 0.0;
  for (auto id : owners) total += t.node(id).parent_wire.coupling_current;
  EXPECT_NEAR(total, expect, expect * 1e-9);
}

TEST(Coupling, OverlappingAggressorsSum) {
  auto t = test::long_two_pin(1000.0);
  auto sink = t.sinks().front().node;
  rct::Wire w = t.node(sink).parent_wire;
  w.coupling_current = 0.0;
  t.set_parent_wire(sink, w);

  const std::vector<noise::Aggressor> aggs = {{"a0", 7.2e9, 0.4},
                                              {"a1", 3.6e9, 0.3}};
  const auto owners = noise::apply_coupling(
      t, sink, aggs, {{0, 0.0, 1000.0}, {1, 300.0, 600.0}});
  // The [300,600] stretch must carry both aggressors' currents.
  const double c_per = lib::default_technology().wire_cap_per_um;
  double mid_rate = 0.0;
  double pos = 0.0;
  for (auto id : owners) {
    const auto& wire = t.node(id).parent_wire;
    const double mid = pos + wire.length / 2.0;
    if (mid > 300.0 && mid < 600.0)
      mid_rate = wire.coupling_current / wire.capacitance;
    pos += wire.length;
  }
  EXPECT_NEAR(mid_rate, 0.4 * 7.2e9 + 0.3 * 3.6e9, 1e3);
  (void)c_per;
}

TEST(Coupling, PreservesWireTotals) {
  auto t = test::long_two_pin(1000.0);
  auto sink = t.sinks().front().node;
  const double r_before = t.node(sink).parent_wire.resistance;
  const double c_before = t.node(sink).parent_wire.capacitance;
  const std::vector<noise::Aggressor> aggs = {{"a0", 7.2e9, 0.7}};
  (void)noise::apply_coupling(t, sink, aggs, {{0, 100.0, 900.0}});
  double r = 0.0, c = 0.0;
  for (auto id : t.preorder())
    if (id != t.source()) {
      r += t.node(id).parent_wire.resistance;
      c += t.node(id).parent_wire.capacitance;
    }
  EXPECT_NEAR(r, r_before, 1e-9);
  EXPECT_NEAR(c, c_before, 1e-24);
  t.validate();
}

TEST(Coupling, RejectsBadSpans) {
  auto t = test::long_two_pin(1000.0);
  auto sink = t.sinks().front().node;
  const std::vector<noise::Aggressor> aggs = {{"a0", 7.2e9, 0.7}};
  EXPECT_THROW((void)noise::apply_coupling(t, sink, aggs, {{0, 500.0, 400.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)noise::apply_coupling(t, sink, aggs, {{0, 0.0, 1500.0}}),
      std::invalid_argument);
  EXPECT_THROW((void)noise::apply_coupling(t, sink, aggs, {{5, 0.0, 500.0}}),
               std::invalid_argument);
}

TEST(Coupling, EquivalentToEstimationModeWhenFullSpan) {
  // A single aggressor covering the whole wire with tech's lambda and slope
  // reproduces the estimation-mode coupling current.
  const auto tech = lib::default_technology();
  auto t = test::long_two_pin(2000.0);
  const double est = t.node(t.sinks().front().node).parent_wire.coupling_current;
  auto t2 = test::long_two_pin(2000.0);
  auto sink = t2.sinks().front().node;
  rct::Wire w = t2.node(sink).parent_wire;
  w.coupling_current = 0.0;
  t2.set_parent_wire(sink, w);
  const std::vector<noise::Aggressor> aggs = {
      {"a0", tech.aggressor_slope(), tech.coupling_ratio}};
  const auto owners =
      noise::apply_coupling(t2, sink, aggs, {{0, 0.0, 2000.0}});
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_NEAR(t2.node(owners[0]).parent_wire.coupling_current, est,
              est * 1e-9);
}

}  // namespace
