// Property-based differential test: Algorithm 2 versus exhaustive
// enumeration of buffer placements on random small trees.
//
// For each random tree (<= 6 sinks) we check, against brute force:
//  * feasibility — the Algorithm 2 solution is noise-clean under the same
//    Devgan analysis every placement is judged by;
//  * minimality — no assignment with FEWER buffers on the sites of
//    Algorithm 2's own output tree is clean (Theorem 3/paper Section III-C
//    claims optimality over continuous placements, so in particular over
//    any finite subset of them);
//  * upper bound — Algorithm 2 never uses more buffers than the best
//    exhaustive solution on an independently segmented copy of the tree.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/test_nets.hpp"
#include "core/alg1_single_sink.hpp"
#include "core/alg2_multi_sink.hpp"
#include "noise/devgan.hpp"
#include "seg/segment.hpp"
#include "steiner/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();

rct::RoutingTree random_net(util::Rng& rng, int sinks, double span) {
  std::vector<steiner::PinSpec> pins;
  for (int i = 0; i < sinks; ++i) {
    steiner::PinSpec p;
    p.at = {rng.uniform(0.2 * span, span), rng.uniform(0, span)};
    p.info = default_sink(rng.uniform(5 * fF, 30 * fF), 0.0, 0.8,
                          ("s" + std::to_string(i)).c_str());
    pins.push_back(p);
  }
  return steiner::build_tree({0, 0}, default_driver(rng.uniform(60, 400)),
                             pins, lib::default_technology());
}

std::vector<rct::NodeId> buffer_sites(const rct::RoutingTree& t) {
  std::vector<rct::NodeId> sites;
  for (auto id : t.preorder())
    if (t.node(id).kind == rct::NodeKind::Internal &&
        t.node(id).buffer_allowed)
      sites.push_back(id);
  return sites;
}

// Smallest k <= max_k such that some k-subset of `sites` (all hosting
// `type`) makes `tree` noise-clean; nullopt when none does. Enumerates
// combinations in increasing size, so the first hit is the minimum.
std::optional<std::size_t> min_clean_count(
    const rct::RoutingTree& tree, const std::vector<rct::NodeId>& sites,
    lib::BufferId type, std::size_t max_k) {
  const std::size_t n = sites.size();
  max_k = std::min(max_k, n);
  for (std::size_t k = 0; k <= max_k; ++k) {
    // Classic lexicographic combination walk over index vectors.
    std::vector<std::size_t> idx(k);
    for (std::size_t i = 0; i < k; ++i) idx[i] = i;
    for (;;) {
      rct::BufferAssignment a;
      for (std::size_t i : idx) a.place(sites[i], type);
      if (noise::analyze(tree, a, kLib).clean()) return k;
      // Advance to the next combination.
      std::size_t pos = k;
      while (pos > 0 && idx[pos - 1] == n - k + (pos - 1)) --pos;
      if (pos == 0) break;
      ++idx[pos - 1];
      for (std::size_t i = pos; i < k; ++i) idx[i] = idx[i - 1] + 1;
    }
  }
  return std::nullopt;
}

TEST(Differential, Alg2MatchesExhaustiveOnRandomSmallTrees) {
  util::Rng rng(20260806);
  const lib::BufferId type = core::noise_buffer_choice(kLib);
  int violating = 0, minimality_checked = 0, upper_checked = 0;
  for (int trial = 0; trial < 100; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto t = random_net(rng, rng.uniform_int(1, 6),
                              rng.uniform(2500.0, 7000.0));
    violating += noise::analyze_unbuffered(t).clean() ? 0 : 1;

    const auto res = core::avoid_noise_multi_sink(t, kLib);

    // Feasibility: judged by the exact analysis brute force uses.
    EXPECT_TRUE(noise::analyze(res.tree, res.buffers, kLib).clean());

    // Minimality: nothing smaller works, even restricted to the sites the
    // algorithm itself materialized (its own placements included).
    const auto own_sites = buffer_sites(res.tree);
    if (res.buffer_count > 0 && own_sites.size() <= 20) {
      EXPECT_EQ(min_clean_count(res.tree, own_sites, type,
                                res.buffer_count - 1),
                std::nullopt);
      ++minimality_checked;
    }

    // Upper bound: continuous placement is at least as good as the best
    // solution on a fixed 700 µm segmentation.
    auto disc = t;
    seg::segment(disc, {700.0});
    const auto disc_sites = buffer_sites(disc);
    if (disc_sites.size() <= 20) {
      const auto best = min_clean_count(disc, disc_sites, type,
                                        res.buffer_count + 4);
      if (best) {
        EXPECT_LE(res.buffer_count, *best);
        ++upper_checked;
      }
    }
  }
  // The workload must genuinely exercise the algorithm and the checks.
  EXPECT_GT(violating, 25);
  EXPECT_GT(minimality_checked, 20);
  EXPECT_GT(upper_checked, 30);
}

TEST(Differential, Alg2AgreesWithAlg1OnRandomPaths) {
  // Single-sink trees are Algorithm 1's domain; the two optimal algorithms
  // must agree on the minimal count, and both must be exhaustively
  // unbeatable on Algorithm 1's own output sites.
  util::Rng rng(424207);
  const lib::BufferId type = core::noise_buffer_choice(kLib);
  for (int trial = 0; trial < 12; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    auto t = test::long_two_pin(rng.uniform(3000.0, 11000.0),
                                rng.uniform(80.0, 350.0));
    const auto r1 = core::avoid_noise_single_sink(t, kLib);
    const auto r2 = core::avoid_noise_multi_sink(t, kLib);
    EXPECT_EQ(r1.buffer_count, r2.buffer_count);
    const auto sites = buffer_sites(r1.tree);
    if (r1.buffer_count > 0 && sites.size() <= 20) {
      EXPECT_EQ(min_clean_count(r1.tree, sites, type, r1.buffer_count - 1),
                std::nullopt);
    }
  }
}

}  // namespace
