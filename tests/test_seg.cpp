#include <gtest/gtest.h>

#include "common/test_nets.hpp"
#include "elmore/elmore.hpp"
#include "noise/devgan.hpp"
#include "seg/segment.hpp"

namespace {

using namespace nbuf;

TEST(Segment, SplitsLongWires) {
  auto t = test::long_two_pin(2600.0);
  const std::size_t added = seg::segment(t, {500.0});
  EXPECT_EQ(added, 5u);  // ceil(2600/500)=6 pieces -> 5 new nodes
  t.validate();
  for (auto id : t.preorder())
    if (id != t.source()) {
      EXPECT_LE(t.node(id).parent_wire.length, 500.0 + 1e-9);
    }
}

TEST(Segment, ShortWiresUntouched) {
  auto t = test::long_two_pin(400.0);
  EXPECT_EQ(seg::segment(t, {500.0}), 0u);
  EXPECT_EQ(t.node_count(), 2u);
}

TEST(Segment, EqualPieces) {
  auto t = test::long_two_pin(1500.0);
  seg::segment(t, {500.0});
  for (auto id : t.preorder())
    if (id != t.source()) {
      EXPECT_NEAR(t.node(id).parent_wire.length, 500.0, 1e-9);
    }
}

TEST(Segment, PreservesElectricalTotals) {
  auto t = test::long_two_pin(7321.0);
  const double r0 = 0.073 * 7321.0;
  const double wl0 = t.total_wirelength();
  const double cap0 = t.total_cap();
  const double cur0 = t.total_coupling_current();
  seg::segment(t, {333.0});
  EXPECT_NEAR(t.total_wirelength(), wl0, 1e-6);
  EXPECT_NEAR(t.total_cap(), cap0, 1e-22);
  EXPECT_NEAR(t.total_coupling_current(), cur0, 1e-12);
  double r = 0.0;
  for (auto id : t.preorder())
    if (id != t.source()) r += t.node(id).parent_wire.resistance;
  EXPECT_NEAR(r, r0, 1e-6);
}

TEST(Segment, DoesNotChangeElmoreDelay) {
  auto t1 = test::long_two_pin(5000.0);
  auto t2 = test::long_two_pin(5000.0);
  seg::segment(t2, {250.0});
  const auto d1 = elmore::analyze_unbuffered(t1);
  const auto d2 = elmore::analyze_unbuffered(t2);
  EXPECT_NEAR(d1.max_delay, d2.max_delay, d1.max_delay * 1e-9);
}

TEST(Segment, DoesNotChangeDevganNoise) {
  auto t1 = test::long_two_pin(5000.0);
  auto t2 = test::long_two_pin(5000.0);
  seg::segment(t2, {250.0});
  const auto n1 = noise::analyze_unbuffered(t1);
  const auto n2 = noise::analyze_unbuffered(t2);
  EXPECT_NEAR(n1.sinks[0].noise, n2.sinks[0].noise,
              n1.sinks[0].noise * 1e-9);
}

TEST(Segment, NewNodesAreBufferSites) {
  auto t = test::long_two_pin(2000.0);
  seg::segment(t, {500.0});
  std::size_t sites = 0;
  for (auto id : t.preorder()) {
    const auto& n = t.node(id);
    if (n.kind == rct::NodeKind::Internal && n.buffer_allowed) ++sites;
  }
  EXPECT_EQ(sites, 3u);
}

TEST(Segment, MultiSinkTreeSegmentsEveryBranch) {
  auto t = steiner::make_balanced_tree(2, 1200.0, test::default_driver(),
                                       test::default_sink(),
                                       lib::default_technology());
  seg::segment(t, {400.0});
  t.validate();
  for (auto id : t.preorder())
    if (id != t.source()) {
      EXPECT_LE(t.node(id).parent_wire.length, 400.0 + 1e-9);
    }
  EXPECT_EQ(t.sink_count(), 4u);
}

TEST(Segment, RejectsBadOptions) {
  auto t = test::long_two_pin(1000.0);
  EXPECT_THROW(seg::segment(t, {0.0}), std::invalid_argument);
}

TEST(Segment, GranularityTradeoff) {
  // Finer segmentation adds more candidate sites (quality/runtime knob of
  // Alpert-Devgan).
  auto coarse = test::long_two_pin(6000.0);
  auto fine = test::long_two_pin(6000.0);
  const auto n_coarse = seg::segment(coarse, {1000.0});
  const auto n_fine = seg::segment(fine, {200.0});
  EXPECT_GT(n_fine, n_coarse);
}

}  // namespace
