#include <gtest/gtest.h>

#include "common/test_nets.hpp"
#include "elmore/elmore.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

// --- two-pin analytic check -----------------------------------------------

TEST(Elmore, TwoPinMatchesClosedForm) {
  const double len = 2000.0;
  const auto tech = lib::default_technology();
  const double r_drv = 150.0, d_drv = 30.0 * ps, c_sink = 10.0 * fF;
  auto t = steiner::make_two_pin(len, default_driver(r_drv, d_drv),
                                 default_sink(c_sink), tech);
  const auto rep = elmore::analyze_unbuffered(t);
  const double rw = tech.wire_res(len), cw = tech.wire_cap(len);
  const double expected =
      d_drv + r_drv * (cw + c_sink) + rw * (cw / 2.0 + c_sink);
  ASSERT_EQ(rep.sinks.size(), 1u);
  EXPECT_NEAR(rep.sinks[0].delay, expected, expected * 1e-12);
  EXPECT_DOUBLE_EQ(rep.max_delay, rep.sinks[0].delay);
}

TEST(Elmore, DelayGrowsQuadraticallyWithLength) {
  // Doubling an unbuffered wire's length should far more than double delay.
  const auto d1 = elmore::analyze_unbuffered(test::long_two_pin(4000.0));
  const auto d2 = elmore::analyze_unbuffered(test::long_two_pin(8000.0));
  EXPECT_GT(d2.max_delay, 2.5 * d1.max_delay);
}

TEST(Elmore, SlackIsRatMinusDelay) {
  auto t = steiner::make_two_pin(1000.0, default_driver(),
                                 default_sink(10 * fF, 1.0 * ns),
                                 lib::default_technology());
  const auto rep = elmore::analyze_unbuffered(t);
  EXPECT_NEAR(rep.sinks[0].slack, 1.0 * ns - rep.sinks[0].delay, 1e-18);
  EXPECT_DOUBLE_EQ(rep.worst_slack, rep.sinks[0].slack);
}

// --- multi-sink trees --------------------------------------------------------

TEST(Elmore, Fig3DelaysByHand) {
  const auto f = test::fig3_net(100.0);
  const auto rep = elmore::analyze_unbuffered(f.tree);
  // Loads: C(s1)=10fF, C(s2)=12fF, C(n)=160+10+120+12 fF = 302fF,
  // C(so)=302+200=502fF.
  // delay(s1) = Ddrv + 100*502f + 100*(200f/2+302f) + 200*(160f/2+10f)
  const double d_drv = 30.0 * ps;
  const double expect_s1 = d_drv + 100 * 502e-15 + 100 * (100e-15 + 302e-15) +
                           200 * (80e-15 + 10e-15);
  const double expect_s2 = d_drv + 100 * 502e-15 + 100 * (100e-15 + 302e-15) +
                           150 * (60e-15 + 12e-15);
  EXPECT_NEAR(rep.sinks[0].delay, expect_s1, 1e-18);
  EXPECT_NEAR(rep.sinks[1].delay, expect_s2, 1e-18);
}

TEST(Elmore, BalancedTreeIsSymmetric) {
  auto t = steiner::make_balanced_tree(3, 500.0, default_driver(),
                                       default_sink(),
                                       lib::default_technology());
  const auto rep = elmore::analyze_unbuffered(t);
  ASSERT_EQ(rep.sinks.size(), 8u);
  for (const auto& s : rep.sinks)
    EXPECT_NEAR(s.delay, rep.sinks[0].delay, rep.sinks[0].delay * 1e-9);
}

TEST(Elmore, StageLoadsMatchHand) {
  const auto f = test::fig3_net();
  const auto stages =
      rct::decompose(f.tree, rct::BufferAssignment{}, lib::BufferLibrary{});
  const auto loads = elmore::stage_loads(f.tree, stages[0]);
  EXPECT_NEAR(loads.at(f.s1), 10 * fF, 1e-21);
  EXPECT_NEAR(loads.at(f.n), (160 + 10 + 120 + 12) * fF, 1e-21);
  EXPECT_NEAR(loads.at(f.tree.source()), 502 * fF, 1e-21);
}

// --- buffered evaluation --------------------------------------------------------

TEST(Elmore, BufferedTwoPinComposesStages) {
  const double len = 4000.0;
  const auto tech = lib::default_technology();
  const auto l = lib::default_library();
  const lib::BufferId bid{7};  // buf_x4
  const auto& b = l.at(bid);
  auto t = steiner::make_two_pin(len, default_driver(150.0, 30 * ps),
                                 default_sink(10 * fF), tech);
  const auto mid = t.split_wire(t.sinks().front().node, 2000.0);
  rct::BufferAssignment a;
  a.place(mid, bid);
  const auto rep = elmore::analyze(t, a, l);

  const double rw = tech.wire_res(2000.0), cw = tech.wire_cap(2000.0);
  const double stage1 =
      30 * ps + 150.0 * (cw + b.input_cap) + rw * (cw / 2 + b.input_cap);
  const double stage2 = b.intrinsic_delay +
                        b.resistance * (cw + 10 * fF) +
                        rw * (cw / 2 + 10 * fF);
  EXPECT_NEAR(rep.sinks[0].delay, stage1 + stage2, 1e-16);
}

TEST(Elmore, BufferDecouplesLoadFromDriver) {
  // Placing a buffer right after a branch point hides the branch's cap from
  // the upstream driver, reducing the other sink's delay.
  auto f1 = test::fig3_net();
  auto f2 = test::fig3_net();
  const auto l = lib::default_library();
  rct::BufferAssignment none;
  rct::BufferAssignment shield;
  const auto mid = f2.tree.split_wire(f2.s1, 799.0);  // top of n->s1 wire
  shield.place(mid, lib::BufferId{5});                // weak buf_x1
  const auto d_plain = elmore::analyze(f1.tree, none, l);
  const auto d_shield = elmore::analyze(f2.tree, shield, l);
  // s2 (index 1) sees less upstream load with the shield in place.
  EXPECT_LT(d_shield.sinks[1].delay, d_plain.sinks[1].delay);
}

TEST(Elmore, LongNetBenefitsFromBuffering) {
  const auto tech = lib::default_technology();
  const auto l = lib::default_library();
  auto t = steiner::make_two_pin(10000.0, default_driver(), default_sink(),
                                 tech);
  const auto unbuf = elmore::analyze_unbuffered(t);
  // Insert three evenly spaced strong buffers.
  rct::BufferAssignment a;
  auto sink = t.sinks().front().node;
  auto m1 = t.split_wire(sink, 2500.0);
  auto m2 = t.split_wire(m1, 2500.0);
  auto m3 = t.split_wire(m2, 2500.0);
  for (auto m : {m1, m2, m3}) a.place(m, lib::BufferId{8});  // buf_x8
  const auto buf = elmore::analyze(t, a, l);
  EXPECT_LT(buf.max_delay, unbuf.max_delay);
}

TEST(Elmore, ZeroLengthDummiesAreTransparent) {
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver());
  const auto hub = t.add_internal(so, rct::Wire{100, 10, 20 * fF, 0});
  for (int i = 0; i < 3; ++i)
    t.add_sink(hub, rct::Wire{50, 5, 10 * fF, 0},
               default_sink(5 * fF, 0.0, 0.8, ("s" + std::to_string(i)).c_str()));
  const auto before = elmore::analyze_unbuffered(t);
  t.binarize();
  const auto after = elmore::analyze_unbuffered(t);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(before.sinks[i].delay, after.sinks[i].delay, 1e-20);
}

}  // namespace
