#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.hpp"
#include "lib/technology.hpp"
#include "util/units.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

struct Params {
  double r_drv = 150.0;     // ohm
  double r_per = 0.073;     // ohm/µm
  double i_per = 1.058e-6;  // A/µm  (lambda*c*mu of the default tech)
  double ns = 0.8;          // volt
  double i_down = 50e-6;    // A
};

TEST(Theorem1, NoiseAtCriticalLengthEqualsSlack) {
  const Params p;
  const auto len = core::critical_length(p.r_drv, p.r_per, p.i_per, p.ns,
                                         p.i_down);
  ASSERT_TRUE(len.has_value());
  const double noise =
      core::uniform_wire_noise(p.r_drv, p.r_per, p.i_per, *len, p.i_down);
  EXPECT_NEAR(noise, p.ns, p.ns * 1e-9);
}

TEST(Theorem1, LongerThanCriticalViolates) {
  const Params p;
  const auto len = core::critical_length(p.r_drv, p.r_per, p.i_per, p.ns,
                                         p.i_down);
  ASSERT_TRUE(len.has_value());
  EXPECT_GT(core::uniform_wire_noise(p.r_drv, p.r_per, p.i_per, *len * 1.01,
                                     p.i_down),
            p.ns);
  EXPECT_LT(core::uniform_wire_noise(p.r_drv, p.r_per, p.i_per, *len * 0.99,
                                     p.i_down),
            p.ns);
}

TEST(Theorem1, SideConditionTooLate) {
  // NS < R_drv * I: a buffer was needed strictly below (paper: "it is too
  // late to insert a buffer on this wire").
  EXPECT_FALSE(
      core::critical_length(150.0, 0.073, 1e-6, 0.001, 1e-3).has_value());
}

TEST(Theorem1, ZeroSlackGivesZeroLength) {
  // NS == R_drv * I exactly -> length 0.
  const double i_down = 1e-3;
  const double ns = 150.0 * i_down;
  const auto len = core::critical_length(150.0, 0.073, 1e-6, ns, i_down);
  ASSERT_TRUE(len.has_value());
  EXPECT_NEAR(*len, 0.0, 1e-9);
}

TEST(Theorem1, UnlimitedWhenNoCurrentAnywhere) {
  const auto len = core::critical_length(150.0, 0.073, 0.0, 0.8, 0.0);
  ASSERT_TRUE(len.has_value());
  EXPECT_TRUE(std::isinf(*len));
}

TEST(Theorem1, LinearCaseZeroWireResistance) {
  // r = 0: noise = R_drv*(i*L + I) -> L = (NS - R*I)/(R*i).
  const double len_expect = (0.8 - 150.0 * 50e-6) / (150.0 * 1e-6);
  const auto len = core::critical_length(150.0, 0.0, 1e-6, 0.8, 50e-6);
  ASSERT_TRUE(len.has_value());
  EXPECT_NEAR(*len, len_expect, 1e-6);
}

TEST(Theorem1, StrongerDriverAllowsLongerWire) {
  const Params p;
  const auto weak =
      core::critical_length(400.0, p.r_per, p.i_per, p.ns, p.i_down);
  const auto strong =
      core::critical_length(50.0, p.r_per, p.i_per, p.ns, p.i_down);
  ASSERT_TRUE(weak && strong);
  EXPECT_GT(*strong, *weak);
}

TEST(Theorem1, LargerSlackAllowsLongerWire) {
  const Params p;
  const auto a = core::critical_length(p.r_drv, p.r_per, p.i_per, 0.4,
                                       p.i_down);
  const auto b = core::critical_length(p.r_drv, p.r_per, p.i_per, 0.8,
                                       p.i_down);
  ASSERT_TRUE(a && b);
  EXPECT_GT(*b, *a);
}

TEST(Theorem1, MaximumAtZeroDriverAndCurrent) {
  // Paper: the maximum length is sqrt(2*NS/(r*i)) when R_drv = I = 0.
  const Params p;
  const auto len = core::critical_length(0.0, p.r_per, p.i_per, p.ns, 0.0);
  ASSERT_TRUE(len.has_value());
  EXPECT_NEAR(*len, std::sqrt(2.0 * p.ns / (p.r_per * p.i_per)), 1e-6);
}

TEST(Theorem1, DefaultTechnologyCriticalLengthIsMillimeters) {
  // Sanity anchor for the whole experimental setup: with the paper's
  // estimation-mode parameters a mid-strength buffer sustains roughly
  // 2-4 mm of wire.
  const auto tech = lib::default_technology();
  const auto len = core::critical_length_coupling(
      150.0, tech.wire_res_per_um, tech.wire_cap_per_um, tech.coupling_ratio,
      tech.aggressor_slope(), 0.8, 0.0);
  ASSERT_TRUE(len.has_value());
  EXPECT_GT(*len, 2000.0);
  EXPECT_LT(*len, 4500.0);
}

TEST(Theorem1, CouplingFormMatchesDirectForm) {
  const auto tech = lib::default_technology();
  const auto a = core::critical_length_coupling(
      150.0, tech.wire_res_per_um, tech.wire_cap_per_um, tech.coupling_ratio,
      tech.aggressor_slope(), 0.8, 10e-6);
  const auto b = core::critical_length(
      150.0, tech.wire_res_per_um, tech.coupling_current_per_um(), 0.8,
      10e-6);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(*a, *b, 1e-9);
}

// --- eq. 17: separation distance ---------------------------------------------

TEST(Separation, PluggingBackGivesExactSlack) {
  const auto tech = lib::default_technology();
  const double K = 1.0;  // lambda(d) = K/d, d in µm
  const double L = 3000.0, i_down = 20e-6, ns = 0.8;
  const auto d = core::required_separation(150.0, tech.wire_res_per_um,
                                           tech.wire_cap_per_um, K,
                                           tech.aggressor_slope(), ns, i_down,
                                           L);
  ASSERT_TRUE(d.has_value());
  // Reconstruct noise at separation d: lambda = K/d.
  const double lam = K / *d;
  const double i_per = lam * tech.wire_cap_per_um * tech.aggressor_slope();
  const double noise = core::uniform_wire_noise(150.0, tech.wire_res_per_um,
                                                i_per, L, i_down);
  EXPECT_NEAR(noise, ns, ns * 1e-9);
}

TEST(Separation, InfeasibleWhenResistiveNoiseAlone) {
  // Downstream current noise through driver+wire already exceeds NS.
  const auto d = core::required_separation(400.0, 0.073, 0.21e-15, 1.0,
                                           7.2e9, 0.05, 1e-3, 2000.0);
  EXPECT_FALSE(d.has_value());
}

TEST(Separation, LongerWireNeedsMoreSeparation) {
  const auto tech = lib::default_technology();
  const auto d1 = core::required_separation(150.0, tech.wire_res_per_um,
                                            tech.wire_cap_per_um, 1.0,
                                            tech.aggressor_slope(), 0.8, 0.0,
                                            2000.0);
  const auto d2 = core::required_separation(150.0, tech.wire_res_per_um,
                                            tech.wire_cap_per_um, 1.0,
                                            tech.aggressor_slope(), 0.8, 0.0,
                                            6000.0);
  ASSERT_TRUE(d1 && d2);
  EXPECT_GT(*d2, *d1);
}

// --- uniform wire noise consistency with the per-wire metric -------------------

TEST(UniformNoise, SegmentedSumEqualsClosedForm) {
  // Splitting the wire into n segments and applying eq. 8/9 converges to the
  // closed form as n grows (the closed form is the distributed limit).
  const Params p;
  const double L = 2500.0;
  const double whole =
      core::uniform_wire_noise(p.r_drv, p.r_per, p.i_per, L, p.i_down);
  const int n = 2000;
  const double seg = L / n;
  double noise = 0.0;
  double downstream = p.i_down;
  // Walk from the sink end upward accumulating eq. 8 per segment; driver
  // term added last.
  for (int k = 0; k < n; ++k) {
    noise += p.r_per * seg * (p.i_per * seg / 2.0 + downstream);
    downstream += p.i_per * seg;
  }
  noise += p.r_drv * downstream;
  EXPECT_NEAR(noise, whole, whole * 1e-3);
}

TEST(UniformNoise, MatchesTwoSegmentDecomposition) {
  // Closed form must be *exactly* additive under the pi-model split.
  const Params p;
  const double L = 3000.0, L1 = 1100.0;
  const double whole =
      core::uniform_wire_noise(p.r_drv, p.r_per, p.i_per, L, p.i_down);
  // Lower segment seen from a zero-resistance "driver", upper segment seen
  // from the true driver with the lower segment's current downstream.
  const double lower =
      core::uniform_wire_noise(0.0, p.r_per, p.i_per, L1, p.i_down);
  const double upper = core::uniform_wire_noise(
      p.r_drv, p.r_per, p.i_per, L - L1, p.i_down + p.i_per * L1);
  EXPECT_NEAR(whole, lower + upper, whole * 1e-12);
}

}  // namespace
