// Cross-module integration tests: the Section V experimental pipeline on a
// reduced testbench.
#include <gtest/gtest.h>

#include "core/alg2_multi_sink.hpp"
#include "core/tool.hpp"
#include "netgen/netgen.hpp"
#include "noise/devgan.hpp"
#include "sim/golden.hpp"

namespace {

using namespace nbuf;

const lib::BufferLibrary kLib = lib::default_library();

std::vector<netgen::GeneratedNet> bench(std::size_t n, std::uint64_t seed) {
  netgen::TestbenchOptions o;
  o.net_count = n;
  o.seed = seed;
  return netgen::generate_testbench(kLib, o);
}

TEST(Integration, BuffOptFixesEveryMetricViolation) {
  for (const auto& net : bench(25, 101)) {
    const auto res = core::run_buffopt(net.tree, kLib);
    ASSERT_TRUE(res.vg.feasible) << net.name;
    EXPECT_EQ(res.noise_after.violation_count, 0u) << net.name;
  }
}

TEST(Integration, GoldenToolConfirmsBuffOpt) {
  // The 3dnoise-style check of Table II: after BuffOpt, the detailed
  // simulator finds zero violations as well.
  const auto gopt = sim::golden_options_from(lib::default_technology());
  for (const auto& net : bench(12, 202)) {
    const auto res = core::run_buffopt(net.tree, kLib);
    const auto golden =
        sim::golden_analyze(res.tree, res.vg.buffers, kLib, gopt);
    EXPECT_EQ(golden.violation_count, 0u) << net.name;
  }
}

TEST(Integration, MetricIsConservativeVsGolden) {
  // Every golden-detected violation is also metric-detected (Table II's
  // "423 >= 386" relationship), per net.
  const auto gopt = sim::golden_options_from(lib::default_technology());
  std::size_t metric_flagged = 0, golden_flagged = 0;
  for (const auto& net : bench(20, 303)) {
    const bool m = !noise::analyze_unbuffered(net.tree).clean();
    const bool g =
        sim::golden_analyze_unbuffered(net.tree, gopt).violation_count > 0;
    metric_flagged += m;
    golden_flagged += g;
    if (g) {
      EXPECT_TRUE(m) << net.name << ": golden flagged but metric not";
    }
  }
  EXPECT_GE(metric_flagged, golden_flagged);
  EXPECT_GT(golden_flagged, 0u);
}

TEST(Integration, DelayOptLeavesViolationsSomewhere) {
  // Theorem 2 at workload level: across a noisy workload, delay-only
  // buffering with a small budget does not fix everything.
  std::size_t leftovers = 0;
  for (const auto& net : bench(20, 404)) {
    const auto res = core::run_delayopt(net.tree, kLib, 2);
    leftovers += res.noise_after.violation_count > 0 ? 1 : 0;
  }
  EXPECT_GT(leftovers, 0u);
}

TEST(Integration, BuffOptDelayPenaltyIsSmallOnAverage) {
  // Table IV: at matched buffer counts, BuffOpt's delay is within a few
  // percent of DelayOpt's.
  double buff_total = 0.0, delay_total = 0.0;
  std::size_t counted = 0;
  for (const auto& net : bench(20, 505)) {
    const auto b = core::run_buffopt(net.tree, kLib);
    if (b.vg.buffer_count == 0) continue;
    const auto d = core::run_delayopt(net.tree, kLib, b.vg.buffer_count);
    buff_total += b.timing_after.max_delay;
    delay_total += d.timing_after.max_delay;
    ++counted;
  }
  ASSERT_GT(counted, 5u);
  EXPECT_LE(buff_total, delay_total * 1.05);
  // DelayOpt is the unconstrained optimum, so it can only be faster.
  EXPECT_GE(buff_total, delay_total * 0.999);
}

TEST(Integration, Alg2AndBuffOptBothClean) {
  // Problem 1 (Alg 2) and Problem 2/3 (Alg 3) answers are both noise-clean;
  // Alg 2 never uses more buffers than the noise-minimal BuffOpt count on
  // single-sink nets... on trees we only require both clean.
  for (const auto& net : bench(10, 606)) {
    const auto a2 = core::avoid_noise_multi_sink(net.tree, kLib);
    EXPECT_TRUE(noise::analyze(a2.tree, a2.buffers, kLib).clean())
        << net.name;
    const auto a3 = core::run_buffopt(net.tree, kLib);
    EXPECT_TRUE(a3.noise_after.clean()) << net.name;
  }
}

TEST(Integration, BuffOptRuntimeComparableToDelayOpt) {
  // Table III's CPU observation: at a matched buffer-count cap, BuffOpt's
  // noise pruning explores no more candidates than DelayOpt, so its runtime
  // is comparable (the bound is relaxed for timer jitter).
  double t_buff = 0.0, t_delay = 0.0;
  std::size_t c_buff = 0, c_delay = 0;
  for (const auto& net : bench(15, 707)) {
    core::ToolOptions opt;
    opt.vg.max_buffers = 4;
    const auto b = core::run_buffopt(net.tree, kLib, opt);
    const auto d = core::run_delayopt(net.tree, kLib, 4);
    t_buff += b.optimize_seconds;
    t_delay += d.optimize_seconds;
    c_buff += b.vg.candidates_created;
    c_delay += d.vg.candidates_created;
  }
  EXPECT_LE(c_buff, c_delay);  // the paper's mechanism, exactly
  // The wall-clock consequence (BuffOpt CPU <= DelayOpt CPU at matched
  // budget) is asserted by bench/table3_buffopt_vs_delayopt, where the run
  // is not perturbed by parallel test load; here only require the timers
  // to have measured something.
  EXPECT_GE(t_buff + t_delay, 0.0);
}

TEST(Integration, SegmentationGranularityImprovesSlack) {
  // Alpert-Devgan tradeoff: finer segmenting cannot make the optimum worse.
  const auto nets = bench(5, 808);
  for (const auto& net : nets) {
    core::ToolOptions coarse, fine;
    coarse.segmenting.max_segment_length = 2000.0;
    fine.segmenting.max_segment_length = 250.0;
    coarse.vg.noise_constraints = false;
    fine.vg.noise_constraints = false;
    const auto rc = core::run(net.tree, kLib, coarse);
    const auto rf = core::run(net.tree, kLib, fine);
    EXPECT_GE(rf.vg.slack, rc.vg.slack - 1e-15) << net.name;
  }
}

}  // namespace
