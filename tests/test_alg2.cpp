#include <gtest/gtest.h>

#include "common/test_nets.hpp"
#include "core/alg1_single_sink.hpp"
#include "core/alg2_multi_sink.hpp"
#include "noise/devgan.hpp"
#include "seg/segment.hpp"
#include "sim/golden.hpp"
#include "steiner/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();

rct::RoutingTree random_net(util::Rng& rng, int sinks, double span) {
  std::vector<steiner::PinSpec> pins;
  for (int i = 0; i < sinks; ++i) {
    steiner::PinSpec p;
    p.at = {rng.uniform(0.2 * span, span), rng.uniform(0, span)};
    p.info = default_sink(rng.uniform(5 * fF, 30 * fF), 0.0, 0.8,
                          ("s" + std::to_string(i)).c_str());
    pins.push_back(p);
  }
  return steiner::build_tree({0, 0}, default_driver(rng.uniform(60, 300)),
                             pins, lib::default_technology());
}

TEST(Alg2, CleanNetGetsNoBuffers) {
  const auto f = test::fig3_net();
  const auto res = core::avoid_noise_multi_sink(f.tree, kLib);
  EXPECT_EQ(res.buffer_count, 0u);
}

TEST(Alg2, MatchesAlg1OnTwoPinNets) {
  for (double len : {3000.0, 6000.0, 9000.0, 13000.0}) {
    auto t1 = test::long_two_pin(len);
    auto t2 = test::long_two_pin(len);
    const auto r1 = core::avoid_noise_single_sink(t1, kLib);
    const auto r2 = core::avoid_noise_multi_sink(t2, kLib);
    EXPECT_EQ(r1.buffer_count, r2.buffer_count) << "length " << len;
    const auto after = noise::analyze(r2.tree, r2.buffers, kLib);
    EXPECT_EQ(after.violation_count, 0u);
  }
}

TEST(Alg2, FixesViolatingBalancedTree) {
  auto t = steiner::make_balanced_tree(3, 1500.0, default_driver(),
                                       default_sink(),
                                       lib::default_technology());
  ASSERT_GT(noise::analyze_unbuffered(t).violation_count, 0u);
  const auto res = core::avoid_noise_multi_sink(t, kLib);
  EXPECT_GT(res.buffer_count, 0u);
  const auto after = noise::analyze(res.tree, res.buffers, kLib);
  EXPECT_EQ(after.violation_count, 0u);
}

TEST(Alg2, GoldenSimulationConfirmsFix) {
  auto t = steiner::make_balanced_tree(2, 2500.0, default_driver(),
                                       default_sink(),
                                       lib::default_technology());
  const auto opt = sim::golden_options_from(lib::default_technology());
  ASSERT_GT(sim::golden_analyze_unbuffered(t, opt).violation_count, 0u);
  const auto res = core::avoid_noise_multi_sink(t, kLib);
  const auto golden = sim::golden_analyze(res.tree, res.buffers, kLib, opt);
  EXPECT_EQ(golden.violation_count, 0u);
}

TEST(Alg2, MergeForkScenario) {
  // Two branches individually legal but jointly violating at the merge:
  // forces the Step-5/6 fork. Build a Y: short stem, two medium branches.
  const auto tech = lib::default_technology();
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver(400.0));
  auto wire_of = [&](double len) {
    return rct::Wire{len, tech.wire_res(len), tech.wire_cap(len),
                     tech.wire_coupling_current(len)};
  };
  const auto mid = t.add_internal(so, wire_of(300.0), "stem");
  t.add_sink(mid, wire_of(2300.0), default_sink(10 * fF, 0, 0.8, "l"));
  t.add_sink(mid, wire_of(2300.0), default_sink(10 * fF, 0, 0.8, "r"));
  t.validate();
  ASSERT_GT(noise::analyze_unbuffered(t).violation_count, 0u);
  const auto res = core::avoid_noise_multi_sink(t, kLib);
  const auto after = noise::analyze(res.tree, res.buffers, kLib);
  EXPECT_EQ(after.violation_count, 0u);
  EXPECT_GE(res.buffer_count, 1u);
}

TEST(Alg2, HighFanoutBinarizedTree) {
  const auto tech = lib::default_technology();
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver(150.0));
  auto wire_of = [&](double len) {
    return rct::Wire{len, tech.wire_res(len), tech.wire_cap(len),
                     tech.wire_coupling_current(len)};
  };
  const auto hub = t.add_internal(so, wire_of(2000.0), "hub");
  for (int i = 0; i < 6; ++i)
    t.add_sink(hub, wire_of(1800.0),
               default_sink(10 * fF, 0, 0.8, ("s" + std::to_string(i)).c_str()));
  t.binarize();
  ASSERT_GT(noise::analyze_unbuffered(t).violation_count, 0u);
  const auto res = core::avoid_noise_multi_sink(t, kLib);
  const auto after = noise::analyze(res.tree, res.buffers, kLib);
  EXPECT_EQ(after.violation_count, 0u);
}

TEST(Alg2, RequiresBinaryTree) {
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver());
  const auto hub = t.add_internal(so, rct::Wire{100, 10, 1 * fF, 0});
  for (int i = 0; i < 3; ++i)
    t.add_sink(hub, rct::Wire{50, 5, 1 * fF, 0},
               default_sink(5 * fF, 0, 0.8, ("s" + std::to_string(i)).c_str()));
  EXPECT_THROW((void)core::avoid_noise_multi_sink(t, kLib),
               std::invalid_argument);
}

TEST(Alg2, RandomSteinerNetsAlwaysFixed) {
  util::Rng rng(4242);
  int violating = 0;
  for (int trial = 0; trial < 15; ++trial) {
    auto t = random_net(rng, rng.uniform_int(2, 8),
                        rng.uniform(4000.0, 10000.0));
    const bool had = noise::analyze_unbuffered(t).violation_count > 0;
    violating += had ? 1 : 0;
    const auto res = core::avoid_noise_multi_sink(t, kLib);
    const auto after = noise::analyze(res.tree, res.buffers, kLib);
    EXPECT_EQ(after.violation_count, 0u) << "trial " << trial;
    if (!had) {
      EXPECT_EQ(res.buffer_count, 0u);
    }
  }
  EXPECT_GT(violating, 5);  // the workload really exercises the algorithm
}

TEST(Alg2, WeakDriverSourceGuard) {
  auto t = steiner::make_balanced_tree(2, 900.0, default_driver(5000.0),
                                       default_sink(),
                                       lib::default_technology());
  ASSERT_GT(noise::analyze_unbuffered(t).violation_count, 0u);
  const auto res = core::avoid_noise_multi_sink(t, kLib);
  const auto after = noise::analyze(res.tree, res.buffers, kLib);
  EXPECT_EQ(after.violation_count, 0u);
  EXPECT_GE(res.buffer_count, 1u);
}

TEST(Alg2, StatsAreTracked) {
  auto t = steiner::make_balanced_tree(3, 1500.0, default_driver(),
                                       default_sink(),
                                       lib::default_technology());
  const auto res = core::avoid_noise_multi_sink(t, kLib);
  EXPECT_GT(res.stats.candidates_created, 0u);
  EXPECT_GE(res.stats.max_list_size, 1u);
}

TEST(Alg2, NeverWorseThanBestDiscreteSolution) {
  // Alg 2 places buffers continuously (Theorem 1 positions), so its count
  // must never exceed the best achievable on any finite segmentation.
  util::Rng rng(5150);
  for (int trial = 0; trial < 6; ++trial) {
    auto t = random_net(rng, rng.uniform_int(2, 3),
                        rng.uniform(3500.0, 6000.0));
    auto discrete = t;
    seg::segment(discrete, {600.0});
    // Exhaustive minimum over <= 2^sites subsets with the noise buffer type
    // (skip when too many sites).
    std::vector<rct::NodeId> sites;
    for (auto id : discrete.preorder())
      if (discrete.node(id).kind == rct::NodeKind::Internal &&
          discrete.node(id).buffer_allowed)
        sites.push_back(id);
    if (sites.size() > 14) continue;
    const lib::BufferId bid = core::noise_buffer_choice(kLib);
    std::size_t best = SIZE_MAX;
    for (std::size_t mask = 0; mask < (1u << sites.size()); ++mask) {
      rct::BufferAssignment a;
      for (std::size_t i = 0; i < sites.size(); ++i)
        if (mask & (1u << i)) a.place(sites[i], bid);
      if (a.size() >= best) continue;
      if (noise::analyze(discrete, a, kLib).clean()) best = a.size();
    }
    ASSERT_NE(best, SIZE_MAX);
    const auto res = core::avoid_noise_multi_sink(t, kLib);
    EXPECT_LE(res.buffer_count, best) << "trial " << trial;
  }
}

TEST(Alg2, BufferCountIsMinimalOnForkCase) {
  // For the Y net above, one buffer on one branch (plus none elsewhere)
  // suffices; the optimal algorithm must not use more than two.
  const auto tech = lib::default_technology();
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver(400.0));
  auto wire_of = [&](double len) {
    return rct::Wire{len, tech.wire_res(len), tech.wire_cap(len),
                     tech.wire_coupling_current(len)};
  };
  const auto mid = t.add_internal(so, wire_of(300.0), "stem");
  t.add_sink(mid, wire_of(2300.0), default_sink(10 * fF, 0, 0.8, "l"));
  t.add_sink(mid, wire_of(2300.0), default_sink(10 * fF, 0, 0.8, "r"));
  const auto res = core::avoid_noise_multi_sink(t, kLib);
  EXPECT_LE(res.buffer_count, 2u);
}

}  // namespace
