// Net-file parser/writer: happy paths, round-trips, and failure injection.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <vector>

#include "util/rng.hpp"

#include "common/test_nets.hpp"
#include "core/tool.hpp"
#include "io/netfile.hpp"
#include "netgen/netgen.hpp"
#include "noise/devgan.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

const lib::BufferLibrary kLib = lib::default_library();

io::NetFile parse(const std::string& text) {
  std::istringstream in(text);
  return io::read_net(in, kLib);
}

const char* kBasicNet = R"(
# a comment
name demo
tech 0.073 0.21 1.8 250 0.7
driver drv 150 30
node mid source 1000
sink s0 mid 2000 15 1400 0.8
)";

TEST(NetFileRead, BasicNet) {
  const auto net = parse(kBasicNet);
  EXPECT_EQ(net.name, "demo");
  EXPECT_EQ(net.tree.node_count(), 3u);
  EXPECT_EQ(net.tree.sink_count(), 1u);
  ASSERT_TRUE(net.tech.has_value());
  EXPECT_DOUBLE_EQ(net.tech->coupling_ratio, 0.7);
  EXPECT_DOUBLE_EQ(net.tree.driver().resistance, 150.0);
  EXPECT_NEAR(net.tree.driver().intrinsic_delay, 30 * ps, 1e-18);
}

TEST(NetFileRead, UnitsAreConverted) {
  const auto net = parse(kBasicNet);
  const auto& s = net.tree.sinks().front();
  EXPECT_NEAR(s.cap, 15 * fF, 1e-20);
  EXPECT_NEAR(s.required_arrival, 1400 * ps, 1e-15);
  EXPECT_DOUBLE_EQ(s.noise_margin, 0.8);
  // Wire electricals derived from tech.
  const auto& w = net.tree.node(s.node).parent_wire;
  EXPECT_NEAR(w.resistance, 0.073 * 2000.0, 1e-9);
  EXPECT_NEAR(w.capacitance, 0.21 * fF * 2000.0, 1e-22);
}

TEST(NetFileRead, ExplicitWireElectricals) {
  const auto net = parse(R"(
driver drv 100 0
node a source 1000 50 200 300
sink s a 1000 10 0 0.8 60 250 400
)");
  const auto a = net.tree.node(net.tree.source()).children.front();
  EXPECT_DOUBLE_EQ(net.tree.node(a).parent_wire.resistance, 50.0);
  EXPECT_NEAR(net.tree.node(a).parent_wire.capacitance, 200 * fF, 1e-20);
  EXPECT_NEAR(net.tree.node(a).parent_wire.coupling_current, 300 * uA,
              1e-12);
  const auto& sw = net.tree.node(net.tree.sinks().front().node).parent_wire;
  EXPECT_DOUBLE_EQ(sw.resistance, 60.0);
}

TEST(NetFileRead, InvertedFlagAndBufferLines) {
  const auto net = parse(R"(
tech 0.073 0.21 1.8 250 0.7
driver drv 150 30
node mid source 1000
sink s0 mid 500 10 0 0.8 inverted
buffer mid buf_x8
)");
  EXPECT_TRUE(net.tree.sinks().front().require_inverted);
  EXPECT_EQ(net.buffers.size(), 1u);
}

TEST(NetFileRead, CommentsAndBlankLinesIgnored) {
  const auto net = parse(R"(

# full line comment
tech 0.073 0.21 1.8 250 0.7   # trailing comment
driver drv 150 30  # another

sink s0 source 500 10 0 0.8
)");
  EXPECT_EQ(net.tree.sink_count(), 1u);
}

// --- failure injection ----------------------------------------------------------

void expect_error(const std::string& text, const char* needle) {
  try {
    (void)parse(text);
    FAIL() << "expected ParseError containing '" << needle << "'";
  } catch (const io::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(NetFileErrors, UnknownKeyword) {
  expect_error(
      "driver d 1 0\nsink s source 1 1 0 0.8 1 1 1\nfrobnicate x\n",
      "unknown keyword");
}

TEST(NetFileErrors, MissingDriver) {
  expect_error("tech 0.073 0.21 1.8 250 0.7\n", "no driver");
}

TEST(NetFileErrors, NodesBeforeDriver) {
  expect_error("node a source 100\n", "driver line must precede");
}

TEST(NetFileErrors, DuplicateDriver) {
  expect_error("driver a 1 0\ndriver b 1 0\n", "duplicate driver");
}

TEST(NetFileErrors, UnknownParent) {
  expect_error("driver d 1 0\nnode a nope 100 1 1 1\n", "unknown parent");
}

TEST(NetFileErrors, DuplicateName) {
  expect_error(
      "driver d 1 0\nnode a source 1 1 1 1\nnode a source 1 1 1 1\n",
      "duplicate node name");
}

TEST(NetFileErrors, ImplicitWireWithoutTech) {
  expect_error("driver d 1 0\nnode a source 100\n", "no `tech` line");
}

TEST(NetFileErrors, BadNumber) {
  expect_error("driver d abc 0\n", "expected number");
}

TEST(NetFileErrors, NegativeElectricals) {
  expect_error("driver d 1 0\nnode a source 1 -5 1 1\n", "negative");
}

TEST(NetFileErrors, BadNoiseMargin) {
  expect_error("driver d 1 0\nsink s source 1 1 0 0 1 1 1\n",
               "noise margin");
}

TEST(NetFileErrors, PartialSinkElectricals) {
  expect_error("driver d 1 0\nsink s source 1 1 0 0.8 5 5\n",
               "exactly 3 numbers");
}

TEST(NetFileErrors, UnknownBufferType) {
  expect_error(
      "tech 0.073 0.21 1.8 250 0.7\ndriver d 1 0\nnode a source 1\n"
      "sink s a 1 1 0 0.8\nbuffer a not_a_buffer\n",
      "unknown buffer type");
}

TEST(NetFileErrors, TrailingGarbageOnSink) {
  expect_error("driver d 1 0\nsink s source 1 1 0 0.8 banana\n",
               "unexpected trailing token");
}

TEST(NetFileErrors, NoSinks) {
  expect_error("tech 0.073 0.21 1.8 250 0.7\ndriver d 1 0\n"
               "node a source 10\n",
               "no sinks");
}

TEST(NetFileErrors, LineNumberIsReported) {
  try {
    (void)parse("driver d 1 0\n\n\nnode a nope 1 1 1 1\n");
    FAIL();
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.line(), 4u);
  }
}

// --- fuzz: the parser must fail cleanly, never crash -----------------------------

TEST(NetFileFuzz, RandomTokenSoupAlwaysThrowsCleanly) {
  util::Rng rng(31337);
  const std::vector<std::string> words = {
      "driver", "node",  "sink",   "tech", "buffer", "name", "source",
      "1",      "-3.5",  "1e300",  "nan",  "inf",    "x",    "inverted",
      "#",      "",      "bufx99", "0",
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int lines = rng.uniform_int(1, 12);
    for (int l = 0; l < lines; ++l) {
      const int toks = rng.uniform_int(0, 8);
      for (int k = 0; k < toks; ++k) {
        text += words[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(words.size()) - 1))];
        text += ' ';
      }
      text += '\n';
    }
    try {
      const auto net = parse(text);
      // Accepted inputs must at least be structurally valid.
      net.tree.validate();
    } catch (const io::ParseError&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::logic_error&) {
    }
  }
}

TEST(NetFileFuzz, MutatedValidFileNeverCrashes) {
  util::Rng rng(777);
  const std::string base(kBasicNet);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = base;
    // Random single-character mutations.
    const int edits = rng.uniform_int(1, 6);
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(text.size()) - 1));
      const char c = static_cast<char>(rng.uniform_int(32, 126));
      if (rng.chance(0.5)) {
        text[pos] = c;
      } else {
        text.insert(pos, 1, c);
      }
    }
    try {
      const auto net = parse(text);
      net.tree.validate();
    } catch (const io::ParseError&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::logic_error&) {
    }
  }
}

// --- round-trips ------------------------------------------------------------------

TEST(NetFileRoundTrip, ElectricalsExact) {
  auto f = test::fig3_net();
  std::ostringstream out;
  io::write_net(out, "fig3", f.tree, {}, kLib);
  std::istringstream in(out.str());
  const auto back = io::read_net(in, kLib);
  EXPECT_EQ(back.tree.node_count(), f.tree.node_count());
  EXPECT_EQ(back.tree.sink_count(), f.tree.sink_count());
  EXPECT_DOUBLE_EQ(back.tree.total_cap(), f.tree.total_cap());
  EXPECT_DOUBLE_EQ(back.tree.total_wirelength(), f.tree.total_wirelength());
  EXPECT_DOUBLE_EQ(back.tree.total_coupling_current(),
                   f.tree.total_coupling_current());
  // Analysis-equivalent, not just aggregate-equivalent.
  const auto a = noise::analyze_unbuffered(f.tree);
  const auto b = noise::analyze_unbuffered(back.tree);
  for (std::size_t i = 0; i < a.sinks.size(); ++i)
    EXPECT_DOUBLE_EQ(a.sinks[i].noise, b.sinks[i].noise);
}

TEST(NetFileRoundTrip, BufferedSolutionSurvives) {
  auto t = test::long_two_pin(9000.0);
  const auto res = core::run_buffopt(t, kLib);
  std::ostringstream out;
  io::write_net(out, "buffered", res.tree, res.vg.buffers, kLib);
  std::istringstream in(out.str());
  const auto back = io::read_net(in, kLib);
  EXPECT_EQ(back.buffers.size(), res.vg.buffers.size());
  const auto before = noise::analyze(res.tree, res.vg.buffers, kLib);
  const auto after = noise::analyze(back.tree, back.buffers, kLib);
  EXPECT_EQ(after.violation_count, 0u);
  EXPECT_NEAR(after.worst_slack, before.worst_slack, 1e-12);
}

TEST(NetFileRoundTrip, InvertedFlagSurvives) {
  auto net = parse(R"(
tech 0.073 0.21 1.8 250 0.7
driver drv 150 30
node mid source 1000
sink pos mid 500 10 0 0.8
sink neg mid 500 10 0 0.8 inverted
)");
  std::ostringstream out;
  io::write_net(out, "x", net.tree, {}, kLib);
  std::istringstream in(out.str());
  const auto back = io::read_net(in, kLib);
  EXPECT_FALSE(back.tree.sinks()[0].require_inverted);
  EXPECT_TRUE(back.tree.sinks()[1].require_inverted);
}

// write -> read -> write must be the identity on the bytes, not merely
// analysis-equivalent: CI diffs exported workloads, so any formatting
// drift (double printing, buffer-line order) shows up as churn. Buffered
// netgen nets cover every line kind the writer can emit.
TEST(NetFileRoundTrip, SecondWriteIsByteIdentical) {
  netgen::TestbenchOptions gen;
  gen.net_count = 20;
  gen.seed = 20260807;
  const auto nets = netgen::generate_testbench(kLib, gen);
  ASSERT_EQ(nets.size(), 20u);
  for (const auto& n : nets) {
    const auto res = core::run_buffopt(n.tree, kLib);
    std::ostringstream first;
    io::write_net(first, n.name, res.tree, res.vg.buffers, kLib);
    std::istringstream in(first.str());
    const auto back = io::read_net(in, kLib);
    std::ostringstream second;
    io::write_net(second, back.name, back.tree, back.buffers, kLib);
    ASSERT_EQ(first.str(), second.str()) << "formatting drift on " << n.name;
  }
}

// The buffer lines specifically must not depend on assignment hash order:
// the same placements made in a different order print identically.
TEST(NetFileWrite, BufferLinesSortedByNode) {
  auto t = test::long_two_pin(9000.0);
  const auto res = core::run_buffopt(t, kLib);
  const auto entries = res.vg.buffers.entries();
  ASSERT_GE(entries.size(), 2u) << "need >=2 buffers to exercise ordering";
  rct::BufferAssignment reversed;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it)
    reversed.place(it->first, it->second);
  std::ostringstream a, b;
  io::write_net(a, "order", res.tree, res.vg.buffers, kLib);
  io::write_net(b, "order", res.tree, reversed, kLib);
  EXPECT_EQ(a.str(), b.str());
}

// --- corrupt-file corpus --------------------------------------------------------
//
// tests/data/corrupt/ holds one file per parser failure mode the fuzz-ish
// corpus covers: truncation, duplicate nodes/drivers, cycle-introducing
// parents, NaN/inf/overflow numerics, negative electricals, unknown
// keywords/buffer types, trailing garbage. Every file must be rejected
// with a structured ParseError (never a crash, hang, or silent accept),
// and the error must carry a usable line number and message.

TEST(NetFileCorpus, EveryCorruptFileThrowsParseError) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const fs::directory_entry& e : fs::directory_iterator(NBUF_CORRUPT_DIR))
    if (e.is_regular_file() && e.path().extension() == ".net")
      files.push_back(e.path());
  ASSERT_GE(files.size(), 15u) << "corrupt corpus went missing";
  for (const fs::path& p : files) {
    try {
      (void)io::read_net_file(p.string(), kLib);
      FAIL() << p.filename() << ": parser accepted a corrupt file";
    } catch (const io::ParseError& e) {
      EXPECT_GE(e.line(), 1u) << p.filename();
      EXPECT_STRNE(e.what(), "") << p.filename();
    } catch (const std::exception& e) {
      FAIL() << p.filename() << ": wrong exception type: " << e.what();
    }
  }
}

TEST(NetFileRoundTrip, AnonymousNodesGetNames) {
  // Split wires create unnamed nodes; the writer must invent unique names.
  auto t = test::long_two_pin(3000.0);
  (void)t.split_wire(t.sinks().front().node, 1000.0);
  (void)t.split_wire(t.sinks().front().node, 500.0);
  std::ostringstream out;
  io::write_net(out, "anon", t, {}, kLib);
  std::istringstream in(out.str());
  const auto back = io::read_net(in, kLib);
  EXPECT_EQ(back.tree.node_count(), t.node_count());
}

}  // namespace
