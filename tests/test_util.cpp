#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strong_id.hpp"
#include "util/table.hpp"

namespace {

using namespace nbuf;

// --- check -----------------------------------------------------------------

TEST(Check, ExpectsThrowsInvalidArgument) {
  EXPECT_THROW(NBUF_EXPECTS(false), std::invalid_argument);
  EXPECT_NO_THROW(NBUF_EXPECTS(true));
}

TEST(Check, AssertThrowsLogicError) {
  EXPECT_THROW(NBUF_ASSERT(false), std::logic_error);
  EXPECT_NO_THROW(NBUF_ASSERT(true));
}

TEST(Check, MessageIsCarried) {
  try {
    NBUF_EXPECTS_MSG(false, "useful context");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("useful context"),
              std::string::npos);
  }
}

// --- strong ids --------------------------------------------------------------

struct TagA {};
struct TagB {};
using IdA = util::StrongId<TagA>;
using IdB = util::StrongId<TagB>;

TEST(StrongId, DefaultIsInvalid) {
  IdA id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, IdA::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  IdA id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(IdA{1}, IdA{2});
  EXPECT_NE(IdA{1}, IdA{2});
  EXPECT_EQ(IdA{7}, IdA{7});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<IdA, IdB>);
}

TEST(StrongId, Hashable) {
  std::set<IdA> s{IdA{1}, IdA{2}};
  EXPECT_EQ(s.size(), 2u);
  std::hash<IdA> h;
  EXPECT_EQ(h(IdA{5}), h(IdA{5}));
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, Deterministic) {
  util::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, UniformInRange) {
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  util::Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.uniform_int(1, 4);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 4);
    saw_lo |= x == 1;
    saw_hi |= x == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LogUniformInRange) {
  util::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.log_uniform(10.0, 1000.0);
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(Rng, LogUniformFavorsLowDecades) {
  util::Rng rng(11);
  int low = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i)
    if (rng.log_uniform(1.0, 100.0) < 10.0) ++low;
  // log-uniform: P(x < 10) = 0.5 over two decades.
  EXPECT_NEAR(static_cast<double>(low) / trials, 0.5, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  util::Rng rng(5);
  const std::vector<double> w = {9.0, 1.0};
  int zero = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.weighted_index(w) == 0) ++zero;
  EXPECT_NEAR(zero / 10000.0, 0.9, 0.03);
}

TEST(Rng, ChanceBounds) {
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// --- stats -------------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const auto s = util::summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const auto s = util::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0.5), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(util::percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Stats, Histogram) {
  const auto h = util::histogram({1, 2, 2, 3, 3, 3});
  EXPECT_EQ(h.at(1), 1u);
  EXPECT_EQ(h.at(2), 2u);
  EXPECT_EQ(h.at(3), 3u);
}

// --- table -------------------------------------------------------------------

TEST(Table, RendersHeaderRuleAndRows) {
  util::Table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("--"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, RejectsWrongArity) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(util::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(util::Table::integer(42), "42");
  EXPECT_EQ(util::Table::percent(0.0199, 2), "1.99%");
}

}  // namespace
