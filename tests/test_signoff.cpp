// Signoff subsystem: golden-vs-metric verification of optimizer output.
//
// The load-bearing acceptance test lives here: on a 200-net synthetic
// workload, every solution the optimizer calls noise-feasible must pass
// golden signoff (the Devgan metric provably upper-bounds the simulated
// peak, so metric-clean implies golden-clean), the pessimism histogram
// must be populated, and the whole WorkloadSignoff must reproduce
// bit-identically at 1 and 8 threads.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "batch/batch.hpp"
#include "common/test_nets.hpp"
#include "core/tool.hpp"
#include "netgen/netgen.hpp"
#include "util/json.hpp"
#include "signoff/signoff.hpp"
#include "signoff/workload.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;

const lib::BufferLibrary kLib = lib::default_library();

signoff::SignoffOptions default_options() {
  signoff::SignoffOptions opt;
  opt.golden = sim::golden_options_from(lib::default_technology());
  return opt;
}

// --- JsonWriter ----------------------------------------------------------

TEST(JsonWriter, NestedStructure) {
  signoff::JsonWriter j;
  j.begin_object();
  j.field("a", std::size_t{1});
  j.key("b");
  j.begin_array();
  j.value(true);
  j.value(std::string_view("x\"y"));
  j.null();
  j.end_array();
  j.end_object();
  EXPECT_EQ(j.str(), R"({"a":1,"b":[true,"x\"y",null]})");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  signoff::JsonWriter j;
  j.begin_array();
  j.value(std::numeric_limits<double>::quiet_NaN());
  j.value(std::numeric_limits<double>::infinity());
  j.value(0.5);
  j.end_array();
  EXPECT_EQ(j.str(), "[null,null,0.5]");
}

// --- single-net verify ---------------------------------------------------

TEST(Signoff, CleanBuffoptSolutionPasses) {
  auto t = test::long_two_pin(9000.0);
  // The fixture's RAT is 0 (timing-unconstrained); give the sink an
  // achievable deadline so signoff checks all three engines for real.
  rct::SinkInfo s = t.sinks().front();
  s.required_arrival = 2.0 * ns;
  t.set_sink_info(rct::SinkId{0}, s);
  const auto res = core::run_buffopt(t, kLib);
  ASSERT_TRUE(res.vg.feasible);
  const auto rep = signoff::verify_result("two_pin", res, kLib, {},
                                          default_options());
  EXPECT_TRUE(rep.pass());
  EXPECT_TRUE(rep.optimizer_feasible);
  EXPECT_EQ(rep.buffer_count, res.vg.buffer_count);
  ASSERT_FALSE(rep.leaves.empty());
  for (const auto& leaf : rep.leaves) {
    EXPECT_GE(leaf.metric_noise + 1e-9, leaf.golden_peak) << "bound broke";
    EXPECT_TRUE(leaf.pass);
  }
}

TEST(Signoff, UnbufferedViolatingNetIsFlaggedByBothEngines) {
  auto t = test::long_two_pin(9000.0);  // far beyond critical length
  const auto rep =
      signoff::verify("raw", t, {}, kLib, default_options());
  EXPECT_FALSE(rep.pass());
  EXPECT_GE(rep.count(signoff::ViolationKind::GoldenNoise), 1u);
  EXPECT_GE(rep.count(signoff::ViolationKind::MetricNoise), 1u);
  EXPECT_EQ(rep.count(signoff::ViolationKind::BoundBroken), 0u);
  EXPECT_LT(rep.worst_golden_slack, 0.0);
  EXPECT_LT(rep.worst_metric_slack, rep.worst_golden_slack)
      << "metric must be the more pessimistic engine";
}

TEST(Signoff, ToleranceConvertsViolationIntoPass) {
  auto t = test::long_two_pin(9000.0);
  auto opt = default_options();
  const auto strict = signoff::verify("strict", t, {}, kLib, opt);
  ASSERT_FALSE(strict.pass());
  // Grace larger than the worst excursion: every noise check now passes.
  opt.tol.noise_slack = -strict.worst_metric_slack + 1e-6;
  const auto lenient = signoff::verify("lenient", t, {}, kLib, opt);
  EXPECT_EQ(lenient.count(signoff::ViolationKind::GoldenNoise), 0u);
  EXPECT_EQ(lenient.count(signoff::ViolationKind::MetricNoise), 0u);
  // The tolerance relabels violations; the measured slacks are unchanged.
  EXPECT_DOUBLE_EQ(lenient.worst_golden_slack, strict.worst_golden_slack);
  EXPECT_DOUBLE_EQ(lenient.worst_metric_slack, strict.worst_metric_slack);
}

TEST(Signoff, InfeasibleResultYieldsSingleInfeasibleViolation) {
  auto t = test::long_two_pin(9000.0);
  core::ToolOptions topt;
  topt.vg.max_buffers = 24;
  auto res = core::run_buffopt(t, kLib, topt);
  res.vg.feasible = false;  // simulate a DP that found no solution
  const auto rep = signoff::verify_result("none", res, kLib, {},
                                          default_options());
  EXPECT_FALSE(rep.pass());
  EXPECT_FALSE(rep.optimizer_feasible);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].kind, signoff::ViolationKind::Infeasible);
  EXPECT_TRUE(std::isnan(rep.worst_golden_slack));
  EXPECT_EQ(rep.pessimism.samples, 0u);
}

TEST(Signoff, PessimismHistogramBinsRatios) {
  // Exactly-representable ratios, so sums are order-independent and the
  // merged stats compare bit-equal to the sequentially-built ones.
  signoff::PessimismStats s;
  s.add(0.5);    // a bound violation -> bin 0
  s.add(1.125);  // [1.00, 1.25) -> bin 1
  s.add(1.25);   // [1.25, 1.50) -> bin 2
  s.add(99.0);   // clamped into the last bin
  EXPECT_EQ(s.samples, 4u);
  EXPECT_EQ(s.bins[0], 1u);
  EXPECT_EQ(s.bins[1], 1u);
  EXPECT_EQ(s.bins[2], 1u);
  EXPECT_EQ(s.bins[signoff::PessimismStats::kBinCount - 1], 1u);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 99.0);
  EXPECT_DOUBLE_EQ(s.mean(), (0.5 + 1.125 + 1.25 + 99.0) / 4.0);

  signoff::PessimismStats a, b;
  a.add(0.5);
  a.add(1.125);
  b.add(1.25);
  b.add(99.0);
  a.merge(b);
  EXPECT_EQ(a, s);
}

TEST(Signoff, ReportJsonIsWellFormedAndLabeled) {
  auto t = test::long_two_pin(6000.0);
  const auto res = core::run_buffopt(t, kLib);
  const auto rep = signoff::verify_result("demo", res, kLib, {},
                                          default_options());
  const std::string json = signoff::to_json(rep);
  EXPECT_NE(json.find("\"net\":\"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"pessimism\""), std::string::npos);
  EXPECT_NE(json.find("\"leaves\""), std::string::npos);
  // Balanced braces/brackets — the writer's nesting discipline held.
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// --- workload acceptance -------------------------------------------------

class SignoffWorkload : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    netgen::TestbenchOptions gen;
    gen.net_count = 200;
    gen.seed = 9851;
    nets_ = new std::vector<batch::BatchNet>(
        batch::from_generated(netgen::generate_testbench(kLib, gen)));
    batch::BatchOptions bopt;
    bopt.threads = 4;
    results_ = new std::vector<core::ToolResult>(
        batch::BatchEngine(bopt).run(*nets_, kLib).results);
  }
  static void TearDownTestSuite() {
    delete nets_;
    delete results_;
    nets_ = nullptr;
    results_ = nullptr;
  }
  static std::vector<batch::BatchNet>* nets_;
  static std::vector<core::ToolResult>* results_;
};

std::vector<batch::BatchNet>* SignoffWorkload::nets_ = nullptr;
std::vector<core::ToolResult>* SignoffWorkload::results_ = nullptr;

TEST_F(SignoffWorkload, EveryFeasibleSolutionPassesGoldenSignoff) {
  signoff::WorkloadOptions wopt;
  wopt.threads = 4;
  wopt.signoff = default_options();
  const auto w = signoff::run_workload(*nets_, *results_, kLib, wopt);
  ASSERT_EQ(w.net_count, 200u);
  // Theorem 1 at workload scale: whatever the metric certifies clean,
  // golden must confirm — with zero tolerance.
  EXPECT_EQ(w.feasible_golden_clean, w.feasible);
  EXPECT_GT(w.feasible, 190u) << "optimizer should solve almost every net";
  EXPECT_EQ(w.by_kind[static_cast<std::size_t>(
                signoff::ViolationKind::BoundBroken)],
            0u);
  EXPECT_EQ(w.by_kind[static_cast<std::size_t>(
                signoff::ViolationKind::NotConverged)],
            0u);
  for (const auto& rep : w.reports) {
    if (rep.optimizer_feasible &&
        rep.count(signoff::ViolationKind::MetricNoise) == 0) {
      EXPECT_EQ(rep.count(signoff::ViolationKind::GoldenNoise), 0u)
          << rep.net;
    }
  }
  // Pessimism statistics must be populated and sane: hundreds of leaves,
  // every ratio >= 1 (bin 0 empty), mean within [min, max].
  EXPECT_GT(w.pessimism.samples, 200u);
  EXPECT_EQ(w.pessimism.bins[0], 0u);
  EXPECT_GE(w.pessimism.min, 1.0);
  EXPECT_LE(w.pessimism.min, w.pessimism.mean());
  EXPECT_LE(w.pessimism.mean(), w.pessimism.max);
}

TEST_F(SignoffWorkload, DeterministicAcrossThreadCounts) {
  signoff::WorkloadOptions wopt;
  wopt.signoff = default_options();
  wopt.threads = 1;
  const auto serial = signoff::run_workload(*nets_, *results_, kLib, wopt);
  wopt.threads = 8;
  const auto parallel = signoff::run_workload(*nets_, *results_, kLib, wopt);

  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  for (std::size_t i = 0; i < serial.reports.size(); ++i)
    ASSERT_EQ(signoff::to_json(serial.reports[i]),
              signoff::to_json(parallel.reports[i]))
        << "report " << i << " differs between 1 and 8 threads";
  EXPECT_EQ(serial.passed, parallel.passed);
  EXPECT_EQ(serial.violations, parallel.violations);
  EXPECT_EQ(serial.by_kind, parallel.by_kind);
  EXPECT_EQ(serial.feasible, parallel.feasible);
  EXPECT_EQ(serial.feasible_golden_clean, parallel.feasible_golden_clean);
  EXPECT_EQ(serial.pessimism, parallel.pessimism);
  // Bit-identical, not approximately equal.
  EXPECT_EQ(serial.worst_golden_slack, parallel.worst_golden_slack);
  EXPECT_EQ(serial.worst_metric_slack, parallel.worst_metric_slack);
  EXPECT_EQ(serial.worst_timing_slack, parallel.worst_timing_slack);
}

TEST_F(SignoffWorkload, WorkloadJsonCarriesSchemaAndCounts) {
  signoff::WorkloadOptions wopt;
  wopt.threads = 4;
  wopt.signoff = default_options();
  const auto w = signoff::run_workload(*nets_, *results_, kLib, wopt);
  const std::string json = signoff::to_json(w);
  EXPECT_NE(json.find("\"schema\":\"nbuf-signoff-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"nets\":200"), std::string::npos);
  EXPECT_NE(json.find("\"violations_by_kind\""), std::string::npos);
  // include_leaves=false keeps the document summary-sized.
  EXPECT_EQ(json.find("\"leaves\""), std::string::npos);
  EXPECT_NE(signoff::to_json(w, true).find("\"leaves\""),
            std::string::npos);
}

}  // namespace
