// Parameterized property sweeps (TEST_P) over lengths, seeds and
// granularities: the library's key invariants must hold across the whole
// parameter space, not just hand-picked cases.
#include <gtest/gtest.h>

#include "common/test_nets.hpp"
#include "core/alg1_single_sink.hpp"
#include "core/alg2_multi_sink.hpp"
#include "core/theory.hpp"
#include "core/tool.hpp"
#include "elmore/elmore.hpp"
#include "noise/devgan.hpp"
#include "elmore/slew.hpp"
#include "lib/wire.hpp"
#include "noise/incremental.hpp"
#include "noise/pulse.hpp"
#include "sim/golden.hpp"
#include "steiner/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();

// --- length sweep: two-pin invariants ---------------------------------------

class LengthSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(TwoPin, LengthSweep,
                         ::testing::Values(500.0, 1500.0, 3000.0, 4500.0,
                                           6000.0, 8000.0, 11000.0, 14000.0));

TEST_P(LengthSweep, MetricUpperBoundsGolden) {
  auto t = test::long_two_pin(GetParam());
  const auto gopt = sim::golden_options_from(lib::default_technology());
  const auto metric = noise::analyze_unbuffered(t);
  const auto golden = sim::golden_analyze_unbuffered(t, gopt);
  EXPECT_GE(metric.sinks[0].noise, golden.sinks[0].peak);
}

TEST_P(LengthSweep, Alg1AlwaysClean) {
  auto t = test::long_two_pin(GetParam());
  const auto res = core::avoid_noise_single_sink(t, kLib);
  EXPECT_TRUE(noise::analyze(res.tree, res.buffers, kLib).clean());
}

TEST_P(LengthSweep, Alg1GoldenClean) {
  auto t = test::long_two_pin(GetParam());
  const auto gopt = sim::golden_options_from(lib::default_technology());
  const auto res = core::avoid_noise_single_sink(t, kLib);
  EXPECT_EQ(sim::golden_analyze(res.tree, res.buffers, kLib, gopt)
                .violation_count,
            0u);
}

TEST_P(LengthSweep, BuffOptCleanAndTimed) {
  auto t = steiner::make_two_pin(GetParam(), default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, 0.0),
                                 lib::default_technology());
  // RAT = 1.2x the delay-optimal arrival.
  const auto d = core::run_delayopt(t, kLib, 12);
  auto info = t.sinks().front();
  info.required_arrival = 1.2 * d.timing_after.max_delay;
  t.set_sink_info(rct::SinkId{0}, info);
  const auto res = core::run_buffopt(t, kLib);
  ASSERT_TRUE(res.vg.feasible);
  EXPECT_EQ(res.noise_after.violation_count, 0u);
  EXPECT_GE(res.timing_after.worst_slack, -1e-12);
}

// --- driver sweep: Theorem 1 monotonicity -----------------------------------

class DriverSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Resistances, DriverSweep,
                         ::testing::Values(25.0, 50.0, 100.0, 200.0, 400.0,
                                           800.0));

TEST_P(DriverSweep, CriticalLengthConsistent) {
  const auto tech = lib::default_technology();
  const double r = GetParam();
  const auto len = core::critical_length(
      r, tech.wire_res_per_um, tech.coupling_current_per_um(), 0.8, 0.0);
  ASSERT_TRUE(len.has_value());
  const double noise = core::uniform_wire_noise(
      r, tech.wire_res_per_um, tech.coupling_current_per_um(), *len, 0.0);
  EXPECT_NEAR(noise, 0.8, 1e-9);
}

TEST_P(DriverSweep, UnbufferedNoiseMatchesUniformFormula) {
  const double r = GetParam();
  const double len = 3000.0;
  auto t = test::long_two_pin(len, r);
  const auto tech = lib::default_technology();
  const auto rep = noise::analyze_unbuffered(t);
  const double expect = core::uniform_wire_noise(
      r, tech.wire_res_per_um, tech.coupling_current_per_um(), len, 0.0);
  EXPECT_NEAR(rep.sinks[0].noise, expect, expect * 1e-9);
}

// --- seed sweep: random multi-sink nets --------------------------------------

class SeedSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range(1, 13));  // 12 random nets

rct::RoutingTree seeded_net(int seed) {
  util::Rng rng(static_cast<std::uint64_t>(seed) * 77 + 5);
  const int sinks = rng.uniform_int(2, 9);
  const double span = rng.uniform(3000.0, 9000.0);
  std::vector<steiner::PinSpec> pins;
  for (int i = 0; i < sinks; ++i) {
    steiner::PinSpec p;
    p.at = {rng.uniform(0.2 * span, span), rng.uniform(0.0, span)};
    p.info = default_sink(rng.uniform(5 * fF, 30 * fF), 0.0, 0.8,
                          ("s" + std::to_string(i)).c_str());
    pins.push_back(p);
  }
  return steiner::build_tree({0, 0},
                             default_driver(rng.uniform(60.0, 350.0)), pins,
                             lib::default_technology());
}

TEST_P(SeedSweep, Alg2CleansRandomNet) {
  auto t = seeded_net(GetParam());
  const auto res = core::avoid_noise_multi_sink(t, kLib);
  EXPECT_TRUE(noise::analyze(res.tree, res.buffers, kLib).clean());
}

TEST_P(SeedSweep, MetricBoundsGoldenAtEverySink) {
  auto t = seeded_net(GetParam());
  const auto gopt = sim::golden_options_from(lib::default_technology());
  const auto metric = noise::analyze_unbuffered(t);
  const auto golden = sim::golden_analyze_unbuffered(t, gopt);
  for (std::size_t i = 0; i < metric.sinks.size(); ++i)
    EXPECT_GE(metric.sinks[i].noise + 1e-12, golden.sinks[i].peak)
        << "sink " << i;
}

TEST_P(SeedSweep, BuffOptCleanOnRandomNet) {
  auto t = seeded_net(GetParam());
  const auto res = core::run_buffopt(t, kLib);
  ASSERT_TRUE(res.vg.feasible);
  EXPECT_EQ(res.noise_after.violation_count, 0u);
}

TEST_P(SeedSweep, ElmoreSlackSelfConsistent) {
  auto t = seeded_net(GetParam());
  const auto res = core::run_delayopt(t, kLib, 8);
  const auto timing = elmore::analyze(res.tree, res.vg.buffers, kLib);
  EXPECT_NEAR(res.vg.slack, timing.worst_slack, 1e-13);
}

// --- randomized DP optimality sweep -------------------------------------------

// Exhaustive optimum over buffer subsets of a single type on a coarsely
// segmented random tree; the DP must match it exactly.
class OptimalitySweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalitySweep, ::testing::Range(1, 9));

TEST_P(OptimalitySweep, DpMatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const int sinks = rng.uniform_int(2, 4);
  const double span = rng.uniform(2500.0, 5000.0);
  std::vector<steiner::PinSpec> pins;
  for (int i = 0; i < sinks; ++i) {
    steiner::PinSpec p;
    p.at = {rng.uniform(0.3 * span, span), rng.uniform(0.0, span)};
    p.info = default_sink(rng.uniform(5 * fF, 30 * fF), 2 * ns, 0.8,
                          ("s" + std::to_string(i)).c_str());
    pins.push_back(p);
  }
  auto t = steiner::build_tree({0, 0},
                               default_driver(rng.uniform(80.0, 300.0)),
                               pins, lib::default_technology());
  seg::segment(t, {1200.0});
  std::vector<rct::NodeId> sites;
  for (auto id : t.preorder())
    if (t.node(id).kind == rct::NodeKind::Internal &&
        t.node(id).buffer_allowed)
      sites.push_back(id);
  if (sites.size() > 12) GTEST_SKIP() << "too many sites to enumerate";

  const auto one = lib::single_buffer_library();
  for (bool noise_mode : {false, true}) {
    double best = -std::numeric_limits<double>::infinity();
    rct::BufferAssignment a;
    for (std::size_t mask = 0; mask < (1u << sites.size()); ++mask) {
      a.clear();
      for (std::size_t i = 0; i < sites.size(); ++i)
        if (mask & (1u << i)) a.place(sites[i], lib::BufferId{0});
      if (noise_mode && !noise::analyze(t, a, one).clean()) continue;
      best = std::max(best, elmore::analyze(t, a, one).worst_slack);
    }
    core::VgOptions opt;
    opt.noise_constraints = noise_mode;
    opt.max_buffers = sites.size() + 1;
    const auto res = core::optimize(t, one, opt);
    if (best == -std::numeric_limits<double>::infinity()) {
      EXPECT_FALSE(res.feasible);
    } else {
      EXPECT_NEAR(res.slack, best, std::abs(best) * 1e-9 + 1e-18)
          << "noise_mode=" << noise_mode;
    }
  }
}

// --- segmentation sweep --------------------------------------------------------

class SegSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Granularity, SegSweep,
                         ::testing::Values(2000.0, 1000.0, 500.0, 250.0));

TEST_P(SegSweep, NoiseAndDelayInvariantUnderSegmentation) {
  auto t = test::long_two_pin(9000.0);
  seg::segment(t, {GetParam()});
  const auto rep = noise::analyze_unbuffered(t);
  const auto timing = elmore::analyze_unbuffered(t);
  // Same values regardless of granularity (additivity of both metrics).
  auto t0 = test::long_two_pin(9000.0);
  EXPECT_NEAR(rep.sinks[0].noise,
              noise::analyze_unbuffered(t0).sinks[0].noise, 1e-9);
  EXPECT_NEAR(timing.max_delay,
              elmore::analyze_unbuffered(t0).max_delay, 1e-15);
}

TEST_P(SegSweep, BuffOptStaysCleanAtAnyGranularity) {
  auto t = steiner::make_two_pin(9000.0, default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, 2 * ns),
                                 lib::default_technology());
  core::ToolOptions opt;
  opt.segmenting.max_segment_length = GetParam();
  const auto res = core::run_buffopt(t, kLib, opt);
  ASSERT_TRUE(res.vg.feasible);
  EXPECT_EQ(res.noise_after.violation_count, 0u);
}

// --- extension sweeps: wire sizing, slew, pulse width over random nets ---------

class ExtensionSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionSweep, ::testing::Range(20, 28));

TEST_P(ExtensionSweep, WireSizingNeverWorseOnRandomNets) {
  auto t = seeded_net(GetParam());
  seg::segment(t, {500.0});
  core::VgOptions plain, sized;
  plain.noise_constraints = false;
  sized.noise_constraints = false;
  sized.wire_widths = lib::default_wire_widths();
  const auto r0 = core::optimize(t, kLib, plain);
  const auto r1 = core::optimize(t, kLib, sized);
  EXPECT_GE(r1.slack, r0.slack - 1e-15);
  // Self-consistency of the sized prediction.
  auto sized_tree = t;
  core::apply_wire_widths(sized_tree, r1.wire_widths, sized.wire_widths);
  EXPECT_NEAR(r1.slack,
              elmore::analyze(sized_tree, r1.buffers, kLib).worst_slack,
              1e-13);
}

TEST_P(ExtensionSweep, SlewConstraintHonoredOnRandomNets) {
  auto t = seeded_net(GetParam());
  seg::segment(t, {400.0});
  core::VgOptions opt;
  opt.noise_constraints = true;
  opt.max_slew = 300.0 * ps;
  const auto res = core::optimize(t, kLib, opt);
  if (!res.feasible) GTEST_SKIP() << "net cannot meet 300 ps slew";
  EXPECT_LE(elmore::slews(t, res.buffers, kLib).max_slew,
            300.0 * ps * (1.0 + 1e-9));
  EXPECT_TRUE(noise::analyze(t, res.buffers, kLib).clean());
}

TEST_P(ExtensionSweep, PulseWidthEstimateBracketsGolden) {
  auto t = seeded_net(GetParam());
  const auto gopt = sim::golden_options_from(lib::default_technology());
  const auto est = noise::pulse_widths(t, {}, lib::BufferLibrary{},
                                       lib::default_technology().aggressor_rise);
  const auto golden = sim::golden_analyze_unbuffered(t, gopt);
  for (std::size_t i = 0; i < est.sinks.size(); ++i) {
    if (golden.sinks[i].peak < 0.02) continue;  // width ill-defined
    const double ratio = est.sinks[i].width / golden.sinks[i].width;
    EXPECT_GT(ratio, 0.4) << "sink " << i;
    EXPECT_LT(ratio, 4.0) << "sink " << i;
  }
}

TEST_P(ExtensionSweep, IncrementalMatchesAnalyzerOnRandomNets) {
  auto t = seeded_net(GetParam());
  const noise::IncrementalNoise inc(t);
  const auto rep = noise::analyze_unbuffered(t);
  for (const auto& s : t.sinks())
    EXPECT_NEAR(inc.noise(s.node),
                rep.sinks[t.node(s.node).sink.value()].noise, 1e-12);
}

}  // namespace
