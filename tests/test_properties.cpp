// Parameterized property sweeps (TEST_P) over lengths, seeds and
// granularities: the library's key invariants must hold across the whole
// parameter space, not just hand-picked cases.
#include <gtest/gtest.h>

#include "common/random_library.hpp"
#include "common/test_nets.hpp"
#include "core/alg1_single_sink.hpp"
#include "core/alg2_multi_sink.hpp"
#include "core/theory.hpp"
#include "core/tool.hpp"
#include "elmore/elmore.hpp"
#include "noise/devgan.hpp"
#include "elmore/slew.hpp"
#include "lib/wire.hpp"
#include "noise/incremental.hpp"
#include "noise/pulse.hpp"
#include "core/vanginneken.hpp"
#include "core/vg_kernel.hpp"
#include "netgen/netgen.hpp"
#include "seg/segment.hpp"
#include "sim/golden.hpp"
#include "steiner/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();

// --- length sweep: two-pin invariants ---------------------------------------

class LengthSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(TwoPin, LengthSweep,
                         ::testing::Values(500.0, 1500.0, 3000.0, 4500.0,
                                           6000.0, 8000.0, 11000.0, 14000.0));

TEST_P(LengthSweep, MetricUpperBoundsGolden) {
  auto t = test::long_two_pin(GetParam());
  const auto gopt = sim::golden_options_from(lib::default_technology());
  const auto metric = noise::analyze_unbuffered(t);
  const auto golden = sim::golden_analyze_unbuffered(t, gopt);
  EXPECT_GE(metric.sinks[0].noise, golden.sinks[0].peak);
}

TEST_P(LengthSweep, Alg1AlwaysClean) {
  auto t = test::long_two_pin(GetParam());
  const auto res = core::avoid_noise_single_sink(t, kLib);
  EXPECT_TRUE(noise::analyze(res.tree, res.buffers, kLib).clean());
}

TEST_P(LengthSweep, Alg1GoldenClean) {
  auto t = test::long_two_pin(GetParam());
  const auto gopt = sim::golden_options_from(lib::default_technology());
  const auto res = core::avoid_noise_single_sink(t, kLib);
  EXPECT_EQ(sim::golden_analyze(res.tree, res.buffers, kLib, gopt)
                .violation_count,
            0u);
}

TEST_P(LengthSweep, BuffOptCleanAndTimed) {
  auto t = steiner::make_two_pin(GetParam(), default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, 0.0),
                                 lib::default_technology());
  // RAT = 1.2x the delay-optimal arrival.
  const auto d = core::run_delayopt(t, kLib, 12);
  auto info = t.sinks().front();
  info.required_arrival = 1.2 * d.timing_after.max_delay;
  t.set_sink_info(rct::SinkId{0}, info);
  const auto res = core::run_buffopt(t, kLib);
  ASSERT_TRUE(res.vg.feasible);
  EXPECT_EQ(res.noise_after.violation_count, 0u);
  EXPECT_GE(res.timing_after.worst_slack, -1e-12);
}

// --- driver sweep: Theorem 1 monotonicity -----------------------------------

class DriverSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Resistances, DriverSweep,
                         ::testing::Values(25.0, 50.0, 100.0, 200.0, 400.0,
                                           800.0));

TEST_P(DriverSweep, CriticalLengthConsistent) {
  const auto tech = lib::default_technology();
  const double r = GetParam();
  const auto len = core::critical_length(
      r, tech.wire_res_per_um, tech.coupling_current_per_um(), 0.8, 0.0);
  ASSERT_TRUE(len.has_value());
  const double noise = core::uniform_wire_noise(
      r, tech.wire_res_per_um, tech.coupling_current_per_um(), *len, 0.0);
  EXPECT_NEAR(noise, 0.8, 1e-9);
}

TEST_P(DriverSweep, UnbufferedNoiseMatchesUniformFormula) {
  const double r = GetParam();
  const double len = 3000.0;
  auto t = test::long_two_pin(len, r);
  const auto tech = lib::default_technology();
  const auto rep = noise::analyze_unbuffered(t);
  const double expect = core::uniform_wire_noise(
      r, tech.wire_res_per_um, tech.coupling_current_per_um(), len, 0.0);
  EXPECT_NEAR(rep.sinks[0].noise, expect, expect * 1e-9);
}

// --- seed sweep: random multi-sink nets --------------------------------------

class SeedSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range(1, 13));  // 12 random nets

rct::RoutingTree seeded_net(int seed) {
  util::Rng rng(static_cast<std::uint64_t>(seed) * 77 + 5);
  const int sinks = rng.uniform_int(2, 9);
  const double span = rng.uniform(3000.0, 9000.0);
  std::vector<steiner::PinSpec> pins;
  for (int i = 0; i < sinks; ++i) {
    steiner::PinSpec p;
    p.at = {rng.uniform(0.2 * span, span), rng.uniform(0.0, span)};
    p.info = default_sink(rng.uniform(5 * fF, 30 * fF), 0.0, 0.8,
                          ("s" + std::to_string(i)).c_str());
    pins.push_back(p);
  }
  return steiner::build_tree({0, 0},
                             default_driver(rng.uniform(60.0, 350.0)), pins,
                             lib::default_technology());
}

TEST_P(SeedSweep, Alg2CleansRandomNet) {
  auto t = seeded_net(GetParam());
  const auto res = core::avoid_noise_multi_sink(t, kLib);
  EXPECT_TRUE(noise::analyze(res.tree, res.buffers, kLib).clean());
}

TEST_P(SeedSweep, MetricBoundsGoldenAtEverySink) {
  auto t = seeded_net(GetParam());
  const auto gopt = sim::golden_options_from(lib::default_technology());
  const auto metric = noise::analyze_unbuffered(t);
  const auto golden = sim::golden_analyze_unbuffered(t, gopt);
  for (std::size_t i = 0; i < metric.sinks.size(); ++i)
    EXPECT_GE(metric.sinks[i].noise + 1e-12, golden.sinks[i].peak)
        << "sink " << i;
}

TEST_P(SeedSweep, BuffOptCleanOnRandomNet) {
  auto t = seeded_net(GetParam());
  const auto res = core::run_buffopt(t, kLib);
  ASSERT_TRUE(res.vg.feasible);
  EXPECT_EQ(res.noise_after.violation_count, 0u);
}

TEST_P(SeedSweep, ElmoreSlackSelfConsistent) {
  auto t = seeded_net(GetParam());
  const auto res = core::run_delayopt(t, kLib, 8);
  const auto timing = elmore::analyze(res.tree, res.vg.buffers, kLib);
  EXPECT_NEAR(res.vg.slack, timing.worst_slack, 1e-13);
}

// --- randomized DP optimality sweep -------------------------------------------

// Exhaustive optimum over buffer subsets of a single type on a coarsely
// segmented random tree; the DP must match it exactly.
class OptimalitySweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalitySweep, ::testing::Range(1, 9));

TEST_P(OptimalitySweep, DpMatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const int sinks = rng.uniform_int(2, 4);
  const double span = rng.uniform(2500.0, 5000.0);
  std::vector<steiner::PinSpec> pins;
  for (int i = 0; i < sinks; ++i) {
    steiner::PinSpec p;
    p.at = {rng.uniform(0.3 * span, span), rng.uniform(0.0, span)};
    p.info = default_sink(rng.uniform(5 * fF, 30 * fF), 2 * ns, 0.8,
                          ("s" + std::to_string(i)).c_str());
    pins.push_back(p);
  }
  auto t = steiner::build_tree({0, 0},
                               default_driver(rng.uniform(80.0, 300.0)),
                               pins, lib::default_technology());
  seg::segment(t, {1200.0});
  std::vector<rct::NodeId> sites;
  for (auto id : t.preorder())
    if (t.node(id).kind == rct::NodeKind::Internal &&
        t.node(id).buffer_allowed)
      sites.push_back(id);
  if (sites.size() > 12) GTEST_SKIP() << "too many sites to enumerate";

  const auto one = lib::single_buffer_library();
  for (bool noise_mode : {false, true}) {
    double best = -std::numeric_limits<double>::infinity();
    rct::BufferAssignment a;
    for (std::size_t mask = 0; mask < (1u << sites.size()); ++mask) {
      a.clear();
      for (std::size_t i = 0; i < sites.size(); ++i)
        if (mask & (1u << i)) a.place(sites[i], lib::BufferId{0});
      if (noise_mode && !noise::analyze(t, a, one).clean()) continue;
      best = std::max(best, elmore::analyze(t, a, one).worst_slack);
    }
    core::VgOptions opt;
    opt.noise_constraints = noise_mode;
    opt.max_buffers = sites.size() + 1;
    const auto res = core::optimize(t, one, opt);
    if (best == -std::numeric_limits<double>::infinity()) {
      EXPECT_FALSE(res.feasible);
    } else {
      EXPECT_NEAR(res.slack, best, std::abs(best) * 1e-9 + 1e-18)
          << "noise_mode=" << noise_mode;
    }
  }
}

// --- segmentation sweep --------------------------------------------------------

class SegSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Granularity, SegSweep,
                         ::testing::Values(2000.0, 1000.0, 500.0, 250.0));

TEST_P(SegSweep, NoiseAndDelayInvariantUnderSegmentation) {
  auto t = test::long_two_pin(9000.0);
  seg::segment(t, {GetParam()});
  const auto rep = noise::analyze_unbuffered(t);
  const auto timing = elmore::analyze_unbuffered(t);
  // Same values regardless of granularity (additivity of both metrics).
  auto t0 = test::long_two_pin(9000.0);
  EXPECT_NEAR(rep.sinks[0].noise,
              noise::analyze_unbuffered(t0).sinks[0].noise, 1e-9);
  EXPECT_NEAR(timing.max_delay,
              elmore::analyze_unbuffered(t0).max_delay, 1e-15);
}

TEST_P(SegSweep, BuffOptStaysCleanAtAnyGranularity) {
  auto t = steiner::make_two_pin(9000.0, default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, 2 * ns),
                                 lib::default_technology());
  core::ToolOptions opt;
  opt.segmenting.max_segment_length = GetParam();
  const auto res = core::run_buffopt(t, kLib, opt);
  ASSERT_TRUE(res.vg.feasible);
  EXPECT_EQ(res.noise_after.violation_count, 0u);
}

// --- extension sweeps: wire sizing, slew, pulse width over random nets ---------

class ExtensionSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionSweep, ::testing::Range(20, 28));

TEST_P(ExtensionSweep, WireSizingNeverWorseOnRandomNets) {
  auto t = seeded_net(GetParam());
  seg::segment(t, {500.0});
  core::VgOptions plain, sized;
  plain.noise_constraints = false;
  sized.noise_constraints = false;
  sized.wire_widths = lib::default_wire_widths();
  const auto r0 = core::optimize(t, kLib, plain);
  const auto r1 = core::optimize(t, kLib, sized);
  EXPECT_GE(r1.slack, r0.slack - 1e-15);
  // Self-consistency of the sized prediction.
  auto sized_tree = t;
  core::apply_wire_widths(sized_tree, r1.wire_widths, sized.wire_widths);
  EXPECT_NEAR(r1.slack,
              elmore::analyze(sized_tree, r1.buffers, kLib).worst_slack,
              1e-13);
}

TEST_P(ExtensionSweep, SlewConstraintHonoredOnRandomNets) {
  auto t = seeded_net(GetParam());
  seg::segment(t, {400.0});
  core::VgOptions opt;
  opt.noise_constraints = true;
  opt.max_slew = 300.0 * ps;
  const auto res = core::optimize(t, kLib, opt);
  if (!res.feasible) GTEST_SKIP() << "net cannot meet 300 ps slew";
  EXPECT_LE(elmore::slews(t, res.buffers, kLib).max_slew,
            300.0 * ps * (1.0 + 1e-9));
  EXPECT_TRUE(noise::analyze(t, res.buffers, kLib).clean());
}

TEST_P(ExtensionSweep, PulseWidthEstimateBracketsGolden) {
  auto t = seeded_net(GetParam());
  const auto gopt = sim::golden_options_from(lib::default_technology());
  const auto est = noise::pulse_widths(t, {}, lib::BufferLibrary{},
                                       lib::default_technology().aggressor_rise);
  const auto golden = sim::golden_analyze_unbuffered(t, gopt);
  for (std::size_t i = 0; i < est.sinks.size(); ++i) {
    if (golden.sinks[i].peak < 0.02) continue;  // width ill-defined
    const double ratio = est.sinks[i].width / golden.sinks[i].width;
    EXPECT_GT(ratio, 0.4) << "sink " << i;
    EXPECT_LT(ratio, 4.0) << "sink " << i;
  }
}

TEST_P(ExtensionSweep, IncrementalMatchesAnalyzerOnRandomNets) {
  auto t = seeded_net(GetParam());
  const noise::IncrementalNoise inc(t);
  const auto rep = noise::analyze_unbuffered(t);
  for (const auto& s : t.sinks())
    EXPECT_NEAR(inc.noise(s.node),
                rep.sinks[t.node(s.node).sink.value()].noise, 1e-12);
}

// --- multi-library kernel properties (PR 6) ---------------------------------

TEST(LibraryProperties, SupersetLibraryNeverWorse) {
  // The DP is exact: every solution expressible with a sub-library is also
  // expressible (same placements, same arithmetic) with any superset, so
  // adding buffer types can only preserve feasibility and raise the best
  // slack — exactly, not within tolerance. Violations would mean pruning
  // dropped an optimal candidate somewhere.
  const lib::BufferLibrary sup = test::random_library(0xD00D, 12, 0.4);
  lib::BufferLibrary sub;
  for (std::size_t i = 0; i < sup.size(); i += 2)
    sub.add(sup.at(lib::BufferId{static_cast<lib::BufferId::underlying_type>(i)}));

  netgen::TestbenchOptions gen;
  gen.net_count = 30;
  gen.seed = 5107;
  const auto nets = netgen::generate_testbench(lib::default_library(), gen);
  std::size_t feasible_subs = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    SCOPED_TRACE(nets[i].name);
    rct::RoutingTree segmented = nets[i].tree;
    seg::segment(segmented, {500.0});
    core::VgOptions opt;
    opt.noise_constraints = (i % 2 == 0);
    const auto with_sub = core::optimize(segmented, sub, opt);
    const auto with_sup = core::optimize(segmented, sup, opt);
    if (!with_sub.feasible) continue;
    ++feasible_subs;
    EXPECT_TRUE(with_sup.feasible);
    EXPECT_GE(with_sup.slack, with_sub.slack);
  }
  EXPECT_GT(feasible_subs, 10u);  // the property was actually exercised
}

TEST(LibraryProperties, ChosenSolutionsMatchSinkPolarity) {
  // Polarity invariant: every returned solution drives every sink at the
  // polarity it asked for — the inverter count on each source->sink path
  // is even (or odd for require_inverted sinks). The DP enforces this by
  // construction (only phase-0 source candidates are answers); the check
  // here is on the OUTPUT plan, so any phase-bookkeeping bug that slips an
  // odd path through shows up as a user-visible wrong answer.
  const lib::BufferLibrary library = test::random_library(0xF1F7, 10, 0.6);
  netgen::TestbenchOptions gen;
  gen.net_count = 40;
  gen.seed = 6211;
  const auto nets = netgen::generate_testbench(lib::default_library(), gen);
  std::size_t buffered = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    SCOPED_TRACE(nets[i].name);
    rct::RoutingTree segmented = nets[i].tree;
    seg::segment(segmented, {500.0});
    core::VgOptions opt;
    opt.noise_constraints = (i % 2 == 0);
    const auto res = core::optimize(segmented, library, opt);
    if (!res.feasible) continue;
    if (res.buffer_count > 0) ++buffered;
    for (const auto& s : segmented.sinks())
      EXPECT_EQ(res.buffers.inverted_at(segmented, library, s.node),
                s.require_inverted)
          << s.name;
  }
  EXPECT_GT(buffered, 10u);
}

TEST(LibraryProperties, InvertedSinkNeedsAnInverter) {
  // A sink demanding inverted polarity is unreachable without inverting
  // types (parity can never turn odd)...
  rct::SinkInfo sink = test::default_sink();
  sink.require_inverted = true;
  sink.required_arrival = 5000.0 * ps;
  const auto net = steiner::make_two_pin(4000.0, test::default_driver(),
                                         sink, lib::default_technology());
  rct::RoutingTree segmented = net;
  seg::segment(segmented, {500.0});
  core::VgOptions opt;
  opt.noise_constraints = false;  // isolate polarity from noise feasibility

  const lib::BufferLibrary plain = test::random_library(0xB0B0, 6, 0.0);
  EXPECT_FALSE(core::optimize(segmented, plain, opt).feasible);

  // ...and with inverters available the chosen solution must use an odd
  // number of them on the path.
  const lib::BufferLibrary mixed = test::random_library(0xB0B1, 6, 0.5);
  const auto res = core::optimize(segmented, mixed, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.buffers.inverted_at(segmented, mixed,
                                      segmented.sinks().front().node));
}

TEST(LibraryProperties, BestPredecessorMatchesNaiveScanOnRandomStaircases) {
  // Best-predecessor soundness, isolated from the DP: on random Pareto
  // staircases the feasibility-grouped scan must return exactly the
  // candidate the reference kernel's first-wins linear scan would pick,
  // for every type, under every feasibility-predicate combination. `q`
  // must match bitwise (same expression, same operand order).
  util::Rng rng(0xC0DE5);
  for (int trial = 0; trial < 160; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::size_t types = 1 + static_cast<std::size_t>(trial % 23);
    const lib::BufferLibrary library = test::random_library(
        9000 + static_cast<std::uint64_t>(trial), types, 0.4);

    core::VgOptions opt;
    opt.noise_constraints = (trial % 2 == 0);
    if (trial % 3 == 0) opt.max_slew = rng.uniform(80.0, 400.0) * ps;

    // A strict Pareto staircase: loads and slacks strictly ascend. Built
    // directly in SoA lanes, the form the fast kernel consumes.
    core::SoAList cands;
    double load = rng.uniform(1.0, 30.0) * fF;
    double slack = rng.uniform(-800.0, 0.0) * ps;
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 39));
    for (std::size_t i = 0; i < m; ++i) {
      cands.push_back(load, slack, rng.uniform(0.0, 120.0) * uA,
                      rng.uniform(0.0, 0.9), rng.uniform(0.0, 300.0) * ps,
                      core::kNullPlan);
      load += rng.uniform(0.5, 40.0) * fF;
      slack += rng.uniform(1.0, 120.0) * ps;
    }
    const core::CandSpan view = cands.span();

    const core::detail::TypeOrder order = core::detail::TypeOrder::make(library);
    core::detail::BestPredecessors bp;
    bp.prepare(view, opt, library, order);
    std::vector<core::detail::BestPredecessors::Choice> choices;
    bp.select_all(library, order, choices);
    ASSERT_EQ(choices.size(), order.ids.size());

    for (std::size_t pos = 0; pos < order.ids.size(); ++pos) {
      const lib::BufferType& b = library.at(order.ids[pos]);
      // The reference kernel's scan, verbatim predicates and tie-break.
      std::size_t best = core::detail::BestPredecessors::Choice::kNone;
      double best_q = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < view.n; ++i) {
        if (opt.noise_constraints &&
            b.resistance * view.current[i] > view.noise_slack[i])
          continue;
        if (elmore::kSlewFactor * (b.resistance * view.load[i] + view.dhat[i]) >
            opt.max_slew)
          continue;
        const double q =
            view.slack[i] - b.intrinsic_delay - b.resistance * view.load[i];
        if (q > best_q) {
          best_q = q;
          best = i;
        }
      }
      const auto& choice = choices[pos];
      EXPECT_EQ(choice.idx, best) << "type walk position " << pos;
      if (best != core::detail::BestPredecessors::Choice::kNone) {
        EXPECT_EQ(choice.q, best_q);
      }
    }
  }
}

TEST(LibraryProperties, DominatedAtBirthMatchesBruteForce) {
  // The dominated-at-birth skip (one binary search against the target
  // bucket's staircase view) must agree with the definition — some view
  // entry has load <= L and slack >= S — including on exact-tie probes.
  util::Rng rng(0xDAB5);
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    core::detail::CandList view;
    double load = rng.uniform(1.0, 20.0) * fF;
    double slack = rng.uniform(-500.0, 0.0) * ps;
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(0, 12));
    for (std::size_t i = 0; i < m; ++i) {
      core::detail::VgCand c;
      c.load = load;
      c.slack = slack;
      view.push_back(c);
      load += rng.uniform(0.5, 25.0) * fF;
      slack += rng.uniform(1.0, 90.0) * ps;
    }
    for (int probe = 0; probe < 12; ++probe) {
      double pl, ps_;
      if (!view.empty() && rng.chance(0.5)) {
        // Exact-tie probes: reuse a view entry's load and/or slack.
        const auto& e = view[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(view.size()) - 1))];
        pl = rng.chance(0.5) ? e.load : rng.uniform(0.5, 400.0) * fF;
        ps_ = rng.chance(0.5) ? e.slack : rng.uniform(-600.0, 300.0) * ps;
      } else {
        pl = rng.uniform(0.5, 400.0) * fF;
        ps_ = rng.uniform(-600.0, 300.0) * ps;
      }
      bool brute = false;
      for (const auto& e : view)
        brute = brute || (e.load <= pl && e.slack >= ps_);
      EXPECT_EQ(core::detail::dominated_by_staircase(view.data(), view.size(),
                                                     pl, ps_),
                brute)
          << "probe " << probe;
    }
  }
}

}  // namespace
