// Slew estimation and slew-constrained buffer insertion.
#include <gtest/gtest.h>

#include <cmath>

#include "common/test_nets.hpp"
#include "core/tool.hpp"
#include "elmore/slew.hpp"
#include "seg/segment.hpp"
#include "sim/delay.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();

rct::RoutingTree net(double len, double rat = 2 * ns) {
  auto t = steiner::make_two_pin(len, default_driver(150.0, 30 * ps),
                                 default_sink(15 * fF, rat),
                                 lib::default_technology());
  seg::segment(t, {500.0});
  return t;
}

TEST(Slew, SinglePoleAnalytic) {
  // Lumped RC: slew = ln9 * R * C.
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver(1000.0));
  t.add_sink(so, rct::Wire{1.0, 1e-9, 0.0, 0.0}, default_sink(1 * pF));
  const auto rep = elmore::slews(t, {}, lib::BufferLibrary{});
  EXPECT_NEAR(rep.sinks[0].slew, elmore::kSlewFactor * 1000.0 * 1e-12,
              1e-15);
}

TEST(Slew, GrowsQuadraticallyWithLength) {
  const auto a = elmore::slews(test::long_two_pin(3000.0), {},
                               lib::BufferLibrary{});
  const auto b = elmore::slews(test::long_two_pin(6000.0), {},
                               lib::BufferLibrary{});
  EXPECT_GT(b.max_slew, 2.0 * a.max_slew);
}

TEST(Slew, BuffersRestoreEdges) {
  auto t = test::long_two_pin(8000.0);
  const auto mid = t.split_wire(t.sinks().front().node, 4000.0);
  rct::BufferAssignment a;
  a.place(mid, lib::BufferId{8});
  const auto unbuf = elmore::slews(t, {}, kLib);
  const auto buf = elmore::slews(t, a, kLib);
  EXPECT_LT(buf.max_slew, unbuf.max_slew);
  // Both the buffer input leaf and the sink are reported.
  EXPECT_EQ(buf.leaves.size(), 2u);
}

TEST(Slew, TracksSimulatedTransition) {
  // The estimate is the right order of magnitude against the transient
  // 10-90% time... approximated here by comparing against 2.2x the
  // simulated 50% delay shape: just require factor-of-2 agreement with the
  // single-pole relation slew ~ ln9/ln2 * t50.
  auto t = test::long_two_pin(5000.0);
  const auto est = elmore::slews(t, {}, lib::BufferLibrary{});
  sim::StepDelayOptions opt;
  opt.driver_rise = 1e-12;
  opt.steps_per_rise = 2.0;
  const auto simrep = sim::step_delays(t, {}, lib::BufferLibrary{}, opt);
  const double implied = simrep.sinks[0].delay *
                         (elmore::kSlewFactor / std::log(2.0));
  EXPECT_GT(est.sinks[0].slew, 0.5 * implied);
  EXPECT_LT(est.sinks[0].slew, 2.0 * implied);
}

TEST(SlewConstraint, UnconstrainedMatchesInfinity) {
  auto t = net(9000.0);
  core::VgOptions a, b;
  a.noise_constraints = false;
  b.noise_constraints = false;
  b.max_slew = std::numeric_limits<double>::infinity();
  const auto ra = core::optimize(t, kLib, a);
  const auto rb = core::optimize(t, kLib, b);
  EXPECT_DOUBLE_EQ(ra.slack, rb.slack);
}

TEST(SlewConstraint, ResultMeetsTheLimit) {
  for (double limit : {400.0 * ps, 250.0 * ps, 150.0 * ps}) {
    auto t = net(10000.0);
    core::VgOptions opt;
    opt.noise_constraints = false;
    opt.max_slew = limit;
    const auto res = core::optimize(t, kLib, opt);
    ASSERT_TRUE(res.feasible) << limit;
    const auto rep = elmore::slews(t, res.buffers, kLib);
    EXPECT_LE(rep.max_slew, limit * (1.0 + 1e-9)) << limit;
  }
}

TEST(SlewConstraint, TighterLimitNeedsMoreBuffers) {
  std::size_t prev = 0;
  for (double limit : {1000.0 * ps, 400.0 * ps, 200.0 * ps, 120.0 * ps}) {
    auto t = net(12000.0, /*rat=*/50 * ns);
    core::VgOptions opt;
    opt.noise_constraints = false;
    opt.max_slew = limit;
    opt.objective = core::VgObjective::MinBuffersMeetingConstraints;
    const auto res = core::optimize(t, kLib, opt);
    ASSERT_TRUE(res.feasible);
    EXPECT_GE(res.buffer_count, prev);
    prev = res.buffer_count;
  }
  EXPECT_GE(prev, 3u);
}

TEST(SlewConstraint, InfeasibleWhenImpossiblyTight) {
  auto t = net(8000.0);
  core::VgOptions opt;
  opt.noise_constraints = false;
  opt.max_slew = 1.0 * ps;  // nothing can switch a 500 um segment this fast
  const auto res = core::optimize(t, kLib, opt);
  EXPECT_FALSE(res.feasible);
}

TEST(SlewConstraint, ComposesWithNoiseConstraints) {
  auto t = net(12000.0);
  core::VgOptions opt;
  opt.noise_constraints = true;
  opt.max_slew = 200.0 * ps;
  const auto res = core::optimize(t, kLib, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(noise::analyze(t, res.buffers, kLib).clean());
  EXPECT_LE(elmore::slews(t, res.buffers, kLib).max_slew,
            200.0 * ps * (1.0 + 1e-9));
}

TEST(SlewConstraint, MultiSinkWorstLeafGoverns) {
  auto t = steiner::make_balanced_tree(3, 1200.0, default_driver(),
                                       default_sink(15 * fF, 2 * ns),
                                       lib::default_technology());
  seg::segment(t, {400.0});
  core::VgOptions opt;
  opt.noise_constraints = false;
  opt.max_slew = 250.0 * ps;
  const auto res = core::optimize(t, kLib, opt);
  ASSERT_TRUE(res.feasible);
  const auto rep = elmore::slews(t, res.buffers, kLib);
  for (const auto& leaf : rep.leaves)
    EXPECT_LE(leaf.slew, 250.0 * ps * (1.0 + 1e-9));
}

}  // namespace
