#include <gtest/gtest.h>

#include "core/tool.hpp"
#include "netgen/netgen.hpp"
#include "noise/devgan.hpp"
#include "util/stats.hpp"

namespace {

using namespace nbuf;

const lib::BufferLibrary kLib = lib::default_library();

netgen::TestbenchOptions small_bench(std::size_t n = 25,
                                     std::uint64_t seed = 7) {
  netgen::TestbenchOptions o;
  o.net_count = n;
  o.seed = seed;
  return o;
}

TEST(Netgen, SinkCountDistributionInRange) {
  util::Rng rng(1);
  std::vector<int> counts;
  for (int i = 0; i < 5000; ++i)
    counts.push_back(static_cast<int>(netgen::sample_sink_count(rng)));
  const auto h = util::histogram(counts);
  for (const auto& [k, c] : h) {
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 20);
  }
  // Skewed toward few sinks: singletons dominate.
  EXPECT_GT(h.at(1), h.at(2));
  EXPECT_GT(h.at(2), h.count(5) ? h.at(5) : 0u);
}

TEST(Netgen, Deterministic) {
  const auto a = netgen::generate_testbench(kLib, small_bench(10, 42));
  const auto b = netgen::generate_testbench(kLib, small_bench(10, 42));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sink_count, b[i].sink_count);
    EXPECT_DOUBLE_EQ(a[i].total_cap, b[i].total_cap);
    EXPECT_DOUBLE_EQ(a[i].wirelength, b[i].wirelength);
  }
}

TEST(Netgen, DifferentSeedsDiffer) {
  const auto a = netgen::generate_testbench(kLib, small_bench(10, 1));
  const auto b = netgen::generate_testbench(kLib, small_bench(10, 2));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].wirelength != b[i].wirelength) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Netgen, NetsAreValidTrees) {
  const auto nets = netgen::generate_testbench(kLib, small_bench());
  for (const auto& n : nets) {
    n.tree.validate();
    EXPECT_TRUE(n.tree.is_binary());
    EXPECT_EQ(n.tree.sink_count(), n.sink_count);
    EXPECT_GT(n.wirelength, 0.0);
    EXPECT_GT(n.total_cap, 0.0);
  }
}

TEST(Netgen, SpansWithinConfiguredRange) {
  auto opt = small_bench(30);
  const auto nets = netgen::generate_testbench(kLib, opt);
  for (const auto& n : nets) {
    // Wirelength at least ~ the configured minimum span times a placement
    // factor; never more than a Steiner tree over a max_span box can hold.
    EXPECT_GT(n.wirelength, opt.min_span * 0.25);
    EXPECT_LT(n.wirelength, opt.max_span * 25.0);
  }
}

TEST(Netgen, RatsGiveHeadroomOverDelayOptimal) {
  auto opt = small_bench(10);
  const auto nets = netgen::generate_testbench(kLib, opt);
  for (const auto& n : nets) {
    for (const auto& s : n.tree.sinks()) EXPECT_GT(s.required_arrival, 0.0);
    // DelayOpt at generous budget should meet these RATs.
    const auto res = core::run_delayopt(n.tree, kLib, 16);
    EXPECT_GE(res.timing_after.worst_slack, -1e-12) << n.name;
  }
}

TEST(Netgen, NoiseMarginsAreUniform) {
  const auto nets = netgen::generate_testbench(kLib, small_bench(10));
  for (const auto& n : nets)
    for (const auto& s : n.tree.sinks())
      EXPECT_DOUBLE_EQ(s.noise_margin, 0.8);
}

TEST(Netgen, WorkloadContainsNoiseViolations) {
  // The testbench mimics "the 500 largest-capacitance nets": most of them
  // must actually have noise problems for the experiments to be meaningful.
  const auto nets = netgen::generate_testbench(kLib, small_bench(40, 11));
  std::size_t violating = 0;
  for (const auto& n : nets)
    if (noise::analyze_unbuffered(n.tree).violation_count > 0) ++violating;
  EXPECT_GT(violating, nets.size() / 2);
}

TEST(Netgen, EstimationModeCouplingAnnotated) {
  const auto nets = netgen::generate_testbench(kLib, small_bench(5));
  const auto tech = lib::default_technology();
  for (const auto& n : nets) {
    EXPECT_NEAR(n.tree.total_coupling_current(),
                tech.coupling_current_per_um() * n.tree.total_wirelength(),
                1e-9);
  }
}

}  // namespace
