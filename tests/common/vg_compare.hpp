// Bit-identity comparison of two VgResults, shared by the kernel
// differential suites (test_vg_kernel on the paper library,
// test_library_kernel on randomized multi-type libraries).
//
// Every deterministic field must agree EXACTLY — slack bits, buffer
// placements, wire widths, the whole per_count table, and the legacy DP
// counters (both kernels make the same pruning decisions on the same
// candidates). Only wall times may differ.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/vanginneken.hpp"
#include "rct/assignment.hpp"

namespace nbuf::test {

inline std::vector<std::pair<std::uint32_t, std::uint32_t>> sorted_entries(
    const rct::BufferAssignment& a) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (const auto& [node, type] : a.entries())
    out.emplace_back(node.value(), type.value());
  std::sort(out.begin(), out.end());
  return out;
}

inline void expect_identical(const core::VgResult& fast,
                             const core::VgResult& ref) {
  EXPECT_EQ(fast.feasible, ref.feasible);
  EXPECT_EQ(fast.timing_met, ref.timing_met);
  EXPECT_EQ(fast.slack, ref.slack);  // exact: bit-identity, no tolerance
  EXPECT_EQ(fast.buffer_count, ref.buffer_count);
  EXPECT_EQ(sorted_entries(fast.buffers), sorted_entries(ref.buffers));

  ASSERT_EQ(fast.wire_widths.size(), ref.wire_widths.size());
  for (std::size_t i = 0; i < fast.wire_widths.size(); ++i) {
    EXPECT_EQ(fast.wire_widths[i].node, ref.wire_widths[i].node);
    EXPECT_EQ(fast.wire_widths[i].width, ref.wire_widths[i].width);
  }

  ASSERT_EQ(fast.per_count.size(), ref.per_count.size());
  for (std::size_t i = 0; i < fast.per_count.size(); ++i) {
    SCOPED_TRACE("per_count[" + std::to_string(i) + "]");
    const core::CountBest& f = fast.per_count[i];
    const core::CountBest& r = ref.per_count[i];
    EXPECT_EQ(f.count, r.count);
    EXPECT_EQ(f.slack, r.slack);
    EXPECT_EQ(f.noise_slack, r.noise_slack);
    EXPECT_EQ(f.noise_ok, r.noise_ok);
    ASSERT_EQ(f.plan.size(), r.plan.size());
    for (std::size_t j = 0; j < f.plan.size(); ++j) {
      EXPECT_EQ(f.plan[j].node, r.plan[j].node);
      EXPECT_EQ(f.plan[j].dist_above, r.plan[j].dist_above);
      EXPECT_EQ(f.plan[j].type, r.plan[j].type);
    }
    ASSERT_EQ(f.wires.size(), r.wires.size());
    for (std::size_t j = 0; j < f.wires.size(); ++j) {
      EXPECT_EQ(f.wires[j].node, r.wires[j].node);
      EXPECT_EQ(f.wires[j].width, r.wires[j].width);
    }
  }

  // The legacy DP counters are part of the contract too.
  EXPECT_EQ(fast.stats.candidates_generated, ref.stats.candidates_generated);
  EXPECT_EQ(fast.stats.pruned_inferior, ref.stats.pruned_inferior);
  EXPECT_EQ(fast.stats.pruned_infeasible, ref.stats.pruned_infeasible);
  EXPECT_EQ(fast.stats.merged, ref.stats.merged);
  EXPECT_EQ(fast.stats.peak_list_size, ref.stats.peak_list_size);
}

}  // namespace nbuf::test
