// Canonical nets shared across test suites.
#pragma once

#include "lib/buffer.hpp"
#include "lib/technology.hpp"
#include "rct/tree.hpp"
#include "steiner/builders.hpp"
#include "util/units.hpp"

namespace nbuf::test {

using namespace nbuf::units;

inline rct::Driver default_driver(double res = 150.0,
                                  double intrinsic = 30.0 * ps) {
  return rct::Driver{"drv", res, intrinsic};
}

inline rct::SinkInfo default_sink(double cap = 10.0 * fF, double rat = 0.0,
                                  double nm = 0.8, const char* name = "s0") {
  rct::SinkInfo s;
  s.name = name;
  s.cap = cap;
  s.required_arrival = rat;
  s.noise_margin = nm;
  return s;
}

// The worked example of the paper's Fig. 3: driver so, internal node n,
// sinks s1 and s2, per-wire resistances and injected currents chosen as
// explicit values so noise can be computed by hand:
//   wire so->n : R = 100 ohm, i = 40 µA
//   wire n->s1 : R = 200 ohm, i = 30 µA
//   wire n->s2 : R = 150 ohm, i = 20 µA
// Downstream currents: I(s1)=I(s2)=0, I(n)=50µA, I(so)=90µA.
// With the pi-model (half of each wire's own current at its far end):
//   Noise(so->n)  = 100 * (40/2 + 50) µA = 7.0 mV
//   Noise(n->s1)  = 200 * (30/2 + 0)  µA = 3.0 mV
//   Noise(n->s2)  = 150 * (20/2 + 0)  µA = 1.5 mV
//   Noise at s1 = Rdrv*90µA + 7.0 + 3.0 mV ; at s2 = Rdrv*90µA + 7.0+1.5 mV
struct Fig3Net {
  rct::RoutingTree tree;
  rct::NodeId n;
  rct::NodeId s1;
  rct::NodeId s2;
};

inline Fig3Net fig3_net(double driver_res = 100.0) {
  Fig3Net f;
  const rct::NodeId so = f.tree.make_source(default_driver(driver_res), "so");
  rct::Wire w_n{/*length=*/1000.0, /*res=*/100.0, /*cap=*/200.0 * fF,
                /*i=*/40.0 * uA};
  f.n = f.tree.add_internal(so, w_n, "n");
  rct::Wire w_s1{800.0, 200.0, 160.0 * fF, 30.0 * uA};
  rct::Wire w_s2{600.0, 150.0, 120.0 * fF, 20.0 * uA};
  f.s1 = f.tree.add_sink(f.n, w_s1, default_sink(10.0 * fF, 0.0, 0.8, "s1"));
  f.s2 = f.tree.add_sink(f.n, w_s2, default_sink(12.0 * fF, 0.0, 0.8, "s2"));
  f.tree.validate();
  return f;
}

// A long two-pin net in the default technology that definitely violates the
// 0.8 V noise margin when unbuffered.
inline rct::RoutingTree long_two_pin(double length_um = 8000.0,
                                     double driver_res = 150.0) {
  return steiner::make_two_pin(length_um, default_driver(driver_res),
                               default_sink(), lib::default_technology());
}

}  // namespace nbuf::test
