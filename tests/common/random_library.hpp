// Randomized buffer libraries for the multi-library differential fuzz
// (tests/test_library_kernel.cpp) and property suites.
//
// random_library(seed, types, inverting_fraction) draws `types` buffer
// types whose resistances are STRICTLY descending and input capacitances
// STRICTLY ascending — a jittered strength ladder. Strict distinctness is
// deliberate: both kernels' tail sorts are unstable, so exact (load,
// slack) ties between candidates of different types are the one place the
// append-order contract could show through; real libraries do not carry
// bit-identical R/C pairs, and the fuzz should not either (the exact-tie
// paths are covered separately by crafted cases). Intrinsic delay and
// noise margin are free random draws — they do not need distinctness.
//
// Each type is inverting with probability `inverting_fraction`; at least
// one type is always non-inverting, matching the .lib validation rule
// (Algorithms 1/2 need polarity-preserving repeaters).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "lib/buffer.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace nbuf::test {

inline lib::BufferLibrary random_library(std::uint64_t seed,
                                         std::size_t types,
                                         double inverting_fraction) {
  using namespace nbuf::units;
  util::Rng rng(seed);
  const double r_hi = rng.uniform(900.0, 1500.0);   // ohm, weakest type
  const double r_lo = rng.uniform(35.0, 70.0);      // ohm, strongest type
  const double c_lo = rng.uniform(2.0, 4.0);        // fF, weakest type
  const double c_hi = rng.uniform(60.0, 110.0);     // fF, strongest type

  // Decide polarities first so the "at least one non-inverting" repair
  // cannot disturb the R/C draws.
  std::vector<bool> inverting(types);
  bool any_plain = false;
  for (std::size_t i = 0; i < types; ++i) {
    inverting[i] = rng.chance(inverting_fraction);
    any_plain = any_plain || !inverting[i];
  }
  if (!any_plain) inverting[types - 1] = false;

  lib::BufferLibrary out;
  for (std::size_t i = 0; i < types; ++i) {
    // Jittered log-ladder positions: rung i's exponent lands in
    // (i+0.05, i+0.95)/types, so consecutive rungs can never collide and
    // R descends / C ascends strictly no matter what the jitter draws.
    const double tr =
        (static_cast<double>(i) + rng.uniform(0.05, 0.95)) /
        static_cast<double>(types);
    const double tc =
        (static_cast<double>(i) + rng.uniform(0.05, 0.95)) /
        static_cast<double>(types);
    lib::BufferType t;
    t.name = (inverting[i] ? "rinv" : "rbuf") + std::to_string(i);
    t.resistance = r_hi * std::pow(r_lo / r_hi, tr);
    t.input_cap = c_lo * std::pow(c_hi / c_lo, tc) * fF;
    t.intrinsic_delay = rng.uniform(8.0, 45.0) * ps;
    t.noise_margin = rng.uniform(0.5, 1.1);
    t.inverting = inverting[i];
    out.add(std::move(t));
  }
  return out;
}

}  // namespace nbuf::test
