#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random_library.hpp"
#include "common/test_nets.hpp"
#include "core/alg1_single_sink.hpp"
#include "core/theory.hpp"
#include "noise/devgan.hpp"
#include "sim/golden.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using test::default_driver;
using test::default_sink;

const lib::BufferLibrary kLib = lib::default_library();

TEST(Alg1, CleanNetGetsNoBuffers) {
  auto t = test::long_two_pin(1000.0);
  ASSERT_EQ(noise::analyze_unbuffered(t).violation_count, 0u);
  const auto res = core::avoid_noise_single_sink(t, kLib);
  EXPECT_EQ(res.buffer_count, 0u);
  EXPECT_TRUE(res.buffers.empty());
}

TEST(Alg1, FixesViolatingTwoPin) {
  auto t = test::long_two_pin(8000.0);
  ASSERT_GT(noise::analyze_unbuffered(t).violation_count, 0u);
  const auto res = core::avoid_noise_single_sink(t, kLib);
  EXPECT_GT(res.buffer_count, 0u);
  const auto after = noise::analyze(res.tree, res.buffers, kLib);
  EXPECT_EQ(after.violation_count, 0u) << "metric violations remain";
}

TEST(Alg1, GoldenSimulationConfirmsFix) {
  auto t = test::long_two_pin(10000.0);
  const auto opt = sim::golden_options_from(lib::default_technology());
  ASSERT_GT(sim::golden_analyze_unbuffered(t, opt).violation_count, 0u);
  const auto res = core::avoid_noise_single_sink(t, kLib);
  const auto golden = sim::golden_analyze(res.tree, res.buffers, kLib, opt);
  EXPECT_EQ(golden.violation_count, 0u);
}

TEST(Alg1, FirstBufferPlacedMaximallyTight) {
  // Theorem 1: the sink-side buffer sits at its maximal distance, so the
  // noise at the sink is (numerically) exactly the margin.
  auto t = test::long_two_pin(8000.0);
  const auto res = core::avoid_noise_single_sink(t, kLib);
  ASSERT_GT(res.buffer_count, 0u);
  const auto after = noise::analyze(res.tree, res.buffers, kLib);
  EXPECT_NEAR(after.sinks[0].noise, 0.8, 1e-3);
}

TEST(Alg1, BufferCountGrowsWithLength) {
  std::size_t prev = 0;
  for (double len : {2000.0, 5000.0, 8000.0, 12000.0, 16000.0}) {
    auto t = test::long_two_pin(len);
    const auto res = core::avoid_noise_single_sink(t, kLib);
    EXPECT_GE(res.buffer_count, prev) << "length " << len;
    prev = res.buffer_count;
  }
  EXPECT_GE(prev, 3u);
}

TEST(Alg1, CountIsExactlyTheContinuousOptimum) {
  // Optimality (Theorem 3) on a uniform two-pin wire, verified against the
  // closed-form minimum: with k buffers the longest coverable length is
  //   k * S_buf + S_src
  // where S_buf is the Theorem-1 span of a buffer driving down to a 0.8 V
  // margin and S_src the span the source itself can drive. So the optimal
  // count is max(0, ceil((L - S_src) / S_buf)).
  const auto tech = lib::default_technology();
  const lib::BufferId bid = core::noise_buffer_choice(kLib);
  const auto& b = kLib.at(bid);
  const double r = tech.wire_res_per_um, i = tech.coupling_current_per_um();
  const double s_buf = *core::critical_length(b.resistance, r, i, 0.8, 0.0);
  const double s_src = *core::critical_length(150.0, r, i, 0.8, 0.0);
  for (double len : {1500.0, 4000.0, 7000.0, 10000.0, 14000.0, 20000.0}) {
    auto t = test::long_two_pin(len, 150.0);
    const auto res = core::avoid_noise_single_sink(t, kLib);
    const std::size_t expected =
        len <= s_src
            ? 0u
            : static_cast<std::size_t>(std::ceil((len - s_src) / s_buf));
    EXPECT_EQ(res.buffer_count, expected) << "length " << len;
    EXPECT_TRUE(noise::analyze(res.tree, res.buffers, kLib).clean());
  }
}

TEST(Alg1, WeakDriverGetsGuardBuffer) {
  // R_so >> R_b and a wire long enough that the driver alone violates while
  // a strong buffer right below the source would not.
  auto t = steiner::make_two_pin(2500.0, default_driver(3000.0),
                                 default_sink(), lib::default_technology());
  ASSERT_GT(noise::analyze_unbuffered(t).violation_count, 0u);
  const auto res = core::avoid_noise_single_sink(t, kLib);
  EXPECT_GE(res.buffer_count, 1u);
  const auto after = noise::analyze(res.tree, res.buffers, kLib);
  EXPECT_EQ(after.violation_count, 0u);
}

TEST(Alg1, MultiWirePathHandled) {
  // Path with heterogeneous wires (different per-unit values).
  rct::RoutingTree t;
  const auto so = t.make_source(default_driver(200.0));
  const auto tech = lib::default_technology();
  auto wire_of = [&](double len, double scale) {
    rct::Wire w;
    w.length = len;
    w.resistance = tech.wire_res(len) * scale;
    w.capacitance = tech.wire_cap(len);
    w.coupling_current = tech.wire_coupling_current(len) * scale;
    return w;
  };
  auto a = t.add_internal(so, wire_of(3000.0, 1.0), "a");
  auto bnode = t.add_internal(a, wire_of(2500.0, 1.4), "b");
  t.add_sink(bnode, wire_of(3000.0, 0.8), default_sink());
  t.validate();
  ASSERT_GT(noise::analyze_unbuffered(t).violation_count, 0u);
  const auto res = core::avoid_noise_single_sink(t, kLib);
  const auto after = noise::analyze(res.tree, res.buffers, kLib);
  EXPECT_EQ(after.violation_count, 0u);
  EXPECT_GT(res.buffer_count, 0u);
}

TEST(Alg1, ExplicitBufferTypeHonored) {
  auto t = test::long_two_pin(8000.0);
  core::NoiseAvoidanceOptions opt;
  opt.buffer_type = lib::BufferId{8};  // buf_x8
  const auto res = core::avoid_noise_single_sink(t, kLib, opt);
  for (const auto& [node, type] : res.buffers.entries())
    EXPECT_EQ(type, lib::BufferId{8});
}

TEST(Alg1, SmallerResistanceBufferMeansFewerOrEqualBuffers) {
  // Remark after Theorem 3: smallest resistance maximizes spacing.
  auto t1 = test::long_two_pin(12000.0);
  auto t2 = test::long_two_pin(12000.0);
  core::NoiseAvoidanceOptions weak, strong;
  weak.buffer_type = lib::BufferId{6};    // buf_x2, 550 ohm
  strong.buffer_type = lib::BufferId{10};  // buf_x24, 45 ohm
  const auto rw = core::avoid_noise_single_sink(t1, kLib, weak);
  const auto rs = core::avoid_noise_single_sink(t2, kLib, strong);
  EXPECT_LE(rs.buffer_count, rw.buffer_count);
}

TEST(Alg1, DefaultChoiceIsSmallestResistanceNonInverting) {
  const auto bid = core::noise_buffer_choice(kLib);
  const auto& b = kLib.at(bid);
  EXPECT_FALSE(b.inverting);
  for (const auto& t : kLib.types())
    if (!t.inverting) { EXPECT_LE(b.resistance, t.resistance); }
}

TEST(Alg1, ChoiceAndPlacementsStableUnderLibraryPermutation) {
  // noise_buffer_choice scans in id order but must pick the same TYPE for
  // any presentation order of the same library (exact resistance ties
  // break on the unique name, not the permutation-dependent id), so the
  // full Algorithm 1 output — count, positions, chosen type — is a
  // function of the library as a SET. Includes a deliberate resistance tie
  // to force the name tie-break, the documented-vs-implemented drift this
  // test pins.
  const lib::BufferLibrary base = test::random_library(0xA191, 9, 0.4);
  std::vector<lib::BufferType> types(base.types().begin(),
                                     base.types().end());
  // Twin the type the choice rule would pick (smallest-R non-inverting):
  // same resistance, name sorting after the original, so the tie-break is
  // genuinely on the winning path in every permutation.
  std::size_t pick = types.size();
  for (std::size_t i = 0; i < types.size(); ++i)
    if (!types[i].inverting &&
        (pick == types.size() ||
         types[i].resistance < types[pick].resistance))
      pick = i;
  ASSERT_LT(pick, types.size());
  lib::BufferType twin = types[pick];
  twin.name = "twin_" + types[pick].name;
  twin.input_cap = types[pick].input_cap * 1.5;
  types.push_back(twin);

  auto t = test::long_two_pin(9000.0);
  std::string chosen_name;
  std::size_t count = 0;
  std::vector<std::uint32_t> nodes;
  const std::size_t n = types.size();
  for (std::size_t rot = 0; rot < n; ++rot) {
    SCOPED_TRACE("rotation " + std::to_string(rot));
    lib::BufferLibrary perm;
    for (std::size_t i = 0; i < n; ++i) perm.add(types[(i + rot) % n]);
    const auto res = core::avoid_noise_single_sink(t, perm);
    ASSERT_GT(res.buffer_count, 0u);
    const auto entries = res.buffers.entries();
    std::vector<std::uint32_t> got_nodes;
    for (const auto& [node, type] : entries) {
      EXPECT_EQ(perm.at(type).name, perm.at(entries.front().second).name);
      got_nodes.push_back(node.value());
    }
    std::sort(got_nodes.begin(), got_nodes.end());
    const std::string got_name = perm.at(entries.front().second).name;
    if (rot == 0) {
      chosen_name = got_name;
      count = res.buffer_count;
      nodes = got_nodes;
    } else {
      EXPECT_EQ(got_name, chosen_name);
      EXPECT_EQ(res.buffer_count, count);
      EXPECT_EQ(got_nodes, nodes);
    }
  }
}

TEST(Alg1, RejectsMultiSinkTrees) {
  const auto f = test::fig3_net();
  EXPECT_THROW((void)core::avoid_noise_single_sink(f.tree, kLib),
               std::invalid_argument);
}

TEST(Alg1, LinearScalingOfBufferSpacing) {
  // Inserted buffers on a uniform wire are evenly spaced (all interior
  // spacings equal the Theorem-1 span for a fresh buffer).
  auto t = test::long_two_pin(15000.0);
  const auto res = core::avoid_noise_single_sink(t, kLib);
  ASSERT_GE(res.buffer_count, 3u);
  // Collect buffered node positions as distance from source along the path.
  std::vector<double> pos;
  double acc = 0.0;
  rct::NodeId cur = res.tree.source();
  while (!res.tree.node(cur).children.empty()) {
    cur = res.tree.node(cur).children.front();
    acc += res.tree.node(cur).parent_wire.length;
    if (res.buffers.has_buffer(cur)) pos.push_back(acc);
  }
  ASSERT_EQ(pos.size(), res.buffer_count);
  // Forced buffers (counted from the sink side) are evenly spaced at the
  // Theorem-1 span; a driver-guard buffer near the source (Step 5) is
  // excluded from the comparison.
  std::vector<double> forced(pos.begin(), pos.end());
  if (forced.front() < 0.05 * 15000.0) forced.erase(forced.begin());
  ASSERT_GE(forced.size(), 3u);
  for (std::size_t k = 2; k < forced.size(); ++k) {
    const double gap1 = forced[k] - forced[k - 1];
    const double gap2 = forced[k - 1] - forced[k - 2];
    EXPECT_NEAR(gap1, gap2, 1e-3 * gap2);
  }
}

}  // namespace
