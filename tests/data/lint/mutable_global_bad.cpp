namespace nbuf {
namespace {
int call_count = 0;
}  // namespace
double g_scale = 1.0;
}  // namespace nbuf
