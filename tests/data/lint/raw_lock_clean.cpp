#include "util/thread_annotations.hpp"
namespace nbuf {
void bump(util::Mutex& mu, int& x) {
  const util::MutexLock hold(mu);
  ++x;
}
}  // namespace nbuf
