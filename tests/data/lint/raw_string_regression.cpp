#include <algorithm>
#include <vector>
namespace nbuf {
// v1 regression: the raw string below contains text that reads like a
// std::sort call and like an allow marker; neither is code, and the
// marker must not suppress anything.
const char* const kDoc = R"doc(
  std::sort(v.begin(), v.end());
  // nbuf-lint: allow(sort)
)doc";
void order(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
}
}  // namespace nbuf
