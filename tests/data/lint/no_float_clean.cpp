namespace nbuf {
// "float" in a comment or a string literal is not arithmetic:
const char* const kNote = "float is banned in the numeric core";
double attenuate(double v) { return v * 0.5; }
}  // namespace nbuf
