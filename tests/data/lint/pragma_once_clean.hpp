#pragma once
namespace nbuf {
struct Empty {};
}  // namespace nbuf
