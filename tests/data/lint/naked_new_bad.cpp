namespace nbuf {
int* make() {
  int* p = new int(7);
  delete p;
  return new int(9);
}
}  // namespace nbuf
