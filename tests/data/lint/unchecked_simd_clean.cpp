namespace nbuf {
// A mention in a comment is not a pragma: #pragma omp simd.
const char* kDoc = "#pragma omp simd";          // nor in a string
const char* kDoc2 = "_Pragma(\"omp simd\")";    // nor the operator form
void plain(double* x, int n) {
  for (int i = 0; i < n; ++i) x[i] *= 2.0;  // plain loop: fine
}
void unrelated(double* x, int n) {
#pragma GCC unroll 4
  for (int i = 0; i < n; ++i) x[i] += 1.0;  // non-omp pragma: fine
}
void audited(double* x, int n) {
#pragma omp simd  // nbuf-lint: allow(unchecked-simd)
  for (int i = 0; i < n; ++i) x[i] *= 0.5;
}
}  // namespace nbuf
