#include <algorithm>
#include <vector>
namespace nbuf {
void order(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
}
}  // namespace nbuf
