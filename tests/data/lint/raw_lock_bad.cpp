#include <mutex>
namespace nbuf {
void bump(std::mutex& mu, int& x) {
  mu.lock();
  ++x;
  mu.unlock();
}
void poll(std::mutex* mu, int& x) {
  if (mu->try_lock()) {
    ++x;
    mu->unlock();
  }
}
}  // namespace nbuf
