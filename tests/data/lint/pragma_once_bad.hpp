// A header that forgot its include guard.
namespace nbuf {
struct Empty {};
}  // namespace nbuf
