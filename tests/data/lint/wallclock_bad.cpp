#include <chrono>
#include <ctime>
namespace nbuf {
double stamp() {
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return static_cast<double>(time(nullptr));
}
}  // namespace nbuf
