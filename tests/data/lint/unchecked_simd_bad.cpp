namespace nbuf {
void scale(double* x, int n) {
#pragma omp simd
  for (int i = 0; i < n; ++i) x[i] *= 2.0;
}
void offset(double* x, int n) {
  _Pragma("omp simd")
  for (int i = 0; i < n; ++i) x[i] += 1.0;
}
void reduce(double* x, double* acc, int n) {
#pragma omp simd reduction(+ : acc[0])
  for (int i = 0; i < n; ++i) acc[0] += x[i];
}
}  // namespace nbuf
