#include <memory>
namespace nbuf {
struct Pinned {
  Pinned() = default;
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
};
std::unique_ptr<int> make() { return std::make_unique<int>(7); }
}  // namespace nbuf
