namespace nbuf {
constexpr int kMaxBuffers = 64;
const char* const kName = "nbuf";
struct Config {
  int threads = 1;
};
int parse(const char* text);
inline int add(int a, int b) { return a + b; }
}  // namespace nbuf
