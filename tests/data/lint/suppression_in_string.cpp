#include <algorithm>
#include <string>
#include <vector>
namespace nbuf {
// v1 regression: an allow marker inside a string literal on the same
// line must NOT suppress the finding; only trailing comments count.
void order(std::vector<int>& v, std::string& log) {
  log += "nbuf-lint: allow(sort)"; std::sort(v.begin(), v.end());
  std::sort(v.begin(), v.end());  // nbuf-lint: allow(sort)
}
}  // namespace nbuf
