#include <unordered_map>
#include <utility>
#include <vector>
namespace nbuf {
double total(const std::vector<std::pair<int, double>>& items) {
  std::unordered_map<int, double> weights;
  for (const auto& it : items) weights[it.first] += it.second;
  double sum = 0.0;
  for (const auto& [k, w] : weights) sum += w * k;
  for (auto it = weights.begin(); it != weights.end(); ++it) sum += 1.0;
  return sum;
}
}  // namespace nbuf
