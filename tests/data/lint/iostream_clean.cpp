#include <ostream>
#include <string>
namespace nbuf {
// The banned directive quoted in text — #include <iostream> — is fine in
// a comment, and fine in a string literal:
const std::string kBanner = "#include <iostream>";
}  // namespace nbuf
