#include <iostream>
namespace nbuf {
void hello() { std::cout << "hi\n"; }
}  // namespace nbuf
