#include <algorithm>
#include <vector>
namespace nbuf {
void order(std::vector<int>& v) {
  // Justified: one-shot canonicalization at the I/O boundary.
  std::sort(v.begin(), v.end());  // nbuf-lint: allow(sort)
}
}  // namespace nbuf
