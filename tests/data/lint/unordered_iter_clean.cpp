#include <map>
#include <unordered_map>
namespace nbuf {
// Point lookups into an unordered container are deterministic; only
// iteration order is unspecified.
double lookup(const std::unordered_map<int, double>& weights, int key) {
  const auto it = weights.find(key);
  return it == weights.end() ? 0.0 : it->second;
}
// Iterating an ordered map is fine.
double total(const std::map<int, double>& ordered) {
  double sum = 0.0;
  for (const auto& [k, w] : ordered) sum += w * k;
  return sum;
}
}  // namespace nbuf
