namespace nbuf {
float attenuate(float v) {
  return v * 2;
}
}  // namespace nbuf
