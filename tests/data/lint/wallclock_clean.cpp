#include <chrono>

#include "obs/timer.hpp"
namespace nbuf {
// Reported only; never fed back into optimization decisions.
double report(const Timer& t) {
  const auto t0 =
      std::chrono::steady_clock::now();  // nbuf-lint: allow(wallclock-in-core)
  (void)t0;
  return t.time();  // member call, not the C library time()
}
}  // namespace nbuf
