// Contract macros at level 1 (the Release default): NBUF_REQUIRE and
// NBUF_ASSERT are live and throw typed exceptions with structured messages;
// NBUF_INVARIANT is compiled out without evaluating its condition. A
// contract failure that crosses a noexcept boundary (worker teardown,
// destructors) must still die loudly via std::terminate — the death tests
// pin that. The level is forced per-TU below, overriding the build-wide
// -DNBUF_CONTRACTS; contracts.hpp's non-macro contents are level-independent
// so mixing TU levels inside one binary is safe.
#undef NBUF_CONTRACTS
#define NBUF_CONTRACTS 1
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace {

using nbuf::util::ctx;

static_assert(NBUF_STRUCTURAL_CHECKS == 0,
              "level 1 must not enable structural-check blocks");

std::string what_of(void (*f)()) {
  try {
    f();
  } catch (const std::exception& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a contract violation";
  return "";
}

TEST(ContractsL1, RequireThrowsInvalidArgumentWithLocation) {
  EXPECT_THROW(NBUF_REQUIRE(1 == 2), std::invalid_argument);
  const std::string w = what_of([] { NBUF_REQUIRE(1 == 2); });
  EXPECT_NE(w.find("precondition failed: NBUF_REQUIRE(1 == 2)"),
            std::string::npos)
      << w;
  EXPECT_NE(w.find("test_contracts_l1.cpp:"), std::string::npos) << w;
}

TEST(ContractsL1, RequireMsgAndCtxCarryContext) {
  const std::string m =
      what_of([] { NBUF_REQUIRE_MSG(false, "needs a sink"); });
  EXPECT_NE(m.find("[needs a sink]"), std::string::npos) << m;
  const std::string c =
      what_of([] { NBUF_REQUIRE_CTX(false, ctx("n", 3, "load", 1.5)); });
  EXPECT_NE(c.find("[n=3 load=1.5]"), std::string::npos) << c;
}

TEST(ContractsL1, AssertThrowsLogicErrorWithLocation) {
  EXPECT_THROW(NBUF_ASSERT(false), std::logic_error);
  const std::string w = what_of([] { NBUF_ASSERT_MSG(false, "lost order"); });
  EXPECT_NE(w.find("invariant failed: NBUF_ASSERT(false"),
            std::string::npos)
      << w;
  EXPECT_NE(w.find("[lost order]"), std::string::npos) << w;
  EXPECT_THROW(NBUF_ASSERT_CTX(false, ctx("i", 7)), std::logic_error);
}

TEST(ContractsL1, PassingChecksEvaluateOnceAndStaySilent) {
  int evals = 0;
  auto once = [&] {
    ++evals;
    return true;
  };
  NBUF_REQUIRE(once());
  NBUF_ASSERT(once());
  NBUF_REQUIRE_CTX(once(), ctx("unused", 0));
  EXPECT_EQ(evals, 3);
}

TEST(ContractsL1, InvariantIsCompiledOutWithoutEvaluating) {
  int evals = 0;
  auto boom = [&] {
    ++evals;
    return false;
  };
  NBUF_INVARIANT(boom());
  NBUF_INVARIANT_MSG(boom(), "never built");
  NBUF_INVARIANT_CTX(boom(), "never built");
  EXPECT_EQ(evals, 0);
}

TEST(ContractsL1, CtxFormatsNameValuePairs) {
  EXPECT_EQ(ctx(), "");
  EXPECT_EQ(ctx("x", 1.5), "x=1.5");
  EXPECT_EQ(ctx("x", 1.5, "n", 3), "x=1.5 n=3");
  EXPECT_EQ(ctx("name", "wire7"), "name=wire7");
}

using ContractsL1Death = testing::Test;

TEST(ContractsL1Death, RequireAcrossNoexceptTerminates) {
  EXPECT_DEATH(
      []() noexcept { NBUF_REQUIRE_MSG(false, "l1-require-dies"); }(),
      "l1-require-dies");
}

TEST(ContractsL1Death, AssertAcrossNoexceptTerminates) {
  EXPECT_DEATH([]() noexcept { NBUF_ASSERT_MSG(false, "l1-assert-dies"); }(),
               "l1-assert-dies");
}

}  // namespace
