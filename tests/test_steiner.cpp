#include <gtest/gtest.h>

#include <algorithm>

#include "common/test_nets.hpp"
#include "steiner/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace nbuf;
using namespace nbuf::units;
using steiner::Point;
using test::default_driver;
using test::default_sink;

std::vector<steiner::PinSpec> pins_at(std::initializer_list<Point> pts) {
  std::vector<steiner::PinSpec> pins;
  int i = 0;
  for (Point p : pts) {
    steiner::PinSpec s;
    s.at = p;
    s.info = default_sink(10 * fF, 0.0, 0.8,
                          ("p" + std::to_string(i++)).c_str());
    pins.push_back(s);
  }
  return pins;
}

TEST(Manhattan, Basics) {
  EXPECT_DOUBLE_EQ(steiner::manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(steiner::manhattan({-1, 2}, {1, -2}), 6.0);
  EXPECT_DOUBLE_EQ(steiner::manhattan({5, 5}, {5, 5}), 0.0);
}

TEST(Steiner, SinglePinIsStraightRoute) {
  const auto tech = lib::default_technology();
  auto t = steiner::build_tree({0, 0}, default_driver(),
                               pins_at({{300, 400}}), tech);
  EXPECT_EQ(t.sink_count(), 1u);
  EXPECT_NEAR(t.total_wirelength(), 700.0, 1e-9);
  t.validate();
}

TEST(Steiner, AllSinksConnected) {
  const auto tech = lib::default_technology();
  auto t = steiner::build_tree(
      {0, 0}, default_driver(),
      pins_at({{1000, 0}, {500, 800}, {1500, 300}, {200, 200}}), tech);
  EXPECT_EQ(t.sink_count(), 4u);
  t.validate();  // includes reachability of every node from the source
}

TEST(Steiner, WirelengthAtLeastFarthestPin) {
  const auto tech = lib::default_technology();
  const auto pins = pins_at({{2000, 100}, {1900, 0}, {2100, 50}});
  auto t = steiner::build_tree({0, 0}, default_driver(), pins, tech);
  EXPECT_GE(t.total_wirelength() + 1e-9, 2100.0);
}

TEST(Steiner, SharingBeatsStarRouting) {
  // Three clustered far-away pins must share a trunk: total length well
  // under the sum of individual distances.
  const auto tech = lib::default_technology();
  const auto pins = pins_at({{3000, 0}, {3000, 100}, {3000, 200}});
  auto t = steiner::build_tree({0, 0}, default_driver(), pins, tech);
  double star = 0.0;
  for (const auto& p : pins) star += steiner::manhattan({0, 0}, p.at);
  EXPECT_LT(t.total_wirelength(), 0.5 * star);
}

TEST(Steiner, CollinearPinsShareTrunkExactly) {
  const auto tech = lib::default_technology();
  auto t = steiner::build_tree({0, 0}, default_driver(),
                               pins_at({{1000, 0}, {2000, 0}, {3000, 0}}),
                               tech);
  EXPECT_NEAR(t.total_wirelength(), 3000.0, 1e-6);
}

TEST(Steiner, TreeIsBinaryAfterBuild) {
  const auto tech = lib::default_technology();
  util::Rng rng(17);
  std::vector<steiner::PinSpec> pins;
  for (int i = 0; i < 12; ++i) {
    steiner::PinSpec p;
    p.at = {rng.uniform(0, 5000), rng.uniform(0, 5000)};
    p.info = default_sink(10 * fF, 0.0, 0.8,
                          ("r" + std::to_string(i)).c_str());
    pins.push_back(p);
  }
  auto t = steiner::build_tree({0, 0}, default_driver(), pins, tech);
  EXPECT_TRUE(t.is_binary());
  EXPECT_EQ(t.sink_count(), 12u);
  t.validate();
}

TEST(Steiner, ElectricalAnnotationMatchesTechnology) {
  const auto tech = lib::default_technology();
  auto t = steiner::build_tree({0, 0}, default_driver(),
                               pins_at({{1234, 0}}), tech);
  const auto sink = t.sinks().front().node;
  const auto& w = t.node(sink).parent_wire;
  EXPECT_NEAR(w.resistance, tech.wire_res(1234.0), 1e-9);
  EXPECT_NEAR(w.capacitance, tech.wire_cap(1234.0), 1e-24);
  EXPECT_NEAR(w.coupling_current, tech.wire_coupling_current(1234.0), 1e-12);
}

TEST(Steiner, CouplingOffMode) {
  const auto tech = lib::default_technology();
  steiner::Options opt;
  opt.estimation_mode_coupling = false;
  auto t = steiner::build_tree({0, 0}, default_driver(),
                               pins_at({{1000, 500}}), tech, opt);
  EXPECT_DOUBLE_EQ(t.total_coupling_current(), 0.0);
}

TEST(Steiner, EstimateWirelengthAgreesWithBuild) {
  const auto tech = lib::default_technology();
  const auto pins = pins_at({{1000, 0}, {500, 800}, {1500, 300}});
  const double est = steiner::estimate_wirelength({0, 0}, pins);
  auto t = steiner::build_tree({0, 0}, default_driver(), pins, tech);
  EXPECT_NEAR(est, t.total_wirelength(), 1e-6);
}

TEST(Steiner, RandomNetsAreValidAndBounded) {
  const auto tech = lib::default_technology();
  util::Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const int k = rng.uniform_int(1, 15);
    std::vector<steiner::PinSpec> pins;
    double mst_upper = 0.0;  // sum of all pin distances (loose upper bound)
    for (int i = 0; i < k; ++i) {
      steiner::PinSpec p;
      p.at = {rng.uniform(0, 8000), rng.uniform(0, 8000)};
      p.info = default_sink(10 * fF, 0.0, 0.8,
                            ("t" + std::to_string(i)).c_str());
      mst_upper += steiner::manhattan({0, 0}, p.at);
      pins.push_back(p);
    }
    auto t = steiner::build_tree({0, 0}, default_driver(), pins, tech);
    t.validate();
    EXPECT_EQ(t.sink_count(), static_cast<std::size_t>(k));
    EXPECT_LE(t.total_wirelength(), mst_upper + 1e-6);
    EXPECT_TRUE(t.is_binary());
  }
}

TEST(Builders, TwoPinShape) {
  auto t = test::long_two_pin(3000.0);
  EXPECT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.sink_count(), 1u);
  EXPECT_NEAR(t.total_wirelength(), 3000.0, 1e-9);
}

TEST(Builders, BalancedTreeShape) {
  auto t = steiner::make_balanced_tree(3, 500.0, default_driver(),
                                       default_sink(),
                                       lib::default_technology());
  EXPECT_EQ(t.sink_count(), 8u);
  EXPECT_TRUE(t.is_binary());
  // 4 + 2 + 1 internal levels... total wirelength = edges * 500:
  // level1: 2 edges, level2: 4, level3 (sinks): 8 -> 14 edges.
  EXPECT_NEAR(t.total_wirelength(), 14 * 500.0, 1e-9);
}

TEST(Builders, BalancedDepthZeroIsTwoPin) {
  auto t = steiner::make_balanced_tree(0, 750.0, default_driver(),
                                       default_sink(),
                                       lib::default_technology());
  EXPECT_EQ(t.sink_count(), 1u);
  EXPECT_NEAR(t.total_wirelength(), 750.0, 1e-9);
}

}  // namespace
